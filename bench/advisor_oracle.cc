// Advisor oracle: kAuto's per-join decisions vs a measured per-join oracle.
//
// For every join of every TPC-H query we time the all-BHJ plan against the
// plan with only that join flipped to BRJ (the paired-flip methodology of
// Figures 1 and 12) and declare the oracle pick: partitioned only when the
// flip is clearly faster. The advisor agrees when it partitions exactly
// where the oracle does. The paper's headline result — the radix join wins
// in only 1 of 59 TPC-H joins — predicts agreement near 100%; the
// acceptance floor for kAuto is 90%.
#include <algorithm>
#include <cmath>
#include <vector>

#include "bench/bench_common.h"

int main() {
  using namespace pjoin;
  const double sf = BenchScaleFactor();
  // The oracle's verdict is only as good as its measurement: at the default
  // scale factor a single query runs for tens of milliseconds, so we insist
  // on at least five repetitions per flip regardless of PJOIN_REPS.
  const int reps = std::max(5, BenchRepetitions());
  const int threads = DefaultThreads();
  bench::PrintHeader(
      "Advisor oracle: kAuto vs measured per-join oracle",
      "Bandle et al., Figure 1 (the 59-join map) as a decision-quality check",
      "TPC-H SF " + std::to_string(sf) +
          "; oracle = paired BHJ-vs-BRJ flip per join");

  auto db = GenerateTpch(sf);
  ThreadPool pool(threads);

  // Partitioning must beat BHJ by this much before the oracle endorses it:
  // below the noise floor, the paper's asymmetry argument ("when in doubt,
  // do not partition") applies to the oracle as well.
  constexpr double kOracleMargin = 0.02;

  int total = 0;
  int agree = 0;
  int auto_partitioned = 0;
  int oracle_partitioned = 0;
  for (const TpchQuery& query : TpchQueries()) {
    // What kAuto actually ran, join by join (audits are post-fallback, in
    // the query-global post-order numbering).
    ExecOptions auto_options = bench::Options(JoinStrategy::kAuto, threads);
    QueryStats auto_stats;
    query.run(*db, auto_options, &auto_stats, &pool);

    ExecOptions base_options = bench::Options(JoinStrategy::kBHJ, threads);
    const auto run_base = [&] {
      QueryStats stats;
      query.run(*db, base_options, &stats, &pool);
      return stats.seconds;
    };
    // Calibrate this query's noise floor with a self-flip: a "paired delta"
    // between two identical all-BHJ runs measures pure run-to-run variance.
    // A real flip has to clear that, not just the static margin.
    const double noise = std::fabs(bench::PairedDelta(run_base, run_base, reps));
    const double threshold = std::max(kOracleMargin, 2.0 * noise);

    TablePrinter table({"join #", "kAuto ran", "oracle", "flip delta",
                        "agree"});
    for (int j = 0; j < query.num_joins; ++j) {
      ExecOptions mixed = base_options;
      mixed.join_overrides[j] = JoinStrategy::kBRJ;
      // Positive delta = flipping this join to the partitioned side made
      // the whole query faster. Interleave the runs and demand a consistent
      // win: the median must clear the noise-calibrated threshold and every
      // repetition must favor the flip, mirroring how the paper only counts
      // a join for the radix side when the gap is unambiguous.
      std::vector<double> deltas;
      deltas.reserve(reps);
      run_base();  // warm-up
      for (int r = 0; r < reps; ++r) {
        const double a = run_base();
        QueryStats stats;
        query.run(*db, mixed, &stats, &pool);
        const double b = stats.seconds;
        deltas.push_back((a - b) / a);
      }
      std::sort(deltas.begin(), deltas.end());
      const double delta = deltas[deltas.size() / 2];
      const bool oracle_partition = delta > threshold && deltas.front() > 0;
      const JoinStrategy ran = auto_stats.join_audits[j].strategy;
      const bool auto_partition = ran != JoinStrategy::kBHJ;
      const bool match = auto_partition == oracle_partition;
      ++total;
      if (match) ++agree;
      if (auto_partition) ++auto_partitioned;
      if (oracle_partition) ++oracle_partitioned;
      table.AddRow({std::to_string(j + 1), JoinStrategyName(ran),
                    oracle_partition ? "partition" : "BHJ",
                    TablePrinter::Percent(delta), match ? "yes" : "NO"});
    }
    std::printf("Q%d (%s)\n", query.id, query.name.c_str());
    table.Print();
    std::printf("\n");
  }

  const double pct = total > 0 ? 100.0 * agree / total : 0;
  std::printf("kAuto vs oracle: %d/%d joins agree (%.1f%%), target >= 90%%\n",
              agree, total, pct);
  std::printf("partitioned picks: kAuto %d, oracle %d of %d joins\n",
              auto_partitioned, oracle_partitioned, total);
  std::printf(
      "paper shape: the oracle partitions almost nowhere (1 of 59 in the\n"
      "paper's runs), so an advisor biased against partitioning agrees\n"
      "nearly everywhere.\n");
  return pct >= 90.0 ? 0 : 1;
}
