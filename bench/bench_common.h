// Shared helpers for the per-figure benchmark binaries.
#ifndef PJOIN_BENCH_BENCH_COMMON_H_
#define PJOIN_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "bench_util/workloads.h"
#include "engine/executor.h"
#include "engine/sampler.h"
#include "tpch/gen.h"
#include "tpch/queries.h"
#include "util/env.h"
#include "util/table_printer.h"

namespace pjoin {
namespace bench {

inline void PrintHeader(const std::string& title, const std::string& paper_ref,
                        const std::string& setup) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  if (!setup.empty()) std::printf("setup:      %s\n", setup.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

inline ExecOptions Options(JoinStrategy strategy, int threads,
                           bool late_materialization = false) {
  ExecOptions options;
  options.join_strategy = strategy;
  options.num_threads = threads;
  options.late_materialization = late_materialization;
  return options;
}

// The thread counts swept by the scalability figures: 1..hardware, plus the
// hyper-threaded range up to 2x (flagged "HT" in the paper's plots).
inline std::vector<int> ThreadSweep() {
  int hw = DefaultThreads();
  std::vector<int> sweep;
  for (int t = 1; t <= 2 * hw; t *= 2) sweep.push_back(t);
  if (sweep.back() != 2 * hw) sweep.push_back(2 * hw);
  return sweep;
}

// Runs a multi-step TPC-H query to a median-stats measurement; rep_seconds,
// when non-null, receives every rep's wall time (for tail-latency columns).
inline QueryStats MeasureTpch(const TpchQuery& query, const TpchDb& db,
                              const ExecOptions& options, int reps,
                              ThreadPool* pool,
                              std::vector<double>* rep_seconds = nullptr) {
  return MeasureRuns(
      [&](QueryStats* stats) { query.run(db, options, stats, pool); }, reps,
      /*warmup=*/true, rep_seconds);
}

// Paired relative comparison: interleaves A/B runs (A,B,A,B,...) and
// returns the median of the per-round deltas (a - b) / a. Pairing cancels
// the slow host drift that dominates absolute medians for ms-scale queries
// (important for the per-join flip experiments of Figures 1 and 12).
inline double PairedDelta(const std::function<double()>& run_a,
                          const std::function<double()>& run_b, int reps) {
  run_a();  // warm-up
  run_b();
  std::vector<double> deltas;
  deltas.reserve(reps);
  for (int r = 0; r < reps; ++r) {
    double a = run_a();
    double b = run_b();
    deltas.push_back((a - b) / a);
  }
  std::sort(deltas.begin(), deltas.end());
  return deltas[deltas.size() / 2];
}

inline std::string Gts(double tuples_per_sec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", tuples_per_sec / 1e9);
  return buf;
}

// Machine-readable metrics side-channel: when PJOIN_METRICS_JSON is set,
// appends one QueryMetrics::ToJson line per call, tagged with a caller-chosen
// label, to the named file ("-" = stdout). Lets a plotting script consume the
// per-phase/per-join internals without re-parsing the human tables.
inline void DumpMetrics(const std::string& label, const QueryStats& stats) {
  const char* path = std::getenv("PJOIN_METRICS_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* out = std::string(path) == "-" ? stdout : std::fopen(path, "a");
  if (out == nullptr) return;
  std::fprintf(out, "{\"label\":\"%s\",\"metrics\":%s}\n", label.c_str(),
               stats.metrics.ToJson().c_str());
  if (out == stdout) {
    std::fflush(stdout);
  } else {
    std::fclose(out);
  }
}

// Emits the reservoir-sampled skew summary of one table column to the same
// PJOIN_METRICS_JSON side-channel, so plotting scripts can correlate the
// measured tail latencies with the estimated key distribution.
inline void DumpSkewEstimate(const std::string& label, const Table& table,
                             int key_col) {
  const char* path = std::getenv("PJOIN_METRICS_JSON");
  if (path == nullptr || path[0] == '\0') return;
  const SkewEstimate est = SampleBuildColumn(table, key_col, SkewSampleSize());
  if (!est.present) return;
  std::FILE* out = std::string(path) == "-" ? stdout : std::fopen(path, "a");
  if (out == nullptr) return;
  std::fprintf(out,
               "{\"label\":\"%s\",\"skew_estimate\":{\"table_rows\":%llu"
               ",\"sample_rows\":%llu,\"distinct_keys\":%llu"
               ",\"top_share\":%.6f,\"topk_share\":%.6f"
               ",\"key_payload_corr\":%.6f}}\n",
               label.c_str(),
               static_cast<unsigned long long>(est.table_rows),
               static_cast<unsigned long long>(est.sample_rows),
               static_cast<unsigned long long>(est.distinct_keys),
               est.top_share, est.topk_share, est.key_payload_corr);
  if (out == stdout) {
    std::fflush(stdout);
  } else {
    std::fclose(out);
  }
}

// p99 of per-rep wall times rendered in milliseconds for a table column.
inline std::string P99Ms(const std::vector<double>& rep_seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", Percentile(rep_seconds, 99.0) * 1e3);
  return buf;
}

}  // namespace bench
}  // namespace pjoin

#endif  // PJOIN_BENCH_BENCH_COMMON_H_
