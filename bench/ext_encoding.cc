// Extension: encoded column segments + join-on-codes measured end to end.
//
// Two sweeps, each executed with PJOIN_ENCODING off and on (the knob is
// re-read per query, so a setenv flip switches the whole path):
//   * every join-bearing TPC-H query — FOR-coded integer scans shrink the
//     bytes each scan reads per tuple; the columns report both widths,
//   * a generated CHAR-key star join (dictionary-friendly: wide keys, low
//     cardinality) where the join itself runs on remapped 4-byte codes.
// The encoded sweep runs first so each sweep's peak-RSS sample is taken
// while its own working set is the process high-water mark (ru_maxrss is
// monotonic; reversing the order would hide the encoded savings).
#include <sys/resource.h>

#include "bench/bench_common.h"
#include "stats/stats_catalog.h"
#include "storage/encoded_segment.h"
#include "util/rng.h"

namespace pjoin {
namespace {

std::string Ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", seconds * 1e3);
  return buf;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0 : v[v.size() / 2];
}

struct Paired {
  double off_seconds = 0;
  double on_seconds = 0;
  double speedup = 0;
};

// Interleaved off/on rounds; the speedup is the median of the per-round
// ratios, which cancels host drift (same idea as bench_common PairedDelta).
Paired MeasurePaired(const std::function<double()>& run_off,
                     const std::function<double()>& run_on, int reps) {
  run_off();  // warm-up
  run_on();
  std::vector<double> off, on, ratio;
  for (int r = 0; r < reps; ++r) {
    off.push_back(run_off());
    on.push_back(run_on());
    ratio.push_back(on.back() > 0 ? off.back() / on.back() : 0);
  }
  return Paired{Median(off), Median(on), Median(ratio)};
}

std::string SpeedupCell(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
  return buf;
}

// Scan bytes per source tuple from the on-leg's encoding section (which
// carries both the encoded and the would-be-plain byte counts).
std::string BytesPerTuple(uint64_t bytes, uint64_t tuples) {
  if (tuples == 0 || bytes == 0) return "-";  // no scan engaged encoding
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(bytes) / static_cast<double>(tuples));
  return buf;
}

double PeakRssMb() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // KiB on Linux
}

}  // namespace
}  // namespace pjoin

int main() {
  using namespace pjoin;
  const int64_t divisor = WorkloadScaleDivisor();
  const int reps = BenchRepetitions();
  const int threads = DefaultThreads();
  bench::PrintHeader(
      "Extension: encoded segments + join-on-codes (off vs on)",
      "extension of Bandle et al. Section 5.2 (bytes/tuple dominate join "
      "cost)",
      "identical plans executed with PJOIN_ENCODING off/on; kAuto strategy");

  ThreadPool pool(threads);
  auto run_off = [](const std::function<double()>& fn) {
    setenv("PJOIN_ENCODING", "0", 1);
    double s = fn();
    unsetenv("PJOIN_ENCODING");
    return s;
  };

  // --- dictionary-friendly CHAR-key star join (encoded leg first) --------
  // dim(CHAR(16) key, payload) |><| fact(CHAR(16) fk, grp, val): the keys
  // dictionary-encode to 2-byte scan codes and the join probes remapped
  // 4-byte codes instead of hashing 16-byte strings.
  const int64_t fact_rows = 8000000 / divisor;
  const int64_t dim_rows = 200000 / divisor;
  const uint64_t key_universe = static_cast<uint64_t>(dim_rows);
  Table dim("enc_dim", Schema({{"d_key", DataType::kChar, 16},
                               {"d_val", DataType::kInt64, 0}}));
  Rng rng(17);
  for (int64_t i = 0; i < dim_rows; ++i) {
    dim.column(0).AppendString("part#" + std::to_string(i));
    dim.column(1).AppendInt64(static_cast<int64_t>(rng.Below(1000)));
    dim.FinishRow();
  }
  Table fact("enc_fact", Schema({{"f_key", DataType::kChar, 16},
                                 {"f_grp", DataType::kInt64, 0},
                                 {"f_val", DataType::kInt64, 0}}));
  for (int64_t i = 0; i < fact_rows; ++i) {
    fact.column(0).AppendString("part#" +
                                std::to_string(rng.Below(key_universe)));
    fact.column(1).AppendInt64(static_cast<int64_t>(rng.Below(64)));
    fact.column(2).AppendInt64(static_cast<int64_t>(rng.Below(1000)));
    fact.FinishRow();
  }
  auto star = Aggregate(
      Join(ScanTable(&dim), ScanTable(&fact), {{"d_key", "f_key"}}),
      {"f_grp"}, {AggDef::CountStar("n"), AggDef::Sum("d_val", "sd"),
                  AggDef::Sum("f_val", "sf")});

  std::printf("--- CHAR(16)-key star join, dim=%lld fact=%lld rows ---\n",
              static_cast<long long>(dim_rows),
              static_cast<long long>(fact_rows));
  TablePrinter micro({"strategy", "off [ms]", "on [ms]", "speedup",
                      "B/tup off", "B/tup on", "coded pairs"});
  for (JoinStrategy strategy : {JoinStrategy::kBHJ, JoinStrategy::kRJ,
                                JoinStrategy::kAuto}) {
    ExecOptions opts = bench::Options(strategy, threads);
    QueryStats stats_on;
    Paired p = MeasurePaired(
        [&] {
          return run_off([&] {
            QueryStats s;
            ExecuteQuery(*star, opts, &s, &pool);
            return s.seconds;
          });
        },
        [&] {
          QueryStats s;
          ExecuteQuery(*star, opts, &s, &pool);
          stats_on = s;
          return s.seconds;
        },
        reps);
    micro.AddRow(
        {JoinStrategyName(strategy), Ms(p.off_seconds), Ms(p.on_seconds),
         SpeedupCell(p.speedup),
         BytesPerTuple(stats_on.metrics.encoding_plain_read_bytes(),
                       stats_on.source_tuples),
         BytesPerTuple(stats_on.metrics.encoding_scan_read_bytes(),
                       stats_on.source_tuples),
         std::to_string(stats_on.metrics.encoding_coded_join_pairs())});
    bench::DumpMetrics(std::string("ext_encoding star ") +
                           JoinStrategyName(strategy),
                       stats_on);
  }
  micro.Print();

  // --- TPC-H sweep --------------------------------------------------------
  const double sf = GetEnvDouble("PJOIN_SF", 0.05);
  auto db = GenerateTpch(sf);
  std::printf("\n--- TPC-H, scale factor %.3g ---\n", sf);
  TablePrinter tpch({"query", "off [ms]", "on [ms]", "speedup", "B/tup off",
                     "B/tup on", "coded pairs"});
  const double rss_before_tpch = PeakRssMb();
  for (const TpchQuery& query : TpchQueries()) {
    ExecOptions opts = bench::Options(JoinStrategy::kAuto, threads);
    QueryStats stats_on;
    Paired p = MeasurePaired(
        [&] {
          return run_off([&] {
            QueryStats s;
            query.run(*db, opts, &s, &pool);
            return s.seconds;
          });
        },
        [&] {
          QueryStats s;
          query.run(*db, opts, &s, &pool);
          stats_on = s;
          return s.seconds;
        },
        reps);
    tpch.AddRow(
        {"Q" + std::to_string(query.id), Ms(p.off_seconds), Ms(p.on_seconds),
         SpeedupCell(p.speedup),
         BytesPerTuple(stats_on.metrics.encoding_plain_read_bytes(),
                       stats_on.source_tuples),
         BytesPerTuple(stats_on.metrics.encoding_scan_read_bytes(),
                       stats_on.source_tuples),
         std::to_string(stats_on.metrics.encoding_coded_join_pairs())});
    bench::DumpMetrics("ext_encoding Q" + std::to_string(query.id), stats_on);
  }
  tpch.Print();
  std::printf(
      "\npeak RSS: %.1f MB before TPC-H sweep, %.1f MB after (high-water "
      "includes data generation; B/tup columns carry the bandwidth story)\n",
      rss_before_tpch, PeakRssMb());
  EncodingCatalog::Global().Invalidate();
  StatsCatalog::Global().Invalidate();
  return 0;
}
