// Extension: out-of-core join throughput under a shrinking memory budget.
//
// Workload A joined at budgets from 2x the build-side footprint down to
// 1/16x, per strategy. Above 1x nothing spills and the hybrid paths must
// cost nothing; below it the governor denies residency and the joins go
// out-of-core. The paper's NOCAP-adjacent observation to look for: once
// spilling is inevitable, the radix join degrades more gracefully than the
// BHJ, whose hybrid pays an extra re-pack pass over the build side.
#include "bench/bench_common.h"
#include "spill/memory_governor.h"
#include "util/bitutil.h"

int main() {
  using namespace pjoin;
  const int64_t divisor = WorkloadScaleDivisor();
  const int reps = BenchRepetitions();
  const int threads = DefaultThreads();
  bench::PrintHeader(
      "Extension: join throughput vs memory budget (out-of-core execution)",
      "extension of Bandle et al. Section 5.3 (memory-constrained joins)",
      "workload A, budget swept 2x..1/16x of the build-side footprint");

  ThreadPool pool(threads);
  MicroWorkload w = MakeWorkloadA(divisor);
  auto plan = CountJoinPlan(w);

  // Build-side footprint: padded [hash][key][pay] partition tuples.
  const uint64_t tuple = NextPow2(8 + 16);
  const uint64_t build_bytes = w.build_tuples * tuple;

  const double factors[] = {2.0, 1.0, 0.5, 0.25, 0.125, 0.0625};
  const JoinStrategy strategies[] = {JoinStrategy::kBHJ, JoinStrategy::kRJ,
                                     JoinStrategy::kBRJ};

  TablePrinter table({"budget", "x build", "BHJ [G T/s]", "BHJ spill [MiB]",
                      "RJ [G T/s]", "RJ spill [MiB]", "BRJ [G T/s]",
                      "BRJ spill [MiB]"});
  for (double factor : factors) {
    const uint64_t budget =
        static_cast<uint64_t>(static_cast<double>(build_bytes) * factor);
    std::vector<std::string> row;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f MiB",
                  static_cast<double>(budget) / (1024.0 * 1024.0));
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.4g", factor);
    row.push_back(buf);
    for (JoinStrategy strategy : strategies) {
      QueryStats stats;
      {
        ScopedMemoryBudget scoped(budget);
        stats = MeasurePlan(*plan, bench::Options(strategy, threads), reps,
                            &pool);
      }
      uint64_t spilled = 0;
      for (const JoinMetrics& j : stats.metrics.joins()) {
        spilled += j.spill.bytes_written;
      }
      row.push_back(bench::Gts(stats.Throughput()));
      std::snprintf(buf, sizeof(buf), "%.1f",
                    static_cast<double>(spilled) / (1024.0 * 1024.0));
      row.push_back(buf);
      std::snprintf(buf, sizeof(buf), "%.4g", factor);
      bench::DumpMetrics(std::string("ext_memory_budget ") +
                             JoinStrategyName(strategy) + " x" + buf,
                         stats);
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf(
      "\nexpected shape: identical throughput at 2x (no spilling, governor\n"
      "accounting only); below 1x all strategies spill (write + re-read the\n"
      "evicted partitions) and throughput steps down with the spilled\n"
      "fraction; the RJ curve falls more gently than the BHJ's because its\n"
      "pass-1 pre-partitions are the eviction unit -- no re-pack pass.\n");
  return 0;
}
