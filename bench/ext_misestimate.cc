// Extension: mid-query re-planning under injected estimate corruption.
//
// Workload A with the advisor's build-side cardinality estimate multiplied
// by x1/16 .. x16 (PJOIN_EST_SCALE fault injection). Three runs per factor:
//   * static   — kAuto with re-planning off: the misled plan executes as-is
//                (only the legacy overflow guardrail can save it),
//   * replan   — kAuto with PJOIN_REPLAN_QERROR=2: the deferred decision
//                re-costs the join with the observed build count,
//   * oracle   — the best manual strategy for this shape, measured: the
//                per-join floor no estimator can beat.
// The recovered column reports how much of the misled-static-vs-oracle
// wall-time gap re-planning closes; the acceptance target is >= 50% at the
// corruption extremes. Results are checked identical across all runs.
#include "bench/bench_common.h"

int main() {
  using namespace pjoin;
  const int64_t divisor = WorkloadScaleDivisor();
  const int reps = BenchRepetitions();
  const int threads = DefaultThreads();
  bench::PrintHeader(
      "Extension: re-planning vs injected misestimation",
      "extension of Bandle et al. Section 5 (the cost of deciding wrong)",
      "workload A, build estimate corrupted x1/16..x16; static vs replan vs "
      "measured per-join oracle");

  ThreadPool pool(threads);
  MicroWorkload w = MakeWorkloadA(divisor);
  auto plan = CountJoinPlan(w);

  // The measured oracle: best manual strategy for the (uncorrupted) shape.
  double oracle_seconds = 0;
  JoinStrategy oracle_strategy = JoinStrategy::kBHJ;
  for (JoinStrategy s : {JoinStrategy::kBHJ, JoinStrategy::kRJ,
                         JoinStrategy::kBRJ}) {
    QueryStats stats = MeasurePlan(*plan, bench::Options(s, threads), reps,
                                   &pool);
    if (oracle_seconds == 0 || stats.seconds < oracle_seconds) {
      oracle_seconds = stats.seconds;
      oracle_strategy = s;
    }
  }
  std::printf("oracle: %s at %.1f ms\n\n", JoinStrategyName(oracle_strategy),
              oracle_seconds * 1e3);

  const double scales[] = {1.0 / 16, 1.0 / 4, 1.0, 4.0, 16.0};

  // Pinned cost-model constants chosen so the decision boundary sits between
  // the true build size and its corrupted estimates: the uncorrupted build
  // (~12 MiB modeled at the default divisor) reads as cache-resident ->
  // BHJ, while the x4/x16 overestimates cross the boundary and the margin
  // sends the misled static plan to a partitioned strategy. Both advised
  // legs (static and replan) use the same model, so the only difference
  // between them is the mid-query correction.
  const uint64_t model_l2 = (256u << 20) / WorkloadScaleDivisor() * 4;
  TablePrinter table({"est x", "static [ms]", "static choice", "replan [ms]",
                      "replan final", "switched", "recovered"});
  for (double scale : scales) {
    ExecOptions opts = bench::Options(JoinStrategy::kAuto, threads);
    opts.advisor.l2_bytes = model_l2;
    opts.advisor.llc_bytes = model_l2 * 4;
    opts.advisor.partition_margin = 50.0;
    opts.advisor.est_scale = scale;
    opts.advisor.replan_qerror = 0.0;
    QueryStats stat_static = MeasurePlan(*plan, opts, reps, &pool);

    opts.advisor.replan_qerror = 2.0;
    QueryStats stat_replan = MeasurePlan(*plan, opts, reps, &pool);

    const JoinMetrics* js = stat_static.metrics.FindJoin(0);
    const JoinMetrics* jr = stat_replan.metrics.FindJoin(0);
    const char* static_choice =
        js != nullptr && js->advisor.present
            ? (js->advisor.fell_back ? "BHJ (guardrail)"
                                     : JoinStrategyName(js->advisor.choice))
            : "?";
    const char* replan_final =
        jr != nullptr && jr->replan.enabled
            ? JoinStrategyName(jr->replan.final_choice)
            : "?";
    const bool switched = jr != nullptr && jr->replan.switched;

    // Fraction of the misled-static-vs-oracle gap that re-planning closed.
    const double gap = stat_static.seconds - oracle_seconds;
    const double closed = stat_static.seconds - stat_replan.seconds;
    char recovered[32];
    if (gap > 1e-4 * oracle_seconds + 1e-6) {
      std::snprintf(recovered, sizeof(recovered), "%.0f%%",
                    100.0 * closed / gap);
    } else {
      std::snprintf(recovered, sizeof(recovered), "n/a (no gap)");
    }

    char buf[32];
    std::vector<std::string> row;
    std::snprintf(buf, sizeof(buf), "%.4g", scale);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.1f", stat_static.seconds * 1e3);
    row.push_back(buf);
    row.push_back(static_choice);
    std::snprintf(buf, sizeof(buf), "%.1f", stat_replan.seconds * 1e3);
    row.push_back(buf);
    row.push_back(replan_final);
    row.push_back(switched ? "yes" : "no");
    row.push_back(recovered);
    table.AddRow(std::move(row));

    std::snprintf(buf, sizeof(buf), "%.4g", scale);
    bench::DumpMetrics(std::string("ext_misestimate static x") + buf,
                       stat_static);
    bench::DumpMetrics(std::string("ext_misestimate replan x") + buf,
                       stat_replan);
  }
  table.Print();
  std::printf(
      "\nexpected shape: at x1 and below the build reads cache-resident and\n"
      "all legs agree on BHJ (no gap; underestimates trigger the re-cost but\n"
      "confirm the plan). At x4/x16 the overestimate drives the static plan\n"
      "into a needless partitioned join; the re-planner observes the true\n"
      "build count at the pipeline breaker, re-costs, switches to BHJ, and\n"
      "recovers >=50%% of the static-vs-oracle wall-time gap.\n");
  return 0;
}
