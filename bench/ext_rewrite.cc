// Extension: the algebraic rewrite layer (DP join reordering + distant
// semi-join/Bloom pushdown) measured end to end.
//
// Two sweeps, each executed with the rewrite pass off and on:
//   * every join-bearing TPC-H query on its hand-written plan — reordering
//     only fires when the statistics-costed order strictly beats the
//     written one, so the expected wins come from distant Bloom plants on
//     the deep probe chains (Q21-shaped trees),
//   * a generated dim -> mid -> big chain whose selective dimension sits
//     one join above the mid scan, swept over the fraction of mid's key
//     domain the dimension covers: the planted filter's pass rate. At
//     frac = 1.0 the cost gate must decline the plant (speedup ~1.0x).
// Columns: median wall ms off/on, speedup, rules fired (final step), and
// probe rows dropped by planted filters before any intermediate join.
#include "bench/bench_common.h"
#include "stats/stats_catalog.h"
#include "util/rng.h"

namespace pjoin {
namespace {

std::string Ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", seconds * 1e3);
  return buf;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0 : v[v.size() / 2];
}

// Interleaved off/on rounds; the speedup is the median of the per-round
// ratios, which cancels the host drift that dominates absolute medians for
// ms-scale queries (same idea as bench_common's PairedDelta).
struct Paired {
  double off_seconds = 0;
  double on_seconds = 0;
  double speedup = 0;
};

Paired MeasurePaired(const std::function<double()>& run_off,
                     const std::function<double()>& run_on, int reps) {
  run_off();  // warm-up
  run_on();
  std::vector<double> off, on, ratio;
  for (int r = 0; r < reps; ++r) {
    off.push_back(run_off());
    on.push_back(run_on());
    ratio.push_back(on.back() > 0 ? off.back() / on.back() : 0);
  }
  return Paired{Median(off), Median(on), Median(ratio)};
}

std::string SpeedupCell(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", ratio);
  return buf;
}

std::string RulesCell(const QueryStats& stats) {
  if (!stats.metrics.rewrite_present()) return "-";
  std::string rules = stats.metrics.rewrite_rules();
  return rules.empty() ? "-" : rules;
}

}  // namespace
}  // namespace pjoin

int main() {
  using namespace pjoin;
  const int64_t divisor = WorkloadScaleDivisor();
  const int reps = BenchRepetitions();
  const int threads = DefaultThreads();
  bench::PrintHeader(
      "Extension: query rewrite layer (reorder + distant Bloom pushdown)",
      "extension of Bandle et al. Section 3 (semi-join reduction in a real "
      "system)",
      "identical plans executed with PJOIN_REWRITE off/on; BHJ everywhere so "
      "only the rewrite differs");

  ThreadPool pool(threads);

  // --- TPC-H sweep -------------------------------------------------------
  const double sf = GetEnvDouble("PJOIN_SF", 0.05);
  auto db = GenerateTpch(sf);
  std::printf("--- TPC-H, scale factor %.3g ---\n", sf);
  TablePrinter tpch({"query", "off [ms]", "on [ms]", "speedup", "rules",
                     "bloom dropped"});
  for (const TpchQuery& query : TpchQueries()) {
    ExecOptions off = bench::Options(JoinStrategy::kBHJ, threads);
    off.rewrite.enabled = 0;
    ExecOptions on = off;
    on.rewrite.enabled = 1;
    QueryStats stats_on;
    Paired p = MeasurePaired(
        [&] {
          QueryStats s;
          query.run(*db, off, &s, &pool);
          return s.seconds;
        },
        [&] {
          QueryStats s;
          query.run(*db, on, &s, &pool);
          stats_on = s;
          return s.seconds;
        },
        reps);
    tpch.AddRow({"Q" + std::to_string(query.id), Ms(p.off_seconds),
                 Ms(p.on_seconds), SpeedupCell(p.speedup),
                 RulesCell(stats_on),
                 std::to_string(stats_on.metrics.rewrite_bloom_dropped())});
  }
  tpch.Print();

  // --- generated chain sweep --------------------------------------------
  // dim(d_k selective) |><| (mid(m_k, m_f) |><| big(b_f, b_v)): the Bloom
  // filter planted on the mid scan shrinks the lower join's build side by
  // the dimension's selectivity before a single intermediate tuple flows.
  const int64_t big_rows = 4000000 / divisor;
  const int64_t mid_rows = 400000 / divisor;
  // Domains scale with the rows so mid covers its whole key domain at any
  // divisor and the dimension's coverage fraction equals the filter's true
  // pass rate.
  const int64_t key_domain = std::max<int64_t>(1024, 65536 / divisor);
  const int64_t fk_domain = std::max<int64_t>(256, 16384 / divisor);
  std::printf("\n--- generated chain, big=%lld mid=%lld rows ---\n",
              static_cast<long long>(big_rows),
              static_cast<long long>(mid_rows));
  TablePrinter chain({"dim coverage", "off [ms]", "on [ms]", "speedup",
                      "rules", "bloom dropped"});
  for (double frac : {0.1, 0.25, 0.5, 1.0}) {
    const int64_t dim_rows = static_cast<int64_t>(frac * key_domain);
    Table dim("rwb_dim", Schema({{"d_k", DataType::kInt64, 0}}));
    for (int64_t k = 0; k < dim_rows; ++k) {
      dim.column(0).AppendInt64(k);
      dim.FinishRow();
    }
    Rng rng(31);
    Table mid("rwb_mid", Schema({{"m_k", DataType::kInt64, 0},
                                 {"m_f", DataType::kInt64, 0}}));
    for (int64_t i = 0; i < mid_rows; ++i) {
      mid.column(0).AppendInt64(
          static_cast<int64_t>(rng.Below(static_cast<uint64_t>(key_domain))));
      mid.column(1).AppendInt64(
          static_cast<int64_t>(rng.Below(static_cast<uint64_t>(fk_domain))));
      mid.FinishRow();
    }
    Table big("rwb_big", Schema({{"b_f", DataType::kInt64, 0},
                                 {"b_v", DataType::kInt64, 0}}));
    for (int64_t i = 0; i < big_rows; ++i) {
      big.column(0).AppendInt64(
          static_cast<int64_t>(rng.Below(static_cast<uint64_t>(fk_domain))));
      big.column(1).AppendInt64(static_cast<int64_t>(rng.Next() & 0xFF));
      big.FinishRow();
    }
    auto lower = Join(ScanTable(&mid), ScanTable(&big), {{"m_f", "b_f"}});
    auto upper = Join(ScanTable(&dim), std::move(lower), {{"d_k", "m_k"}});
    auto plan = Aggregate(std::move(upper), {},
                          {AggDef::CountStar("n"), AggDef::Sum("b_v", "s")});

    ExecOptions off = bench::Options(JoinStrategy::kBHJ, threads);
    off.rewrite.enabled = 0;
    ExecOptions on = off;
    on.rewrite.enabled = 1;
    // The written order is already optimal for this shape; keep reordering
    // out of the measurement so the sweep isolates the Bloom plant.
    on.rewrite.join_reorder = false;
    QueryStats stats_on;
    Paired p = MeasurePaired(
        [&] {
          QueryStats s;
          ExecuteQuery(*plan, off, &s, &pool);
          return s.seconds;
        },
        [&] {
          QueryStats s;
          ExecuteQuery(*plan, on, &s, &pool);
          stats_on = s;
          return s.seconds;
        },
        reps);
    char cov[16];
    std::snprintf(cov, sizeof(cov), "%.0f%%", frac * 100);
    chain.AddRow({cov, Ms(p.off_seconds), Ms(p.on_seconds),
                  SpeedupCell(p.speedup), RulesCell(stats_on),
                  std::to_string(stats_on.metrics.rewrite_bloom_dropped())});
    StatsCatalog::Global().Invalidate();  // tables die with this iteration
  }
  chain.Print();
  return 0;
}
