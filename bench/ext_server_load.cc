// Extension: closed-loop multi-client load against the query server.
//
// PJOIN_CLIENTS client threads (default 4) each open a Session and submit a
// fixed per-client count (PJOIN_CLIENT_QUERIES, default 16) of queries drawn
// round-robin from a three-class mix over the prior-work microbenchmark
// tables: a small count join ("point"), a payload-sum join over the full
// probe side ("scan"), and a build side sized to stress the per-query
// fair-share grant ("heavy") — under a PJOIN_MEMORY_BUDGET the heavy class
// is the one the governor pushes out-of-core. Each client waits for its
// query before submitting the next (closed loop), so the measured latency
// includes admission-queue wait. Reported: per-class p50/p99 latency, total
// QPS, the server's admission counters, and the governor's arbitration
// counters (denials / spill-pressure events).
#include <atomic>
#include <mutex>
#include <thread>

#include "bench/bench_common.h"
#include "server/query_server.h"
#include "spill/memory_governor.h"
#include "util/stopwatch.h"

int main() {
  using namespace pjoin;
  const int clients =
      std::max<int>(1, static_cast<int>(GetEnvInt64("PJOIN_CLIENTS", 4)));
  const int per_client = std::max<int>(
      1, static_cast<int>(GetEnvInt64("PJOIN_CLIENT_QUERIES", 16)));
  const int64_t divisor = WorkloadScaleDivisor();
  bench::PrintHeader(
      "Extension: closed-loop server load (multi-query runtime)",
      "server-mode extension of Bandle et al. (joins inside a real system "
      "serving concurrent queries)",
      "clients=" + std::to_string(clients) +
          " queries/client=" + std::to_string(per_client) +
          " max_concurrent=" + std::to_string(MaxConcurrentQueries()) +
          " threads/query=" + std::to_string(ServerThreadsPerQuery()));

  // The query mix. Tables are built once and shared read-only; the plans are
  // likewise shared — execution never mutates a plan, so concurrent queries
  // over one PlanNode are safe.
  struct QueryClass {
    const char* name;
    MicroWorkload workload;
    std::unique_ptr<PlanNode> plan;
  };
  QueryClass mix[3];
  mix[0].name = "point";
  mix[0].workload = MakeSizedWorkload(1 << 10, 1 << 13);
  mix[0].plan = CountJoinPlan(mix[0].workload);
  mix[1].name = "scan";
  mix[1].workload = MakePayloadWorkload(divisor, 2);
  mix[1].plan = SumPayloadPlan(mix[1].workload);
  mix[2].name = "heavy";
  mix[2].workload = MakeSizedWorkload(1 << 13, 1 << 15);
  mix[2].plan = CountJoinPlan(mix[2].workload);
  constexpr int kClasses = 3;

  MemoryGovernor::Global().ResetCountersForTest();
  QueryServer server;

  ExecOptions eo;
  eo.join_strategy = JoinStrategy::kAuto;
  eo.num_threads = server.threads_per_query();

  std::mutex mu;
  std::vector<std::vector<double>> latency(kClasses);
  std::atomic<uint64_t> rejected{0};

  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Session session = server.OpenSession();
      for (int q = 0; q < per_client; ++q) {
        // Stagger the starting class per client so the mix interleaves.
        const int cls = (c + q) % kClasses;
        Stopwatch watch;
        QueryHandlePtr handle = session.Submit(*mix[cls].plan, eo);
        handle->Wait();
        if (handle->state() == QueryState::kRejected) {
          // Closed loop over a bounded queue: rejection is possible only if
          // the queue bound is set below the client count. Count and retry.
          rejected.fetch_add(1, std::memory_order_relaxed);
          --q;
          continue;
        }
        const double seconds = watch.ElapsedSeconds();
        std::lock_guard<std::mutex> lock(mu);
        latency[cls].push_back(seconds);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = wall.ElapsedSeconds();

  TablePrinter table(
      {"class", "queries", "p50 [ms]", "p99 [ms]", "max [ms]"});
  uint64_t completed = 0;
  for (int cls = 0; cls < kClasses; ++cls) {
    completed += latency[cls].size();
    char buf[32];
    std::vector<std::string> row;
    row.push_back(mix[cls].name);
    row.push_back(std::to_string(latency[cls].size()));
    std::snprintf(buf, sizeof(buf), "%.2f",
                  Percentile(latency[cls], 50.0) * 1e3);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f",
                  Percentile(latency[cls], 99.0) * 1e3);
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f",
                  Percentile(latency[cls], 100.0) * 1e3);
    row.push_back(buf);
    table.AddRow(std::move(row));
  }
  table.Print();

  const MemoryGovernor& governor = MemoryGovernor::Global();
  std::printf("\n  total: %llu queries in %.2f s  (%.1f QPS)\n",
              static_cast<unsigned long long>(completed), elapsed,
              elapsed > 0 ? static_cast<double>(completed) / elapsed : 0.0);
  std::printf(
      "  server: submitted=%llu done=%llu rejected=%llu (retried)\n",
      static_cast<unsigned long long>(server.queries_submitted()),
      static_cast<unsigned long long>(server.queries_done()),
      static_cast<unsigned long long>(rejected.load()));
  std::printf(
      "  governor: budget=%s denials=%llu spill_pressure=%llu\n",
      governor.budget() == 0
          ? "unlimited"
          : TablePrinter::Mib(static_cast<double>(governor.budget())).c_str(),
      static_cast<unsigned long long>(governor.denials()),
      static_cast<unsigned long long>(governor.spill_pressure()));
  return 0;
}
