// Extension experiment (paper footnote 11): JCC-H-style skewed TPC-H.
//
// "JCC-H provides a more realistic drop-in replacement for TPC-H with skew.
// It puts even more pressure on the radix join." We regenerate TPC-H with
// Zipf-distributed o_custkey / l_partkey foreign keys and rerun the queries
// whose dominant joins consume those keys, comparing BHJ vs BRJ on uniform
// and skewed data.
#include "bench/bench_common.h"

int main() {
  using namespace pjoin;
  const double sf = BenchScaleFactor();
  const double skew = GetEnvDouble("PJOIN_TPCH_SKEW", 0.9);
  const int reps = BenchRepetitions();
  const int threads = DefaultThreads();
  bench::PrintHeader(
      "Extension: JCC-H-style skewed TPC-H (footnote 11)",
      "Bandle et al., Section 6 discussion",
      "SF " + std::to_string(sf) + ", fk Zipf z=" + std::to_string(skew));

  auto uniform = GenerateTpch(sf);
  auto skewed = GenerateTpch(sf, /*seed=*/19, /*fk_skew=*/skew);
  ThreadPool pool(threads);

  // The sampled estimate of the Zipf'd foreign keys goes to the metrics
  // side-channel, so the JSON records what skew the queries actually faced.
  bench::DumpSkewEstimate("ext_skewed_tpch_o_custkey", skewed->orders,
                          skewed->orders.schema().Find("o_custkey"));
  bench::DumpSkewEstimate("ext_skewed_tpch_l_partkey", skewed->lineitem,
                          skewed->lineitem.schema().Find("l_partkey"));

  // Tail latency (p99 of per-join wall time) alongside the medians: under
  // skew the radix join's slowest rep diverges from its median much faster
  // than the BHJ's does.
  TablePrinter table({"query", "BHJ uni [ms]", "BRJ uni [ms]",
                      "BHJ skew [ms]", "BHJ skew p99", "BRJ skew [ms]",
                      "BRJ skew p99", "BRJ penalty from skew"});
  for (int qid : {3, 5, 9, 10, 14, 18}) {  // custkey/partkey-heavy queries
    const TpchQuery& query = GetTpchQuery(qid);
    QueryStats bhj_u = bench::MeasureTpch(
        query, *uniform, bench::Options(JoinStrategy::kBHJ, threads), reps,
        &pool);
    QueryStats brj_u = bench::MeasureTpch(
        query, *uniform, bench::Options(JoinStrategy::kBRJ, threads), reps,
        &pool);
    std::vector<double> bhj_s_reps, brj_s_reps;
    QueryStats bhj_s = bench::MeasureTpch(
        query, *skewed, bench::Options(JoinStrategy::kBHJ, threads), reps,
        &pool, &bhj_s_reps);
    QueryStats brj_s = bench::MeasureTpch(
        query, *skewed, bench::Options(JoinStrategy::kBRJ, threads), reps,
        &pool, &brj_s_reps);
    bench::DumpMetrics("ext_skewed_tpch_q" + std::to_string(qid) + "_bhj",
                       bhj_s);
    bench::DumpMetrics("ext_skewed_tpch_q" + std::to_string(qid) + "_brj",
                       brj_s);
    // How much more the BRJ slows down under skew than the BHJ does.
    double brj_ratio = brj_s.seconds / brj_u.seconds;
    double bhj_ratio = bhj_s.seconds / bhj_u.seconds;
    table.AddRow({"Q" + std::to_string(qid),
                  TablePrinter::Double(bhj_u.seconds * 1e3, 1),
                  TablePrinter::Double(brj_u.seconds * 1e3, 1),
                  TablePrinter::Double(bhj_s.seconds * 1e3, 1),
                  bench::P99Ms(bhj_s_reps),
                  TablePrinter::Double(brj_s.seconds * 1e3, 1),
                  bench::P99Ms(brj_s_reps),
                  TablePrinter::Percent(brj_ratio / bhj_ratio - 1.0)});
  }
  table.Print();
  std::printf(
      "\nexpected shape: skew helps the BHJ (cache locality on hot keys)\n"
      "and unbalances the BRJ's partitions, so the last column trends\n"
      "positive — real-world-like data pushes further against partitioning.\n");
  return 0;
}
