// Figure 1: relative performance of the Bloom-filtered partitioned join vs
// the non-partitioned hash join for EVERY join of TPC-H, labeled Q<id>-J<n>
// and broken down by build/probe side size.
//
// Methodology (Sections 1 and 5.3.2): for every join j of every query, flip
// only j from BHJ to BRJ and report the pairwise change in total query time;
// the paper plots this against the join's build/probe bytes with the LLC
// boundary marked.
#include "bench/bench_common.h"
#include "util/cpu_info.h"

int main() {
  using namespace pjoin;
  const double sf = BenchScaleFactor();
  const int reps = BenchRepetitions();
  const int threads = DefaultThreads();
  bench::PrintHeader(
      "Figure 1: BRJ vs BHJ for every TPC-H join",
      "Bandle et al., Figure 1",
      "TPC-H SF " + std::to_string(sf) + "; positive = BRJ faster");

  auto db = GenerateTpch(sf);
  ThreadPool pool(threads);
  const int64_t llc = GetCpuInfo().llc_bytes;
  std::printf("LLC: %s — builds below this line need no partitioning\n\n",
              TablePrinter::Mib(static_cast<double>(llc)).c_str());

  TablePrinter table({"join", "kind", "build bytes", "probe bytes",
                      "build<LLC", "BRJ vs BHJ"});
  int total_joins = 0;
  int brj_wins = 0;
  for (const TpchQuery& query : TpchQueries()) {
    // One all-BHJ run provides the per-join audits.
    ExecOptions base_options = bench::Options(JoinStrategy::kBHJ, threads);
    QueryStats base;
    query.run(*db, base_options, &base, &pool);
    for (int j = 0; j < query.num_joins; ++j) {
      ExecOptions mixed = base_options;
      mixed.join_overrides[j] = JoinStrategy::kBRJ;
      // Paired interleaved timing — per-join flips move total query time by
      // a few percent at most, far below unpaired run-to-run drift.
      double delta = bench::PairedDelta(
          [&] {
            QueryStats stats;
            query.run(*db, base_options, &stats, &pool);
            return stats.seconds;
          },
          [&] {
            QueryStats stats;
            query.run(*db, mixed, &stats, &pool);
            return stats.seconds;
          },
          reps);
      const JoinAudit& audit = base.join_audits[j];
      if (delta > 0.10) ++brj_wins;
      ++total_joins;
      table.AddRow({"Q" + std::to_string(query.id) + "-J" +
                        std::to_string(j + 1),
                    JoinKindName(audit.kind),
                    std::to_string(audit.build_bytes()),
                    std::to_string(audit.probe_bytes()),
                    audit.build_bytes() < static_cast<uint64_t>(llc) ? "yes"
                                                                     : "no",
                    TablePrinter::Percent(delta)});
    }
  }
  table.Print();
  std::printf(
      "\n%d joins measured; BRJ gave a >10%% total-time win on %d of them.\n"
      "paper shape (SF 100): a noticeable BRJ improvement in only 1 of 59\n"
      "joins (Q22-J1); most TPC-H builds fit the LLC, where partitioning\n"
      "cannot pay off.\n",
      total_joins, brj_wins);
  return 0;
}
