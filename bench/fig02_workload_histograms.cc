// Figure 2: tuple size and join-partner distributions — TPC-H vs prior work.
//
// The paper's Figure 2 motivates the whole study: prior work benchmarks
// narrow tuples (8-16 B) at 100% join partners, while TPC-H joins see wide
// tuples and low selectivities. We run every TPC-H query once (BHJ), collect
// the per-join audits, and print both histograms next to the prior-work
// values.
#include <map>

#include "bench/bench_common.h"

int main() {
  using namespace pjoin;
  const double sf = BenchScaleFactor();
  bench::PrintHeader("Figure 2: Tuple Size and Join Partners in TPC-H",
                     "Bandle et al., Figure 2",
                     "TPC-H SF " + std::to_string(sf));

  auto db = GenerateTpch(sf);
  ThreadPool pool(DefaultThreads());
  ExecOptions options = bench::Options(JoinStrategy::kBHJ, pool.num_threads());

  std::vector<JoinAudit> audits;
  for (const TpchQuery& query : TpchQueries()) {
    QueryStats stats;
    query.run(*db, options, &stats, &pool);
    for (const auto& audit : stats.join_audits) audits.push_back(audit);
  }
  std::printf("collected %zu joins across %zu queries (paper: 59 joins)\n\n",
              audits.size(), TpchQueries().size());

  // Histogram of probe tuple widths (payload size), 8-byte buckets.
  std::map<int, int> width_hist;
  std::map<int, int> partner_hist;  // 10% buckets
  for (const auto& audit : audits) {
    width_hist[static_cast<int>(audit.probe_width / 8) * 8]++;
    partner_hist[static_cast<int>(audit.match_fraction() * 10) * 10]++;
  }

  TablePrinter widths({"probe tuple size [B]", "TPC-H joins [%]",
                       "prior work [%]"});
  for (const auto& [bucket, count] : width_hist) {
    double pct = 100.0 * count / audits.size();
    // Prior work: all tuples are 8 or 16 bytes (Table 1).
    double prior = (bucket == 8 || bucket == 16) ? 50.0 : 0.0;
    widths.AddRow({std::to_string(bucket) + "-" + std::to_string(bucket + 7),
                   TablePrinter::Double(pct, 1), TablePrinter::Double(prior, 1)});
  }
  widths.Print();
  std::printf("\n");

  TablePrinter partners({"join partners [%]", "TPC-H joins [%]",
                         "prior work [%]"});
  for (int bucket = 0; bucket <= 100; bucket += 10) {
    auto it = partner_hist.find(bucket);
    double pct = it == partner_hist.end()
                     ? 0.0
                     : 100.0 * it->second / audits.size();
    double prior = bucket == 100 ? 100.0 : 0.0;
    partners.AddRow({std::to_string(bucket) + "-" + std::to_string(bucket + 9),
                     TablePrinter::Double(pct, 1),
                     TablePrinter::Double(prior, 1)});
  }
  partners.Print();

  std::printf(
      "\npaper shape: prior work concentrates at 8-16 B / 100%% partners;\n"
      "TPC-H spreads over wide tuples and low join-partner fractions.\n");
  return 0;
}
