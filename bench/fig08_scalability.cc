// Figure 8: scalability and comparison to Balkesen et al.
//
// Workloads A and B; our system joins (BHJ, RJ) against the stand-alone
// prior-work joins (NPJ, PRJ) across a thread sweep. Throughput is processed
// tuples per second. On a single-core host the sweep still runs (the morsel
// scheduler and all synchronization are real), but wall-clock speedup is
// hardware-gated — the series then shows the *overhead* of extra workers,
// not speedup (see EXPERIMENTS.md).
#include "baseline/balkesen.h"
#include "bench/bench_common.h"
#include "util/stopwatch.h"

namespace pjoin {
namespace {

template <typename Tuple>
void FillBaselineArrays(const MicroWorkload& w, std::vector<Tuple>* build,
                        std::vector<Tuple>* probe) {
  build->resize(w.build.num_rows());
  probe->resize(w.probe.num_rows());
  const bool narrow = sizeof(Tuple) == 8;
  for (uint64_t r = 0; r < w.build.num_rows(); ++r) {
    (*build)[r].key = narrow ? w.build.column(0).GetInt32(r)
                             : w.build.column(0).GetInt64(r);
    (*build)[r].payload = static_cast<decltype(Tuple::payload)>(r);
  }
  for (uint64_t r = 0; r < w.probe.num_rows(); ++r) {
    (*probe)[r].key = narrow ? w.probe.column(0).GetInt32(r)
                             : w.probe.column(0).GetInt64(r);
    (*probe)[r].payload = static_cast<decltype(Tuple::payload)>(r);
  }
}

template <typename Tuple>
void RunWorkload(const char* label, const MicroWorkload& w, int reps) {
  std::vector<Tuple> build, probe;
  FillBaselineArrays(w, &build, &probe);
  const uint64_t total_tuples = w.build_tuples + w.probe_tuples;
  auto plan = CountJoinPlan(w);

  std::printf("Workload %s (%s build, %s probe)\n", label,
              TablePrinter::Mib(static_cast<double>(w.build.TotalBytes()))
                  .c_str(),
              TablePrinter::Mib(static_cast<double>(w.probe.TotalBytes()))
                  .c_str());
  TablePrinter table({"threads", "NPJ [G T/s]", "PRJ [G T/s]", "BHJ [G T/s]",
                      "RJ [G T/s]"});
  for (int threads : bench::ThreadSweep()) {
    ThreadPool pool(threads);
    QueryStats npj = MeasureRuns(
        [&](QueryStats* stats) {
          Stopwatch watch;
          BalkesenNPJ(build, probe, pool);
          stats->seconds = watch.ElapsedSeconds();
          stats->source_tuples = total_tuples;
        },
        reps);
    QueryStats prj = MeasureRuns(
        [&](QueryStats* stats) {
          Stopwatch watch;
          BalkesenPRJ(build, probe, pool);
          stats->seconds = watch.ElapsedSeconds();
          stats->source_tuples = total_tuples;
        },
        reps);
    QueryStats bhj = MeasurePlan(
        *plan, bench::Options(JoinStrategy::kBHJ, threads), reps, &pool);
    QueryStats rj = MeasurePlan(
        *plan, bench::Options(JoinStrategy::kRJ, threads), reps, &pool);
    table.AddRow({std::to_string(threads), bench::Gts(npj.Throughput()),
                  bench::Gts(prj.Throughput()), bench::Gts(bhj.Throughput()),
                  bench::Gts(rj.Throughput())});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace pjoin

int main() {
  using namespace pjoin;
  const int64_t divisor = WorkloadScaleDivisor();
  const int reps = BenchRepetitions();
  bench::PrintHeader("Figure 8: Scalability and comparison to Balkesen et al.",
                     "Bandle et al., Figure 8",
                     "scale divisor " + std::to_string(divisor) + ", " +
                         std::to_string(reps) + " reps (median)");
  {
    MicroWorkload a = MakeWorkloadA(divisor);
    RunWorkload<Tuple8>("A", a, reps);
  }
  {
    MicroWorkload b = MakeWorkloadB(divisor);
    RunWorkload<Tuple4>("B", b, reps);
  }
  std::printf(
      "paper shape: all joins scale with hardware contexts; RJ gains more\n"
      "from physical cores, NPJ/BHJ gain more from hyper-threads; workload A\n"
      "saturates memory bandwidth before workload B.\n");
  return 0;
}
