// Figure 9: scalability on different machines (NUMA Sandy Bridge, Ryzen 9).
//
// The paper runs the workload-A/B thread sweeps on a 2-socket NUMA machine
// and a chiplet-based Ryzen 9, showing RJ's bandwidth ceiling. We cannot
// conjure extra sockets, so this bench reproduces the *series* on the host:
// BHJ and RJ over workloads A and B across the thread sweep. The
// NUMA-relevant code path — worker-local chunked partition output so pass-1
// writes never cross workers — is exercised on every run (and unit-tested);
// only the multi-socket wall-clock effect is hardware-gated.
#include "bench/bench_common.h"

int main() {
  using namespace pjoin;
  const int64_t divisor = WorkloadScaleDivisor();
  const int reps = BenchRepetitions();
  bench::PrintHeader(
      "Figure 9: Scalability on different machines",
      "Bandle et al., Figure 9",
      "single host; NUMA effect hardware-gated, see EXPERIMENTS.md");

  MicroWorkload a = MakeWorkloadA(divisor);
  MicroWorkload b = MakeWorkloadB(divisor);
  auto plan_a = CountJoinPlan(a);
  auto plan_b = CountJoinPlan(b);

  TablePrinter table({"threads", "BHJ A [G T/s]", "RJ A [G T/s]",
                      "BHJ B [G T/s]", "RJ B [G T/s]"});
  for (int threads : bench::ThreadSweep()) {
    ThreadPool pool(threads);
    QueryStats bhj_a = MeasurePlan(
        *plan_a, bench::Options(JoinStrategy::kBHJ, threads), reps, &pool);
    QueryStats rj_a = MeasurePlan(
        *plan_a, bench::Options(JoinStrategy::kRJ, threads), reps, &pool);
    QueryStats bhj_b = MeasurePlan(
        *plan_b, bench::Options(JoinStrategy::kBHJ, threads), reps, &pool);
    QueryStats rj_b = MeasurePlan(
        *plan_b, bench::Options(JoinStrategy::kRJ, threads), reps, &pool);
    table.AddRow({std::to_string(threads), bench::Gts(bhj_a.Throughput()),
                  bench::Gts(rj_a.Throughput()), bench::Gts(bhj_b.Throughput()),
                  bench::Gts(rj_b.Throughput())});
  }
  table.Print();
  std::printf(
      "\npaper shape: on Sandy Bridge the RJ scales 10-16x across sockets;\n"
      "on the bandwidth-starved Ryzen 9 it flattens and then degrades under\n"
      "contention, while the BHJ behaves alike on all machines.\n");
  return 0;
}
