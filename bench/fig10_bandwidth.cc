// Figure 10: memory bandwidth per phase of the radix join (24 B tuples).
//
// The paper measures read/write DRAM bandwidth with Intel PCM while the RJ
// executes "SELECT sum(s.p1) FROM build r, probe s WHERE r.k = s.k" on
// 24 B probe tuples. We substitute software byte accounting: each phase
// counts the bytes the algorithm logically reads/writes, and the bench
// reports per-phase wall time and effective bandwidth — preserving the
// figure's message (partitioning dominates and every phase is
// bandwidth-bound, padding included).
//
// The paper's columns run with PJOIN_ENCODING=0 so the 24 B tuple story is
// unchanged; the two extension columns re-run the query with encoded
// segments on (DESIGN.md §16) — FOR-coded scans shrink the pipeline reads,
// while the partition phases move the same materialized tuples.
#include <cstdlib>

#include "bench/bench_common.h"

int main() {
  using namespace pjoin;
  const int64_t divisor = WorkloadScaleDivisor();
  bench::PrintHeader(
      "Figure 10: Memory bandwidth for 24 B wide tuples (RJ phases)",
      "Bandle et al., Figure 10",
      "software byte accounting substitutes PCM (see DESIGN.md); enc columns "
      "re-run with encoded segments on");

  // One 8 B payload column: probe row = 16 B; partition tuple = 8 B hash +
  // 16 B row = 24 B, padded to 32 B for the write-combine buffers.
  MicroWorkload w = MakePayloadWorkload(divisor, /*payload_cols=*/1);
  auto plan = SumPayloadPlan(w);
  ThreadPool pool(DefaultThreads());
  setenv("PJOIN_ENCODING", "0", 1);
  QueryStats stats = MeasurePlan(
      *plan, bench::Options(JoinStrategy::kRJ, pool.num_threads()),
      BenchRepetitions(), &pool);
  unsetenv("PJOIN_ENCODING");
  QueryStats enc_stats = MeasurePlan(
      *plan, bench::Options(JoinStrategy::kRJ, pool.num_threads()),
      BenchRepetitions(), &pool);

  TablePrinter table({"phase", "time [ms]", "read [MB/s]", "write [MB/s]",
                      "total [MB/s]", "enc time [ms]", "enc read [MB/s]"});
  const JoinPhase phases[] = {
      JoinPhase::kBuildPipeline, JoinPhase::kPartitionPass1,
      JoinPhase::kHistogramScan, JoinPhase::kPartitionPass2, JoinPhase::kJoin};
  double total_seconds = 0;
  for (JoinPhase phase : phases) {
    double seconds = stats.phase_timer.seconds(phase);
    total_seconds += seconds;
    const PhaseBytes& bytes = stats.bytes.phase(phase);
    auto mbps = [](double b, double s) {
      return s > 0 ? TablePrinter::Double(b / s / 1e6, 0) : "0";
    };
    const double enc_seconds = enc_stats.phase_timer.seconds(phase);
    const PhaseBytes& enc_bytes = enc_stats.bytes.phase(phase);
    table.AddRow({JoinPhaseName(phase), TablePrinter::Double(seconds * 1e3, 1),
                  mbps(static_cast<double>(bytes.read), seconds),
                  mbps(static_cast<double>(bytes.written), seconds),
                  mbps(static_cast<double>(bytes.read + bytes.written),
                       seconds),
                  TablePrinter::Double(enc_seconds * 1e3, 1),
                  mbps(static_cast<double>(enc_bytes.read), enc_seconds)});
  }
  table.Print();
  bench::DumpMetrics("fig10 RJ payload=1", stats);
  bench::DumpMetrics("fig10 RJ payload=1 encoded", enc_stats);
  std::printf("\ntotal measured phase time: %.1f ms (query %.1f ms)\n",
              total_seconds * 1e3, stats.seconds * 1e3);
  std::printf("partition tuple stride: 32 B (24 B padded — Section 5.2.3)\n");
  std::printf(
      "paper shape: the probe-side partitioning passes dominate the\n"
      "execution time and both passes plus the join are bandwidth-bound.\n");
  if (enc_stats.metrics.encoding_present()) {
    std::printf(
        "encoded scans read %llu B where plain reads %llu B (%.1fx "
        "bytes/tuple reduction at the source).\n",
        static_cast<unsigned long long>(
            enc_stats.metrics.encoding_scan_read_bytes()),
        static_cast<unsigned long long>(
            enc_stats.metrics.encoding_plain_read_bytes()),
        enc_stats.metrics.encoding_scan_read_bytes() > 0
            ? static_cast<double>(
                  enc_stats.metrics.encoding_plain_read_bytes()) /
                  static_cast<double>(
                      enc_stats.metrics.encoding_scan_read_bytes())
            : 0.0);
  }
  return 0;
}
