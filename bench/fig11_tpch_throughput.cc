// Figure 11: throughput of all TPC-H queries containing joins, with every
// join replaced by the join under testing, across a scale-factor sweep and
// with/without late materialization.
//
// Scale factors are env-tunable (PJOIN_SF_LIST, default "0.01,0.03,0.1" —
// the paper sweeps 1..100 on a 64 GB machine; the *shape* over SF is what
// matters: BHJ dominates small SFs, BRJ catches up as build sides outgrow
// the LLC).
#include <sstream>

#include "bench/bench_common.h"

namespace pjoin {
namespace {

std::vector<double> ScaleFactors() {
  std::string list = GetEnvString("PJOIN_SF_LIST", "0.01,0.03,0.1");
  std::vector<double> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    out.push_back(std::stod(item));
  }
  return out;
}

}  // namespace
}  // namespace pjoin

int main() {
  using namespace pjoin;
  const int reps = BenchRepetitions();
  const int threads = DefaultThreads();
  bench::PrintHeader(
      "Figure 11: TPC-H throughput per query (joins replaced wholesale)",
      "Bandle et al., Figure 11",
      "throughput = source tuples / time; LM = late materialization");

  ThreadPool pool(threads);
  for (double sf : ScaleFactors()) {
    auto db = GenerateTpch(sf);
    std::printf("--- scale factor %.3g (lineitem: %llu rows) ---\n", sf,
                static_cast<unsigned long long>(db->lineitem.num_rows()));
    TablePrinter table({"query", "BHJ", "BRJ", "RJ", "BHJ(LM)", "BRJ(LM)",
                        "RJ(LM)", "[G T/s]"});
    struct Config {
      JoinStrategy strategy;
      bool lm;
    };
    const Config configs[] = {
        {JoinStrategy::kBHJ, false}, {JoinStrategy::kBRJ, false},
        {JoinStrategy::kRJ, false},  {JoinStrategy::kBHJ, true},
        {JoinStrategy::kBRJ, true},  {JoinStrategy::kRJ, true}};
    for (const TpchQuery& query : TpchQueries()) {
      std::vector<std::string> row{"Q" + std::to_string(query.id)};
      for (const Config& config : configs) {
        QueryStats stats = bench::MeasureTpch(
            query, *db,
            bench::Options(config.strategy, threads, config.lm), reps, &pool);
        row.push_back(bench::Gts(stats.Throughput()));
        bench::DumpMetrics("fig11 sf=" + std::to_string(sf) + " Q" +
                               std::to_string(query.id) + " " +
                               JoinStrategyName(config.strategy) +
                               (config.lm ? " LM" : ""),
                           stats);
      }
      row.push_back("");
      table.AddRow(row);
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "paper shape: BHJ delivers the best overall performance (clearest\n"
      "below SF 30); BRJ > RJ everywhere; BRJ beats BHJ only for Q22 at\n"
      "large SFs; LM is orthogonal to the partitioning question.\n");
  return 0;
}
