// Figure 12: relative impact per join for selected TPC-H queries.
//
// For each join j of a query we fix all other joins to BHJ and flip only j
// to BRJ, then report the pairwise change in total execution time
// (negative = BHJ faster for that join, positive = BRJ faster) — the
// methodology of Section 5.3.2.
#include "bench/bench_common.h"

int main() {
  using namespace pjoin;
  const double sf = BenchScaleFactor();
  const int reps = BenchRepetitions();
  const int threads = DefaultThreads();
  bench::PrintHeader(
      "Figure 12: Relative impact per join (BHJ vs BRJ)",
      "Bandle et al., Figure 12",
      "TPC-H SF " + std::to_string(sf) +
          "; join numbers are post-order as in the paper");

  auto db = GenerateTpch(sf);
  ThreadPool pool(threads);

  for (int qid : {5, 7, 8, 9, 21, 22}) {
    const TpchQuery& query = GetTpchQuery(qid);
    ExecOptions base_options = bench::Options(JoinStrategy::kBHJ, threads);
    QueryStats base = bench::MeasureTpch(query, *db, base_options, reps,
                                         &pool);
    TablePrinter table({"join #", "all-BHJ [ms]", "BHJ vs BRJ (paired)"});
    for (int j = 0; j < query.num_joins; ++j) {
      ExecOptions mixed = base_options;
      mixed.join_overrides[j] = JoinStrategy::kBRJ;
      // Paired interleaved timing; positive = flipping this join to BRJ
      // made the whole query faster.
      double delta = bench::PairedDelta(
          [&] {
            QueryStats stats;
            query.run(*db, base_options, &stats, &pool);
            return stats.seconds;
          },
          [&] {
            QueryStats stats;
            query.run(*db, mixed, &stats, &pool);
            return stats.seconds;
          },
          reps);
      table.AddRow({std::to_string(j + 1),
                    TablePrinter::Double(base.seconds * 1e3, 1),
                    TablePrinter::Percent(delta)});
    }
    std::printf("Q%d (%s)\n", qid, query.name.c_str());
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "paper shape: most joins barely matter; a wrong choice on an\n"
      "expensive join costs up to 60%%, and only Q22's anti join gains\n"
      "(~+30%%) from the BRJ.\n");
  return 0;
}
