// Figure 13: the Q21 join tree annotated with build and probe sizes.
//
// We execute Q21 once under BHJ and print every join's measured build/probe
// cardinalities and byte volumes in post-order — the annotation of the
// paper's left-deep tree.
#include "bench/bench_common.h"

int main() {
  using namespace pjoin;
  const double sf = BenchScaleFactor();
  bench::PrintHeader("Figure 13: Q21 join tree, build and probe sizes",
                     "Bandle et al., Figure 13",
                     "TPC-H SF " + std::to_string(sf));

  auto db = GenerateTpch(sf);
  ThreadPool pool(DefaultThreads());
  QueryStats stats;
  GetTpchQuery(21).run(*db, bench::Options(JoinStrategy::kBHJ,
                                           pool.num_threads()),
                       &stats, &pool);

  TablePrinter table({"join", "kind", "build tuples", "build size",
                      "probe tuples", "probe size", "partners"});
  for (const auto& audit : stats.join_audits) {
    table.AddRow(
        {std::to_string(audit.join_id + 1), JoinKindName(audit.kind),
         std::to_string(audit.build_tuples),
         TablePrinter::Mib(static_cast<double>(audit.build_bytes())),
         std::to_string(audit.probe_tuples),
         TablePrinter::Mib(static_cast<double>(audit.probe_bytes())),
         TablePrinter::Double(audit.match_fraction() * 100, 1) + "%"});
  }
  table.Print();
  std::printf(
      "\npaper shape (SF 100): a left-deep tree — a tiny nation⋈supplier\n"
      "join, then supplier⋈lineitem at 1 MB : 6 GB, orders at ~1:2, the\n"
      "exists-check at ~1:2, and the anti-check against lineitem again.\n"
      "(Our joins 4/5 probe the order-level supplier spans instead of raw\n"
      "lineitem — see the Q21 decomposition note in DESIGN.md.)\n");
  return 0;
}
