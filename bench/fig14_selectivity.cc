// Figure 14: impact of pre-filtering the probe side with the Bloom filter —
// foreign-key selectivity sweep on workload A.
#include "bench/bench_common.h"

int main() {
  using namespace pjoin;
  const int64_t divisor = WorkloadScaleDivisor();
  const int reps = BenchRepetitions();
  const int threads = DefaultThreads();
  bench::PrintHeader(
      "Figure 14: Impact of Bloom-filter early probing (selectivity sweep)",
      "Bandle et al., Figure 14",
      "workload A, probe size constant, match fraction varied");

  ThreadPool pool(threads);
  TablePrinter table({"join partners [%]", "BRJ [G T/s]", "BHJ [G T/s]",
                      "RJ [G T/s]", "BRJ adaptive [G T/s]", "filter dropped"});
  for (int partners = 0; partners <= 100; partners += 10) {
    MicroWorkload w =
        MakeSelectivityWorkload(divisor, partners / 100.0);
    auto plan = CountJoinPlan(w);
    QueryStats brj = MeasurePlan(
        *plan, bench::Options(JoinStrategy::kBRJ, threads), reps, &pool);
    QueryStats bhj = MeasurePlan(
        *plan, bench::Options(JoinStrategy::kBHJ, threads), reps, &pool);
    QueryStats rj = MeasurePlan(
        *plan, bench::Options(JoinStrategy::kRJ, threads), reps, &pool);
    QueryStats adaptive = MeasurePlan(
        *plan, bench::Options(JoinStrategy::kBRJAdaptive, threads), reps,
        &pool);
    table.AddRow({std::to_string(partners), bench::Gts(brj.Throughput()),
                  bench::Gts(bhj.Throughput()), bench::Gts(rj.Throughput()),
                  bench::Gts(adaptive.Throughput()),
                  std::to_string(brj.bloom_dropped)});
    const std::string tag = "fig14 partners=" + std::to_string(partners);
    bench::DumpMetrics(tag + " BRJ", brj);
    bench::DumpMetrics(tag + " BRJadaptive", adaptive);
  }
  table.Print();
  std::printf(
      "\npaper shape: BRJ is up to ~50%% faster than RJ at low selectivity;\n"
      "RJ overtakes BRJ once >50%% of foreign keys find a partner; the\n"
      "adaptive BRJ tracks the better of the two (<10%% sampling overhead);\n"
      "RJ is 10-40%% faster than BHJ at low selectivity when all other\n"
      "parameters are near-optimal.\n");
  return 0;
}
