// Figure 15: impact of the probe-side payload size, with and without late
// materialization (workload A, 100% selectivity).
//
// The probe tuple is widened 16 B -> 72 B by adding 8 B randomized payload
// columns; every payload column is aggregated so the full tuple flows
// through (and, for the RJ, is materialized by) the join. With the stored
// hash value the partitioned tuples reach 80 B, exactly the paper's range.
#include "bench/bench_common.h"
#include "util/bitutil.h"

int main() {
  using namespace pjoin;
  const int64_t divisor = WorkloadScaleDivisor();
  const int reps = BenchRepetitions();
  const int threads = DefaultThreads();
  bench::PrintHeader(
      "Figure 15: Impact of payload size on join performance",
      "Bandle et al., Figure 15",
      "workload A, 100% selectivity, all payload columns aggregated");

  ThreadPool pool(threads);
  TablePrinter table({"probe row [B]", "part. tuple [B]", "BHJ [G T/s]",
                      "BHJ LM [G T/s]", "RJ [G T/s]", "RJ LM [G T/s]"});
  for (int payload_cols = 1; payload_cols <= 8; ++payload_cols) {
    MicroWorkload w = MakePayloadWorkload(divisor, payload_cols);
    auto plan = SumAllPayloadsPlan(w);
    QueryStats bhj = MeasurePlan(
        *plan, bench::Options(JoinStrategy::kBHJ, threads), reps, &pool);
    QueryStats bhj_lm = MeasurePlan(
        *plan, bench::Options(JoinStrategy::kBHJ, threads, true), reps, &pool);
    QueryStats rj = MeasurePlan(
        *plan, bench::Options(JoinStrategy::kRJ, threads), reps, &pool);
    QueryStats rj_lm = MeasurePlan(
        *plan, bench::Options(JoinStrategy::kRJ, threads, true), reps, &pool);
    const uint32_t probe_row = 8 + 8 * payload_cols;
    // Partition tuple: 8 B hash + row, padded to a power of two up to the
    // cache line; wider tuples are stored unpadded without SWWCBs.
    uint64_t raw = 8 + probe_row;
    uint64_t stride = NextPow2(raw) <= 64 ? NextPow2(raw) : AlignUp(raw, 8);
    table.AddRow({std::to_string(probe_row), std::to_string(stride),
                  bench::Gts(bhj.Throughput()),
                  bench::Gts(bhj_lm.Throughput()), bench::Gts(rj.Throughput()),
                  bench::Gts(rj_lm.Throughput())});
  }
  table.Print();
  std::printf(
      "\npaper shape: RJ degrades ~7x as tuples grow 16 B -> 80 B (visible\n"
      "padding steps at powers of two); BHJ stays flat (latency-bound, not\n"
      "bandwidth-bound); at 100%% selectivity LM only adds the tuple-id\n"
      "column and random access, so it strictly hurts the RJ.\n");
  return 0;
}
