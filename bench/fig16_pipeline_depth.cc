// Figure 16: impact of pipeline depth (star-schema join chains).
//
// Depth-d star: d permuted dimension copies joined to one fact table at 100%
// selectivity, forcing a single long pipeline. Reported metric is
// per-join throughput (tuples/s divided by the number of joins): flat for
// the BHJ, decaying for the RJ as each join re-materializes wider tuples.
#include "bench/bench_common.h"

int main() {
  using namespace pjoin;
  // Depth-d runs cost d joins over the full probe side; scale down 4x on
  // top of the global divisor so the sweep stays within a minutes budget.
  const int64_t divisor = WorkloadScaleDivisor() * 4;
  const int reps = BenchRepetitions();
  const int threads = DefaultThreads();
  const int max_depth =
      static_cast<int>(GetEnvInt64("PJOIN_MAX_DEPTH", 6));
  bench::PrintHeader(
      "Figure 16: Impact of pipeline depth",
      "Bandle et al., Figure 16",
      "star schema, 100% selectivity, depth 1.." + std::to_string(max_depth));

  ThreadPool pool(threads);
  TablePrinter table({"pipeline depth", "BHJ [G T/s per join]",
                      "RJ [G T/s per join]"});
  for (int depth = 1; depth <= max_depth; ++depth) {
    MicroWorkload w = MakeStarWorkload(divisor, depth);
    auto plan = StarJoinPlan(w);
    QueryStats bhj = MeasurePlan(
        *plan, bench::Options(JoinStrategy::kBHJ, threads), reps, &pool);
    QueryStats rj = MeasurePlan(
        *plan, bench::Options(JoinStrategy::kRJ, threads), reps, &pool);
    // Per-join throughput: each of the `depth` joins processes the probe
    // cardinality, and its share of the runtime is time/depth, so one
    // join's rate is probe_tuples * depth / total_time. An ideal pipelined
    // join keeps this constant as depth grows (total time scales linearly).
    const double ops =
        static_cast<double>(w.probe_tuples) * static_cast<double>(depth);
    table.AddRow({std::to_string(depth), bench::Gts(ops / bhj.seconds),
                  bench::Gts(ops / rj.seconds)});
  }
  table.Print();
  std::printf(
      "\npaper shape: per-join throughput is nearly constant for the BHJ\n"
      "(tuples stay in the pipeline) and decreases with depth for the RJ\n"
      "(every join re-materializes both inputs and each join widens the\n"
      "carried tuple).\n");
  return 0;
}
