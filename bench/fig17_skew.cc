// Figure 17: impact of Zipf-distributed probe keys, including the original
// stand-alone joins of Balkesen et al.
#include "baseline/balkesen.h"
#include "bench/bench_common.h"
#include "util/stopwatch.h"

namespace pjoin {
namespace {

template <typename Tuple>
void RunSkewSweep(const char* label, bool workload_b, int64_t divisor,
                  int reps, int threads) {
  std::printf("Workload %s\n", label);
  // Medians hide what skew does to the radix joins (one straggler partition
  // per run): report p99 of the per-join wall time next to every mean.
  TablePrinter table({"zipf z", "NPJ [G T/s]", "NPJ p99 [ms]", "PRJ [G T/s]",
                      "PRJ p99 [ms]", "BHJ [G T/s]", "BHJ p99 [ms]",
                      "RJ [G T/s]", "RJ p99 [ms]"});
  ThreadPool pool(threads);
  for (double z : {0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0}) {
    MicroWorkload w = MakeSkewWorkload(divisor, z, workload_b);
    const uint64_t total = w.build_tuples + w.probe_tuples;
    const std::string zlabel =
        std::string("fig17_") + label + "_z" + TablePrinter::Double(z, 2);
    bench::DumpSkewEstimate(zlabel + "_probe_keys", w.probe, 0);

    std::vector<Tuple> build(w.build.num_rows()), probe(w.probe.num_rows());
    const bool narrow = sizeof(Tuple) == 8;
    for (uint64_t r = 0; r < w.build.num_rows(); ++r) {
      build[r].key = narrow ? w.build.column(0).GetInt32(r)
                            : w.build.column(0).GetInt64(r);
      build[r].payload = static_cast<decltype(Tuple::payload)>(r);
    }
    for (uint64_t r = 0; r < w.probe.num_rows(); ++r) {
      probe[r].key = narrow ? w.probe.column(0).GetInt32(r)
                            : w.probe.column(0).GetInt64(r);
      probe[r].payload = static_cast<decltype(Tuple::payload)>(r);
    }

    std::vector<double> npj_reps, prj_reps, bhj_reps, rj_reps;
    QueryStats npj = MeasureRuns(
        [&](QueryStats* stats) {
          Stopwatch watch;
          BalkesenNPJ(build, probe, pool);
          stats->seconds = watch.ElapsedSeconds();
          stats->source_tuples = total;
        },
        reps, /*warmup=*/true, &npj_reps);
    QueryStats prj = MeasureRuns(
        [&](QueryStats* stats) {
          Stopwatch watch;
          BalkesenPRJ(build, probe, pool);
          stats->seconds = watch.ElapsedSeconds();
          stats->source_tuples = total;
        },
        reps, /*warmup=*/true, &prj_reps);
    auto plan = CountJoinPlan(w);
    QueryStats bhj =
        MeasurePlan(*plan, bench::Options(JoinStrategy::kBHJ, threads), reps,
                    &pool, /*warmup=*/true, &bhj_reps);
    QueryStats rj =
        MeasurePlan(*plan, bench::Options(JoinStrategy::kRJ, threads), reps,
                    &pool, /*warmup=*/true, &rj_reps);
    bench::DumpMetrics(zlabel + "_bhj", bhj);
    bench::DumpMetrics(zlabel + "_rj", rj);
    table.AddRow({TablePrinter::Double(z, 2), bench::Gts(npj.Throughput()),
                  bench::P99Ms(npj_reps), bench::Gts(prj.Throughput()),
                  bench::P99Ms(prj_reps), bench::Gts(bhj.Throughput()),
                  bench::P99Ms(bhj_reps), bench::Gts(rj.Throughput()),
                  bench::P99Ms(rj_reps)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace pjoin

int main() {
  using namespace pjoin;
  const int64_t divisor = WorkloadScaleDivisor();
  const int reps = BenchRepetitions();
  const int threads = DefaultThreads();
  bench::PrintHeader(
      "Figure 17: Impact of Zipf skew (vs original Balkesen et al. code)",
      "Bandle et al., Figure 17",
      "probe foreign keys Zipf-distributed, z in [0, 2]");
  RunSkewSweep<Tuple8>("A", /*workload_b=*/false, divisor, reps, threads);
  RunSkewSweep<Tuple4>("B", /*workload_b=*/true, divisor, reps, threads);
  std::printf(
      "paper shape: NPJ/BHJ *benefit* from skew (temporal cache locality);\n"
      "the radix joins degrade once z >= 1 (heterogeneous partition sizes\n"
      "break scheduling) — BHJ ends >5x faster than RJ at z = 2 on A.\n");
  return 0;
}
