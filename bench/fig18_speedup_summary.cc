// Figure 18: speedup of the BRJ and BHJ over the optimized RJ, on workload A
// and on TPC-H (the paper's summary panel).
#include <cmath>

#include "bench/bench_common.h"

int main() {
  using namespace pjoin;
  const int64_t divisor = WorkloadScaleDivisor();
  const double sf = BenchScaleFactor();
  const int reps = BenchRepetitions();
  const int threads = DefaultThreads();
  bench::PrintHeader(
      "Figure 18: Speedup of BRJ / BHJ over the optimized radix join",
      "Bandle et al., Figure 18",
      "workload A + TPC-H SF " + std::to_string(sf) +
          " (geometric mean over queries)");

  ThreadPool pool(threads);

  // Panel 1: workload A (near-optimal conditions for the RJ).
  MicroWorkload w = MakeWorkloadA(divisor);
  auto plan = CountJoinPlan(w);
  QueryStats rj_a = MeasurePlan(
      *plan, bench::Options(JoinStrategy::kRJ, threads), reps, &pool);
  QueryStats brj_a = MeasurePlan(
      *plan, bench::Options(JoinStrategy::kBRJ, threads), reps, &pool);
  QueryStats bhj_a = MeasurePlan(
      *plan, bench::Options(JoinStrategy::kBHJ, threads), reps, &pool);

  TablePrinter panel1({"join", "workload A speedup over RJ"});
  panel1.AddRow({"BRJ", TablePrinter::Percent(
                            brj_a.Throughput() / rj_a.Throughput() - 1.0)});
  panel1.AddRow({"BHJ", TablePrinter::Percent(
                            bhj_a.Throughput() / rj_a.Throughput() - 1.0)});
  panel1.Print();
  std::printf("\n");

  // Panel 2: TPC-H, geometric mean of per-query speedups over the RJ.
  auto db = GenerateTpch(sf);
  double log_brj = 0, log_bhj = 0;
  int queries = 0;
  for (const TpchQuery& query : TpchQueries()) {
    QueryStats rj = bench::MeasureTpch(
        query, *db, bench::Options(JoinStrategy::kRJ, threads), reps, &pool);
    QueryStats brj = bench::MeasureTpch(
        query, *db, bench::Options(JoinStrategy::kBRJ, threads), reps, &pool);
    QueryStats bhj = bench::MeasureTpch(
        query, *db, bench::Options(JoinStrategy::kBHJ, threads), reps, &pool);
    log_brj += std::log(brj.Throughput() / rj.Throughput());
    log_bhj += std::log(bhj.Throughput() / rj.Throughput());
    ++queries;
  }
  TablePrinter panel2({"join", "TPC-H speedup over RJ (geomean)"});
  panel2.AddRow({"BRJ", TablePrinter::Percent(
                            std::exp(log_brj / queries) - 1.0)});
  panel2.AddRow({"BHJ", TablePrinter::Percent(
                            std::exp(log_bhj / queries) - 1.0)});
  panel2.Print();

  std::printf(
      "\npaper shape: on workload A the RJ is in its element (BRJ/BHJ show\n"
      "a ~-50%%..0%% 'speedup'); on TPC-H both BRJ and especially BHJ beat\n"
      "the plain RJ by a wide margin (paper: up to ~+200%%).\n");
  return 0;
}
