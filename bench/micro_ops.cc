// Primitive-level microbenchmarks (google-benchmark): the building blocks
// whose costs drive the paper's trade-offs — hashing, Bloom filter probes,
// chaining vs robin-hood tables, radix partitioning with/without
// write-combine buffers and streaming stores (the SWWCB ablation of
// Section 3.3 / DESIGN.md ablation #2).
#include <benchmark/benchmark.h>

#include <vector>

#include "exec/thread_pool.h"
#include "filter/blocked_bloom.h"
#include "hash_table/chaining_ht.h"
#include "hash_table/robin_hood.h"
#include "partition/radix_partitioner.h"
#include "util/hash.h"
#include "util/rng.h"

namespace pjoin {
namespace {

void BM_HashInt64(benchmark::State& state) {
  uint64_t k = 12345;
  for (auto _ : state) {
    k = HashInt64(k);
    benchmark::DoNotOptimize(k);
  }
}
BENCHMARK(BM_HashInt64);

void BM_BloomProbe(benchmark::State& state) {
  BlockedBloomFilter bloom;
  const uint64_t n = state.range(0);
  bloom.Resize(n);
  for (uint64_t i = 0; i < n; ++i) bloom.InsertUnsynchronized(HashInt64(i));
  uint64_t k = 0;
  uint64_t hits = 0;
  for (auto _ : state) {
    hits += bloom.MayContain(HashInt64(k++));
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomProbe)->Arg(1 << 14)->Arg(1 << 20);

void BM_RobinHoodBuildProbe(benchmark::State& state) {
  const uint64_t n = state.range(0);
  std::vector<int64_t> keys(n);
  Rng rng(1);
  for (auto& k : keys) k = static_cast<int64_t>(rng.Next());
  RobinHoodTable table;
  for (auto _ : state) {
    table.Reset(n);
    for (int64_t& k : keys) {
      table.Insert(HashInt64(k), reinterpret_cast<const std::byte*>(&k));
    }
    uint64_t found = 0;
    for (int64_t& k : keys) {
      table.ForEachMatch(HashInt64(k),
                         [&](const std::byte*, uint64_t) { ++found; });
    }
    benchmark::DoNotOptimize(found);
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_RobinHoodBuildProbe)->Arg(1 << 10)->Arg(1 << 14);

void BM_ChainingHtProbe(benchmark::State& state) {
  const uint64_t n = state.range(0);
  ChainingHashTable ht(8, false);
  ThreadPool pool(1);
  for (uint64_t i = 0; i < n; ++i) {
    int64_t k = static_cast<int64_t>(i);
    ht.MaterializeEntry(0, HashInt64(i), reinterpret_cast<std::byte*>(&k), 8);
  }
  ht.Build(pool);
  uint64_t k = 0;
  for (auto _ : state) {
    const std::byte* e = ht.ChainHead(HashInt64(k++ % (2 * n)));
    benchmark::DoNotOptimize(e);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChainingHtProbe)->Arg(1 << 14)->Arg(1 << 20);

// The SWWCB / streaming ablation: same tuples, three partitioner configs.
void PartitionTuples(bool swwcb, bool streaming, benchmark::State& state) {
  const uint64_t n = 1 << 18;
  RadixConfig config;
  config.row_stride = 8;
  config.bits1 = 6;
  config.bits2 = 4;
  config.use_swwcb = swwcb;
  config.use_streaming = streaming;
  ThreadPool pool(1);
  for (auto _ : state) {
    RadixPartitioner part(config);
    int64_t row = 0;
    for (uint64_t i = 0; i < n; ++i) {
      part.Add(0, HashInt64(i), reinterpret_cast<std::byte*>(&row), nullptr);
    }
    part.FlushThread(0, nullptr);
    part.Finalize(pool, nullptr, nullptr);
    benchmark::DoNotOptimize(part.total_tuples());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
void BM_PartitionDirect(benchmark::State& state) {
  PartitionTuples(false, false, state);
}
void BM_PartitionSwwcb(benchmark::State& state) {
  PartitionTuples(true, false, state);
}
void BM_PartitionSwwcbStreaming(benchmark::State& state) {
  PartitionTuples(true, true, state);
}
BENCHMARK(BM_PartitionDirect);
BENCHMARK(BM_PartitionSwwcb);
BENCHMARK(BM_PartitionSwwcbStreaming);

}  // namespace
}  // namespace pjoin

BENCHMARK_MAIN();
