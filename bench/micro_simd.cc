// Kernel-tier throughput: scalar vs AVX2 vs AVX-512 for the four batched
// SIMD kernels (src/kernels/). This is the attribution bench for the
// dispatch layer: the speedup column shows what the runtime tier choice is
// worth on this host, kernel by kernel, in tuples/s and bytes/s.
//
// Inputs mirror the engine's shapes: 1024-tuple batches (kBatchCapacity),
// a ~16-bits-per-key Bloom filter, a 2x-sized chaining directory, packed
// [hash][row] partition tuples. JSON side-channel: one line per
// (kernel, tier) via PJOIN_METRICS_JSON, like the other benches.
#include <cstring>
#include <vector>

#include "bench/bench_common.h"
#include "exec/batch.h"
#include "filter/blocked_bloom.h"
#include "kernels/kernels.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/stopwatch.h"

namespace pjoin {
namespace {

constexpr uint64_t kTuples = uint64_t{1} << 21;  // per measurement pass
constexpr uint32_t kBatch = kBatchCapacity;

// Median-of-reps seconds for one pass of `body` over kTuples tuples.
template <typename Fn>
double MeasureSeconds(int reps, Fn&& body) {
  std::vector<double> times;
  times.reserve(reps);
  body();  // warm-up
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    body();
    times.push_back(watch.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

void EmitJson(const char* kernel, SimdTier tier, double tuples_per_sec,
              double bytes_per_sec, double speedup) {
  const char* path = std::getenv("PJOIN_METRICS_JSON");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* out = std::string(path) == "-" ? stdout : std::fopen(path, "a");
  if (out == nullptr) return;
  std::fprintf(out,
               "{\"label\":\"micro_simd\",\"kernel\":\"%s\",\"tier\":\"%s\","
               "\"tuples_per_sec\":%.0f,\"bytes_per_sec\":%.0f,"
               "\"speedup_vs_scalar\":%.3f}\n",
               kernel, SimdTierName(tier), tuples_per_sec, bytes_per_sec,
               speedup);
  if (out == stdout) {
    std::fflush(stdout);
  } else {
    std::fclose(out);
  }
}

std::vector<SimdTier> Tiers() {
  std::vector<SimdTier> tiers = {SimdTier::kScalar};
  if (SimdTierAvailable(SimdTier::kAVX2)) tiers.push_back(SimdTier::kAVX2);
  if (SimdTierAvailable(SimdTier::kAVX512)) {
    tiers.push_back(SimdTier::kAVX512);
  }
  return tiers;
}

// Runs `body(kernels)` per tier and renders rows; `bytes_per_tuple` is the
// memory the kernel genuinely touches per tuple (input + output), so the
// bytes/s column is comparable across kernels.
template <typename Fn>
void BenchKernel(TablePrinter& table, const char* name,
                 double bytes_per_tuple, int reps, Fn&& body) {
  double scalar_tps = 0;
  for (SimdTier tier : Tiers()) {
    const SimdKernels& k = KernelsFor(tier);
    double secs = MeasureSeconds(reps, [&] { body(k); });
    double tps = static_cast<double>(kTuples) / secs;
    if (tier == SimdTier::kScalar) scalar_tps = tps;
    double speedup = tps / scalar_tps;
    char speed_buf[32];
    std::snprintf(speed_buf, sizeof(speed_buf), "%.2fx", speedup);
    table.AddRow({name, SimdTierName(tier), bench::Gts(tps),
                  TablePrinter::Bytes(tps * bytes_per_tuple) + "/s",
                  speed_buf});
    EmitJson(name, tier, tps, tps * bytes_per_tuple, speedup);
  }
}

}  // namespace
}  // namespace pjoin

int main() {
  using namespace pjoin;
  const int reps = BenchRepetitions();
  bench::PrintHeader(
      "Micro: SIMD kernel tiers",
      "kernel-level dispatch ablation (DESIGN.md \"SIMD kernels\")",
      "1024-tuple batches, 2^21 tuples/pass, median of reps");

  Rng rng(42);
  std::vector<uint64_t> hashes(kTuples);
  for (auto& h : hashes) h = rng.Next();

  // Bloom: filter sized for 2^20 keys, half the probes are members.
  BlockedBloomFilter bloom;
  bloom.Resize(uint64_t{1} << 20);
  for (uint64_t i = 0; i < (uint64_t{1} << 20); ++i) {
    bloom.InsertUnsynchronized(hashes[i * 2]);
  }

  // Directory: 2^21 slots with random tags/pointers (the tag-probe kernel
  // never dereferences, so synthetic slot words are fine).
  std::vector<uint64_t> dir(kTuples);
  for (auto& s : dir) s = (rng.Next() % 2 == 0) ? 0 : rng.Next();
  const int dir_shift = 64 - 21;

  // Rows: packed 8-byte key column and a strided 16-byte row.
  std::vector<std::byte> packed(kTuples * 8);
  std::memcpy(packed.data(), hashes.data(), packed.size());
  std::vector<std::byte> strided(kTuples * 16);
  for (uint64_t i = 0; i < kTuples; ++i) {
    std::memcpy(strided.data() + i * 16, &hashes[i], 8);
  }

  volatile uint64_t sink = 0;
  TablePrinter table({"kernel", "tier", "Gtuples/s", "bytes/s", "speedup"});

  {
    uint64_t bitmap[kBatch / 64];
    // hash read + one gathered block per tuple.
    BenchKernel(table, "bloom_probe", 16.0, reps, [&](const SimdKernels& k) {
      uint64_t acc = 0;
      for (uint64_t off = 0; off + kBatch <= kTuples; off += kBatch) {
        k.bloom_probe(bloom.blocks(), bloom.block_mask(), hashes.data() + off,
                      kBatch, bitmap);
        acc += bitmap[0];
      }
      sink = sink + acc;
    });
  }
  {
    uint32_t sel[kBatch];
    uint64_t heads[kBatch];
    // hash read + one gathered slot per tuple, plus compacted survivors.
    BenchKernel(table, "dir_tag_probe", 16.0, reps,
                [&](const SimdKernels& k) {
                  uint64_t acc = 0;
                  for (uint64_t off = 0; off + kBatch <= kTuples;
                       off += kBatch) {
                    acc += k.dir_tag_probe(dir.data(), dir_shift,
                                           kTuples - 1, hashes.data() + off,
                                           kBatch, sel, heads);
                  }
                  sink = sink + acc;
                });
  }
  {
    uint64_t out[kBatch];
    // The engine hashes batches it just materialized, so the inputs are
    // cache-hot; cycle over an L2-resident window instead of streaming the
    // full array, or the bench measures DRAM instead of the kernel.
    constexpr uint64_t kWindow = uint64_t{1} << 16;
    // 8-byte key in, 8-byte hash out.
    BenchKernel(table, "hash (packed)", 16.0, reps, [&](const SimdKernels& k) {
      uint64_t acc = 0;
      for (uint64_t done = 0; done < kTuples; done += kWindow) {
        for (uint64_t off = 0; off + kBatch <= kWindow; off += kBatch) {
          k.hash_rows(packed.data() + off * 8, 8, 0, 8, kBatch, out);
          acc += out[0];
        }
      }
      sink = sink + acc;
    });
    // 16-byte row in, 8-byte hash out.
    BenchKernel(table, "hash (strided)", 24.0, reps,
                [&](const SimdKernels& k) {
                  uint64_t acc = 0;
                  for (uint64_t done = 0; done < kTuples; done += kWindow) {
                    for (uint64_t off = 0; off + kBatch <= kWindow;
                         off += kBatch) {
                      k.hash_rows(strided.data() + off * 16, 16, 0, 8, kBatch,
                                  out);
                      acc += out[0];
                    }
                  }
                  sink = sink + acc;
                });
  }
  {
    // 8-byte hash read per 16-byte tuple + counter bumps.
    uint64_t hist[256];
    BenchKernel(table, "histogram", 16.0, reps, [&](const SimdKernels& k) {
      std::memset(hist, 0, sizeof(hist));
      k.histogram(strided.data(), kTuples, 16, 0, 255, hist);
      sink = sink + hist[0];
    });
  }

  table.Print();
  std::printf("\ndispatched tier on this host: %s (PJOIN_SIMD overrides)\n",
              SimdTierName(ActiveSimdTier()));
  (void)sink;
  return 0;
}
