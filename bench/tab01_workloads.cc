// Table 1: the prior-work microbenchmark workloads, at this build's scale.
#include "bench/bench_common.h"

int main() {
  using namespace pjoin;
  const int64_t divisor = WorkloadScaleDivisor();
  bench::PrintHeader(
      "Table 1: Workloads from Prior Work",
      "Bandle et al., SIGMOD'21, Table 1",
      "scale divisor " + std::to_string(divisor) + " (PJOIN_SCALE)");

  MicroWorkload a = MakeWorkloadA(divisor);
  MicroWorkload b = MakeWorkloadB(divisor);

  TablePrinter table({"workload", "key/pay [B]", "build tuples",
                      "probe tuples", "build size", "probe size"});
  table.AddRow({"A", "8/8", std::to_string(a.build_tuples),
                std::to_string(a.probe_tuples),
                TablePrinter::Mib(static_cast<double>(a.build.TotalBytes())),
                TablePrinter::Mib(static_cast<double>(a.probe.TotalBytes()))});
  table.AddRow({"B", "4/4", std::to_string(b.build_tuples),
                std::to_string(b.probe_tuples),
                TablePrinter::Mib(static_cast<double>(b.build.TotalBytes())),
                TablePrinter::Mib(static_cast<double>(b.probe.TotalBytes()))});
  table.Print();

  std::printf(
      "\npaper originals: A = 256 MiB x 4096 MiB (1:16), B = 977 MiB x 977 "
      "MiB (1:1);\nall ratios are preserved under the scale divisor.\n");
  return 0;
}
