// Table 2: hardware platform of this run (the paper lists Skylake-X,
// Ryzen 9, and a 2-socket Sandy Bridge; we probe the host we run on).
#include "bench/bench_common.h"
#include "util/cpu_info.h"
#include "util/simd.h"

int main() {
  using namespace pjoin;
  bench::PrintHeader("Table 2: Hardware Platform", "Bandle et al., Table 2",
                     "");
  const CpuInfo& cpu = GetCpuInfo();
  TablePrinter table({"property", "value"});
  table.AddRow({"model", cpu.model_name.empty() ? "unknown" : cpu.model_name});
  table.AddRow({"logical cores", std::to_string(cpu.logical_cores)});
  table.AddRow({"L1d cache",
                TablePrinter::Bytes(static_cast<double>(cpu.l1d_bytes))});
  table.AddRow({"L2 cache",
                TablePrinter::Bytes(static_cast<double>(cpu.l2_bytes))});
  table.AddRow({"LLC cache",
                TablePrinter::Bytes(static_cast<double>(cpu.llc_bytes))});
#if defined(__AVX512F__)
  table.AddRow({"widest streaming store", "AVX-512 (full cache line)"});
#elif defined(__AVX2__)
  table.AddRow({"widest streaming store", "AVX2 (half cache line)"});
#else
  table.AddRow({"widest streaming store", "scalar fallback"});
#endif
  // Runtime dispatch differs from the compile-time rows above: kernels carry
  // all tiers in every build and pick one at startup (PJOIN_SIMD overrides).
  table.AddRow({"SIMD kernel tier (detected)",
                SimdTierName(DetectSimdTier())});
  table.AddRow({"SIMD kernel tier (dispatched)",
                SimdTierName(ActiveSimdTier())});
  table.Print();
  std::printf(
      "\nnote: the paper's scalability/NUMA experiments used 10-20 physical\n"
      "cores across up to 2 sockets; runs on this host are gated by its\n"
      "core count (see EXPERIMENTS.md).\n");
  return 0;
}
