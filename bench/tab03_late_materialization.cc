// Table 3: throughput with and without late materialization at 5%
// selectivity and 40 B probe tuples (Section 5.4.3 — the combination where
// LM finally pays off).
#include "bench/bench_common.h"

int main() {
  using namespace pjoin;
  const int64_t divisor = WorkloadScaleDivisor();
  const int reps = BenchRepetitions();
  const int threads = DefaultThreads();
  bench::PrintHeader(
      "Table 3: Throughput with and without Late Materialization",
      "Bandle et al., Table 3",
      "workload A, 5% selectivity, four 8 B payload columns (40 B incl. key)");

  // 5% selectivity with 4 payload columns: with LM only key+tid (24 B with
  // hash) are materialized before the join; the remaining payload is fetched
  // for the 5% of tuples that survive.
  MicroWorkload w = MakePayloadWorkload(divisor, /*payload_cols=*/4,
                                        /*match_fraction=*/0.05);
  auto plan = SumAllPayloadsPlan(w);
  ThreadPool pool(threads);

  TablePrinter table({"join", "LM [M T/s]", "no LM [M T/s]", "benefit"});
  for (JoinStrategy s : {JoinStrategy::kBHJ, JoinStrategy::kBRJ,
                         JoinStrategy::kRJ}) {
    QueryStats lm =
        MeasurePlan(*plan, bench::Options(s, threads, true), reps, &pool);
    QueryStats em =
        MeasurePlan(*plan, bench::Options(s, threads, false), reps, &pool);
    double benefit = em.Throughput() > 0
                         ? lm.Throughput() / em.Throughput() - 1.0
                         : 0.0;
    table.AddRow({JoinStrategyName(s),
                  TablePrinter::Double(lm.Throughput() / 1e6, 0),
                  TablePrinter::Double(em.Throughput() / 1e6, 0),
                  TablePrinter::Percent(benefit)});
  }
  table.Print();
  std::printf(
      "\npaper values (Table 3): BHJ 452M/453M (+0%%), BRJ 656M/487M (+35%%),\n"
      "RJ 341M/153M (+122%%) — LM roughly doubles the RJ by halving its\n"
      "materialization, yet the BRJ without LM still beats the RJ with it.\n");
  return 0;
}
