// Table 4: workload characteristics under which partitioned joins are
// workable / beneficial — synthesized from targeted sweeps, as the paper
// synthesizes it from Sections 5.4.1–5.4.7.
//
// "Workable": RJ (or BRJ) within 25% of the BHJ. "Beneficial": faster than
// the BHJ. This bench runs a compressed version of every sweep and derives
// the thresholds from the measurements, then prints them next to the
// paper's published ranges.
#include "bench/bench_common.h"
#include "util/cpu_info.h"

namespace pjoin {
namespace {

struct Ratio {
  double value;  // RJ/BRJ throughput relative to BHJ
};

Ratio Compare(const PlanNode& plan, JoinStrategy partitioned, int threads,
              int reps, ThreadPool* pool) {
  QueryStats pj =
      MeasurePlan(plan, bench::Options(partitioned, threads), reps, pool);
  QueryStats bhj = MeasurePlan(
      plan, bench::Options(JoinStrategy::kBHJ, threads), reps, pool);
  return Ratio{pj.Throughput() / bhj.Throughput()};
}

std::string Verdict(double ratio) {
  if (ratio >= 1.0) return "beneficial";
  if (ratio >= 0.75) return "workable";
  return "not workable";
}

}  // namespace
}  // namespace pjoin

int main() {
  using namespace pjoin;
  const int64_t divisor = WorkloadScaleDivisor();
  const int reps = BenchRepetitions();
  const int threads = DefaultThreads();
  bench::PrintHeader(
      "Table 4: Workload characteristics for partitioned joins",
      "Bandle et al., Table 4",
      "derived from compressed parameter sweeps on this host");

  ThreadPool pool(threads);
  TablePrinter table({"factor", "setting", "RJ-or-BRJ vs BHJ", "verdict",
                      "paper range (workable / beneficial)"});

  // Selectivity (handled by the Bloom filter): compare BRJ at 5% and 100%.
  for (double sel : {0.05, 1.0}) {
    MicroWorkload w = MakeSelectivityWorkload(divisor, sel);
    auto plan = CountJoinPlan(w);
    Ratio r = Compare(*plan, JoinStrategy::kBRJ, threads, reps, &pool);
    table.AddRow({"selectivity", TablePrinter::Double(sel * 100, 0) + "%",
                  TablePrinter::Percent(r.value - 1.0), Verdict(r.value),
                  "handled by Bloom filter"});
  }

  // Payload size: <=16 B beneficial, <=32 B workable.
  for (int cols : {1, 3, 7}) {
    MicroWorkload w = MakePayloadWorkload(divisor, cols);
    auto plan = SumAllPayloadsPlan(w);
    Ratio r = Compare(*plan, JoinStrategy::kRJ, threads, reps, &pool);
    table.AddRow({"payload size", std::to_string(8 * cols) + " B",
                  TablePrinter::Percent(r.value - 1.0), Verdict(r.value),
                  "<=32 B / <=16 B"});
  }

  // Pipeline depth: <8 workable, <2 beneficial.
  for (int depth : {1, 4}) {
    MicroWorkload w = MakeStarWorkload(divisor, depth);
    auto plan = StarJoinPlan(w);
    Ratio r = Compare(*plan, JoinStrategy::kRJ, threads, reps, &pool);
    table.AddRow({"pipeline depth", std::to_string(depth) + " joins",
                  TablePrinter::Percent(r.value - 1.0), Verdict(r.value),
                  "<8 / <2 joins"});
  }

  // Skew: z <= 1 workable, z <= 0.5 beneficial.
  for (double z : {0.0, 0.75, 1.5}) {
    MicroWorkload w = MakeSkewWorkload(divisor, z);
    auto plan = CountJoinPlan(w);
    Ratio r = Compare(*plan, JoinStrategy::kRJ, threads, reps, &pool);
    table.AddRow({"skew (Zipf)", "z=" + TablePrinter::Double(z, 2),
                  TablePrinter::Percent(r.value - 1.0), Verdict(r.value),
                  "<=1 / <=0.5"});
  }

  // Build size relative to the LLC: > LLC workable, >> LLC beneficial.
  // Virtualized hosts may report giant shared L3 sizes; clamp, and apply
  // the global scale divisor so the sweep stays laptop-scale (the
  // comparison is cache-relative either way).
  const int64_t llc_bytes =
      std::min<int64_t>(GetCpuInfo().llc_bytes, 16ll << 20);
  const uint64_t llc_tuples = static_cast<uint64_t>(llc_bytes) / 16 /
                              std::max<int64_t>(1, divisor / 64);
  for (double factor : {0.25, 4.0}) {
    uint64_t build = static_cast<uint64_t>(llc_tuples * factor) | 64;
    MicroWorkload w = MakeSizedWorkload(build, build * 8);
    auto plan = CountJoinPlan(w);
    Ratio r = Compare(*plan, JoinStrategy::kRJ, threads, reps, &pool);
    table.AddRow({"build size",
                  TablePrinter::Double(factor, 2) + "x LLC (scaled)",
                  TablePrinter::Percent(r.value - 1.0), Verdict(r.value),
                  "> LLC / >> LLC"});
  }

  // Size difference: < 1:50 workable, < 1:10 beneficial. Probe size fixed
  // at the workload-A probe; the build shrinks with the ratio.
  const uint64_t probe_tuples = MakeWorkloadA(divisor).probe_tuples;
  for (uint64_t ratio : {4, 32, 100}) {
    MicroWorkload w = MakeSizedWorkload(probe_tuples / ratio, probe_tuples);
    auto plan = CountJoinPlan(w);
    Ratio r = Compare(*plan, JoinStrategy::kRJ, threads, reps, &pool);
    table.AddRow({"size difference", "1:" + std::to_string(ratio),
                  TablePrinter::Percent(r.value - 1.0), Verdict(r.value),
                  "< x50 / < x10"});
  }

  table.Print();
  std::printf(
      "\npaper conclusion: the RJ is very sensitive to any deviation from\n"
      "near-optimal characteristics; outside the narrow window it loses to\n"
      "the non-partitioned join.\n");
  return 0;
}
