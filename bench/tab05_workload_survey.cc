// Table 5: workload characteristics for join processing — prior work vs
// TPC-H (measured from the per-join audits) vs real-world observations.
#include <algorithm>

#include "bench/bench_common.h"

int main() {
  using namespace pjoin;
  const double sf = BenchScaleFactor();
  bench::PrintHeader("Table 5: Workloads for Join Processing",
                     "Bandle et al., Table 5",
                     "TPC-H column measured at SF " + std::to_string(sf));

  auto db = GenerateTpch(sf);
  ThreadPool pool(DefaultThreads());
  ExecOptions options = bench::Options(JoinStrategy::kBHJ, pool.num_threads());

  std::vector<JoinAudit> audits;
  int max_pipeline_joins = 0;
  for (const TpchQuery& query : TpchQueries()) {
    QueryStats stats;
    query.run(*db, options, &stats, &pool);
    for (const auto& audit : stats.join_audits) audits.push_back(audit);
    max_pipeline_joins = std::max(max_pipeline_joins, query.num_joins);
  }

  // Measured TPC-H characteristics.
  double sum_width = 0;
  double sum_match = 0;
  int high_ratio = 0;
  int small_build = 0;
  const uint64_t llc = 16ull << 20;
  for (const auto& audit : audits) {
    sum_width += audit.probe_width;
    sum_match += audit.match_fraction();
    if (audit.build_tuples > 0 &&
        audit.probe_tuples / std::max<uint64_t>(1, audit.build_tuples) >= 10) {
      ++high_ratio;
    }
    if (audit.build_bytes() < llc) ++small_build;
  }
  const double n = static_cast<double>(audits.size());

  TablePrinter table({"factor", "prior work", "TPC-H (measured here)",
                      "real world [Vogelsgesang et al.]"});
  table.AddRow({"skew (Zipf)", "0 - 2 (synthetic)", "none", "yes"});
  table.AddRow({"payload size", "8 - 16 B",
                TablePrinter::Double(sum_width / n, 0) + " B avg",
                "large (strings)"});
  table.AddRow({"pipeline depth", "1 join",
                "1 - " + std::to_string(max_pipeline_joins) + " joins",
                "various"});
  table.AddRow({"selectivity", "100%",
                TablePrinter::Double(100.0 * sum_match / n, 0) + "% avg",
                "low selectivity"});
  table.AddRow({"size difference", "1 - 25",
                std::to_string(high_ratio) + "/" +
                    std::to_string(audits.size()) + " joins >= 1:10",
                "mostly high"});
  table.AddRow({"build size", ">> LLC",
                std::to_string(small_build) + "/" +
                    std::to_string(audits.size()) + " builds < LLC",
                "mostly small"});
  table.Print();
  std::printf(
      "\npaper conclusion: past research evaluated joins on a narrow band\n"
      "of data (narrow tuples, full selectivity, big builds); TPC-H — let\n"
      "alone real workloads — lives mostly outside that band.\n");
  return 0;
}
