file(REMOVE_RECURSE
  "CMakeFiles/ext_skewed_tpch.dir/ext_skewed_tpch.cc.o"
  "CMakeFiles/ext_skewed_tpch.dir/ext_skewed_tpch.cc.o.d"
  "ext_skewed_tpch"
  "ext_skewed_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_skewed_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
