# Empty compiler generated dependencies file for ext_skewed_tpch.
# This may be replaced when dependencies are built.
