file(REMOVE_RECURSE
  "CMakeFiles/fig01_tpch_join_map.dir/fig01_tpch_join_map.cc.o"
  "CMakeFiles/fig01_tpch_join_map.dir/fig01_tpch_join_map.cc.o.d"
  "fig01_tpch_join_map"
  "fig01_tpch_join_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_tpch_join_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
