# Empty dependencies file for fig01_tpch_join_map.
# This may be replaced when dependencies are built.
