file(REMOVE_RECURSE
  "CMakeFiles/fig02_workload_histograms.dir/fig02_workload_histograms.cc.o"
  "CMakeFiles/fig02_workload_histograms.dir/fig02_workload_histograms.cc.o.d"
  "fig02_workload_histograms"
  "fig02_workload_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_workload_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
