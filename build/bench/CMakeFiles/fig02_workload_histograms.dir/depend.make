# Empty dependencies file for fig02_workload_histograms.
# This may be replaced when dependencies are built.
