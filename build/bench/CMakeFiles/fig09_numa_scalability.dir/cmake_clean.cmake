file(REMOVE_RECURSE
  "CMakeFiles/fig09_numa_scalability.dir/fig09_numa_scalability.cc.o"
  "CMakeFiles/fig09_numa_scalability.dir/fig09_numa_scalability.cc.o.d"
  "fig09_numa_scalability"
  "fig09_numa_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_numa_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
