# Empty compiler generated dependencies file for fig09_numa_scalability.
# This may be replaced when dependencies are built.
