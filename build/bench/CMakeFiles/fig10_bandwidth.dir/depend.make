# Empty dependencies file for fig10_bandwidth.
# This may be replaced when dependencies are built.
