# Empty dependencies file for fig11_tpch_throughput.
# This may be replaced when dependencies are built.
