file(REMOVE_RECURSE
  "CMakeFiles/fig12_per_join_impact.dir/fig12_per_join_impact.cc.o"
  "CMakeFiles/fig12_per_join_impact.dir/fig12_per_join_impact.cc.o.d"
  "fig12_per_join_impact"
  "fig12_per_join_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_per_join_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
