# Empty compiler generated dependencies file for fig12_per_join_impact.
# This may be replaced when dependencies are built.
