# Empty compiler generated dependencies file for fig13_q21_tree.
# This may be replaced when dependencies are built.
