file(REMOVE_RECURSE
  "CMakeFiles/fig14_selectivity.dir/fig14_selectivity.cc.o"
  "CMakeFiles/fig14_selectivity.dir/fig14_selectivity.cc.o.d"
  "fig14_selectivity"
  "fig14_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
