# Empty compiler generated dependencies file for fig14_selectivity.
# This may be replaced when dependencies are built.
