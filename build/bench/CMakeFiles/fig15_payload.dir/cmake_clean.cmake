file(REMOVE_RECURSE
  "CMakeFiles/fig15_payload.dir/fig15_payload.cc.o"
  "CMakeFiles/fig15_payload.dir/fig15_payload.cc.o.d"
  "fig15_payload"
  "fig15_payload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_payload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
