# Empty dependencies file for fig15_payload.
# This may be replaced when dependencies are built.
