file(REMOVE_RECURSE
  "CMakeFiles/fig16_pipeline_depth.dir/fig16_pipeline_depth.cc.o"
  "CMakeFiles/fig16_pipeline_depth.dir/fig16_pipeline_depth.cc.o.d"
  "fig16_pipeline_depth"
  "fig16_pipeline_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_pipeline_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
