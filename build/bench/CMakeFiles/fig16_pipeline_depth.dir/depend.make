# Empty dependencies file for fig16_pipeline_depth.
# This may be replaced when dependencies are built.
