file(REMOVE_RECURSE
  "CMakeFiles/fig17_skew.dir/fig17_skew.cc.o"
  "CMakeFiles/fig17_skew.dir/fig17_skew.cc.o.d"
  "fig17_skew"
  "fig17_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
