# Empty compiler generated dependencies file for fig17_skew.
# This may be replaced when dependencies are built.
