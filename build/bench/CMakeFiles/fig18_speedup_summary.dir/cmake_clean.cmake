file(REMOVE_RECURSE
  "CMakeFiles/fig18_speedup_summary.dir/fig18_speedup_summary.cc.o"
  "CMakeFiles/fig18_speedup_summary.dir/fig18_speedup_summary.cc.o.d"
  "fig18_speedup_summary"
  "fig18_speedup_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_speedup_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
