# Empty dependencies file for fig18_speedup_summary.
# This may be replaced when dependencies are built.
