# Empty compiler generated dependencies file for tab01_workloads.
# This may be replaced when dependencies are built.
