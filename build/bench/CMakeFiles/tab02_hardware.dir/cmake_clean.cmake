file(REMOVE_RECURSE
  "CMakeFiles/tab02_hardware.dir/tab02_hardware.cc.o"
  "CMakeFiles/tab02_hardware.dir/tab02_hardware.cc.o.d"
  "tab02_hardware"
  "tab02_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
