# Empty compiler generated dependencies file for tab02_hardware.
# This may be replaced when dependencies are built.
