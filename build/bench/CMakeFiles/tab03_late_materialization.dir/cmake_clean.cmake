file(REMOVE_RECURSE
  "CMakeFiles/tab03_late_materialization.dir/tab03_late_materialization.cc.o"
  "CMakeFiles/tab03_late_materialization.dir/tab03_late_materialization.cc.o.d"
  "tab03_late_materialization"
  "tab03_late_materialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_late_materialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
