# Empty compiler generated dependencies file for tab03_late_materialization.
# This may be replaced when dependencies are built.
