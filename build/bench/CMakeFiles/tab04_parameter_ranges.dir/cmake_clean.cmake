file(REMOVE_RECURSE
  "CMakeFiles/tab04_parameter_ranges.dir/tab04_parameter_ranges.cc.o"
  "CMakeFiles/tab04_parameter_ranges.dir/tab04_parameter_ranges.cc.o.d"
  "tab04_parameter_ranges"
  "tab04_parameter_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab04_parameter_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
