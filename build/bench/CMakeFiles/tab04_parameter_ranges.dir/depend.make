# Empty dependencies file for tab04_parameter_ranges.
# This may be replaced when dependencies are built.
