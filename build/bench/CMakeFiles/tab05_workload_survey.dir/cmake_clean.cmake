file(REMOVE_RECURSE
  "CMakeFiles/tab05_workload_survey.dir/tab05_workload_survey.cc.o"
  "CMakeFiles/tab05_workload_survey.dir/tab05_workload_survey.cc.o.d"
  "tab05_workload_survey"
  "tab05_workload_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_workload_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
