file(REMOVE_RECURSE
  "CMakeFiles/join_advisor.dir/join_advisor.cpp.o"
  "CMakeFiles/join_advisor.dir/join_advisor.cpp.o.d"
  "join_advisor"
  "join_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
