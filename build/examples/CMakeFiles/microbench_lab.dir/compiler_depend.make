# Empty compiler generated dependencies file for microbench_lab.
# This may be replaced when dependencies are built.
