file(REMOVE_RECURSE
  "CMakeFiles/tpch_top_joins.dir/tpch_top_joins.cpp.o"
  "CMakeFiles/tpch_top_joins.dir/tpch_top_joins.cpp.o.d"
  "tpch_top_joins"
  "tpch_top_joins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_top_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
