# Empty compiler generated dependencies file for tpch_top_joins.
# This may be replaced when dependencies are built.
