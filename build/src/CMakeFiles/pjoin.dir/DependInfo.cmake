
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/balkesen.cc" "src/CMakeFiles/pjoin.dir/baseline/balkesen.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/baseline/balkesen.cc.o.d"
  "/root/repo/src/bench_util/harness.cc" "src/CMakeFiles/pjoin.dir/bench_util/harness.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/bench_util/harness.cc.o.d"
  "/root/repo/src/bench_util/workloads.cc" "src/CMakeFiles/pjoin.dir/bench_util/workloads.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/bench_util/workloads.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/pjoin.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/engine/executor.cc.o.d"
  "/root/repo/src/engine/explain.cc" "src/CMakeFiles/pjoin.dir/engine/explain.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/engine/explain.cc.o.d"
  "/root/repo/src/engine/hash_agg.cc" "src/CMakeFiles/pjoin.dir/engine/hash_agg.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/engine/hash_agg.cc.o.d"
  "/root/repo/src/engine/operators.cc" "src/CMakeFiles/pjoin.dir/engine/operators.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/engine/operators.cc.o.d"
  "/root/repo/src/engine/plan.cc" "src/CMakeFiles/pjoin.dir/engine/plan.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/engine/plan.cc.o.d"
  "/root/repo/src/engine/predicate.cc" "src/CMakeFiles/pjoin.dir/engine/predicate.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/engine/predicate.cc.o.d"
  "/root/repo/src/engine/scan.cc" "src/CMakeFiles/pjoin.dir/engine/scan.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/engine/scan.cc.o.d"
  "/root/repo/src/engine/value.cc" "src/CMakeFiles/pjoin.dir/engine/value.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/engine/value.cc.o.d"
  "/root/repo/src/exec/pipeline.cc" "src/CMakeFiles/pjoin.dir/exec/pipeline.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/exec/pipeline.cc.o.d"
  "/root/repo/src/exec/thread_pool.cc" "src/CMakeFiles/pjoin.dir/exec/thread_pool.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/exec/thread_pool.cc.o.d"
  "/root/repo/src/filter/blocked_bloom.cc" "src/CMakeFiles/pjoin.dir/filter/blocked_bloom.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/filter/blocked_bloom.cc.o.d"
  "/root/repo/src/hash_table/chaining_ht.cc" "src/CMakeFiles/pjoin.dir/hash_table/chaining_ht.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/hash_table/chaining_ht.cc.o.d"
  "/root/repo/src/hash_table/robin_hood.cc" "src/CMakeFiles/pjoin.dir/hash_table/robin_hood.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/hash_table/robin_hood.cc.o.d"
  "/root/repo/src/join/group_join.cc" "src/CMakeFiles/pjoin.dir/join/group_join.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/join/group_join.cc.o.d"
  "/root/repo/src/join/hash_join.cc" "src/CMakeFiles/pjoin.dir/join/hash_join.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/join/hash_join.cc.o.d"
  "/root/repo/src/join/join_types.cc" "src/CMakeFiles/pjoin.dir/join/join_types.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/join/join_types.cc.o.d"
  "/root/repo/src/join/radix_join.cc" "src/CMakeFiles/pjoin.dir/join/radix_join.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/join/radix_join.cc.o.d"
  "/root/repo/src/partition/chunked_buffer.cc" "src/CMakeFiles/pjoin.dir/partition/chunked_buffer.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/partition/chunked_buffer.cc.o.d"
  "/root/repo/src/partition/radix_partitioner.cc" "src/CMakeFiles/pjoin.dir/partition/radix_partitioner.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/partition/radix_partitioner.cc.o.d"
  "/root/repo/src/storage/row_buffer.cc" "src/CMakeFiles/pjoin.dir/storage/row_buffer.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/storage/row_buffer.cc.o.d"
  "/root/repo/src/storage/row_layout.cc" "src/CMakeFiles/pjoin.dir/storage/row_layout.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/storage/row_layout.cc.o.d"
  "/root/repo/src/storage/schema.cc" "src/CMakeFiles/pjoin.dir/storage/schema.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/storage/schema.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/pjoin.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/types.cc" "src/CMakeFiles/pjoin.dir/storage/types.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/storage/types.cc.o.d"
  "/root/repo/src/tpch/gen.cc" "src/CMakeFiles/pjoin.dir/tpch/gen.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/tpch/gen.cc.o.d"
  "/root/repo/src/tpch/queries.cc" "src/CMakeFiles/pjoin.dir/tpch/queries.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/tpch/queries.cc.o.d"
  "/root/repo/src/util/aligned_buffer.cc" "src/CMakeFiles/pjoin.dir/util/aligned_buffer.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/util/aligned_buffer.cc.o.d"
  "/root/repo/src/util/byte_counter.cc" "src/CMakeFiles/pjoin.dir/util/byte_counter.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/util/byte_counter.cc.o.d"
  "/root/repo/src/util/cpu_info.cc" "src/CMakeFiles/pjoin.dir/util/cpu_info.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/util/cpu_info.cc.o.d"
  "/root/repo/src/util/env.cc" "src/CMakeFiles/pjoin.dir/util/env.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/util/env.cc.o.d"
  "/root/repo/src/util/hash.cc" "src/CMakeFiles/pjoin.dir/util/hash.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/util/hash.cc.o.d"
  "/root/repo/src/util/table_printer.cc" "src/CMakeFiles/pjoin.dir/util/table_printer.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/util/table_printer.cc.o.d"
  "/root/repo/src/util/zipf.cc" "src/CMakeFiles/pjoin.dir/util/zipf.cc.o" "gcc" "src/CMakeFiles/pjoin.dir/util/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
