file(REMOVE_RECURSE
  "libpjoin.a"
)
