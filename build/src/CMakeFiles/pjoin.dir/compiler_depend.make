# Empty compiler generated dependencies file for pjoin.
# This may be replaced when dependencies are built.
