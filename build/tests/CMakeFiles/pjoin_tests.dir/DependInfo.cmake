
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baseline_test.cc" "tests/CMakeFiles/pjoin_tests.dir/baseline_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/baseline_test.cc.o.d"
  "/root/repo/tests/bench_util_test.cc" "tests/CMakeFiles/pjoin_tests.dir/bench_util_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/bench_util_test.cc.o.d"
  "/root/repo/tests/emitter_test.cc" "tests/CMakeFiles/pjoin_tests.dir/emitter_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/emitter_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/pjoin_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/exec_test.cc" "tests/CMakeFiles/pjoin_tests.dir/exec_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/exec_test.cc.o.d"
  "/root/repo/tests/explain_test.cc" "tests/CMakeFiles/pjoin_tests.dir/explain_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/explain_test.cc.o.d"
  "/root/repo/tests/filter_test.cc" "tests/CMakeFiles/pjoin_tests.dir/filter_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/filter_test.cc.o.d"
  "/root/repo/tests/group_join_test.cc" "tests/CMakeFiles/pjoin_tests.dir/group_join_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/group_join_test.cc.o.d"
  "/root/repo/tests/hash_agg_test.cc" "tests/CMakeFiles/pjoin_tests.dir/hash_agg_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/hash_agg_test.cc.o.d"
  "/root/repo/tests/hash_table_test.cc" "tests/CMakeFiles/pjoin_tests.dir/hash_table_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/hash_table_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/pjoin_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/join_property_test.cc" "tests/CMakeFiles/pjoin_tests.dir/join_property_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/join_property_test.cc.o.d"
  "/root/repo/tests/join_test.cc" "tests/CMakeFiles/pjoin_tests.dir/join_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/join_test.cc.o.d"
  "/root/repo/tests/partition_test.cc" "tests/CMakeFiles/pjoin_tests.dir/partition_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/partition_test.cc.o.d"
  "/root/repo/tests/plan_test.cc" "tests/CMakeFiles/pjoin_tests.dir/plan_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/plan_test.cc.o.d"
  "/root/repo/tests/predicate_test.cc" "tests/CMakeFiles/pjoin_tests.dir/predicate_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/predicate_test.cc.o.d"
  "/root/repo/tests/scan_test.cc" "tests/CMakeFiles/pjoin_tests.dir/scan_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/scan_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/pjoin_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/stream_store_test.cc" "tests/CMakeFiles/pjoin_tests.dir/stream_store_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/stream_store_test.cc.o.d"
  "/root/repo/tests/tpch_skew_test.cc" "tests/CMakeFiles/pjoin_tests.dir/tpch_skew_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/tpch_skew_test.cc.o.d"
  "/root/repo/tests/tpch_test.cc" "tests/CMakeFiles/pjoin_tests.dir/tpch_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/tpch_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/pjoin_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/pjoin_tests.dir/util_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pjoin.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
