# Empty dependencies file for pjoin_tests.
# This may be replaced when dependencies are built.
