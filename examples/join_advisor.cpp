// Join advisor: the paper's Table 4 as an executable decision procedure.
//
// Give it the workload characteristics an optimizer would know and it tells
// you whether partitioning can pay off — then (optionally) validates its own
// advice by generating a matching microbenchmark and racing the joins.
//
//   ./build/examples/join_advisor <build_MiB> <probe_MiB> <payload_B>
//                                 <selectivity_%> <zipf> <pipeline_joins>
//                                 [--validate]
//   ./build/examples/join_advisor 64 1024 8 5 0 1 --validate
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util/harness.h"
#include "bench_util/workloads.h"
#include "util/cpu_info.h"
#include "util/env.h"
#include "util/table_printer.h"

using namespace pjoin;

namespace {

struct Advice {
  JoinStrategy strategy;
  std::string reason;
};

// The decision rules of the paper's Table 4 (workable/beneficial ranges).
Advice Advise(double build_mib, double probe_mib, double payload_b,
              double selectivity_pct, double zipf, int pipeline_joins,
              double llc_mib) {
  if (build_mib <= llc_mib) {
    return {JoinStrategy::kBHJ,
            "build side fits the LLC: the global hash table has no cache "
            "misses, partitioning is pure overhead"};
  }
  if (payload_b > 32) {
    return {JoinStrategy::kBHJ,
            "payload > 32 B: materializing partitions is bandwidth-bound and "
            "dominated by tuple width"};
  }
  if (zipf > 1.0) {
    return {JoinStrategy::kBHJ,
            "Zipf z > 1: skew unbalances partition sizes and scheduling, "
            "while the BHJ gains cache locality from skew"};
  }
  if (pipeline_joins >= 8) {
    return {JoinStrategy::kBHJ,
            ">= 8 joins in one pipeline: every radix join re-materializes "
            "widening tuples"};
  }
  if (probe_mib / build_mib > 50) {
    return {JoinStrategy::kBHJ,
            "build:probe beyond 1:50: partitioning the huge probe side "
            "cannot amortize"};
  }
  if (selectivity_pct < 50) {
    return {JoinStrategy::kBRJ,
            "selective join with a big build side: the Bloom-filtered radix "
            "join prunes the probe side before materialization"};
  }
  if (payload_b <= 16 && zipf <= 0.5 && pipeline_joins < 2 &&
      probe_mib / build_mib < 10) {
    return {JoinStrategy::kRJ,
            "inside the narrow beneficial window: narrow tuples, no skew, "
            "single join, moderate size ratio"};
  }
  return {JoinStrategy::kBRJAdaptive,
          "borderline characteristics: the adaptive BRJ hedges by sampling "
          "the filter pass rate at runtime"};
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 7) {
    std::printf(
        "usage: %s <build_MiB> <probe_MiB> <payload_B> <selectivity_%%> "
        "<zipf> <pipeline_joins> [--validate]\n",
        argv[0]);
    return 1;
  }
  const double build_mib = std::atof(argv[1]);
  const double probe_mib = std::atof(argv[2]);
  const double payload_b = std::atof(argv[3]);
  const double selectivity = std::atof(argv[4]);
  const double zipf = std::atof(argv[5]);
  const int pipeline_joins = std::atoi(argv[6]);
  const bool validate = argc > 7 && std::strcmp(argv[7], "--validate") == 0;

  const double llc_mib =
      static_cast<double>(GetCpuInfo().llc_bytes) / (1024.0 * 1024.0);
  Advice advice = Advise(build_mib, probe_mib, payload_b, selectivity, zipf,
                         pipeline_joins, llc_mib);
  std::printf("workload: build %.1f MiB, probe %.1f MiB, payload %.0f B,\n"
              "          selectivity %.0f%%, zipf %.2f, %d joins in pipeline\n"
              "host LLC: %.1f MiB\n\n",
              build_mib, probe_mib, payload_b, selectivity, zipf,
              pipeline_joins, llc_mib);
  std::printf("=> recommended join: %s\n   because %s\n",
              JoinStrategyName(advice.strategy), advice.reason.c_str());

  if (!validate) return 0;

  // Race the strategies on a matching synthetic workload (scaled down).
  std::printf("\nvalidating on a scaled microbenchmark...\n");
  MicroWorkload w =
      MakeSelectivityWorkload(WorkloadScaleDivisor(), selectivity / 100.0);
  auto plan = CountJoinPlan(w);
  ThreadPool pool(DefaultThreads());
  TablePrinter table({"strategy", "time [ms]"});
  JoinStrategy best = JoinStrategy::kBHJ;
  double best_seconds = 1e30;
  for (JoinStrategy s : {JoinStrategy::kBHJ, JoinStrategy::kRJ,
                         JoinStrategy::kBRJ, JoinStrategy::kBRJAdaptive}) {
    ExecOptions options;
    options.join_strategy = s;
    options.num_threads = pool.num_threads();
    QueryStats stats = MeasurePlan(*plan, options, 3, &pool);
    if (stats.seconds < best_seconds) {
      best_seconds = stats.seconds;
      best = s;
    }
    table.AddRow({JoinStrategyName(s),
                  TablePrinter::Double(stats.seconds * 1e3, 1)});
  }
  table.Print();
  std::printf("fastest measured: %s\n", JoinStrategyName(best));
  return 0;
}
