// Microbenchmark lab: run any point of the paper's Section 5.4 design space
// from the command line.
//
//   ./build/examples/microbench_lab [--selectivity=PCT] [--payload=COLS]
//       [--zipf=Z] [--depth=D] [--scale=DIV] [--threads=N] [--reps=R]
//       [--lm]
//
// Examples:
//   ./build/examples/microbench_lab --selectivity=5
//   ./build/examples/microbench_lab --payload=4 --lm
//   ./build/examples/microbench_lab --zipf=1.5
//   ./build/examples/microbench_lab --depth=4
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util/harness.h"
#include "bench_util/workloads.h"
#include "util/env.h"
#include "util/table_printer.h"

using namespace pjoin;

namespace {

double FlagValue(int argc, char** argv, const char* name, double def) {
  std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::atof(argv[i] + prefix.size());
    }
  }
  return def;
}

bool HasFlag(int argc, char** argv, const char* name) {
  std::string flag = std::string("--") + name;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const double selectivity = FlagValue(argc, argv, "selectivity", 100.0);
  const int payload = static_cast<int>(FlagValue(argc, argv, "payload", 1));
  const double zipf = FlagValue(argc, argv, "zipf", 0.0);
  const int depth = static_cast<int>(FlagValue(argc, argv, "depth", 0));
  const int64_t divisor = static_cast<int64_t>(
      FlagValue(argc, argv, "scale", WorkloadScaleDivisor()));
  const int threads =
      static_cast<int>(FlagValue(argc, argv, "threads", DefaultThreads()));
  const int reps = static_cast<int>(FlagValue(argc, argv, "reps", 3));
  const bool lm = HasFlag(argc, argv, "lm");

  MicroWorkload w;
  std::unique_ptr<PlanNode> plan;
  std::string description;
  if (depth > 0) {
    w = MakeStarWorkload(divisor, depth);
    plan = StarJoinPlan(w);
    description = "star schema, depth " + std::to_string(depth);
  } else if (zipf > 0) {
    w = MakeSkewWorkload(divisor, zipf);
    plan = CountJoinPlan(w);
    description = "workload A with Zipf z=" + std::to_string(zipf);
  } else if (payload > 1 || lm) {
    w = MakePayloadWorkload(divisor, payload, selectivity / 100.0);
    plan = SumAllPayloadsPlan(w);
    description = "workload A, " + std::to_string(payload) +
                  " payload columns, selectivity " +
                  std::to_string(static_cast<int>(selectivity)) + "%";
  } else {
    w = MakeSelectivityWorkload(divisor, selectivity / 100.0);
    plan = CountJoinPlan(w);
    description = "workload A, selectivity " +
                  std::to_string(static_cast<int>(selectivity)) + "%";
  }

  std::printf("%s (build %llu, probe %llu tuples, %d thread(s)%s)\n\n",
              description.c_str(),
              static_cast<unsigned long long>(w.build_tuples),
              static_cast<unsigned long long>(w.probe_tuples), threads,
              lm ? ", late materialization" : "");

  ThreadPool pool(threads);
  TablePrinter table({"strategy", "time [ms]", "throughput [M T/s]",
                      "partition MiB", "bloom dropped"});
  for (JoinStrategy s : {JoinStrategy::kBHJ, JoinStrategy::kRJ,
                         JoinStrategy::kBRJ, JoinStrategy::kBRJAdaptive}) {
    ExecOptions options;
    options.join_strategy = s;
    options.num_threads = threads;
    options.late_materialization = lm;
    QueryStats stats = MeasurePlan(*plan, options, reps, &pool);
    table.AddRow({JoinStrategyName(s),
                  TablePrinter::Double(stats.seconds * 1e3, 1),
                  TablePrinter::Double(stats.Throughput() / 1e6, 1),
                  TablePrinter::Double(stats.partition_bytes / 1048576.0, 1),
                  std::to_string(stats.bloom_dropped)});
  }
  table.Print();
  return 0;
}
