// Quickstart: build two relations, join them with every strategy the
// library offers, and compare results and timings.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "engine/executor.h"
#include "engine/explain.h"
#include "engine/plan.h"
#include "util/rng.h"
#include "util/table_printer.h"

using namespace pjoin;

int main() {
  // 1. Create columnar tables (the engine stores relations column-wise).
  Table users("users", Schema({{"u_id", DataType::kInt64, 0},
                               {"u_country", DataType::kInt64, 0},
                               {"u_name", DataType::kChar, 12}}));
  Table clicks("clicks", Schema({{"k_user", DataType::kInt64, 0},
                                 {"k_value", DataType::kFloat64, 0}}));
  Rng rng(7);
  const int64_t kUsers = 10000;
  for (int64_t u = 0; u < kUsers; ++u) {
    users.column(0).AppendInt64(u);
    users.column(1).AppendInt64(static_cast<int64_t>(rng.Below(30)));
    users.column(2).AppendString("user" + std::to_string(u));
    users.FinishRow();
  }
  for (int64_t c = 0; c < 500000; ++c) {
    // 20% of clicks reference unknown users (a selective join).
    clicks.column(0).AppendInt64(static_cast<int64_t>(rng.Below(kUsers * 5 / 4)));
    clicks.column(1).AppendFloat64(rng.NextDouble());
    clicks.FinishRow();
  }

  // 2. Build a query plan: clicks per country for matching users.
  //    Plans are join-strategy-agnostic; the executor decides whether each
  //    join partitions its inputs (radix join) or probes a global table.
  auto make_plan = [&] {
    return Aggregate(
        Join(/*build=*/ScanTable(&users), /*probe=*/ScanTable(&clicks),
             /*keys=*/{{"u_id", "k_user"}}),
        /*group_by=*/{"u_country"},
        {AggDef::CountStar("clicks"), AggDef::Sum("k_value", "value")});
  };

  // 3. Execute under each join strategy and compare. kAuto is the sensible
  //    default: the cost-based advisor answers "to partition, or not" per
  //    join, with a runtime fallback when the estimates turn out wrong.
  TablePrinter table({"strategy", "time [ms]", "throughput", "rows",
                      "bloom-dropped probe tuples"});
  QueryResult reference;
  std::string explain_analyze;
  for (JoinStrategy s : {JoinStrategy::kAuto, JoinStrategy::kBHJ,
                         JoinStrategy::kRJ, JoinStrategy::kBRJ,
                         JoinStrategy::kBRJAdaptive}) {
    auto plan = make_plan();
    ExecOptions options;
    options.join_strategy = s;
    QueryStats stats;
    QueryResult result = ExecuteQuery(*plan, options, &stats);
    if (reference.rows.empty()) {
      reference = result;
    } else if (!result.ApproxEquals(reference)) {
      std::printf("ERROR: strategies disagree!\n");
      return 1;
    }
    table.AddRow({JoinStrategyName(s),
                  TablePrinter::Double(stats.seconds * 1e3, 1),
                  TablePrinter::TuplesPerSec(stats.Throughput()),
                  std::to_string(result.num_rows()),
                  std::to_string(stats.bloom_dropped)});
    if (s == JoinStrategy::kAuto) {
      explain_analyze = ExplainAnalyzePlan(*plan, options, stats);
    }
  }
  table.Print();

  // 4. EXPLAIN ANALYZE: the plan annotated with what one run actually did —
  //    per-operator row counts, the advisor's decision and cost breakdown,
  //    hash-table/partitioner shape, Bloom-filter pass rate, and the
  //    per-pipeline morsel distribution.
  std::printf("\nEXPLAIN ANALYZE (%s):\n%s",
              JoinStrategyName(JoinStrategy::kAuto), explain_analyze.c_str());

  std::printf("\nfirst rows of the (identical) result:\n%s",
              reference.ToString(5).c_str());
  return 0;
}
