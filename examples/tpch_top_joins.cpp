// TPC-H walkthrough: generates a scaled TPC-H database, runs the queries the
// paper highlights (Q5, Q12, Q22), and prints the per-join measurements that
// explain *why* each join strategy wins or loses — the Figure 1/13 style
// analysis as a library feature.
//
//   ./build/examples/tpch_top_joins [scale_factor]
#include <cstdio>
#include <cstdlib>

#include "engine/executor.h"
#include "tpch/gen.h"
#include "tpch/queries.h"
#include "util/env.h"
#include "util/table_printer.h"

using namespace pjoin;

int main(int argc, char** argv) {
  double sf = argc > 1 ? std::atof(argv[1]) : 0.05;
  std::printf("generating TPC-H at scale factor %.3g...\n", sf);
  auto db = GenerateTpch(sf);
  std::printf("lineitem: %llu rows, total data: %s\n\n",
              static_cast<unsigned long long>(db->lineitem.num_rows()),
              TablePrinter::Bytes(static_cast<double>(db->TotalBytes()))
                  .c_str());

  ThreadPool pool(DefaultThreads());
  for (int qid : {5, 12, 22}) {
    const TpchQuery& query = GetTpchQuery(qid);
    std::printf("== %s ==\n", query.name.c_str());

    TablePrinter timing({"strategy", "time [ms]", "throughput [M T/s]"});
    QueryStats bhj_stats;
    for (JoinStrategy s : {JoinStrategy::kBHJ, JoinStrategy::kBRJ,
                           JoinStrategy::kRJ}) {
      ExecOptions options;
      options.join_strategy = s;
      options.num_threads = pool.num_threads();
      QueryStats stats;
      query.run(*db, options, &stats, &pool);
      if (s == JoinStrategy::kBHJ) bhj_stats = stats;
      timing.AddRow({JoinStrategyName(s),
                     TablePrinter::Double(stats.seconds * 1e3, 1),
                     TablePrinter::Double(stats.Throughput() / 1e6, 1)});
    }
    timing.Print();

    TablePrinter joins({"join", "kind", "build", "probe", "partners"});
    for (const auto& audit : bhj_stats.join_audits) {
      joins.AddRow(
          {"J" + std::to_string(audit.join_id + 1), JoinKindName(audit.kind),
           TablePrinter::Bytes(static_cast<double>(audit.build_bytes())),
           TablePrinter::Bytes(static_cast<double>(audit.probe_bytes())),
           TablePrinter::Double(audit.match_fraction() * 100, 1) + "%"});
    }
    joins.Print();
    std::printf("\n");
  }
  std::printf(
      "reading the join tables: small builds (< LLC) make partitioning\n"
      "pointless; low partner fractions favor the Bloom-filtered BRJ; only\n"
      "narrow tuples at moderate build:probe ratios favor the plain RJ.\n");
  return 0;
}
