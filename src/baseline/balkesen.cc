#include "baseline/balkesen.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <utility>

#include "exec/morsel.h"
#include "util/bitutil.h"
#include "util/check.h"
#include "util/prefetch.h"

namespace pjoin {

namespace {

// The originals exploit that the synthetic workloads have dense integer keys
// and use the key bits directly — no hash computation, no stored hash. This
// is the "optimized for the given workload" advantage the paper concedes to
// the NPJ in Section 5.2.1.
template <typename Tuple>
uint64_t KeyBits(const Tuple& t) {
  return static_cast<uint64_t>(t.key);
}

}  // namespace

template <typename Tuple>
uint64_t BalkesenNPJ(const std::vector<Tuple>& build,
                     const std::vector<Tuple>& probe, ThreadPool& pool) {
  const uint64_t n = build.size();
  const uint64_t nbuckets = NextPow2((n | 1) * 2);
  const uint64_t mask = nbuckets - 1;

  std::vector<std::atomic<int64_t>> heads(nbuckets);
  for (auto& h : heads) h.store(-1, std::memory_order_relaxed);
  std::vector<int64_t> next(n);

  // Parallel build: lock-free push-front per bucket.
  MorselQueue build_queue(n);
  pool.ParallelRun([&](int) {
    while (true) {
      Morsel m = build_queue.Next();
      if (m.empty()) break;
      for (uint64_t i = m.begin; i < m.end; ++i) {
        uint64_t b = KeyBits(build[i]) & mask;
        next[i] =
            heads[b].exchange(static_cast<int64_t>(i), std::memory_order_relaxed);
      }
    }
  });

  // Parallel probe with software prefetching: hash/prefetch a small window
  // ahead of the probe cursor, as the original NPJ does.
  std::atomic<uint64_t> total{0};
  MorselQueue probe_queue(probe.size());
  pool.ParallelRun([&](int) {
    uint64_t local = 0;
    while (true) {
      Morsel m = probe_queue.Next();
      if (m.empty()) break;
      for (uint64_t i = m.begin; i < m.end; ++i) {
        if (i + kPrefetchDistance < m.end) {
          PrefetchForRead(&heads[KeyBits(probe[i + kPrefetchDistance]) & mask]);
        }
        auto key = probe[i].key;
        for (int64_t j = heads[KeyBits(probe[i]) & mask].load(
                 std::memory_order_relaxed);
             j >= 0; j = next[j]) {
          local += (build[j].key == key);
        }
      }
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  return total.load();
}

namespace {

// Pass 1 of the PRJ: histogram-based contiguous partitioning of a
// materialized relation, parallel over input slices (Figure 3a, step 1-2).
template <typename Tuple>
void PrjPass1(const std::vector<Tuple>& src, std::vector<Tuple>& dst,
              std::vector<uint64_t>& offsets, int bits, ThreadPool& pool) {
  const int fanout = 1 << bits;
  const uint64_t mask = fanout - 1;
  const int nthreads = pool.num_threads();
  const uint64_t n = src.size();
  dst.resize(n);
  offsets.assign(fanout + 1, 0);

  // Per-thread histograms over equal slices.
  std::vector<std::vector<uint64_t>> hist(nthreads,
                                          std::vector<uint64_t>(fanout, 0));
  auto slice = [&](int t) {
    uint64_t begin = n * t / nthreads;
    uint64_t end = n * (t + 1) / nthreads;
    return std::pair<uint64_t, uint64_t>{begin, end};
  };
  pool.ParallelRun([&](int t) {
    auto [begin, end] = slice(t);
    for (uint64_t i = begin; i < end; ++i) {
      hist[t][KeyBits(src[i]) & mask]++;
    }
  });

  // Prefix sums: dedicated output range per (partition, thread).
  std::vector<std::vector<uint64_t>> out_pos(nthreads,
                                             std::vector<uint64_t>(fanout, 0));
  uint64_t sum = 0;
  for (int p = 0; p < fanout; ++p) {
    offsets[p] = sum;
    for (int t = 0; t < nthreads; ++t) {
      out_pos[t][p] = sum;
      sum += hist[t][p];
    }
  }
  offsets[fanout] = sum;
  PJOIN_CHECK(sum == n);

  // Scatter without synchronization.
  pool.ParallelRun([&](int t) {
    auto [begin, end] = slice(t);
    auto& pos = out_pos[t];
    for (uint64_t i = begin; i < end; ++i) {
      dst[pos[KeyBits(src[i]) & mask]++] = src[i];
    }
  });
}

// Bucket-chaining join of one cache-resident partition pair (the original's
// per-partition join). `heads`/`next` are worker-local scratch.
template <typename Tuple>
uint64_t PartitionPairJoin(const Tuple* build, uint64_t build_n,
                           const Tuple* probe, uint64_t probe_n, int key_shift,
                           std::vector<int64_t>& heads,
                           std::vector<int64_t>& next) {
  if (build_n == 0 || probe_n == 0) return 0;
  uint64_t nbuckets = NextPow2(build_n | 1);
  uint64_t mask = nbuckets - 1;
  heads.assign(nbuckets, -1);
  next.resize(build_n);
  for (uint64_t i = 0; i < build_n; ++i) {
    uint64_t b = (KeyBits(build[i]) >> key_shift) & mask;
    next[i] = heads[b];
    heads[b] = static_cast<int64_t>(i);
  }
  uint64_t matches = 0;
  for (uint64_t i = 0; i < probe_n; ++i) {
    auto key = probe[i].key;
    for (int64_t j = heads[(KeyBits(probe[i]) >> key_shift) & mask]; j >= 0;
         j = next[j]) {
      matches += (build[j].key == key);
    }
  }
  return matches;
}

}  // namespace

template <typename Tuple>
uint64_t BalkesenPRJ(const std::vector<Tuple>& build,
                     const std::vector<Tuple>& probe, ThreadPool& pool,
                     const PrjConfig& config) {
  const int fanout1 = 1 << config.bits1;
  const int fanout2 = 1 << config.bits2;
  const uint64_t mask2 = fanout2 - 1;

  // Pass 1 over both relations (Figure 3a, steps 1-2).
  std::vector<Tuple> build1, probe1;
  std::vector<uint64_t> build_off, probe_off;
  PrjPass1(build, build1, build_off, config.bits1, pool);
  PrjPass1(probe, probe1, probe_off, config.bits1, pool);

  // Pass 2 + join, task-parallel per pass-1 partition (step 3). Each task
  // splits its partition pair into fanout2 sub-partitions in worker-local
  // scratch and joins them while they are cache-hot.
  std::atomic<int> cursor{0};
  std::atomic<uint64_t> total{0};
  pool.ParallelRun([&](int) {
    std::vector<Tuple> btmp, ptmp;
    std::vector<uint64_t> bhist(fanout2), phist(fanout2);
    std::vector<uint64_t> boff(fanout2 + 1), poff(fanout2 + 1);
    std::vector<int64_t> heads, next;
    uint64_t local = 0;
    while (true) {
      int p1 = cursor.fetch_add(1, std::memory_order_relaxed);
      if (p1 >= fanout1) break;
      const Tuple* bsrc = build1.data() + build_off[p1];
      const Tuple* psrc = probe1.data() + probe_off[p1];
      uint64_t bn = build_off[p1 + 1] - build_off[p1];
      uint64_t pn = probe_off[p1 + 1] - probe_off[p1];
      if (bn == 0 || pn == 0) continue;

      // Sub-partition both sides on the next radix bits.
      auto subpartition = [&](const Tuple* src, uint64_t n,
                              std::vector<Tuple>& tmp,
                              std::vector<uint64_t>& hist,
                              std::vector<uint64_t>& off) {
        tmp.resize(n);
        std::fill(hist.begin(), hist.end(), 0);
        for (uint64_t i = 0; i < n; ++i) {
          hist[(KeyBits(src[i]) >> config.bits1) & mask2]++;
        }
        uint64_t sum = 0;
        for (int p = 0; p < fanout2; ++p) {
          off[p] = sum;
          sum += hist[p];
        }
        off[fanout2] = sum;
        std::vector<uint64_t> pos(off.begin(), off.end() - 1);
        for (uint64_t i = 0; i < n; ++i) {
          tmp[pos[(KeyBits(src[i]) >> config.bits1) & mask2]++] = src[i];
        }
      };
      subpartition(bsrc, bn, btmp, bhist, boff);
      subpartition(psrc, pn, ptmp, phist, poff);

      for (int p2 = 0; p2 < fanout2; ++p2) {
        local += PartitionPairJoin(
            btmp.data() + boff[p2], boff[p2 + 1] - boff[p2],
            ptmp.data() + poff[p2], poff[p2 + 1] - poff[p2],
            config.bits1 + config.bits2, heads, next);
      }
    }
    total.fetch_add(local, std::memory_order_relaxed);
  });
  return total.load();
}

// Explicit instantiations for the two workload tuple formats.
template uint64_t BalkesenNPJ<Tuple8>(const std::vector<Tuple8>&,
                                      const std::vector<Tuple8>&, ThreadPool&);
template uint64_t BalkesenNPJ<Tuple4>(const std::vector<Tuple4>&,
                                      const std::vector<Tuple4>&, ThreadPool&);
template uint64_t BalkesenPRJ<Tuple8>(const std::vector<Tuple8>&,
                                      const std::vector<Tuple8>&, ThreadPool&,
                                      const PrjConfig&);
template uint64_t BalkesenPRJ<Tuple4>(const std::vector<Tuple4>&,
                                      const std::vector<Tuple4>&, ThreadPool&,
                                      const PrjConfig&);

}  // namespace pjoin
