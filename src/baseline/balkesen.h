// Stand-alone re-implementations of the joins of Balkesen et al. (ICDE'13 /
// TKDE'15), the external baselines of the paper's Figures 8 and 17:
//
//   NPJ — non-partitioned join: a global bucket-chaining hash table built in
//         parallel with atomic pushes, probed with software prefetching.
//   PRJ — parallel radix join: two-pass histogram-based radix partitioning
//         (contiguous output, software write-combine buffers, non-temporal
//         streaming) followed by per-partition bucket-chaining joins.
//
// Faithful to the originals, these operate on fully materialized arrays of
// narrow fixed tuples, use the key itself for partitioning (no stored hash
// value — the difference the paper calls out in Section 5.2), and merely
// count result tuples instead of materializing them. They exist to validate
// that our system-integrated joins are competitive (Section 5.2) and to
// reproduce the prior-work side of the skew study (Section 5.4.5).
#ifndef PJOIN_BASELINE_BALKESEN_H_
#define PJOIN_BASELINE_BALKESEN_H_

#include <cstdint>
#include <vector>

#include "exec/thread_pool.h"

namespace pjoin {

// Workload A tuples: 8-byte key, 8-byte payload (Table 1).
struct Tuple8 {
  int64_t key;
  int64_t payload;
};

// Workload B tuples: 4-byte key, 4-byte payload (Table 1).
struct Tuple4 {
  int32_t key;
  int32_t payload;
};

// Non-partitioned join. Returns the number of matching (build, probe) pairs.
template <typename Tuple>
uint64_t BalkesenNPJ(const std::vector<Tuple>& build,
                     const std::vector<Tuple>& probe, ThreadPool& pool);

struct PrjConfig {
  int bits1 = 7;  // pass-1 radix bits (TLB-bounded, as in the original)
  int bits2 = 7;  // pass-2 radix bits
};

// Parallel radix join. Returns the number of matching pairs.
template <typename Tuple>
uint64_t BalkesenPRJ(const std::vector<Tuple>& build,
                     const std::vector<Tuple>& probe, ThreadPool& pool,
                     const PrjConfig& config = {});

}  // namespace pjoin

#endif  // PJOIN_BASELINE_BALKESEN_H_
