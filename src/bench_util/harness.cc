#include "bench_util/harness.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace pjoin {

QueryStats MeasureRuns(const std::function<void(QueryStats*)>& run, int reps,
                       bool warmup) {
  PJOIN_CHECK(reps >= 1);
  if (warmup) {
    QueryStats ignored;
    run(&ignored);
  }
  std::vector<QueryStats> results(reps);
  for (int r = 0; r < reps; ++r) {
    run(&results[r]);
  }
  std::sort(results.begin(), results.end(),
            [](const QueryStats& a, const QueryStats& b) {
              return a.seconds < b.seconds;
            });
  return results[results.size() / 2];
}

QueryStats MeasurePlan(const PlanNode& plan, const ExecOptions& options,
                       int reps, ThreadPool* pool, bool warmup) {
  return MeasureRuns(
      [&](QueryStats* stats) { ExecuteQuery(plan, options, stats, pool); },
      reps, warmup);
}

}  // namespace pjoin
