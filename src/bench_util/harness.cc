#include "bench_util/harness.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace pjoin {

QueryStats MeasureRuns(const std::function<void(QueryStats*)>& run, int reps,
                       bool warmup, std::vector<double>* rep_seconds) {
  PJOIN_CHECK(reps >= 1);
  if (warmup) {
    QueryStats ignored;
    run(&ignored);
  }
  std::vector<QueryStats> results(reps);
  for (int r = 0; r < reps; ++r) {
    run(&results[r]);
    if (rep_seconds != nullptr) rep_seconds->push_back(results[r].seconds);
  }
  std::sort(results.begin(), results.end(),
            [](const QueryStats& a, const QueryStats& b) {
              return a.seconds < b.seconds;
            });
  return results[results.size() / 2];
}

QueryStats MeasurePlan(const PlanNode& plan, const ExecOptions& options,
                       int reps, ThreadPool* pool, bool warmup,
                       std::vector<double>* rep_seconds) {
  return MeasureRuns(
      [&](QueryStats* stats) { ExecuteQuery(plan, options, stats, pool); },
      reps, warmup, rep_seconds);
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size());
  size_t idx = rank <= 1.0 ? 0 : static_cast<size_t>(rank + 0.5) - 1;
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

}  // namespace pjoin
