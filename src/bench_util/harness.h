// Measurement harness: warmed-up median-of-N query runs (Section 5.1.3:
// "we warmed up the system ... ran all benchmarks at least five times and
// reported median performance").
#ifndef PJOIN_BENCH_UTIL_HARNESS_H_
#define PJOIN_BENCH_UTIL_HARNESS_H_

#include <functional>
#include <vector>

#include "engine/executor.h"
#include "engine/plan.h"

namespace pjoin {

// Runs `plan` `reps` times under `options` on `pool` and returns the stats
// of the median-time run. One untimed warm-up run precedes the measurement.
// `rep_seconds`, when non-null, receives every rep's wall time in run order,
// so callers can report tail latency (p99) alongside the median.
QueryStats MeasurePlan(const PlanNode& plan, const ExecOptions& options,
                       int reps, ThreadPool* pool, bool warmup = true,
                       std::vector<double>* rep_seconds = nullptr);

// Same for an arbitrary runnable that fills QueryStats (used for multi-step
// TPC-H queries and the stand-alone baselines).
QueryStats MeasureRuns(const std::function<void(QueryStats*)>& run, int reps,
                       bool warmup = true,
                       std::vector<double>* rep_seconds = nullptr);

// Nearest-rank percentile (p in [0, 100]) of a sample set; used for the
// skew benches' p99-of-per-join-wall-time columns. Returns 0 when empty.
double Percentile(std::vector<double> samples, double p);

}  // namespace pjoin

#endif  // PJOIN_BENCH_UTIL_HARNESS_H_
