#include "bench_util/workloads.h"

#include <string>

#include "util/check.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace pjoin {

namespace {

constexpr uint64_t kWorkloadABuild = 16ull << 20;   // 16 Mi tuples, 256 MiB
constexpr uint64_t kWorkloadAProbe = 256ull << 20;  // 256 Mi tuples, 4096 MiB
constexpr uint64_t kWorkloadBSide = 128'000'000;    // 128 M tuples, 977 MiB

uint64_t Scaled(uint64_t n, int64_t divisor) {
  uint64_t scaled = n / static_cast<uint64_t>(divisor);
  return scaled < 64 ? 64 : scaled;
}

// Dense shuffled key column 1..n (the prior-work build-side layout).
std::vector<int64_t> DensePermutation(uint64_t n, Rng& rng) {
  std::vector<int64_t> keys(n);
  for (uint64_t i = 0; i < n; ++i) keys[i] = static_cast<int64_t>(i + 1);
  for (uint64_t i = n; i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.Below(i)]);
  }
  return keys;
}

Table MakeBuildTable(uint64_t n, Rng& rng) {
  Table build("build", Schema({{"b_key", DataType::kInt64, 0},
                               {"b_pay", DataType::kInt64, 0}}));
  build.Reserve(n);
  for (int64_t key : DensePermutation(n, rng)) {
    build.column(0).AppendInt64(key);
    build.column(1).AppendInt64(key);  // payload == key in prior work
    build.FinishRow();
  }
  return build;
}

}  // namespace

MicroWorkload MakeWorkloadA(int64_t scale_divisor) {
  return MakePayloadWorkload(scale_divisor, /*payload_cols=*/1,
                             /*match_fraction=*/1.0);
}

MicroWorkload MakeWorkloadB(int64_t scale_divisor) {
  MicroWorkload w;
  w.build_tuples = Scaled(kWorkloadBSide, scale_divisor);
  w.probe_tuples = Scaled(kWorkloadBSide, scale_divisor);
  Rng rng(101);

  w.build = Table("build", Schema({{"b_key", DataType::kInt32, 0},
                                   {"b_pay", DataType::kInt32, 0}}));
  w.build.Reserve(w.build_tuples);
  for (int64_t key : DensePermutation(w.build_tuples, rng)) {
    w.build.column(0).AppendInt32(static_cast<int32_t>(key));
    w.build.column(1).AppendInt32(static_cast<int32_t>(key));
    w.build.FinishRow();
  }
  w.probe = Table("probe", Schema({{"p_key", DataType::kInt32, 0},
                                   {"p_pay", DataType::kInt32, 0}}));
  w.probe.Reserve(w.probe_tuples);
  for (uint64_t i = 0; i < w.probe_tuples; ++i) {
    w.probe.column(0).AppendInt32(
        static_cast<int32_t>(1 + rng.Below(w.build_tuples)));
    w.probe.column(1).AppendInt32(static_cast<int32_t>(i));
    w.probe.FinishRow();
  }
  return w;
}

MicroWorkload MakeSelectivityWorkload(int64_t scale_divisor,
                                      double match_fraction) {
  MicroWorkload w;
  w.build_tuples = Scaled(kWorkloadABuild, scale_divisor);
  w.probe_tuples = Scaled(kWorkloadAProbe, scale_divisor);
  Rng rng(102);
  w.build = MakeBuildTable(w.build_tuples, rng);

  w.probe = Table("probe", Schema({{"p_key", DataType::kInt64, 0},
                                   {"p_pay", DataType::kInt64, 0}}));
  w.probe.Reserve(w.probe_tuples);
  const uint64_t threshold =
      static_cast<uint64_t>(match_fraction * 1000000.0);
  for (uint64_t i = 0; i < w.probe_tuples; ++i) {
    // Matching keys reference the build universe; non-matching keys live in
    // a disjoint range, keeping the probe size constant (Section 5.4.1).
    bool match = rng.Below(1000000) < threshold;
    int64_t key = static_cast<int64_t>(1 + rng.Below(w.build_tuples));
    if (!match) key += static_cast<int64_t>(w.build_tuples);
    w.probe.column(0).AppendInt64(key);
    w.probe.column(1).AppendInt64(static_cast<int64_t>(i));
    w.probe.FinishRow();
  }
  return w;
}

MicroWorkload MakePayloadWorkload(int64_t scale_divisor, int payload_cols,
                                  double match_fraction) {
  PJOIN_CHECK(payload_cols >= 0);
  MicroWorkload w;
  w.build_tuples = Scaled(kWorkloadABuild, scale_divisor);
  w.probe_tuples = Scaled(kWorkloadAProbe, scale_divisor);
  Rng rng(103);
  w.build = MakeBuildTable(w.build_tuples, rng);

  std::vector<ColumnDef> probe_cols = {{"p_key", DataType::kInt64, 0}};
  for (int c = 1; c <= payload_cols; ++c) {
    probe_cols.push_back(
        {"p_pay" + std::to_string(c), DataType::kInt64, 0});
  }
  w.probe = Table("probe", Schema(probe_cols));
  w.probe.Reserve(w.probe_tuples);
  const uint64_t threshold =
      static_cast<uint64_t>(match_fraction * 1000000.0);
  for (uint64_t i = 0; i < w.probe_tuples; ++i) {
    bool match = rng.Below(1000000) < threshold;
    int64_t key = static_cast<int64_t>(1 + rng.Below(w.build_tuples));
    if (!match) key += static_cast<int64_t>(w.build_tuples);
    w.probe.column(0).AppendInt64(key);
    for (int c = 1; c <= payload_cols; ++c) {
      w.probe.column(c).AppendInt64(static_cast<int64_t>(rng.Next() >> 16));
    }
    w.probe.FinishRow();
  }
  return w;
}

MicroWorkload MakeSkewWorkload(int64_t scale_divisor, double zipf_theta,
                               bool workload_b) {
  MicroWorkload w;
  Rng rng(104);
  if (workload_b) {
    w.build_tuples = Scaled(kWorkloadBSide, scale_divisor);
    w.probe_tuples = Scaled(kWorkloadBSide, scale_divisor);
    w.build = Table("build", Schema({{"b_key", DataType::kInt32, 0},
                                     {"b_pay", DataType::kInt32, 0}}));
    for (int64_t key : DensePermutation(w.build_tuples, rng)) {
      w.build.column(0).AppendInt32(static_cast<int32_t>(key));
      w.build.column(1).AppendInt32(static_cast<int32_t>(key));
      w.build.FinishRow();
    }
    w.probe = Table("probe", Schema({{"p_key", DataType::kInt32, 0},
                                     {"p_pay", DataType::kInt32, 0}}));
    w.probe.Reserve(w.probe_tuples);
    ZipfGenerator zipf(w.build_tuples, zipf_theta);
    for (uint64_t i = 0; i < w.probe_tuples; ++i) {
      w.probe.column(0).AppendInt32(static_cast<int32_t>(zipf.Next(rng)));
      w.probe.column(1).AppendInt32(static_cast<int32_t>(i));
      w.probe.FinishRow();
    }
    return w;
  }
  w.build_tuples = Scaled(kWorkloadABuild, scale_divisor);
  w.probe_tuples = Scaled(kWorkloadAProbe, scale_divisor);
  w.build = MakeBuildTable(w.build_tuples, rng);
  w.probe = Table("probe", Schema({{"p_key", DataType::kInt64, 0},
                                   {"p_pay", DataType::kInt64, 0}}));
  w.probe.Reserve(w.probe_tuples);
  ZipfGenerator zipf(w.build_tuples, zipf_theta);
  for (uint64_t i = 0; i < w.probe_tuples; ++i) {
    w.probe.column(0).AppendInt64(static_cast<int64_t>(zipf.Next(rng)));
    w.probe.column(1).AppendInt64(static_cast<int64_t>(i));
    w.probe.FinishRow();
  }
  return w;
}

MicroWorkload MakeBuildSkewWorkload(int64_t scale_divisor, double zipf_theta) {
  MicroWorkload w;
  w.build_tuples = Scaled(kWorkloadABuild, scale_divisor);
  w.probe_tuples = Scaled(kWorkloadAProbe, scale_divisor);
  Rng rng(107);
  const uint64_t universe = w.build_tuples / 4 < 16 ? 16 : w.build_tuples / 4;

  w.build = Table("build", Schema({{"b_key", DataType::kInt64, 0},
                                   {"b_pay", DataType::kInt64, 0}}));
  w.build.Reserve(w.build_tuples);
  ZipfGenerator zipf(universe, zipf_theta);
  for (uint64_t i = 0; i < w.build_tuples; ++i) {
    int64_t key = static_cast<int64_t>(zipf.Next(rng));
    w.build.column(0).AppendInt64(key);
    w.build.column(1).AppendInt64(key);  // payload == key: corr signal
    w.build.FinishRow();
  }

  w.probe = Table("probe", Schema({{"p_key", DataType::kInt64, 0},
                                   {"p_pay", DataType::kInt64, 0}}));
  w.probe.Reserve(w.probe_tuples);
  for (uint64_t i = 0; i < w.probe_tuples; ++i) {
    w.probe.column(0).AppendInt64(static_cast<int64_t>(1 + rng.Below(universe)));
    w.probe.column(1).AppendInt64(static_cast<int64_t>(i));
    w.probe.FinishRow();
  }
  return w;
}

MicroWorkload MakeHeavyHitterWorkload(int64_t scale_divisor,
                                      double heavy_fraction) {
  PJOIN_CHECK(heavy_fraction > 0 && heavy_fraction < 1.0);
  MicroWorkload w;
  w.build_tuples = Scaled(kWorkloadABuild, scale_divisor);
  w.probe_tuples = Scaled(kWorkloadAProbe, scale_divisor);
  Rng rng(108);
  const uint64_t heavy_rows =
      static_cast<uint64_t>(heavy_fraction * static_cast<double>(w.build_tuples));
  const uint64_t tail_rows = w.build_tuples - heavy_rows;
  const int64_t heavy_key = 1;  // tail occupies [2, 1 + tail_rows]

  w.build = Table("build", Schema({{"b_key", DataType::kInt64, 0},
                                   {"b_pay", DataType::kInt64, 0}}));
  w.build.Reserve(w.build_tuples);
  for (uint64_t i = 0; i < w.build_tuples; ++i) {
    // Heavy rows are interleaved (every 1/heavy_fraction-th row) so any
    // prefix sample sees the hitter at its true rate.
    const bool heavy =
        i * heavy_rows / w.build_tuples != (i + 1) * heavy_rows / w.build_tuples;
    int64_t key = heavy ? heavy_key
                        : static_cast<int64_t>(2 + rng.Below(tail_rows));
    w.build.column(0).AppendInt64(key);
    w.build.column(1).AppendInt64(key);
    w.build.FinishRow();
  }

  w.probe = Table("probe", Schema({{"p_key", DataType::kInt64, 0},
                                   {"p_pay", DataType::kInt64, 0}}));
  w.probe.Reserve(w.probe_tuples);
  const uint64_t universe = tail_rows + 1;
  for (uint64_t i = 0; i < w.probe_tuples; ++i) {
    w.probe.column(0).AppendInt64(static_cast<int64_t>(1 + rng.Below(universe)));
    w.probe.column(1).AppendInt64(static_cast<int64_t>(i));
    w.probe.FinishRow();
  }
  return w;
}

MicroWorkload MakeStarWorkload(int64_t scale_divisor, int depth) {
  PJOIN_CHECK(depth >= 1);
  MicroWorkload w;
  w.build_tuples = Scaled(kWorkloadABuild, scale_divisor);
  w.probe_tuples = Scaled(kWorkloadAProbe, scale_divisor);
  Rng rng(105);

  // One dimension table per pipeline stage, each a randomly permuted copy of
  // the build side (Section 5.4.4).
  for (int d = 0; d < depth; ++d) {
    std::string prefix = "d" + std::to_string(d);
    auto dim = std::make_unique<Table>(
        prefix, Schema({{prefix + "_key", DataType::kInt64, 0},
                        {prefix + "_pay", DataType::kInt64, 0}}));
    dim->Reserve(w.build_tuples);
    for (int64_t key : DensePermutation(w.build_tuples, rng)) {
      dim->column(0).AppendInt64(key);
      dim->column(1).AppendInt64(key * (d + 1));
      dim->FinishRow();
    }
    w.dims.push_back(std::move(dim));
  }

  // Central fact table: one foreign-key column per dimension, 100% match.
  std::vector<ColumnDef> cols;
  for (int d = 0; d < depth; ++d) {
    cols.push_back({"f_k" + std::to_string(d), DataType::kInt64, 0});
  }
  w.probe = Table("fact", Schema(cols));
  w.probe.Reserve(w.probe_tuples);
  for (uint64_t i = 0; i < w.probe_tuples; ++i) {
    for (int d = 0; d < depth; ++d) {
      w.probe.column(d).AppendInt64(
          static_cast<int64_t>(1 + rng.Below(w.build_tuples)));
    }
    w.probe.FinishRow();
  }
  return w;
}

MicroWorkload MakeSizedWorkload(uint64_t build_tuples, uint64_t probe_tuples) {
  MicroWorkload w;
  w.build_tuples = build_tuples;
  w.probe_tuples = probe_tuples;
  Rng rng(106);
  w.build = MakeBuildTable(build_tuples, rng);
  w.probe = Table("probe", Schema({{"p_key", DataType::kInt64, 0},
                                   {"p_pay", DataType::kInt64, 0}}));
  w.probe.Reserve(probe_tuples);
  for (uint64_t i = 0; i < probe_tuples; ++i) {
    w.probe.column(0).AppendInt64(
        static_cast<int64_t>(1 + rng.Below(build_tuples)));
    w.probe.column(1).AppendInt64(static_cast<int64_t>(i));
    w.probe.FinishRow();
  }
  return w;
}

std::unique_ptr<PlanNode> CountJoinPlan(const MicroWorkload& workload) {
  const std::string probe_key = workload.probe.schema().column(0).name;
  return Aggregate(Join(ScanTable(&workload.build), ScanTable(&workload.probe),
                        {{"b_key", probe_key}}),
                   {}, {AggDef::CountStar("matches")});
}

std::unique_ptr<PlanNode> SumPayloadPlan(const MicroWorkload& workload,
                                         int payload_col) {
  const std::string pay = workload.probe.schema().column(payload_col).name;
  return Aggregate(Join(ScanTable(&workload.build), ScanTable(&workload.probe),
                        {{"b_key", workload.probe.schema().column(0).name}}),
                   {}, {AggDef::Sum(pay, "total")});
}

std::unique_ptr<PlanNode> SumAllPayloadsPlan(const MicroWorkload& workload) {
  std::vector<AggDef> aggs;
  const Schema& schema = workload.probe.schema();
  for (int c = 1; c < schema.num_columns(); ++c) {
    aggs.push_back(
        AggDef::Sum(schema.column(c).name, "sum_" + schema.column(c).name));
  }
  PJOIN_CHECK(!aggs.empty());
  return Aggregate(Join(ScanTable(&workload.build), ScanTable(&workload.probe),
                        {{"b_key", schema.column(0).name}}),
                   {}, std::move(aggs));
}

std::unique_ptr<PlanNode> StarJoinPlan(const MicroWorkload& workload) {
  auto plan = ScanTable(&workload.probe);
  std::vector<AggDef> aggs;
  for (size_t d = 0; d < workload.dims.size(); ++d) {
    std::string prefix = "d" + std::to_string(d);
    plan = Join(ScanTable(workload.dims[d].get()), std::move(plan),
                {{prefix + "_key", "f_k" + std::to_string(d)}});
    // Every dimension's payload is aggregated, so the tuples widen with
    // every join in the pipeline — the effect Section 5.4.4 studies.
    aggs.push_back(AggDef::Sum(prefix + "_pay", "sum_" + prefix));
  }
  return Aggregate(std::move(plan), {}, std::move(aggs));
}

}  // namespace pjoin
