// Prior-work microbenchmark workloads (Table 1) and the Section 5.4
// variants that isolate individual workload factors.
//
// All sizes are divided by PJOIN_SCALE (default 16), preserving every ratio:
// workload A stays 1:16 build:probe with dense shuffled build keys; workload
// B stays 1:1 with 4-byte columns. The generated tables plug straight into
// the engine via the plan API, reproducing the paper's setup of creating the
// relations with CREATE TABLE + SQL queries, no indexes, no preprocessing.
#ifndef PJOIN_BENCH_UTIL_WORKLOADS_H_
#define PJOIN_BENCH_UTIL_WORKLOADS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/executor.h"
#include "engine/plan.h"
#include "storage/table.h"

namespace pjoin {

struct MicroWorkload {
  Table build;  // columns: b_key [, b_pay]
  Table probe;  // columns: p_key [, p_pay | p_pay1..p_payN]
  uint64_t build_tuples = 0;
  uint64_t probe_tuples = 0;

  // Star-schema extension for the pipeline-depth study: `dims[i]` has
  // columns d<i>_key (a permutation of the build key universe) and d<i>_pay;
  // the probe table gains one foreign-key column per dimension.
  std::vector<std::unique_ptr<Table>> dims;
};

// Workload A (Balkesen et al.): 8 B keys + 8 B payload, 16 Mi build tuples
// joined with 256 Mi probe tuples (256 MiB vs 4096 MiB), scaled by
// `scale_divisor`. Build keys are a dense shuffled permutation of 1..N;
// probe keys reference them uniformly (foreign-key join, 100% match).
MicroWorkload MakeWorkloadA(int64_t scale_divisor);

// Workload B: 4 B keys + 4 B payload, 128 M tuples on both sides (977 MiB
// each), scaled by `scale_divisor`.
MicroWorkload MakeWorkloadB(int64_t scale_divisor);

// Section 5.4.1: workload A with only `match_fraction` of the probe-side
// foreign keys finding a join partner (probe size unchanged).
MicroWorkload MakeSelectivityWorkload(int64_t scale_divisor,
                                      double match_fraction);

// Section 5.4.2: workload A with `payload_cols` extra 8 B probe columns of
// randomized integers (probe tuple = key + payloads).
MicroWorkload MakePayloadWorkload(int64_t scale_divisor, int payload_cols,
                                  double match_fraction = 1.0);

// Section 5.4.5: workload A or B with Zipf-distributed probe foreign keys.
MicroWorkload MakeSkewWorkload(int64_t scale_divisor, double zipf_theta,
                               bool workload_b = false);

// Build-side skew for the skew-defense study: build keys are drawn
// Zipf(theta) from a universe of build_tuples/4 values (so hot keys repeat
// heavily on the side that becomes hash-table entries and partitions), and
// the probe references the same universe uniformly. theta in {0.5, 1.0, 1.5}
// spans mild to catastrophic skew.
MicroWorkload MakeBuildSkewWorkload(int64_t scale_divisor, double zipf_theta);

// Degenerate build skew: one heavy-hitter key absorbs `heavy_fraction` of
// the build side; the remaining keys are a dense distinct tail. The probe
// references the universe uniformly, so the heavy key's partition holds
// heavy_fraction of the build no matter how many radix bits are spent.
MicroWorkload MakeHeavyHitterWorkload(int64_t scale_divisor,
                                      double heavy_fraction);

// Section 5.4.4: star schema of `depth` dimension tables; the probe (fact)
// table carries one key column per dimension, each with 100% selectivity.
MicroWorkload MakeStarWorkload(int64_t scale_divisor, int depth);

// Section 5.4.6/5.4.7: custom build/probe tuple counts (8 B key + 8 B pay).
MicroWorkload MakeSizedWorkload(uint64_t build_tuples, uint64_t probe_tuples);

// --- query builders ---------------------------------------------------------

// SELECT count(*) FROM probe r, build s WHERE r.key = s.key  (Section 5.2).
std::unique_ptr<PlanNode> CountJoinPlan(const MicroWorkload& workload);

// SELECT sum(s.p1) FROM build r, probe s WHERE r.k = s.k  (Section 5.4.2).
std::unique_ptr<PlanNode> SumPayloadPlan(const MicroWorkload& workload,
                                         int payload_col = 1);

// Sums every probe payload column, so the full probe tuple (key + all
// payloads) flows through — and, for the radix joins, is materialized into —
// the join. This is the payload-size query of Section 5.4.2: the paper's
// tuples are "at most 80 B wide" including the stored hash value.
std::unique_ptr<PlanNode> SumAllPayloadsPlan(const MicroWorkload& workload);

// The star-schema chain query of Section 5.4.4 (one long pipeline).
std::unique_ptr<PlanNode> StarJoinPlan(const MicroWorkload& workload);

}  // namespace pjoin

#endif  // PJOIN_BENCH_UTIL_WORKLOADS_H_
