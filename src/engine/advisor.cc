#include "engine/advisor.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>

#include "engine/coded_keys.h"
#include "spill/memory_governor.h"
#include "util/check.h"
#include "util/cpu_info.h"
#include "util/env.h"
#include "util/stopwatch.h"

namespace pjoin {

namespace {

// --- Cost-model calibration ------------------------------------------------
// All costs are modeled bytes of memory traffic per join. The constants
// encode the paper's Section 5 surfaces qualitatively: a non-partitioned
// probe pays at most two cache lines per tuple (directory slot + entry, with
// software prefetching hiding most of the latency), while partitioning pays
// a fixed number of full passes over padded tuples on both sides.

// Per-probe-tuple penalty (bytes) when the BHJ table lives in the LLC.
constexpr double kLlcMissBytes = 24.0;
// Per-probe-tuple penalty (bytes) when the BHJ table spills to DRAM:
// directory line plus entry line, discounted for prefetch overlap.
constexpr double kDramMissBytes = 96.0;
// Material passes over each side's padded partition tuples: pass-1 write,
// histogram re-scan, pass-2 read + write, join-phase read.
constexpr double kPassFactor = 5.0;
// Per-partition robin-hood insert cost per build tuple (bytes).
constexpr double kPartitionInsertBytes = 16.0;
// Pipeline-depth penalty per join below the probe side: partitioning breaks
// the probe pipeline, re-materializing work the joins below already paid for.
constexpr double kDepthPenalty = 0.05;
// Bloom filter: bytes touched per key on build and per tuple on probe.
constexpr double kBloomBytesPerKey = 8.0;
// False-positive allowance added to the modeled pass rate.
constexpr double kBloomFpAllowance = 0.05;
// Above this modeled pass rate a winning BRJ is demoted to the adaptive
// variant: the filter is likely useless and should be able to switch off.
constexpr double kAdaptivePassRate = 0.8;
// Cost (in modeled memory-traffic bytes) per byte of spill I/O. Buffered
// sequential temp-file I/O is slower than a DRAM pass but not catastrophically
// so; the factor applies to write + re-read of every spilled byte.
constexpr double kSpillIoFactor = 4.0;

// Stride of a [hash:8B][row] partition tuple as the radix partitioner pads
// it (power of two up to 64 bytes for write-combine buffers).
double PaddedPartitionStride(uint32_t row_width) {
  uint32_t s = 8 + row_width;
  if (s > 64) return (s + 7u) & ~7u;
  uint32_t p = 1;
  while (p < s) p <<= 1;
  return p;
}

// Share of the build side an evenly-loaded final partition would hold,
// mirroring ChooseRadixBits: fan-out targets half of L2 per partition
// (tuple + table-slot bytes), clamped to 16 total bits.
double EvenPartitionShare(uint64_t est_build_rows, uint32_t build_width,
                          uint64_t l2) {
  const double per_tuple = PaddedPartitionStride(build_width) + 24.0;
  const double budget = std::max(1.0, static_cast<double>(l2) / 2.0);
  const double want =
      std::max(1.0, static_cast<double>(est_build_rows) * per_tuple / budget);
  int bits = 1;
  while (bits < 16 && (1u << bits) < want) ++bits;
  return 1.0 / static_cast<double>(1u << bits);
}

// --- Plan walk -------------------------------------------------------------
// Mirrors the executor's lowering: the same required-column propagation and
// the same post-order join numbering, so decisions line up with
// ExecOptions::join_overrides and QueryMetrics join ids by construction.
// (Late materialization is not modeled; its narrower widths only make the
// non-partitioned side cheaper, which the margin rule already favors.)

struct WalkContext {
  const AdvisorOptions* options = nullptr;
  std::map<std::string, uint32_t> width;  // column name -> byte width
  std::map<int, JoinDecision>* out = nullptr;
  int next_join_id = 0;
  uint64_t skew_sample_size = 0;  // resolved: 0 disables sampling
  double est_scale = 1.0;         // resolved fault-injection factor
};

// (The base-column trace the skew sampler uses lives in plan.cc now —
// ResolveBaseColumn — shared with the statistics-backed join estimate.)

struct SubtreeInfo {
  uint64_t est_rows = 0;   // estimated output cardinality
  uint64_t base_rows = 0;  // unfiltered base-table cardinality (probe chain)
  int joins = 0;           // joins inside the subtree
};

void CollectProvidedNames(const PlanNode& node, std::set<std::string>* out) {
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      for (const auto& def : node.table->schema().columns()) {
        out->insert(def.name);
      }
      break;
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kAgg:
      CollectProvidedNames(*node.child, out);
      break;
    case PlanNode::Kind::kMap:
      CollectProvidedNames(*node.child, out);
      for (const auto& map : node.maps) out->insert(map.name);
      break;
    case PlanNode::Kind::kJoin:
      CollectProvidedNames(*node.build, out);
      CollectProvidedNames(*node.probe, out);
      if (node.join_kind == JoinKind::kMark) out->insert(node.mark_name);
      break;
  }
}

void CollectWidths(const PlanNode& node, std::map<std::string, uint32_t>* out) {
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      for (const auto& def : node.table->schema().columns()) {
        (*out)[def.name] = def.width();
      }
      break;
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kAgg:
      CollectWidths(*node.child, out);
      break;
    case PlanNode::Kind::kMap:
      CollectWidths(*node.child, out);
      for (const auto& map : node.maps) {
        (*out)[map.name] = TypeWidth(map.type, map.char_len);
      }
      break;
    case PlanNode::Kind::kJoin:
      CollectWidths(*node.build, out);
      CollectWidths(*node.probe, out);
      if (node.join_kind == JoinKind::kMark) (*out)[node.mark_name] = 8;
      break;
  }
}

uint32_t SumWidths(const WalkContext& ctx, const std::set<std::string>& names) {
  uint32_t w = 0;
  for (const auto& name : names) {
    auto it = ctx.width.find(name);
    if (it != ctx.width.end()) w += it->second;
  }
  return w;
}

SubtreeInfo Walk(const PlanNode& node, const std::set<std::string>& required,
                 WalkContext& ctx) {
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      return SubtreeInfo{node.EstimateRows(), node.table->num_rows(), 0};
    case PlanNode::Kind::kFilter: {
      std::set<std::string> child_required = required;
      for (const auto& name : node.filter.inputs) child_required.insert(name);
      return Walk(*node.child, child_required, ctx);
    }
    case PlanNode::Kind::kMap: {
      std::set<std::string> child_required;
      std::set<std::string> produced;
      for (const auto& map : node.maps) produced.insert(map.name);
      for (const auto& name : required) {
        if (!produced.count(name)) child_required.insert(name);
      }
      for (const auto& map : node.maps) {
        for (const auto& name : map.inputs) child_required.insert(name);
      }
      return Walk(*node.child, child_required, ctx);
    }
    case PlanNode::Kind::kJoin: {
      std::set<std::string> build_names, probe_names;
      CollectProvidedNames(*node.build, &build_names);
      CollectProvidedNames(*node.probe, &probe_names);
      std::set<std::string> build_required, probe_required;
      for (const auto& name : required) {
        if (node.join_kind == JoinKind::kMark && name == node.mark_name) {
          continue;
        }
        if (build_names.count(name)) {
          build_required.insert(name);
        } else if (probe_names.count(name)) {
          probe_required.insert(name);
        }
      }
      for (const auto& [b, p] : node.keys) {
        build_required.insert(b);
        probe_required.insert(p);
      }
      SubtreeInfo build = Walk(*node.build, build_required, ctx);
      SubtreeInfo probe = Walk(*node.probe, probe_required, ctx);
      const int join_id = ctx.next_join_id++;
      // Fault injection (PJOIN_EST_SCALE / AdvisorOptions::est_scale):
      // corrupt the build-side estimate before costing. The corruption also
      // feeds the join-output estimate below, so it compounds up the chain
      // the way a real base-table misestimate would.
      uint64_t est_build = build.est_rows;
      if (ctx.est_scale != 1.0) {
        est_build = std::max<uint64_t>(
            1, static_cast<uint64_t>(std::llround(
                   static_cast<double>(build.est_rows) * ctx.est_scale)));
      }
      // Skew estimate: sample the build key's base column (fixed seed, so
      // EXPLAIN and execute decide identically run after run).
      SkewEstimate skew;
      if (ctx.skew_sample_size > 0 && !node.keys.empty()) {
        int key_col = -1;
        const Table* table =
            ResolveBaseColumn(*node.build, node.keys[0].first, &key_col);
        if (table != nullptr) {
          skew = SampleBuildColumn(*table, key_col, ctx.skew_sample_size);
        }
      }
      JoinDecision d = JoinAdvisor::Decide(
          node.join_kind, est_build, build.base_rows, probe.est_rows,
          SumWidths(ctx, build_required), SumWidths(ctx, probe_required),
          probe.joins, *ctx.options, skew.present ? &skew : nullptr);
      d.skew_sample_rows = skew.present ? skew.sample_rows : 0;
      d.est_build_base_rows = build.base_rows;
      d.est_out_rows = EstimateJoinOutputRows(node, est_build, probe.est_rows);
      (*ctx.out)[join_id] = d;
      return SubtreeInfo{d.est_out_rows, probe.base_rows,
                         build.joins + probe.joins + 1};
    }
    case PlanNode::Kind::kAgg:
      PJOIN_CHECK_MSG(false, "aggregate must be the root");
  }
  return {};
}

}  // namespace

std::map<int, JoinDecision> JoinAdvisor::AdvisePlan(
    const PlanNode& root, const AdvisorOptions& options) {
  PJOIN_CHECK(root.kind == PlanNode::Kind::kAgg);
  std::map<int, JoinDecision> decisions;
  WalkContext ctx;
  ctx.options = &options;
  ctx.out = &decisions;
  ctx.skew_sample_size = options.skew_sample_size == UINT64_MAX
                             ? SkewSampleSize()
                             : options.skew_sample_size;
  ctx.est_scale = ResolvedEstimateScale(options);
  CollectWidths(root, &ctx.width);
  // Keys that execute as 4-byte dictionary codes (engine/coded_keys.h) are
  // costed at the code width, so the advisor models the tuples the engine
  // actually moves. Deterministic: the executor runs the same collection
  // over the same plan, so EXPLAIN and execution decide identically.
  for (const CodedKeyPlan& plan : CollectCodedJoinKeys(root)) {
    ctx.width[plan.build_name] = 4;
    ctx.width[plan.probe_name] = 4;
  }

  std::set<std::string> root_required;
  for (const auto& name : root.group_by) root_required.insert(name);
  for (const auto& agg : root.aggs) {
    if (agg.op != AggDef::Op::kCountStar) root_required.insert(agg.input);
  }
  Walk(*root.child, root_required, ctx);
  return decisions;
}

double JoinAdvisor::PartitionOverflowShare(uint64_t est_build_rows,
                                           uint32_t build_width,
                                           const AdvisorOptions& options) {
  const uint64_t l2 =
      options.l2_bytes > 0 ? options.l2_bytes : GetCpuInfo().l2_bytes;
  const double per_tuple = PaddedPartitionStride(build_width) + 24.0;
  const double build =
      static_cast<double>(std::max<uint64_t>(1, est_build_rows));
  return std::min(1.0, options.partition_margin * static_cast<double>(l2) /
                           (build * per_tuple));
}

double JoinAdvisor::ResolvedReplanThreshold(const AdvisorOptions& options) {
  return options.replan_qerror < 0 ? ReplanQErrorThreshold()
                                   : options.replan_qerror;
}

double JoinAdvisor::ResolvedEstimateScale(const AdvisorOptions& options) {
  return options.est_scale <= 0 ? EstimateScale() : options.est_scale;
}

JoinDecision JoinAdvisor::Decide(JoinKind kind, uint64_t est_build_rows,
                                 uint64_t build_base_rows,
                                 uint64_t est_probe_rows, uint32_t build_width,
                                 uint32_t probe_width, int probe_depth,
                                 const AdvisorOptions& options,
                                 const SkewEstimate* skew) {
  const CpuInfo& cpu = GetCpuInfo();
  const uint64_t l2 = options.l2_bytes > 0 ? options.l2_bytes : cpu.l2_bytes;
  const uint64_t llc =
      options.llc_bytes > 0 ? options.llc_bytes : cpu.llc_bytes;

  JoinDecision d;
  d.est_build_rows = est_build_rows;
  d.est_probe_rows = est_probe_rows;
  d.build_width = build_width;
  d.probe_width = probe_width;
  d.probe_depth = probe_depth;

  const double build = static_cast<double>(std::max<uint64_t>(1, est_build_rows));
  const double probe = static_cast<double>(std::max<uint64_t>(1, est_probe_rows));

  // BHJ: the chaining table holds [next][hash][matched?][row] entries plus a
  // 2x directory of 8-byte tagged slots.
  const uint32_t header = TracksBuildMatches(kind) ? 24 : 16;
  const double entry = (header + build_width + 7u) & ~7u;
  d.est_ht_bytes = static_cast<uint64_t>(build * (entry + 16.0));

  double miss = kDramMissBytes;
  if (d.est_ht_bytes <= l2) {
    miss = 0.0;
  } else if (d.est_ht_bytes <= llc) {
    miss = kLlcMissBytes;
  }
  d.cost_bhj = 2.0 * build * entry + probe * (probe_width + miss);

  // RJ: kPassFactor passes over padded [hash][row] tuples on both sides plus
  // per-partition table inserts; partitioning the probe side also breaks the
  // pipeline below it (depth penalty).
  const double sb = PaddedPartitionStride(build_width);
  const double sp = PaddedPartitionStride(probe_width);
  const double depth_penalty = 1.0 + kDepthPenalty * probe_depth;
  const double build_part_cost =
      kPassFactor * build * sb + kPartitionInsertBytes * build;
  d.cost_rj = build_part_cost + kPassFactor * probe * sp * depth_penalty;

  // BRJ: the filter prunes the probe side before it is partitioned. Under
  // FK containment the pass rate is bounded by the surviving fraction of the
  // build side's base table, plus a false-positive allowance.
  const bool bloomable = RadixJoin::BloomApplicable(kind);
  const double sigma =
      build_base_rows > 0
          ? std::min(1.0, build / static_cast<double>(build_base_rows))
          : 1.0;
  d.est_pass_rate = std::min(1.0, sigma + kBloomFpAllowance);
  d.cost_brj =
      bloomable
          ? build_part_cost + kBloomBytesPerKey * (build + probe) +
                kPassFactor * probe * d.est_pass_rate * sp * depth_penalty
          : d.cost_rj;

  // Out-of-core term. With a memory budget below the modeled build state,
  // every strategy spills the overflow to temp files (write + re-read). The
  // I/O volume is the same order for all three, but the BHJ pays an extra
  // re-pack pass over the build side — it discovers the overflow only after
  // materializing the whole table — while the radix join's pass-1
  // pre-partitions are the spill unit: eviction is one sequential write of
  // chunks it had already formed. When spilling is inevitable, partitioning
  // is the cheaper on-ramp (the NOCAP observation).
  const uint64_t budget = options.memory_budget > 0
                              ? options.memory_budget
                              : MemoryGovernor::Global().budget();
  if (budget > 0) {
    if (d.est_ht_bytes > budget) {
      const double f =
          1.0 - static_cast<double>(budget) / static_cast<double>(d.est_ht_bytes);
      d.cost_bhj += build * entry /* re-pack pass */ +
                    kSpillIoFactor * 2.0 * f * (build * sb + probe * sp);
      d.spill_expected = true;
    }
    const double part_bytes = build * sb;
    if (part_bytes > budget) {
      const double f = 1.0 - static_cast<double>(budget) / part_bytes;
      d.cost_rj += kSpillIoFactor * 2.0 * f * (build * sb + probe * sp);
      if (bloomable) {
        d.cost_brj += kSpillIoFactor * 2.0 * f *
                      (build * sb + probe * d.est_pass_rate * sp);
      } else {
        d.cost_brj = d.cost_rj;
      }
      d.spill_expected = true;
    }
  }

  // Skew term. A radix join's hottest final partition holds at least the
  // hottest key's share of the build side; when that share overflows the
  // margin-scaled L2 target the per-partition table degenerates (Table 4's
  // collapse), so RJ/BRJ pay that share of the probe side at DRAM-miss cost
  // plus a re-split pass over the oversized build fraction. Uniform inputs
  // never trip this: an even 1/P spread is below the overflow share by
  // construction of the fan-out. Any partitioned strategy that still wins is
  // armed with the runtime defense (heavy-hitter bypass + re-split).
  d.est_max_partition_share = EvenPartitionShare(est_build_rows, build_width, l2);
  if (skew != nullptr && skew->present) {
    d.skew_sampled = true;
    d.skew_sample_rows = skew->sample_rows;
    d.est_top_share = skew->top_share;
    d.est_topk_share = skew->topk_share;
    d.est_key_payload_corr = skew->key_payload_corr;
    d.est_max_partition_share =
        std::max(d.est_max_partition_share, skew->top_share);
  }
  const double overflow_share =
      PartitionOverflowShare(est_build_rows, build_width, options);
  if (d.est_max_partition_share > overflow_share) {
    d.skew_overflow = true;
    const double share = d.est_max_partition_share;
    const double skew_penalty =
        share * probe * kDramMissBytes * depth_penalty +
        share * build * (sb + kPartitionInsertBytes);
    d.cost_rj += skew_penalty;
    if (bloomable) {
      d.cost_brj += skew_penalty;
    } else {
      d.cost_brj = d.cost_rj;
    }
  }

  // Decision. Hard rule first: a build side that fits L2 never partitions
  // (the paper's headline case — 58 of 59 TPC-H joins). Suspended when the
  // budget is below even that table: the decision must weigh spill I/O.
  if (d.est_ht_bytes <= l2 && (budget == 0 || d.est_ht_bytes <= budget)) {
    d.choice = JoinStrategy::kBHJ;
    d.reason = "build fits L2";
    return d;
  }
  const double best_partitioned =
      bloomable ? std::min(d.cost_rj, d.cost_brj) : d.cost_rj;
  if (best_partitioned < options.partition_margin * d.cost_bhj) {
    if (bloomable && d.cost_brj <= d.cost_rj) {
      if (d.est_pass_rate >= kAdaptivePassRate) {
        d.choice = JoinStrategy::kBRJAdaptive;
        d.reason = d.spill_expected
                       ? "spill inevitable; partition, filter uncertain"
                       : "partitioning cheaper; filter benefit uncertain";
      } else {
        d.choice = JoinStrategy::kBRJ;
        d.reason = d.spill_expected
                       ? "spill inevitable; filter shrinks spilled probe"
                       : "filter prunes probe before partitioning";
      }
    } else {
      d.choice = JoinStrategy::kRJ;
      d.reason = d.spill_expected ? "spill inevitable; partitioned spill cheaper"
                                  : "partitioning cheaper than cache misses";
    }
  } else {
    d.choice = JoinStrategy::kBHJ;
    d.reason = d.spill_expected ? "spill inevitable; hybrid hash still cheaper"
                                : d.skew_overflow
                                      ? "skewed build; partitioning collapses"
                                      : "partitioning not worth the bandwidth";
  }
  if (d.skew_overflow && d.choice != JoinStrategy::kBHJ) {
    d.skew_defense = true;
    d.reason = "skewed build; partitioned with skew defense";
  }
  return d;
}

// --- Guarded runtime -------------------------------------------------------

AutoJoinRuntime::AutoJoinRuntime(JoinKind kind, const RowLayout* build_layout,
                                 std::vector<int> build_keys,
                                 const RowLayout* probe_layout,
                                 std::vector<int> probe_keys,
                                 JoinProjection projection,
                                 const RadixJoin::Options& radix_options,
                                 const JoinDecision& decision,
                                 double overflow_factor)
    : kind_(kind),
      decision_(decision),
      radix_strategy_(radix_options.strategy) {
  const double estimate =
      static_cast<double>(std::max<uint64_t>(1, decision.est_build_rows));
  build_limit_ = static_cast<uint64_t>(
      std::max(1.0, std::ceil(estimate * overflow_factor)));
  radix_ = std::make_unique<RadixJoin>(kind, build_layout, build_keys,
                                       probe_layout, probe_keys, projection,
                                       radix_options);
  hash_ = std::make_unique<HashJoin>(kind, build_layout, std::move(build_keys),
                                     probe_layout, std::move(probe_keys),
                                     std::move(projection));
}

void AutoJoinRuntime::set_join_id(int id) {
  radix_->set_join_id(id);
  hash_->set_join_id(id);
}

JoinMetrics AutoJoinRuntime::CollectMetrics() const {
  JoinMetrics m =
      fell_back_ ? hash_->CollectMetrics() : radix_->CollectMetrics();
  m.advisor.present = true;
  m.advisor.choice = decision_.choice;
  m.advisor.est_build_tuples = decision_.est_build_rows;
  m.advisor.est_probe_tuples = decision_.est_probe_rows;
  m.advisor.cost_bhj = decision_.cost_bhj;
  m.advisor.cost_rj = decision_.cost_rj;
  m.advisor.cost_brj = decision_.cost_brj;
  m.advisor.fell_back = overflow_demoted_;
  m.advisor.reason = decision_.reason;
  m.advisor.skew_sampled = decision_.skew_sampled;
  m.advisor.est_top_share = decision_.est_top_share;
  m.advisor.est_max_partition_share = decision_.est_max_partition_share;
  m.advisor.est_key_payload_corr = decision_.est_key_payload_corr;
  m.advisor.skew_defense = decision_.skew_defense;
  m.advisor.quality = StatsEnabled();
  m.replan = replan_;
  return m;
}

JoinAudit AutoJoinRuntime::Audit(int join_id) const {
  JoinAudit audit =
      fell_back_ ? hash_->Audit(join_id) : radix_->Audit(join_id);
  if (fell_back_) audit.strategy = JoinStrategy::kBHJ;
  return audit;
}

void AutoJoinRuntime::PrepareSpill(int num_threads, uint32_t out_stride) {
  if (!spill_.empty()) return;
  spill_.reserve(num_threads);
  // A count(*)-only query projects zero columns out of the join; the spill
  // buffers then only track row counts (RowBuffer requires stride >= 1).
  const uint32_t stride = std::max<uint32_t>(1, out_stride);
  for (int i = 0; i < num_threads; ++i) spill_.emplace_back(stride);
}

void AutoJoinRuntime::ArmReplan(double qerror_threshold,
                                const AdvisorOptions& options,
                                int feedback_begin, int feedback_end) {
  replan_qerror_ = qerror_threshold;
  replan_options_ = options;
  feedback_begin_ = feedback_begin;
  feedback_end_ = feedback_end;
}

void AutoJoinRuntime::RouteStagedToHashTable(ExecContext& exec) {
  RadixPartitioner& part = radix_->build_partitioner();
  ChainingHashTable& ht = hash_->table();
  const uint32_t row_stride = radix_->build_layout()->stride();
  part.ForEachStagedTuple([&](uint64_t hash, const std::byte* row) {
    ht.MaterializeEntry(0, hash, row, row_stride);
  });
  // FinishBuild, not a raw Build: under a memory budget the re-routed BHJ
  // must be able to go hybrid (spill partitions) like a planned BHJ would.
  hash_->FinishBuild(exec);
}

void AutoJoinRuntime::DeferDecision(ExecContext& exec,
                                    RadixBuildSink* build_sink,
                                    uint64_t staged) {
  decision_pending_ = true;
  deferred_build_sink_ = build_sink;
  staged_build_ = staged;
  // Publish this join's corrected output estimate: downstream joins in the
  // same chain resolve after us and scale their probe estimate by the same
  // ratio the build side was off by.
  ExecContext::CardFeedback fb;
  fb.est_rows = decision_.est_out_rows;
  const double ratio =
      static_cast<double>(std::max<uint64_t>(1, staged)) /
      static_cast<double>(std::max<uint64_t>(1, decision_.est_build_rows));
  fb.corrected_rows = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::llround(
             static_cast<double>(std::max<uint64_t>(
                 1, decision_.est_out_rows)) *
             ratio)));
  exec.RecordCardFeedback(join_id(), fb);
}

void AutoJoinRuntime::ResolveDeferred(ExecContext& exec) {
  if (!decision_pending_) return;
  decision_pending_ = false;
  Stopwatch watch;
  // Correct the probe estimate from the nearest upstream join that already
  // published feedback (post-order: the probe subtree's top join has the
  // highest id below ours).
  const uint64_t est_probe =
      std::max<uint64_t>(1, decision_.est_probe_rows);
  uint64_t corrected_probe = est_probe;
  for (int id = feedback_end_ - 1; id >= feedback_begin_; --id) {
    const ExecContext::CardFeedback* fb = exec.FindCardFeedback(id);
    if (fb == nullptr) continue;
    const double ratio =
        static_cast<double>(std::max<uint64_t>(1, fb->corrected_rows)) /
        static_cast<double>(std::max<uint64_t>(1, fb->est_rows));
    corrected_probe = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::llround(static_cast<double>(est_probe) * ratio)));
    break;
  }
  replan_.enabled = true;
  replan_.staged_build_tuples = staged_build_;
  replan_.corrected_probe_tuples = corrected_probe;
  replan_.qerror_build =
      EstimateQError(decision_.est_build_rows, staged_build_);
  replan_.qerror_probe =
      EstimateQError(decision_.est_probe_rows, corrected_probe);

  bool use_bhj = decision_.choice == JoinStrategy::kBHJ;
  if (std::max(replan_.qerror_build, replan_.qerror_probe) >=
      replan_qerror_) {
    // Estimate wrong: re-cost the strategy with the observed build side and
    // the corrected probe side. The skew sample survives from plan time (it
    // sampled the base column, which did not change).
    replan_.triggered = true;
    SkewEstimate skew;
    skew.present = decision_.skew_sampled;
    skew.sample_rows = decision_.skew_sample_rows;
    skew.top_share = decision_.est_top_share;
    skew.topk_share = decision_.est_topk_share;
    skew.key_payload_corr = decision_.est_key_payload_corr;
    const uint64_t base =
        std::max(decision_.est_build_base_rows, staged_build_);
    JoinDecision re = JoinAdvisor::Decide(
        kind_, staged_build_, base, corrected_probe, decision_.build_width,
        decision_.probe_width, decision_.probe_depth, replan_options_,
        skew.present ? &skew : nullptr);
    replan_.recost_bhj = re.cost_bhj;
    replan_.recost_rj = re.cost_rj;
    replan_.recost_brj = re.cost_brj;
    // The re-plan is the paper's binary question — partition or not. The
    // partitioned variant (RJ/BRJ) stays whatever the engine was built as;
    // the Bloom filter cannot be retrofitted mid-query.
    use_bhj = re.choice == JoinStrategy::kBHJ;
  } else if (!use_bhj && staged_build_ > build_limit_) {
    // Untriggered path keeps the original overflow guardrail.
    overflow_demoted_ = true;
    use_bhj = true;
  }
  replan_.switched = use_bhj != (decision_.choice == JoinStrategy::kBHJ);
  replan_.final_choice = use_bhj ? JoinStrategy::kBHJ : radix_strategy_;
  if (use_bhj) {
    fell_back_ = true;
    RouteStagedToHashTable(exec);
  } else {
    deferred_build_sink_->Finish(exec);  // Bloom sizing + Finalize
  }
  exec.timer().Add(JoinPhase::kBuildPipeline, watch.ElapsedSeconds());
}

void AutoJoinRuntime::RecordProbeFeedback(ExecContext& exec,
                                          uint64_t actual_probe) {
  if (!replan_armed()) return;
  // Refine this join's published output estimate with the observed probe
  // count (build ratio was already folded in by DeferDecision).
  const ExecContext::CardFeedback* prev = exec.FindCardFeedback(join_id());
  if (prev == nullptr || prev->exact) return;
  ExecContext::CardFeedback fb = *prev;
  const double ratio =
      static_cast<double>(std::max<uint64_t>(1, actual_probe)) /
      static_cast<double>(std::max<uint64_t>(1, decision_.est_probe_rows));
  fb.corrected_rows = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::llround(
             static_cast<double>(fb.corrected_rows) * ratio)));
  exec.RecordCardFeedback(join_id(), fb);
}

void AutoJoinRuntime::RecordOutputFeedback(ExecContext& exec,
                                           uint64_t actual_out) {
  if (!replan_armed()) return;
  ExecContext::CardFeedback fb;
  fb.est_rows = decision_.est_out_rows;
  fb.corrected_rows = actual_out;
  fb.exact = true;
  exec.RecordCardFeedback(join_id(), fb);
}

void AutoBuildSink::Prepare(ExecContext& exec) {
  radix_sink_.set_metrics(metrics_);
  radix_sink_.Prepare(exec);
}

void AutoBuildSink::Consume(Batch& batch, ThreadContext& ctx) {
  radix_sink_.Consume(batch, ctx);
}

void AutoBuildSink::Close(ThreadContext& ctx) { radix_sink_.Close(ctx); }

void AutoBuildSink::Finish(ExecContext& exec) {
  RadixPartitioner& part = rt_->radix().build_partitioner();
  const uint64_t staged = part.PendingTuples();
  if (rt_->replan_armed()) {
    // Re-planning owns the decision: leave the build staged and resolve in
    // the probe sink's Prepare, once upstream joins have reported actuals.
    rt_->DeferDecision(exec, &radix_sink_, staged);
    return;
  }
  if (staged <= rt_->build_limit()) {
    radix_sink_.Finish(exec);  // Bloom sizing + Finalize: the radix path
    return;
  }
  // Guardrail tripped: the estimate undersold the build side badly enough
  // that the partition fan-out is mis-sized. Re-route the staged tuples into
  // the non-partitioned join — the staged hashes are exactly what the
  // chaining table keys on, so no input re-read is needed.
  rt_->set_fell_back();
  Stopwatch watch;
  ChainingHashTable& ht = rt_->hash().table();
  const uint32_t row_stride = rt_->radix().build_layout()->stride();
  part.ForEachStagedTuple([&](uint64_t hash, const std::byte* row) {
    ht.MaterializeEntry(0, hash, row, row_stride);
  });
  // FinishBuild, not a raw Build: under a memory budget the fallback BHJ
  // must be able to go hybrid (spill partitions) like a planned BHJ would.
  rt_->hash().FinishBuild(exec);
  exec.timer().Add(JoinPhase::kBuildPipeline, watch.ElapsedSeconds());
}

AutoProbeSink::AutoProbeSink(AutoJoinRuntime* rt)
    : rt_(rt),
      radix_sink_(&rt->radix()),
      hash_probe_(&rt->hash()),
      spill_(rt) {}

void AutoProbeSink::Prepare(ExecContext& exec) {
  rt_->ResolveDeferred(exec);
  if (rt_->fell_back()) {
    rt_->PrepareSpill(exec.num_threads(),
                      rt_->hash().projection().output->stride());
    hash_probe_.set_metrics(metrics_);
    hash_probe_.set_next(&spill_);
    hash_probe_.Prepare(exec);
    spill_.Prepare(exec);
  } else {
    radix_sink_.set_metrics(metrics_);
    radix_sink_.Prepare(exec);
  }
}

void AutoProbeSink::Open(ThreadContext& ctx) {
  if (rt_->fell_back()) {
    hash_probe_.Open(ctx);
  } else {
    radix_sink_.Open(ctx);
  }
}

void AutoProbeSink::Consume(Batch& batch, ThreadContext& ctx) {
  if (rt_->fell_back()) {
    hash_probe_.Consume(batch, ctx);
  } else {
    radix_sink_.Consume(batch, ctx);
  }
}

void AutoProbeSink::Close(ThreadContext& ctx) {
  if (rt_->fell_back()) {
    hash_probe_.Close(ctx);
  } else {
    radix_sink_.Close(ctx);
  }
}

void AutoProbeSink::Finish(ExecContext& exec) {
  if (!rt_->fell_back()) radix_sink_.Finish(exec);
  if (metrics_ != nullptr) {
    rt_->RecordProbeFeedback(exec, metrics_->Totals().rows_in);
  }
}

void AutoProbeSink::SpillSink::Consume(Batch& batch, ThreadContext& ctx) {
  RowBuffer& buf = rt_->spill(ctx.thread_id);
  if (batch.layout->stride() == 0) {
    // Zero-width output rows: record the count, there is nothing to copy.
    for (uint32_t i = 0; i < batch.size; ++i) buf.AppendSlot();
    return;
  }
  for (uint32_t i = 0; i < batch.size; ++i) buf.Append(batch.Row(i));
}

AutoJoinSource::AutoJoinSource(AutoJoinRuntime* rt)
    : rt_(rt), partition_src_(&rt->radix()), ht_scan_(&rt->hash()) {}

void AutoJoinSource::Prepare(ExecContext& exec) {
  if (rt_->fell_back()) {
    spill_cursor_.store(0, std::memory_order_relaxed);
    if (EmitsBuildRows(rt_->kind())) {
      ht_scan_.set_metrics(metrics_);
      ht_scan_.Prepare(exec);
    }
  } else {
    partition_src_.set_metrics(metrics_);
    partition_src_.Prepare(exec);
  }
}

void AutoJoinSource::Open(ThreadContext& ctx) {
  if (!rt_->fell_back()) partition_src_.Open(ctx);
}

bool AutoJoinSource::ProduceMorsel(Operator& consumer, ThreadContext& ctx) {
  if (!rt_->fell_back()) return partition_src_.ProduceMorsel(consumer, ctx);
  const int idx = spill_cursor_.fetch_add(1, std::memory_order_relaxed);
  if (idx < rt_->num_spill_buffers()) {
    RowBuffer& buf = rt_->spill(idx);
    if (buf.size() == 0) return true;
    const RowLayout* out = rt_->radix().projection().output;
    buf.ForEachPage([&](const std::byte* rows, uint32_t count) {
      for (uint32_t off = 0; off < count; off += kBatchCapacity) {
        Batch batch;
        batch.layout = out;
        batch.rows = const_cast<std::byte*>(rows) +
                     static_cast<size_t>(off) * out->stride();
        batch.size = std::min<uint32_t>(kBatchCapacity, count - off);
        PushOut(consumer, batch, ctx);
      }
    });
    return true;
  }
  if (EmitsBuildRows(rt_->kind())) {
    return ht_scan_.ProduceMorsel(consumer, ctx);
  }
  return false;
}

void AutoJoinSource::Close(ThreadContext& ctx) {
  if (!rt_->fell_back()) partition_src_.Close(ctx);
}

void AutoJoinSource::Finish(ExecContext& exec) {
  if (metrics_ != nullptr) {
    rt_->RecordOutputFeedback(exec, metrics_->Totals().rows_out);
  }
}

}  // namespace pjoin
