// Cost-based join-strategy advisor: "to partition, or not to partition",
// answered per join at plan-lowering time (the paper's Section 5 decision,
// turned into an analytic model instead of a manual knob).
//
// For every join node the advisor scores
//   * BHJ  — materialize the build side once, probe fully pipelined; pays
//            one cache/DRAM miss per probe tuple when the table outgrows the
//            cache hierarchy,
//   * RJ   — partition both sides (bandwidth-bound multi-pass scatter) so
//            every per-partition table fits L2; pays the full partitioning
//            traffic on the probe side and breaks the probe pipeline,
//   * BRJ  — RJ plus a Bloom filter built from the build keys that prunes
//            non-joining probe tuples *before* they are partitioned,
// in a common currency (modeled bytes of memory traffic) and picks the
// cheapest, with the paper's asymmetry built in: partitioning must win by a
// clear margin before it is chosen, because the BHJ's downside is bounded
// while the RJ's is not (Section 5.2, "when in doubt, do not partition").
//
// Because estimates lie, advisor-chosen radix joins run under a runtime
// guardrail (AutoJoinRuntime): the build side is staged through the radix
// partitioner's pass 1 as usual, but if the staged tuple count overflows the
// estimate by a configurable factor, the join falls back to BHJ on the spot —
// the staged [hash][row] tuples are re-routed into the chaining hash table
// without re-reading the input, and the probe and join pipelines execute the
// non-partitioned plan. The fallback is recorded in QueryMetrics.
#ifndef PJOIN_ENGINE_ADVISOR_H_
#define PJOIN_ENGINE_ADVISOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "engine/plan.h"
#include "engine/sampler.h"
#include "exec/pipeline.h"
#include "join/hash_join.h"
#include "join/radix_join.h"
#include "storage/row_buffer.h"

namespace pjoin {

struct AdvisorOptions {
  // Cache-size overrides for the cost model; 0 = use the host's values from
  // GetCpuInfo(). Tests pin these to make decisions machine-independent.
  uint64_t l2_bytes = 0;
  uint64_t llc_bytes = 0;

  // Runtime guardrail: an advisor-chosen radix join falls back to BHJ when
  // the staged build side exceeds estimate * build_overflow_factor.
  double build_overflow_factor = 4.0;

  // A partitioned strategy is chosen only when its modeled cost is below
  // margin * cost(BHJ) — the "when in doubt, do not partition" asymmetry.
  double partition_margin = 0.9;

  // Memory budget for the I/O-aware cost term; 0 = read the process-wide
  // governor's budget (PJOIN_MEMORY_BUDGET). When the modeled build state
  // exceeds the budget the advisor adds spill I/O to each strategy — the
  // radix join spills its already-formed pass-1 partitions, while the BHJ
  // pays an extra re-pack pass on top, so inevitable spilling tilts the
  // decision toward partitioning (the NOCAP observation).
  uint64_t memory_budget = 0;

  // Build-side reservoir sample size for the skew estimate. The default
  // sentinel reads PJOIN_SKEW_SAMPLE (1024 unless overridden); 0 disables
  // the sampling pass and every skew cost term. Sampling uses a fixed seed,
  // so repeated plans of the same query decide identically.
  uint64_t skew_sample_size = UINT64_MAX;

  // Mid-query re-planning trigger. When the resolved value is > 0, every
  // advised join defers its engine choice from the build sink's Finish to
  // the probe sink's Prepare and re-costs the strategy when the observed
  // build/probe q-error meets the threshold. 0 disables (the plan-time
  // choice runs, guarded only by the overflow fallback); the default
  // sentinel (-1) reads PJOIN_REPLAN_QERROR, which defaults to 0.
  double replan_qerror = -1.0;

  // Fault injection for re-planner tests and bench/ext_misestimate:
  // multiplies every join's build-side cardinality estimate inside the
  // advisor walk, compounding up the join chain. The default sentinel
  // (<= 0) reads PJOIN_EST_SCALE, which defaults to 1 (no corruption).
  double est_scale = 0.0;
};

// One join's scored decision. Costs are modeled bytes of memory traffic.
struct JoinDecision {
  JoinStrategy choice = JoinStrategy::kBHJ;
  uint64_t est_build_rows = 0;
  uint64_t est_probe_rows = 0;
  uint32_t build_width = 0;  // materialized build row bytes
  uint32_t probe_width = 0;  // probe row bytes entering the join
  int probe_depth = 0;       // joins below the probe side (pipeline depth)
  uint64_t est_out_rows = 0;        // estimated join output (AdvisePlan only)
  uint64_t est_build_base_rows = 0; // unfiltered build base-table cardinality
  uint64_t est_ht_bytes = 0; // BHJ hash table: entries + directory
  double est_pass_rate = 1.0;  // modeled Bloom pass rate (BRJ)
  double cost_bhj = 0;
  double cost_rj = 0;
  double cost_brj = 0;
  bool spill_expected = false;  // budgeted run: some strategy must spill
  // Skew estimate (populated when a build-side sample informed the costs).
  bool skew_sampled = false;
  uint64_t skew_sample_rows = 0;
  double est_top_share = 0;        // sampled share of the hottest key
  double est_topk_share = 0;       // sampled share of the top-16 keys
  double est_key_payload_corr = 0; // |Pearson r| of (key, payload) sample
  double est_max_partition_share = 0;  // max(hottest key, even 1/P spread)
  bool skew_overflow = false;  // share overflows one margin-scaled partition
  bool skew_defense = false;   // partitioned pick runs the runtime defense
  const char* reason = "";  // static string, stable across runs
};

class JoinAdvisor {
 public:
  // Walks the plan exactly like the executor's lowering (required-column
  // propagation, build side before probe side) and scores every join.
  // Returned decisions are keyed by the executor's post-order join id, so
  // the executor and EXPLAIN resolve kAuto identically by construction.
  static std::map<int, JoinDecision> AdvisePlan(const PlanNode& root,
                                                const AdvisorOptions& options);

  // The cost model proper, exposed for decision-surface tests.
  // `build_base_rows` is the unfiltered cardinality of the build subtree's
  // base table; est_build / base bounds the Bloom filter's pass rate under
  // the FK-containment assumption. `skew`, when present, is a build-side
  // sample summary that penalizes the partitioned strategies for the share
  // their hottest partition would absorb.
  static JoinDecision Decide(JoinKind kind, uint64_t est_build_rows,
                             uint64_t build_base_rows,
                             uint64_t est_probe_rows, uint32_t build_width,
                             uint32_t probe_width, int probe_depth,
                             const AdvisorOptions& options,
                             const SkewEstimate* skew = nullptr);

  // Largest build-side share one final partition can absorb before its
  // robin-hood table overflows the margin-scaled L2 target. Shares above it
  // mark the decision skew_overflow, penalize RJ/BRJ, and arm the runtime
  // defense on any partitioned pick.
  static double PartitionOverflowShare(uint64_t est_build_rows,
                                       uint32_t build_width,
                                       const AdvisorOptions& options);

  // Resolved re-plan trigger: options.replan_qerror, or PJOIN_REPLAN_QERROR
  // when the option holds the sentinel. > 0 arms deferred re-planning.
  static double ResolvedReplanThreshold(const AdvisorOptions& options);

  // Resolved estimate-corruption factor: options.est_scale, or
  // PJOIN_EST_SCALE when the option holds the sentinel.
  static double ResolvedEstimateScale(const AdvisorOptions& options);
};

// Shared state of one advisor-chosen radix join running under the build
// guardrail. Owns both physical joins; only one of them executes the probe:
// the radix join on the happy path, the hash join after a fallback.
class AutoJoinRuntime {
 public:
  AutoJoinRuntime(JoinKind kind, const RowLayout* build_layout,
                  std::vector<int> build_keys, const RowLayout* probe_layout,
                  std::vector<int> probe_keys, JoinProjection projection,
                  const RadixJoin::Options& radix_options,
                  const JoinDecision& decision, double overflow_factor);

  JoinKind kind() const { return kind_; }
  RadixJoin& radix() { return *radix_; }
  HashJoin& hash() { return *hash_; }
  const JoinDecision& decision() const { return decision_; }

  bool fell_back() const { return fell_back_; }
  void set_fell_back() {
    fell_back_ = true;
    overflow_demoted_ = true;
  }
  uint64_t build_limit() const { return build_limit_; }

  // --- mid-query re-planning (PJOIN_REPLAN_QERROR > 0) ---------------------
  // Arms deferred resolution: the engine decision moves from the build
  // sink's Finish to the probe sink's Prepare, after every join in the probe
  // subtree (post-order ids [feedback_begin, feedback_end)) has published
  // its observed cardinality into ExecContext. The runtime then re-costs the
  // strategy with the staged build count and the feedback-corrected probe
  // estimate whenever either q-error reaches the threshold.
  void ArmReplan(double qerror_threshold, const AdvisorOptions& options,
                 int feedback_begin, int feedback_end);
  bool replan_armed() const { return replan_qerror_ > 0; }

  // Build pipeline finished with the decision still open: remember the
  // staged tuple count and the sink that can finalize the radix build, and
  // publish this join's corrected output estimate for downstream joins.
  void DeferDecision(ExecContext& exec, RadixBuildSink* build_sink,
                     uint64_t staged);

  // Resolves a deferred decision (no-op otherwise): reads upstream
  // cardinality feedback, re-costs if the q-error trigger fires, then either
  // finalizes the radix build or re-routes the staged tuples into the BHJ
  // table. Called from AutoProbeSink::Prepare — pipelines prepare and finish
  // serially, so no synchronization is needed.
  void ResolveDeferred(ExecContext& exec);

  // Feedback refinements on the resolved path (observed probe count, exact
  // join output); no-ops when re-planning is off.
  void RecordProbeFeedback(ExecContext& exec, uint64_t actual_probe);
  void RecordOutputFeedback(ExecContext& exec, uint64_t actual_out);

  const ReplanMetrics& replan() const { return replan_; }

  void set_join_id(int id);
  int join_id() const { return radix_->join_id(); }

  // Executor accounting, routed to whichever engine actually ran.
  uint64_t PartitionBytes() const {
    return fell_back_ ? 0 : radix_->PartitionBytes();
  }
  uint64_t BloomDropped() const {
    return fell_back_ ? 0 : radix_->bloom_dropped();
  }
  JoinMetrics CollectMetrics() const;
  JoinAudit Audit(int join_id) const;

  // Fallback probe output: the BHJ probe emits output-format rows into
  // per-worker buffers here; the join source replays them downstream.
  void PrepareSpill(int num_threads, uint32_t out_stride);
  RowBuffer& spill(int thread_id) { return spill_[thread_id]; }
  int num_spill_buffers() const { return static_cast<int>(spill_.size()); }

 private:
  // Re-routes the staged pass-1 tuples into the chaining hash table and
  // finishes the BHJ build (shared by the overflow guardrail and a re-plan
  // switch to BHJ).
  void RouteStagedToHashTable(ExecContext& exec);

  JoinKind kind_;
  JoinDecision decision_;
  JoinStrategy radix_strategy_;  // partitioned variant the radix engine runs
  uint64_t build_limit_;
  std::unique_ptr<RadixJoin> radix_;
  std::unique_ptr<HashJoin> hash_;
  bool fell_back_ = false;         // the hash engine executes this join
  bool overflow_demoted_ = false;  // legacy guardrail demotion (metrics flag)
  std::vector<RowBuffer> spill_;

  // Deferred-replan state.
  double replan_qerror_ = 0;  // 0 = re-planning off
  AdvisorOptions replan_options_;
  int feedback_begin_ = 0;
  int feedback_end_ = 0;
  bool decision_pending_ = false;
  uint64_t staged_build_ = 0;
  RadixBuildSink* deferred_build_sink_ = nullptr;
  ReplanMetrics replan_;
};

// Terminates the build pipeline of an advisor-chosen radix join. Stages
// tuples through the radix partitioner's pass 1; Finish applies the
// guardrail — within budget it finalizes the partitioner (normal radix
// path), on overflow it re-routes the staged tuples into the BHJ table.
class AutoBuildSink : public Operator {
 public:
  explicit AutoBuildSink(AutoJoinRuntime* rt) : rt_(rt), radix_sink_(&rt->radix()) {}

  void Prepare(ExecContext& exec) override;
  void Consume(Batch& batch, ThreadContext& ctx) override;
  void Close(ThreadContext& ctx) override;
  void Finish(ExecContext& exec) override;
  const RowLayout* OutputLayout() const override {
    return rt_->radix().build_layout();
  }

  const char* MetricsName() const override { return "auto_build"; }
  std::string MetricsDetail() const override {
    return "j" + std::to_string(rt_->join_id());
  }

 private:
  AutoJoinRuntime* rt_;
  RadixBuildSink radix_sink_;
};

// Terminates the probe pipeline: radix probe sink on the happy path, BHJ
// probe (spilling its output) after a fallback. The mode is fixed by the
// time Prepare runs, because the build pipeline finished first.
class AutoProbeSink : public Operator {
 public:
  explicit AutoProbeSink(AutoJoinRuntime* rt);

  void Prepare(ExecContext& exec) override;
  void Open(ThreadContext& ctx) override;
  void Consume(Batch& batch, ThreadContext& ctx) override;
  void Close(ThreadContext& ctx) override;
  void Finish(ExecContext& exec) override;
  const RowLayout* OutputLayout() const override {
    return rt_->radix().probe_layout();
  }

  const char* MetricsName() const override { return "auto_probe"; }
  std::string MetricsDetail() const override {
    return "j" + std::to_string(rt_->join_id());
  }

 private:
  // Fallback only: copies probe output batches into the runtime's spill.
  class SpillSink : public Operator {
   public:
    explicit SpillSink(AutoJoinRuntime* rt) : rt_(rt) {}
    void Consume(Batch& batch, ThreadContext& ctx) override;
    const RowLayout* OutputLayout() const override {
      return rt_->hash().projection().output;
    }

   private:
    AutoJoinRuntime* rt_;
  };

  AutoJoinRuntime* rt_;
  RadixProbeSink radix_sink_;
  HashJoinProbe hash_probe_;
  SpillSink spill_;
};

// Starts the join pipeline: partition-pair joining on the happy path; after
// a fallback it replays the spilled probe output and (for build-preserving
// kinds) the BHJ's post-probe hash-table scan.
class AutoJoinSource : public Source {
 public:
  explicit AutoJoinSource(AutoJoinRuntime* rt);

  void Prepare(ExecContext& exec) override;
  void Open(ThreadContext& ctx) override;
  bool ProduceMorsel(Operator& consumer, ThreadContext& ctx) override;
  void Close(ThreadContext& ctx) override;
  void Finish(ExecContext& exec) override;
  const RowLayout* OutputLayout() const override {
    return rt_->radix().projection().output;
  }

  const char* MetricsName() const override { return "auto_join"; }
  std::string MetricsDetail() const override {
    return "j" + std::to_string(rt_->join_id());
  }

 private:
  AutoJoinRuntime* rt_;
  PartitionJoinSource partition_src_;
  HashJoinBuildScanSource ht_scan_;
  std::atomic<int> spill_cursor_{0};
};

}  // namespace pjoin

#endif  // PJOIN_ENGINE_ADVISOR_H_
