#include "engine/coded_keys.h"

#include <cstring>
#include <map>
#include <set>

#include "util/check.h"

namespace pjoin {

namespace {

// Names whose plain value is read somewhere: filter inputs, map inputs,
// aggregate group keys and inputs. Scan predicates are absent on purpose —
// they evaluate against the base table inside the scan, before the field
// format is chosen. Bloom plants are absent too: both plant ends hash the
// same 4-byte build-space code field, so the filter stays consistent.
void CollectValueUses(const PlanNode& node, std::set<std::string>* out) {
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      break;
    case PlanNode::Kind::kFilter:
      for (const auto& name : node.filter.inputs) out->insert(name);
      CollectValueUses(*node.child, out);
      break;
    case PlanNode::Kind::kMap:
      for (const auto& map : node.maps) {
        for (const auto& name : map.inputs) out->insert(name);
      }
      CollectValueUses(*node.child, out);
      break;
    case PlanNode::Kind::kJoin:
      CollectValueUses(*node.build, out);
      CollectValueUses(*node.probe, out);
      break;
    case PlanNode::Kind::kAgg:
      for (const auto& name : node.group_by) out->insert(name);
      for (const auto& agg : node.aggs) {
        if (agg.op != AggDef::Op::kCountStar) out->insert(agg.input);
      }
      CollectValueUses(*node.child, out);
      break;
  }
}

// How many joins use each name as a key. A name keying two joins would need
// two code spaces at once, so only count == 1 qualifies.
void CountKeyUses(const PlanNode& node, std::map<std::string, int>* out) {
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      break;
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kMap:
    case PlanNode::Kind::kAgg:
      CountKeyUses(*node.child, out);
      break;
    case PlanNode::Kind::kJoin:
      CountKeyUses(*node.build, out);
      CountKeyUses(*node.probe, out);
      for (const auto& [b, p] : node.keys) {
        ++(*out)[b];
        ++(*out)[p];
      }
      break;
  }
}

struct Walk {
  const PlanNode* root = nullptr;
  const std::set<std::string>* value_uses = nullptr;
  const std::map<std::string, int>* key_uses = nullptr;
  std::vector<CodedKeyPlan>* out = nullptr;
  int next_join_id = 0;
};

// Post-order over joins, mirroring the executor's join numbering (build
// subtree, probe subtree, then this join).
void VisitJoins(Walk& w, const PlanNode& node) {
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      return;
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kMap:
    case PlanNode::Kind::kAgg:
      VisitJoins(w, *node.child);
      return;
    case PlanNode::Kind::kJoin:
      break;
  }
  VisitJoins(w, *node.build);
  VisitJoins(w, *node.probe);
  const int join_id = w.next_join_id++;
  for (const auto& [b, p] : node.keys) {
    if (w.value_uses->count(b) || w.value_uses->count(p)) continue;
    if (w.key_uses->at(b) != 1 || w.key_uses->at(p) != 1) continue;
    int bcol = -1, pcol = -1;
    const Table* bt = ResolveBaseColumn(*w.root, b, &bcol);
    const Table* pt = ResolveBaseColumn(*w.root, p, &pcol);
    if (bt == nullptr || pt == nullptr) continue;
    const Column& bc = bt->column(bcol);
    const Column& pc = pt->column(pcol);
    if (bc.type() != DataType::kChar || pc.type() != DataType::kChar) continue;
    if (bc.width() != pc.width()) continue;
    EncodingCatalog& catalog = EncodingCatalog::Global();
    const EncodedColumn* be = catalog.GetColumn(*bt, bcol);
    const EncodedColumn* pe = catalog.GetColumn(*pt, pcol);
    if (be == nullptr || pe == nullptr) continue;
    if (be->kind != EncodedColumn::Kind::kDict ||
        pe->kind != EncodedColumn::Kind::kDict) {
      continue;
    }
    CodedKeyPlan plan;
    plan.join_index = join_id;
    plan.build_name = b;
    plan.probe_name = p;
    plan.build_table = bt;
    plan.probe_table = pt;
    plan.build_enc = be;
    plan.probe_enc = pe;
    w.out->push_back(std::move(plan));
  }
}

}  // namespace

std::vector<CodedKeyPlan> CollectCodedJoinKeys(const PlanNode& root) {
  std::vector<CodedKeyPlan> plans;
  std::set<std::string> value_uses;
  CollectValueUses(root, &value_uses);
  std::map<std::string, int> key_uses;
  CountKeyUses(root, &key_uses);
  Walk w;
  w.root = &root;
  w.value_uses = &value_uses;
  w.key_uses = &key_uses;
  w.out = &plans;
  VisitJoins(w, root);
  return plans;
}

std::vector<uint32_t> BuildCodeRemap(const EncodedColumn& probe,
                                     const EncodedColumn& build) {
  PJOIN_CHECK(probe.kind == EncodedColumn::Kind::kDict &&
              build.kind == EncodedColumn::Kind::kDict);
  PJOIN_CHECK(probe.value_width == build.value_width);
  const uint32_t width = probe.value_width;
  std::vector<uint32_t> remap(probe.ndv, kNoCode);
  // Both dictionaries are sorted by raw byte order, so one merge suffices.
  uint64_t bi = 0;
  for (uint64_t pi = 0; pi < probe.ndv; ++pi) {
    const std::byte* pv = probe.DictValue(static_cast<uint32_t>(pi));
    while (bi < build.ndv) {
      const int cmp =
          std::memcmp(build.DictValue(static_cast<uint32_t>(bi)), pv, width);
      if (cmp < 0) {
        ++bi;
        continue;
      }
      if (cmp == 0) remap[pi] = static_cast<uint32_t>(bi);
      break;
    }
  }
  return remap;
}

}  // namespace pjoin
