// Join-on-codes planning: which join keys can probe on dictionary codes.
//
// A dictionary code is a dense stand-in for a wide CHAR key: the dictionary
// is sorted by raw byte order, so code equality on one table is exactly
// KeySpec::Equals on the plain values. Across two tables the code spaces
// differ, so the probe side carries a remap (probe code -> build code) and
// the join compares build-space codes on both sides. A key pair qualifies
// only when the swap is invisible everywhere else: both columns come
// straight off a base scan, both are dictionary-encoded CHARs of equal
// width, neither value is read by a filter, map, or aggregate, and each
// name keys exactly one join (a second join would need a second, conflicting
// code space).
#ifndef PJOIN_ENGINE_CODED_KEYS_H_
#define PJOIN_ENGINE_CODED_KEYS_H_

#include <string>
#include <vector>

#include "engine/plan.h"
#include "storage/encoded_segment.h"

namespace pjoin {

// Probe-side codes whose value is absent from the build dictionary map to
// this sentinel. It never equals a real build code (dictionaries hold at
// most 2^20 entries), so every join kind reaches the same verdict it would
// on the plain values: no match.
constexpr uint32_t kNoCode = 0xFFFFFFFFu;

struct CodedKeyPlan {
  int join_index = 0;  // post-order join id (executor/advisor numbering)
  std::string build_name;
  std::string probe_name;
  const Table* build_table = nullptr;
  const Table* probe_table = nullptr;
  const EncodedColumn* build_enc = nullptr;
  const EncodedColumn* probe_enc = nullptr;
};

// Walks the plan and returns every key pair that can join on codes, in
// join-post-order. Deterministic for a given plan and catalog state; returns
// empty when PJOIN_ENCODING=0 (the catalog answers null for every column).
std::vector<CodedKeyPlan> CollectCodedJoinKeys(const PlanNode& root);

// probe code -> build code translation table (kNoCode where the probe value
// is not in the build dictionary). One merge over the two sorted
// dictionaries.
std::vector<uint32_t> BuildCodeRemap(const EncodedColumn& probe,
                                     const EncodedColumn& build);

}  // namespace pjoin

#endif  // PJOIN_ENGINE_CODED_KEYS_H_
