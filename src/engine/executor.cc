#include "engine/executor.h"

#include <algorithm>
#include <deque>

#include "engine/coded_keys.h"
#include "filter/blocked_bloom.h"
#include "rewrite/bloom_ops.h"
#include "rewrite/rewrite.h"
#include "spill/memory_governor.h"
#include "stats/stats_catalog.h"
#include "util/check.h"
#include "util/env.h"
#include "util/stopwatch.h"

namespace pjoin {

namespace {

using ColumnRef = PlanNode::ColumnRef;

// Collects every name a subtree can produce, including the synthetic
// `<table>.#tid` tuple-id columns of its scans.
void CollectNames(const PlanNode& node, std::set<std::string>* out) {
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      for (const auto& def : node.table->schema().columns()) {
        out->insert(def.name);
      }
      out->insert(TableScanSource::TidColumnName(node.table->name()));
      break;
    case PlanNode::Kind::kFilter:
      CollectNames(*node.child, out);
      break;
    case PlanNode::Kind::kMap:
      CollectNames(*node.child, out);
      for (const auto& map : node.maps) out->insert(map.name);
      break;
    case PlanNode::Kind::kJoin:
      CollectNames(*node.build, out);
      CollectNames(*node.probe, out);
      if (node.join_kind == JoinKind::kMark) out->insert(node.mark_name);
      break;
    case PlanNode::Kind::kAgg:
      CollectNames(*node.child, out);
      break;
  }
}

// Builds the global name -> definition map.
void CollectRefs(const PlanNode& node, std::map<std::string, ColumnRef>* out) {
  switch (node.kind) {
    case PlanNode::Kind::kScan: {
      for (const auto& def : node.table->schema().columns()) {
        (*out)[def.name] =
            ColumnRef{def.name, def.type, def.width(), node.table};
      }
      std::string tid = TableScanSource::TidColumnName(node.table->name());
      (*out)[tid] = ColumnRef{tid, DataType::kInt64, 8, nullptr};
      break;
    }
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kAgg:
      CollectRefs(*node.child, out);
      break;
    case PlanNode::Kind::kMap:
      CollectRefs(*node.child, out);
      for (const auto& map : node.maps) {
        (*out)[map.name] = ColumnRef{map.name, map.type,
                                     TypeWidth(map.type, map.char_len),
                                     nullptr};
      }
      break;
    case PlanNode::Kind::kJoin:
      CollectRefs(*node.build, out);
      CollectRefs(*node.probe, out);
      if (node.join_kind == JoinKind::kMark) {
        (*out)[node.mark_name] =
            ColumnRef{node.mark_name, DataType::kInt64, 8, nullptr};
      }
      break;
  }
}

// Columns whose use forces early materialization: filter inputs, map inputs,
// and join keys. Aggregate inputs and group keys are *not* early — deferring
// them is exactly what late materialization buys.
void CollectEarlyUses(const PlanNode& node, std::set<std::string>* out) {
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      break;  // scan predicates read the base table directly
    case PlanNode::Kind::kFilter:
      for (const auto& name : node.filter.inputs) out->insert(name);
      CollectEarlyUses(*node.child, out);
      break;
    case PlanNode::Kind::kMap:
      for (const auto& map : node.maps) {
        for (const auto& name : map.inputs) out->insert(name);
      }
      CollectEarlyUses(*node.child, out);
      break;
    case PlanNode::Kind::kJoin:
      for (const auto& [b, p] : node.keys) {
        out->insert(b);
        out->insert(p);
      }
      CollectEarlyUses(*node.build, out);
      CollectEarlyUses(*node.probe, out);
      break;
    case PlanNode::Kind::kAgg:
      CollectEarlyUses(*node.child, out);
      break;
  }
}

// Copies the advisor's decision record into a join's metrics so EXPLAIN
// ANALYZE and the JSON export can show estimated vs actual.
void AttachAdvisorMetrics(JoinMetrics& m, const JoinDecision& d) {
  m.advisor.present = true;
  m.advisor.choice = d.choice;
  m.advisor.est_build_tuples = d.est_build_rows;
  m.advisor.est_probe_tuples = d.est_probe_rows;
  m.advisor.cost_bhj = d.cost_bhj;
  m.advisor.cost_rj = d.cost_rj;
  m.advisor.cost_brj = d.cost_brj;
  m.advisor.reason = d.reason;
  m.advisor.skew_sampled = d.skew_sampled;
  m.advisor.est_top_share = d.est_top_share;
  m.advisor.est_max_partition_share = d.est_max_partition_share;
  m.advisor.est_key_payload_corr = d.est_key_payload_corr;
  m.advisor.skew_defense = d.skew_defense;
  m.advisor.quality = StatsEnabled();
}

class Lowerer {
 public:
  Lowerer(const ExecOptions& options, int num_threads)
      : options_(options), num_threads_(num_threads) {}

  void LowerQuery(const PlanNode& root);
  QueryResult Run(ThreadPool& pool, QueryStats* stats);

  // Attaches the rewrite record (set only when the pass changed the plan);
  // Run() adds the runtime drop counts and publishes it to the metrics.
  void set_rewrite_info(const RewriteInfo* info) { rewrite_info_ = info; }

 private:
  struct Stream {
    Pipeline* pipeline = nullptr;
    const RowLayout* layout = nullptr;
  };

  Stream Lower(const PlanNode& node, const std::set<std::string>& required);
  Stream LowerScan(const PlanNode& node,
                   const std::set<std::string>& required);
  Stream LowerJoin(const PlanNode& node,
                   const std::set<std::string>& required);

  const RowLayout* MakeLayout(const std::vector<std::string>& names);
  const RowLayout* ExtendLayout(const RowLayout* base,
                                std::vector<RowField> extra);
  Pipeline* NewPipeline(Source* source, JoinPhase phase,
                        const std::string& label);
  void CompletePipeline(Pipeline* pipeline) { run_order_.push_back(pipeline); }

  // Splits `required` across the two join sides; aborts on unknown names.
  static std::vector<std::string> Sorted(const std::set<std::string>& s) {
    return std::vector<std::string>(s.begin(), s.end());
  }

  const ExecOptions& options_;
  int num_threads_;

  std::map<std::string, ColumnRef> refs_;
  std::set<std::string> late_columns_;
  // Join keys that travel as dictionary codes (engine/coded_keys.h): the
  // plans, the probe->build remap tables (deque: scans hold pointers into
  // them), and the per-table emit lists handed to the scans.
  std::vector<CodedKeyPlan> coded_keys_;
  std::deque<std::vector<uint32_t>> remaps_;
  std::map<const Table*, std::vector<CodedKeyEmit>> scan_coded_;
  int next_join_id_ = 0;
  std::map<int, JoinDecision> advice_;  // kAuto decisions, by join id

  // Owned plan machinery; layouts/projections must be address-stable.
  std::vector<std::unique_ptr<RowLayout>> layouts_;
  std::vector<std::unique_ptr<JoinProjection>> projections_;
  std::vector<std::unique_ptr<Source>> sources_;
  std::vector<std::unique_ptr<Operator>> operators_;
  std::vector<std::unique_ptr<HashJoin>> hash_joins_;
  std::vector<std::unique_ptr<RadixJoin>> radix_joins_;
  std::vector<std::unique_ptr<AutoJoinRuntime>> auto_joins_;
  std::vector<std::unique_ptr<Pipeline>> pipelines_;
  std::vector<Pipeline*> run_order_;
  std::vector<TableScanSource*> scans_;
  std::set<const Table*> scanned_tables_;  // for the stats metrics snapshot
  std::vector<RadixProbeSink*> radix_probe_sinks_;
  // Rewrite-planted Bloom filters, keyed by BloomPlant::id. Created when
  // the planting join's build side is lowered — always before the distant
  // probe scan, which lives in that join's probe subtree.
  std::map<int, std::unique_ptr<BlockedBloomFilter>> rewrite_blooms_;
  std::vector<BloomProbeOp*> bloom_probe_ops_;
  const RewriteInfo* rewrite_info_ = nullptr;
  std::vector<std::function<JoinAudit()>> audit_fns_;
  // Per-join observability collectors, invoked after the run (they read the
  // operator registry, so rows_out is only final once the pipelines stop).
  std::vector<std::function<JoinMetrics()>> metrics_fns_;
  HashAggOp* root_agg_ = nullptr;
};

const RowLayout* Lowerer::MakeLayout(const std::vector<std::string>& names) {
  std::vector<RowField> fields;
  fields.reserve(names.size());
  for (const auto& name : names) {
    auto it = refs_.find(name);
    PJOIN_CHECK_MSG(it != refs_.end(), name.c_str());
    fields.push_back(
        RowField{name, it->second.type, it->second.width, 0});
  }
  layouts_.push_back(std::make_unique<RowLayout>(std::move(fields)));
  return layouts_.back().get();
}

const RowLayout* Lowerer::ExtendLayout(const RowLayout* base,
                                       std::vector<RowField> extra) {
  std::vector<RowField> fields = base->fields();
  for (auto& f : extra) fields.push_back(std::move(f));
  layouts_.push_back(std::make_unique<RowLayout>(std::move(fields)));
  return layouts_.back().get();
}

Pipeline* Lowerer::NewPipeline(Source* source, JoinPhase phase,
                               const std::string& label) {
  pipelines_.push_back(std::make_unique<Pipeline>());
  Pipeline* p = pipelines_.back().get();
  p->set_source(source);
  p->timing_phase = phase;
  p->label = label;
  return p;
}

Lowerer::Stream Lowerer::LowerScan(const PlanNode& node,
                                   const std::set<std::string>& required) {
  const std::string tid_name =
      TableScanSource::TidColumnName(node.table->name());
  std::vector<std::string> names;
  for (const auto& name : Sorted(required)) {
    // Keep only names this table provides (tid included).
    if (name == tid_name || node.table->schema().Find(name) >= 0) {
      names.push_back(name);
    }
  }
  const RowLayout* layout = MakeLayout(names);
  std::vector<CodedKeyEmit> coded;
  auto coded_it = scan_coded_.find(node.table);
  if (coded_it != scan_coded_.end()) coded = coded_it->second;
  sources_.push_back(std::make_unique<TableScanSource>(
      node.table, layout, node.predicates, std::move(coded)));
  auto* scan = static_cast<TableScanSource*>(sources_.back().get());
  scans_.push_back(scan);
  scanned_tables_.insert(node.table);
  Pipeline* pipeline = NewPipeline(scan, JoinPhase::kProbePipeline,
                                   "scan " + node.table->name());
  if (!node.bloom_probes.empty()) {
    // Rewrite-planted semi-join filters: drop non-members right at the
    // scan, before any intermediate join sees the row.
    std::vector<BloomHook> hooks;
    for (const auto& plant : node.bloom_probes) {
      auto filter_it = rewrite_blooms_.find(plant.id);
      PJOIN_CHECK_MSG(filter_it != rewrite_blooms_.end(),
                      "bloom probe lowered before its build");
      hooks.push_back(BloomHook{-1, plant.probe_column,
                                filter_it->second.get()});
    }
    operators_.push_back(
        std::make_unique<BloomProbeOp>(layout, std::move(hooks)));
    auto* probe_op = static_cast<BloomProbeOp*>(operators_.back().get());
    bloom_probe_ops_.push_back(probe_op);
    pipeline->AddOperator(probe_op);
  }
  return Stream{pipeline, layout};
}

Lowerer::Stream Lowerer::LowerJoin(const PlanNode& node,
                                   const std::set<std::string>& required) {
  // Which names does each side provide?
  std::set<std::string> build_names, probe_names;
  CollectNames(*node.build, &build_names);
  CollectNames(*node.probe, &probe_names);

  std::set<std::string> build_required, probe_required;
  for (const auto& name : required) {
    if (node.join_kind == JoinKind::kMark && name == node.mark_name) continue;
    if (build_names.count(name)) {
      build_required.insert(name);
    } else if (probe_names.count(name)) {
      probe_required.insert(name);
    } else {
      PJOIN_CHECK_MSG(false, ("join cannot provide column " + name).c_str());
    }
  }
  for (const auto& [b, p] : node.keys) {
    build_required.insert(b);
    probe_required.insert(p);
  }

  Stream build = Lower(*node.build, build_required);

  // Rewrite-planted Bloom filters are populated on this build pipeline, so
  // it must run before the distant scans that consult them — and those
  // scans sit in the probe subtree, whose pipelines normally complete (and
  // therefore run) ahead of this build. Completing the build pipeline here,
  // before lowering the probe subtree, restores the ordering; the build
  // sink appended further down still joins the chain because Pipeline::Run
  // wires operators at run time.
  bool build_completed = false;
  if (!node.bloom_builds.empty()) {
    std::vector<BloomHook> hooks;
    for (const auto& plant : node.bloom_builds) {
      auto filter = std::make_unique<BlockedBloomFilter>();
      filter->Resize(node.build->EstimateRows() | 1);
      hooks.push_back(BloomHook{-1, plant.build_column, filter.get()});
      rewrite_blooms_[plant.id] = std::move(filter);
    }
    operators_.push_back(std::make_unique<BloomBuildOp>(
        build.layout, std::move(hooks), node.bloom_builds[0].source_join));
    build.pipeline->AddOperator(operators_.back().get());
    build.pipeline->timing_phase = JoinPhase::kBuildPipeline;
    CompletePipeline(build.pipeline);
    build_completed = true;
  }

  // Join ids assigned while lowering the probe subtree form the feedback
  // range a replan-armed join reads its corrected probe estimate from.
  const int probe_ids_begin = next_join_id_;
  Stream probe = Lower(*node.probe, probe_required);

  // Join id in post-order (children were lowered first) — the numbering of
  // the paper's Figure 12 per-join analysis.
  const int join_id = next_join_id_++;
  JoinStrategy strategy = options_.join_strategy;
  auto it = options_.join_overrides.find(join_id);
  if (it != options_.join_overrides.end()) strategy = it->second;

  // kAuto resolves to the advisor's per-join pick (computed in LowerQuery
  // with the same post-order numbering). Advisor-chosen radix joins run
  // guarded; advisor-chosen BHJ joins only carry the decision record.
  const JoinDecision* decision = nullptr;
  if (strategy == JoinStrategy::kAuto) {
    auto ad = advice_.find(join_id);
    PJOIN_CHECK_MSG(ad != advice_.end(), "advisor decision missing");
    decision = &ad->second;
    strategy = decision->choice;
  }

  // Output layout and projection.
  std::vector<std::string> out_names = Sorted(required);
  const RowLayout* out = MakeLayout(out_names);
  projections_.push_back(std::make_unique<JoinProjection>());
  JoinProjection* projection = projections_.back().get();
  projection->output = out;
  projection->build = build.layout;
  projection->probe = probe.layout;
  for (int f = 0; f < out->num_fields(); ++f) {
    const std::string& name = out->field(f).name;
    if (node.join_kind == JoinKind::kMark && name == node.mark_name) {
      projection->mark_field = f;
      continue;
    }
    int bf = build.layout->Find(name);
    if (bf >= 0) {
      projection->from_build.push_back({f, bf});
    } else {
      projection->from_probe.push_back({f, probe.layout->IndexOf(name)});
    }
  }

  std::vector<int> build_keys, probe_keys;
  for (const auto& [b, p] : node.keys) {
    build_keys.push_back(build.layout->IndexOf(b));
    probe_keys.push_back(probe.layout->IndexOf(p));
  }

  const bool advised = decision != nullptr;
  const JoinDecision adv = advised ? *decision : JoinDecision{};

  // Mid-query re-planning keeps every advised join on the guarded Auto
  // path — even an advised BHJ — because the staged pass-1 tuples can become
  // either engine's build when the decision resolves at probe time.
  const double replan_q =
      advised ? JoinAdvisor::ResolvedReplanThreshold(options_.advisor) : 0.0;

  if (strategy == JoinStrategy::kBHJ && replan_q <= 0) {
    hash_joins_.push_back(std::make_unique<HashJoin>(
        node.join_kind, build.layout, build_keys, probe.layout, probe_keys,
        *projection));
    HashJoin* join = hash_joins_.back().get();
    join->set_join_id(join_id);
    audit_fns_.push_back([join, join_id] { return join->Audit(join_id); });
    operators_.push_back(std::make_unique<HashJoinBuildSink>(join));
    build.pipeline->AddOperator(operators_.back().get());
    build.pipeline->timing_phase = JoinPhase::kBuildPipeline;
    if (!build_completed) CompletePipeline(build.pipeline);

    operators_.push_back(std::make_unique<HashJoinProbe>(join));
    Operator* probe_op = operators_.back().get();
    probe.pipeline->AddOperator(probe_op);
    if (!EmitsBuildRows(node.join_kind)) {
      metrics_fns_.push_back([join, probe_op, advised, adv] {
        JoinMetrics m = join->CollectMetrics();
        if (probe_op->metrics() != nullptr) {
          m.rows_out = probe_op->metrics()->Totals().rows_out;
        }
        if (advised) AttachAdvisorMetrics(m, adv);
        return m;
      });
      return Stream{probe.pipeline, out};
    }
    // Build-preserving kinds: the probe pipeline only sets flags; a scan
    // over the hash table starts the next pipeline.
    CompletePipeline(probe.pipeline);
    sources_.push_back(std::make_unique<HashJoinBuildScanSource>(join));
    Source* scan_src = sources_.back().get();
    metrics_fns_.push_back([join, probe_op, scan_src, advised, adv] {
      JoinMetrics m = join->CollectMetrics();
      // Right-outer pairs and build-only rows replay through the ht scan;
      // probe-side emission (none for these kinds) would land on the probe.
      if (probe_op->metrics() != nullptr) {
        m.rows_out += probe_op->metrics()->Totals().rows_out;
      }
      if (scan_src->metrics() != nullptr) {
        m.rows_out += scan_src->metrics()->Totals().rows_out;
      }
      if (advised) AttachAdvisorMetrics(m, adv);
      return m;
    });
    Pipeline* next = NewPipeline(scan_src, JoinPhase::kJoin,
                                 "ht scan j" + std::to_string(join_id));
    return Stream{next, out};
  }

  // Radix joins (RJ / BRJ / adaptive BRJ).
  RadixJoin::Options radix_options;
  radix_options.strategy = strategy;
  if (strategy == JoinStrategy::kBHJ) {
    // Replan-armed advised BHJ: construct the radix engine as the cheaper
    // partitioned variant in case the re-plan flips the decision (the Bloom
    // filter cannot be retrofitted after construction).
    radix_options.strategy =
        RadixJoin::BloomApplicable(node.join_kind) && adv.cost_brj < adv.cost_rj
            ? JoinStrategy::kBRJ
            : JoinStrategy::kRJ;
  }
  radix_options.expected_build_tuples =
      (advised ? adv.est_build_rows : node.build->EstimateRows()) | 1;
  radix_options.num_threads = num_threads_;
  radix_options.bits1 = options_.radix_bits1;
  radix_options.bits2 = options_.radix_bits2;
  radix_options.use_swwcb = options_.use_swwcb;
  radix_options.use_streaming = options_.use_streaming;
  // A sampled-skew overflow arms the runtime defense on the partitioned
  // pick: heavy-hitter bypass plus per-partition re-split.
  if (advised && adv.skew_defense) radix_options.skew_defense = true;

  if (advised) {
    // Advisor-chosen radix joins run under the build-overflow guardrail:
    // same pipeline shape, but the sinks/source can switch the join to the
    // BHJ engine at Finish time if the estimate undersold the build side.
    auto_joins_.push_back(std::make_unique<AutoJoinRuntime>(
        node.join_kind, build.layout, build_keys, probe.layout, probe_keys,
        *projection, radix_options, adv,
        options_.advisor.build_overflow_factor));
    AutoJoinRuntime* rt = auto_joins_.back().get();
    rt->set_join_id(join_id);
    if (replan_q > 0) {
      rt->ArmReplan(replan_q, options_.advisor, probe_ids_begin, join_id);
    }
    audit_fns_.push_back([rt, join_id] { return rt->Audit(join_id); });

    operators_.push_back(std::make_unique<AutoBuildSink>(rt));
    build.pipeline->AddOperator(operators_.back().get());
    build.pipeline->timing_phase = JoinPhase::kBuildPipeline;
    if (!build_completed) CompletePipeline(build.pipeline);

    operators_.push_back(std::make_unique<AutoProbeSink>(rt));
    probe.pipeline->AddOperator(operators_.back().get());
    probe.pipeline->timing_phase = JoinPhase::kPartitionPass1;
    CompletePipeline(probe.pipeline);

    sources_.push_back(std::make_unique<AutoJoinSource>(rt));
    Source* join_src = sources_.back().get();
    metrics_fns_.push_back([rt, join_src] {
      JoinMetrics m = rt->CollectMetrics();
      if (join_src->metrics() != nullptr) {
        m.rows_out = join_src->metrics()->Totals().rows_out;
      }
      return m;
    });
    Pipeline* next = NewPipeline(join_src, JoinPhase::kJoin,
                                 "auto join j" + std::to_string(join_id));
    return Stream{next, out};
  }

  radix_joins_.push_back(std::make_unique<RadixJoin>(
      node.join_kind, build.layout, build_keys, probe.layout, probe_keys,
      *projection, radix_options));
  RadixJoin* join = radix_joins_.back().get();
  join->set_join_id(join_id);
  audit_fns_.push_back([join, join_id] { return join->Audit(join_id); });

  operators_.push_back(std::make_unique<RadixBuildSink>(join));
  build.pipeline->AddOperator(operators_.back().get());
  build.pipeline->timing_phase = JoinPhase::kBuildPipeline;
  if (!build_completed) CompletePipeline(build.pipeline);

  operators_.push_back(std::make_unique<RadixProbeSink>(join));
  radix_probe_sinks_.push_back(
      static_cast<RadixProbeSink*>(operators_.back().get()));
  probe.pipeline->AddOperator(operators_.back().get());
  probe.pipeline->timing_phase = JoinPhase::kPartitionPass1;
  CompletePipeline(probe.pipeline);

  sources_.push_back(std::make_unique<PartitionJoinSource>(join));
  Source* join_src = sources_.back().get();
  metrics_fns_.push_back([join, join_src] {
    JoinMetrics m = join->CollectMetrics();
    if (join_src->metrics() != nullptr) {
      m.rows_out = join_src->metrics()->Totals().rows_out;
    }
    return m;
  });
  Pipeline* next = NewPipeline(join_src, JoinPhase::kJoin,
                               "radix join j" + std::to_string(join_id));
  return Stream{next, out};
}

Lowerer::Stream Lowerer::Lower(const PlanNode& node,
                               const std::set<std::string>& required) {
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      return LowerScan(node, required);
    case PlanNode::Kind::kFilter: {
      std::set<std::string> child_required = required;
      for (const auto& name : node.filter.inputs) child_required.insert(name);
      Stream s = Lower(*node.child, child_required);
      operators_.push_back(std::make_unique<FilterOp>(&node.filter, s.layout));
      s.pipeline->AddOperator(operators_.back().get());
      return s;
    }
    case PlanNode::Kind::kMap: {
      std::set<std::string> child_required;
      std::set<std::string> produced;
      for (const auto& map : node.maps) produced.insert(map.name);
      for (const auto& name : required) {
        if (!produced.count(name)) child_required.insert(name);
      }
      for (const auto& map : node.maps) {
        for (const auto& name : map.inputs) child_required.insert(name);
      }
      Stream s = Lower(*node.child, child_required);
      std::vector<RowField> extra;
      for (const auto& map : node.maps) {
        extra.push_back(RowField{map.name, map.type,
                                 TypeWidth(map.type, map.char_len), 0});
      }
      const RowLayout* out = ExtendLayout(s.layout, std::move(extra));
      operators_.push_back(
          std::make_unique<MapOp>(&node.maps, s.layout, out));
      s.pipeline->AddOperator(operators_.back().get());
      return Stream{s.pipeline, out};
    }
    case PlanNode::Kind::kJoin:
      return LowerJoin(node, required);
    case PlanNode::Kind::kAgg:
      PJOIN_CHECK_MSG(false, "aggregate must be the root");
  }
  return {};
}

void Lowerer::LowerQuery(const PlanNode& root) {
  PJOIN_CHECK(root.kind == PlanNode::Kind::kAgg);
  CollectRefs(root, &refs_);

  // Join-on-codes: qualifying CHAR key pairs travel as 4-byte dictionary
  // codes. The ref overlay makes every layout built below carry the code
  // field; the probe side additionally gets a remap into the build side's
  // code space, applied inside the scan.
  coded_keys_ = CollectCodedJoinKeys(root);
  for (const CodedKeyPlan& plan : coded_keys_) {
    refs_[plan.build_name].type = DataType::kInt32;
    refs_[plan.build_name].width = 4;
    refs_[plan.probe_name].type = DataType::kInt32;
    refs_[plan.probe_name].width = 4;
    remaps_.push_back(BuildCodeRemap(*plan.probe_enc, *plan.build_enc));
    scan_coded_[plan.build_table].push_back(
        CodedKeyEmit{plan.build_name, plan.build_enc, nullptr});
    scan_coded_[plan.probe_table].push_back(
        CodedKeyEmit{plan.probe_name, plan.probe_enc, &remaps_.back()});
  }

  bool needs_advisor = options_.join_strategy == JoinStrategy::kAuto;
  for (const auto& [id, s] : options_.join_overrides) {
    needs_advisor = needs_advisor || s == JoinStrategy::kAuto;
  }
  if (needs_advisor) {
    advice_ = JoinAdvisor::AdvisePlan(root, options_.advisor);
  }

  std::set<std::string> root_required;
  for (const auto& name : root.group_by) root_required.insert(name);
  for (const auto& agg : root.aggs) {
    if (agg.op != AggDef::Op::kCountStar) root_required.insert(agg.input);
  }

  if (options_.late_materialization) {
    late_columns_ = internal::ComputeLateColumns(root);
    // Keep only columns this query actually defers.
    for (auto it = late_columns_.begin(); it != late_columns_.end();) {
      if (!root_required.count(*it)) {
        it = late_columns_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // The pipeline carries everything required except late columns, plus the
  // tuple ids needed to fetch them afterwards.
  std::set<std::string> early_required;
  std::set<const Table*> late_tables;
  for (const auto& name : root_required) {
    if (late_columns_.count(name)) {
      late_tables.insert(refs_[name].source_table);
    } else {
      early_required.insert(name);
    }
  }
  for (const Table* table : late_tables) {
    early_required.insert(TableScanSource::TidColumnName(table->name()));
  }

  Stream s = Lower(*root.child, early_required);

  if (!late_columns_.empty()) {
    // One LateLoadOp fetches all deferred columns right before the
    // aggregation (the paper's late-load operator).
    std::vector<RowField> extra;
    std::map<const Table*, LateLoadOp::Fetch> fetches;
    int next_field = s.layout->num_fields();
    for (const auto& name : Sorted(late_columns_)) {
      const ColumnRef& ref = refs_[name];
      extra.push_back(RowField{name, ref.type, ref.width, 0});
      LateLoadOp::Fetch& fetch = fetches[ref.source_table];
      fetch.table = ref.source_table;
      fetch.table_cols.push_back(ref.source_table->schema().IndexOf(name));
      fetch.out_fields.push_back(next_field++);
    }
    const RowLayout* out = ExtendLayout(s.layout, std::move(extra));
    std::vector<LateLoadOp::Fetch> fetch_list;
    for (auto& [table, fetch] : fetches) {
      fetch.tid_field =
          s.layout->IndexOf(TableScanSource::TidColumnName(table->name()));
      fetch_list.push_back(std::move(fetch));
    }
    operators_.push_back(
        std::make_unique<LateLoadOp>(std::move(fetch_list), s.layout, out));
    s.pipeline->AddOperator(operators_.back().get());
    s.layout = out;
  }

  operators_.push_back(
      std::make_unique<HashAggOp>(s.layout, root.group_by, root.aggs));
  root_agg_ = static_cast<HashAggOp*>(operators_.back().get());
  s.pipeline->AddOperator(root_agg_);
  CompletePipeline(s.pipeline);
}

QueryResult Lowerer::Run(ThreadPool& pool, QueryStats* stats) {
  ExecContext exec(&pool);
  Stopwatch watch;
  for (Pipeline* pipeline : run_order_) {
    pipeline->Run(exec);
  }
  double seconds = watch.ElapsedSeconds();

  // Final observability snapshot: scan actuals in lowering order (the
  // traversal EXPLAIN ANALYZE replays), join records in post-order.
  QueryMetrics& qm = exec.metrics();
  for (TableScanSource* scan : scans_) {
    ScanMetrics sm;
    sm.table = scan->MetricsDetail();
    sm.rows_scanned = scan->rows_scanned();
    sm.rows_passed = scan->rows_passed();
    sm.encoded = scan->encoded();
    sm.enc_read_width = scan->enc_read_width();
    sm.plain_read_width = scan->plain_read_width();
    sm.values_decoded = scan->values_decoded();
    sm.codes_emitted = scan->codes_emitted();
    qm.AddScan(std::move(sm));
  }
  for (const auto& fn : metrics_fns_) {
    JoinMetrics m = fn();
    for (const CodedKeyPlan& plan : coded_keys_) {
      if (plan.join_index == m.join_id) ++m.coded_key_pairs;
    }
    qm.AddJoin(std::move(m));
  }
  qm.SetSummary(seconds, exec.source_tuples(), root_agg_->result().num_rows(),
                exec.timer(), exec.MergedBytes());
  {
    const MemoryGovernor& gov = MemoryGovernor::Global();
    qm.SetGovernor(gov.budget(), gov.high_water(), gov.denials());
  }
  qm.SetSimdTier(SimdTierName(ActiveSimdTier()));
  if (rewrite_info_ != nullptr && rewrite_info_->changed) {
    uint64_t planted_dropped = 0;
    for (const BloomProbeOp* op : bloom_probe_ops_) {
      planted_dropped += op->dropped();
    }
    qm.SetRewrite(rewrite_info_->RulesLine(), rewrite_info_->order,
                  rewrite_info_->filters_pulled,
                  rewrite_info_->filters_pushed,
                  rewrite_info_->joins_reordered,
                  rewrite_info_->blooms_planted, planted_dropped);
  }
  if (StatsEnabled()) {
    uint64_t stat_tables = 0;
    uint64_t stat_columns = 0;
    for (const Table* table : scanned_tables_) {
      const TableStats* ts = StatsCatalog::Global().Get(*table);
      if (ts == nullptr) continue;
      ++stat_tables;
      for (const ColumnStats& cs : ts->columns) {
        if (cs.distinct > 0 || cs.histogram.valid()) ++stat_columns;
      }
    }
    qm.SetStats(stat_tables, stat_columns, StatsBuckets());
  }
  {
    // Encoded-execution rollup, emitted only when encoding engaged somewhere
    // (an encoded scan, a coded join key, or a compressed spill), so plain
    // runs keep byte-identical JSON.
    uint64_t scans_encoded = 0, values_decoded = 0, codes_emitted = 0;
    uint64_t scan_read_bytes = 0, plain_read_bytes = 0;
    for (TableScanSource* scan : scans_) {
      if (!scan->encoded()) continue;
      ++scans_encoded;
      values_decoded += scan->values_decoded();
      codes_emitted += scan->codes_emitted();
      scan_read_bytes += scan->rows_scanned() * scan->enc_read_width();
      plain_read_bytes += scan->rows_scanned() * scan->plain_read_width();
    }
    uint64_t spill_logical = 0, spill_physical = 0;
    bool spill_compressed = false;
    for (const JoinMetrics& j : qm.joins()) {
      if (j.spill.spilled && j.spill.compressed) {
        spill_compressed = true;
        spill_logical += j.spill.bytes_written;
        spill_physical += j.spill.physical_bytes_written;
      }
    }
    if (scans_encoded > 0 || !coded_keys_.empty() || spill_compressed) {
      qm.SetEncoding(scans_encoded, coded_keys_.size(), values_decoded,
                     codes_emitted, scan_read_bytes, plain_read_bytes,
                     spill_logical, spill_physical);
    }
  }

  if (stats != nullptr) {
    stats->metrics = qm;
    stats->seconds = seconds;
    stats->source_tuples = exec.source_tuples();
    stats->result_rows = root_agg_->result().num_rows();
    stats->phase_timer = exec.timer();
    stats->bytes = exec.MergedBytes();
    stats->bloom_dropped = 0;
    for (RadixProbeSink* sink : radix_probe_sinks_) {
      stats->bloom_dropped += sink->tuples_dropped_by_filter();
    }
    stats->partition_bytes = 0;
    for (const auto& join : radix_joins_) {
      stats->partition_bytes += join->PartitionBytes();
    }
    for (const auto& rt : auto_joins_) {
      stats->bloom_dropped += rt->BloomDropped();
      stats->partition_bytes += rt->PartitionBytes();
    }
    stats->join_audits.clear();
    for (const auto& fn : audit_fns_) stats->join_audits.push_back(fn());
    std::sort(stats->join_audits.begin(), stats->join_audits.end(),
              [](const JoinAudit& a, const JoinAudit& b) {
                return a.join_id < b.join_id;
              });
  }
  return root_agg_->result();
}

}  // namespace

namespace internal {

std::set<std::string> ComputeLateColumns(const PlanNode& root) {
  PJOIN_CHECK(root.kind == PlanNode::Kind::kAgg);
  std::map<std::string, ColumnRef> refs;
  CollectRefs(root, &refs);
  std::set<std::string> early;
  CollectEarlyUses(root, &early);

  std::set<std::string> root_required;
  for (const auto& name : root.group_by) root_required.insert(name);
  for (const auto& agg : root.aggs) {
    if (agg.op != AggDef::Op::kCountStar) root_required.insert(agg.input);
  }

  std::set<std::string> late;
  for (const auto& name : root_required) {
    if (early.count(name)) continue;
    auto it = refs.find(name);
    if (it == refs.end()) continue;
    if (it->second.source_table == nullptr) continue;  // computed or mark
    if (name.find(".#tid") != std::string::npos) continue;
    late.insert(name);
  }
  return late;
}

}  // namespace internal

QueryResult ExecuteQuery(const PlanNode& root, const ExecOptions& options,
                         QueryStats* stats, ThreadPool* pool) {
  int threads = options.num_threads > 0 ? options.num_threads
                                        : DefaultThreads();
  std::unique_ptr<ThreadPool> owned;
  if (pool == nullptr) {
    owned = std::make_unique<ThreadPool>(threads);
    pool = owned.get();
  } else {
    threads = pool->num_threads();
  }
  // The rewrite pass runs between plan construction and lowering. When it
  // declines every rule (or is disabled) the original tree lowers as
  // written, keeping pre-rewrite behavior byte-identical.
  RewriteResult rewrite = RewritePlan(root, options.rewrite);
  const PlanNode& exec_root =
      rewrite.plan != nullptr ? *rewrite.plan : root;
  Lowerer lowerer(options, threads);
  if (rewrite.plan != nullptr) lowerer.set_rewrite_info(&rewrite.info);
  lowerer.LowerQuery(exec_root);
  return lowerer.Run(*pool, stats);
}

}  // namespace pjoin
