// Query executor: lowers a logical plan to pipelines for a chosen join
// strategy (Section 5.1.1: every join in the tree is replaced by the join
// under testing) and materialization strategy, then runs them.
#ifndef PJOIN_ENGINE_EXECUTOR_H_
#define PJOIN_ENGINE_EXECUTOR_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "engine/advisor.h"
#include "engine/plan.h"
#include "engine/scan.h"
#include "engine/value.h"
#include "exec/pipeline.h"
#include "join/hash_join.h"
#include "join/radix_join.h"
#include "rewrite/rewrite.h"
#include "util/byte_counter.h"

namespace pjoin {

struct ExecOptions {
  JoinStrategy join_strategy = JoinStrategy::kBHJ;
  bool late_materialization = false;
  int num_threads = 0;  // 0 = PJOIN_THREADS / hardware concurrency

  // Ablation overrides for the radix joins (negative = automatic).
  int radix_bits1 = -1;
  int radix_bits2 = -1;
  bool use_swwcb = true;
  bool use_streaming = true;

  // Per-join strategy override: joins are numbered in post-order (the
  // numbering of Figure 12); entries override the global strategy.
  std::map<int, JoinStrategy> join_overrides;

  // Cost-model knobs for JoinStrategy::kAuto (cache sizes, fallback factor).
  AdvisorOptions advisor;

  // Algebraic rewrite pass applied before lowering (PJOIN_REWRITE, default
  // on). The executor and EXPLAIN resolve the same options, so the rendered
  // plan always matches the executed one. join_overrides keep their
  // post-order ids on the *rewritten* tree; hand-tuned override maps should
  // set `rewrite.enabled = 0` to pin the written plan shape.
  RewriteOptions rewrite;
};

struct QueryStats {
  double seconds = 0;
  uint64_t source_tuples = 0;  // rows read by all table scans
  uint64_t result_rows = 0;
  PhaseTimer phase_timer;
  ByteCounter bytes;
  uint64_t bloom_dropped = 0;      // probe tuples pruned by BRJ filters
  uint64_t partition_bytes = 0;    // final partition storage of all RJs
  std::vector<JoinAudit> join_audits;  // per join, post-order

  // Full observability snapshot: per-pipeline/operator/join actuals, the
  // input to ExplainAnalyzePlan and QueryMetrics::ToJson.
  QueryMetrics metrics;

  // The paper's TPC-H metric: processed tuples per second, tuples = sum of
  // pipeline-source counts (Section 5.3, footnote 5).
  double Throughput() const {
    return seconds > 0 ? (source_tuples + result_rows) / seconds : 0;
  }
};

// Executes `root` (which must be an Aggregate node) and returns its result.
// A caller-provided pool avoids re-spawning threads across benchmark
// repetitions; pass nullptr to create one per call.
QueryResult ExecuteQuery(const PlanNode& root, const ExecOptions& options,
                         QueryStats* stats = nullptr,
                         ThreadPool* pool = nullptr);

namespace internal {

// Exposed for tests: which base columns does late materialization defer?
std::set<std::string> ComputeLateColumns(const PlanNode& root);

}  // namespace internal

}  // namespace pjoin

#endif  // PJOIN_ENGINE_EXECUTOR_H_
