#include "engine/explain.h"

#include <map>
#include <sstream>

namespace pjoin {

namespace {

const char* PredicateOpName(ScanPredicate::Op op) {
  switch (op) {
    case ScanPredicate::Op::kEq: return "=";
    case ScanPredicate::Op::kNe: return "<>";
    case ScanPredicate::Op::kLt: return "<";
    case ScanPredicate::Op::kLe: return "<=";
    case ScanPredicate::Op::kGt: return ">";
    case ScanPredicate::Op::kGe: return ">=";
    case ScanPredicate::Op::kBetween: return "between";
    case ScanPredicate::Op::kInSet: return "in";
    case ScanPredicate::Op::kStrEq: return "=";
    case ScanPredicate::Op::kStrNe: return "<>";
    case ScanPredicate::Op::kStrPrefix: return "like 'x%'";
    case ScanPredicate::Op::kStrSuffix: return "like '%x'";
    case ScanPredicate::Op::kStrContains: return "like '%x%'";
    case ScanPredicate::Op::kStrNotContains: return "not like '%x%'";
    case ScanPredicate::Op::kStrIn: return "in";
    case ScanPredicate::Op::kColLt: return "< col";
    case ScanPredicate::Op::kColNe: return "<> col";
  }
  return "?";
}

// Assigns each join node its executor id: post-order, build side first —
// the numbering of Figure 12 and of ExecOptions::join_overrides.
void NumberJoins(const PlanNode& node, std::map<const PlanNode*, int>* ids,
                 int* next) {
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      return;
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kMap:
    case PlanNode::Kind::kAgg:
      NumberJoins(*node.child, ids, next);
      return;
    case PlanNode::Kind::kJoin:
      NumberJoins(*node.build, ids, next);
      NumberJoins(*node.probe, ids, next);
      (*ids)[&node] = (*next)++;
      return;
  }
}

void Render(const PlanNode& node, const ExecOptions& options,
            const std::map<const PlanNode*, int>& ids, int depth,
            std::ostringstream* out) {
  auto indent = [&] {
    for (int i = 0; i < depth; ++i) *out << "  ";
  };
  switch (node.kind) {
    case PlanNode::Kind::kAgg:
      indent();
      *out << "aggregate [groups:" << node.group_by.size()
           << " aggs:" << node.aggs.size() << "]\n";
      Render(*node.child, options, ids, depth + 1, out);
      break;
    case PlanNode::Kind::kJoin: {
      const int id = ids.at(&node);
      JoinStrategy strategy = options.join_strategy;
      auto it = options.join_overrides.find(id);
      if (it != options.join_overrides.end()) strategy = it->second;
      indent();
      *out << "join #" << id << " [" << JoinKindName(node.join_kind) << ", "
           << JoinStrategyName(strategy) << "] on ";
      for (size_t k = 0; k < node.keys.size(); ++k) {
        if (k > 0) *out << ", ";
        *out << node.keys[k].first << " = " << node.keys[k].second;
      }
      *out << "\n";
      Render(*node.build, options, ids, depth + 1, out);
      Render(*node.probe, options, ids, depth + 1, out);
      break;
    }
    case PlanNode::Kind::kFilter:
      indent();
      *out << "filter ["
           << (node.filter.label.empty() ? "lambda" : node.filter.label)
           << "]\n";
      Render(*node.child, options, ids, depth + 1, out);
      break;
    case PlanNode::Kind::kMap: {
      indent();
      *out << "map [";
      for (size_t m = 0; m < node.maps.size(); ++m) {
        if (m > 0) *out << ", ";
        *out << node.maps[m].name;
      }
      *out << "]\n";
      Render(*node.child, options, ids, depth + 1, out);
      break;
    }
    case PlanNode::Kind::kScan: {
      indent();
      *out << "scan " << node.table->name() << " [" << node.table->num_rows()
           << " rows";
      for (const auto& pred : node.predicates) {
        *out << ", " << pred.column << " " << PredicateOpName(pred.op);
      }
      *out << "]\n";
      break;
    }
  }
}

}  // namespace

std::string ExplainPlan(const PlanNode& root, const ExecOptions& options) {
  std::map<const PlanNode*, int> ids;
  int next = 0;
  NumberJoins(root, &ids, &next);
  std::ostringstream out;
  Render(root, options, ids, 0, &out);
  return out.str();
}

}  // namespace pjoin
