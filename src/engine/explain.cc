#include "engine/explain.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>

#include "engine/advisor.h"

namespace pjoin {

namespace {

std::string Fixed(double v, int digits = 3) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string HumanBytes(uint64_t bytes) {
  if (bytes >= (uint64_t{1} << 20)) {
    return Fixed(static_cast<double>(bytes) / (1 << 20), 1) + "MiB";
  }
  if (bytes >= (uint64_t{1} << 10)) {
    return Fixed(static_cast<double>(bytes) / (1 << 10), 1) + "KiB";
  }
  return std::to_string(bytes) + "B";
}

const char* PredicateOpName(ScanPredicate::Op op) {
  switch (op) {
    case ScanPredicate::Op::kEq: return "=";
    case ScanPredicate::Op::kNe: return "<>";
    case ScanPredicate::Op::kLt: return "<";
    case ScanPredicate::Op::kLe: return "<=";
    case ScanPredicate::Op::kGt: return ">";
    case ScanPredicate::Op::kGe: return ">=";
    case ScanPredicate::Op::kBetween: return "between";
    case ScanPredicate::Op::kInSet: return "in";
    case ScanPredicate::Op::kStrEq: return "=";
    case ScanPredicate::Op::kStrNe: return "<>";
    case ScanPredicate::Op::kStrPrefix: return "like 'x%'";
    case ScanPredicate::Op::kStrSuffix: return "like '%x'";
    case ScanPredicate::Op::kStrContains: return "like '%x%'";
    case ScanPredicate::Op::kStrNotContains: return "not like '%x%'";
    case ScanPredicate::Op::kStrIn: return "in";
    case ScanPredicate::Op::kColLt: return "< col";
    case ScanPredicate::Op::kColNe: return "<> col";
  }
  return "?";
}

// Assigns each join node its executor id: post-order, build side first —
// the numbering of Figure 12 and of ExecOptions::join_overrides.
void NumberJoins(const PlanNode& node, std::map<const PlanNode*, int>* ids,
                 int* next) {
  switch (node.kind) {
    case PlanNode::Kind::kScan:
      return;
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kMap:
    case PlanNode::Kind::kAgg:
      NumberJoins(*node.child, ids, next);
      return;
    case PlanNode::Kind::kJoin:
      NumberJoins(*node.build, ids, next);
      NumberJoins(*node.probe, ids, next);
      (*ids)[&node] = (*next)++;
      return;
  }
}

// kAuto resolution for EXPLAIN: the advisor walks the plan in the same
// post-order as NumberJoins and the executor, so looking decisions up by id
// is exact — EXPLAIN shows precisely what the executor would run.
bool UsesAuto(const ExecOptions& options) {
  if (options.join_strategy == JoinStrategy::kAuto) return true;
  for (const auto& entry : options.join_overrides) {
    if (entry.second == JoinStrategy::kAuto) return true;
  }
  return false;
}

std::string AutoLabel(const JoinDecision& d) {
  return std::string("auto:") + JoinStrategyName(d.choice);
}

// The advisor sub-line: estimates, layout widths, modeled costs (rounded to
// whole bytes so the line is stable across runs), and the decision reason.
void RenderAdvisorLine(const JoinDecision& d, int depth, bool fell_back,
                       const JoinMetrics* jm, std::ostringstream* out) {
  for (int i = 0; i < depth + 1; ++i) *out << "  ";
  *out << "advisor: est_build=" << d.est_build_rows
       << " est_probe=" << d.est_probe_rows << " widths=" << d.build_width
       << "B/" << d.probe_width << "B depth=" << d.probe_depth
       << " ht=" << HumanBytes(d.est_ht_bytes)
       << " cost[bhj=" << static_cast<uint64_t>(std::llround(d.cost_bhj))
       << " rj=" << static_cast<uint64_t>(std::llround(d.cost_rj))
       << " brj=" << static_cast<uint64_t>(std::llround(d.cost_brj))
       << "] -- " << d.reason;
  if (jm != nullptr && jm->advisor.quality) {
    // Estimate quality against the observed counts (stats subsystem on).
    const double qb = EstimateQError(d.est_build_rows, jm->build_tuples);
    const double qp = EstimateQError(d.est_probe_rows, jm->probe_tuples);
    *out << " qerr[build=" << Fixed(qb, 3) << " probe=" << Fixed(qp, 3)
         << "]";
    if (qb >= kMispredictQError || qp >= kMispredictQError) {
      *out << " MISPREDICT";
    }
  }
  if (fell_back) *out << " [fell back to BHJ: build overflowed estimate]";
  *out << "\n";
  if (d.skew_sampled) {
    for (int i = 0; i < depth + 1; ++i) *out << "  ";
    *out << "skew: sample=" << d.skew_sample_rows
         << " top_share=" << Fixed(d.est_top_share, 3)
         << " topk_share=" << Fixed(d.est_topk_share, 3)
         << " max_part_share=" << Fixed(d.est_max_partition_share, 3)
         << " corr=" << Fixed(d.est_key_payload_corr, 3)
         << " defense=" << (d.skew_defense ? "on" : "off") << "\n";
  }
}

void Render(const PlanNode& node, const ExecOptions& options,
            const std::map<const PlanNode*, int>& ids,
            const std::map<int, JoinDecision>& advice, int depth,
            std::ostringstream* out) {
  auto indent = [&] {
    for (int i = 0; i < depth; ++i) *out << "  ";
  };
  switch (node.kind) {
    case PlanNode::Kind::kAgg:
      indent();
      *out << "aggregate [groups:" << node.group_by.size()
           << " aggs:" << node.aggs.size() << "]\n";
      Render(*node.child, options, ids, advice, depth + 1, out);
      break;
    case PlanNode::Kind::kJoin: {
      const int id = ids.at(&node);
      JoinStrategy strategy = options.join_strategy;
      auto it = options.join_overrides.find(id);
      if (it != options.join_overrides.end()) strategy = it->second;
      const JoinDecision* adv = nullptr;
      if (strategy == JoinStrategy::kAuto) {
        auto ad = advice.find(id);
        if (ad != advice.end()) adv = &ad->second;
      }
      indent();
      *out << "join #" << id << " [" << JoinKindName(node.join_kind) << ", "
           << (adv != nullptr ? AutoLabel(*adv)
                              : std::string(JoinStrategyName(strategy)))
           << "] on ";
      for (size_t k = 0; k < node.keys.size(); ++k) {
        if (k > 0) *out << ", ";
        *out << node.keys[k].first << " = " << node.keys[k].second;
      }
      *out << "\n";
      if (adv != nullptr) {
        RenderAdvisorLine(*adv, depth, /*fell_back=*/false, /*jm=*/nullptr,
                          out);
      }
      Render(*node.build, options, ids, advice, depth + 1, out);
      Render(*node.probe, options, ids, advice, depth + 1, out);
      break;
    }
    case PlanNode::Kind::kFilter:
      indent();
      *out << "filter ["
           << (node.filter.label.empty() ? "lambda" : node.filter.label)
           << "]\n";
      Render(*node.child, options, ids, advice, depth + 1, out);
      break;
    case PlanNode::Kind::kMap: {
      indent();
      *out << "map [";
      for (size_t m = 0; m < node.maps.size(); ++m) {
        if (m > 0) *out << ", ";
        *out << node.maps[m].name;
      }
      *out << "]\n";
      Render(*node.child, options, ids, advice, depth + 1, out);
      break;
    }
    case PlanNode::Kind::kScan: {
      indent();
      *out << "scan " << node.table->name() << " [" << node.table->num_rows()
           << " rows";
      for (const auto& pred : node.predicates) {
        *out << ", " << pred.column << " " << PredicateOpName(pred.op);
      }
      for (const auto& plant : node.bloom_probes) {
        *out << ", bloom(j" << plant.source_join << "."
             << plant.probe_column << ")";
      }
      *out << "]\n";
      break;
    }
  }
}

// EXPLAIN ANALYZE rendering. Scans are matched positionally: the executor
// records ScanMetrics in lowering order (build side before probe side),
// which is exactly the traversal order below; joins are matched robustly by
// their post-order id.
struct AnalyzeState {
  const QueryMetrics* metrics = nullptr;
  size_t scan_cursor = 0;
  // Occurrence cursor per (operator name, detail), for filter/map matching.
  std::map<std::pair<std::string, std::string>, size_t> op_cursor;
};

// Nth registered operator with the given identity, or null.
const OperatorMetrics* FindOperator(const QueryMetrics& metrics,
                                    const std::string& name,
                                    const std::string& detail, size_t nth) {
  size_t seen = 0;
  for (const OperatorMetrics& op : metrics.operators()) {
    if (op.name() == name && op.detail() == detail) {
      if (seen == nth) return &op;
      ++seen;
    }
  }
  return nullptr;
}

void RenderAnalyze(const PlanNode& node, const ExecOptions& options,
                   const std::map<const PlanNode*, int>& ids,
                   const std::map<int, JoinDecision>& advice,
                   AnalyzeState* state, int depth, std::ostringstream* out) {
  const QueryMetrics& qm = *state->metrics;
  auto indent = [&](int extra = 0) {
    for (int i = 0; i < depth + extra; ++i) *out << "  ";
  };
  switch (node.kind) {
    case PlanNode::Kind::kAgg: {
      indent();
      *out << "aggregate [groups:" << node.group_by.size()
           << " aggs:" << node.aggs.size() << "]";
      OperatorTotals t = qm.TotalsFor("hash_agg");
      *out << " (rows_in=" << t.rows_in << " rows_out=" << qm.result_rows()
           << ")\n";
      RenderAnalyze(*node.child, options, ids, advice, state, depth + 1, out);
      break;
    }
    case PlanNode::Kind::kJoin: {
      const int id = ids.at(&node);
      JoinStrategy strategy = options.join_strategy;
      auto it = options.join_overrides.find(id);
      if (it != options.join_overrides.end()) strategy = it->second;
      const JoinDecision* adv = nullptr;
      if (strategy == JoinStrategy::kAuto) {
        auto ad = advice.find(id);
        if (ad != advice.end()) adv = &ad->second;
      }
      indent();
      *out << "join #" << id << " [" << JoinKindName(node.join_kind) << ", "
           << (adv != nullptr ? AutoLabel(*adv)
                              : std::string(JoinStrategyName(strategy)))
           << "] on ";
      for (size_t k = 0; k < node.keys.size(); ++k) {
        if (k > 0) *out << ", ";
        *out << node.keys[k].first << " = " << node.keys[k].second;
      }
      const JoinMetrics* jm = qm.FindJoin(id);
      if (jm != nullptr) {
        *out << " (build=" << jm->build_tuples
             << " probe=" << jm->probe_tuples
             << " matched=" << jm->probe_matched
             << " rows_out=" << jm->rows_out;
        if (jm->coded_key_pairs > 0) {
          *out << " coded_keys=" << jm->coded_key_pairs;
        }
        *out << ")";
      }
      *out << "\n";
      if (adv != nullptr) {
        // Estimated vs actual rows sit on adjacent lines so mispredictions
        // are visible; a triggered guardrail is flagged inline.
        const bool fell_back =
            jm != nullptr && jm->advisor.present && jm->advisor.fell_back;
        RenderAdvisorLine(*adv, depth, fell_back, jm, out);
      }
      if (jm != nullptr && jm->replan.enabled) {
        const ReplanMetrics& r = jm->replan;
        indent(1);
        // Deliberately avoids the phrase "fell back": a replan switch is a
        // re-costed decision, not the overflow guardrail tripping.
        *out << "replan: plan=" << JoinStrategyName(jm->advisor.choice)
             << " final=" << JoinStrategyName(r.final_choice)
             << " qerr_build=" << Fixed(r.qerror_build, 3)
             << " qerr_probe=" << Fixed(r.qerror_probe, 3)
             << " staged=" << r.staged_build_tuples
             << " probe_corrected=" << r.corrected_probe_tuples;
        if (r.triggered) {
          *out << " (triggered"
               << (r.switched ? ", switched)" : ", confirmed)");
        } else {
          *out << " (not triggered)";
        }
        *out << "\n";
      }
      if (jm != nullptr && jm->has_hash_table) {
        const HashTableMetrics& ht = jm->hash_table;
        indent(1);
        *out << "ht: entries=" << ht.build_tuples
             << " dir_slots=" << ht.directory_slots
             << " chained=" << ht.chained_entries
             << " max_chain=" << ht.max_chain << " resizes=" << ht.resizes
             << " mem=" << HumanBytes(ht.directory_bytes +
                                      ht.materialized_bytes)
             << "\n";
      }
      if (jm != nullptr && jm->has_partitions) {
        const PartitionerMetrics& b = jm->build_side;
        const PartitionerMetrics& p = jm->probe_side;
        indent(1);
        *out << "radix: " << b.num_partitions << " partitions (" << b.bits1
             << "+" << b.bits2 << " bits)"
             << " build_part=" << b.tuples << " probe_part=" << p.tuples
             << " swwcb_flushes=" << (b.swwcb_flushes + p.swwcb_flushes)
             << " streamed=" << HumanBytes(b.streamed_bytes + p.streamed_bytes)
             << " mem=" << HumanBytes(b.output_bytes + p.output_bytes)
             << " ht_grows=" << jm->partition_ht_grows
             << " ht_peak=" << HumanBytes(jm->partition_ht_peak_bytes)
             << "\n";
      }
      if (jm != nullptr && jm->bloom.probes > 0) {
        const BloomMetrics& bl = jm->bloom;
        indent(1);
        *out << "bloom: size=" << HumanBytes(bl.size_bytes)
             << " probes=" << bl.probes << " negatives=" << bl.negatives
             << " pass_rate=" << Fixed(bl.pass_rate(), 3);
        if (bl.adaptive) {
          *out << " adaptive=" << (bl.enabled_at_end ? "kept" : "disabled")
               << " samples=" << bl.adaptive_samples;
        }
        *out << "\n";
      }
      if (jm != nullptr && jm->skew.enabled) {
        const SkewDefenseMetrics& sk = jm->skew;
        indent(1);
        *out << "skew_defense: heavy=" << sk.heavy_hitters
             << " bypass_build=" << sk.bypass_build_tuples
             << " bypass_probe=" << sk.bypass_probe_tuples
             << " resplit=" << sk.partitions_resplit
             << " dense=" << sk.dense_fallbacks << "\n";
      }
      if (jm != nullptr && jm->spill.spilled) {
        const SpillMetrics& sp = jm->spill;
        indent(1);
        *out << "spill: partitions=" << sp.partitions_spilled << "/"
             << sp.partitions_total
             << " build_tuples=" << sp.build_tuples_spilled
             << " probe_tuples=" << sp.probe_tuples_spilled
             << " written=" << HumanBytes(sp.bytes_written)
             << " read=" << HumanBytes(sp.bytes_read)
             << " depth=" << sp.max_recursion_depth;
        if (sp.compressed) {
          *out << " physical_written=" << HumanBytes(sp.physical_bytes_written)
               << " physical_read=" << HumanBytes(sp.physical_bytes_read);
        }
        *out << "\n";
      }
      RenderAnalyze(*node.build, options, ids, advice, state, depth + 1, out);
      RenderAnalyze(*node.probe, options, ids, advice, state, depth + 1, out);
      break;
    }
    case PlanNode::Kind::kFilter: {
      indent();
      const std::string label =
          node.filter.label.empty() ? "lambda" : node.filter.label;
      *out << "filter [" << label << "]";
      auto key = std::make_pair(std::string("filter"), node.filter.label);
      const OperatorMetrics* op =
          FindOperator(qm, key.first, key.second, state->op_cursor[key]++);
      if (op != nullptr) {
        OperatorTotals t = op->Totals();
        *out << " (rows_in=" << t.rows_in << " rows_out=" << t.rows_out << ")";
      }
      *out << "\n";
      RenderAnalyze(*node.child, options, ids, advice, state, depth + 1, out);
      break;
    }
    case PlanNode::Kind::kMap: {
      indent();
      *out << "map [";
      for (size_t m = 0; m < node.maps.size(); ++m) {
        if (m > 0) *out << ", ";
        *out << node.maps[m].name;
      }
      *out << "]";
      const std::string detail =
          node.maps.empty() ? std::string() : node.maps.front().name;
      auto key = std::make_pair(std::string("map"), detail);
      const OperatorMetrics* op =
          FindOperator(qm, key.first, key.second, state->op_cursor[key]++);
      if (op != nullptr) {
        OperatorTotals t = op->Totals();
        *out << " (rows_in=" << t.rows_in << " rows_out=" << t.rows_out << ")";
      }
      *out << "\n";
      RenderAnalyze(*node.child, options, ids, advice, state, depth + 1, out);
      break;
    }
    case PlanNode::Kind::kScan: {
      indent();
      *out << "scan " << node.table->name() << " [" << node.table->num_rows()
           << " rows";
      for (const auto& pred : node.predicates) {
        *out << ", " << pred.column << " " << PredicateOpName(pred.op);
      }
      for (const auto& plant : node.bloom_probes) {
        *out << ", bloom(j" << plant.source_join << "."
             << plant.probe_column << ")";
      }
      *out << "]";
      if (state->scan_cursor < qm.scans().size() &&
          qm.scans()[state->scan_cursor].table == node.table->name()) {
        const ScanMetrics& sm = qm.scans()[state->scan_cursor];
        *out << " (scanned=" << sm.rows_scanned
             << " passed=" << sm.rows_passed;
        if (sm.encoded) {
          *out << " enc_width=" << sm.enc_read_width << "B/"
               << sm.plain_read_width << "B decoded=" << sm.values_decoded
               << " codes=" << sm.codes_emitted;
        }
        *out << ")";
      }
      ++state->scan_cursor;
      *out << "\n";
      break;
    }
  }
}

}  // namespace

std::string ExplainPlan(const PlanNode& root, const ExecOptions& options) {
  // EXPLAIN applies the same deterministic rewrite the executor applies, so
  // the rendered tree, join ids, and advisor advice match the executed plan.
  RewriteResult rewrite = RewritePlan(root, options.rewrite);
  const PlanNode& plan = rewrite.plan != nullptr ? *rewrite.plan : root;
  std::map<const PlanNode*, int> ids;
  int next = 0;
  NumberJoins(plan, &ids, &next);
  std::map<int, JoinDecision> advice;
  if (UsesAuto(options)) {
    advice = JoinAdvisor::AdvisePlan(plan, options.advisor);
  }
  std::ostringstream out;
  if (rewrite.info.changed) {
    out << "rewrite: rules=" << rewrite.info.RulesLine();
    if (!rewrite.info.order.empty()) out << " order=" << rewrite.info.order;
    out << "\n";
  }
  Render(plan, options, ids, advice, 0, &out);
  return out.str();
}

std::string ExplainAnalyzePlan(const PlanNode& root, const ExecOptions& options,
                               const QueryStats& stats) {
  RewriteResult rewrite = RewritePlan(root, options.rewrite);
  const PlanNode& plan = rewrite.plan != nullptr ? *rewrite.plan : root;
  std::map<const PlanNode*, int> ids;
  int next = 0;
  NumberJoins(plan, &ids, &next);
  std::map<int, JoinDecision> advice;
  if (UsesAuto(options)) {
    advice = JoinAdvisor::AdvisePlan(plan, options.advisor);
  }
  std::ostringstream out;
  if (rewrite.info.changed) {
    out << "rewrite: rules=" << rewrite.info.RulesLine();
    if (!rewrite.info.order.empty()) out << " order=" << rewrite.info.order;
    if (stats.metrics.rewrite_present()) {
      out << " bloom_dropped=" << stats.metrics.rewrite_bloom_dropped();
    }
    out << "\n";
  }
  AnalyzeState state;
  state.metrics = &stats.metrics;
  RenderAnalyze(plan, options, ids, advice, &state, 0, &out);

  const QueryMetrics& qm = stats.metrics;
  out << "\ntotal: " << Fixed(qm.seconds() * 1e3, 3) << "ms"
      << " source_tuples=" << qm.source_tuples()
      << " result_rows=" << qm.result_rows()
      << " threads=" << qm.num_threads();
  if (!qm.simd_tier().empty()) out << " simd=" << qm.simd_tier();
  out << "\n";

  // Server-mode section (only for runs submitted through QueryServer):
  // admission identity, queue wait, and the arbitration outcome.
  if (qm.server_present()) {
    out << "server: query=" << qm.server_query_id()
        << " session=" << qm.server_session_id()
        << " state=" << qm.server_state()
        << " queued=" << Fixed(qm.server_queue_seconds() * 1e3, 3) << "ms"
        << " granted_bytes=" << qm.server_granted_bytes()
        << " spill_pressure=" << qm.server_spill_pressure() << "\n";
  }

  out << "pipelines:\n";
  for (size_t i = 0; i < qm.pipelines().size(); ++i) {
    const PipelineMetrics& pm = qm.pipelines()[i];
    out << "  #" << i << " " << pm.label << " [" << JoinPhaseName(pm.phase)
        << "] wall=" << Fixed(pm.wall_seconds * 1e3, 3)
        << "ms cpu=" << Fixed(pm.cpu_seconds() * 1e3, 3)
        << "ms morsels=" << pm.total_morsels() << " per_worker=[";
    for (size_t w = 0; w < pm.morsels_per_worker.size(); ++w) {
      if (w > 0) out << ", ";
      out << pm.morsels_per_worker[w];
    }
    out << "]\n";
    for (const OperatorMetrics& op : qm.operators()) {
      if (op.pipeline_index() != static_cast<int>(i)) continue;
      OperatorTotals t = op.Totals();
      out << "      " << op.name();
      if (!op.detail().empty()) out << " " << op.detail();
      out << ": rows_in=" << t.rows_in << " rows_out=" << t.rows_out
          << " batches_out=" << t.batches_out << "\n";
    }
  }
  return out.str();
}

}  // namespace pjoin
