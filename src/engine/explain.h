// Plan explanation: renders a logical plan tree (and its join strategy
// assignment) as text, the equivalent of the Umbra web interface plans the
// paper references for its per-query analysis (footnote 7).
#ifndef PJOIN_ENGINE_EXPLAIN_H_
#define PJOIN_ENGINE_EXPLAIN_H_

#include <string>

#include "engine/executor.h"
#include "engine/plan.h"

namespace pjoin {

// Renders the plan tree, one node per line, children indented. Join nodes
// show their post-order id, kind, keys, and the strategy the given options
// would assign (including per-join overrides); scans show table, predicates
// and cardinality.
std::string ExplainPlan(const PlanNode& root, const ExecOptions& options);

// EXPLAIN ANALYZE: the same tree annotated with the actuals a completed run
// recorded in `stats.metrics` — scan scanned/passed counts, per-join
// build/probe/matched/output cardinalities plus strategy internals (chaining
// hash-table shape, radix fan-out and SWWCB traffic, Bloom pass rate and the
// adaptive decision), and a trailing per-pipeline section with wall/CPU time,
// morsel distribution, and per-operator row counts. Runs submitted through
// QueryServer additionally get a "server:" line (admission identity, queue
// wait, memory grant, spill pressure).
std::string ExplainAnalyzePlan(const PlanNode& root, const ExecOptions& options,
                               const QueryStats& stats);

}  // namespace pjoin

#endif  // PJOIN_ENGINE_EXPLAIN_H_
