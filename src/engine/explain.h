// Plan explanation: renders a logical plan tree (and its join strategy
// assignment) as text, the equivalent of the Umbra web interface plans the
// paper references for its per-query analysis (footnote 7).
#ifndef PJOIN_ENGINE_EXPLAIN_H_
#define PJOIN_ENGINE_EXPLAIN_H_

#include <string>

#include "engine/executor.h"
#include "engine/plan.h"

namespace pjoin {

// Renders the plan tree, one node per line, children indented. Join nodes
// show their post-order id, kind, keys, and the strategy the given options
// would assign (including per-join overrides); scans show table, predicates
// and cardinality.
std::string ExplainPlan(const PlanNode& root, const ExecOptions& options);

}  // namespace pjoin

#endif  // PJOIN_ENGINE_EXPLAIN_H_
