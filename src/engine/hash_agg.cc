#include "engine/hash_agg.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace pjoin {

HashAggOp::HashAggOp(const RowLayout* in_layout,
                     std::vector<std::string> group_by,
                     std::vector<AggDef> aggs)
    : in_layout_(in_layout),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {
  for (const auto& name : group_by_) {
    group_fields_.push_back(in_layout_->IndexOf(name));
  }
  for (const auto& agg : aggs_) {
    if (agg.op == AggDef::Op::kCountStar) {
      agg_fields_.push_back(-1);
      agg_is_float_.push_back(false);
    } else {
      int f = in_layout_->IndexOf(agg.input);
      agg_fields_.push_back(f);
      agg_is_float_.push_back(in_layout_->field(f).type ==
                              DataType::kFloat64);
    }
  }
}

void HashAggOp::Prepare(ExecContext& exec) {
  worker_maps_.assign(exec.num_threads(), GroupMap{});
}

void HashAggOp::Accumulate(Group& group, const std::byte* row) {
  if (group.accums.empty()) group.accums.resize(aggs_.size());
  for (size_t a = 0; a < aggs_.size(); ++a) {
    Accum& acc = group.accums[a];
    const int f = agg_fields_[a];
    ++acc.count;
    if (f < 0) continue;  // count(*)
    double v;
    if (agg_is_float_[a]) {
      v = in_layout_->GetFloat64(row, f);
    } else {
      int64_t iv = in_layout_->GetNumeric(row, f);
      acc.isum += iv;
      v = static_cast<double>(iv);
    }
    acc.sum += v;
    if (!acc.seen || v < acc.min) acc.min = v;
    if (!acc.seen || v > acc.max) acc.max = v;
    acc.seen = true;
  }
}

void HashAggOp::Consume(Batch& batch, ThreadContext& ctx) {
  MetricsIn(batch, ctx);
  GroupMap& map = worker_maps_[ctx.thread_id];
  std::string key;
  for (uint32_t i = 0; i < batch.size; ++i) {
    const std::byte* row = batch.Row(i);
    key.clear();
    for (int f : group_fields_) {
      const RowField& field = in_layout_->field(f);
      key.append(reinterpret_cast<const char*>(row + field.offset),
                 field.width);
    }
    Accumulate(map[key], row);
  }
}

void HashAggOp::MergeAccum(Accum& into, const Accum& from) {
  into.sum += from.sum;
  into.isum += from.isum;
  into.count += from.count;
  if (from.seen) {
    if (!into.seen || from.min < into.min) into.min = from.min;
    if (!into.seen || from.max > into.max) into.max = from.max;
    into.seen = true;
  }
}

void HashAggOp::Finish(ExecContext& exec) {
  (void)exec;
  GroupMap merged;
  for (GroupMap& map : worker_maps_) {
    for (auto& [key, group] : map) {
      Group& target = merged[key];
      if (target.accums.empty()) {
        target = std::move(group);
      } else {
        for (size_t a = 0; a < aggs_.size(); ++a) {
          MergeAccum(target.accums[a], group.accums[a]);
        }
      }
    }
  }
  worker_maps_.clear();

  result_.column_names.clear();
  for (const auto& g : group_by_) result_.column_names.push_back(g);
  for (const auto& a : aggs_) result_.column_names.push_back(a.name);

  // A scalar aggregate over empty input still yields one row of zero counts.
  if (merged.empty() && group_by_.empty()) {
    merged.emplace("", Group{std::vector<Accum>(aggs_.size())});
  }

  result_.rows.clear();
  result_.rows.reserve(merged.size());
  for (const auto& [key, group] : merged) {
    std::vector<Value> row;
    row.reserve(group_by_.size() + aggs_.size());
    // Decode group key bytes field-by-field.
    size_t pos = 0;
    for (int f : group_fields_) {
      const RowField& field = in_layout_->field(f);
      const char* bytes = key.data() + pos;
      pos += field.width;
      switch (field.type) {
        case DataType::kInt64: {
          int64_t v;
          std::memcpy(&v, bytes, 8);
          row.emplace_back(v);
          break;
        }
        case DataType::kInt32:
        case DataType::kDate: {
          int32_t v;
          std::memcpy(&v, bytes, 4);
          row.emplace_back(static_cast<int64_t>(v));
          break;
        }
        case DataType::kFloat64: {
          double v;
          std::memcpy(&v, bytes, 8);
          row.emplace_back(v);
          break;
        }
        case DataType::kChar: {
          size_t len = field.width;
          while (len > 0 && bytes[len - 1] == ' ') --len;
          row.emplace_back(std::string(bytes, len));
          break;
        }
      }
    }
    for (size_t a = 0; a < aggs_.size(); ++a) {
      const Accum& acc = group.accums[a];
      switch (aggs_[a].op) {
        case AggDef::Op::kSum:
          if (agg_is_float_[a]) {
            row.emplace_back(acc.sum);
          } else {
            row.emplace_back(acc.isum);
          }
          break;
        case AggDef::Op::kCount:
        case AggDef::Op::kCountStar:
          row.emplace_back(acc.count);
          break;
        case AggDef::Op::kMin:
          row.emplace_back(acc.min);
          break;
        case AggDef::Op::kMax:
          row.emplace_back(acc.max);
          break;
        case AggDef::Op::kAvg:
          row.emplace_back(acc.count > 0 ? acc.sum / acc.count : 0.0);
          break;
      }
    }
    result_.rows.push_back(std::move(row));
  }
  std::sort(result_.rows.begin(), result_.rows.end());
  if (metrics_ != nullptr) {
    metrics_->AddOut(0, result_.rows.size(), result_.rows.empty() ? 0 : 1);
  }
}

}  // namespace pjoin
