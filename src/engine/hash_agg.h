// Hash aggregation: the terminal pipeline breaker of every query.
//
// Thread-local aggregation tables merged at Finish; group keys may be any
// fixed-width fields (including CHAR). With an empty group list this is the
// scalar aggregate (count(*)/sum(...)) used by all microbenchmark queries.
#ifndef PJOIN_ENGINE_HASH_AGG_H_
#define PJOIN_ENGINE_HASH_AGG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "engine/value.h"
#include "exec/pipeline.h"

namespace pjoin {

struct AggDef {
  enum class Op { kSum, kCount, kCountStar, kMin, kMax, kAvg };
  Op op = Op::kCountStar;
  std::string input;  // unused for kCountStar
  std::string name;   // output column name

  static AggDef Sum(std::string input, std::string name) {
    return AggDef{Op::kSum, std::move(input), std::move(name)};
  }
  static AggDef Count(std::string input, std::string name) {
    return AggDef{Op::kCount, std::move(input), std::move(name)};
  }
  static AggDef CountStar(std::string name) {
    return AggDef{Op::kCountStar, "", std::move(name)};
  }
  static AggDef Min(std::string input, std::string name) {
    return AggDef{Op::kMin, std::move(input), std::move(name)};
  }
  static AggDef Max(std::string input, std::string name) {
    return AggDef{Op::kMax, std::move(input), std::move(name)};
  }
  static AggDef Avg(std::string input, std::string name) {
    return AggDef{Op::kAvg, std::move(input), std::move(name)};
  }
};

class HashAggOp : public Operator {
 public:
  HashAggOp(const RowLayout* in_layout, std::vector<std::string> group_by,
            std::vector<AggDef> aggs);

  void Prepare(ExecContext& exec) override;
  void Consume(Batch& batch, ThreadContext& ctx) override;
  void Finish(ExecContext& exec) override;
  const RowLayout* OutputLayout() const override { return in_layout_; }

  const char* MetricsName() const override { return "hash_agg"; }
  std::string MetricsDetail() const override {
    return "groups:" + std::to_string(group_by_.size()) +
           " aggs:" + std::to_string(aggs_.size());
  }

  // Valid after Finish; rows canonically sorted.
  const QueryResult& result() const { return result_; }

 private:
  struct Accum {
    double sum = 0;
    int64_t isum = 0;
    int64_t count = 0;
    double min = 0;
    double max = 0;
    bool seen = false;
  };
  struct Group {
    std::vector<Accum> accums;
  };
  using GroupMap = std::unordered_map<std::string, Group>;

  void Accumulate(Group& group, const std::byte* row);
  static void MergeAccum(Accum& into, const Accum& from);

  const RowLayout* in_layout_;
  std::vector<std::string> group_by_;
  std::vector<AggDef> aggs_;
  std::vector<int> group_fields_;
  std::vector<int> agg_fields_;       // -1 for kCountStar
  std::vector<bool> agg_is_float_;

  std::vector<GroupMap> worker_maps_;
  QueryResult result_;
};

}  // namespace pjoin

#endif  // PJOIN_ENGINE_HASH_AGG_H_
