#include "engine/operators.h"

#include <cstring>

#include "util/check.h"

namespace pjoin {

// ---- FilterOp ---------------------------------------------------------------

void FilterOp::Prepare(ExecContext& exec) {
  workers_.resize(exec.num_threads());
  input_fields_.clear();
  for (const auto& name : def_->inputs) {
    input_fields_.push_back(layout_->IndexOf(name));
  }
}

void FilterOp::Open(ThreadContext& ctx) {
  Worker& w = workers_[ctx.thread_id];
  w.scratch.Bind(layout_);
  w.batch = w.scratch.Start();
}

void FilterOp::Consume(Batch& batch, ThreadContext& ctx) {
  MetricsIn(batch, ctx);
  Worker& w = workers_[ctx.thread_id];
  const uint32_t stride = layout_->stride();
  const int* fields = input_fields_.data();
  for (uint32_t i = 0; i < batch.size; ++i) {
    const std::byte* row = batch.Row(i);
    if (!def_->fn(*layout_, row, fields)) continue;
    if (w.scratch.Full(w.batch)) {
      PushNext(w.batch, ctx);
      w.batch = w.scratch.Start();
    }
    std::memcpy(w.scratch.AppendSlot(w.batch), row, stride);
  }
}

void FilterOp::Close(ThreadContext& ctx) {
  Worker& w = workers_[ctx.thread_id];
  if (w.batch.size > 0) {
    PushNext(w.batch, ctx);
    w.batch = w.scratch.Start();
  }
}

// ---- MapOp ------------------------------------------------------------------

void MapOp::Prepare(ExecContext& exec) {
  workers_.resize(exec.num_threads());
  input_fields_.clear();
  for (const auto& def : *defs_) {
    std::vector<int> fields;
    for (const auto& name : def.inputs) {
      fields.push_back(in_layout_->IndexOf(name));
    }
    input_fields_.push_back(std::move(fields));
  }
}

void MapOp::Open(ThreadContext& ctx) {
  Worker& w = workers_[ctx.thread_id];
  w.scratch.Bind(out_layout_);
  w.batch = w.scratch.Start();
}

void MapOp::Consume(Batch& batch, ThreadContext& ctx) {
  MetricsIn(batch, ctx);
  Worker& w = workers_[ctx.thread_id];
  const uint32_t in_stride = in_layout_->stride();
  const int first_new = in_layout_->num_fields();
  for (uint32_t i = 0; i < batch.size; ++i) {
    const std::byte* row = batch.Row(i);
    if (w.scratch.Full(w.batch)) {
      PushNext(w.batch, ctx);
      w.batch = w.scratch.Start();
    }
    std::byte* dst = w.scratch.AppendSlot(w.batch);
    // Input fields keep their offsets: the output layout is input + extras.
    std::memcpy(dst, row, in_stride);
    for (size_t d = 0; d < defs_->size(); ++d) {
      const RowField& out_field =
          out_layout_->field(first_new + static_cast<int>(d));
      (*defs_)[d].fn(*in_layout_, row, input_fields_[d].data(),
                     dst + out_field.offset);
    }
  }
}

void MapOp::Close(ThreadContext& ctx) {
  Worker& w = workers_[ctx.thread_id];
  if (w.batch.size > 0) {
    PushNext(w.batch, ctx);
    w.batch = w.scratch.Start();
  }
}

// ---- LateLoadOp -------------------------------------------------------------

void LateLoadOp::Prepare(ExecContext& exec) {
  workers_.resize(exec.num_threads());
}

void LateLoadOp::Open(ThreadContext& ctx) {
  Worker& w = workers_[ctx.thread_id];
  w.scratch.Bind(out_layout_);
  w.batch = w.scratch.Start();
}

void LateLoadOp::Consume(Batch& batch, ThreadContext& ctx) {
  MetricsIn(batch, ctx);
  Worker& w = workers_[ctx.thread_id];
  const uint32_t in_stride = in_layout_->stride();
  uint64_t fetched_bytes = 0;
  for (uint32_t i = 0; i < batch.size; ++i) {
    const std::byte* row = batch.Row(i);
    if (w.scratch.Full(w.batch)) {
      PushNext(w.batch, ctx);
      w.batch = w.scratch.Start();
    }
    std::byte* dst = w.scratch.AppendSlot(w.batch);
    std::memcpy(dst, row, in_stride);
    for (const Fetch& fetch : fetches_) {
      // Tuple ids are stored +1; zero marks the null padding of outer joins.
      const int64_t tid = in_layout_->GetInt64(row, fetch.tid_field);
      for (size_t c = 0; c < fetch.table_cols.size(); ++c) {
        const Column& col = fetch.table->column(fetch.table_cols[c]);
        const RowField& out_field = out_layout_->field(fetch.out_fields[c]);
        PJOIN_DCHECK(col.width() == out_field.width);
        if (tid > 0) {
          std::memcpy(dst + out_field.offset,
                      col.Raw(static_cast<uint64_t>(tid - 1)),
                      out_field.width);
          fetched_bytes += out_field.width;
        } else {
          std::memset(dst + out_field.offset, 0, out_field.width);
        }
      }
    }
  }
  ctx.bytes->AddRead(JoinPhase::kProbePipeline, fetched_bytes);
}

void LateLoadOp::Close(ThreadContext& ctx) {
  Worker& w = workers_[ctx.thread_id];
  if (w.batch.size > 0) {
    PushNext(w.batch, ctx);
    w.batch = w.scratch.Start();
  }
}

}  // namespace pjoin
