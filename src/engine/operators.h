// In-pipeline operators: generic row filters, computed columns, and the
// late-materialization column fetch.
#ifndef PJOIN_ENGINE_OPERATORS_H_
#define PJOIN_ENGINE_OPERATORS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/pipeline.h"
#include "storage/table.h"

namespace pjoin {

// Predicate over pipeline rows that the scan could not absorb (multi-column
// or post-join conditions). Declared inputs let the planner keep the needed
// columns alive; the operator resolves them to field indices once, so the
// per-row lambda receives `fields` where fields[i] is the index of
// inputs[i] in the layout — no name lookups on the hot path.
struct FilterDef {
  std::function<bool(const RowLayout&, const std::byte* row,
                     const int* fields)>
      fn;
  std::vector<std::string> inputs;
  std::string label;
};

// A computed column (e.g., revenue = l_extendedprice * (1 - l_discount)).
// `fields` resolves `inputs` as in FilterDef; `dst` points at the new
// field's location in the output row.
struct MapDef {
  std::string name;
  DataType type = DataType::kFloat64;
  uint32_t char_len = 0;
  std::function<void(const RowLayout&, const std::byte* row,
                     const int* fields, std::byte* dst)>
      fn;
  std::vector<std::string> inputs;
};

// Filters batches with an arbitrary row predicate (compacting copy).
class FilterOp : public Operator {
 public:
  FilterOp(const FilterDef* def, const RowLayout* layout)
      : def_(def), layout_(layout) {}

  void Prepare(ExecContext& exec) override;
  void Open(ThreadContext& ctx) override;
  void Consume(Batch& batch, ThreadContext& ctx) override;
  void Close(ThreadContext& ctx) override;
  const RowLayout* OutputLayout() const override { return layout_; }

  const char* MetricsName() const override { return "filter"; }
  std::string MetricsDetail() const override { return def_->label; }

 private:
  struct Worker {
    BatchScratch scratch;
    Batch batch;
  };
  const FilterDef* def_;
  const RowLayout* layout_;
  std::vector<int> input_fields_;
  std::vector<Worker> workers_;
};

// Extends each row with computed columns.
class MapOp : public Operator {
 public:
  // `out_layout` = input fields followed by one field per MapDef.
  MapOp(const std::vector<MapDef>* defs, const RowLayout* in_layout,
        const RowLayout* out_layout)
      : defs_(defs), in_layout_(in_layout), out_layout_(out_layout) {}

  void Prepare(ExecContext& exec) override;
  void Open(ThreadContext& ctx) override;
  void Consume(Batch& batch, ThreadContext& ctx) override;
  void Close(ThreadContext& ctx) override;
  const RowLayout* OutputLayout() const override { return out_layout_; }

  const char* MetricsName() const override { return "map"; }
  std::string MetricsDetail() const override {
    return defs_->empty() ? std::string() : defs_->front().name;
  }

 private:
  struct Worker {
    BatchScratch scratch;
    Batch batch;
  };
  const std::vector<MapDef>* defs_;
  const RowLayout* in_layout_;
  const RowLayout* out_layout_;
  std::vector<std::vector<int>> input_fields_;  // per MapDef
  std::vector<Worker> workers_;
};

// Late materialization (Section 4.2): fetches deferred columns from a base
// table by tuple id after the joins. The random access this introduces is
// exactly the cost the paper's Section 5.4.2/5.4.3 discusses.
class LateLoadOp : public Operator {
 public:
  struct Fetch {
    const Table* table;
    int tid_field;                 // field in the input layout
    std::vector<int> table_cols;   // columns to fetch
    std::vector<int> out_fields;   // destination fields (parallel array)
  };

  // `out_layout` = input fields followed by all fetched fields.
  LateLoadOp(std::vector<Fetch> fetches, const RowLayout* in_layout,
             const RowLayout* out_layout)
      : fetches_(std::move(fetches)),
        in_layout_(in_layout),
        out_layout_(out_layout) {}

  void Prepare(ExecContext& exec) override;
  void Open(ThreadContext& ctx) override;
  void Consume(Batch& batch, ThreadContext& ctx) override;
  void Close(ThreadContext& ctx) override;
  const RowLayout* OutputLayout() const override { return out_layout_; }

  const char* MetricsName() const override { return "late_load"; }

 private:
  struct Worker {
    BatchScratch scratch;
    Batch batch;
  };
  std::vector<Fetch> fetches_;
  const RowLayout* in_layout_;
  const RowLayout* out_layout_;
  std::vector<Worker> workers_;
};

}  // namespace pjoin

#endif  // PJOIN_ENGINE_OPERATORS_H_
