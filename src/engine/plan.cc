#include "engine/plan.h"

#include "util/check.h"

namespace pjoin {

std::vector<PlanNode::ColumnRef> PlanNode::OutputColumns() const {
  std::vector<ColumnRef> out;
  switch (kind) {
    case Kind::kScan:
      for (const auto& def : table->schema().columns()) {
        out.push_back(ColumnRef{def.name, def.type, def.width(), table});
      }
      break;
    case Kind::kFilter:
      return child->OutputColumns();
    case Kind::kMap:
      out = child->OutputColumns();
      for (const auto& map : maps) {
        out.push_back(ColumnRef{map.name, map.type,
                                TypeWidth(map.type, map.char_len), nullptr});
      }
      break;
    case Kind::kJoin: {
      // Build-side columns first, probe-side columns second; probe-only and
      // build-only kinds still expose both sides (null-padded) plus the mark.
      out = build->OutputColumns();
      auto probe_cols = probe->OutputColumns();
      out.insert(out.end(), probe_cols.begin(), probe_cols.end());
      if (join_kind == JoinKind::kMark) {
        out.push_back(ColumnRef{mark_name, DataType::kInt64, 8, nullptr});
      }
      break;
    }
    case Kind::kAgg:
      PJOIN_CHECK_MSG(false, "aggregate is a root-only node");
  }
  return out;
}

uint64_t PlanNode::EstimateRows() const {
  switch (kind) {
    case Kind::kScan: {
      // Conjunctive predicates combine multiplicatively (independence
      // assumption); predicate-free scans stay exact.
      double selectivity = 1.0;
      for (const ScanPredicate& pred : predicates) {
        selectivity *= EstimateSelectivity(pred, *table);
      }
      const double rows =
          static_cast<double>(table->num_rows()) * selectivity;
      return rows < 1.0 ? 1 : static_cast<uint64_t>(rows);
    }
    case Kind::kFilter:
    case Kind::kMap:
    case Kind::kAgg:
      return child->EstimateRows();
    case Kind::kJoin:
      // FK joins dominate TPC-H: output cardinality tracks the probe side.
      return probe->EstimateRows();
  }
  return 0;
}

int PlanNode::CountJoins() const {
  switch (kind) {
    case Kind::kScan:
      return 0;
    case Kind::kFilter:
    case Kind::kMap:
    case Kind::kAgg:
      return child->CountJoins();
    case Kind::kJoin:
      return 1 + build->CountJoins() + probe->CountJoins();
  }
  return 0;
}

std::unique_ptr<PlanNode> ScanTable(const Table* table,
                                    std::vector<ScanPredicate> predicates) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kScan;
  node->table = table;
  node->predicates = std::move(predicates);
  return node;
}

std::unique_ptr<PlanNode> Filter(std::unique_ptr<PlanNode> child,
                                 FilterDef filter) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kFilter;
  node->child = std::move(child);
  node->filter = std::move(filter);
  return node;
}

std::unique_ptr<PlanNode> MapColumns(std::unique_ptr<PlanNode> child,
                                     std::vector<MapDef> maps) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kMap;
  node->child = std::move(child);
  node->maps = std::move(maps);
  return node;
}

std::unique_ptr<PlanNode> Join(
    std::unique_ptr<PlanNode> build, std::unique_ptr<PlanNode> probe,
    std::vector<std::pair<std::string, std::string>> keys, JoinKind kind,
    std::string mark_name) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kJoin;
  node->build = std::move(build);
  node->probe = std::move(probe);
  node->keys = std::move(keys);
  node->join_kind = kind;
  node->mark_name = std::move(mark_name);
  PJOIN_CHECK(!node->keys.empty());
  if (kind == JoinKind::kMark) PJOIN_CHECK(!node->mark_name.empty());
  return node;
}

std::unique_ptr<PlanNode> Aggregate(std::unique_ptr<PlanNode> child,
                                    std::vector<std::string> group_by,
                                    std::vector<AggDef> aggs) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kAgg;
  node->child = std::move(child);
  node->group_by = std::move(group_by);
  node->aggs = std::move(aggs);
  return node;
}

}  // namespace pjoin
