#include "engine/plan.h"

#include <algorithm>

#include "stats/stats_catalog.h"
#include "util/check.h"

namespace pjoin {

std::vector<PlanNode::ColumnRef> PlanNode::OutputColumns() const {
  std::vector<ColumnRef> out;
  switch (kind) {
    case Kind::kScan:
      for (const auto& def : table->schema().columns()) {
        out.push_back(ColumnRef{def.name, def.type, def.width(), table});
      }
      break;
    case Kind::kFilter:
      return child->OutputColumns();
    case Kind::kMap:
      out = child->OutputColumns();
      for (const auto& map : maps) {
        out.push_back(ColumnRef{map.name, map.type,
                                TypeWidth(map.type, map.char_len), nullptr});
      }
      break;
    case Kind::kJoin: {
      // Build-side columns first, probe-side columns second; probe-only and
      // build-only kinds still expose both sides (null-padded) plus the mark.
      out = build->OutputColumns();
      auto probe_cols = probe->OutputColumns();
      out.insert(out.end(), probe_cols.begin(), probe_cols.end());
      if (join_kind == JoinKind::kMark) {
        out.push_back(ColumnRef{mark_name, DataType::kInt64, 8, nullptr});
      }
      break;
    }
    case Kind::kAgg:
      PJOIN_CHECK_MSG(false, "aggregate is a root-only node");
  }
  return out;
}

uint64_t PlanNode::EstimateRows() const {
  switch (kind) {
    case Kind::kScan: {
      const double selectivity =
          EstimateConjunctionSelectivity(predicates, *table);
      const double rows =
          static_cast<double>(table->num_rows()) * selectivity;
      return rows < 1.0 ? 1 : static_cast<uint64_t>(rows);
    }
    case Kind::kFilter:
    case Kind::kMap:
    case Kind::kAgg:
      return child->EstimateRows();
    case Kind::kJoin:
      return EstimateJoinOutputRows(*this, build->EstimateRows(),
                                    probe->EstimateRows());
  }
  return 0;
}

const Table* ResolveBaseColumn(const PlanNode& node, const std::string& name,
                               int* col) {
  switch (node.kind) {
    case PlanNode::Kind::kScan: {
      const int idx = node.table->schema().Find(name);
      if (idx < 0) return nullptr;
      *col = idx;
      return node.table;
    }
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kAgg:
      return ResolveBaseColumn(*node.child, name, col);
    case PlanNode::Kind::kMap:
      for (const auto& map : node.maps) {
        if (map.name == name) return nullptr;  // computed, not traceable
      }
      return ResolveBaseColumn(*node.child, name, col);
    case PlanNode::Kind::kJoin: {
      const Table* t = ResolveBaseColumn(*node.build, name, col);
      return t != nullptr ? t : ResolveBaseColumn(*node.probe, name, col);
    }
  }
  return nullptr;
}

uint64_t EstimateJoinOutputRows(const PlanNode& join, uint64_t build_rows,
                                uint64_t probe_rows) {
  PJOIN_CHECK(join.kind == PlanNode::Kind::kJoin);
  switch (join.join_kind) {
    case JoinKind::kInner:
    case JoinKind::kLeftOuter:
    case JoinKind::kRightOuter:
      break;
    default:
      // Semi/anti/mark output at most one row per preserved-side input; the
      // probe-side estimate is already the right order of magnitude.
      return probe_rows;
  }
  if (join.keys.empty()) return probe_rows;
  int build_col = -1;
  int probe_col = -1;
  const Table* build_table =
      ResolveBaseColumn(*join.build, join.keys[0].first, &build_col);
  const Table* probe_table =
      ResolveBaseColumn(*join.probe, join.keys[0].second, &probe_col);
  if (build_table == nullptr || probe_table == nullptr) return probe_rows;
  // Distinct counts shrink at most linearly with filtering, so cap them by
  // the estimated input cardinalities before taking the containment max.
  const uint64_t d_build = std::min<uint64_t>(
      std::max<uint64_t>(1, build_rows),
      std::max<uint64_t>(1, ColumnDistinctCount(*build_table, build_col)));
  const uint64_t d_probe = std::min<uint64_t>(
      std::max<uint64_t>(1, probe_rows),
      std::max<uint64_t>(1, ColumnDistinctCount(*probe_table, probe_col)));
  if (ColumnDistinctCount(*build_table, build_col) == 0 ||
      ColumnDistinctCount(*probe_table, probe_col) == 0) {
    return probe_rows;  // statistics disabled or unavailable
  }
  const double d_max = static_cast<double>(std::max(d_build, d_probe));
  double out = static_cast<double>(build_rows) *
               static_cast<double>(probe_rows) / d_max;
  // Outer joins preserve one side regardless of matches.
  if (join.join_kind == JoinKind::kLeftOuter) {
    out = std::max(out, static_cast<double>(probe_rows));
  } else if (join.join_kind == JoinKind::kRightOuter) {
    out = std::max(out, static_cast<double>(build_rows));
  }
  return out < 1.0 ? 1 : static_cast<uint64_t>(out);
}

int PlanNode::CountJoins() const {
  switch (kind) {
    case Kind::kScan:
      return 0;
    case Kind::kFilter:
    case Kind::kMap:
    case Kind::kAgg:
      return child->CountJoins();
    case Kind::kJoin:
      return 1 + build->CountJoins() + probe->CountJoins();
  }
  return 0;
}

std::unique_ptr<PlanNode> PlanNode::Clone() const {
  auto copy = std::make_unique<PlanNode>();
  copy->kind = kind;
  copy->table = table;
  copy->predicates = predicates;
  copy->bloom_probes = bloom_probes;
  if (child != nullptr) copy->child = child->Clone();
  copy->filter = filter;
  copy->maps = maps;
  if (build != nullptr) copy->build = build->Clone();
  if (probe != nullptr) copy->probe = probe->Clone();
  copy->keys = keys;
  copy->join_kind = join_kind;
  copy->mark_name = mark_name;
  copy->bloom_builds = bloom_builds;
  copy->group_by = group_by;
  copy->aggs = aggs;
  return copy;
}

namespace {

bool FilterEquals(const FilterDef& a, const FilterDef& b) {
  return a.label == b.label && a.inputs == b.inputs;
}

bool MapsEqual(const std::vector<MapDef>& a, const std::vector<MapDef>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].name != b[i].name || a[i].type != b[i].type ||
        a[i].char_len != b[i].char_len || a[i].inputs != b[i].inputs) {
      return false;
    }
  }
  return true;
}

bool AggsEqual(const std::vector<AggDef>& a, const std::vector<AggDef>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].op != b[i].op || a[i].input != b[i].input ||
        a[i].name != b[i].name) {
      return false;
    }
  }
  return true;
}

bool SubtreeEquals(const PlanNode* a, const PlanNode* b) {
  if (a == nullptr || b == nullptr) return a == b;
  return a->Equals(*b);
}

}  // namespace

bool PlanNode::Equals(const PlanNode& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kScan:
      return table == other.table && predicates == other.predicates &&
             bloom_probes == other.bloom_probes;
    case Kind::kFilter:
      return FilterEquals(filter, other.filter) &&
             SubtreeEquals(child.get(), other.child.get());
    case Kind::kMap:
      return MapsEqual(maps, other.maps) &&
             SubtreeEquals(child.get(), other.child.get());
    case Kind::kJoin:
      return join_kind == other.join_kind && keys == other.keys &&
             mark_name == other.mark_name &&
             bloom_builds == other.bloom_builds &&
             SubtreeEquals(build.get(), other.build.get()) &&
             SubtreeEquals(probe.get(), other.probe.get());
    case Kind::kAgg:
      return group_by == other.group_by && AggsEqual(aggs, other.aggs) &&
             SubtreeEquals(child.get(), other.child.get());
  }
  return false;
}

std::unique_ptr<PlanNode> ScanTable(const Table* table,
                                    std::vector<ScanPredicate> predicates) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kScan;
  node->table = table;
  node->predicates = std::move(predicates);
  return node;
}

std::unique_ptr<PlanNode> Filter(std::unique_ptr<PlanNode> child,
                                 FilterDef filter) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kFilter;
  node->child = std::move(child);
  node->filter = std::move(filter);
  return node;
}

std::unique_ptr<PlanNode> MapColumns(std::unique_ptr<PlanNode> child,
                                     std::vector<MapDef> maps) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kMap;
  node->child = std::move(child);
  node->maps = std::move(maps);
  return node;
}

std::unique_ptr<PlanNode> Join(
    std::unique_ptr<PlanNode> build, std::unique_ptr<PlanNode> probe,
    std::vector<std::pair<std::string, std::string>> keys, JoinKind kind,
    std::string mark_name) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kJoin;
  node->build = std::move(build);
  node->probe = std::move(probe);
  node->keys = std::move(keys);
  node->join_kind = kind;
  node->mark_name = std::move(mark_name);
  PJOIN_CHECK(!node->keys.empty());
  if (kind == JoinKind::kMark) PJOIN_CHECK(!node->mark_name.empty());
  return node;
}

std::unique_ptr<PlanNode> Aggregate(std::unique_ptr<PlanNode> child,
                                    std::vector<std::string> group_by,
                                    std::vector<AggDef> aggs) {
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kAgg;
  node->child = std::move(child);
  node->group_by = std::move(group_by);
  node->aggs = std::move(aggs);
  return node;
}

}  // namespace pjoin
