// Logical query plans.
//
// Plans are hand-constructed trees (the system has no SQL frontend; plans
// correspond to the optimized plans Umbra generates for the paper's
// queries). The executor lowers a plan to pipelines for a chosen join
// strategy and materialization strategy, which is exactly the experiment
// knob of the paper: every join in the tree is replaced by the join under
// testing (Section 5.3).
#ifndef PJOIN_ENGINE_PLAN_H_
#define PJOIN_ENGINE_PLAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/hash_agg.h"
#include "engine/operators.h"
#include "engine/predicate.h"
#include "join/join_types.h"
#include "storage/table.h"

namespace pjoin {

// A Bloom filter planted by the rewrite pass (semi-join pushdown): the build
// side of join `source_join` populates a shared filter, and a distant probe
// scan checks `probe_column` against it before any intermediate join runs.
// The integer id pairs the two ends at lowering time.
struct BloomPlant {
  int id = 0;
  std::string build_column;  // key column at the planting join's build side
  std::string probe_column;  // base-scan column checked against the filter
  int source_join = -1;      // post-order join id in the rewritten tree

  bool operator==(const BloomPlant& other) const {
    return id == other.id && build_column == other.build_column &&
           probe_column == other.probe_column &&
           source_join == other.source_join;
  }
};

struct PlanNode {
  enum class Kind { kScan, kFilter, kMap, kJoin, kAgg };
  Kind kind = Kind::kScan;

  // kScan
  const Table* table = nullptr;
  std::vector<ScanPredicate> predicates;
  std::vector<BloomPlant> bloom_probes;  // filters checked after this scan

  // unary nodes (kFilter, kMap, kAgg)
  std::unique_ptr<PlanNode> child;
  FilterDef filter;             // kFilter
  std::vector<MapDef> maps;     // kMap

  // kJoin
  std::unique_ptr<PlanNode> build;
  std::unique_ptr<PlanNode> probe;
  std::vector<std::pair<std::string, std::string>> keys;  // (build, probe)
  JoinKind join_kind = JoinKind::kInner;
  std::string mark_name;  // output column of a kMark join
  std::vector<BloomPlant> bloom_builds;  // filters this build side populates

  // kAgg
  std::vector<std::string> group_by;
  std::vector<AggDef> aggs;

  // --- analysis helpers ---------------------------------------------------

  // Names and definitions of the columns this node can produce.
  struct ColumnRef {
    std::string name;
    DataType type;
    uint32_t width;
    const Table* source_table;  // base table, or null for computed columns
  };
  std::vector<ColumnRef> OutputColumns() const;

  // Cardinality estimate used to size radix partitions and feed the join
  // advisor. With the statistics catalog enabled (PJOIN_STATS, default on)
  // scans answer from per-column histograms with correlation-damped
  // conjunctions and joins from distinct-count sketches; without it, base
  // table sizes propagate up and FK joins are estimated by their probe side.
  uint64_t EstimateRows() const;

  // Number of join nodes in this subtree.
  int CountJoins() const;

  // Deep copy. FilterDef/MapDef lambdas are shared (std::function copies),
  // which is safe: definitions are immutable once built.
  std::unique_ptr<PlanNode> Clone() const;

  // Structural equality. Filter and map definitions compare by their
  // declared identity (label/name, inputs, types), not by lambda address —
  // two filters with the same label and inputs are the same rewrite-level
  // object even after a Clone. The rewrite pass uses this to detect no-op
  // transformations and keep untouched plans byte-identical downstream.
  bool Equals(const PlanNode& other) const;
};

// Traces output column `name` of the subtree at `node` back to the base
// table column it was scanned from; sets *col and returns the table, or
// returns null for computed columns and names that never reach a scan.
// Shared by the advisor's skew sampler and the statistics-backed join
// cardinality estimate.
const Table* ResolveBaseColumn(const PlanNode& node, const std::string& name,
                               int* col);

// Estimated output cardinality of join node `join` given estimated input
// cardinalities. With statistics, inner/outer joins use the textbook
// containment estimate |B><P| ~= |B|*|P| / max(d_build, d_probe) over the
// base-column distinct counts of the first key pair; semi/anti/mark kinds
// and plans without statistics keep the probe-side (FK-join) estimate.
uint64_t EstimateJoinOutputRows(const PlanNode& join, uint64_t build_rows,
                                uint64_t probe_rows);

// --- builder functions --------------------------------------------------

std::unique_ptr<PlanNode> ScanTable(const Table* table,
                                    std::vector<ScanPredicate> predicates = {});
std::unique_ptr<PlanNode> Filter(std::unique_ptr<PlanNode> child,
                                 FilterDef filter);
std::unique_ptr<PlanNode> MapColumns(std::unique_ptr<PlanNode> child,
                                     std::vector<MapDef> maps);
std::unique_ptr<PlanNode> Join(
    std::unique_ptr<PlanNode> build, std::unique_ptr<PlanNode> probe,
    std::vector<std::pair<std::string, std::string>> keys,
    JoinKind kind = JoinKind::kInner, std::string mark_name = "");
std::unique_ptr<PlanNode> Aggregate(std::unique_ptr<PlanNode> child,
                                    std::vector<std::string> group_by,
                                    std::vector<AggDef> aggs);

}  // namespace pjoin

#endif  // PJOIN_ENGINE_PLAN_H_
