// Logical query plans.
//
// Plans are hand-constructed trees (the system has no SQL frontend; plans
// correspond to the optimized plans Umbra generates for the paper's
// queries). The executor lowers a plan to pipelines for a chosen join
// strategy and materialization strategy, which is exactly the experiment
// knob of the paper: every join in the tree is replaced by the join under
// testing (Section 5.3).
#ifndef PJOIN_ENGINE_PLAN_H_
#define PJOIN_ENGINE_PLAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/hash_agg.h"
#include "engine/operators.h"
#include "engine/predicate.h"
#include "join/join_types.h"
#include "storage/table.h"

namespace pjoin {

struct PlanNode {
  enum class Kind { kScan, kFilter, kMap, kJoin, kAgg };
  Kind kind = Kind::kScan;

  // kScan
  const Table* table = nullptr;
  std::vector<ScanPredicate> predicates;

  // unary nodes (kFilter, kMap, kAgg)
  std::unique_ptr<PlanNode> child;
  FilterDef filter;             // kFilter
  std::vector<MapDef> maps;     // kMap

  // kJoin
  std::unique_ptr<PlanNode> build;
  std::unique_ptr<PlanNode> probe;
  std::vector<std::pair<std::string, std::string>> keys;  // (build, probe)
  JoinKind join_kind = JoinKind::kInner;
  std::string mark_name;  // output column of a kMark join

  // kAgg
  std::vector<std::string> group_by;
  std::vector<AggDef> aggs;

  // --- analysis helpers ---------------------------------------------------

  // Names and definitions of the columns this node can produce.
  struct ColumnRef {
    std::string name;
    DataType type;
    uint32_t width;
    const Table* source_table;  // base table, or null for computed columns
  };
  std::vector<ColumnRef> OutputColumns() const;

  // Cardinality estimate used to size radix partitions (a real optimizer
  // estimate in the paper's system; here: base-table sizes propagated up,
  // FK joins estimated by their probe side).
  uint64_t EstimateRows() const;

  // Number of join nodes in this subtree.
  int CountJoins() const;
};

// --- builder functions --------------------------------------------------

std::unique_ptr<PlanNode> ScanTable(const Table* table,
                                    std::vector<ScanPredicate> predicates = {});
std::unique_ptr<PlanNode> Filter(std::unique_ptr<PlanNode> child,
                                 FilterDef filter);
std::unique_ptr<PlanNode> MapColumns(std::unique_ptr<PlanNode> child,
                                     std::vector<MapDef> maps);
std::unique_ptr<PlanNode> Join(
    std::unique_ptr<PlanNode> build, std::unique_ptr<PlanNode> probe,
    std::vector<std::pair<std::string, std::string>> keys,
    JoinKind kind = JoinKind::kInner, std::string mark_name = "");
std::unique_ptr<PlanNode> Aggregate(std::unique_ptr<PlanNode> child,
                                    std::vector<std::string> group_by,
                                    std::vector<AggDef> aggs);

}  // namespace pjoin

#endif  // PJOIN_ENGINE_PLAN_H_
