#include "engine/predicate.h"

#include <algorithm>
#include <cstring>
#include <string_view>

#include "util/check.h"

namespace pjoin {

namespace {

// Trimmed view of a CHAR cell (values are space padded).
std::string_view TrimmedCell(const Column& col, uint64_t row) {
  const char* data = reinterpret_cast<const char*>(col.Raw(row));
  size_t len = col.width();
  while (len > 0 && data[len - 1] == ' ') --len;
  return std::string_view(data, len);
}

int64_t NumericCell(const Column& col, uint64_t row) {
  return col.width() == 8 ? col.GetInt64(row)
                          : static_cast<int64_t>(col.GetInt32(row));
}

}  // namespace

ScanPredicate ScanPredicate::EqI(std::string col, int64_t v) {
  ScanPredicate p;
  p.column = std::move(col);
  p.op = Op::kEq;
  p.i0 = v;
  return p;
}
ScanPredicate ScanPredicate::NeI(std::string col, int64_t v) {
  ScanPredicate p = EqI(std::move(col), v);
  p.op = Op::kNe;
  return p;
}
ScanPredicate ScanPredicate::LtI(std::string col, int64_t v) {
  ScanPredicate p = EqI(std::move(col), v);
  p.op = Op::kLt;
  return p;
}
ScanPredicate ScanPredicate::LeI(std::string col, int64_t v) {
  ScanPredicate p = EqI(std::move(col), v);
  p.op = Op::kLe;
  return p;
}
ScanPredicate ScanPredicate::GtI(std::string col, int64_t v) {
  ScanPredicate p = EqI(std::move(col), v);
  p.op = Op::kGt;
  return p;
}
ScanPredicate ScanPredicate::GeI(std::string col, int64_t v) {
  ScanPredicate p = EqI(std::move(col), v);
  p.op = Op::kGe;
  return p;
}
ScanPredicate ScanPredicate::BetweenI(std::string col, int64_t lo, int64_t hi) {
  ScanPredicate p;
  p.column = std::move(col);
  p.op = Op::kBetween;
  p.i0 = lo;
  p.i1 = hi;
  return p;
}
ScanPredicate ScanPredicate::InI(std::string col, std::vector<int64_t> values) {
  ScanPredicate p;
  p.column = std::move(col);
  p.op = Op::kInSet;
  p.iset = std::move(values);
  return p;
}
ScanPredicate ScanPredicate::LtD(std::string col, double v) {
  ScanPredicate p;
  p.column = std::move(col);
  p.op = Op::kLt;
  p.is_double = true;
  p.d0 = v;
  return p;
}
ScanPredicate ScanPredicate::GtD(std::string col, double v) {
  ScanPredicate p = LtD(std::move(col), v);
  p.op = Op::kGt;
  return p;
}
ScanPredicate ScanPredicate::BetweenD(std::string col, double lo, double hi) {
  ScanPredicate p;
  p.column = std::move(col);
  p.op = Op::kBetween;
  p.is_double = true;
  p.d0 = lo;
  p.d1 = hi;
  return p;
}
ScanPredicate ScanPredicate::StrEq(std::string col, std::string v) {
  ScanPredicate p;
  p.column = std::move(col);
  p.op = Op::kStrEq;
  p.s0 = std::move(v);
  return p;
}
ScanPredicate ScanPredicate::StrNe(std::string col, std::string v) {
  ScanPredicate p = StrEq(std::move(col), std::move(v));
  p.op = Op::kStrNe;
  return p;
}
ScanPredicate ScanPredicate::StrPrefix(std::string col, std::string v) {
  ScanPredicate p = StrEq(std::move(col), std::move(v));
  p.op = Op::kStrPrefix;
  return p;
}
ScanPredicate ScanPredicate::StrSuffix(std::string col, std::string v) {
  ScanPredicate p = StrEq(std::move(col), std::move(v));
  p.op = Op::kStrSuffix;
  return p;
}
ScanPredicate ScanPredicate::StrContains(std::string col, std::string v) {
  ScanPredicate p = StrEq(std::move(col), std::move(v));
  p.op = Op::kStrContains;
  return p;
}
ScanPredicate ScanPredicate::StrNotContains(std::string col, std::string v) {
  ScanPredicate p = StrEq(std::move(col), std::move(v));
  p.op = Op::kStrNotContains;
  return p;
}
ScanPredicate ScanPredicate::StrIn(std::string col,
                                   std::vector<std::string> values) {
  ScanPredicate p;
  p.column = std::move(col);
  p.op = Op::kStrIn;
  p.sset = std::move(values);
  return p;
}
ScanPredicate ScanPredicate::ColLt(std::string col, std::string col2) {
  ScanPredicate p;
  p.column = std::move(col);
  p.op = Op::kColLt;
  p.column2 = std::move(col2);
  return p;
}
ScanPredicate ScanPredicate::ColNe(std::string col, std::string col2) {
  ScanPredicate p = ColLt(std::move(col), std::move(col2));
  p.op = Op::kColNe;
  return p;
}

bool EvalPredicate(const ScanPredicate& pred, const Table& table,
                   uint64_t row) {
  const Column& col = table.column(pred.column);
  switch (pred.op) {
    case ScanPredicate::Op::kEq:
    case ScanPredicate::Op::kNe:
    case ScanPredicate::Op::kLt:
    case ScanPredicate::Op::kLe:
    case ScanPredicate::Op::kGt:
    case ScanPredicate::Op::kGe: {
      if (pred.is_double || col.type() == DataType::kFloat64) {
        double v = col.GetFloat64(row);
        double ref = pred.is_double ? pred.d0 : static_cast<double>(pred.i0);
        switch (pred.op) {
          case ScanPredicate::Op::kEq: return v == ref;
          case ScanPredicate::Op::kNe: return v != ref;
          case ScanPredicate::Op::kLt: return v < ref;
          case ScanPredicate::Op::kLe: return v <= ref;
          case ScanPredicate::Op::kGt: return v > ref;
          default: return v >= ref;
        }
      }
      int64_t v = NumericCell(col, row);
      switch (pred.op) {
        case ScanPredicate::Op::kEq: return v == pred.i0;
        case ScanPredicate::Op::kNe: return v != pred.i0;
        case ScanPredicate::Op::kLt: return v < pred.i0;
        case ScanPredicate::Op::kLe: return v <= pred.i0;
        case ScanPredicate::Op::kGt: return v > pred.i0;
        default: return v >= pred.i0;
      }
    }
    case ScanPredicate::Op::kBetween:
      if (pred.is_double || col.type() == DataType::kFloat64) {
        double v = col.GetFloat64(row);
        return v >= pred.d0 && v <= pred.d1;
      } else {
        int64_t v = NumericCell(col, row);
        return v >= pred.i0 && v <= pred.i1;
      }
    case ScanPredicate::Op::kInSet: {
      int64_t v = NumericCell(col, row);
      return std::find(pred.iset.begin(), pred.iset.end(), v) !=
             pred.iset.end();
    }
    case ScanPredicate::Op::kStrEq:
      return TrimmedCell(col, row) == pred.s0;
    case ScanPredicate::Op::kStrNe:
      return TrimmedCell(col, row) != pred.s0;
    case ScanPredicate::Op::kStrPrefix:
      return TrimmedCell(col, row).substr(0, pred.s0.size()) == pred.s0;
    case ScanPredicate::Op::kStrSuffix: {
      std::string_view cell = TrimmedCell(col, row);
      return cell.size() >= pred.s0.size() &&
             cell.substr(cell.size() - pred.s0.size()) == pred.s0;
    }
    case ScanPredicate::Op::kStrContains:
      return TrimmedCell(col, row).find(pred.s0) != std::string_view::npos;
    case ScanPredicate::Op::kStrNotContains:
      return TrimmedCell(col, row).find(pred.s0) == std::string_view::npos;
    case ScanPredicate::Op::kStrIn: {
      std::string_view cell = TrimmedCell(col, row);
      for (const auto& s : pred.sset) {
        if (cell == s) return true;
      }
      return false;
    }
    case ScanPredicate::Op::kColLt:
      return NumericCell(col, row) <
             NumericCell(table.column(pred.column2), row);
    case ScanPredicate::Op::kColNe:
      return NumericCell(col, row) !=
             NumericCell(table.column(pred.column2), row);
  }
  return false;
}

}  // namespace pjoin
