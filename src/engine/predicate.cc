#include "engine/predicate.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <string_view>

#include "stats/stats_catalog.h"
#include "util/check.h"

namespace pjoin {

namespace {

// Trimmed view of a CHAR cell (values are space padded).
std::string_view TrimmedCell(const Column& col, uint64_t row) {
  const char* data = reinterpret_cast<const char*>(col.Raw(row));
  size_t len = col.width();
  while (len > 0 && data[len - 1] == ' ') --len;
  return std::string_view(data, len);
}

int64_t NumericCell(const Column& col, uint64_t row) {
  return col.width() == 8 ? col.GetInt64(row)
                          : static_cast<int64_t>(col.GetInt32(row));
}

// Sampled [min, max] of a column. Strided so estimation stays O(1)-ish even
// on large base tables; deterministic (no RNG) so repeated plans agree.
constexpr uint64_t kStatsSampleCap = 65536;

struct NumericRange {
  double min = 0;
  double max = 0;
  bool valid = false;
};

NumericRange SampleRange(const Column& col) {
  NumericRange r;
  const uint64_t n = col.size();
  if (n == 0) return r;
  const bool is_double = col.type() == DataType::kFloat64;
  if (!is_double && col.type() != DataType::kInt64 &&
      col.type() != DataType::kInt32 && col.type() != DataType::kDate) {
    return r;
  }
  const uint64_t step = n <= kStatsSampleCap ? 1 : n / kStatsSampleCap;
  r.valid = true;
  bool first = true;
  for (uint64_t i = 0; i < n; i += step) {
    double v = is_double ? col.GetFloat64(i)
                         : static_cast<double>(NumericCell(col, i));
    if (first) {
      r.min = r.max = v;
      first = false;
    } else {
      r.min = std::min(r.min, v);
      r.max = std::max(r.max, v);
    }
  }
  return r;
}

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

}  // namespace

ScanPredicate ScanPredicate::EqI(std::string col, int64_t v) {
  ScanPredicate p;
  p.column = std::move(col);
  p.op = Op::kEq;
  p.i0 = v;
  return p;
}
ScanPredicate ScanPredicate::NeI(std::string col, int64_t v) {
  ScanPredicate p = EqI(std::move(col), v);
  p.op = Op::kNe;
  return p;
}
ScanPredicate ScanPredicate::LtI(std::string col, int64_t v) {
  ScanPredicate p = EqI(std::move(col), v);
  p.op = Op::kLt;
  return p;
}
ScanPredicate ScanPredicate::LeI(std::string col, int64_t v) {
  ScanPredicate p = EqI(std::move(col), v);
  p.op = Op::kLe;
  return p;
}
ScanPredicate ScanPredicate::GtI(std::string col, int64_t v) {
  ScanPredicate p = EqI(std::move(col), v);
  p.op = Op::kGt;
  return p;
}
ScanPredicate ScanPredicate::GeI(std::string col, int64_t v) {
  ScanPredicate p = EqI(std::move(col), v);
  p.op = Op::kGe;
  return p;
}
ScanPredicate ScanPredicate::BetweenI(std::string col, int64_t lo, int64_t hi) {
  ScanPredicate p;
  p.column = std::move(col);
  p.op = Op::kBetween;
  p.i0 = lo;
  p.i1 = hi;
  return p;
}
ScanPredicate ScanPredicate::InI(std::string col, std::vector<int64_t> values) {
  ScanPredicate p;
  p.column = std::move(col);
  p.op = Op::kInSet;
  p.iset = std::move(values);
  return p;
}
ScanPredicate ScanPredicate::LtD(std::string col, double v) {
  ScanPredicate p;
  p.column = std::move(col);
  p.op = Op::kLt;
  p.is_double = true;
  p.d0 = v;
  return p;
}
ScanPredicate ScanPredicate::GtD(std::string col, double v) {
  ScanPredicate p = LtD(std::move(col), v);
  p.op = Op::kGt;
  return p;
}
ScanPredicate ScanPredicate::BetweenD(std::string col, double lo, double hi) {
  ScanPredicate p;
  p.column = std::move(col);
  p.op = Op::kBetween;
  p.is_double = true;
  p.d0 = lo;
  p.d1 = hi;
  return p;
}
ScanPredicate ScanPredicate::StrEq(std::string col, std::string v) {
  ScanPredicate p;
  p.column = std::move(col);
  p.op = Op::kStrEq;
  p.s0 = std::move(v);
  return p;
}
ScanPredicate ScanPredicate::StrNe(std::string col, std::string v) {
  ScanPredicate p = StrEq(std::move(col), std::move(v));
  p.op = Op::kStrNe;
  return p;
}
ScanPredicate ScanPredicate::StrPrefix(std::string col, std::string v) {
  ScanPredicate p = StrEq(std::move(col), std::move(v));
  p.op = Op::kStrPrefix;
  return p;
}
ScanPredicate ScanPredicate::StrSuffix(std::string col, std::string v) {
  ScanPredicate p = StrEq(std::move(col), std::move(v));
  p.op = Op::kStrSuffix;
  return p;
}
ScanPredicate ScanPredicate::StrContains(std::string col, std::string v) {
  ScanPredicate p = StrEq(std::move(col), std::move(v));
  p.op = Op::kStrContains;
  return p;
}
ScanPredicate ScanPredicate::StrNotContains(std::string col, std::string v) {
  ScanPredicate p = StrEq(std::move(col), std::move(v));
  p.op = Op::kStrNotContains;
  return p;
}
ScanPredicate ScanPredicate::StrIn(std::string col,
                                   std::vector<std::string> values) {
  ScanPredicate p;
  p.column = std::move(col);
  p.op = Op::kStrIn;
  p.sset = std::move(values);
  return p;
}
ScanPredicate ScanPredicate::ColLt(std::string col, std::string col2) {
  ScanPredicate p;
  p.column = std::move(col);
  p.op = Op::kColLt;
  p.column2 = std::move(col2);
  return p;
}
ScanPredicate ScanPredicate::ColNe(std::string col, std::string col2) {
  ScanPredicate p = ColLt(std::move(col), std::move(col2));
  p.op = Op::kColNe;
  return p;
}

bool ScanPredicate::operator==(const ScanPredicate& other) const {
  return column == other.column && op == other.op && i0 == other.i0 &&
         i1 == other.i1 && d0 == other.d0 && d1 == other.d1 &&
         is_double == other.is_double && iset == other.iset &&
         s0 == other.s0 && sset == other.sset && column2 == other.column2;
}

bool EvalPredicate(const ScanPredicate& pred, const Table& table,
                   uint64_t row) {
  const Column& col = table.column(pred.column);
  switch (pred.op) {
    case ScanPredicate::Op::kEq:
    case ScanPredicate::Op::kNe:
    case ScanPredicate::Op::kLt:
    case ScanPredicate::Op::kLe:
    case ScanPredicate::Op::kGt:
    case ScanPredicate::Op::kGe: {
      if (pred.is_double || col.type() == DataType::kFloat64) {
        double v = col.GetFloat64(row);
        double ref = pred.is_double ? pred.d0 : static_cast<double>(pred.i0);
        switch (pred.op) {
          case ScanPredicate::Op::kEq: return v == ref;
          case ScanPredicate::Op::kNe: return v != ref;
          case ScanPredicate::Op::kLt: return v < ref;
          case ScanPredicate::Op::kLe: return v <= ref;
          case ScanPredicate::Op::kGt: return v > ref;
          default: return v >= ref;
        }
      }
      int64_t v = NumericCell(col, row);
      switch (pred.op) {
        case ScanPredicate::Op::kEq: return v == pred.i0;
        case ScanPredicate::Op::kNe: return v != pred.i0;
        case ScanPredicate::Op::kLt: return v < pred.i0;
        case ScanPredicate::Op::kLe: return v <= pred.i0;
        case ScanPredicate::Op::kGt: return v > pred.i0;
        default: return v >= pred.i0;
      }
    }
    case ScanPredicate::Op::kBetween:
      if (pred.is_double || col.type() == DataType::kFloat64) {
        double v = col.GetFloat64(row);
        return v >= pred.d0 && v <= pred.d1;
      } else {
        int64_t v = NumericCell(col, row);
        return v >= pred.i0 && v <= pred.i1;
      }
    case ScanPredicate::Op::kInSet: {
      int64_t v = NumericCell(col, row);
      return std::find(pred.iset.begin(), pred.iset.end(), v) !=
             pred.iset.end();
    }
    case ScanPredicate::Op::kStrEq:
      return TrimmedCell(col, row) == pred.s0;
    case ScanPredicate::Op::kStrNe:
      return TrimmedCell(col, row) != pred.s0;
    case ScanPredicate::Op::kStrPrefix:
      return TrimmedCell(col, row).substr(0, pred.s0.size()) == pred.s0;
    case ScanPredicate::Op::kStrSuffix: {
      std::string_view cell = TrimmedCell(col, row);
      return cell.size() >= pred.s0.size() &&
             cell.substr(cell.size() - pred.s0.size()) == pred.s0;
    }
    case ScanPredicate::Op::kStrContains:
      return TrimmedCell(col, row).find(pred.s0) != std::string_view::npos;
    case ScanPredicate::Op::kStrNotContains:
      return TrimmedCell(col, row).find(pred.s0) == std::string_view::npos;
    case ScanPredicate::Op::kStrIn: {
      std::string_view cell = TrimmedCell(col, row);
      for (const auto& s : pred.sset) {
        if (cell == s) return true;
      }
      return false;
    }
    case ScanPredicate::Op::kColLt:
      return NumericCell(col, row) <
             NumericCell(table.column(pred.column2), row);
    case ScanPredicate::Op::kColNe:
      return NumericCell(col, row) !=
             NumericCell(table.column(pred.column2), row);
  }
  return false;
}

namespace {

// Histogram-backed estimate for the numeric comparison ops. Returns false
// when the column has no histogram (non-numeric, stats disabled) and the
// caller should use the range heuristic instead.
bool HistogramSelectivity(const ScanPredicate& pred, const ColumnStats& cs,
                          double* out) {
  if (!cs.numeric || !cs.histogram.valid()) return false;
  const EqualHeightHistogram& h = cs.histogram;
  const bool integral = h.integral();
  const double ref =
      pred.is_double ? pred.d0 : static_cast<double>(pred.i0);
  switch (pred.op) {
    case ScanPredicate::Op::kEq:
      *out = h.EqFraction(ref);
      return true;
    case ScanPredicate::Op::kNe:
      *out = 1.0 - h.EqFraction(ref);
      return true;
    case ScanPredicate::Op::kLt:
      *out = integral ? h.LeFraction(ref - 1.0) : h.LeFraction(ref);
      return true;
    case ScanPredicate::Op::kLe:
      *out = h.LeFraction(ref);
      return true;
    case ScanPredicate::Op::kGt:
      *out = 1.0 - h.LeFraction(ref);
      return true;
    case ScanPredicate::Op::kGe:
      *out = integral ? 1.0 - h.LeFraction(ref - 1.0)
                      : 1.0 - h.LeFraction(ref);
      return true;
    case ScanPredicate::Op::kBetween: {
      const double lo =
          pred.is_double ? pred.d0 : static_cast<double>(pred.i0);
      const double hi =
          pred.is_double ? pred.d1 : static_cast<double>(pred.i1);
      *out = h.BetweenFraction(lo, hi);
      return true;
    }
    case ScanPredicate::Op::kInSet: {
      double f = 0;
      for (int64_t v : pred.iset) f += h.EqFraction(static_cast<double>(v));
      *out = Clamp01(f);
      return true;
    }
    default:
      return false;
  }
}

// Sketch-backed estimate for string equality/membership: 1/d per sought
// value (uniform-over-distinct assumption).
bool SketchStringSelectivity(const ScanPredicate& pred, const ColumnStats& cs,
                             double* out) {
  if (cs.distinct == 0) return false;
  const double eq = 1.0 / static_cast<double>(cs.distinct);
  switch (pred.op) {
    case ScanPredicate::Op::kStrEq:
      *out = Clamp01(eq);
      return true;
    case ScanPredicate::Op::kStrNe:
      *out = Clamp01(1.0 - eq);
      return true;
    case ScanPredicate::Op::kStrIn:
      *out = Clamp01(static_cast<double>(pred.sset.size()) * eq);
      return true;
    default:
      return false;
  }
}

const ColumnStats* LookupColumnStats(const Table& table,
                                     const std::string& column) {
  const TableStats* ts = StatsCatalog::Global().Get(table);
  if (ts == nullptr) return nullptr;
  const int idx = table.schema().Find(column);
  if (idx < 0 || idx >= static_cast<int>(ts->columns.size())) return nullptr;
  return &ts->columns[idx];
}

}  // namespace

double EstimateSelectivity(const ScanPredicate& pred, const Table& table) {
  if (const ColumnStats* cs = LookupColumnStats(table, pred.column)) {
    double s;
    if (HistogramSelectivity(pred, *cs, &s)) return Clamp01(s);
    if (SketchStringSelectivity(pred, *cs, &s)) return Clamp01(s);
  }
  const Column& col = table.column(pred.column);
  switch (pred.op) {
    case ScanPredicate::Op::kEq:
    case ScanPredicate::Op::kNe:
    case ScanPredicate::Op::kLt:
    case ScanPredicate::Op::kLe:
    case ScanPredicate::Op::kGt:
    case ScanPredicate::Op::kGe:
    case ScanPredicate::Op::kBetween:
    case ScanPredicate::Op::kInSet: {
      NumericRange r = SampleRange(col);
      if (!r.valid) return 0.5;
      // `domain` treats integer columns as dense (TPC-H keys/dates are);
      // the +1 keeps point predicates meaningful on one-value domains.
      const double domain = r.max - r.min + 1.0;
      const double eq = Clamp01(1.0 / domain);
      const double ref = pred.is_double ? pred.d0 : static_cast<double>(pred.i0);
      switch (pred.op) {
        case ScanPredicate::Op::kEq:
          return eq;
        case ScanPredicate::Op::kNe:
          return 1.0 - eq;
        case ScanPredicate::Op::kLt:
          return Clamp01((ref - r.min) / domain);
        case ScanPredicate::Op::kLe:
          return Clamp01((ref - r.min + 1.0) / domain);
        case ScanPredicate::Op::kGt:
          return Clamp01((r.max - ref) / domain);
        case ScanPredicate::Op::kGe:
          return Clamp01((r.max - ref + 1.0) / domain);
        case ScanPredicate::Op::kBetween: {
          const double lo = pred.is_double ? pred.d0
                                           : static_cast<double>(pred.i0);
          const double hi = pred.is_double ? pred.d1
                                           : static_cast<double>(pred.i1);
          if (hi < lo) return 0.0;
          const double clo = std::max(lo, r.min);
          const double chi = std::min(hi, r.max);
          if (chi < clo) return 0.0;
          return Clamp01((chi - clo + 1.0) / domain);
        }
        default:  // kInSet
          return Clamp01(static_cast<double>(pred.iset.size()) * eq);
      }
    }
    case ScanPredicate::Op::kStrEq:
      return 0.05;
    case ScanPredicate::Op::kStrNe:
      return 0.95;
    case ScanPredicate::Op::kStrPrefix:
    case ScanPredicate::Op::kStrSuffix:
    case ScanPredicate::Op::kStrContains:
      return 0.1;
    case ScanPredicate::Op::kStrNotContains:
      return 0.9;
    case ScanPredicate::Op::kStrIn:
      return Clamp01(0.05 * static_cast<double>(pred.sset.size()));
    case ScanPredicate::Op::kColLt:
      // SQL folklore: an open comparison of two columns keeps about a third.
      return 1.0 / 3.0;
    case ScanPredicate::Op::kColNe:
      return 0.9;
  }
  return 0.5;
}

double EstimateConjunctionSelectivity(const std::vector<ScanPredicate>& all,
                                      const Table& table) {
  if (all.empty()) return 1.0;
  // Exact duplicates are one predicate: a pushdown that replayed the same
  // condition on a scan must not pay its selectivity twice (the product
  // below would square it).
  std::vector<const ScanPredicate*> preds;
  preds.reserve(all.size());
  for (const ScanPredicate& pred : all) {
    bool duplicate = false;
    for (const ScanPredicate* kept : preds) {
      if (*kept == pred) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) preds.push_back(&pred);
  }
  const TableStats* ts = StatsCatalog::Global().Get(table);
  if (ts == nullptr) {
    // Pre-statistics behavior: plain multiplicative independence.
    double s = 1.0;
    for (const ScanPredicate* pred : preds) {
      s *= EstimateSelectivity(*pred, table);
    }
    return Clamp01(s);
  }
  // Per-column groups: conjunctions on one column (range pairs, eq + range)
  // are never independent, so a group's selectivity is its minimum.
  // std::map keeps the grouping order deterministic.
  std::map<std::string, double> group;
  for (const ScanPredicate* pred : preds) {
    const double s = EstimateSelectivity(*pred, table);
    auto [it, inserted] = group.emplace(pred->column, s);
    if (!inserted) it->second = std::min(it->second, s);
  }
  if (group.size() == 1) return Clamp01(group.begin()->second);

  // Correlation evidence across columns: under independence the joint
  // domain needs up to prod(d_i) distinct combinations; if that exceeds the
  // table's row count, the columns cannot vary freely and the independence
  // product would overshoot. Unknown distinct counts count as evidence too
  // (we cannot rule correlation out).
  double distinct_product = 1.0;
  bool correlated = false;
  for (const auto& [column, s] : group) {
    const int idx = table.schema().Find(column);
    const uint64_t d =
        idx >= 0 && idx < static_cast<int>(ts->columns.size())
            ? ts->columns[idx].distinct
            : 0;
    if (d == 0) {
      correlated = true;
      break;
    }
    distinct_product *= static_cast<double>(d);
    if (distinct_product > static_cast<double>(ts->rows)) {
      correlated = true;
      break;
    }
  }
  std::vector<double> sels;
  sels.reserve(group.size());
  for (const auto& [column, s] : group) sels.push_back(s);
  std::sort(sels.begin(), sels.end());
  double combined = sels[0];
  if (correlated) {
    // Exponential backoff (s0 * s1^1/2 * s2^1/4 ...): damps the tail
    // instead of trusting it, and is <= s0 by construction.
    double weight = 0.5;
    for (size_t i = 1; i < sels.size(); ++i) {
      combined *= std::pow(sels[i], weight);
      weight *= 0.5;
    }
  } else {
    for (size_t i = 1; i < sels.size(); ++i) combined *= sels[i];
  }
  return Clamp01(combined);
}

}  // namespace pjoin
