// Table-scan predicates.
//
// Umbra's table scan reads only the needed columns, filters them with
// vectorizable column-at-a-time predicates, and stitches surviving rows into
// tuples (Section 4.2). These descriptors cover every base-table predicate
// appearing in our TPC-H plans; anything more exotic becomes a generic
// FilterOp lambda later in the pipeline.
#ifndef PJOIN_ENGINE_PREDICATE_H_
#define PJOIN_ENGINE_PREDICATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"

namespace pjoin {

struct ScanPredicate {
  enum class Op {
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kBetween,      // [i0, i1] or [d0, d1] inclusive
    kInSet,        // integer membership
    kStrEq,
    kStrNe,
    kStrPrefix,    // LIKE 'foo%'
    kStrSuffix,    // LIKE '%foo'
    kStrContains,  // LIKE '%foo%'
    kStrNotContains,
    kStrIn,        // string membership
    kColLt,        // column < column2 (e.g., l_commitdate < l_receiptdate)
    kColNe,        // column <> column2
  };

  std::string column;
  Op op = Op::kEq;
  // Numeric operands (dates use day numbers in i0/i1).
  int64_t i0 = 0;
  int64_t i1 = 0;
  double d0 = 0;
  double d1 = 0;
  bool is_double = false;
  std::vector<int64_t> iset;
  std::string s0;
  std::vector<std::string> sset;
  std::string column2;  // second column for kCol* ops

  // Structural equality: two predicates are equal when they test the same
  // columns with the same operator and operands. The rewrite pass relies on
  // this both for plan equality and to drop duplicate predicates a pushdown
  // created before estimating conjunction selectivity.
  bool operator==(const ScanPredicate& other) const;

  // --- factories ----------------------------------------------------------
  static ScanPredicate EqI(std::string col, int64_t v);
  static ScanPredicate NeI(std::string col, int64_t v);
  static ScanPredicate LtI(std::string col, int64_t v);
  static ScanPredicate LeI(std::string col, int64_t v);
  static ScanPredicate GtI(std::string col, int64_t v);
  static ScanPredicate GeI(std::string col, int64_t v);
  static ScanPredicate BetweenI(std::string col, int64_t lo, int64_t hi);
  static ScanPredicate InI(std::string col, std::vector<int64_t> values);
  static ScanPredicate LtD(std::string col, double v);
  static ScanPredicate GtD(std::string col, double v);
  static ScanPredicate BetweenD(std::string col, double lo, double hi);
  static ScanPredicate StrEq(std::string col, std::string v);
  static ScanPredicate StrNe(std::string col, std::string v);
  static ScanPredicate StrPrefix(std::string col, std::string v);
  static ScanPredicate StrSuffix(std::string col, std::string v);
  static ScanPredicate StrContains(std::string col, std::string v);
  static ScanPredicate StrNotContains(std::string col, std::string v);
  static ScanPredicate StrIn(std::string col, std::vector<std::string> values);
  static ScanPredicate ColLt(std::string col, std::string col2);
  static ScanPredicate ColNe(std::string col, std::string col2);
};

// Evaluates one predicate against table row `row`. Used column-at-a-time by
// the scan; exposed for testing.
bool EvalPredicate(const ScanPredicate& pred, const Table& table,
                   uint64_t row);

// Estimated fraction of rows passing `pred`, in [0, 1]. With the statistics
// catalog enabled (PJOIN_STATS, default on) numeric comparisons answer from
// per-column equal-height histograms and string equality/membership from
// distinct-count sketches; otherwise numeric comparisons interpolate against
// a sampled column [min, max] range (uniformity assumption) and strings fall
// back to fixed heuristics. Deterministic for a given table, so plan
// estimates — and the join-advisor decisions built on them — are stable
// across runs.
double EstimateSelectivity(const ScanPredicate& pred, const Table& table);

// Combined selectivity of a predicate conjunction, in [0, 1]. Without
// statistics this is the plain product over EstimateSelectivity
// (independence assumption, the pre-statistics behavior). With statistics,
// predicates on the same column combine by their minimum, and across
// columns the distinct-count sketches arbitrate: when the product of the
// involved columns' distinct counts exceeds the row count — evidence the
// columns cannot vary independently — the per-column selectivities combine
// with exponential backoff (s0 * s1^1/2 * s2^1/4 ... over ascending
// values), which is always clamped by the most selective single column.
double EstimateConjunctionSelectivity(const std::vector<ScanPredicate>& preds,
                                      const Table& table);

}  // namespace pjoin

#endif  // PJOIN_ENGINE_PREDICATE_H_
