#include "engine/sampler.h"

#include <algorithm>
#include <cmath>

#include "storage/table.h"

namespace pjoin {
namespace {

bool IsIntegerType(DataType type) {
  return type == DataType::kInt64 || type == DataType::kInt32 ||
         type == DataType::kDate;
}

bool IsNumericType(DataType type) {
  return IsIntegerType(type) || type == DataType::kFloat64;
}

double NumericValue(const Column& col, uint64_t row) {
  switch (col.type()) {
    case DataType::kInt64:
      return static_cast<double>(col.GetInt64(row));
    case DataType::kInt32:
    case DataType::kDate:
      return static_cast<double>(col.GetInt32(row));
    case DataType::kFloat64:
      return col.GetFloat64(row);
    default:
      return 0.0;
  }
}

int64_t IntegerValue(const Column& col, uint64_t row) {
  return col.type() == DataType::kInt64
             ? col.GetInt64(row)
             : static_cast<int64_t>(col.GetInt32(row));
}

}  // namespace

SkewEstimate ReservoirSampler::Estimate() const {
  SkewEstimate est;
  if (sample_.empty()) return est;
  est.present = true;
  est.table_rows = rows_seen_;
  est.sample_rows = sample_.size();

  // Key frequencies: sort a copy and walk runs.
  std::vector<int64_t> keys;
  keys.reserve(sample_.size());
  for (const auto& [k, p] : sample_) keys.push_back(k);
  std::sort(keys.begin(), keys.end());
  std::vector<std::pair<uint64_t, int64_t>> counts;  // (count, key)
  for (size_t i = 0; i < keys.size();) {
    size_t j = i;
    while (j < keys.size() && keys[j] == keys[i]) ++j;
    counts.emplace_back(j - i, keys[i]);
    i = j;
  }
  est.distinct_keys = counts.size();
  // Hottest first; ties broken by key value so the estimate is deterministic.
  std::sort(counts.begin(), counts.end(),
            [](const auto& a, const auto& b) {
              return a.first != b.first ? a.first > b.first
                                        : a.second < b.second;
            });
  const double n = static_cast<double>(sample_.size());
  est.top_share = static_cast<double>(counts[0].first) / n;
  const size_t k = std::min<size_t>(counts.size(), kSkewTopK);
  for (size_t i = 0; i < k; ++i) {
    const double share = static_cast<double>(counts[i].first) / n;
    est.topk_share += share;
    est.top.push_back(SkewHeavyKey{counts[i].second, share});
  }

  // |Pearson r| between key and payload over the sample; zero variance on
  // either axis (constant column, or no payload column at all) yields 0.
  double sx = 0, sy = 0;
  for (const auto& [kx, py] : sample_) {
    sx += static_cast<double>(kx);
    sy += py;
  }
  const double mx = sx / n;
  const double my = sy / n;
  double cov = 0, vx = 0, vy = 0;
  for (const auto& [kx, py] : sample_) {
    const double dx = static_cast<double>(kx) - mx;
    const double dy = py - my;
    cov += dx * dy;
    vx += dx * dx;
    vy += dy * dy;
  }
  if (vx > 0 && vy > 0) {
    est.key_payload_corr = std::fabs(cov / std::sqrt(vx * vy));
  }
  return est;
}

SkewEstimate SampleBuildColumn(const Table& table, int key_col,
                               uint64_t sample_size, uint64_t seed) {
  SkewEstimate empty;
  if (sample_size == 0 || table.num_rows() == 0) return empty;
  if (key_col < 0 ||
      key_col >= static_cast<int>(table.schema().num_columns())) {
    return empty;
  }
  const Column& keys = table.column(static_cast<uint32_t>(key_col));
  if (!IsIntegerType(keys.type())) return empty;

  const Column* payload = nullptr;
  for (uint32_t c = 0; c < table.schema().num_columns(); ++c) {
    if (static_cast<int>(c) == key_col) continue;
    if (IsNumericType(table.column(c).type())) {
      payload = &table.column(c);
      break;
    }
  }

  ReservoirSampler sampler(sample_size, seed);
  const uint64_t rows = table.num_rows();
  for (uint64_t r = 0; r < rows; ++r) {
    const double p = payload != nullptr ? NumericValue(*payload, r) : 0.0;
    sampler.Add(IntegerValue(keys, r), p);
  }
  return sampler.Estimate();
}

}  // namespace pjoin
