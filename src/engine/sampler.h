// Build-side reservoir sampling for the join advisor's skew estimate.
//
// The paper's cost model (and ours, until this pass existed) scores the
// partitioned strategies as if keys were uniform; Table 4 shows the radix
// join collapsing when they are not. Following the NOCAP/JSPIM recipe, a
// ~1k-row reservoir sample (Vitter's algorithm R, fixed seed so repeated
// EXPLAIN/metrics runs are byte-identical) estimates the heavy-hitter shares
// and the key–payload correlation before any strategy is chosen.
#ifndef PJOIN_ENGINE_SAMPLER_H_
#define PJOIN_ENGINE_SAMPLER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace pjoin {

class Table;

// One estimated heavy key: its value and its share of the sampled rows.
struct SkewHeavyKey {
  int64_t key = 0;
  double share = 0.0;
};

// How many of the hottest keys the estimate keeps (and `topk_share` covers).
inline constexpr int kSkewTopK = 16;

// Fixed sampling seed: the advisor runs once per EXPLAIN/execute and its
// output must not change between identical runs.
inline constexpr uint64_t kSkewSampleSeed = 0x5eed5a11u;

// Summary statistics of a sampled build-side key column.
struct SkewEstimate {
  bool present = false;       // a sample was actually taken
  uint64_t table_rows = 0;    // rows the sampler saw (reservoir input size)
  uint64_t sample_rows = 0;   // rows kept in the reservoir
  uint64_t distinct_keys = 0; // distinct keys within the sample
  double top_share = 0.0;     // sampled share of the single hottest key
  double topk_share = 0.0;    // sampled share of the kSkewTopK hottest keys
  double key_payload_corr = 0.0;  // |Pearson r| of (key, payload); 0 if none
  std::vector<SkewHeavyKey> top;  // hottest keys, descending share
};

// Fixed-capacity reservoir over (key, payload) pairs — algorithm R.
class ReservoirSampler {
 public:
  explicit ReservoirSampler(uint64_t capacity, uint64_t seed = kSkewSampleSeed)
      : capacity_(capacity), rng_(seed) {}

  void Add(int64_t key, double payload) {
    ++rows_seen_;
    if (sample_.size() < capacity_) {
      sample_.emplace_back(key, payload);
      return;
    }
    const uint64_t slot = rng_.Below(rows_seen_);
    if (slot < capacity_) sample_[slot] = {key, payload};
  }

  uint64_t rows_seen() const { return rows_seen_; }
  uint64_t sample_size() const { return sample_.size(); }

  // Summarizes the reservoir: heavy-key shares, distinct count, and the
  // absolute Pearson correlation between key and payload values.
  SkewEstimate Estimate() const;

 private:
  uint64_t capacity_;
  Rng rng_;
  uint64_t rows_seen_ = 0;
  std::vector<std::pair<int64_t, double>> sample_;
};

// Reservoir-samples column `key_col` of `table` (must be an integer-typed
// column; the first *other* numeric column, if any, supplies the correlation
// payload). Returns present = false for empty tables, non-integer keys, or
// sample_size == 0.
SkewEstimate SampleBuildColumn(const Table& table, int key_col,
                               uint64_t sample_size,
                               uint64_t seed = kSkewSampleSeed);

}  // namespace pjoin

#endif  // PJOIN_ENGINE_SAMPLER_H_
