#include "engine/scan.h"

#include <algorithm>

#include "kernels/kernels.h"
#include "util/check.h"

namespace pjoin {

TableScanSource::TableScanSource(const Table* table, const RowLayout* layout,
                                 std::vector<ScanPredicate> predicates,
                                 std::vector<CodedKeyEmit> coded_keys)
    : table_(table), layout_(layout), predicates_(std::move(predicates)) {
  EncodingCatalog& catalog = EncodingCatalog::Global();
  const std::string tid_name = TidColumnName(table->name());
  for (int f = 0; f < layout_->num_fields(); ++f) {
    const RowField& field = layout_->field(f);
    FieldPlan plan;
    if (field.name == tid_name) {
      plan.kind = FieldPlan::Kind::kTid;
      fields_.push_back(plan);
      continue;
    }
    plan.column = table_->schema().IndexOf(field.name);
    const CodedKeyEmit* coded = nullptr;
    for (const auto& ck : coded_keys) {
      if (ck.name == field.name) coded = &ck;
    }
    if (coded != nullptr) {
      // The field carries the 4-byte code, not the CHAR value; the layout
      // was built with the overlaid width, so the usual width check does
      // not apply.
      PJOIN_CHECK(field.width == 4);
      plan.kind = FieldPlan::Kind::kCode;
      plan.enc = coded->enc;
      plan.remap = coded->remap;
      read_width_ += plan.enc->code_width;
      plain_read_width_ += plan.enc->value_width;
      encoded_ = true;
      fields_.push_back(plan);
      continue;
    }
    PJOIN_CHECK(table_->column(plan.column).width() == field.width);
    const EncodedColumn* enc = catalog.GetColumn(*table_, plan.column);
    if (enc != nullptr) {
      plan.kind = enc->kind == EncodedColumn::Kind::kDict
                      ? FieldPlan::Kind::kDictValue
                      : FieldPlan::Kind::kForValue;
      plan.enc = enc;
      read_width_ += enc->code_width;
      plain_read_width_ += enc->value_width;
      encoded_ = true;
    } else {
      read_width_ += field.width;
      plain_read_width_ += field.width;
    }
    fields_.push_back(plan);
  }

  // Predicate columns are read too, even if not emitted.
  for (const auto& pred : predicates_) {
    if (layout_->Find(pred.column) < 0) {
      const int col = table_->schema().IndexOf(pred.column);
      const EncodedColumn* enc = catalog.GetColumn(*table_, col);
      read_width_ += enc != nullptr ? enc->code_width
                                    : table_->column(col).width();
      plain_read_width_ += table_->column(col).width();
    }
  }

  for (const auto& pred : predicates_) {
    PredPlan plan;
    const bool two_column = pred.op == ScanPredicate::Op::kColLt ||
                            pred.op == ScanPredicate::Op::kColNe;
    const int col = table_->schema().IndexOf(pred.column);
    const EncodedColumn* enc =
        two_column ? nullptr : catalog.GetColumn(*table_, col);
    if (enc != nullptr && enc->kind == EncodedColumn::Kind::kDict) {
      // The predicate runs once per distinct value, against the dictionary
      // (whose single column carries the source column's name, so
      // EvalPredicate applies bit-identically); rows then test one bit.
      plan.kind = PredPlan::Kind::kDictBitmap;
      plan.enc = enc;
      plan.bitmap.assign((enc->ndv + 63) / 64, 0);
      for (uint64_t code = 0; code < enc->ndv; ++code) {
        if (EvalPredicate(pred, *enc->dict, code)) {
          plan.bitmap[code >> 6] |= uint64_t{1} << (code & 63);
        }
      }
      encoded_ = true;
    } else if (enc != nullptr && !pred.is_double &&
               (pred.op == ScanPredicate::Op::kEq ||
                pred.op == ScanPredicate::Op::kNe ||
                pred.op == ScanPredicate::Op::kLt ||
                pred.op == ScanPredicate::Op::kLe ||
                pred.op == ScanPredicate::Op::kGt ||
                pred.op == ScanPredicate::Op::kGe ||
                pred.op == ScanPredicate::Op::kBetween ||
                pred.op == ScanPredicate::Op::kInSet)) {
      // FOR columns decode per row (ref + narrow delta) instead of reading
      // the full-width value.
      plan.kind = PredPlan::Kind::kForDecode;
      plan.enc = enc;
      encoded_ = true;
    }
    pred_plans_.push_back(std::move(plan));
  }
}

bool TableScanSource::EvalPredAt(size_t p, uint64_t row) const {
  const PredPlan& plan = pred_plans_[p];
  switch (plan.kind) {
    case PredPlan::Kind::kPlain:
      return EvalPredicate(predicates_[p], *table_, row);
    case PredPlan::Kind::kDictBitmap: {
      const uint32_t code = plan.enc->CodeAt(row);
      return (plan.bitmap[code >> 6] >> (code & 63)) & 1;
    }
    case PredPlan::Kind::kForDecode: {
      const ScanPredicate& pred = predicates_[p];
      const int64_t v =
          plan.enc->ref + static_cast<int64_t>(plan.enc->CodeAt(row));
      switch (pred.op) {
        case ScanPredicate::Op::kEq: return v == pred.i0;
        case ScanPredicate::Op::kNe: return v != pred.i0;
        case ScanPredicate::Op::kLt: return v < pred.i0;
        case ScanPredicate::Op::kLe: return v <= pred.i0;
        case ScanPredicate::Op::kGt: return v > pred.i0;
        case ScanPredicate::Op::kGe: return v >= pred.i0;
        case ScanPredicate::Op::kBetween:
          return v >= pred.i0 && v <= pred.i1;
        default:  // kInSet (the plan is only built for the ops above)
          return std::find(pred.iset.begin(), pred.iset.end(), v) !=
                 pred.iset.end();
      }
    }
  }
  return false;
}

void TableScanSource::Prepare(ExecContext& exec) {
  (void)exec;
  queue_.Reset(table_->num_rows());
  rows_scanned_.store(0, std::memory_order_relaxed);
  rows_passed_.store(0, std::memory_order_relaxed);
  values_decoded_.store(0, std::memory_order_relaxed);
  codes_emitted_.store(0, std::memory_order_relaxed);
}

bool TableScanSource::ProduceMorsel(Operator& consumer, ThreadContext& ctx) {
  Morsel m = queue_.Next();
  if (m.empty()) return false;

  // Column-at-a-time predicate evaluation over the morsel: start with all
  // rows selected, narrow with each predicate.
  std::vector<uint32_t> selection;
  selection.reserve(m.size());
  if (predicates_.empty()) {
    for (uint64_t r = m.begin; r < m.end; ++r) {
      selection.push_back(static_cast<uint32_t>(r - m.begin));
    }
  } else {
    for (uint64_t r = m.begin; r < m.end; ++r) {
      if (EvalPredAt(0, r)) {
        selection.push_back(static_cast<uint32_t>(r - m.begin));
      }
    }
    for (size_t p = 1; p < predicates_.size() && !selection.empty(); ++p) {
      size_t kept = 0;
      for (uint32_t idx : selection) {
        if (EvalPredAt(p, m.begin + idx)) {
          selection[kept++] = idx;
        }
      }
      selection.resize(kept);
    }
  }

  rows_scanned_.fetch_add(m.size(), std::memory_order_relaxed);
  rows_passed_.fetch_add(selection.size(), std::memory_order_relaxed);
  ctx.exec->AddSourceTuples(m.size());
  ctx.bytes->AddRead(JoinPhase::kProbePipeline, m.size() * read_width_);

  if (selection.empty()) return true;

  // Decode encoded fields column-at-a-time for the surviving rows: unpack
  // codes (contiguously through the kernel when nothing was filtered),
  // remap join-key codes, and gather dictionary values, so the stitch loop
  // below only copies.
  const uint32_t n = static_cast<uint32_t>(selection.size());
  const bool dense = n == m.size();
  const SimdKernels& simd = ActiveKernels();
  std::vector<std::vector<uint32_t>> codes(fields_.size());
  std::vector<std::vector<std::byte>> gathered(fields_.size());
  uint64_t decoded = 0, emitted = 0;
  for (size_t f = 0; f < fields_.size(); ++f) {
    const FieldPlan& plan = fields_[f];
    if (plan.enc == nullptr) continue;
    std::vector<uint32_t>& c = codes[f];
    c.resize(n);
    if (dense) {
      simd.unpack_codes(
          plan.enc->codes.data() + m.begin * plan.enc->code_width,
          plan.enc->code_width, n, c.data());
    } else {
      for (uint32_t i = 0; i < n; ++i) {
        c[i] = plan.enc->CodeAt(m.begin + selection[i]);
      }
    }
    switch (plan.kind) {
      case FieldPlan::Kind::kCode:
        if (plan.remap != nullptr) {
          for (uint32_t i = 0; i < n; ++i) c[i] = (*plan.remap)[c[i]];
        }
        emitted += n;
        break;
      case FieldPlan::Kind::kDictValue: {
        std::vector<std::byte>& g = gathered[f];
        g.resize(static_cast<size_t>(n) * plan.enc->value_width);
        simd.dict_gather(plan.enc->dict->column(0).Raw(0),
                         plan.enc->value_width, c.data(), n, g.data());
        decoded += n;
        break;
      }
      default:  // kForValue decodes in the stitch loop
        decoded += n;
        break;
    }
  }
  if (decoded > 0) values_decoded_.fetch_add(decoded, std::memory_order_relaxed);
  if (emitted > 0) codes_emitted_.fetch_add(emitted, std::memory_order_relaxed);

  // Stitch surviving rows field-by-field into batches.
  BatchScratch scratch;
  scratch.Bind(layout_);
  Batch batch = scratch.Start();
  for (uint32_t si = 0; si < n; ++si) {
    const uint64_t r = m.begin + selection[si];
    std::byte* slot = scratch.AppendSlot(batch);
    for (size_t f = 0; f < fields_.size(); ++f) {
      const FieldPlan& plan = fields_[f];
      const int fi = static_cast<int>(f);
      switch (plan.kind) {
        case FieldPlan::Kind::kTid:
          // Tuple ids are stored +1 so that zero (the null padding of outer
          // joins) is distinguishable from row 0.
          layout_->SetInt64(slot, fi, static_cast<int64_t>(r) + 1);
          break;
        case FieldPlan::Kind::kPlain:
          layout_->SetChar(slot, fi, table_->column(plan.column).Raw(r));
          break;
        case FieldPlan::Kind::kCode:
          layout_->SetInt32(slot, fi, static_cast<int32_t>(codes[f][si]));
          break;
        case FieldPlan::Kind::kDictValue:
          layout_->SetChar(
              slot, fi,
              gathered[f].data() +
                  static_cast<size_t>(si) * plan.enc->value_width);
          break;
        case FieldPlan::Kind::kForValue: {
          const int64_t v =
              plan.enc->ref + static_cast<int64_t>(codes[f][si]);
          if (layout_->field(fi).width == 8) {
            layout_->SetInt64(slot, fi, v);
          } else {
            layout_->SetInt32(slot, fi, static_cast<int32_t>(v));
          }
          break;
        }
      }
    }
    if (scratch.Full(batch)) {
      PushOut(consumer, batch, ctx);
      batch = scratch.Start();
    }
  }
  if (batch.size > 0) PushOut(consumer, batch, ctx);
  return true;
}

}  // namespace pjoin
