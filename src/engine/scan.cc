#include "engine/scan.h"

#include "util/check.h"

namespace pjoin {

TableScanSource::TableScanSource(const Table* table, const RowLayout* layout,
                                 std::vector<ScanPredicate> predicates)
    : table_(table), layout_(layout), predicates_(std::move(predicates)) {
  const std::string tid_name = TidColumnName(table->name());
  for (int f = 0; f < layout_->num_fields(); ++f) {
    const RowField& field = layout_->field(f);
    if (field.name == tid_name) {
      field_columns_.push_back(-1);
      continue;
    }
    int col = table_->schema().IndexOf(field.name);
    PJOIN_CHECK(table_->column(col).width() == field.width);
    field_columns_.push_back(col);
    read_width_ += field.width;
  }
  // Predicate columns are read too, even if not emitted.
  for (const auto& pred : predicates_) {
    if (layout_->Find(pred.column) < 0) {
      read_width_ += table_->column(pred.column).width();
    }
  }
}

void TableScanSource::Prepare(ExecContext& exec) {
  (void)exec;
  queue_.Reset(table_->num_rows());
  rows_scanned_.store(0, std::memory_order_relaxed);
  rows_passed_.store(0, std::memory_order_relaxed);
}

bool TableScanSource::ProduceMorsel(Operator& consumer, ThreadContext& ctx) {
  Morsel m = queue_.Next();
  if (m.empty()) return false;

  // Column-at-a-time predicate evaluation over the morsel: start with all
  // rows selected, narrow with each predicate.
  std::vector<uint32_t> selection;
  selection.reserve(m.size());
  if (predicates_.empty()) {
    for (uint64_t r = m.begin; r < m.end; ++r) {
      selection.push_back(static_cast<uint32_t>(r - m.begin));
    }
  } else {
    const ScanPredicate& first = predicates_[0];
    for (uint64_t r = m.begin; r < m.end; ++r) {
      if (EvalPredicate(first, *table_, r)) {
        selection.push_back(static_cast<uint32_t>(r - m.begin));
      }
    }
    for (size_t p = 1; p < predicates_.size() && !selection.empty(); ++p) {
      const ScanPredicate& pred = predicates_[p];
      size_t kept = 0;
      for (uint32_t idx : selection) {
        if (EvalPredicate(pred, *table_, m.begin + idx)) {
          selection[kept++] = idx;
        }
      }
      selection.resize(kept);
    }
  }

  rows_scanned_.fetch_add(m.size(), std::memory_order_relaxed);
  rows_passed_.fetch_add(selection.size(), std::memory_order_relaxed);
  ctx.exec->AddSourceTuples(m.size());
  ctx.bytes->AddRead(JoinPhase::kProbePipeline, m.size() * read_width_);

  if (selection.empty()) return true;

  // Stitch surviving rows field-by-field into batches.
  BatchScratch scratch;
  scratch.Bind(layout_);
  Batch batch = scratch.Start();
  for (uint32_t idx : selection) {
    const uint64_t r = m.begin + idx;
    std::byte* slot = scratch.AppendSlot(batch);
    for (int f = 0; f < layout_->num_fields(); ++f) {
      int col = field_columns_[f];
      if (col < 0) {
        // Tuple ids are stored +1 so that zero (the null padding of outer
        // joins) is distinguishable from row 0.
        layout_->SetInt64(slot, f, static_cast<int64_t>(r) + 1);
      } else {
        layout_->SetChar(slot, f, table_->column(col).Raw(r));
      }
    }
    if (scratch.Full(batch)) {
      PushOut(consumer, batch, ctx);
      batch = scratch.Start();
    }
  }
  if (batch.size > 0) PushOut(consumer, batch, ctx);
  return true;
}

}  // namespace pjoin
