// Table scan: pipeline source over a columnar base table.
//
// Early materialization (the system default, Section 4.2): the scan reads
// only the required columns, evaluates the pushed-down predicates
// column-at-a-time over the morsel, and stitches surviving rows into
// row-format batches. With late materialization the scan additionally emits
// the tuple id so a LateLoadOp can fetch deferred columns after the joins.
#ifndef PJOIN_ENGINE_SCAN_H_
#define PJOIN_ENGINE_SCAN_H_

#include <string>
#include <vector>

#include "engine/predicate.h"
#include "exec/morsel.h"
#include "exec/pipeline.h"
#include "storage/table.h"

namespace pjoin {

class TableScanSource : public Source {
 public:
  // `layout` lists the output fields: table columns by name, plus optionally
  // one kInt64 field named `<table>.#tid` that receives the row id.
  TableScanSource(const Table* table, const RowLayout* layout,
                  std::vector<ScanPredicate> predicates);

  void Prepare(ExecContext& exec) override;
  bool ProduceMorsel(Operator& consumer, ThreadContext& ctx) override;
  const RowLayout* OutputLayout() const override { return layout_; }

  const char* MetricsName() const override { return "scan"; }
  std::string MetricsDetail() const override { return table_->name(); }

  uint64_t rows_scanned() const {
    return rows_scanned_.load(std::memory_order_relaxed);
  }
  uint64_t rows_passed() const {
    return rows_passed_.load(std::memory_order_relaxed);
  }

  // Field name of a table's tuple-id column.
  static std::string TidColumnName(const std::string& table_name) {
    return table_name + ".#tid";
  }

 private:
  const Table* table_;
  const RowLayout* layout_;
  std::vector<ScanPredicate> predicates_;
  MorselQueue queue_;

  // Resolved per-field sources: table column index, or -1 for the tid field.
  std::vector<int> field_columns_;
  uint64_t read_width_ = 0;  // bytes read per scanned row

  std::atomic<uint64_t> rows_scanned_{0};
  std::atomic<uint64_t> rows_passed_{0};
};

}  // namespace pjoin

#endif  // PJOIN_ENGINE_SCAN_H_
