// Table scan: pipeline source over a columnar base table.
//
// Early materialization (the system default, Section 4.2): the scan reads
// only the required columns, evaluates the pushed-down predicates
// column-at-a-time over the morsel, and stitches surviving rows into
// row-format batches. With late materialization the scan additionally emits
// the tuple id so a LateLoadOp can fetch deferred columns after the joins.
//
// When the encoding catalog holds segments for the table (PJOIN_ENCODING,
// storage/encoded_segment.h), the scan works on codes instead of plain
// values: predicates over dictionary columns become one bitmap test per row
// (the predicate runs once per distinct value, against the dictionary),
// predicates over FOR columns compare against narrow decoded deltas, and
// surviving rows decode through the unpack/gather kernels. Fields named in
// `coded_keys` skip decoding entirely and emit the 4-byte dictionary code —
// remapped to the build side's code space on probe scans — which is what
// lets joins compare codes instead of wide CHAR keys.
#ifndef PJOIN_ENGINE_SCAN_H_
#define PJOIN_ENGINE_SCAN_H_

#include <string>
#include <vector>

#include "engine/predicate.h"
#include "exec/morsel.h"
#include "exec/pipeline.h"
#include "storage/encoded_segment.h"
#include "storage/table.h"

namespace pjoin {

// A layout field that leaves the scan as a dictionary code instead of the
// plain value. `remap` translates into the partner side's code space (null
// on the side whose codes are the join's comparison space).
struct CodedKeyEmit {
  std::string name;
  const EncodedColumn* enc = nullptr;
  const std::vector<uint32_t>* remap = nullptr;
};

class TableScanSource : public Source {
 public:
  // `layout` lists the output fields: table columns by name, plus optionally
  // one kInt64 field named `<table>.#tid` that receives the row id.
  TableScanSource(const Table* table, const RowLayout* layout,
                  std::vector<ScanPredicate> predicates,
                  std::vector<CodedKeyEmit> coded_keys = {});

  void Prepare(ExecContext& exec) override;
  bool ProduceMorsel(Operator& consumer, ThreadContext& ctx) override;
  const RowLayout* OutputLayout() const override { return layout_; }

  const char* MetricsName() const override { return "scan"; }
  std::string MetricsDetail() const override { return table_->name(); }

  uint64_t rows_scanned() const {
    return rows_scanned_.load(std::memory_order_relaxed);
  }
  uint64_t rows_passed() const {
    return rows_passed_.load(std::memory_order_relaxed);
  }

  // Encoding observability. encoded() is true when any field or predicate
  // runs on codes; the widths compare the per-row read traffic with and
  // without encoding, and the counters tally decode work actually done.
  bool encoded() const { return encoded_; }
  uint64_t enc_read_width() const { return read_width_; }
  uint64_t plain_read_width() const { return plain_read_width_; }
  uint64_t values_decoded() const {
    return values_decoded_.load(std::memory_order_relaxed);
  }
  uint64_t codes_emitted() const {
    return codes_emitted_.load(std::memory_order_relaxed);
  }

  // Field name of a table's tuple-id column.
  static std::string TidColumnName(const std::string& table_name) {
    return table_name + ".#tid";
  }

 private:
  // How one layout field is produced from the table.
  struct FieldPlan {
    enum class Kind { kTid, kPlain, kCode, kDictValue, kForValue };
    Kind kind = Kind::kPlain;
    int column = -1;  // table column index (-1 for kTid)
    const EncodedColumn* enc = nullptr;
    const std::vector<uint32_t>* remap = nullptr;  // kCode probe side
  };

  // How one predicate is evaluated.
  struct PredPlan {
    enum class Kind { kPlain, kDictBitmap, kForDecode };
    Kind kind = Kind::kPlain;
    const EncodedColumn* enc = nullptr;
    std::vector<uint64_t> bitmap;  // kDictBitmap: pass bit per code
  };

  bool EvalPredAt(size_t p, uint64_t row) const;

  const Table* table_;
  const RowLayout* layout_;
  std::vector<ScanPredicate> predicates_;
  MorselQueue queue_;

  std::vector<FieldPlan> fields_;
  std::vector<PredPlan> pred_plans_;
  bool encoded_ = false;
  uint64_t read_width_ = 0;        // bytes read per scanned row
  uint64_t plain_read_width_ = 0;  // same, had every column stayed plain

  std::atomic<uint64_t> rows_scanned_{0};
  std::atomic<uint64_t> rows_passed_{0};
  std::atomic<uint64_t> values_decoded_{0};
  std::atomic<uint64_t> codes_emitted_{0};
};

}  // namespace pjoin

#endif  // PJOIN_ENGINE_SCAN_H_
