#include "engine/value.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace pjoin {

std::string ValueToString(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) {
    return std::to_string(std::get<int64_t>(v));
  }
  if (std::holds_alternative<double>(v)) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.4f", std::get<double>(v));
    return buf;
  }
  return std::get<std::string>(v);
}

bool QueryResult::ApproxEquals(const QueryResult& other, double rel_tol) const {
  if (rows.size() != other.rows.size()) return false;
  for (size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != other.rows[r].size()) return false;
    for (size_t c = 0; c < rows[r].size(); ++c) {
      const Value& a = rows[r][c];
      const Value& b = other.rows[r][c];
      if (a.index() != b.index()) return false;
      if (std::holds_alternative<double>(a)) {
        double x = std::get<double>(a), y = std::get<double>(b);
        double scale = std::max({std::fabs(x), std::fabs(y), 1.0});
        if (std::fabs(x - y) > rel_tol * scale) return false;
      } else if (a != b) {
        return false;
      }
    }
  }
  return true;
}

std::string QueryResult::ToString(size_t max_rows) const {
  std::ostringstream out;
  for (size_t c = 0; c < column_names.size(); ++c) {
    out << (c > 0 ? " | " : "") << column_names[c];
  }
  out << "\n";
  for (size_t r = 0; r < rows.size() && r < max_rows; ++r) {
    for (size_t c = 0; c < rows[r].size(); ++c) {
      out << (c > 0 ? " | " : "") << ValueToString(rows[r][c]);
    }
    out << "\n";
  }
  if (rows.size() > max_rows) {
    out << "... (" << rows.size() << " rows total)\n";
  }
  return out.str();
}

}  // namespace pjoin
