// Result values and query results.
#ifndef PJOIN_ENGINE_VALUE_H_
#define PJOIN_ENGINE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace pjoin {

// A scalar query-result value. DATE values are rendered as int64 day
// numbers; CHAR values as trimmed strings.
using Value = std::variant<int64_t, double, std::string>;

std::string ValueToString(const Value& v);

class QueryResult {
 public:
  std::vector<std::string> column_names;
  std::vector<std::vector<Value>> rows;  // canonically sorted

  uint64_t num_rows() const { return rows.size(); }

  // Structural equality with relative tolerance on doubles; used to verify
  // that all join strategies produce identical results.
  bool ApproxEquals(const QueryResult& other, double rel_tol = 1e-9) const;

  std::string ToString(size_t max_rows = 20) const;
};

}  // namespace pjoin

#endif  // PJOIN_ENGINE_VALUE_H_
