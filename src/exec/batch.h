// Tuple batches: the unit of dataflow between pipeline operators.
//
// Relaxed operator fusion (Menon et al., adopted by the paper's system)
// introduces staging points that buffer a small, cache-resident vector of
// tuples between operators. Our Batch is exactly such a staging buffer: up to
// kBatchCapacity rows, contiguous at the layout's stride, living in a
// per-operator scratch area. Operators run tight loops over a batch, which
// enables software prefetching and branch-free inner loops just like the
// generated code in the paper.
#ifndef PJOIN_EXEC_BATCH_H_
#define PJOIN_EXEC_BATCH_H_

#include <cstdint>

#include "storage/row_layout.h"
#include "util/aligned_buffer.h"

namespace pjoin {

inline constexpr uint32_t kBatchCapacity = 1024;

struct Batch {
  const RowLayout* layout = nullptr;
  std::byte* rows = nullptr;  // contiguous, stride = layout->stride()
  uint32_t size = 0;

  std::byte* Row(uint32_t i) const { return rows + i * layout->stride(); }
};

// Scratch memory backing one operator's output batches. Owned per
// (operator, worker) so no synchronization is needed.
class BatchScratch {
 public:
  void Bind(const RowLayout* layout) {
    layout_ = layout;
    buffer_.EnsureCapacity(static_cast<size_t>(kBatchCapacity) *
                           layout->stride());
  }

  // Starts a fresh output batch.
  Batch Start() { return Batch{layout_, buffer_.data(), 0}; }

  // Appends a slot to `batch` (must have room) and returns its pointer.
  std::byte* AppendSlot(Batch& batch) {
    std::byte* dst = batch.rows + batch.size * layout_->stride();
    ++batch.size;
    return dst;
  }

  bool Full(const Batch& batch) const { return batch.size == kBatchCapacity; }

  const RowLayout* layout() const { return layout_; }

 private:
  const RowLayout* layout_ = nullptr;
  AlignedBuffer buffer_;
};

}  // namespace pjoin

#endif  // PJOIN_EXEC_BATCH_H_
