// Morsel distribution: workers atomically claim fixed-size ranges of work.
//
// This is the work-stealing heart of morsel-driven parallelism: a shared
// atomic cursor over [0, total). Skew robustness comes from morsels being
// small relative to the input (Section 4.5 of the paper).
#ifndef PJOIN_EXEC_MORSEL_H_
#define PJOIN_EXEC_MORSEL_H_

#include <atomic>
#include <cstdint>

namespace pjoin {

struct Morsel {
  uint64_t begin = 0;
  uint64_t end = 0;
  bool empty() const { return begin >= end; }
  uint64_t size() const { return end - begin; }
};

// Default morsel size in tuples; small enough for load balancing, large
// enough to amortize the atomic claim.
inline constexpr uint64_t kDefaultMorselSize = 16384;

class MorselQueue {
 public:
  MorselQueue() = default;
  MorselQueue(uint64_t total, uint64_t morsel_size = kDefaultMorselSize)
      : total_(total), morsel_size_(morsel_size) {}

  void Reset(uint64_t total, uint64_t morsel_size = kDefaultMorselSize) {
    total_ = total;
    morsel_size_ = morsel_size;
    cursor_.store(0, std::memory_order_relaxed);
  }

  // Claims the next morsel; returns an empty morsel when exhausted.
  Morsel Next() {
    uint64_t begin = cursor_.fetch_add(morsel_size_, std::memory_order_relaxed);
    if (begin >= total_) return Morsel{total_, total_};
    uint64_t end = begin + morsel_size_;
    if (end > total_) end = total_;
    return Morsel{begin, end};
  }

  uint64_t total() const { return total_; }

 private:
  uint64_t total_ = 0;
  uint64_t morsel_size_ = kDefaultMorselSize;
  std::atomic<uint64_t> cursor_{0};
};

}  // namespace pjoin

#endif  // PJOIN_EXEC_MORSEL_H_
