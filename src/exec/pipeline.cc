#include "exec/pipeline.h"

#include "util/check.h"
#include "util/stopwatch.h"

namespace pjoin {

ExecContext::ExecContext(ThreadPool* pool)
    : pool_(pool),
      num_threads_(pool->num_threads()),
      bytes_(num_threads_),
      metrics_(num_threads_) {}

ByteCounter ExecContext::MergedBytes() const {
  ByteCounter merged;
  for (const auto& counter : bytes_) merged.Merge(counter);
  return merged;
}

void Pipeline::Run(ExecContext& exec) {
  PJOIN_CHECK(source_ != nullptr);
  PJOIN_CHECK(!ops_.empty());
  for (size_t i = 0; i + 1 < ops_.size(); ++i) {
    ops_[i]->set_next(ops_[i + 1]);
  }
  ops_.back()->set_next(nullptr);

  // Register this run with the observability layer. Registration happens
  // before the workers start, so the hot path only bumps pre-allocated
  // thread-local slots.
  PipelineMetrics* pm = exec.metrics().StartPipeline(label, timing_phase);
  source_->set_metrics(
      exec.metrics().RegisterOperator(source_->MetricsName(),
                                      source_->MetricsDetail()));
  for (Operator* op : ops_) {
    op->set_metrics(
        exec.metrics().RegisterOperator(op->MetricsName(),
                                        op->MetricsDetail()));
  }

  source_->Prepare(exec);
  for (Operator* op : ops_) op->Prepare(exec);

  Stopwatch watch;
  exec.pool()->ParallelRun([&](int thread_id) {
    ThreadContext ctx;
    ctx.thread_id = thread_id;
    ctx.bytes = &exec.bytes(thread_id);
    ctx.exec = &exec;
    Stopwatch worker_watch;
    source_->Open(ctx);
    for (Operator* op : ops_) op->Open(ctx);
    Operator& head = *ops_.front();
    uint64_t morsels = 0;
    while (source_->ProduceMorsel(head, ctx)) {
      ++morsels;
    }
    source_->Close(ctx);
    for (Operator* op : ops_) op->Close(ctx);
    pm->morsels_per_worker[thread_id] = morsels;
    pm->worker_seconds[thread_id] = worker_watch.ElapsedSeconds();
  });
  double elapsed = watch.ElapsedSeconds();
  pm->wall_seconds = elapsed;
  exec.timer().Add(timing_phase, elapsed);

  source_->Finish(exec);
  for (Operator* op : ops_) op->Finish(exec);
}

}  // namespace pjoin
