// Pipelines: chains of operators driven morsel-wise by worker threads.
//
// A query is a sequence of pipelines (Section 4.1 of the paper): each
// pipeline starts at a source (table scan, partition-pair scan, ...), pushes
// batches through its operator chain, and ends in a pipeline breaker (hash
// table build, radix partitioner, aggregate, result sink). The executor runs
// pipelines in dependency order; within a pipeline all workers pull morsels
// from the source until it is exhausted.
#ifndef PJOIN_EXEC_PIPELINE_H_
#define PJOIN_EXEC_PIPELINE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "exec/batch.h"
#include "exec/query_metrics.h"
#include "exec/thread_pool.h"
#include "util/byte_counter.h"

namespace pjoin {

class ExecContext;

// Per-worker execution state handed to every operator call.
struct ThreadContext {
  int thread_id = 0;
  ByteCounter* bytes = nullptr;
  ExecContext* exec = nullptr;
};

// Shared execution state for one query run.
class ExecContext {
 public:
  ExecContext(ThreadPool* pool);

  ThreadPool* pool() { return pool_; }
  int num_threads() const { return num_threads_; }

  ByteCounter& bytes(int thread_id) { return bytes_[thread_id]; }

  // Raw per-thread counter array (indexed by pool thread id), for components
  // that run their own parallel regions (e.g., the radix partitioner).
  ByteCounter* bytes_array() { return bytes_.data(); }

  // Merged byte counts across workers (call after pipelines finish).
  ByteCounter MergedBytes() const;

  PhaseTimer& timer() { return timer_; }

  // Observability registry: pipelines register themselves and their
  // operators here when they run; the executor snapshots it into QueryStats.
  QueryMetrics& metrics() { return metrics_; }
  const QueryMetrics& metrics() const { return metrics_; }

  // Tuples read by all table-scan sources; the TPC-H throughput metric
  // divides this by wall time (Section 5.3 of the paper).
  void AddSourceTuples(uint64_t n) {
    source_tuples_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t source_tuples() const {
    return source_tuples_.load(std::memory_order_relaxed);
  }

  // Observed-cardinality feedback from pipeline breakers, keyed by post-order
  // join id. Replan-armed joins publish their output estimate as actuals
  // arrive (build staged, probe counted, output emitted); downstream joins
  // read the nearest upstream entry before resolving their own strategy.
  // Written from Prepare/Finish only — pipelines prepare and finish serially
  // — so no synchronization is needed.
  struct CardFeedback {
    uint64_t est_rows = 0;        // plan-time output estimate
    uint64_t corrected_rows = 0;  // runtime-corrected (or exact) output
    bool exact = false;           // true once the join's output was counted
  };
  void RecordCardFeedback(int join_id, const CardFeedback& fb) {
    card_feedback_[join_id] = fb;
  }
  const CardFeedback* FindCardFeedback(int join_id) const {
    auto it = card_feedback_.find(join_id);
    return it == card_feedback_.end() ? nullptr : &it->second;
  }

 private:
  ThreadPool* pool_;
  int num_threads_;
  std::vector<ByteCounter> bytes_;
  PhaseTimer timer_;
  QueryMetrics metrics_;
  std::atomic<uint64_t> source_tuples_{0};
  std::map<int, CardFeedback> card_feedback_;
};

// A pipeline operator. Operators form a singly linked chain; Consume pushes
// derived batches to `next()`. Per-tuple work happens in tight loops inside
// Consume, never through per-tuple virtual calls.
class Operator {
 public:
  virtual ~Operator() = default;

  // Called once before the workers start, after the chain is wired.
  virtual void Prepare(ExecContext& exec) { (void)exec; }

  // Called by each worker before its first morsel.
  virtual void Open(ThreadContext& ctx) { (void)ctx; }

  // Processes one input batch, possibly emitting batches downstream.
  virtual void Consume(Batch& batch, ThreadContext& ctx) = 0;

  // Called by each worker after the source is exhausted (flush buffers).
  virtual void Close(ThreadContext& ctx) { (void)ctx; }

  // Called once after all workers closed (merge thread-local state).
  virtual void Finish(ExecContext& exec) { (void)exec; }

  // Layout of the batches this operator emits.
  virtual const RowLayout* OutputLayout() const = 0;

  // Identity under which the pipeline driver registers this operator in
  // QueryMetrics (e.g. "filter"); `MetricsDetail` adds instance context
  // (a filter label, a join id).
  virtual const char* MetricsName() const { return "operator"; }
  virtual std::string MetricsDetail() const { return ""; }

  OperatorMetrics* metrics() const { return metrics_; }
  void set_metrics(OperatorMetrics* metrics) { metrics_ = metrics; }

  Operator* next() const { return next_; }
  void set_next(Operator* next) { next_ = next; }

 protected:
  // Counts one incoming batch (call at the top of Consume).
  void MetricsIn(const Batch& batch, const ThreadContext& ctx) {
    if (metrics_ != nullptr) metrics_->AddIn(ctx.thread_id, batch.size);
  }

  // Counts and forwards one outgoing batch to the next operator.
  void PushNext(Batch& batch, ThreadContext& ctx) {
    if (metrics_ != nullptr) {
      metrics_->AddOut(ctx.thread_id, batch.size, 1);
    }
    next_->Consume(batch, ctx);
  }

  Operator* next_ = nullptr;
  OperatorMetrics* metrics_ = nullptr;
};

// A pipeline source. ProduceMorsel is called repeatedly by each worker; it
// claims one morsel, pushes its batches into `consumer`, and returns false
// when no morsels remain.
class Source {
 public:
  virtual ~Source() = default;
  virtual void Prepare(ExecContext& exec) { (void)exec; }
  virtual void Open(ThreadContext& ctx) { (void)ctx; }
  virtual bool ProduceMorsel(Operator& consumer, ThreadContext& ctx) = 0;
  virtual void Close(ThreadContext& ctx) { (void)ctx; }
  virtual void Finish(ExecContext& exec) { (void)exec; }
  virtual const RowLayout* OutputLayout() const = 0;

  virtual const char* MetricsName() const { return "source"; }
  virtual std::string MetricsDetail() const { return ""; }

  OperatorMetrics* metrics() const { return metrics_; }
  void set_metrics(OperatorMetrics* metrics) { metrics_ = metrics; }

 protected:
  // Counts and forwards one produced batch into the pipeline head.
  void PushOut(Operator& consumer, Batch& batch, ThreadContext& ctx) {
    if (metrics_ != nullptr) {
      metrics_->AddOut(ctx.thread_id, batch.size, 1);
    }
    consumer.Consume(batch, ctx);
  }

  OperatorMetrics* metrics_ = nullptr;
};

// One pipeline: source plus operator chain (non-owning pointers; the plan
// executor owns all operators).
class Pipeline {
 public:
  Pipeline() = default;

  void set_source(Source* source) { source_ = source; }
  void AddOperator(Operator* op) { ops_.push_back(op); }

  Source* source() const { return source_; }
  const std::vector<Operator*>& ops() const { return ops_; }

  // Label for debugging/benchmark output (e.g., "probe lineitem").
  std::string label;

  // Phase attributed to this pipeline's wall time in the bandwidth profile.
  JoinPhase timing_phase = JoinPhase::kProbePipeline;

  // Wires the chain and runs the pipeline to completion on the context pool.
  void Run(ExecContext& exec);

 private:
  Source* source_ = nullptr;
  std::vector<Operator*> ops_;
};

}  // namespace pjoin

#endif  // PJOIN_EXEC_PIPELINE_H_
