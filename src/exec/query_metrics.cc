#include "exec/query_metrics.h"

#include <cstdio>
#include <sstream>

namespace pjoin {

namespace {

// Phase identifiers for JSON output: lower_snake, stable across releases
// (JoinPhaseName returns human-oriented labels with spaces).
const char* PhaseKey(JoinPhase phase) {
  switch (phase) {
    case JoinPhase::kBuildPipeline: return "build_pipeline";
    case JoinPhase::kPartitionPass1: return "partition_pass1";
    case JoinPhase::kHistogramScan: return "histogram_scan";
    case JoinPhase::kPartitionPass2: return "partition_pass2";
    case JoinPhase::kJoin: return "join";
    case JoinPhase::kProbePipeline: return "probe_pipeline";
    case JoinPhase::kNumPhases: break;
  }
  return "unknown";
}

void AppendDouble(std::ostringstream& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  out << buf;
}

void AppendString(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

void AppendBloom(std::ostringstream& out, const BloomMetrics& bloom) {
  out << "{\"applicable\":" << (bloom.applicable ? "true" : "false")
      << ",\"size_bytes\":" << bloom.size_bytes
      << ",\"num_blocks\":" << bloom.num_blocks
      << ",\"build_keys\":" << bloom.build_keys
      << ",\"probes\":" << bloom.probes
      << ",\"negatives\":" << bloom.negatives << ",\"pass_rate\":";
  AppendDouble(out, bloom.pass_rate());
  out << ",\"adaptive\":" << (bloom.adaptive ? "true" : "false")
      << ",\"enabled_at_end\":" << (bloom.enabled_at_end ? "true" : "false")
      << ",\"adaptive_samples\":" << bloom.adaptive_samples << "}";
}

void AppendPartitioner(std::ostringstream& out, const PartitionerMetrics& p) {
  out << "{\"bits1\":" << p.bits1 << ",\"bits2\":" << p.bits2
      << ",\"num_partitions\":" << p.num_partitions
      << ",\"tuples\":" << p.tuples
      << ",\"output_bytes\":" << p.output_bytes
      << ",\"swwcb_flushes\":" << p.swwcb_flushes
      << ",\"streamed_bytes\":" << p.streamed_bytes
      << ",\"max_partition_tuples\":" << p.max_partition_tuples
      << ",\"min_partition_tuples\":" << p.min_partition_tuples << "}";
}

}  // namespace

PipelineMetrics* QueryMetrics::StartPipeline(const std::string& label,
                                             JoinPhase phase) {
  pipelines_.emplace_back();
  PipelineMetrics& p = pipelines_.back();
  p.label = label;
  p.phase = phase;
  p.morsels_per_worker.assign(num_threads_, 0);
  p.worker_seconds.assign(num_threads_, 0);
  return &p;
}

OperatorMetrics* QueryMetrics::RegisterOperator(const std::string& name,
                                                const std::string& detail) {
  int pipeline_index =
      pipelines_.empty() ? -1 : static_cast<int>(pipelines_.size()) - 1;
  operators_.emplace_back(name, detail, pipeline_index, num_threads_);
  return &operators_.back();
}

void QueryMetrics::SetSummary(double seconds, uint64_t source_tuples,
                              uint64_t result_rows, const PhaseTimer& timer,
                              const ByteCounter& bytes) {
  seconds_ = seconds;
  source_tuples_ = source_tuples;
  result_rows_ = result_rows;
  timer_ = timer;
  bytes_ = bytes;
}

const JoinMetrics* QueryMetrics::FindJoin(int join_id) const {
  for (const JoinMetrics& j : joins_) {
    if (j.join_id == join_id) return &j;
  }
  return nullptr;
}

OperatorTotals QueryMetrics::TotalsFor(const std::string& name) const {
  OperatorTotals sum;
  for (const OperatorMetrics& op : operators_) {
    if (op.name() != name) continue;
    OperatorTotals t = op.Totals();
    sum.rows_in += t.rows_in;
    sum.rows_out += t.rows_out;
    sum.batches_in += t.batches_in;
    sum.batches_out += t.batches_out;
  }
  return sum;
}

std::string QueryMetrics::ToJson(bool include_timings) const {
  std::ostringstream out;
  out << "{\"num_threads\":" << num_threads_;
  if (!simd_tier_.empty()) {
    out << ",\"simd\":\"" << simd_tier_ << "\"";
  }
  if (include_timings) {
    out << ",\"seconds\":";
    AppendDouble(out, seconds_);
  }
  out << ",\"source_tuples\":" << source_tuples_
      << ",\"result_rows\":" << result_rows_;

  out << ",\"phases\":[";
  for (int i = 0; i < static_cast<int>(JoinPhase::kNumPhases); ++i) {
    JoinPhase phase = static_cast<JoinPhase>(i);
    if (i > 0) out << ",";
    out << "{\"name\":\"" << PhaseKey(phase) << "\"";
    if (include_timings) {
      out << ",\"seconds\":";
      AppendDouble(out, timer_.seconds(phase));
    }
    const PhaseBytes& b = bytes_.phase(phase);
    out << ",\"read_bytes\":" << b.read << ",\"written_bytes\":" << b.written
        << "}";
  }
  out << "]";

  out << ",\"pipelines\":[";
  for (size_t i = 0; i < pipelines_.size(); ++i) {
    const PipelineMetrics& p = pipelines_[i];
    if (i > 0) out << ",";
    out << "{\"label\":";
    AppendString(out, p.label);
    out << ",\"phase\":\"" << PhaseKey(p.phase) << "\"";
    if (include_timings) {
      out << ",\"wall_seconds\":";
      AppendDouble(out, p.wall_seconds);
      out << ",\"cpu_seconds\":";
      AppendDouble(out, p.cpu_seconds());
    }
    out << ",\"total_morsels\":" << p.total_morsels()
        << ",\"morsels_per_worker\":[";
    for (size_t w = 0; w < p.morsels_per_worker.size(); ++w) {
      if (w > 0) out << ",";
      out << p.morsels_per_worker[w];
    }
    out << "]}";
  }
  out << "]";

  out << ",\"operators\":[";
  for (size_t i = 0; i < operators_.size(); ++i) {
    const OperatorMetrics& op = operators_[i];
    OperatorTotals t = op.Totals();
    if (i > 0) out << ",";
    out << "{\"pipeline\":" << op.pipeline_index() << ",\"name\":";
    AppendString(out, op.name());
    out << ",\"detail\":";
    AppendString(out, op.detail());
    out << ",\"rows_in\":" << t.rows_in << ",\"rows_out\":" << t.rows_out
        << ",\"batches_in\":" << t.batches_in
        << ",\"batches_out\":" << t.batches_out << "}";
  }
  out << "]";

  out << ",\"scans\":[";
  for (size_t i = 0; i < scans_.size(); ++i) {
    const ScanMetrics& s = scans_[i];
    if (i > 0) out << ",";
    out << "{\"table\":";
    AppendString(out, s.table);
    out << ",\"rows_scanned\":" << s.rows_scanned
        << ",\"rows_passed\":" << s.rows_passed;
    if (s.encoded) {
      out << ",\"encoded\":true,\"read_width\":" << s.enc_read_width
          << ",\"plain_width\":" << s.plain_read_width
          << ",\"values_decoded\":" << s.values_decoded
          << ",\"codes_emitted\":" << s.codes_emitted;
    }
    out << "}";
  }
  out << "]";

  out << ",\"joins\":[";
  for (size_t i = 0; i < joins_.size(); ++i) {
    const JoinMetrics& j = joins_[i];
    if (i > 0) out << ",";
    out << "{\"join_id\":" << j.join_id << ",\"kind\":\""
        << JoinKindName(j.kind) << "\",\"strategy\":\""
        << JoinStrategyName(j.strategy)
        << "\",\"build_tuples\":" << j.build_tuples
        << ",\"probe_tuples\":" << j.probe_tuples
        << ",\"probe_matched\":" << j.probe_matched
        << ",\"rows_out\":" << j.rows_out;
    if (j.coded_key_pairs > 0) {
      out << ",\"coded_key_pairs\":" << j.coded_key_pairs;
    }
    if (j.has_hash_table) {
      const HashTableMetrics& h = j.hash_table;
      out << ",\"hash_table\":{\"build_tuples\":" << h.build_tuples
          << ",\"directory_slots\":" << h.directory_slots
          << ",\"directory_bytes\":" << h.directory_bytes
          << ",\"materialized_bytes\":" << h.materialized_bytes
          << ",\"chained_entries\":" << h.chained_entries
          << ",\"max_chain\":" << h.max_chain << ",\"resizes\":" << h.resizes
          << "}";
    }
    if (j.has_partitions) {
      out << ",\"build_partitions\":";
      AppendPartitioner(out, j.build_side);
      out << ",\"probe_partitions\":";
      AppendPartitioner(out, j.probe_side);
      out << ",\"partition_ht_grows\":" << j.partition_ht_grows
          << ",\"partition_ht_peak_bytes\":" << j.partition_ht_peak_bytes;
    }
    out << ",\"bloom\":";
    AppendBloom(out, j.bloom);
    if (j.spill.spilled) {
      const SpillMetrics& s = j.spill;
      out << ",\"spill\":{\"partitions_spilled\":" << s.partitions_spilled
          << ",\"partitions_total\":" << s.partitions_total
          << ",\"build_tuples_spilled\":" << s.build_tuples_spilled
          << ",\"probe_tuples_spilled\":" << s.probe_tuples_spilled
          << ",\"bytes_written\":" << s.bytes_written
          << ",\"bytes_read\":" << s.bytes_read
          << ",\"max_recursion_depth\":" << s.max_recursion_depth << "}";
    }
    if (j.skew.enabled) {
      const SkewDefenseMetrics& sk = j.skew;
      out << ",\"skew\":{\"heavy_hitters\":" << sk.heavy_hitters
          << ",\"bypass_build_tuples\":" << sk.bypass_build_tuples
          << ",\"bypass_probe_tuples\":" << sk.bypass_probe_tuples
          << ",\"partitions_resplit\":" << sk.partitions_resplit
          << ",\"dense_fallbacks\":" << sk.dense_fallbacks << "}";
    }
    if (j.advisor.present) {
      out << ",\"advisor\":{\"choice\":\""
          << JoinStrategyName(j.advisor.choice)
          << "\",\"est_build_tuples\":" << j.advisor.est_build_tuples
          << ",\"est_probe_tuples\":" << j.advisor.est_probe_tuples
          << ",\"cost_bhj\":";
      AppendDouble(out, j.advisor.cost_bhj);
      out << ",\"cost_rj\":";
      AppendDouble(out, j.advisor.cost_rj);
      out << ",\"cost_brj\":";
      AppendDouble(out, j.advisor.cost_brj);
      out << ",\"fell_back\":" << (j.advisor.fell_back ? "true" : "false")
          << ",\"reason\":";
      AppendString(out, j.advisor.reason);
      if (j.advisor.skew_sampled) {
        out << ",\"est_top_share\":";
        AppendDouble(out, j.advisor.est_top_share);
        out << ",\"est_max_partition_share\":";
        AppendDouble(out, j.advisor.est_max_partition_share);
        out << ",\"est_key_payload_corr\":";
        AppendDouble(out, j.advisor.est_key_payload_corr);
        out << ",\"skew_defense\":"
            << (j.advisor.skew_defense ? "true" : "false");
      }
      if (j.advisor.quality) {
        // Estimate-quality report (stats subsystem on): symmetric q-errors
        // of the cardinality estimates against the observed counts.
        const double qb =
            EstimateQError(j.advisor.est_build_tuples, j.build_tuples);
        const double qp =
            EstimateQError(j.advisor.est_probe_tuples, j.probe_tuples);
        out << ",\"qerror_build\":";
        AppendDouble(out, qb);
        out << ",\"qerror_probe\":";
        AppendDouble(out, qp);
        out << ",\"mispredict\":"
            << (qb >= kMispredictQError || qp >= kMispredictQError ? "true"
                                                                   : "false");
      }
      out << "}";
    }
    if (j.replan.enabled) {
      const ReplanMetrics& r = j.replan;
      out << ",\"replan\":{\"triggered\":" << (r.triggered ? "true" : "false")
          << ",\"switched\":" << (r.switched ? "true" : "false")
          << ",\"qerror_build\":";
      AppendDouble(out, r.qerror_build);
      out << ",\"qerror_probe\":";
      AppendDouble(out, r.qerror_probe);
      out << ",\"staged_build_tuples\":" << r.staged_build_tuples
          << ",\"corrected_probe_tuples\":" << r.corrected_probe_tuples
          << ",\"final\":\"" << JoinStrategyName(r.final_choice) << "\"";
      if (r.triggered) {
        out << ",\"recost_bhj\":";
        AppendDouble(out, r.recost_bhj);
        out << ",\"recost_rj\":";
        AppendDouble(out, r.recost_rj);
        out << ",\"recost_brj\":";
        AppendDouble(out, r.recost_brj);
      }
      out << "}";
    }
    out << "}";
  }
  out << "]";
  if (rewrite_present_) {
    out << ",\"rewrite\":{\"rules\":";
    AppendString(out, rewrite_rules_);
    out << ",\"order\":";
    AppendString(out, rewrite_order_);
    out << ",\"filters_pulled\":" << rewrite_filters_pulled_
        << ",\"filters_pushed\":" << rewrite_filters_pushed_
        << ",\"joins_reordered\":" << rewrite_joins_reordered_
        << ",\"blooms_planted\":" << rewrite_blooms_planted_
        << ",\"bloom_dropped\":" << rewrite_bloom_dropped_ << "}";
  }
  if (stats_present_) {
    out << ",\"stats\":{\"tables\":" << stats_tables_
        << ",\"columns\":" << stats_columns_
        << ",\"buckets\":" << stats_buckets_ << "}";
  }
  if (encoding_present_) {
    out << ",\"encoding\":{\"scans_encoded\":" << encoding_scans_encoded_
        << ",\"coded_join_pairs\":" << encoding_coded_join_pairs_
        << ",\"values_decoded\":" << encoding_values_decoded_
        << ",\"codes_emitted\":" << encoding_codes_emitted_
        << ",\"scan_read_bytes\":" << encoding_scan_read_bytes_
        << ",\"plain_read_bytes\":" << encoding_plain_read_bytes_;
    if (encoding_spill_bytes_logical_ > 0) {
      out << ",\"spill_bytes_logical\":" << encoding_spill_bytes_logical_
          << ",\"spill_bytes_physical\":" << encoding_spill_bytes_physical_;
    }
    out << "}";
  }
  if (governor_budget_ > 0) {
    out << ",\"governor\":{\"budget\":" << governor_budget_
        << ",\"high_water\":" << governor_high_water_
        << ",\"denials\":" << governor_denials_ << "}";
  }
  if (server_present_) {
    out << ",\"server\":{\"query_id\":" << server_query_id_
        << ",\"session\":" << server_session_id_ << ",\"state\":";
    AppendString(out, server_state_);
    out << ",\"granted_bytes\":" << server_granted_bytes_
        << ",\"spill_pressure\":" << server_spill_pressure_;
    if (include_timings) {
      out << ",\"queue_seconds\":";
      AppendDouble(out, server_queue_seconds_);
    }
    out << "}";
  }
  out << "}";
  return out.str();
}

}  // namespace pjoin
