// Query-wide observability: per-pipeline and per-operator statistics.
//
// The paper's entire argument rests on inside-the-system measurement — which
// join phase pays for partitioning, how many probe tuples the Bloom filter
// prunes, where the morsels go. QueryMetrics is the registry every execution
// component reports into:
//   * operator counters (rows/batches in and out) live in thread-local,
//     cache-line-padded slots so the hot paths stay contention-free; they are
//     merged on demand after the pipelines finish,
//   * pipeline records carry wall time, per-worker busy time, and the morsel
//     count each worker claimed (the skew-robustness signal of Section 4.5),
//   * join records aggregate the strategy-specific internals: chaining-hash-
//     table shape for the BHJ, radix-partitioner fan-out/SWWCB traffic for
//     the RJ, and Bloom-filter pass rates plus the adaptive on/off decision
//     for the BRJ.
// The registry renders to a stable JSON document (ToJson) consumed by the
// benches and to the EXPLAIN ANALYZE annotations in engine/explain.
#ifndef PJOIN_EXEC_QUERY_METRICS_H_
#define PJOIN_EXEC_QUERY_METRICS_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "join/join_types.h"
#include "util/byte_counter.h"

namespace pjoin {

// One worker's counters for one operator. Padded to a cache line so two
// workers bumping their own slots never share a line (false sharing would
// show up directly in the bandwidth profiles this layer exists to produce).
struct alignas(64) OperatorSlot {
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t batches_in = 0;
  uint64_t batches_out = 0;
};
static_assert(sizeof(OperatorSlot) == 64);

// Merged view of an operator's slots.
struct OperatorTotals {
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t batches_in = 0;
  uint64_t batches_out = 0;
};

// Per-operator record: identity plus one padded slot per worker. Instances
// are owned by QueryMetrics (deque: registration never invalidates the
// pointers operators hold).
class OperatorMetrics {
 public:
  OperatorMetrics(std::string name, std::string detail, int pipeline_index,
                  int num_threads)
      : name_(std::move(name)),
        detail_(std::move(detail)),
        pipeline_index_(pipeline_index),
        slots_(num_threads) {}

  const std::string& name() const { return name_; }
  const std::string& detail() const { return detail_; }
  int pipeline_index() const { return pipeline_index_; }

  // Hot-path increments; `thread_id` indexes the worker's private slot.
  void AddIn(int thread_id, uint64_t rows) {
    OperatorSlot& s = slots_[thread_id];
    s.rows_in += rows;
    s.batches_in += 1;
  }
  void AddOut(int thread_id, uint64_t rows, uint64_t batches) {
    OperatorSlot& s = slots_[thread_id];
    s.rows_out += rows;
    s.batches_out += batches;
  }

  const std::vector<OperatorSlot>& slots() const { return slots_; }

  OperatorTotals Totals() const {
    OperatorTotals t;
    for (const OperatorSlot& s : slots_) {
      t.rows_in += s.rows_in;
      t.rows_out += s.rows_out;
      t.batches_in += s.batches_in;
      t.batches_out += s.batches_out;
    }
    return t;
  }

 private:
  std::string name_;
  std::string detail_;
  int pipeline_index_;
  std::vector<OperatorSlot> slots_;
};

// Per-pipeline record. Worker-indexed vectors are sized at registration;
// each worker writes only its own element during the parallel region.
struct PipelineMetrics {
  std::string label;
  JoinPhase phase = JoinPhase::kProbePipeline;
  double wall_seconds = 0;
  std::vector<uint64_t> morsels_per_worker;
  std::vector<double> worker_seconds;  // per-worker busy time

  uint64_t total_morsels() const {
    uint64_t n = 0;
    for (uint64_t m : morsels_per_worker) n += m;
    return n;
  }
  double cpu_seconds() const {
    double s = 0;
    for (double w : worker_seconds) s += w;
    return s;
  }
};

// Table-scan actuals, recorded in lowering order (build side before probe
// side), which is the traversal order EXPLAIN ANALYZE replays.
struct ScanMetrics {
  std::string table;
  uint64_t rows_scanned = 0;
  uint64_t rows_passed = 0;
  // Encoded-segment actuals (storage/encoded_segment.h). `encoded` stays
  // false when the scan ran on plain columns — the default for small tables
  // and every PJOIN_ENCODING=0 run — and the JSON/EXPLAIN layers omit the
  // fields, keeping pre-encoding output byte-identical.
  bool encoded = false;
  uint64_t enc_read_width = 0;    // bytes read per scanned row, with codes
  uint64_t plain_read_width = 0;  // same, had every column stayed plain
  uint64_t values_decoded = 0;    // dict gathers + FOR decodes performed
  uint64_t codes_emitted = 0;     // join-key fields emitted as codes
};

// BHJ chaining-hash-table shape after Build().
struct HashTableMetrics {
  uint64_t build_tuples = 0;
  uint64_t directory_slots = 0;
  uint64_t directory_bytes = 0;
  uint64_t materialized_bytes = 0;
  uint64_t chained_entries = 0;  // entries placed behind another (collisions)
  uint64_t max_chain = 0;
  uint64_t resizes = 0;  // the directory is sized exactly once: always 0
};

// One side of a radix join after Finalize().
struct PartitionerMetrics {
  int bits1 = 0;
  int bits2 = 0;
  int num_partitions = 0;
  uint64_t tuples = 0;
  uint64_t output_bytes = 0;
  uint64_t swwcb_flushes = 0;   // write-combine block flushes (both passes)
  uint64_t streamed_bytes = 0;  // bytes moved with non-temporal stores
  uint64_t max_partition_tuples = 0;
  uint64_t min_partition_tuples = 0;
};

// Bloom semi-join-reducer behavior during the probe pipeline.
struct BloomMetrics {
  bool applicable = false;  // strategy + join kind allow a filter at all
  uint64_t size_bytes = 0;
  uint64_t num_blocks = 0;
  uint64_t build_keys = 0;
  uint64_t probes = 0;    // filter membership checks
  uint64_t negatives = 0; // probe tuples dropped before partitioning
  bool adaptive = false;
  bool enabled_at_end = false;    // the adaptive controller's final decision
  uint64_t adaptive_samples = 0;  // checks seen by the controller

  double pass_rate() const {
    return probes > 0
               ? static_cast<double>(probes - negatives) / probes
               : 0.0;
  }
};

// Out-of-core activity of one hybrid join. `spilled` stays false when the
// join ran fully resident, and the JSON/EXPLAIN layers omit the record, so
// unbudgeted runs are byte-identical to the pre-spill output.
struct SpillMetrics {
  bool spilled = false;
  uint32_t partitions_spilled = 0;
  uint32_t partitions_total = 0;  // fan-out the residency choice ranged over
  uint64_t build_tuples_spilled = 0;
  uint64_t probe_tuples_spilled = 0;
  uint64_t bytes_written = 0;
  uint64_t bytes_read = 0;
  uint64_t max_recursion_depth = 0;  // 1 = joined on first re-read
  // Compressed spill pages (spill/spill_page.h). bytes_written/bytes_read
  // above stay logical so spill accounting is comparable across modes; the
  // file-level savings surface in the query's "encoding" section, not here.
  bool compressed = false;
  uint64_t physical_bytes_written = 0;
  uint64_t physical_bytes_read = 0;
};

// Runtime skew-defense activity of one radix join. `enabled` stays false
// unless the advisor (or a test) armed the defense, and the JSON/EXPLAIN
// layers omit the record, so undefended runs are byte-identical.
struct SkewDefenseMetrics {
  bool enabled = false;
  uint32_t heavy_hitters = 0;          // keys routed around partitioning
  uint64_t bypass_build_tuples = 0;    // build tuples in the dense-array join
  uint64_t bypass_probe_tuples = 0;    // probe tuples bypassing partitioning
  uint32_t partitions_resplit = 0;     // oversized partitions re-split 16-way
  uint32_t dense_fallbacks = 0;        // same-hash clusters joined densely
};

// Decision record of the cost-based join advisor (JoinStrategy::kAuto).
// `present` stays false for manually chosen strategies so pre-advisor JSON
// and EXPLAIN output are unchanged.
struct AdvisorMetrics {
  bool present = false;
  JoinStrategy choice = JoinStrategy::kBHJ;  // what the advisor picked
  uint64_t est_build_tuples = 0;
  uint64_t est_probe_tuples = 0;
  double cost_bhj = 0;  // modeled memory traffic, bytes
  double cost_rj = 0;
  double cost_brj = 0;
  bool fell_back = false;  // runtime guardrail demoted a radix pick to BHJ
  const char* reason = "";  // static string from the advisor
  // Skew estimate from the build-side sample (omitted from JSON when the
  // sampling pass was disabled, keeping pre-sampler output stable).
  bool skew_sampled = false;
  double est_top_share = 0;
  double est_max_partition_share = 0;
  double est_key_payload_corr = 0;
  bool skew_defense = false;  // partitioned pick armed the runtime defense
  // Estimation-quality reporting (q-error + mispredict flag in JSON and
  // EXPLAIN ANALYZE). Set only when the statistics subsystem is enabled, so
  // PJOIN_STATS=0 output is byte-identical to the pre-statistics engine.
  bool quality = false;
};

// Mid-query re-planning record of one advisor-chosen join
// (PJOIN_REPLAN_QERROR > 0). `enabled` stays false when the re-planner is
// off — the default — and the JSON/EXPLAIN layers omit the record.
struct ReplanMetrics {
  bool enabled = false;    // decision was deferred to the probe phase
  bool triggered = false;  // observed q-error crossed the threshold
  bool switched = false;   // final strategy differs from the plan-time pick
  double qerror_build = 1.0;  // staged build vs plan-time estimate
  double qerror_probe = 1.0;  // feedback-corrected probe vs estimate
  uint64_t staged_build_tuples = 0;
  uint64_t corrected_probe_tuples = 0;
  // Re-costed strategy surface (only meaningful when triggered).
  double recost_bhj = 0;
  double recost_rj = 0;
  double recost_brj = 0;
  JoinStrategy final_choice = JoinStrategy::kBHJ;  // what actually ran
};

// q-error of an estimate against an observation (>= 1; symmetric in
// over/underestimation). Zero-valued sides count as 1 tuple so empty joins
// do not divide by zero.
inline double EstimateQError(uint64_t est, uint64_t actual) {
  const double e = static_cast<double>(est == 0 ? 1 : est);
  const double a = static_cast<double>(actual == 0 ? 1 : actual);
  return e > a ? e / a : a / e;
}

// A plan-time estimate at or beyond this q-error counts as a mispredict in
// the JSON/EXPLAIN quality fields.
constexpr double kMispredictQError = 2.0;

// Everything one join reports, keyed by the executor's post-order join id
// (the numbering of Figure 12 and ExecOptions::join_overrides).
struct JoinMetrics {
  int join_id = 0;
  JoinKind kind = JoinKind::kInner;
  JoinStrategy strategy = JoinStrategy::kBHJ;
  uint64_t build_tuples = 0;
  uint64_t probe_tuples = 0;   // tuples entering the probe side (pre-filter)
  uint64_t probe_matched = 0;  // probe tuples with at least one partner
  uint64_t rows_out = 0;       // tuples the join emitted downstream
  bool has_hash_table = false;
  HashTableMetrics hash_table;
  bool has_partitions = false;
  PartitionerMetrics build_side;
  PartitionerMetrics probe_side;
  BloomMetrics bloom;
  uint64_t partition_ht_grows = 0;      // robin-hood segment regrowths
  uint64_t partition_ht_peak_bytes = 0; // largest per-partition table
  SpillMetrics spill;                   // only meaningful when spilled
  SkewDefenseMetrics skew;              // only meaningful when defense armed
  AdvisorMetrics advisor;               // only meaningful under kAuto
  ReplanMetrics replan;                 // only meaningful when re-planning on
  // Key pairs this join compared as dictionary codes (engine/coded_keys.h).
  // Zero for plain joins; the JSON/EXPLAIN fields are omitted then.
  uint32_t coded_key_pairs = 0;
};

// The query-wide registry. One instance lives in ExecContext; the executor
// copies it into QueryStats after the pipelines finish, so benches and tests
// can inspect a completed run without holding the execution alive.
class QueryMetrics {
 public:
  explicit QueryMetrics(int num_threads = 1) : num_threads_(num_threads) {}

  int num_threads() const { return num_threads_; }

  // --- registration (single-threaded, before the workers start) -----------

  // Starts a pipeline record and returns it; the pointer stays valid for the
  // lifetime of this QueryMetrics (deque storage).
  PipelineMetrics* StartPipeline(const std::string& label, JoinPhase phase);

  // Registers an operator (or source) under the most recent pipeline.
  OperatorMetrics* RegisterOperator(const std::string& name,
                                    const std::string& detail);

  void AddScan(ScanMetrics scan) { scans_.push_back(std::move(scan)); }
  void AddJoin(JoinMetrics join) { joins_.push_back(std::move(join)); }

  // Query-level summary filled by the executor after the run.
  void SetSummary(double seconds, uint64_t source_tuples, uint64_t result_rows,
                  const PhaseTimer& timer, const ByteCounter& bytes);

  // Memory-governor snapshot (executor, after the run). The JSON section is
  // emitted only when a budget was set, keeping unbudgeted output stable.
  void SetGovernor(uint64_t budget, uint64_t high_water, uint64_t denials) {
    governor_budget_ = budget;
    governor_high_water_ = high_water;
    governor_denials_ = denials;
  }
  uint64_t governor_budget() const { return governor_budget_; }
  uint64_t governor_high_water() const { return governor_high_water_; }
  uint64_t governor_denials() const { return governor_denials_; }

  // Server-mode per-query record (src/server/): admission identity, the
  // fair-share memory grant, spill-pressure denials and queue wait. Set by
  // QueryServer after the run; the JSON section and the EXPLAIN ANALYZE
  // line are emitted only when present, so standalone-run output is
  // byte-identical to the pre-server engine.
  void SetServer(uint64_t query_id, uint64_t session_id, std::string state,
                 uint64_t granted_bytes, uint64_t spill_pressure,
                 double queue_seconds) {
    server_present_ = true;
    server_query_id_ = query_id;
    server_session_id_ = session_id;
    server_state_ = std::move(state);
    server_granted_bytes_ = granted_bytes;
    server_spill_pressure_ = spill_pressure;
    server_queue_seconds_ = queue_seconds;
  }
  bool server_present() const { return server_present_; }
  uint64_t server_query_id() const { return server_query_id_; }
  uint64_t server_session_id() const { return server_session_id_; }
  const std::string& server_state() const { return server_state_; }
  uint64_t server_granted_bytes() const { return server_granted_bytes_; }
  uint64_t server_spill_pressure() const { return server_spill_pressure_; }
  double server_queue_seconds() const { return server_queue_seconds_; }

  // Dispatched SIMD kernel tier ("scalar"|"avx2"|"avx512"), set by the
  // executor so benches can attribute kernel-level wins. Deterministic on a
  // given host+environment, so it is safe in the stable JSON.
  void SetSimdTier(std::string tier) { simd_tier_ = std::move(tier); }
  const std::string& simd_tier() const { return simd_tier_; }

  // Statistics-catalog snapshot for this query's base tables (executor,
  // after the run). The JSON section is emitted only when set — i.e. when
  // PJOIN_STATS is enabled — keeping stats-off output byte-identical.
  void SetStats(uint64_t tables, uint64_t columns, int buckets) {
    stats_present_ = true;
    stats_tables_ = tables;
    stats_columns_ = columns;
    stats_buckets_ = buckets;
  }
  bool stats_present() const { return stats_present_; }
  uint64_t stats_tables() const { return stats_tables_; }
  uint64_t stats_columns() const { return stats_columns_; }
  int stats_buckets() const { return stats_buckets_; }

  // Encoded-execution rollup (executor, after the run): how many scans ran
  // on codes, how many join key pairs compared codes, the decode work done,
  // the scan read traffic with codes vs the plain-width counterfactual, and
  // the logical vs physical spill traffic. Set only when encoding actually
  // engaged somewhere in the query, so plain runs — and every
  // PJOIN_ENCODING=0 run — emit byte-identical JSON.
  void SetEncoding(uint64_t scans_encoded, uint64_t coded_join_pairs,
                   uint64_t values_decoded, uint64_t codes_emitted,
                   uint64_t scan_read_bytes, uint64_t plain_read_bytes,
                   uint64_t spill_bytes_logical,
                   uint64_t spill_bytes_physical) {
    encoding_present_ = true;
    encoding_scans_encoded_ = scans_encoded;
    encoding_coded_join_pairs_ = coded_join_pairs;
    encoding_values_decoded_ = values_decoded;
    encoding_codes_emitted_ = codes_emitted;
    encoding_scan_read_bytes_ = scan_read_bytes;
    encoding_plain_read_bytes_ = plain_read_bytes;
    encoding_spill_bytes_logical_ = spill_bytes_logical;
    encoding_spill_bytes_physical_ = spill_bytes_physical;
  }
  bool encoding_present() const { return encoding_present_; }
  uint64_t encoding_scans_encoded() const { return encoding_scans_encoded_; }
  uint64_t encoding_coded_join_pairs() const {
    return encoding_coded_join_pairs_;
  }
  uint64_t encoding_values_decoded() const { return encoding_values_decoded_; }
  uint64_t encoding_codes_emitted() const { return encoding_codes_emitted_; }
  uint64_t encoding_scan_read_bytes() const {
    return encoding_scan_read_bytes_;
  }
  uint64_t encoding_plain_read_bytes() const {
    return encoding_plain_read_bytes_;
  }
  uint64_t encoding_spill_bytes_logical() const {
    return encoding_spill_bytes_logical_;
  }
  uint64_t encoding_spill_bytes_physical() const {
    return encoding_spill_bytes_physical_;
  }

  // Rewrite-pass record (executor, after the run): the fired rules, the
  // chosen join order, and what the planted Bloom filters dropped. The JSON
  // section and the EXPLAIN `rewrite:` line are emitted only when the pass
  // actually changed the plan, so untouched plans — and every PJOIN_REWRITE=0
  // run — stay byte-identical to the pre-rewrite engine.
  void SetRewrite(std::string rules, std::string order, int filters_pulled,
                  int filters_pushed, int joins_reordered, int blooms_planted,
                  uint64_t bloom_dropped) {
    rewrite_present_ = true;
    rewrite_rules_ = std::move(rules);
    rewrite_order_ = std::move(order);
    rewrite_filters_pulled_ = filters_pulled;
    rewrite_filters_pushed_ = filters_pushed;
    rewrite_joins_reordered_ = joins_reordered;
    rewrite_blooms_planted_ = blooms_planted;
    rewrite_bloom_dropped_ = bloom_dropped;
  }
  bool rewrite_present() const { return rewrite_present_; }
  const std::string& rewrite_rules() const { return rewrite_rules_; }
  const std::string& rewrite_order() const { return rewrite_order_; }
  int rewrite_filters_pulled() const { return rewrite_filters_pulled_; }
  int rewrite_filters_pushed() const { return rewrite_filters_pushed_; }
  int rewrite_joins_reordered() const { return rewrite_joins_reordered_; }
  int rewrite_blooms_planted() const { return rewrite_blooms_planted_; }
  uint64_t rewrite_bloom_dropped() const { return rewrite_bloom_dropped_; }

  // --- accessors -----------------------------------------------------------

  const std::deque<PipelineMetrics>& pipelines() const { return pipelines_; }
  const std::deque<OperatorMetrics>& operators() const { return operators_; }
  const std::vector<ScanMetrics>& scans() const { return scans_; }
  const std::vector<JoinMetrics>& joins() const { return joins_; }

  // Join record by executor join id; null when the id was never collected.
  const JoinMetrics* FindJoin(int join_id) const;

  // Sum of rows_out over operators named `name` (e.g. "hash_join_probe").
  OperatorTotals TotalsFor(const std::string& name) const;

  double seconds() const { return seconds_; }
  uint64_t source_tuples() const { return source_tuples_; }
  uint64_t result_rows() const { return result_rows_; }
  const PhaseTimer& phase_timer() const { return timer_; }
  const ByteCounter& phase_bytes() const { return bytes_; }

  // --- export --------------------------------------------------------------

  // Stable JSON document: object keys in fixed order, doubles printed with
  // %.6f. With include_timings=false all wall/cpu-time fields are omitted;
  // the remaining counters depend only on plan, data, and morsel scheduling
  // (morsels_per_worker is a race between workers), so single-threaded
  // output is byte-deterministic — that form is what tests snapshot.
  std::string ToJson(bool include_timings = true) const;

 private:
  int num_threads_;
  std::deque<PipelineMetrics> pipelines_;
  std::deque<OperatorMetrics> operators_;
  std::vector<ScanMetrics> scans_;
  std::vector<JoinMetrics> joins_;

  double seconds_ = 0;
  uint64_t source_tuples_ = 0;
  uint64_t result_rows_ = 0;
  uint64_t governor_budget_ = 0;
  uint64_t governor_high_water_ = 0;
  uint64_t governor_denials_ = 0;
  bool server_present_ = false;
  uint64_t server_query_id_ = 0;
  uint64_t server_session_id_ = 0;
  std::string server_state_;
  uint64_t server_granted_bytes_ = 0;
  uint64_t server_spill_pressure_ = 0;
  double server_queue_seconds_ = 0;
  std::string simd_tier_;
  bool stats_present_ = false;
  uint64_t stats_tables_ = 0;
  uint64_t stats_columns_ = 0;
  int stats_buckets_ = 0;
  bool encoding_present_ = false;
  uint64_t encoding_scans_encoded_ = 0;
  uint64_t encoding_coded_join_pairs_ = 0;
  uint64_t encoding_values_decoded_ = 0;
  uint64_t encoding_codes_emitted_ = 0;
  uint64_t encoding_scan_read_bytes_ = 0;
  uint64_t encoding_plain_read_bytes_ = 0;
  uint64_t encoding_spill_bytes_logical_ = 0;
  uint64_t encoding_spill_bytes_physical_ = 0;
  bool rewrite_present_ = false;
  std::string rewrite_rules_;
  std::string rewrite_order_;
  int rewrite_filters_pulled_ = 0;
  int rewrite_filters_pushed_ = 0;
  int rewrite_joins_reordered_ = 0;
  int rewrite_blooms_planted_ = 0;
  uint64_t rewrite_bloom_dropped_ = 0;
  PhaseTimer timer_;
  ByteCounter bytes_;
};

}  // namespace pjoin

#endif  // PJOIN_EXEC_QUERY_METRICS_H_
