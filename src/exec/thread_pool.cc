#include "exec/thread_pool.h"

#include "util/check.h"

namespace pjoin {

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  PJOIN_CHECK(num_threads >= 1);
  workers_.reserve(num_threads - 1);
  for (int i = 1; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::ParallelRun(const std::function<void(int)>& fn) {
  if (num_threads_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    pending_ = num_threads_ - 1;
    ++generation_;
  }
  cv_start_.notify_all();
  fn(0);
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
}

void ThreadPool::WorkerLoop(int thread_id) {
  uint64_t seen_generation = 0;
  while (true) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    (*job)(thread_id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

}  // namespace pjoin
