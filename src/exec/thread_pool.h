// Persistent worker pool executing parallel regions.
//
// Morsel-driven parallelism (Leis et al., used by the paper's system) runs a
// fixed set of workers that pull morsels from a shared queue. The pool here
// provides the "run this function on N workers and wait" primitive that the
// pipeline driver builds on.
#ifndef PJOIN_EXEC_THREAD_POOL_H_
#define PJOIN_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pjoin {

class ThreadPool {
 public:
  // Creates a pool with `num_threads` workers (>= 1). Worker 0 is the calling
  // thread: ParallelRun executes fn(0) inline, which keeps single-threaded
  // runs free of synchronization noise.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(thread_id) for thread_id in [0, num_threads) and blocks until all
  // invocations return. Not reentrant.
  void ParallelRun(const std::function<void(int)>& fn);

 private:
  void WorkerLoop(int thread_id);

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  uint64_t generation_ = 0;
  int pending_ = 0;
  bool shutdown_ = false;
};

}  // namespace pjoin

#endif  // PJOIN_EXEC_THREAD_POOL_H_
