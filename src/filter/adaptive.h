// Adaptive Bloom-filter controller (Section 5.4.1 of the paper).
//
// When almost every probe tuple passes the semi-join reducer, the filter
// lookup is pure overhead (up to one cache miss per check). The paper's
// adaptive BRJ samples the probe stream while filtering and switches the
// filter off once the observed pass rate shows it cannot pay off. The
// sampling overhead stays below 10%.
#ifndef PJOIN_FILTER_ADAPTIVE_H_
#define PJOIN_FILTER_ADAPTIVE_H_

#include <atomic>
#include <cstdint>

namespace pjoin {

class AdaptiveFilterController {
 public:
  // `pass_rate_threshold`: disable the filter once more than this fraction of
  // sampled tuples passes. The paper observes the crossover between BRJ and
  // RJ near 50% join partners; the default is deliberately conservative so
  // that TPC-H-like selectivities always keep the filter on.
  explicit AdaptiveFilterController(double pass_rate_threshold = 0.75,
                                    uint64_t min_samples = 16384)
      : threshold_(pass_rate_threshold), min_samples_(min_samples) {}

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Reports a sampled window of `checks` filter probes of which `passes`
  // passed; flips the filter off when the global pass rate crosses the
  // threshold. Thread-safe; meant to be called once per batch, not per tuple.
  void ReportWindow(uint64_t checks, uint64_t passes) {
    uint64_t total_checks =
        checks_.fetch_add(checks, std::memory_order_relaxed) + checks;
    uint64_t total_passes =
        passes_.fetch_add(passes, std::memory_order_relaxed) + passes;
    if (total_checks >= min_samples_ &&
        static_cast<double>(total_passes) >
            threshold_ * static_cast<double>(total_checks)) {
      enabled_.store(false, std::memory_order_relaxed);
    }
  }

  uint64_t sampled_checks() const {
    return checks_.load(std::memory_order_relaxed);
  }

  void Reset() {
    enabled_.store(true, std::memory_order_relaxed);
    checks_.store(0, std::memory_order_relaxed);
    passes_.store(0, std::memory_order_relaxed);
  }

 private:
  const double threshold_;
  const uint64_t min_samples_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> checks_{0};
  std::atomic<uint64_t> passes_{0};
};

}  // namespace pjoin

#endif  // PJOIN_FILTER_ADAPTIVE_H_
