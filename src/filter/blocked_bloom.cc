#include "filter/blocked_bloom.h"

#include <cstring>

#include "util/bitutil.h"
#include "util/check.h"

namespace pjoin {

void BlockedBloomFilter::Resize(uint64_t expected_keys, uint64_t min_blocks) {
  // ~16 bits per key => keys/4 blocks of 64 bits.
  uint64_t want = expected_keys / 4 + 1;
  if (want < min_blocks) want = min_blocks;
  num_blocks_ = NextPow2(want);
  block_mask_ = num_blocks_ - 1;
  storage_.Allocate(num_blocks_ * sizeof(uint64_t));
  blocks_ = reinterpret_cast<uint64_t*>(storage_.data());
  std::memset(blocks_, 0, num_blocks_ * sizeof(uint64_t));
}

}  // namespace pjoin
