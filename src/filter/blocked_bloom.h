// Register-blocked Bloom filter (Lang et al., "Performance-optimal
// filtering"), the semi-join reducer of the Bloom radix join (Section 4.7).
//
// The filter is an array of 64-bit blocks. Each key sets k bits inside a
// single block, so a membership check touches exactly one cache line — at
// most one cache miss per probe.
//
// Bit-range discipline: tuples carry a 64-bit hash. The radix partitioner
// consumes the LOW bits, so the block index is taken from the low bits too —
// deliberately: all keys of one radix partition then fall into a disjoint
// block range (block_index mod fanout == partition). That is what lets the
// second build-side partition pass write the filter without synchronization
// ("two partitions cannot share blocks"). The k in-block bit positions come
// from the HIGH hash bits, which no other consumer uses.
#ifndef PJOIN_FILTER_BLOCKED_BLOOM_H_
#define PJOIN_FILTER_BLOCKED_BLOOM_H_

#include <atomic>
#include <cstdint>

#include "util/aligned_buffer.h"

namespace pjoin {

class BlockedBloomFilter {
 public:
  BlockedBloomFilter() = default;

  // Sizes the filter for `expected_keys` at ~16 bits per key (rounded to a
  // power-of-two block count, at least `min_blocks`). Clears all bits.
  void Resize(uint64_t expected_keys, uint64_t min_blocks = 1);

  bool initialized() const { return num_blocks_ != 0; }
  uint64_t num_blocks() const { return num_blocks_; }
  uint64_t SizeBytes() const { return num_blocks_ * 8; }

  uint64_t BlockIndex(uint64_t hash) const { return hash & block_mask_; }

  // The k-bit in-block mask for `hash` (k = 4 sectors of 6 bits each).
  static uint64_t BitMask(uint64_t hash) {
    uint64_t mask = 0;
    mask |= uint64_t{1} << ((hash >> 40) & 63);
    mask |= uint64_t{1} << ((hash >> 46) & 63);
    mask |= uint64_t{1} << ((hash >> 52) & 63);
    mask |= uint64_t{1} << ((hash >> 58) & 63);
    return mask;
  }

  // Single-writer insert: used from the second build-side partition pass,
  // where each task owns a disjoint block range (see file comment).
  void InsertUnsynchronized(uint64_t hash) {
    blocks_[BlockIndex(hash)] |= BitMask(hash);
  }

  // Thread-safe insert for callers without a partitioning guarantee.
  void InsertAtomic(uint64_t hash) {
    std::atomic_ref<uint64_t>(blocks_[BlockIndex(hash)])
        .fetch_or(BitMask(hash), std::memory_order_relaxed);
  }

  bool MayContain(uint64_t hash) const {
    uint64_t mask = BitMask(hash);
    return (blocks_[BlockIndex(hash)] & mask) == mask;
  }

  const uint64_t* blocks() const { return blocks_; }
  uint64_t block_mask() const { return block_mask_; }

 private:
  AlignedBuffer storage_;
  uint64_t* blocks_ = nullptr;
  uint64_t num_blocks_ = 0;
  uint64_t block_mask_ = 0;
};

}  // namespace pjoin

#endif  // PJOIN_FILTER_BLOCKED_BLOOM_H_
