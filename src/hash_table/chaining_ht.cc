#include "hash_table/chaining_ht.h"

#include <cstring>

#include "exec/thread_pool.h"
#include "spill/memory_governor.h"
#include "util/bitutil.h"
#include "util/check.h"

namespace pjoin {

namespace {
// Worker-local buffers are created lazily per thread id; we size for the
// maximum sensible thread count instead of threading a pool through the
// constructor.
constexpr int kMaxThreads = 256;
}  // namespace

ChainingHashTable::ChainingHashTable(uint32_t row_stride, bool track_matches)
    : row_stride_(row_stride),
      track_matches_(track_matches),
      header_size_(track_matches ? 24 : 16),
      // Rounded up to 8 so the header words (next/hash/matched) stay
      // naturally aligned in every packed entry; MarkMatched's atomic_ref
      // requires it, and pages are cache-line aligned.
      entry_stride_((header_size_ + row_stride + 7u) & ~7u) {
  build_buffers_.reserve(kMaxThreads);
  for (int i = 0; i < kMaxThreads; ++i) {
    build_buffers_.emplace_back(entry_stride_);
  }
}

ChainingHashTable::~ChainingHashTable() {
  if (accounted_dir_bytes_ > 0) {
    MemoryGovernor::Global().Release(accounted_dir_bytes_);
  }
}

void ChainingHashTable::MaterializeEntry(int thread_id, uint64_t hash,
                                         const std::byte* row,
                                         uint32_t row_bytes) {
  PJOIN_DCHECK(row_bytes <= row_stride_);
  std::byte* entry = build_buffers_[thread_id].AppendSlot();
  std::memset(entry, 0, header_size_);
  std::memcpy(entry + 8, &hash, 8);
  std::memcpy(entry + header_size_, row, row_bytes);
}

void ChainingHashTable::Build(ThreadPool& pool) {
  num_entries_ = 0;
  for (const RowBuffer& buf : build_buffers_) num_entries_ += buf.size();

  // One slot per entry on average keeps chains short; the directory is a
  // power of two so the high hash bits index it with a shift and mask.
  dir_size_ = NextPow2(num_entries_ | 1) * 2;
  if (dir_size_ < 64) dir_size_ = 64;
  dir_shift_ = 64 - Log2Pow2(dir_size_);
  dir_storage_.Allocate(dir_size_ * sizeof(std::atomic<uint64_t>));
  dir_ = reinterpret_cast<std::atomic<uint64_t>*>(dir_storage_.data());
  std::memset(dir_storage_.data(), 0, dir_size_ * 8);
  if (accounted_dir_bytes_ > 0) {
    MemoryGovernor::Global().Release(accounted_dir_bytes_);
  }
  accounted_dir_bytes_ = dir_size_ * 8;
  MemoryGovernor::Global().Account(accounted_dir_bytes_);

  // Parallel bulk insert: each worker pushes the entries of its own
  // materialization buffer. CAS loop per entry; tags are folded into the
  // same word, so one successful CAS publishes pointer and tag together.
  pool.ParallelRun([&](int tid) {
    for (size_t b = tid; b < build_buffers_.size();
         b += static_cast<size_t>(pool.num_threads())) {
      build_buffers_[b].ForEachPage([&](const std::byte* rows, uint32_t count) {
        for (uint32_t i = 0; i < count; ++i) {
          std::byte* entry =
              const_cast<std::byte*>(rows) + static_cast<size_t>(i) * entry_stride_;
          uint64_t hash = EntryHash(entry);
          std::atomic<uint64_t>& slot = dir_[DirIndex(hash)];
          uint64_t ptr_bits = reinterpret_cast<uint64_t>(entry);
          PJOIN_DCHECK((ptr_bits & ~kPointerMask) == 0);
          uint64_t old = slot.load(std::memory_order_relaxed);
          uint64_t desired;
          do {
            // Chain push-front: entry->next = old head.
            uint64_t next = old & kPointerMask;
            std::memcpy(entry, &next, 8);
            desired = ptr_bits | (old & ~kPointerMask) | TagOf(hash);
          } while (!slot.compare_exchange_weak(old, desired,
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
        }
      });
    }
  });
}

uint64_t ChainingHashTable::MaterializedBytes() const {
  uint64_t total = 0;
  for (const RowBuffer& buf : build_buffers_) total += buf.TotalBytes();
  return total;
}

}  // namespace pjoin
