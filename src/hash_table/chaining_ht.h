// Global chaining hash table of the buffered non-partitioned hash join.
//
// Design follows Leis et al. (morsel-driven parallelism) and Lang et al.:
//  * The build pipeline first materializes entries into worker-local paged
//    buffers; the directory is then sized exactly once (no resizing) and
//    filled in a parallel bulk pass using lock-free CAS pushes.
//  * Directory slots are 64-bit words packing a 48-bit entry pointer and a
//    16-bit Bloom tag ("tagged pointers"), the BHJ's fuzzy semi-join
//    reducer: a probe whose tag bit is absent skips the chain walk — and,
//    pushed down into the probe pipeline, skips the tuple entirely.
//  * Probing is batch-wise with software prefetching (relaxed operator
//    fusion): one pass computes hashes and prefetches directory slots, the
//    second pass walks chains.
//
// Entry memory layout: [next: 8B][hash: 8B][optional matched: 8B][row bytes].
// The matched word exists only for join kinds that must track which build
// rows found a partner (right-outer / build-side semi & anti).
#ifndef PJOIN_HASH_TABLE_CHAINING_HT_H_
#define PJOIN_HASH_TABLE_CHAINING_HT_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "storage/row_buffer.h"
#include "util/aligned_buffer.h"
#include "util/prefetch.h"

namespace pjoin {

class ThreadPool;

class ChainingHashTable {
 public:
  // `row_stride`: width of the materialized build row; `track_matches`:
  // reserve the matched word in every entry.
  ChainingHashTable(uint32_t row_stride, bool track_matches);
  ~ChainingHashTable();

  uint32_t entry_stride() const { return entry_stride_; }
  uint32_t header_size() const { return header_size_; }
  bool track_matches() const { return track_matches_; }

  // --- Build phase -------------------------------------------------------

  // Returns the worker-local entry buffer for materialization. The caller
  // fills [hash][row] via MaterializeEntry.
  RowBuffer& build_buffer(int thread_id) { return build_buffers_[thread_id]; }

  // Appends one entry to `thread_id`'s buffer.
  void MaterializeEntry(int thread_id, uint64_t hash, const std::byte* row,
                        uint32_t row_bytes);

  // Sizes the directory for the materialized entry count and inserts all
  // entries in parallel. Safe to call once.
  void Build(ThreadPool& pool);

  uint64_t num_entries() const { return num_entries_; }
  uint64_t directory_size() const { return dir_size_; }
  uint64_t DirectoryBytes() const { return dir_size_ * 8; }

  // --- Probe phase -------------------------------------------------------

  static constexpr uint64_t kPointerMask = (uint64_t{1} << 48) - 1;

  // 16-bit tag with a single bit derived from hash bits [16, 20) — disjoint
  // from both the directory index (top bits) and the radix bits (low bits),
  // so entries sharing a directory slot still spread over all 16 tag bits.
  static uint64_t TagOf(uint64_t hash) {
    return uint64_t{1} << (48 + ((hash >> 16) & 15));
  }

  uint64_t DirIndex(uint64_t hash) const {
    // High bits select the slot; the low bits belong to the radix
    // partitioner, and hash tables built on partition output must not reuse
    // them (all tuples of a partition share them).
    return (hash >> dir_shift_) & (dir_size_ - 1);
  }

  // Raw slot load (for prefetch-then-probe loops).
  uint64_t LoadSlot(uint64_t dir_index) const {
    return dir_[dir_index].load(std::memory_order_relaxed);
  }
  void PrefetchSlot(uint64_t hash) const {
    PrefetchForRead(&dir_[DirIndex(hash)]);
  }

  // Raw directory view for the batched tag-probe kernel. The probe phase
  // starts after Build()'s barrier, so plain 64-bit loads observe the final
  // slot values (the kernel's gather cannot go through std::atomic).
  const uint64_t* dir_words() const {
    return reinterpret_cast<const uint64_t*>(dir_);
  }
  int dir_shift() const { return dir_shift_; }
  uint64_t dir_mask() const { return dir_size_ - 1; }

  // Head of chain for `hash` after the tag check, or nullptr when the tag
  // already proves absence.
  const std::byte* ChainHead(uint64_t hash) const {
    uint64_t slot = LoadSlot(DirIndex(hash));
    if ((slot & TagOf(hash)) == 0) return nullptr;
    return reinterpret_cast<const std::byte*>(slot & kPointerMask);
  }

  // Entry field accessors.
  static const std::byte* EntryNext(const std::byte* entry) {
    uint64_t next;
    std::memcpy(&next, entry, 8);
    return reinterpret_cast<const std::byte*>(next);
  }
  static uint64_t EntryHash(const std::byte* entry) {
    uint64_t h;
    std::memcpy(&h, entry + 8, 8);
    return h;
  }
  const std::byte* EntryRow(const std::byte* entry) const {
    return entry + header_size_;
  }

  // Matched-flag handling (entries must have been built with
  // track_matches=true).
  void MarkMatched(const std::byte* entry) const {
    std::atomic_ref<uint64_t>(
        *reinterpret_cast<uint64_t*>(const_cast<std::byte*>(entry) + 16))
        .store(1, std::memory_order_relaxed);
  }
  static bool IsMatched(const std::byte* entry) {
    uint64_t m;
    std::memcpy(&m, entry + 16, 8);
    return m != 0;
  }

  // Iterates all entries (e.g., to emit unmatched build rows); fn(entry).
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const RowBuffer& buf : build_buffers_) {
      buf.ForEachPage([&](const std::byte* rows, uint32_t count) {
        for (uint32_t i = 0; i < count; ++i) {
          fn(rows + static_cast<size_t>(i) * entry_stride_);
        }
      });
    }
  }

  // Total bytes written during materialization (for the bandwidth profile).
  uint64_t MaterializedBytes() const;

 private:
  uint32_t row_stride_;
  bool track_matches_;
  uint32_t header_size_;
  uint32_t entry_stride_;

  std::vector<RowBuffer> build_buffers_;
  uint64_t num_entries_ = 0;

  AlignedBuffer dir_storage_;
  std::atomic<uint64_t>* dir_ = nullptr;
  uint64_t dir_size_ = 0;
  int dir_shift_ = 0;
  // Directory bytes reported to the memory governor (entry pages account
  // themselves inside RowBuffer).
  uint64_t accounted_dir_bytes_ = 0;
};

}  // namespace pjoin

#endif  // PJOIN_HASH_TABLE_CHAINING_HT_H_
