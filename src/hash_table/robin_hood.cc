#include "hash_table/robin_hood.h"

#include <utility>

#include "spill/memory_governor.h"
#include "util/check.h"

namespace pjoin {

RobinHoodTable::~RobinHoodTable() {
  if (accounted_bytes_ > 0) {
    MemoryGovernor::Global().Release(accounted_bytes_);
  }
}

RobinHoodTable::RobinHoodTable(RobinHoodTable&& other) noexcept
    : storage_(std::move(other.storage_)),
      slots_(other.slots_),
      capacity_(other.capacity_),
      mask_(other.mask_),
      shift_(other.shift_),
      size_(other.size_),
      grow_count_(other.grow_count_),
      peak_bytes_(other.peak_bytes_),
      accounted_bytes_(other.accounted_bytes_) {
  other.slots_ = nullptr;
  other.capacity_ = 0;
  other.size_ = 0;
  other.accounted_bytes_ = 0;
}

RobinHoodTable& RobinHoodTable::operator=(RobinHoodTable&& other) noexcept {
  if (this != &other) {
    if (accounted_bytes_ > 0) {
      MemoryGovernor::Global().Release(accounted_bytes_);
    }
    storage_ = std::move(other.storage_);
    slots_ = other.slots_;
    capacity_ = other.capacity_;
    mask_ = other.mask_;
    shift_ = other.shift_;
    size_ = other.size_;
    grow_count_ = other.grow_count_;
    peak_bytes_ = other.peak_bytes_;
    accounted_bytes_ = other.accounted_bytes_;
    other.slots_ = nullptr;
    other.capacity_ = 0;
    other.size_ = 0;
    other.accounted_bytes_ = 0;
  }
  return *this;
}

void RobinHoodTable::Reset(uint64_t count) {
  // Load factor <= 2/3 keeps probe sequences short even for adversarial
  // hash distributions within a partition.
  uint64_t want = NextPow2(count + count / 2 + 1);
  if (want < 16) want = 16;
  capacity_ = want;
  mask_ = capacity_ - 1;
  shift_ = 64 - Log2Pow2(capacity_);
  if (capacity_ * sizeof(Slot) > peak_bytes_) {
    peak_bytes_ = capacity_ * sizeof(Slot);
    ++grow_count_;
  }
  if (peak_bytes_ > accounted_bytes_) {
    // Amortized: only segment growth is reported, Resets that reuse the
    // segment cost nothing.
    MemoryGovernor::Global().Account(peak_bytes_ - accounted_bytes_);
    accounted_bytes_ = peak_bytes_;
  }
  storage_.EnsureCapacity(capacity_ * sizeof(Slot));
  slots_ = reinterpret_cast<Slot*>(storage_.data());
  std::memset(slots_, 0, capacity_ * sizeof(Slot));
  size_ = 0;
}

void RobinHoodTable::Insert(uint64_t hash, const std::byte* tuple) {
  PJOIN_DCHECK(size_ < capacity_);
  uint64_t idx = HomeSlot(hash);
  uint64_t dist = 0;
  Slot incoming{hash, tuple};
  while (true) {
    Slot& s = slots_[idx];
    if (s.tuple == nullptr) {
      s = incoming;
      ++size_;
      return;
    }
    uint64_t s_dist = (idx - HomeSlot(s.hash)) & mask_;
    if (s_dist < dist) {
      // Rob the rich: displace the closer-to-home resident.
      Slot tmp = s;
      s = incoming;
      incoming = tmp;
      dist = s_dist;
    }
    idx = (idx + 1) & mask_;
    ++dist;
  }
}

}  // namespace pjoin
