// Robin-hood open-addressing hash table for the per-partition join phase.
//
// Section 4.6 of the paper: each join morsel builds its hash table on the
// fly with robin-hood hashing ("the most robust performance for thread-local
// workloads", after Richter et al.), stores only pointers to the partitioned
// tuples, sizes the table exactly (the partition cardinality is known), and
// reuses the memory segment across partitions to avoid allocation cost.
//
// Slots are 16 bytes: {hash, tuple pointer}; empty slots have a null
// pointer. Lookup walks forward from the home slot until it either finds the
// hash or passes a slot whose probe distance is shorter than its own (the
// robin-hood invariant guarantees the key cannot be further away).
#ifndef PJOIN_HASH_TABLE_ROBIN_HOOD_H_
#define PJOIN_HASH_TABLE_ROBIN_HOOD_H_

#include <cstdint>
#include <cstring>

#include "util/aligned_buffer.h"
#include "util/bitutil.h"

namespace pjoin {

class RobinHoodTable {
 public:
  struct Slot {
    uint64_t hash;
    const std::byte* tuple;
  };
  static_assert(sizeof(Slot) == 16);

  RobinHoodTable() = default;
  ~RobinHoodTable();

  // Moves transfer governor accounting along with the segment.
  RobinHoodTable(RobinHoodTable&& other) noexcept;
  RobinHoodTable& operator=(RobinHoodTable&& other) noexcept;

  // Prepares the table for `count` keys; reuses the memory segment when it
  // is already large enough, only clearing the live region.
  void Reset(uint64_t count);

  // Inserts a tuple pointer under `hash`. The table must have spare
  // capacity (guaranteed by Reset's sizing).
  void Insert(uint64_t hash, const std::byte* tuple);

  // Calls fn(tuple, slot_index) for every slot whose hash equals `hash`.
  template <typename Fn>
  void ForEachMatch(uint64_t hash, Fn&& fn) const {
    uint64_t idx = HomeSlot(hash);
    uint64_t dist = 0;
    while (true) {
      const Slot& s = slots_[idx];
      if (s.tuple == nullptr) return;
      uint64_t s_dist = (idx - HomeSlot(s.hash)) & mask_;
      if (s_dist < dist) return;  // robin-hood bound: key cannot follow
      if (s.hash == hash) fn(s.tuple, idx);
      idx = (idx + 1) & mask_;
      ++dist;
    }
  }

  uint64_t capacity() const { return capacity_; }
  uint64_t size() const { return size_; }
  const Slot& slot(uint64_t i) const { return slots_[i]; }

  // Bytes of the live slot region (reported as hash-table footprint).
  uint64_t FootprintBytes() const { return capacity_ * sizeof(Slot); }

  // Times Reset had to grow the reused memory segment (the "resize count"
  // of the per-partition join phase: ideally ~1 per worker, since segment
  // reuse across partitions is the whole point of Section 4.6).
  uint64_t grow_count() const { return grow_count_; }
  // Largest slot region ever allocated by this table.
  uint64_t peak_bytes() const { return peak_bytes_; }

 private:
  uint64_t HomeSlot(uint64_t hash) const {
    // High bits: the low bits are constant within one radix partition.
    return (hash >> shift_) & mask_;
  }

  AlignedBuffer storage_;
  Slot* slots_ = nullptr;
  uint64_t capacity_ = 0;
  uint64_t mask_ = 0;
  int shift_ = 64;
  uint64_t size_ = 0;
  uint64_t grow_count_ = 0;
  uint64_t peak_bytes_ = 0;
  // Bytes reported to the memory governor (== peak_bytes_, the segment is
  // kept across Resets).
  uint64_t accounted_bytes_ = 0;
};

}  // namespace pjoin

#endif  // PJOIN_HASH_TABLE_ROBIN_HOOD_H_
