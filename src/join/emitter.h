// Join output emission: projects (build row, probe row) pairs into the
// combined output layout and pushes full batches downstream.
//
// Projection lists are computed by the planner (only columns required by
// ancestor operators survive a join), so a join is also the projection
// boundary, exactly as in a code-generating engine.
#ifndef PJOIN_JOIN_EMITTER_H_
#define PJOIN_JOIN_EMITTER_H_

#include <cstring>
#include <utility>
#include <vector>

#include "exec/batch.h"
#include "exec/pipeline.h"
#include "storage/row_layout.h"

namespace pjoin {

struct JoinProjection {
  const RowLayout* output = nullptr;
  const RowLayout* build = nullptr;
  const RowLayout* probe = nullptr;
  // (output field, source field) index pairs.
  std::vector<std::pair<int, int>> from_build;
  std::vector<std::pair<int, int>> from_probe;
  // Output field receiving the mark flag (kMark joins), -1 otherwise.
  int mark_field = -1;
};

// Per-worker emitter; not thread-safe.
class JoinEmitter {
 public:
  // `metrics` (optional): the emitting operator's registry entry; every
  // pushed batch is counted as that operator's output.
  void Bind(const JoinProjection* projection, Operator* consumer,
            OperatorMetrics* metrics = nullptr) {
    projection_ = projection;
    consumer_ = consumer;
    metrics_ = metrics;
    scratch_.Bind(projection->output);
    batch_ = scratch_.Start();
  }

  void EmitPair(const std::byte* build_row, const std::byte* probe_row,
                ThreadContext& ctx) {
    std::byte* dst = Slot(ctx);
    CopySide(dst, projection_->from_build, *projection_->build, build_row);
    CopySide(dst, projection_->from_probe, *projection_->probe, probe_row);
  }

  // Probe-preserving emission with null (zeroed) build columns.
  void EmitProbeOnly(const std::byte* probe_row, ThreadContext& ctx) {
    std::byte* dst = Slot(ctx);
    ZeroSide(dst, projection_->from_build, *projection_->output);
    CopySide(dst, projection_->from_probe, *projection_->probe, probe_row);
  }

  // Build-preserving emission with null (zeroed) probe columns.
  void EmitBuildOnly(const std::byte* build_row, ThreadContext& ctx) {
    std::byte* dst = Slot(ctx);
    CopySide(dst, projection_->from_build, *projection_->build, build_row);
    ZeroSide(dst, projection_->from_probe, *projection_->output);
  }

  // Mark-join emission: probe columns plus the boolean marker. mark_field
  // is -1 when no ancestor references the mark column (the projection then
  // dropped it), so the marker write must be skipped, not aimed at field -1.
  void EmitMark(const std::byte* probe_row, bool matched, ThreadContext& ctx) {
    std::byte* dst = Slot(ctx);
    ZeroSide(dst, projection_->from_build, *projection_->output);
    CopySide(dst, projection_->from_probe, *projection_->probe, probe_row);
    if (projection_->mark_field >= 0) {
      projection_->output->SetInt64(dst, projection_->mark_field,
                                    matched ? 1 : 0);
    }
  }

  // Flushes the pending partial batch (call from Close).
  void Flush(ThreadContext& ctx) {
    if (batch_.size > 0) {
      Push(ctx);
    }
  }

  uint64_t rows_emitted() const { return rows_emitted_; }

 private:
  void Push(ThreadContext& ctx) {
    if (metrics_ != nullptr) {
      metrics_->AddOut(ctx.thread_id, batch_.size, 1);
    }
    consumer_->Consume(batch_, ctx);
    batch_ = scratch_.Start();
  }

  std::byte* Slot(ThreadContext& ctx) {
    if (scratch_.Full(batch_)) {
      Push(ctx);
    }
    ++rows_emitted_;
    return scratch_.AppendSlot(batch_);
  }

  void CopySide(std::byte* dst, const std::vector<std::pair<int, int>>& fields,
                const RowLayout& src_layout, const std::byte* src_row) const {
    const RowLayout& out = *projection_->output;
    for (const auto& [dst_f, src_f] : fields) {
      const RowField& df = out.field(dst_f);
      const RowField& sf = src_layout.field(src_f);
      PJOIN_DCHECK(df.width == sf.width);
      std::memcpy(dst + df.offset, src_row + sf.offset, df.width);
    }
  }

  static void ZeroSide(std::byte* dst,
                       const std::vector<std::pair<int, int>>& fields,
                       const RowLayout& out_layout) {
    for (const auto& [dst_f, src_f] : fields) {
      (void)src_f;
      const RowField& f = out_layout.field(dst_f);
      std::memset(dst + f.offset, 0, f.width);
    }
  }

  const JoinProjection* projection_ = nullptr;
  Operator* consumer_ = nullptr;
  OperatorMetrics* metrics_ = nullptr;
  BatchScratch scratch_;
  Batch batch_;
  uint64_t rows_emitted_ = 0;
};

// Writes one joined output row directly to `dst` (no batching) — used when
// a join must materialize pairs instead of streaming them (the BHJ
// right-outer path). Either side pointer may be null (zero padding).
inline void MaterializeJoinRow(const JoinProjection& projection,
                               std::byte* dst, const std::byte* build_row,
                               const std::byte* probe_row) {
  const RowLayout& out = *projection.output;
  for (const auto& [dst_f, src_f] : projection.from_build) {
    const RowField& df = out.field(dst_f);
    if (build_row != nullptr) {
      std::memcpy(dst + df.offset,
                  build_row + projection.build->field(src_f).offset,
                  df.width);
    } else {
      std::memset(dst + df.offset, 0, df.width);
    }
  }
  for (const auto& [dst_f, src_f] : projection.from_probe) {
    const RowField& df = out.field(dst_f);
    if (probe_row != nullptr) {
      std::memcpy(dst + df.offset,
                  probe_row + projection.probe->field(src_f).offset,
                  df.width);
    } else {
      std::memset(dst + df.offset, 0, df.width);
    }
  }
}

}  // namespace pjoin

#endif  // PJOIN_JOIN_EMITTER_H_
