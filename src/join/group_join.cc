#include "join/group_join.h"

#include <cstring>

#include "exec/batch.h"
#include "util/check.h"

namespace pjoin {

namespace {
constexpr int kMaxWorkers = 256;
}  // namespace

GroupJoin::GroupJoin(const RowLayout* build_layout, std::vector<int> build_keys,
                     const RowLayout* probe_layout, std::vector<int> probe_keys,
                     std::vector<AggDef> aggs, const RowLayout* output_layout)
    : build_layout_(build_layout),
      probe_layout_(probe_layout),
      output_layout_(output_layout),
      build_key_(build_layout, std::move(build_keys)),
      probe_key_(probe_layout, std::move(probe_keys)),
      aggs_(std::move(aggs)),
      table_(std::make_unique<ChainingHashTable>(build_layout->stride(),
                                                 /*track_matches=*/false)),
      worker_accums_(kMaxWorkers) {
  for (const auto& agg : aggs_) {
    if (agg.op == AggDef::Op::kCountStar) {
      agg_fields_.push_back(-1);
      agg_is_float_.push_back(false);
    } else {
      int f = probe_layout_->IndexOf(agg.input);
      agg_fields_.push_back(f);
      agg_is_float_.push_back(probe_layout_->field(f).type ==
                              DataType::kFloat64);
    }
  }
  // Output = build fields followed by one field per aggregate; validated so
  // planner-style misuse fails fast.
  PJOIN_CHECK(output_layout_->num_fields() ==
              build_layout_->num_fields() + static_cast<int>(aggs_.size()));
}

void GroupJoin::MergeWorkerAccums() {
  merged_.clear();
  for (AccumMap& map : worker_accums_) {
    for (auto& [entry, accums] : map) {
      auto [it, inserted] = merged_.try_emplace(entry, std::move(accums));
      if (!inserted) {
        for (size_t a = 0; a < it->second.size(); ++a) {
          it->second[a].sum += accums[a].sum;
          it->second[a].isum += accums[a].isum;
          it->second[a].count += accums[a].count;
        }
      }
    }
    map.clear();
  }
}

void GroupJoinBuildSink::Consume(Batch& batch, ThreadContext& ctx) {
  ChainingHashTable& ht = join_->table();
  const KeySpec& key = join_->build_key();
  for (uint32_t i = 0; i < batch.size; ++i) {
    const std::byte* row = batch.Row(i);
    ht.MaterializeEntry(ctx.thread_id, key.Hash(row), row,
                        batch.layout->stride());
  }
}

void GroupJoinBuildSink::Finish(ExecContext& exec) {
  join_->table().Build(*exec.pool());
}

void GroupJoinProbeSink::Consume(Batch& batch, ThreadContext& ctx) {
  ChainingHashTable& ht = join_->table();
  const KeySpec& probe_key = join_->probe_key();
  const KeySpec& build_key = join_->build_key();
  const RowLayout* probe_layout = join_->probe_layout();
  GroupJoin::AccumMap& accums = join_->worker_accums(ctx.thread_id);
  const auto& agg_fields = join_->agg_fields();
  const auto& agg_is_float = join_->agg_is_float();

  for (uint32_t i = 0; i < batch.size; ++i) {
    const std::byte* probe_row = batch.Row(i);
    const uint64_t hash = probe_key.Hash(probe_row);
    for (const std::byte* entry = ht.ChainHead(hash); entry != nullptr;
         entry = ChainingHashTable::EntryNext(entry)) {
      if (ChainingHashTable::EntryHash(entry) != hash ||
          !KeySpec::Equals(build_key, ht.EntryRow(entry), probe_key,
                           probe_row)) {
        continue;
      }
      auto [it, inserted] = accums.try_emplace(entry);
      if (inserted) {
        it->second.resize(agg_fields.size());
      }
      for (size_t a = 0; a < agg_fields.size(); ++a) {
        GroupJoin::Accum& acc = it->second[a];
        ++acc.count;
        if (agg_fields[a] < 0) continue;  // count(*)
        if (agg_is_float[a]) {
          acc.sum += probe_layout->GetFloat64(probe_row, agg_fields[a]);
        } else {
          acc.isum += probe_layout->GetNumeric(probe_row, agg_fields[a]);
        }
      }
      // Keep scanning the chain: duplicate build keys each get the probe
      // tuple (each duplicate is its own group).
    }
  }
}

void GroupJoinProbeSink::Finish(ExecContext& exec) {
  (void)exec;
  join_->MergeWorkerAccums();
}

void GroupJoinScanSource::Prepare(ExecContext& exec) {
  (void)exec;
  cursor_.store(0, std::memory_order_relaxed);
}

bool GroupJoinScanSource::ProduceMorsel(Operator& consumer,
                                        ThreadContext& ctx) {
  int idx = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= kMaxWorkers) return false;
  ChainingHashTable& ht = join_->table();
  RowBuffer& buffer = ht.build_buffer(idx);
  if (buffer.size() == 0) return true;

  const RowLayout* build_layout = join_->build_layout();
  const RowLayout* out = join_->output_layout();
  const auto& merged = join_->merged_accums();
  const auto& aggs = join_->aggs();
  const auto& agg_is_float = join_->agg_is_float();
  const int first_agg = build_layout->num_fields();

  BatchScratch scratch;
  scratch.Bind(out);
  Batch batch = scratch.Start();
  buffer.ForEachPage([&](const std::byte* rows, uint32_t count) {
    for (uint32_t i = 0; i < count; ++i) {
      const std::byte* entry =
          rows + static_cast<size_t>(i) * ht.entry_stride();
      if (scratch.Full(batch)) {
        consumer.Consume(batch, ctx);
        batch = scratch.Start();
      }
      std::byte* dst = scratch.AppendSlot(batch);
      std::memcpy(dst, ht.EntryRow(entry), build_layout->stride());
      auto it = merged.find(entry);
      for (size_t a = 0; a < aggs.size(); ++a) {
        const RowField& field = out->field(first_agg + static_cast<int>(a));
        const GroupJoin::Accum* acc =
            it != merged.end() ? &it->second[a] : nullptr;
        switch (aggs[a].op) {
          case AggDef::Op::kCount:
          case AggDef::Op::kCountStar:
            out->SetInt64(dst, first_agg + static_cast<int>(a),
                          acc != nullptr ? acc->count : 0);
            break;
          case AggDef::Op::kSum:
            if (agg_is_float[a]) {
              out->SetFloat64(dst, first_agg + static_cast<int>(a),
                              acc != nullptr ? acc->sum : 0.0);
            } else {
              out->SetInt64(dst, first_agg + static_cast<int>(a),
                            acc != nullptr ? acc->isum : 0);
            }
            break;
          case AggDef::Op::kAvg:
            out->SetFloat64(
                dst, first_agg + static_cast<int>(a),
                acc != nullptr && acc->count > 0
                    ? (agg_is_float[a]
                           ? acc->sum
                           : static_cast<double>(acc->isum)) /
                          static_cast<double>(acc->count)
                    : 0.0);
            break;
          case AggDef::Op::kMin:
          case AggDef::Op::kMax:
            PJOIN_CHECK_MSG(false,
                            "groupjoin supports sum/count/avg aggregates");
        }
        (void)field;
      }
    }
  });
  if (batch.size > 0) consumer.Consume(batch, ctx);
  return true;
}

}  // namespace pjoin
