// Groupjoin: a fused join + group-by operator (Moerkotte & Neumann,
// "Accelerating queries with group-by and join by groupjoin").
//
// The paper's system evaluates TPC-H Q13 with a groupjoin (footnote 6),
// which is why Q13 does not appear among the 59 replaceable equi-joins.
// This extension implements the operator: the build side defines the groups
// (one output row per distinct build key), the probe side is aggregated
// directly into the matching group without materializing join pairs, and
// groups without probe matches are emitted with zero/empty aggregates
// (left-outer groupjoin semantics — exactly what `count(o_orderkey)` over a
// `LEFT JOIN` needs).
//
// Pipeline shape: build sink (breaker) -> probe accumulate (breaker) ->
// group scan (starter), mirroring the build-preserving joins.
#ifndef PJOIN_JOIN_GROUP_JOIN_H_
#define PJOIN_JOIN_GROUP_JOIN_H_

#include <atomic>
#include <memory>
#include <vector>

#include "engine/hash_agg.h"
#include "exec/pipeline.h"
#include "hash_table/chaining_ht.h"
#include "join/key_spec.h"

namespace pjoin {

class GroupJoin {
 public:
  // Output layout: the required build columns followed by one kInt64 or
  // kFloat64 field per aggregate (named by the AggDef). Build keys are
  // assumed unique (primary-key groups, as in Q13); duplicate build keys
  // each form their own group and receive the same probe matches.
  GroupJoin(const RowLayout* build_layout, std::vector<int> build_keys,
            const RowLayout* probe_layout, std::vector<int> probe_keys,
            std::vector<AggDef> aggs, const RowLayout* output_layout);

  ChainingHashTable& table() { return *table_; }
  const KeySpec& build_key() const { return build_key_; }
  const KeySpec& probe_key() const { return probe_key_; }
  const RowLayout* build_layout() const { return build_layout_; }
  const RowLayout* probe_layout() const { return probe_layout_; }
  const RowLayout* output_layout() const { return output_layout_; }
  const std::vector<AggDef>& aggs() const { return aggs_; }

  // Per-group accumulator state, addressed by hash-table entry pointer.
  struct Accum {
    double sum = 0;
    int64_t isum = 0;
    int64_t count = 0;
  };

  // Probe-side aggregate input fields (−1 for count(*)), resolved once.
  const std::vector<int>& agg_fields() const { return agg_fields_; }
  const std::vector<bool>& agg_is_float() const { return agg_is_float_; }

  // Thread-local accumulation maps merged at probe Finish.
  using AccumMap =
      std::unordered_map<const std::byte*, std::vector<Accum>>;
  AccumMap& worker_accums(int thread_id) { return worker_accums_[thread_id]; }
  void MergeWorkerAccums();
  const AccumMap& merged_accums() const { return merged_; }

 private:
  const RowLayout* build_layout_;
  const RowLayout* probe_layout_;
  const RowLayout* output_layout_;
  KeySpec build_key_;
  KeySpec probe_key_;
  std::vector<AggDef> aggs_;
  std::vector<int> agg_fields_;
  std::vector<bool> agg_is_float_;
  std::unique_ptr<ChainingHashTable> table_;
  std::vector<AccumMap> worker_accums_;
  AccumMap merged_;
};

// Build pipeline breaker: materializes the group-defining rows.
class GroupJoinBuildSink : public Operator {
 public:
  explicit GroupJoinBuildSink(GroupJoin* join) : join_(join) {}
  void Consume(Batch& batch, ThreadContext& ctx) override;
  void Finish(ExecContext& exec) override;
  const RowLayout* OutputLayout() const override {
    return join_->build_layout();
  }

 private:
  GroupJoin* join_;
};

// Probe pipeline breaker: aggregates probe tuples into their groups.
class GroupJoinProbeSink : public Operator {
 public:
  explicit GroupJoinProbeSink(GroupJoin* join) : join_(join) {}
  void Consume(Batch& batch, ThreadContext& ctx) override;
  void Finish(ExecContext& exec) override;
  const RowLayout* OutputLayout() const override {
    return join_->probe_layout();
  }

 private:
  GroupJoin* join_;
};

// Pipeline starter: emits one output row per group (including empty ones).
class GroupJoinScanSource : public Source {
 public:
  explicit GroupJoinScanSource(GroupJoin* join) : join_(join) {}
  void Prepare(ExecContext& exec) override;
  bool ProduceMorsel(Operator& consumer, ThreadContext& ctx) override;
  const RowLayout* OutputLayout() const override {
    return join_->output_layout();
  }

 private:
  GroupJoin* join_;
  std::atomic<int> cursor_{0};
};

}  // namespace pjoin

#endif  // PJOIN_JOIN_GROUP_JOIN_H_
