#include "join/hash_join.h"

#include <algorithm>

#include "util/stopwatch.h"

namespace pjoin {

HashJoin::HashJoin(JoinKind kind, const RowLayout* build_layout,
                   std::vector<int> build_keys, const RowLayout* probe_layout,
                   std::vector<int> probe_keys, JoinProjection projection)
    : kind_(kind),
      build_layout_(build_layout),
      build_key_(build_layout, std::move(build_keys)),
      probe_key_(probe_layout, std::move(probe_keys)),
      projection_(std::move(projection)),
      table_(std::make_unique<ChainingHashTable>(build_layout->stride(),
                                                 TracksBuildMatches(kind))) {
  if (kind == JoinKind::kRightOuter) {
    pair_buffers_.reserve(256);
    for (int i = 0; i < 256; ++i) {
      pair_buffers_.emplace_back(projection_.output->stride());
    }
  }
}

RowBuffer& HashJoin::pair_buffer(int thread_id) {
  return pair_buffers_[thread_id];
}

JoinMetrics HashJoin::CollectMetrics() const {
  JoinMetrics m;
  m.join_id = join_id_;
  m.kind = kind_;
  m.strategy = JoinStrategy::kBHJ;
  m.build_tuples = table_->num_entries();
  m.probe_tuples = probe_seen_.load(std::memory_order_relaxed);
  m.probe_matched = probe_matched_.load(std::memory_order_relaxed);
  m.has_hash_table = true;
  HashTableMetrics& ht = m.hash_table;
  ht.build_tuples = table_->num_entries();
  ht.directory_slots = table_->directory_size();
  ht.directory_bytes = table_->DirectoryBytes();
  ht.materialized_bytes = table_->MaterializedBytes();
  ht.resizes = 0;  // the directory is sized exactly once (Section 4.3)
  // Chain statistics from a directory walk: entries past the chain head are
  // the CAS-push "collisions" a probe must traverse.
  for (uint64_t s = 0; s < table_->directory_size(); ++s) {
    uint64_t slot = table_->LoadSlot(s);
    const std::byte* entry =
        reinterpret_cast<const std::byte*>(slot & ChainingHashTable::kPointerMask);
    uint64_t len = 0;
    while (entry != nullptr) {
      ++len;
      entry = ChainingHashTable::EntryNext(entry);
    }
    if (len > 1) ht.chained_entries += len - 1;
    if (len > ht.max_chain) ht.max_chain = len;
  }
  return m;
}

void HashJoinBuildSink::Consume(Batch& batch, ThreadContext& ctx) {
  MetricsIn(batch, ctx);
  ChainingHashTable& ht = join_->table();
  const KeySpec& key = join_->build_key();
  const uint32_t stride = batch.layout->stride();
  for (uint32_t i = 0; i < batch.size; ++i) {
    const std::byte* row = batch.Row(i);
    ht.MaterializeEntry(ctx.thread_id, key.Hash(row), row, stride);
  }
  ctx.bytes->AddWrite(JoinPhase::kBuildPipeline,
                      static_cast<uint64_t>(batch.size) * ht.entry_stride());
}

void HashJoinBuildSink::Finish(ExecContext& exec) {
  Stopwatch watch;
  join_->table().Build(*exec.pool());
  exec.timer().Add(JoinPhase::kBuildPipeline, watch.ElapsedSeconds());
}

void HashJoinProbe::Prepare(ExecContext& exec) {
  emitters_.resize(exec.num_threads());
}

void HashJoinProbe::Open(ThreadContext& ctx) {
  emitters_[ctx.thread_id].Bind(&join_->projection(), next_, metrics_);
}

void HashJoinProbe::Consume(Batch& batch, ThreadContext& ctx) {
  MetricsIn(batch, ctx);
  ChainingHashTable& ht = join_->table();
  const KeySpec& probe_key = join_->probe_key();
  const KeySpec& build_key = join_->build_key();
  const JoinKind kind = join_->kind();
  JoinEmitter& emitter = emitters_[ctx.thread_id];

  // Relaxed operator fusion: the batch is the staging buffer. First loop
  // computes hashes and prefetches directory cache lines; second loop walks
  // chains with the slots (likely) already in cache.
  uint64_t hashes[kBatchCapacity];
  for (uint32_t i = 0; i < batch.size; ++i) {
    hashes[i] = probe_key.Hash(batch.Row(i));
    ht.PrefetchSlot(hashes[i]);
  }
  ctx.bytes->AddRead(JoinPhase::kProbePipeline,
                     static_cast<uint64_t>(batch.size) *
                         batch.layout->stride());

  uint64_t matched_tuples = 0;
  for (uint32_t i = 0; i < batch.size; ++i) {
    const std::byte* probe_row = batch.Row(i);
    const uint64_t hash = hashes[i];
    // Tagged-pointer reducer: a missing tag bit skips the chain walk.
    const std::byte* entry = ht.ChainHead(hash);
    bool matched = false;
    while (entry != nullptr) {
      if (ChainingHashTable::EntryHash(entry) == hash &&
          KeySpec::Equals(build_key, ht.EntryRow(entry), probe_key,
                          probe_row)) {
        matched = true;
        switch (kind) {
          case JoinKind::kInner:
          case JoinKind::kLeftOuter:
            emitter.EmitPair(ht.EntryRow(entry), probe_row, ctx);
            break;
          case JoinKind::kRightOuter:
            // Matched pairs are materialized (the downstream operators run
            // after the post-probe build scan) and replayed from there.
            MaterializeJoinRow(join_->projection(),
                               join_->pair_buffer(ctx.thread_id).AppendSlot(),
                               ht.EntryRow(entry), probe_row);
            ht.MarkMatched(entry);
            break;
          case JoinKind::kProbeSemi:
            emitter.EmitProbeOnly(probe_row, ctx);
            break;
          case JoinKind::kBuildSemi:
          case JoinKind::kBuildAnti:
            ht.MarkMatched(entry);
            break;
          case JoinKind::kProbeAnti:
          case JoinKind::kMark:
            break;  // existence is all that matters
        }
        // Kinds that only need existence stop at the first match; kinds
        // that must visit every matching build tuple keep walking.
        if (kind == JoinKind::kProbeSemi || kind == JoinKind::kProbeAnti ||
            kind == JoinKind::kMark) {
          break;
        }
      }
      entry = ChainingHashTable::EntryNext(entry);
    }
    if (!matched && kind == JoinKind::kProbeAnti) {
      emitter.EmitProbeOnly(probe_row, ctx);
    } else if (!matched && kind == JoinKind::kLeftOuter) {
      emitter.EmitProbeOnly(probe_row, ctx);
    } else if (kind == JoinKind::kMark) {
      emitter.EmitMark(probe_row, matched, ctx);
    }
    matched_tuples += matched ? 1 : 0;
  }
  join_->AddProbeStats(batch.size, matched_tuples);
}

void HashJoinProbe::Close(ThreadContext& ctx) {
  emitters_[ctx.thread_id].Flush(ctx);
}

void HashJoinBuildScanSource::Prepare(ExecContext& exec) {
  (void)exec;
  num_buffers_ = 256;  // matches ChainingHashTable's worker-buffer bound
  cursor_.store(0, std::memory_order_relaxed);
}

bool HashJoinBuildScanSource::ProduceMorsel(Operator& consumer,
                                            ThreadContext& ctx) {
  // Morsels [0, num_buffers) replay the materialized right-outer pairs;
  // morsels [num_buffers, 2*num_buffers) scan entry buffers for the
  // matched/unmatched build rows the kind asks for.
  int idx = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= 2 * num_buffers_) return false;
  ChainingHashTable& ht = join_->table();
  if (idx < num_buffers_) {
    if (!join_->HasPairBuffers()) return true;
    RowBuffer& pairs = join_->pair_buffer(idx);
    if (pairs.size() == 0) return true;
    const RowLayout* out = join_->projection().output;
    pairs.ForEachPage([&](const std::byte* rows, uint32_t count) {
      // Pages hold output-format rows contiguously: forward them batch-wise
      // without copying.
      for (uint32_t off = 0; off < count; off += kBatchCapacity) {
        Batch batch;
        batch.layout = out;
        batch.rows = const_cast<std::byte*>(rows) +
                     static_cast<size_t>(off) * out->stride();
        batch.size = std::min<uint32_t>(kBatchCapacity, count - off);
        PushOut(consumer, batch, ctx);
      }
    });
    return true;
  }
  RowBuffer& buffer = ht.build_buffer(idx - num_buffers_);
  if (buffer.size() == 0) return true;

  JoinEmitter emitter;
  emitter.Bind(&join_->projection(), &consumer, metrics_);
  const JoinKind kind = join_->kind();
  buffer.ForEachPage([&](const std::byte* rows, uint32_t count) {
    for (uint32_t i = 0; i < count; ++i) {
      const std::byte* entry = rows + static_cast<size_t>(i) * ht.entry_stride();
      bool m = ChainingHashTable::IsMatched(entry);
      if ((kind == JoinKind::kBuildSemi && m) ||
          (kind == JoinKind::kBuildAnti && !m) ||
          (kind == JoinKind::kRightOuter && !m)) {
        emitter.EmitBuildOnly(ht.EntryRow(entry), ctx);
      }
    }
  });
  emitter.Flush(ctx);
  return true;
}

}  // namespace pjoin
