#include "join/hash_join.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <numeric>

#include "kernels/kernels.h"
#include "spill/memory_governor.h"
#include "util/bitutil.h"
#include "util/stopwatch.h"

namespace pjoin {

namespace {

// Routes spill-core emissions into the BHJ's native outputs: the worker's
// in-pipeline emitter for probe-preserving kinds, the right-outer pair
// buffer, and the build-row holding buffers replayed by the build scan.
class BhjSpillEmitter : public SpillEmitter {
 public:
  BhjSpillEmitter(HashJoin* join, JoinEmitter* emitter, ThreadContext* ctx)
      : join_(join), emitter_(emitter), ctx_(ctx) {}

  void Pair(const std::byte* build_row, const std::byte* probe_row) override {
    if (join_->kind() == JoinKind::kRightOuter) {
      MaterializeJoinRow(join_->projection(),
                         join_->pair_buffer(ctx_->thread_id).AppendSlot(),
                         build_row, probe_row);
    } else {
      emitter_->EmitPair(build_row, probe_row, *ctx_);
    }
  }
  void ProbeOnly(const std::byte* probe_row) override {
    emitter_->EmitProbeOnly(probe_row, *ctx_);
  }
  void BuildOnly(const std::byte* build_row) override {
    join_->spill_build_out(ctx_->thread_id).Append(build_row);
  }
  void Mark(const std::byte* probe_row, bool matched) override {
    emitter_->EmitMark(probe_row, matched, *ctx_);
  }

 private:
  HashJoin* join_;
  JoinEmitter* emitter_;
  ThreadContext* ctx_;
};

}  // namespace

HashJoin::HashJoin(JoinKind kind, const RowLayout* build_layout,
                   std::vector<int> build_keys, const RowLayout* probe_layout,
                   std::vector<int> probe_keys, JoinProjection projection)
    : kind_(kind),
      build_layout_(build_layout),
      build_key_(build_layout, std::move(build_keys)),
      probe_key_(probe_layout, std::move(probe_keys)),
      projection_(std::move(projection)),
      table_(std::make_unique<ChainingHashTable>(build_layout->stride(),
                                                 TracksBuildMatches(kind))) {
  if (kind == JoinKind::kRightOuter) {
    pair_buffers_.reserve(256);
    for (int i = 0; i < 256; ++i) {
      pair_buffers_.emplace_back(projection_.output->stride());
    }
  }
}

RowBuffer& HashJoin::pair_buffer(int thread_id) {
  return pair_buffers_[thread_id];
}

void HashJoin::FinishBuild(ExecContext& exec) {
  MemoryGovernor& gov = MemoryGovernor::Global();
  ChainingHashTable& ht = *table_;
  const uint32_t entry_stride = ht.entry_stride();
  const uint64_t staged_bytes = ht.MaterializedBytes();
  const uint64_t entries = staged_bytes / entry_stride;
  // Directory estimate mirrors ChainingHashTable::Build's sizing.
  uint64_t dir_slots = NextPow2(entries | 1) * 2;
  if (dir_slots < 64) dir_slots = 64;
  if (gov.WouldFit(dir_slots * 8)) {
    ht.Build(*exec.pool());
    return;
  }

  // Hybrid hash: the budget cannot hold the full table. Partition the staged
  // entries by the low fan-out bits, keep the largest partitions resident
  // within half of the reclaimable headroom (the other half stays free for
  // the directory, probe-side buffering and the spilled-pair join phase),
  // and push the rest to disk.
  std::array<uint64_t, kSpillFanout> part_entries{};
  ht.ForEachEntry([&](const std::byte* entry) {
    ++part_entries[ChainingHashTable::EntryHash(entry) & (kSpillFanout - 1)];
  });
  uint64_t avail = gov.Available();
  if (avail == UINT64_MAX) avail = 0;
  const uint64_t resident_budget = (avail + staged_bytes) / 2;

  std::array<int, kSpillFanout> order;
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return part_entries[a] > part_entries[b];
  });
  std::array<uint8_t, kSpillFanout> resident{};
  uint64_t resident_bytes = 0;
  for (int p : order) {
    const uint64_t bytes = part_entries[p] * entry_stride;
    if (part_entries[p] == 0 || resident_bytes + bytes <= resident_budget) {
      resident[p] = 1;
      resident_bytes += bytes;
    }
  }

  const uint32_t build_row_stride = build_layout_->stride();
  const uint32_t probe_row_stride = probe_key_.layout()->stride();
  auto spill = std::make_unique<SpillJoinState>(
      kSpillFanout, AlignUp(8 + build_row_stride, 8),
      AlignUp(8 + probe_row_stride, 8));
  for (int p = 0; p < kSpillFanout; ++p) {
    if (!resident[p]) spill->MarkSpilled(p);
  }
  if (spill->num_spilled() == 0) {
    // Degenerate plan (everything fit after all): stay fully in memory.
    ht.Build(*exec.pool());
    return;
  }
  spill_ = std::move(spill);
  if (EmitsBuildRows(kind_)) {
    spill_build_out_.reserve(256);
    for (int i = 0; i < 256; ++i) {
      spill_build_out_.emplace_back(build_row_stride);
    }
  }

  // Re-pack: resident entries move into a fresh table (so the old, too-large
  // buffers are actually freed), spilled entries stream to their partition
  // files. Worker-buffer granularity keeps destination buffers single-writer.
  auto fresh = std::make_unique<ChainingHashTable>(build_row_stride,
                                                   TracksBuildMatches(kind_));
  std::unique_ptr<ChainingHashTable> old = std::move(table_);
  std::atomic<uint64_t> spilled_tuples{0};
  exec.pool()->ParallelRun([&](int tid) {
    uint64_t local_spilled = 0;
    for (int b = tid; b < 256; b += exec.pool()->num_threads()) {
      old->build_buffer(b).ForEachPage(
          [&](const std::byte* rows, uint32_t count) {
            for (uint32_t i = 0; i < count; ++i) {
              const std::byte* entry =
                  rows + static_cast<size_t>(i) * entry_stride;
              const uint64_t hash = ChainingHashTable::EntryHash(entry);
              const int p = static_cast<int>(hash & (kSpillFanout - 1));
              if (spill_->IsSpilled(p)) {
                spill_->build(p).AppendHashRow(hash, old->EntryRow(entry),
                                               build_row_stride);
                ++local_spilled;
              } else {
                fresh->MaterializeEntry(b, hash, old->EntryRow(entry),
                                        build_row_stride);
              }
            }
          });
    }
    if (local_spilled > 0) {
      spilled_tuples.fetch_add(local_spilled, std::memory_order_relaxed);
    }
  });
  spill_->stats.build_tuples_spilled.store(
      spilled_tuples.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  spill_->FinishBuildWrite();
  old.reset();  // frees pages + releases their governor accounting
  table_ = std::move(fresh);
  table_->Build(*exec.pool());
}

JoinMetrics HashJoin::CollectMetrics() const {
  JoinMetrics m;
  m.join_id = join_id_;
  m.kind = kind_;
  m.strategy = JoinStrategy::kBHJ;
  m.build_tuples = table_->num_entries() + SpilledBuildTuples();
  m.probe_tuples = probe_seen_.load(std::memory_order_relaxed);
  m.probe_matched = probe_matched_.load(std::memory_order_relaxed);
  m.has_hash_table = true;
  HashTableMetrics& ht = m.hash_table;
  ht.build_tuples = table_->num_entries();
  ht.directory_slots = table_->directory_size();
  ht.directory_bytes = table_->DirectoryBytes();
  ht.materialized_bytes = table_->MaterializedBytes();
  ht.resizes = 0;  // the directory is sized exactly once (Section 4.3)
  // Chain statistics from a directory walk: entries past the chain head are
  // the CAS-push "collisions" a probe must traverse.
  for (uint64_t s = 0; s < table_->directory_size(); ++s) {
    uint64_t slot = table_->LoadSlot(s);
    const std::byte* entry =
        reinterpret_cast<const std::byte*>(slot & ChainingHashTable::kPointerMask);
    uint64_t len = 0;
    while (entry != nullptr) {
      ++len;
      entry = ChainingHashTable::EntryNext(entry);
    }
    if (len > 1) ht.chained_entries += len - 1;
    if (len > ht.max_chain) ht.max_chain = len;
  }
  m.spill = SnapshotSpill(spill_.get());
  return m;
}

void HashJoinBuildSink::Consume(Batch& batch, ThreadContext& ctx) {
  MetricsIn(batch, ctx);
  ChainingHashTable& ht = join_->table();
  const KeySpec& key = join_->build_key();
  const uint32_t stride = batch.layout->stride();
  uint64_t hashes[kBatchCapacity];
  HashRowsBatch(key, batch.rows, stride, batch.size, hashes);
  for (uint32_t i = 0; i < batch.size; ++i) {
    ht.MaterializeEntry(ctx.thread_id, hashes[i], batch.Row(i), stride);
  }
  ctx.bytes->AddWrite(JoinPhase::kBuildPipeline,
                      static_cast<uint64_t>(batch.size) * ht.entry_stride());
}

void HashJoinBuildSink::Finish(ExecContext& exec) {
  Stopwatch watch;
  join_->FinishBuild(exec);
  exec.timer().Add(JoinPhase::kBuildPipeline, watch.ElapsedSeconds());
}

void HashJoinProbe::Prepare(ExecContext& exec) {
  emitters_.resize(exec.num_threads());
  num_workers_ = exec.num_threads();
}

void HashJoinProbe::Open(ThreadContext& ctx) {
  emitters_[ctx.thread_id].Bind(&join_->projection(), next_, metrics_);
}

void HashJoinProbe::Consume(Batch& batch, ThreadContext& ctx) {
  MetricsIn(batch, ctx);
  ChainingHashTable& ht = join_->table();
  const KeySpec& probe_key = join_->probe_key();
  const KeySpec& build_key = join_->build_key();
  const JoinKind kind = join_->kind();
  JoinEmitter& emitter = emitters_[ctx.thread_id];

  // Relaxed operator fusion: the batch is the staging buffer. The hash
  // kernel fills the hash vector, a prefetch pass requests the directory
  // cache lines, and the chain walks run with the slots (likely) in cache.
  uint64_t hashes[kBatchCapacity];
  HashRowsBatch(probe_key, batch.rows, batch.layout->stride(), batch.size,
                hashes);
  for (uint32_t i = 0; i < batch.size; ++i) {
    ht.PrefetchSlot(hashes[i]);
  }
  ctx.bytes->AddRead(JoinPhase::kProbePipeline,
                     static_cast<uint64_t>(batch.size) *
                         batch.layout->stride());

  // Chain walk for one surviving probe tuple; returns whether it matched.
  auto walk_chain = [&](const std::byte* entry, const std::byte* probe_row,
                        uint64_t hash) {
    bool matched = false;
    while (entry != nullptr) {
      if (ChainingHashTable::EntryHash(entry) == hash &&
          KeySpec::Equals(build_key, ht.EntryRow(entry), probe_key,
                          probe_row)) {
        matched = true;
        switch (kind) {
          case JoinKind::kInner:
          case JoinKind::kLeftOuter:
            emitter.EmitPair(ht.EntryRow(entry), probe_row, ctx);
            break;
          case JoinKind::kRightOuter:
            // Matched pairs are materialized (the downstream operators run
            // after the post-probe build scan) and replayed from there.
            MaterializeJoinRow(join_->projection(),
                               join_->pair_buffer(ctx.thread_id).AppendSlot(),
                               ht.EntryRow(entry), probe_row);
            ht.MarkMatched(entry);
            break;
          case JoinKind::kProbeSemi:
            emitter.EmitProbeOnly(probe_row, ctx);
            break;
          case JoinKind::kBuildSemi:
          case JoinKind::kBuildAnti:
            ht.MarkMatched(entry);
            break;
          case JoinKind::kProbeAnti:
          case JoinKind::kMark:
            break;  // existence is all that matters
        }
        // Kinds that only need existence stop at the first match; kinds
        // that must visit every matching build tuple keep walking.
        if (kind == JoinKind::kProbeSemi || kind == JoinKind::kProbeAnti ||
            kind == JoinKind::kMark) {
          break;
        }
      }
      entry = ChainingHashTable::EntryNext(entry);
    }
    return matched;
  };

  SpillJoinState* spill = join_->spill();
  uint64_t matched_tuples = 0;
  if (spill == nullptr) {
    // Batched tag-check kernel: one gather over the directory decides which
    // tuples have a chain worth walking; the walk loop then only touches
    // surviving lanes. Tuples whose tag bit is absent are definitively
    // unmatched, which the second loop below turns into the kind's
    // unmatched-probe emission.
    uint32_t sel[kBatchCapacity];
    uint64_t heads[kBatchCapacity];
    const uint32_t survivors = ActiveKernels().dir_tag_probe(
        ht.dir_words(), ht.dir_shift(), ht.dir_mask(), hashes, batch.size,
        sel, heads);
    bool matched[kBatchCapacity];
    std::memset(matched, 0, batch.size);
    for (uint32_t j = 0; j < survivors; ++j) {
      const uint32_t i = sel[j];
      matched[i] = walk_chain(reinterpret_cast<const std::byte*>(heads[j]),
                              batch.Row(i), hashes[i]);
      matched_tuples += matched[i] ? 1 : 0;
    }
    if (kind == JoinKind::kProbeAnti || kind == JoinKind::kLeftOuter) {
      for (uint32_t i = 0; i < batch.size; ++i) {
        if (!matched[i]) emitter.EmitProbeOnly(batch.Row(i), ctx);
      }
    } else if (kind == JoinKind::kMark) {
      for (uint32_t i = 0; i < batch.size; ++i) {
        emitter.EmitMark(batch.Row(i), matched[i], ctx);
      }
    }
    join_->AddProbeStats(batch.size, matched_tuples);
    return;
  }

  // Spill path: per-tuple routing decisions interleave with the probes, so
  // this loop stays scalar.
  const uint32_t probe_stride = batch.layout->stride();
  for (uint32_t i = 0; i < batch.size; ++i) {
    const std::byte* probe_row = batch.Row(i);
    const uint64_t hash = hashes[i];
    if (spill->IsSpilled(hash & (HashJoin::kSpillFanout - 1))) {
      // The resident table holds no keys from spilled partitions, so this
      // tuple's verdict is decided entirely during spilled-pair processing.
      spill->probe(hash & (HashJoin::kSpillFanout - 1))
          .AppendHashRow(hash, probe_row, probe_stride);
      spill->stats.probe_tuples_spilled.fetch_add(1,
                                                  std::memory_order_relaxed);
      continue;
    }
    // Tagged-pointer reducer: a missing tag bit skips the chain walk.
    const bool matched = walk_chain(ht.ChainHead(hash), probe_row, hash);
    if (!matched && kind == JoinKind::kProbeAnti) {
      emitter.EmitProbeOnly(probe_row, ctx);
    } else if (!matched && kind == JoinKind::kLeftOuter) {
      emitter.EmitProbeOnly(probe_row, ctx);
    } else if (kind == JoinKind::kMark) {
      emitter.EmitMark(probe_row, matched, ctx);
    }
    matched_tuples += matched ? 1 : 0;
  }
  join_->AddProbeStats(batch.size, matched_tuples);
}

void HashJoinProbe::Close(ThreadContext& ctx) {
  if (SpillJoinState* spill = join_->spill()) {
    // Pipeline::Run has every worker close operators in chain order, so no
    // downstream Close can run before all workers passed this barrier --
    // the emitters below still have a live consumer.
    spill->AwaitProbeWorkers(num_workers_);
    SpillJoinSpec spec;
    spec.kind = join_->kind();
    spec.build_key = &join_->build_key();
    spec.probe_key = &join_->probe_key();
    spec.build_stride = spill->build_stride();
    spec.probe_stride = spill->probe_stride();
    spec.hash_shift = HashJoin::kSpillFanoutBits;
    spec.governor = &MemoryGovernor::Global();
    spec.stats = &spill->stats;
    BhjSpillEmitter emit(join_, &emitters_[ctx.thread_id], &ctx);
    uint64_t matched = 0;
    for (int p; (p = spill->ClaimPair()) >= 0;) {
      matched +=
          ProcessSpilledPair(spec, spill->build(p), spill->probe(p), emit);
    }
    if (matched > 0) join_->AddProbeStats(0, matched);
  }
  emitters_[ctx.thread_id].Flush(ctx);
}

void HashJoinBuildScanSource::Prepare(ExecContext& exec) {
  (void)exec;
  num_buffers_ = 256;  // matches ChainingHashTable's worker-buffer bound
  cursor_.store(0, std::memory_order_relaxed);
}

bool HashJoinBuildScanSource::ProduceMorsel(Operator& consumer,
                                            ThreadContext& ctx) {
  // Morsels [0, num_buffers) replay the materialized right-outer pairs;
  // morsels [num_buffers, 2*num_buffers) scan entry buffers for the
  // matched/unmatched build rows the kind asks for; morsels
  // [2*num_buffers, 3*num_buffers) replay build rows held back by the
  // spilled-pair processing.
  int idx = cursor_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= 3 * num_buffers_) return false;
  ChainingHashTable& ht = join_->table();
  if (idx >= 2 * num_buffers_) {
    if (!join_->HasSpillBuildOut()) return true;
    RowBuffer& rows = join_->spill_build_out(idx - 2 * num_buffers_);
    if (rows.size() == 0) return true;
    JoinEmitter emitter;
    emitter.Bind(&join_->projection(), &consumer, metrics_);
    rows.ForEachPage([&](const std::byte* page, uint32_t count) {
      for (uint32_t i = 0; i < count; ++i) {
        emitter.EmitBuildOnly(page + static_cast<size_t>(i) * rows.stride(),
                              ctx);
      }
    });
    emitter.Flush(ctx);
    return true;
  }
  if (idx < num_buffers_) {
    if (!join_->HasPairBuffers()) return true;
    RowBuffer& pairs = join_->pair_buffer(idx);
    if (pairs.size() == 0) return true;
    const RowLayout* out = join_->projection().output;
    pairs.ForEachPage([&](const std::byte* rows, uint32_t count) {
      // Pages hold output-format rows contiguously: forward them batch-wise
      // without copying.
      for (uint32_t off = 0; off < count; off += kBatchCapacity) {
        Batch batch;
        batch.layout = out;
        batch.rows = const_cast<std::byte*>(rows) +
                     static_cast<size_t>(off) * out->stride();
        batch.size = std::min<uint32_t>(kBatchCapacity, count - off);
        PushOut(consumer, batch, ctx);
      }
    });
    return true;
  }
  RowBuffer& buffer = ht.build_buffer(idx - num_buffers_);
  if (buffer.size() == 0) return true;

  JoinEmitter emitter;
  emitter.Bind(&join_->projection(), &consumer, metrics_);
  const JoinKind kind = join_->kind();
  buffer.ForEachPage([&](const std::byte* rows, uint32_t count) {
    for (uint32_t i = 0; i < count; ++i) {
      const std::byte* entry = rows + static_cast<size_t>(i) * ht.entry_stride();
      bool m = ChainingHashTable::IsMatched(entry);
      if ((kind == JoinKind::kBuildSemi && m) ||
          (kind == JoinKind::kBuildAnti && !m) ||
          (kind == JoinKind::kRightOuter && !m)) {
        emitter.EmitBuildOnly(ht.EntryRow(entry), ctx);
      }
    }
  });
  emitter.Flush(ctx);
  return true;
}

}  // namespace pjoin
