// Buffered non-partitioned hash join (BHJ) — Section 4.3 of the paper.
//
// The build pipeline materializes build tuples into worker-local buffers and
// bulk-builds a global chaining hash table whose directory slots carry
// 16-bit Bloom tags (the tagged-pointer semi-join reducer of Leis et al.).
// The probe side stays fully pipelined: batches act as the relaxed-operator-
// fusion staging buffers, and probing runs in two tight loops — hash +
// prefetch, then chain walk — which is the software-prefetching scheme that
// keeps the BHJ's performance flat even when the hash table exceeds the LLC.
#ifndef PJOIN_JOIN_HASH_JOIN_H_
#define PJOIN_JOIN_HASH_JOIN_H_

#include <memory>

#include "exec/pipeline.h"
#include "hash_table/chaining_ht.h"
#include "join/emitter.h"
#include "join/join_types.h"
#include "join/key_spec.h"
#include "spill/spill_join.h"

namespace pjoin {

// Shared state between the build sink, probe operator, and (for
// build-preserving kinds) the post-probe build scan source.
class HashJoin {
 public:
  // `build_layout`/`probe_layout`: tuple formats entering each side;
  // `build_keys`/`probe_keys`: key field indices; `projection`: output
  // mapping (its `build` layout must equal `build_layout`, etc.).
  HashJoin(JoinKind kind, const RowLayout* build_layout,
           std::vector<int> build_keys, const RowLayout* probe_layout,
           std::vector<int> probe_keys, JoinProjection projection);

  JoinKind kind() const { return kind_; }
  ChainingHashTable& table() { return *table_; }

  // Hybrid-hash spilling: the fan-out uses the LOW 6 hash bits, which the
  // chaining table leaves unused (directory = high bits, tag = bits 16..20),
  // so resident-table probes and spill routing never interfere.
  static constexpr int kSpillFanoutBits = 6;
  static constexpr int kSpillFanout = 1 << kSpillFanoutBits;

  // Terminates the build phase: builds the table fully in memory when the
  // governor admits it, otherwise evicts the coldest fan-out partitions to
  // spill files and builds the table over the resident rest.
  void FinishBuild(ExecContext& exec);

  // Non-null iff FinishBuild decided to spill.
  SpillJoinState* spill() { return spill_.get(); }

  // Worker-local holding buffers (build-row layout) for build rows that the
  // spilled-pair processing decides to emit; replayed by the build scan
  // source. Only allocated for build-preserving kinds.
  RowBuffer& spill_build_out(int thread_id) {
    return spill_build_out_[thread_id];
  }
  bool HasSpillBuildOut() const { return !spill_build_out_.empty(); }

  // Plan-wide join number (post-order, assigned by the executor); -1 when
  // the join runs outside a lowered plan (unit tests).
  int join_id() const { return join_id_; }
  void set_join_id(int id) { join_id_ = id; }

  // Observability snapshot (call after the probe pipeline finished). Fills
  // kind/strategy/cardinalities plus hash-table internals; rows_out is the
  // executor's job (it owns the operator registry).
  JoinMetrics CollectMetrics() const;

  // kRightOuter only: matched pairs cannot flow down the probe pipeline
  // (the downstream operators hang off the post-probe build scan), so the
  // probe phase materializes them here — in output-row format — and the
  // build scan source replays them. Worker-indexed, created on demand.
  RowBuffer& pair_buffer(int thread_id);
  bool HasPairBuffers() const { return !pair_buffers_.empty(); }

  // Audit counters (updated batch-wise by the probe operator).
  void AddProbeStats(uint64_t seen, uint64_t matched) {
    probe_seen_.fetch_add(seen, std::memory_order_relaxed);
    probe_matched_.fetch_add(matched, std::memory_order_relaxed);
  }
  JoinAudit Audit(int join_id) const {
    JoinAudit audit;
    audit.join_id = join_id;
    audit.kind = kind_;
    audit.strategy = JoinStrategy::kBHJ;
    audit.build_tuples = table_->num_entries() + SpilledBuildTuples();
    audit.probe_tuples = probe_seen_.load(std::memory_order_relaxed);
    audit.probe_matched = probe_matched_.load(std::memory_order_relaxed);
    audit.build_width = build_layout_->stride();
    audit.probe_width = probe_key_.layout()->stride();
    return audit;
  }
  const KeySpec& build_key() const { return build_key_; }
  const KeySpec& probe_key() const { return probe_key_; }
  const JoinProjection& projection() const { return projection_; }
  const RowLayout* build_layout() const { return build_layout_; }

  uint64_t SpilledBuildTuples() const {
    return spill_ == nullptr ? 0
                             : spill_->stats.build_tuples_spilled.load(
                                   std::memory_order_relaxed);
  }

 private:
  JoinKind kind_;
  int join_id_ = -1;
  const RowLayout* build_layout_;
  KeySpec build_key_;
  KeySpec probe_key_;
  JoinProjection projection_;
  std::unique_ptr<ChainingHashTable> table_;
  std::unique_ptr<SpillJoinState> spill_;
  std::vector<RowBuffer> spill_build_out_;  // build rows from spilled pairs
  std::vector<RowBuffer> pair_buffers_;     // kRightOuter matched pairs
  std::atomic<uint64_t> probe_seen_{0};
  std::atomic<uint64_t> probe_matched_{0};
};

// Pipeline breaker terminating the build pipeline.
class HashJoinBuildSink : public Operator {
 public:
  explicit HashJoinBuildSink(HashJoin* join) : join_(join) {}

  void Consume(Batch& batch, ThreadContext& ctx) override;
  void Finish(ExecContext& exec) override;
  const RowLayout* OutputLayout() const override {
    return join_->build_layout();
  }

  const char* MetricsName() const override { return "hash_join_build"; }
  std::string MetricsDetail() const override {
    return "j" + std::to_string(join_->join_id());
  }

 private:
  HashJoin* join_;
};

// In-pipeline probe operator. For probe-preserving kinds it emits joined
// batches downstream; for build-preserving kinds it only sets matched flags
// (a HashJoinBuildScanSource then starts the next pipeline).
class HashJoinProbe : public Operator {
 public:
  explicit HashJoinProbe(HashJoin* join) : join_(join) {}

  void Prepare(ExecContext& exec) override;
  void Open(ThreadContext& ctx) override;
  void Consume(Batch& batch, ThreadContext& ctx) override;
  void Close(ThreadContext& ctx) override;
  const RowLayout* OutputLayout() const override {
    return join_->projection().output;
  }

  const char* MetricsName() const override { return "hash_join_probe"; }
  std::string MetricsDetail() const override {
    return "j" + std::to_string(join_->join_id());
  }

 private:
  HashJoin* join_;
  std::vector<JoinEmitter> emitters_;  // per worker
  int num_workers_ = 0;
};

// Post-probe source for build-preserving kinds: scans all hash-table entries
// and emits matched (kBuildSemi) or unmatched (kBuildAnti, kRightOuter)
// build rows.
class HashJoinBuildScanSource : public Source {
 public:
  explicit HashJoinBuildScanSource(HashJoin* join) : join_(join) {}

  void Prepare(ExecContext& exec) override;
  bool ProduceMorsel(Operator& consumer, ThreadContext& ctx) override;
  const RowLayout* OutputLayout() const override {
    return join_->projection().output;
  }

  const char* MetricsName() const override { return "ht_scan"; }
  std::string MetricsDetail() const override {
    return "j" + std::to_string(join_->join_id());
  }

 private:
  HashJoin* join_;
  std::atomic<int> cursor_{0};
  int num_buffers_ = 0;
};

}  // namespace pjoin

#endif  // PJOIN_JOIN_HASH_JOIN_H_
