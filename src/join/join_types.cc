#include "join/join_types.h"

namespace pjoin {

const char* JoinKindName(JoinKind kind) {
  switch (kind) {
    case JoinKind::kInner:
      return "inner";
    case JoinKind::kProbeSemi:
      return "probe-semi";
    case JoinKind::kProbeAnti:
      return "probe-anti";
    case JoinKind::kBuildSemi:
      return "build-semi";
    case JoinKind::kBuildAnti:
      return "build-anti";
    case JoinKind::kLeftOuter:
      return "left-outer";
    case JoinKind::kRightOuter:
      return "right-outer";
    case JoinKind::kMark:
      return "mark";
  }
  return "?";
}

const char* JoinStrategyName(JoinStrategy strategy) {
  switch (strategy) {
    case JoinStrategy::kBHJ:
      return "BHJ";
    case JoinStrategy::kRJ:
      return "RJ";
    case JoinStrategy::kBRJ:
      return "BRJ";
    case JoinStrategy::kBRJAdaptive:
      return "BRJ (adaptive)";
    case JoinStrategy::kAuto:
      return "auto";
  }
  return "?";
}

}  // namespace pjoin
