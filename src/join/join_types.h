// Join kinds and strategies.
//
// The paper's radix join supports "all variants of equi-joins, including
// outer-, mark-, semi-, and anti-joins" as a drop-in replacement for the
// non-partitioned hash join; both implementations here share this taxonomy.
// Kinds are expressed relative to (build, probe):
//   * probe-preserving kinds emit during the probe phase,
//   * build-preserving kinds track matched flags on build tuples and emit
//     them afterwards (this is how TPC-H Q21/Q22 evaluate NOT EXISTS with the
//     large relation on the probe side).
#ifndef PJOIN_JOIN_JOIN_TYPES_H_
#define PJOIN_JOIN_JOIN_TYPES_H_

#include <cstdint>

namespace pjoin {

enum class JoinKind {
  kInner,       // matched (build, probe) pairs
  kProbeSemi,   // probe rows with at least one build match (EXISTS)
  kProbeAnti,   // probe rows with no build match (NOT EXISTS)
  kBuildSemi,   // build rows with at least one probe match
  kBuildAnti,   // build rows with no probe match
  kLeftOuter,   // all probe rows; build columns null-padded on no match
  kRightOuter,  // all matches plus unmatched build rows, probe null-padded
  kMark,        // every probe row, extended with a boolean match marker
};

// Does this kind need per-build-tuple matched flags?
inline bool TracksBuildMatches(JoinKind kind) {
  return kind == JoinKind::kBuildSemi || kind == JoinKind::kBuildAnti ||
         kind == JoinKind::kRightOuter;
}

// Does this kind emit build rows in a post-probe scan?
inline bool EmitsBuildRows(JoinKind kind) { return TracksBuildMatches(kind); }

const char* JoinKindName(JoinKind kind);

// The three joins under test (Section 5.1.1), plus the adaptive BRJ variant
// from Section 5.4.1.
enum class JoinStrategy {
  kBHJ,          // buffered non-partitioned hash join
  kRJ,           // radix-partitioned join
  kBRJ,          // Bloom-filtered radix join
  kBRJAdaptive,  // BRJ with sampled filter switch-off
  kAuto,         // resolved per join by the JoinAdvisor (Section 5 cost model)
};

const char* JoinStrategyName(JoinStrategy strategy);

// Per-join measurement record collected during execution. This powers the
// paper's per-join analyses: Figure 1 (build/probe bytes per TPC-H join),
// Figure 2 (tuple-size and join-partner histograms), Figure 13 (annotated
// join tree), and Table 5 (workload survey).
struct JoinAudit {
  int join_id = 0;  // post-order within the query (Figure 12 numbering)
  JoinKind kind = JoinKind::kInner;
  JoinStrategy strategy = JoinStrategy::kBHJ;
  uint64_t build_tuples = 0;
  uint64_t probe_tuples = 0;   // tuples entering the probe side (pre-filter)
  uint64_t probe_matched = 0;  // probe tuples with at least one partner
  uint32_t build_width = 0;    // materialized build row bytes
  uint32_t probe_width = 0;    // probe row bytes

  uint64_t build_bytes() const { return build_tuples * build_width; }
  uint64_t probe_bytes() const { return probe_tuples * probe_width; }
  double match_fraction() const {
    return probe_tuples > 0
               ? static_cast<double>(probe_matched) / probe_tuples
               : 0.0;
  }
};

}  // namespace pjoin

#endif  // PJOIN_JOIN_JOIN_TYPES_H_
