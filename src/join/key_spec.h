// Join-key description: which fields of a row layout form the equi-join key,
// how to hash them, and how to compare them across the two sides.
#ifndef PJOIN_JOIN_KEY_SPEC_H_
#define PJOIN_JOIN_KEY_SPEC_H_

#include <cstring>
#include <vector>

#include "storage/row_layout.h"
#include "util/hash.h"

namespace pjoin {

class KeySpec {
 public:
  KeySpec() = default;
  KeySpec(const RowLayout* layout, std::vector<int> fields)
      : layout_(layout), fields_(std::move(fields)) {}

  static KeySpec ByName(const RowLayout* layout,
                        const std::vector<std::string>& names) {
    std::vector<int> fields;
    fields.reserve(names.size());
    for (const auto& n : names) fields.push_back(layout->IndexOf(n));
    return KeySpec(layout, std::move(fields));
  }

  const RowLayout* layout() const { return layout_; }
  const std::vector<int>& fields() const { return fields_; }

  // One key field resolved to its placement in the row: the single source of
  // the offset/width probing that SingleWordKey and Hash (and their callers
  // in join staging) used to duplicate. `word` marks the 4-/8-byte fields
  // the vector hash kernel handles — which covers the 4-byte code fields the
  // encoding layer substitutes for dictionary-encoded keys with no special
  // case, precisely because codes are plain words by construction.
  struct KeyWord {
    uint32_t offset = 0;
    uint32_t width = 0;
    bool word = false;  // width is 4 or 8
  };
  KeyWord Word(size_t i) const {
    const RowField& fld = layout_->field(fields_[i]);
    return {fld.offset, fld.width, fld.width == 4 || fld.width == 8};
  }

  // True when the key is a single 4- or 8-byte field, the shape the
  // vectorized hash kernel handles (kernels/kernels.h). Hash() branches
  // purely on field width, so matching on width keeps the kernel bit-
  // identical; composite and wide char keys return false and hash through
  // the scalar path.
  bool SingleWordKey(uint32_t* offset, uint32_t* width) const {
    if (fields_.size() != 1) return false;
    const KeyWord w = Word(0);
    if (!w.word) return false;
    *offset = w.offset;
    *width = w.width;
    return true;
  }

  // 64-bit hash of the key; identical key values hash identically across
  // sides as long as field widths match (enforced by KeysEqual's contract).
  uint64_t Hash(const std::byte* row) const {
    uint64_t h = 0;
    for (size_t i = 0; i < fields_.size(); ++i) {
      const KeyWord w = Word(i);
      uint64_t piece;
      if (w.width == 8) {
        uint64_t v;
        std::memcpy(&v, row + w.offset, 8);
        piece = HashInt64(v);
      } else if (w.width == 4) {
        uint32_t v;
        std::memcpy(&v, row + w.offset, 4);
        piece = HashInt64(v);
      } else {
        piece = HashBytes(row + w.offset, w.width);
      }
      h = i == 0 ? piece : HashCombine(h, piece);
    }
    return h;
  }

  // Field-wise equality between a row of `a` and a row of `b`. The specs
  // must have the same number of key fields with matching widths.
  static bool Equals(const KeySpec& a, const std::byte* row_a,
                     const KeySpec& b, const std::byte* row_b) {
    for (size_t i = 0; i < a.fields_.size(); ++i) {
      const RowField& fa = a.layout_->field(a.fields_[i]);
      const RowField& fb = b.layout_->field(b.fields_[i]);
      if (std::memcmp(row_a + fa.offset, row_b + fb.offset, fa.width) != 0) {
        return false;
      }
    }
    return true;
  }

 private:
  const RowLayout* layout_ = nullptr;
  std::vector<int> fields_;
};

}  // namespace pjoin

#endif  // PJOIN_JOIN_KEY_SPEC_H_
