#include "join/radix_join.h"

#include <algorithm>
#include <bit>
#include <numeric>
#include <set>
#include <unordered_map>

#include "kernels/kernels.h"
#include "spill/memory_governor.h"
#include "util/check.h"
#include "util/cpu_info.h"
#include "util/stopwatch.h"

namespace pjoin {

namespace {

// Routes spill-core emissions through the worker's in-pipeline emitter: the
// radix join emits every kind in-place (per-partition verdicts are final),
// so no holding buffers are needed.
class RjSpillEmitter : public SpillEmitter {
 public:
  RjSpillEmitter(JoinEmitter* emitter, ThreadContext* ctx)
      : emitter_(emitter), ctx_(ctx) {}

  void Pair(const std::byte* build_row, const std::byte* probe_row) override {
    emitter_->EmitPair(build_row, probe_row, *ctx_);
  }
  void ProbeOnly(const std::byte* probe_row) override {
    emitter_->EmitProbeOnly(probe_row, *ctx_);
  }
  void BuildOnly(const std::byte* build_row) override {
    emitter_->EmitBuildOnly(build_row, *ctx_);
  }
  void Mark(const std::byte* probe_row, bool matched) override {
    emitter_->EmitMark(probe_row, matched, *ctx_);
  }

 private:
  JoinEmitter* emitter_;
  ThreadContext* ctx_;
};
// Depth bound on the in-memory 16-way re-split: 4 bits per level exhausts
// the 64-bit hash long before this, so it only guards stack depth.
constexpr int kMaxResplitDepth = 16;

// Grouped dense-array join for key clusters where a hash table adds nothing:
// the heavy-hitter bypass (one hash per morsel) and re-split partitions that
// cannot split (all tuples share one hash). Build rows are grouped by exact
// key — one group per hash barring 64-bit collisions — and probes compare
// against group representatives, so duplicate-heavy keys join in linear time
// where robin-hood probing would cluster quadratically.
class DenseKeyJoin {
 public:
  DenseKeyJoin(JoinKind kind, const KeySpec* bkey, const KeySpec* pkey,
               JoinEmitter* emitter)
      : kind_(kind),
        bkey_(bkey),
        pkey_(pkey),
        emitter_(emitter),
        track_(TracksBuildMatches(kind)) {}

  void AddBuildRow(const std::byte* row) {
    for (Group& g : groups_) {
      if (KeySpec::Equals(*bkey_, g.rep, *bkey_, row)) {
        g.rows.push_back(row);
        return;
      }
    }
    groups_.push_back(Group{row, {row}, false});
  }

  // Probes one row, emitting per-kind output; returns true when matched.
  bool Probe(const std::byte* probe_row, ThreadContext& ctx) {
    bool matched = false;
    for (Group& g : groups_) {
      if (!KeySpec::Equals(*bkey_, g.rep, *pkey_, probe_row)) continue;
      matched = true;
      switch (kind_) {
        case JoinKind::kInner:
        case JoinKind::kLeftOuter:
          for (const std::byte* b : g.rows) {
            emitter_->EmitPair(b, probe_row, ctx);
          }
          break;
        case JoinKind::kRightOuter:
          for (const std::byte* b : g.rows) {
            emitter_->EmitPair(b, probe_row, ctx);
          }
          g.matched = true;
          break;
        case JoinKind::kProbeSemi:
          break;  // emitted once below, not per build row
        case JoinKind::kBuildSemi:
        case JoinKind::kBuildAnti:
          g.matched = true;
          break;
        case JoinKind::kProbeAnti:
        case JoinKind::kMark:
          break;
      }
      break;  // group keys are distinct: at most one group can equal
    }
    if (kind_ == JoinKind::kProbeSemi && matched) {
      emitter_->EmitProbeOnly(probe_row, ctx);
    } else if (kind_ == JoinKind::kProbeAnti && !matched) {
      emitter_->EmitProbeOnly(probe_row, ctx);
    } else if (kind_ == JoinKind::kLeftOuter && !matched) {
      emitter_->EmitProbeOnly(probe_row, ctx);
    } else if (kind_ == JoinKind::kMark) {
      emitter_->EmitMark(probe_row, matched, ctx);
    }
    return matched;
  }

  // Build-preserving kinds: per-group verdicts are final here for the same
  // reason as in a partition pair. Call once after all probes.
  void FinishBuildSide(ThreadContext& ctx) {
    if (!track_) return;
    for (const Group& g : groups_) {
      if ((kind_ == JoinKind::kBuildSemi && g.matched) ||
          (kind_ == JoinKind::kBuildAnti && !g.matched) ||
          (kind_ == JoinKind::kRightOuter && !g.matched)) {
        for (const std::byte* b : g.rows) emitter_->EmitBuildOnly(b, ctx);
      }
    }
  }

 private:
  struct Group {
    const std::byte* rep;
    std::vector<const std::byte*> rows;
    bool matched;
  };

  JoinKind kind_;
  const KeySpec* bkey_;
  const KeySpec* pkey_;
  JoinEmitter* emitter_;
  bool track_;
  std::vector<Group> groups_;
};

RadixConfig MakePartitionerConfig(const RadixJoin::Options& options,
                                  uint32_t row_stride, RadixBits bits) {
  RadixConfig config;
  config.row_stride = row_stride;
  config.bits1 = options.bits1 >= 0 ? options.bits1 : bits.bits1;
  config.bits2 = options.bits2 >= 0 ? options.bits2 : bits.bits2;
  config.num_threads = options.num_threads;
  config.use_swwcb = options.use_swwcb;
  config.use_streaming = options.use_streaming;
  return config;
}
}  // namespace

RadixJoin::RadixJoin(JoinKind kind, const RowLayout* build_layout,
                     std::vector<int> build_keys,
                     const RowLayout* probe_layout,
                     std::vector<int> probe_keys, JoinProjection projection,
                     const Options& options)
    : kind_(kind),
      options_(options),
      build_layout_(build_layout),
      probe_layout_(probe_layout),
      build_key_(build_layout, std::move(build_keys)),
      probe_key_(probe_layout, std::move(probe_keys)),
      projection_(std::move(projection)) {
  // Both sides must use identical radix bits so partition pairs align.
  RadixBits bits = ChooseRadixBits(options.expected_build_tuples,
                                   8 + build_layout->stride());
  build_part_ = std::make_unique<RadixPartitioner>(
      MakePartitionerConfig(options, build_layout->stride(), bits));
  probe_part_ = std::make_unique<RadixPartitioner>(
      MakePartitionerConfig(options, probe_layout->stride(), bits));
  PJOIN_CHECK(build_part_->num_partitions() == probe_part_->num_partitions());
  resplit_threshold_ = options.resplit_partition_bytes > 0
                           ? options.resplit_partition_bytes
                           : GetCpuInfo().l2_bytes;
}

JoinMetrics RadixJoin::CollectMetrics() const {
  JoinMetrics m;
  m.join_id = join_id_;
  m.kind = kind_;
  m.strategy = options_.strategy;
  m.build_tuples =
      build_part_->total_tuples() + SpilledBuildTuples() + HeavyBuildTuples();
  m.probe_tuples = probe_seen_.load(std::memory_order_relaxed);
  m.probe_matched = probe_matched_.load(std::memory_order_relaxed);
  m.has_partitions = true;
  m.build_side = build_part_->Metrics();
  m.probe_side = probe_part_->Metrics();
  m.partition_ht_grows = ht_grows_.load(std::memory_order_relaxed);
  m.partition_ht_peak_bytes = ht_peak_bytes_.load(std::memory_order_relaxed);
  BloomMetrics& b = m.bloom;
  b.applicable = BloomApplicable(kind_);
  if (bloom_enabled()) {
    b.size_bytes = bloom_.SizeBytes();
    b.num_blocks = bloom_.num_blocks();
    b.build_keys =
        build_part_->total_tuples() + SpilledBuildTuples() + HeavyBuildTuples();
    b.probes = bloom_checks_.load(std::memory_order_relaxed);
    b.negatives = bloom_dropped_.load(std::memory_order_relaxed);
    b.adaptive = adaptive();
    b.enabled_at_end = !adaptive() || adaptive_.enabled();
    b.adaptive_samples = adaptive() ? adaptive_.sampled_checks() : 0;
  }
  m.spill = SnapshotSpill(spill_.get());
  SkewDefenseMetrics& sk = m.skew;
  sk.enabled = options_.skew_defense;
  if (heavy_ != nullptr) {
    sk.heavy_hitters = static_cast<uint32_t>(heavy_->hashes.size());
    sk.bypass_build_tuples = heavy_->build_tuples;
    sk.bypass_probe_tuples =
        heavy_->probe_tuples.load(std::memory_order_relaxed);
  }
  sk.partitions_resplit =
      static_cast<uint32_t>(resplit_partitions_.load(std::memory_order_relaxed));
  sk.dense_fallbacks =
      static_cast<uint32_t>(dense_fallbacks_.load(std::memory_order_relaxed));
  return m;
}

void RadixBuildSink::Consume(Batch& batch, ThreadContext& ctx) {
  MetricsIn(batch, ctx);
  RadixPartitioner& part = join_->build_partitioner();
  const KeySpec& key = join_->build_key();
  uint64_t hashes[kBatchCapacity];
  HashRowsBatch(key, batch.rows, batch.layout->stride(), batch.size, hashes);
  for (uint32_t i = 0; i < batch.size; ++i) {
    part.Add(ctx.thread_id, hashes[i], batch.Row(i), ctx.bytes);
  }
}

void RadixBuildSink::Close(ThreadContext& ctx) {
  join_->build_partitioner().FlushThread(ctx.thread_id, ctx.bytes);
}

void RadixBuildSink::Finish(ExecContext& exec) { join_->FinishBuild(exec); }

void RadixJoin::DetectHeavyHitters() {
  RadixPartitioner& part = *build_part_;
  const uint64_t total = part.PendingTuples();
  if (total == 0) return;

  // Misra-Gries summary over the staged hashes. Any hash whose share exceeds
  // 1/candidates is guaranteed to survive regardless of scan order, so with
  // candidates >= 2/heavy_hitter_share the exact pass below sees every
  // qualifying hash and the result is deterministic even though the staged
  // order is not.
  const double share = std::max(1e-6, options_.heavy_hitter_share);
  const int candidates = static_cast<int>(
      std::min(1024.0, std::max(64.0, 2.0 / share)));
  std::unordered_map<uint64_t, uint64_t> counters;
  counters.reserve(candidates * 2);
  part.ForEachStagedTuple([&](uint64_t hash, const std::byte*) {
    auto it = counters.find(hash);
    if (it != counters.end()) {
      ++it->second;
      return;
    }
    if (static_cast<int>(counters.size()) < candidates) {
      counters.emplace(hash, 1);
      return;
    }
    for (auto i = counters.begin(); i != counters.end();) {
      if (--i->second == 0) {
        i = counters.erase(i);
      } else {
        ++i;
      }
    }
  });
  if (counters.empty()) return;

  // Exact counts for the surviving candidates only.
  std::unordered_map<uint64_t, uint64_t> exact;
  exact.reserve(counters.size() * 2);
  for (const auto& [h, c] : counters) exact.emplace(h, 0);
  part.ForEachStagedTuple([&](uint64_t hash, const std::byte*) {
    auto it = exact.find(hash);
    if (it != exact.end()) ++it->second;
  });
  const uint64_t min_count = std::max<uint64_t>(
      1, static_cast<uint64_t>(share * static_cast<double>(total)));
  std::vector<std::pair<uint64_t, uint64_t>> qualified;  // (count, hash)
  for (const auto& [h, c] : exact) {
    if (c >= min_count) qualified.emplace_back(c, h);
  }
  if (qualified.empty()) return;
  // Hottest first; count ties break on the hash value — deterministic.
  std::sort(qualified.rbegin(), qualified.rend());
  if (static_cast<int>(qualified.size()) > options_.max_heavy_hitters) {
    qualified.resize(options_.max_heavy_hitters);
  }

  auto heavy = std::make_unique<HeavyHitters>();
  for (const auto& [c, h] : qualified) {
    heavy->hashes.push_back(h);
    heavy->filter_mask |= uint64_t{1} << (h & 63);
  }
  heavy->build_rows.resize(heavy->hashes.size());

  // Pull the heavy tuples out of their pass-1 pre-partitions into dense
  // per-hash row arrays; survivors are compacted in place so the exchange
  // (and any spill decision) sizes only the cold remainder.
  const uint32_t row_stride = build_layout_->stride();
  const uint64_t p1_mask = (uint64_t{1} << part.config().bits1) - 1;
  std::set<int> pre_partitions;
  for (uint64_t h : heavy->hashes) {
    pre_partitions.insert(static_cast<int>(h & p1_mask));
  }
  uint64_t extracted = 0;
  for (int p1 : pre_partitions) {
    part.ExtractFromPrePartition(
        p1, [&](uint64_t hash) { return heavy->Find(hash) >= 0; },
        [&](uint64_t hash, const std::byte* row) {
          std::vector<std::byte>& dst = heavy->build_rows[heavy->Find(hash)];
          dst.insert(dst.end(), row, row + row_stride);
          ++extracted;
        });
  }
  heavy->build_tuples = extracted;
  heavy->probe.resize(options_.num_threads);
  for (ChunkedTupleBuffer& buf : heavy->probe) {
    buf.Init(probe_part_->tuple_stride());
  }
  heavy_ = std::move(heavy);
}

void RadixJoin::FinishBuild(ExecContext& exec) {
  RadixPartitioner& part = *build_part_;
  if (options_.skew_defense) DetectHeavyHitters();
  if (bloom_enabled()) {
    // The filter is generated while partitioning during the second pass over
    // the build side (Section 4.7). Exact sizing: the staged tuple count is
    // known before pass 2 starts. Block count >= pass-1 fan-out keeps the
    // per-pre-partition block ranges disjoint (unsynchronized writes).
    // Spilled keys are inserted below, before Finalize, so the probe-side
    // early filter stays sound for spilled partitions too. Bypassed heavy
    // hashes (already extracted from the staged tuples) are re-inserted here
    // for the same reason — dropped-by-filter must still mean no partner.
    const uint64_t heavy_keys =
        heavy_ != nullptr ? heavy_->hashes.size() : uint64_t{0};
    bloom_.Resize(part.PendingTuples() + heavy_keys,
                  uint64_t{1} << part.config().bits1);
    part.set_bloom(&bloom_);
    if (heavy_ != nullptr) {
      for (uint64_t h : heavy_->hashes) bloom_.InsertUnsynchronized(h);
    }
  }

  MemoryGovernor& gov = MemoryGovernor::Global();
  const uint32_t stride = part.tuple_stride();
  const uint64_t pending_bytes = part.PendingTuples() * stride;
  // Finalize roughly doubles the footprint while the exchange copies chunks
  // into the contiguous output; probe for the output allocation.
  if (!gov.WouldFit(pending_bytes)) {
    const int fanout1 = 1 << part.config().bits1;
    std::vector<uint64_t> sizes(fanout1);
    for (int p = 0; p < fanout1; ++p) sizes[p] = part.PrePartitionBytes(p);

    // Keep the hottest pre-partitions resident: largest-first greedy fill of
    // half the headroom we'd have after evicting everything. The probe side
    // mirrors whatever residency the build side chose.
    uint64_t avail = gov.Available();
    if (avail == UINT64_MAX) avail = 0;
    const uint64_t resident_budget = (avail + pending_bytes) / 2;
    std::vector<int> order(fanout1);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return sizes[a] > sizes[b]; });
    spill_ = std::make_unique<SpillJoinState>(fanout1, stride,
                                              probe_part_->tuple_stride());
    uint64_t resident = 0;
    for (int p : order) {
      if (sizes[p] == 0) continue;
      if (resident + sizes[p] <= resident_budget) {
        resident += sizes[p];
        continue;
      }
      spill_->MarkSpilled(p);
    }
    if (spill_->num_spilled() == 0) {
      spill_.reset();
    } else {
      spill_->stats.partitions_total = static_cast<uint32_t>(fanout1);
      spill_->stats.partitions_spilled =
          static_cast<uint32_t>(spill_->num_spilled());
      for (int i = 0; i < spill_->num_spilled(); ++i) {
        const int p = spill_->spilled_at(i);
        SpillPartition& dst = spill_->build(p);
        uint64_t tuples = 0;
        part.ForEachPrePartitionChunk(
            p, [&](const std::byte* data, uint64_t used) {
              if (bloom_enabled()) {
                for (uint64_t off = 0; off + stride <= used; off += stride) {
                  bloom_.InsertUnsynchronized(
                      RadixPartitioner::TupleHash(data + off));
                }
              }
              dst.AppendRaw(data, used);
              tuples += used / stride;
            });
        // Clearing before Finalize makes the exchange size only the resident
        // remainder; the spilled final partitions end up empty and the
        // partition-join source skips them naturally.
        part.ClearPrePartition(p);
        spill_->stats.build_tuples_spilled.fetch_add(
            tuples, std::memory_order_relaxed);
      }
      spill_->FinishBuildWrite();
    }
  }
  part.Finalize(*exec.pool(), &exec.timer(), exec.bytes_array());
}

void RadixProbeSink::Consume(Batch& batch, ThreadContext& ctx) {
  MetricsIn(batch, ctx);
  RadixPartitioner& part = join_->probe_partitioner();
  const KeySpec& key = join_->probe_key();
  const bool use_bloom =
      join_->bloom_enabled() &&
      (!join_->adaptive() || join_->adaptive_controller().enabled());
  SpillJoinState* spill = join_->spill();
  RadixJoin::HeavyHitters* heavy = join_->heavy();
  const uint64_t p1_mask =
      (uint64_t{1} << part.config().bits1) - 1;  // pass-1 fan-out mask
  const uint32_t row_stride = join_->probe_layout()->stride();
  const uint32_t tuple_stride = part.tuple_stride();
  uint64_t dropped = 0;
  uint64_t checks = 0;
  uint64_t passes = 0;
  uint64_t spilled = 0;
  uint64_t bypassed = 0;
  uint64_t hashes[kBatchCapacity];
  HashRowsBatch(key, batch.rows, batch.layout->stride(), batch.size, hashes);
  uint64_t pass_bitmap[kBatchCapacity / 64];
  if (use_bloom) {
    // Early probe, batch-wise: the Bloom kernel gathers one block per hash
    // and emits a pass bitmap. Dropped tuples have no join partner and never
    // pay any materialization cost. Sound under spilling: the filter also
    // covers the spilled build keys.
    const BlockedBloomFilter& bloom = join_->bloom();
    ActiveKernels().bloom_probe(bloom.blocks(), bloom.block_mask(), hashes,
                                batch.size, pass_bitmap);
    checks = batch.size;
    for (uint32_t w = 0; w < (batch.size + 63) / 64; ++w) {
      passes += static_cast<uint64_t>(std::popcount(pass_bitmap[w]));
    }
    dropped = checks - passes;
  }
  for (uint32_t i = 0; i < batch.size; ++i) {
    const std::byte* row = batch.Row(i);
    const uint64_t hash = hashes[i];
    if (use_bloom && ((pass_bitmap[i >> 6] >> (i & 63)) & 1) == 0) {
      continue;
    }
    if (heavy != nullptr && heavy->Find(hash) >= 0) {
      // Heavy-hash tuples bypass partitioning (and spilling: their build
      // rows were extracted before any eviction) into the worker's bypass
      // buffer, joined against the dense build arrays by extra morsels.
      std::byte* dst = heavy->probe[ctx.thread_id].AllocBytes(tuple_stride);
      __builtin_memcpy(dst, &hash, 8);
      __builtin_memcpy(dst + 8, row, row_stride);
      ++bypassed;
      continue;
    }
    if (spill != nullptr &&
        spill->IsSpilled(static_cast<int>(hash & p1_mask))) {
      spill->probe(static_cast<int>(hash & p1_mask))
          .AppendHashRow(hash, row, row_stride);
      ++spilled;
      continue;
    }
    part.Add(ctx.thread_id, hash, row, ctx.bytes);
  }
  if (spilled > 0) {
    spill->stats.probe_tuples_spilled.fetch_add(spilled,
                                                std::memory_order_relaxed);
  }
  if (bypassed > 0) {
    heavy->probe_tuples.fetch_add(bypassed, std::memory_order_relaxed);
  }
  join_->AddProbeSeen(batch.size);
  if (checks > 0) join_->AddBloomWindow(checks, dropped);
  if (join_->adaptive() && checks > 0) {
    join_->adaptive_controller().ReportWindow(checks, passes);
  }
}

void RadixProbeSink::Close(ThreadContext& ctx) {
  join_->probe_partitioner().FlushThread(ctx.thread_id, ctx.bytes);
}

void RadixProbeSink::Finish(ExecContext& exec) {
  // Finish runs once, after every worker Closed, so the probe spill writers
  // can flush here without a barrier (unlike the BHJ's probe Close path).
  if (join_->spill() != nullptr) join_->spill()->FinishProbeWrite();
  join_->probe_partitioner().Finalize(*exec.pool(), &exec.timer(),
                                      exec.bytes_array());
}

void PartitionJoinSource::Prepare(ExecContext& exec) {
  workers_.resize(exec.num_threads());
  for (WorkerState& ws : workers_) ws.emitter_bound = false;
  cursor_.store(0, std::memory_order_relaxed);
}

void PartitionJoinSource::Open(ThreadContext& ctx) {
  // The robin-hood table keeps its memory segment across runs and
  // partitions; the emitter is bound per morsel (Open has no consumer).
  (void)ctx;
}

bool PartitionJoinSource::ProduceMorsel(Operator& consumer,
                                        ThreadContext& ctx) {
  WorkerState& ws = workers_[ctx.thread_id];
  int f = cursor_.fetch_add(1, std::memory_order_relaxed);
  RadixPartitioner& bp = join_->build_partitioner();
  RadixPartitioner& pp = join_->probe_partitioner();
  SpillJoinState* spill = join_->spill();
  const int num_final = bp.num_partitions();
  const int num_extra = spill != nullptr ? spill->num_spilled() : 0;
  RadixJoin::HeavyHitters* heavy = join_->heavy();
  const int num_heavy =
      heavy != nullptr ? static_cast<int>(heavy->hashes.size()) : 0;
  if (f >= num_final + num_extra + num_heavy) return false;

  if (f >= num_final + num_extra) {
    // Bypassed heavy hashes join last: one dense-array morsel per hash.
    if (!ws.emitter_bound) {
      ws.emitter.Bind(&join_->projection(), &consumer, metrics_);
      ws.emitter_bound = true;
    }
    JoinHeavyMorsel(f - num_final - num_extra, ws, ctx);
    return true;
  }

  if (f >= num_final) {
    // Spilled pre-partitions become extra morsels after the resident ones.
    if (!ws.emitter_bound) {
      ws.emitter.Bind(&join_->projection(), &consumer, metrics_);
      ws.emitter_bound = true;
    }
    const int p1 = spill->spilled_at(f - num_final);
    SpillJoinSpec spec;
    spec.kind = join_->kind();
    spec.build_key = &join_->build_key();
    spec.probe_key = &join_->probe_key();
    spec.build_stride = spill->build_stride();
    spec.probe_stride = spill->probe_stride();
    // Pass 1 consumed the low bits1 hash bits; recursion splits on the bits
    // above them.
    spec.hash_shift = bp.config().bits1;
    spec.governor = &MemoryGovernor::Global();
    spec.stats = &spill->stats;
    RjSpillEmitter emit(&ws.emitter, &ctx);
    uint64_t matched = ProcessSpilledPair(spec, spill->build(p1),
                                          spill->probe(p1), emit);
    if (matched > 0) join_->AddProbeMatched(matched);
    return true;
  }

  if (!ws.emitter_bound) {
    ws.emitter.Bind(&join_->projection(), &consumer, metrics_);
    ws.emitter_bound = true;
  }
  // Pass 1 + pass 2 consumed the low bits1+bits2 hash bits; a defensive
  // re-split of an oversized partition starts above them.
  JoinPartitionPair(ws, bp.partition_data(f), bp.partition_tuples(f),
                    pp.partition_data(f), pp.partition_tuples(f),
                    bp.config().bits1 + bp.config().bits2, 0, ctx);
  return true;
}

void PartitionJoinSource::JoinPartitionPair(WorkerState& ws,
                                            const std::byte* bdata,
                                            uint64_t bcount,
                                            const std::byte* pdata,
                                            uint64_t pcount, int bit_shift,
                                            int depth, ThreadContext& ctx) {
  RadixPartitioner& bp = join_->build_partitioner();
  RadixPartitioner& pp = join_->probe_partitioner();
  const uint32_t bstride = bp.tuple_stride();
  const uint32_t pstride = pp.tuple_stride();
  const JoinKind kind = join_->kind();
  const KeySpec& bkey = join_->build_key();
  const KeySpec& pkey = join_->probe_key();

  // Oversized-partition strategy switch (skew defense): a build side above
  // the re-split threshold splits 16-way in memory on the hash bits above
  // the radix passes and recurses — PR 3's Grace recursion applied to
  // resident partitions. A partition whose build hashes are all identical
  // (one giant key, or a full-hash collision cluster) can never split; it
  // falls back to the grouped dense scan instead of a robin-hood table whose
  // equal hashes would cluster into one quadratic probe chain.
  if (join_->options().skew_defense && depth < kMaxResplitDepth &&
      bcount * bstride > join_->resplit_threshold() && bit_shift + 4 <= 64) {
    const uint64_t first_hash = RadixPartitioner::TupleHash(bdata);
    bool all_same = true;
    for (uint64_t i = 1; i < bcount && all_same; ++i) {
      all_same =
          RadixPartitioner::TupleHash(bdata + i * bstride) == first_hash;
    }
    if (all_same) {
      join_->AddDenseFallback();
      DenseKeyJoin dense(kind, &bkey, &pkey, &ws.emitter);
      for (uint64_t i = 0; i < bcount; ++i) {
        dense.AddBuildRow(RadixPartitioner::TupleRow(bdata + i * bstride));
      }
      uint64_t matched = 0;
      for (uint64_t j = 0; j < pcount; ++j) {
        matched +=
            dense.Probe(RadixPartitioner::TupleRow(pdata + j * pstride), ctx)
                ? 1
                : 0;
      }
      dense.FinishBuildSide(ctx);
      if (matched > 0) join_->AddProbeMatched(matched);
      ctx.bytes->AddRead(JoinPhase::kJoin,
                         bcount * bstride + pcount * pstride);
      return;
    }
    constexpr int kWays = 16;
    std::vector<std::vector<std::byte>> bbuckets(kWays), pbuckets(kWays);
    auto split = [&](const std::byte* data, uint64_t count, uint32_t stride,
                     std::vector<std::vector<std::byte>>& buckets) {
      for (uint64_t i = 0; i < count; ++i) {
        const std::byte* t = data + i * stride;
        const int b = static_cast<int>(
            (RadixPartitioner::TupleHash(t) >> bit_shift) & (kWays - 1));
        buckets[b].insert(buckets[b].end(), t, t + stride);
      }
    };
    split(bdata, bcount, bstride, bbuckets);
    split(pdata, pcount, pstride, pbuckets);
    join_->AddResplit();
    for (int b = 0; b < kWays; ++b) {
      const uint64_t bc = bbuckets[b].size() / bstride;
      const uint64_t pc = pbuckets[b].size() / pstride;
      if (bc == 0 && pc == 0) continue;
      JoinPartitionPair(ws, bbuckets[b].data(), bc, pbuckets[b].data(), pc,
                        bit_shift + 4, depth + 1, ctx);
    }
    return;
  }

  // Build the per-partition hash table on the fly (Algorithm 2). Tuples are
  // not moved: only pointers into the partition buffer are stored.
  ws.table.Reset(bcount);
  for (uint64_t i = 0; i < bcount; ++i) {
    const std::byte* tuple = bdata + i * bstride;
    ws.table.Insert(RadixPartitioner::TupleHash(tuple), tuple);
  }
  const bool track = TracksBuildMatches(kind);
  if (track) {
    ws.matched.assign(ws.table.capacity(), 0);
  }
  ctx.bytes->AddRead(JoinPhase::kJoin, bcount * bstride);

  // Probe.
  uint64_t matched_tuples = 0;
  for (uint64_t j = 0; j < pcount; ++j) {
    const std::byte* ptuple = pdata + j * pstride;
    const uint64_t hash = RadixPartitioner::TupleHash(ptuple);
    const std::byte* probe_row = RadixPartitioner::TupleRow(ptuple);
    bool matched = false;
    ws.table.ForEachMatch(hash, [&](const std::byte* btuple, uint64_t slot) {
      const std::byte* build_row = RadixPartitioner::TupleRow(btuple);
      if (!KeySpec::Equals(bkey, build_row, pkey, probe_row)) return;
      matched = true;
      switch (kind) {
        case JoinKind::kInner:
        case JoinKind::kLeftOuter:
          ws.emitter.EmitPair(build_row, probe_row, ctx);
          break;
        case JoinKind::kRightOuter:
          ws.emitter.EmitPair(build_row, probe_row, ctx);
          ws.matched[slot] = 1;
          break;
        case JoinKind::kProbeSemi:
          // Emission handled below to avoid duplicates on multi-match.
          break;
        case JoinKind::kBuildSemi:
        case JoinKind::kBuildAnti:
          ws.matched[slot] = 1;
          break;
        case JoinKind::kProbeAnti:
        case JoinKind::kMark:
          break;
      }
    });
    if (kind == JoinKind::kProbeSemi && matched) {
      ws.emitter.EmitProbeOnly(probe_row, ctx);
    } else if (kind == JoinKind::kProbeAnti && !matched) {
      ws.emitter.EmitProbeOnly(probe_row, ctx);
    } else if (kind == JoinKind::kLeftOuter && !matched) {
      ws.emitter.EmitProbeOnly(probe_row, ctx);
    } else if (kind == JoinKind::kMark) {
      ws.emitter.EmitMark(probe_row, matched, ctx);
    }
    matched_tuples += matched ? 1 : 0;
  }
  if (matched_tuples > 0) join_->AddProbeMatched(matched_tuples);
  ctx.bytes->AddRead(JoinPhase::kJoin, pcount * pstride);

  // Build-preserving kinds: this partition's verdicts are final (all
  // matching probe tuples live in the same partition), so unmatched build
  // rows can be emitted right here — no extra pipeline needed.
  if (track) {
    for (uint64_t slot = 0; slot < ws.table.capacity(); ++slot) {
      const RobinHoodTable::Slot& s = ws.table.slot(slot);
      if (s.tuple == nullptr) continue;
      const bool m = ws.matched[slot] != 0;
      if ((kind == JoinKind::kBuildSemi && m) ||
          (kind == JoinKind::kBuildAnti && !m) ||
          (kind == JoinKind::kRightOuter && !m)) {
        ws.emitter.EmitBuildOnly(RadixPartitioner::TupleRow(s.tuple), ctx);
      }
    }
  }
}

void PartitionJoinSource::JoinHeavyMorsel(int heavy_idx, WorkerState& ws,
                                          ThreadContext& ctx) {
  RadixJoin::HeavyHitters& heavy = *join_->heavy();
  const uint64_t target = heavy.hashes[heavy_idx];
  const std::vector<std::byte>& brows = heavy.build_rows[heavy_idx];
  const uint32_t row_stride = join_->build_layout()->stride();
  const uint64_t bcount = row_stride > 0 ? brows.size() / row_stride : 0;
  const uint32_t pstride = join_->probe_partitioner().tuple_stride();

  // Every build row of every key hashing to `target` is in this dense
  // array (extraction preceded spilling), and every probing tuple of those
  // keys is in some worker's bypass buffer — verdicts here are final.
  DenseKeyJoin dense(join_->kind(), &join_->build_key(), &join_->probe_key(),
                     &ws.emitter);
  for (uint64_t i = 0; i < bcount; ++i) {
    dense.AddBuildRow(brows.data() + i * row_stride);
  }
  uint64_t matched = 0;
  uint64_t probes = 0;
  for (const ChunkedTupleBuffer& buf : heavy.probe) {
    buf.ForEachChunk([&](const std::byte* data, uint64_t used) {
      for (uint64_t off = 0; off + pstride <= used; off += pstride) {
        const std::byte* tuple = data + off;
        if (RadixPartitioner::TupleHash(tuple) != target) continue;
        ++probes;
        matched +=
            dense.Probe(RadixPartitioner::TupleRow(tuple), ctx) ? 1 : 0;
      }
    });
  }
  dense.FinishBuildSide(ctx);
  if (matched > 0) join_->AddProbeMatched(matched);
  ctx.bytes->AddRead(JoinPhase::kJoin, bcount * row_stride + probes * pstride);
}

void PartitionJoinSource::Close(ThreadContext& ctx) {
  WorkerState& ws = workers_[ctx.thread_id];
  ws.emitter.Flush(ctx);
  join_->ReportWorkerTable(ws.table.grow_count(), ws.table.peak_bytes());
}

}  // namespace pjoin
