#include "join/radix_join.h"

#include "util/check.h"
#include "util/stopwatch.h"

namespace pjoin {

namespace {
RadixConfig MakePartitionerConfig(const RadixJoin::Options& options,
                                  uint32_t row_stride, RadixBits bits) {
  RadixConfig config;
  config.row_stride = row_stride;
  config.bits1 = options.bits1 >= 0 ? options.bits1 : bits.bits1;
  config.bits2 = options.bits2 >= 0 ? options.bits2 : bits.bits2;
  config.num_threads = options.num_threads;
  config.use_swwcb = options.use_swwcb;
  config.use_streaming = options.use_streaming;
  return config;
}
}  // namespace

RadixJoin::RadixJoin(JoinKind kind, const RowLayout* build_layout,
                     std::vector<int> build_keys,
                     const RowLayout* probe_layout,
                     std::vector<int> probe_keys, JoinProjection projection,
                     const Options& options)
    : kind_(kind),
      options_(options),
      build_layout_(build_layout),
      probe_layout_(probe_layout),
      build_key_(build_layout, std::move(build_keys)),
      probe_key_(probe_layout, std::move(probe_keys)),
      projection_(std::move(projection)) {
  // Both sides must use identical radix bits so partition pairs align.
  RadixBits bits = ChooseRadixBits(options.expected_build_tuples,
                                   8 + build_layout->stride());
  build_part_ = std::make_unique<RadixPartitioner>(
      MakePartitionerConfig(options, build_layout->stride(), bits));
  probe_part_ = std::make_unique<RadixPartitioner>(
      MakePartitionerConfig(options, probe_layout->stride(), bits));
  PJOIN_CHECK(build_part_->num_partitions() == probe_part_->num_partitions());
}

JoinMetrics RadixJoin::CollectMetrics() const {
  JoinMetrics m;
  m.join_id = join_id_;
  m.kind = kind_;
  m.strategy = options_.strategy;
  m.build_tuples = build_part_->total_tuples();
  m.probe_tuples = probe_seen_.load(std::memory_order_relaxed);
  m.probe_matched = probe_matched_.load(std::memory_order_relaxed);
  m.has_partitions = true;
  m.build_side = build_part_->Metrics();
  m.probe_side = probe_part_->Metrics();
  m.partition_ht_grows = ht_grows_.load(std::memory_order_relaxed);
  m.partition_ht_peak_bytes = ht_peak_bytes_.load(std::memory_order_relaxed);
  BloomMetrics& b = m.bloom;
  b.applicable = BloomApplicable(kind_);
  if (bloom_enabled()) {
    b.size_bytes = bloom_.SizeBytes();
    b.num_blocks = bloom_.num_blocks();
    b.build_keys = build_part_->total_tuples();
    b.probes = bloom_checks_.load(std::memory_order_relaxed);
    b.negatives = bloom_dropped_.load(std::memory_order_relaxed);
    b.adaptive = adaptive();
    b.enabled_at_end = !adaptive() || adaptive_.enabled();
    b.adaptive_samples = adaptive() ? adaptive_.sampled_checks() : 0;
  }
  return m;
}

void RadixBuildSink::Consume(Batch& batch, ThreadContext& ctx) {
  MetricsIn(batch, ctx);
  RadixPartitioner& part = join_->build_partitioner();
  const KeySpec& key = join_->build_key();
  for (uint32_t i = 0; i < batch.size; ++i) {
    const std::byte* row = batch.Row(i);
    part.Add(ctx.thread_id, key.Hash(row), row, ctx.bytes);
  }
}

void RadixBuildSink::Close(ThreadContext& ctx) {
  join_->build_partitioner().FlushThread(ctx.thread_id, ctx.bytes);
}

void RadixBuildSink::Finish(ExecContext& exec) {
  RadixPartitioner& part = join_->build_partitioner();
  if (join_->bloom_enabled()) {
    // The filter is generated while partitioning during the second pass over
    // the build side (Section 4.7). Exact sizing: the staged tuple count is
    // known before pass 2 starts. Block count >= pass-1 fan-out keeps the
    // per-pre-partition block ranges disjoint (unsynchronized writes).
    join_->bloom().Resize(part.PendingTuples(),
                          uint64_t{1} << part.config().bits1);
    part.set_bloom(&join_->bloom());
  }
  part.Finalize(*exec.pool(), &exec.timer(), exec.bytes_array());
}

void RadixProbeSink::Consume(Batch& batch, ThreadContext& ctx) {
  MetricsIn(batch, ctx);
  RadixPartitioner& part = join_->probe_partitioner();
  const KeySpec& key = join_->probe_key();
  const bool use_bloom =
      join_->bloom_enabled() &&
      (!join_->adaptive() || join_->adaptive_controller().enabled());
  uint64_t dropped = 0;
  uint64_t checks = 0;
  uint64_t passes = 0;
  for (uint32_t i = 0; i < batch.size; ++i) {
    const std::byte* row = batch.Row(i);
    uint64_t hash = key.Hash(row);
    if (use_bloom) {
      ++checks;
      if (!join_->bloom().MayContain(hash)) {
        // Early probe: the tuple has no join partner; it is dropped before
        // any materialization cost is paid.
        ++dropped;
        continue;
      }
      ++passes;
    }
    part.Add(ctx.thread_id, hash, row, ctx.bytes);
  }
  join_->AddProbeSeen(batch.size);
  if (checks > 0) join_->AddBloomWindow(checks, dropped);
  if (join_->adaptive() && checks > 0) {
    join_->adaptive_controller().ReportWindow(checks, passes);
  }
}

void RadixProbeSink::Close(ThreadContext& ctx) {
  join_->probe_partitioner().FlushThread(ctx.thread_id, ctx.bytes);
}

void RadixProbeSink::Finish(ExecContext& exec) {
  join_->probe_partitioner().Finalize(*exec.pool(), &exec.timer(),
                                      exec.bytes_array());
}

void PartitionJoinSource::Prepare(ExecContext& exec) {
  workers_.resize(exec.num_threads());
  for (WorkerState& ws : workers_) ws.emitter_bound = false;
  cursor_.store(0, std::memory_order_relaxed);
}

void PartitionJoinSource::Open(ThreadContext& ctx) {
  // The robin-hood table keeps its memory segment across runs and
  // partitions; the emitter is bound per morsel (Open has no consumer).
  (void)ctx;
}

bool PartitionJoinSource::ProduceMorsel(Operator& consumer,
                                        ThreadContext& ctx) {
  WorkerState& ws = workers_[ctx.thread_id];
  int f = cursor_.fetch_add(1, std::memory_order_relaxed);
  RadixPartitioner& bp = join_->build_partitioner();
  RadixPartitioner& pp = join_->probe_partitioner();
  if (f >= bp.num_partitions()) return false;

  const std::byte* bdata = bp.partition_data(f);
  const uint64_t bcount = bp.partition_tuples(f);
  const std::byte* pdata = pp.partition_data(f);
  const uint64_t pcount = pp.partition_tuples(f);
  const uint32_t bstride = bp.tuple_stride();
  const uint32_t pstride = pp.tuple_stride();
  const JoinKind kind = join_->kind();
  const KeySpec& bkey = join_->build_key();
  const KeySpec& pkey = join_->probe_key();

  if (!ws.emitter_bound) {
    ws.emitter.Bind(&join_->projection(), &consumer, metrics_);
    ws.emitter_bound = true;
  }

  // Build the per-partition hash table on the fly (Algorithm 2). Tuples are
  // not moved: only pointers into the partition buffer are stored.
  ws.table.Reset(bcount);
  for (uint64_t i = 0; i < bcount; ++i) {
    const std::byte* tuple = bdata + i * bstride;
    ws.table.Insert(RadixPartitioner::TupleHash(tuple), tuple);
  }
  const bool track = TracksBuildMatches(kind);
  if (track) {
    ws.matched.assign(ws.table.capacity(), 0);
  }
  ctx.bytes->AddRead(JoinPhase::kJoin, bcount * bstride);

  // Probe.
  uint64_t matched_tuples = 0;
  for (uint64_t j = 0; j < pcount; ++j) {
    const std::byte* ptuple = pdata + j * pstride;
    const uint64_t hash = RadixPartitioner::TupleHash(ptuple);
    const std::byte* probe_row = RadixPartitioner::TupleRow(ptuple);
    bool matched = false;
    ws.table.ForEachMatch(hash, [&](const std::byte* btuple, uint64_t slot) {
      const std::byte* build_row = RadixPartitioner::TupleRow(btuple);
      if (!KeySpec::Equals(bkey, build_row, pkey, probe_row)) return;
      matched = true;
      switch (kind) {
        case JoinKind::kInner:
        case JoinKind::kLeftOuter:
          ws.emitter.EmitPair(build_row, probe_row, ctx);
          break;
        case JoinKind::kRightOuter:
          ws.emitter.EmitPair(build_row, probe_row, ctx);
          ws.matched[slot] = 1;
          break;
        case JoinKind::kProbeSemi:
          // Emission handled below to avoid duplicates on multi-match.
          break;
        case JoinKind::kBuildSemi:
        case JoinKind::kBuildAnti:
          ws.matched[slot] = 1;
          break;
        case JoinKind::kProbeAnti:
        case JoinKind::kMark:
          break;
      }
    });
    if (kind == JoinKind::kProbeSemi && matched) {
      ws.emitter.EmitProbeOnly(probe_row, ctx);
    } else if (kind == JoinKind::kProbeAnti && !matched) {
      ws.emitter.EmitProbeOnly(probe_row, ctx);
    } else if (kind == JoinKind::kLeftOuter && !matched) {
      ws.emitter.EmitProbeOnly(probe_row, ctx);
    } else if (kind == JoinKind::kMark) {
      ws.emitter.EmitMark(probe_row, matched, ctx);
    }
    matched_tuples += matched ? 1 : 0;
  }
  if (matched_tuples > 0) join_->AddProbeMatched(matched_tuples);
  ctx.bytes->AddRead(JoinPhase::kJoin, pcount * pstride);

  // Build-preserving kinds: this partition's verdicts are final (all
  // matching probe tuples live in the same partition), so unmatched build
  // rows can be emitted right here — no extra pipeline needed.
  if (track) {
    for (uint64_t slot = 0; slot < ws.table.capacity(); ++slot) {
      const RobinHoodTable::Slot& s = ws.table.slot(slot);
      if (s.tuple == nullptr) continue;
      const bool m = ws.matched[slot] != 0;
      if ((kind == JoinKind::kBuildSemi && m) ||
          (kind == JoinKind::kBuildAnti && !m) ||
          (kind == JoinKind::kRightOuter && !m)) {
        ws.emitter.EmitBuildOnly(RadixPartitioner::TupleRow(s.tuple), ctx);
      }
    }
  }
  return true;
}

void PartitionJoinSource::Close(ThreadContext& ctx) {
  WorkerState& ws = workers_[ctx.thread_id];
  ws.emitter.Flush(ctx);
  join_->ReportWorkerTable(ws.table.grow_count(), ws.table.peak_bytes());
}

}  // namespace pjoin
