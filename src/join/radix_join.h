// Radix-partitioned join (RJ) and its Bloom-filtered variant (BRJ) —
// Sections 4.4–4.7 of the paper.
//
// The radix join is a full pipeline breaker and a pipeline starter
// (Algorithm 1): both inputs are materialized through the two-pass
// morsel-driven radix partitioner, then a new pipeline joins the partition
// pairs (Algorithm 2) with per-partition robin-hood hash tables that are
// sized exactly and reuse their memory segment across partitions.
//
// The BRJ builds a register-blocked Bloom filter over the build keys during
// the second build-side partition pass and probes it in the probe pipeline
// *before* partitioning, so non-joining probe tuples are never materialized.
// The adaptive variant samples the filter pass rate and switches the filter
// off when (almost) everything passes.
#ifndef PJOIN_JOIN_RADIX_JOIN_H_
#define PJOIN_JOIN_RADIX_JOIN_H_

#include <memory>

#include "exec/pipeline.h"
#include "filter/adaptive.h"
#include "filter/blocked_bloom.h"
#include "hash_table/robin_hood.h"
#include "join/emitter.h"
#include "join/join_types.h"
#include "join/key_spec.h"
#include "partition/radix_partitioner.h"
#include "spill/spill_join.h"

namespace pjoin {

class RadixJoin {
 public:
  struct Options {
    JoinStrategy strategy = JoinStrategy::kRJ;  // kRJ / kBRJ / kBRJAdaptive
    uint64_t expected_build_tuples = 1 << 20;   // optimizer estimate
    int num_threads = 1;
    // Ablation overrides (negative bits = auto via ChooseRadixBits).
    int bits1 = -1;
    int bits2 = -1;
    bool use_swwcb = true;
    bool use_streaming = true;
    // --- Skew defense (armed by the advisor on a sampled-skew overflow, or
    // explicitly by tests/benches; off by default so manual RJ/BRJ runs keep
    // their exact pre-defense behavior).
    bool skew_defense = false;
    // Minimum share of staged build tuples for a hash to be routed around
    // partitioning into the dense-array bypass. Must stay above 1/64 (the
    // Misra-Gries candidate bound) for detection to be exact.
    double heavy_hitter_share = 0.05;
    // Cap on bypassed hashes (the sampled top-k).
    int max_heavy_hitters = 16;
    // Resident final partitions whose build side exceeds this re-split
    // 16-way in memory during the join phase (0 = auto: the L2 size).
    uint64_t resplit_partition_bytes = 0;
  };

  RadixJoin(JoinKind kind, const RowLayout* build_layout,
            std::vector<int> build_keys, const RowLayout* probe_layout,
            std::vector<int> probe_keys, JoinProjection projection,
            const Options& options);

  JoinKind kind() const { return kind_; }
  const Options& options() const { return options_; }

  // Plan-wide join number (post-order, assigned by the executor); -1 when
  // the join runs outside a lowered plan (unit tests).
  int join_id() const { return join_id_; }
  void set_join_id(int id) { join_id_ = id; }
  // The semi-join reducer may only drop probe tuples when an unmatched probe
  // tuple contributes nothing to the result: inner and semi joins, and
  // build-preserving kinds (a dropped tuple could not have marked anything).
  // Anti, outer, and mark joins must see every probe tuple.
  static bool BloomApplicable(JoinKind kind) {
    return kind == JoinKind::kInner || kind == JoinKind::kProbeSemi ||
           kind == JoinKind::kBuildSemi || kind == JoinKind::kBuildAnti ||
           kind == JoinKind::kRightOuter;
  }

  bool bloom_enabled() const {
    return (options_.strategy == JoinStrategy::kBRJ ||
            options_.strategy == JoinStrategy::kBRJAdaptive) &&
           BloomApplicable(kind_);
  }
  bool adaptive() const {
    return options_.strategy == JoinStrategy::kBRJAdaptive;
  }

  RadixPartitioner& build_partitioner() { return *build_part_; }
  RadixPartitioner& probe_partitioner() { return *probe_part_; }
  BlockedBloomFilter& bloom() { return bloom_; }
  AdaptiveFilterController& adaptive_controller() { return adaptive_; }

  // Terminates the build partitioning: when the governor denies a fully
  // resident build side, pass-1 pre-partitions are evicted to spill files
  // (largest-resident-first) before Finalize sizes the resident remainder.
  // Called by RadixBuildSink::Finish / the kAuto runtime.
  void FinishBuild(ExecContext& exec);

  // Non-null iff FinishBuild decided to spill. Spilled pre-partitions join
  // as extra PartitionJoinSource morsels.
  SpillJoinState* spill() { return spill_.get(); }

  uint64_t SpilledBuildTuples() const {
    return spill_ == nullptr ? 0
                             : spill_->stats.build_tuples_spilled.load(
                                   std::memory_order_relaxed);
  }

  // Heavy-hitter bypass state (skew defense). FinishBuild pulls the build
  // tuples of the hottest hashes out of the partitioning flow into dense
  // per-hash arrays; the probe sink routes matching tuples into per-worker
  // bypass buffers, joined by extra morsels after the partition pairs. The
  // per-partition finality argument carries over: equal keys hash equal, so
  // every build row of a bypassed key lives in its dense array.
  struct HeavyHitters {
    std::vector<uint64_t> hashes;  // hottest first, <= max_heavy_hitters
    uint64_t filter_mask = 0;      // one-word prefilter over (hash & 63)
    std::vector<std::vector<std::byte>> build_rows;  // per hash: row bytes
    std::vector<ChunkedTupleBuffer> probe;  // per worker: [hash][row] tuples
    uint64_t build_tuples = 0;              // extracted at FinishBuild
    std::atomic<uint64_t> probe_tuples{0};  // routed by the probe sink

    // Index of `hash` among the heavy hashes, or -1.
    int Find(uint64_t hash) const {
      if (((filter_mask >> (hash & 63)) & 1) == 0) return -1;
      for (size_t i = 0; i < hashes.size(); ++i) {
        if (hashes[i] == hash) return static_cast<int>(i);
      }
      return -1;
    }
  };

  // Non-null iff the defense is armed and FinishBuild found heavy hashes.
  HeavyHitters* heavy() { return heavy_.get(); }
  uint64_t HeavyBuildTuples() const {
    return heavy_ == nullptr ? 0 : heavy_->build_tuples;
  }

  // Oversized-partition re-split: threshold and audit counters.
  uint64_t resplit_threshold() const { return resplit_threshold_; }
  void AddResplit() {
    resplit_partitions_.fetch_add(1, std::memory_order_relaxed);
  }
  void AddDenseFallback() {
    dense_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }

  const KeySpec& build_key() const { return build_key_; }
  const KeySpec& probe_key() const { return probe_key_; }
  const JoinProjection& projection() const { return projection_; }
  const RowLayout* build_layout() const { return build_layout_; }
  const RowLayout* probe_layout() const { return probe_layout_; }

  // Peak auxiliary memory (partitions + temporaries), for the memory-budget
  // observations of Section 5.3 (Q8/Q9/Q21 at SF 100).
  uint64_t PartitionBytes() const {
    return build_part_->OutputBytes() + probe_part_->OutputBytes();
  }

  // Audit counters.
  void AddProbeSeen(uint64_t n) {
    probe_seen_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddProbeMatched(uint64_t n) {
    probe_matched_.fetch_add(n, std::memory_order_relaxed);
  }

  // Bloom accounting: `checks` filter lookups of which `dropped` proved
  // absence (batch-wise from the probe sink).
  void AddBloomWindow(uint64_t checks, uint64_t dropped) {
    bloom_checks_.fetch_add(checks, std::memory_order_relaxed);
    bloom_dropped_.fetch_add(dropped, std::memory_order_relaxed);
  }
  uint64_t bloom_dropped() const {
    return bloom_dropped_.load(std::memory_order_relaxed);
  }

  // Per-partition hash-table accounting, reported once per worker at Close.
  void ReportWorkerTable(uint64_t grows, uint64_t peak_bytes) {
    ht_grows_.fetch_add(grows, std::memory_order_relaxed);
    uint64_t cur = ht_peak_bytes_.load(std::memory_order_relaxed);
    while (peak_bytes > cur &&
           !ht_peak_bytes_.compare_exchange_weak(cur, peak_bytes,
                                                 std::memory_order_relaxed)) {
    }
  }

  // Observability snapshot (call after the join pipeline finished). Fills
  // kind/strategy/cardinalities plus partitioner and Bloom internals;
  // rows_out is the executor's job (it owns the operator registry).
  JoinMetrics CollectMetrics() const;
  JoinAudit Audit(int join_id) const {
    JoinAudit audit;
    audit.join_id = join_id;
    audit.kind = kind_;
    audit.strategy = options_.strategy;
    audit.build_tuples =
        build_part_->total_tuples() + SpilledBuildTuples() + HeavyBuildTuples();
    audit.probe_tuples = probe_seen_.load(std::memory_order_relaxed);
    audit.probe_matched = probe_matched_.load(std::memory_order_relaxed);
    audit.build_width = build_layout_->stride();
    audit.probe_width = probe_layout_->stride();
    return audit;
  }

 private:
  // Exact heavy-hash detection over the staged build side (Misra-Gries
  // candidates + one exact counting pass) and extraction into heavy_.
  void DetectHeavyHitters();

  JoinKind kind_;
  int join_id_ = -1;
  Options options_;
  const RowLayout* build_layout_;
  const RowLayout* probe_layout_;
  KeySpec build_key_;
  KeySpec probe_key_;
  JoinProjection projection_;
  std::unique_ptr<RadixPartitioner> build_part_;
  std::unique_ptr<RadixPartitioner> probe_part_;
  std::unique_ptr<SpillJoinState> spill_;
  std::unique_ptr<HeavyHitters> heavy_;
  uint64_t resplit_threshold_ = 0;
  std::atomic<uint64_t> resplit_partitions_{0};
  std::atomic<uint64_t> dense_fallbacks_{0};
  BlockedBloomFilter bloom_;
  AdaptiveFilterController adaptive_;
  std::atomic<uint64_t> probe_seen_{0};
  std::atomic<uint64_t> probe_matched_{0};
  std::atomic<uint64_t> bloom_checks_{0};
  std::atomic<uint64_t> bloom_dropped_{0};
  std::atomic<uint64_t> ht_grows_{0};
  std::atomic<uint64_t> ht_peak_bytes_{0};
};

// Terminates the build pipeline: partitions the build side and (for BRJ)
// constructs the Bloom filter during the second pass.
class RadixBuildSink : public Operator {
 public:
  explicit RadixBuildSink(RadixJoin* join) : join_(join) {}

  void Consume(Batch& batch, ThreadContext& ctx) override;
  void Close(ThreadContext& ctx) override;
  void Finish(ExecContext& exec) override;
  const RowLayout* OutputLayout() const override {
    return join_->build_layout();
  }

  const char* MetricsName() const override { return "radix_build"; }
  std::string MetricsDetail() const override {
    return "j" + std::to_string(join_->join_id());
  }

 private:
  RadixJoin* join_;
};

// Terminates the probe pipeline: Bloom-filters (BRJ) and partitions the
// probe side.
class RadixProbeSink : public Operator {
 public:
  explicit RadixProbeSink(RadixJoin* join) : join_(join) {}

  void Consume(Batch& batch, ThreadContext& ctx) override;
  void Close(ThreadContext& ctx) override;
  void Finish(ExecContext& exec) override;
  const RowLayout* OutputLayout() const override {
    return join_->probe_layout();
  }

  uint64_t tuples_dropped_by_filter() const { return join_->bloom_dropped(); }

  const char* MetricsName() const override { return "radix_probe"; }
  std::string MetricsDetail() const override {
    return "j" + std::to_string(join_->join_id());
  }

 private:
  RadixJoin* join_;
};

// Starts the join pipeline: partition pairs are morsels; each builds its
// hash table on the fly and probes it, emitting joined tuples downstream.
class PartitionJoinSource : public Source {
 public:
  explicit PartitionJoinSource(RadixJoin* join) : join_(join) {}

  void Prepare(ExecContext& exec) override;
  void Open(ThreadContext& ctx) override;
  bool ProduceMorsel(Operator& consumer, ThreadContext& ctx) override;
  void Close(ThreadContext& ctx) override;
  const RowLayout* OutputLayout() const override {
    return join_->projection().output;
  }

  const char* MetricsName() const override { return "partition_join"; }
  std::string MetricsDetail() const override {
    return "j" + std::to_string(join_->join_id());
  }

 private:
  struct WorkerState {
    RobinHoodTable table;       // reused across partitions (Section 4.6)
    std::vector<uint8_t> matched;  // slot-indexed matched flags
    JoinEmitter emitter;
    bool emitter_bound = false;  // emitter binds on the worker's first morsel
  };

  // Joins one (build, probe) tuple-array pair. With the skew defense armed,
  // oversized build sides re-split 16-way on the hash bits above
  // `bit_shift` and recurse; same-hash clusters fall back to a grouped
  // dense scan instead of a degenerate robin-hood table.
  void JoinPartitionPair(WorkerState& ws, const std::byte* bdata,
                         uint64_t bcount, const std::byte* pdata,
                         uint64_t pcount, int bit_shift, int depth,
                         ThreadContext& ctx);
  // Joins one bypassed heavy hash: its dense build array against every
  // worker's bypass buffer.
  void JoinHeavyMorsel(int heavy_idx, WorkerState& ws, ThreadContext& ctx);

  RadixJoin* join_;
  std::atomic<int> cursor_{0};
  std::vector<WorkerState> workers_;
};

}  // namespace pjoin

#endif  // PJOIN_JOIN_RADIX_JOIN_H_
