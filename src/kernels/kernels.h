// Batched SIMD kernels for the four join hot loops.
//
// Each kernel exists as a scalar reference implementation plus AVX2/AVX-512
// variants compiled with per-function target attributes (so a portable build
// still carries them; util/simd.h explains the dispatch). The scalar variant
// is the oracle: vector tiers must be bit-identical, which
// tests/simd_kernel_test.cc enforces over random batches.
//
// All kernels take a plain batch of precomputed data (hashes, packed rows)
// and write dense outputs — no callbacks, no per-lane branches visible to the
// caller. Tail handling: each vector variant processes full lane groups
// (4 for AVX2, 8 for AVX-512) and finishes the remainder with the scalar
// code, so any batch size (including 0) is valid.
#ifndef PJOIN_KERNELS_KERNELS_H_
#define PJOIN_KERNELS_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "util/simd.h"

namespace pjoin {

class KeySpec;

// Function table for one dispatch tier. Pointers are never null: tiers that
// lack a vector implementation fall back to the scalar function.
struct SimdKernels {
  // Bloom membership for a batch of hashes against a register-blocked filter
  // (filter/blocked_bloom.h): gathers blocks_[hash & block_mask], rebuilds
  // the 4-sector bit mask from the high hash bits, and sets bit i of
  // `pass_bitmap` when tuple i may be contained. The bitmap has
  // (n + 63) / 64 words; bits >= n are zero.
  void (*bloom_probe)(const uint64_t* blocks, uint64_t block_mask,
                      const uint64_t* hashes, uint32_t n,
                      uint64_t* pass_bitmap);

  // Directory tag check for a batch of hashes against a chaining-HT
  // directory (hash_table/chaining_ht.h): loads slot
  // dir[(hash >> dir_shift) & dir_mask] and tests the 16-bit Bloom tag.
  // Survivors are compacted into `sel` (indices into the batch, ascending)
  // with their chain heads (slot & 48-bit pointer mask) in `heads[sel
  // position]`; returns the survivor count.
  uint32_t (*dir_tag_probe)(const uint64_t* dir, int dir_shift,
                            uint64_t dir_mask, const uint64_t* hashes,
                            uint32_t n, uint32_t* sel, uint64_t* heads);

  // MurmurHash3-finalizer hash (util/hash.h HashInt64) of one fixed-width
  // key column in a packed row batch: out[i] = HashInt64(load(rows + i *
  // stride + offset, width)), width 4 zero-extended. Bit-identical to
  // KeySpec::Hash for single-field keys of width 4/8.
  void (*hash_rows)(const std::byte* rows, uint32_t stride, uint32_t offset,
                    uint32_t width, uint32_t n, uint64_t* out);

  // Partition histogram over packed [hash:8B][payload] tuples: for each
  // tuple, hist[(hash >> shift) & mask] += 1. `mask` is fanout - 1 (power of
  // two); the histogram is NOT cleared by the kernel.
  void (*histogram)(const std::byte* tuples, uint64_t n, uint32_t stride,
                    int shift, uint64_t mask, uint64_t* hist);

  // Widens a packed run of little-endian codes (storage/encoded_segment.h)
  // to 32-bit: out[i] = load(codes + i * code_width, code_width)
  // zero-extended. code_width is 1, 2, or 4.
  void (*unpack_codes)(const std::byte* codes, uint32_t code_width, uint32_t n,
                       uint32_t* out);

  // Dictionary gather for late materialization: copies the fixed-width
  // dictionary value of each code into a dense output,
  // out[i * value_width ...] = dict[codes[i] * value_width ...].
  void (*dict_gather)(const std::byte* dict, uint32_t value_width,
                      const uint32_t* codes, uint32_t n, std::byte* out);
};

// Table for an explicit tier; unavailable tiers (not compiled in, or the
// host lacks the ISA) fall back to the scalar table, so the result is always
// safe to call. Tests use this to run every tier against the oracle.
const SimdKernels& KernelsFor(SimdTier tier);

// Table for ActiveSimdTier() — the one all call sites use.
const SimdKernels& ActiveKernels();

// Hashes `n` rows of a packed batch through the active hash kernel when the
// key has the single-word shape, else through scalar KeySpec::Hash.
// Equivalent to out[i] = key.Hash(rows + i * stride) in all cases.
void HashRowsBatch(const KeySpec& key, const std::byte* rows, uint32_t stride,
                   uint32_t n, uint64_t* out);

}  // namespace pjoin

#endif  // PJOIN_KERNELS_KERNELS_H_
