// AVX2 kernel tier: 4 x 64-bit lanes, gathers, variable shifts.
//
// Every function carries __attribute__((target("avx2"))) so this TU compiles
// in portable builds (-DPJOIN_NATIVE=OFF) and the code is only executed when
// dispatch has verified host support. Lane tails fall through to the scalar
// range helpers, so every batch size is exact.

#include "kernels/kernels_internal.h"

#if PJOIN_SIMD_X86

#include <immintrin.h>

#include <cstring>

namespace pjoin {
namespace kernels {
namespace {

#define PJOIN_AVX2 __attribute__((target("avx2")))

// 64-bit lane-wise multiply by a constant. AVX2 has no 64-bit mullo, so
// build it from 32x32->64 partial products:
//   a * c = lo(a)*lo(c) + ((hi(a)*lo(c) + lo(a)*hi(c)) << 32)
PJOIN_AVX2 inline __m256i Mul64Const(__m256i a, uint64_t c) {
  const __m256i cv = _mm256_set1_epi64x(static_cast<long long>(c));
  const __m256i c_hi = _mm256_set1_epi64x(static_cast<long long>(c >> 32));
  __m256i lo = _mm256_mul_epu32(a, cv);
  __m256i cross1 = _mm256_mul_epu32(_mm256_srli_epi64(a, 32), cv);
  __m256i cross2 = _mm256_mul_epu32(a, c_hi);
  __m256i hi = _mm256_add_epi64(cross1, cross2);
  return _mm256_add_epi64(lo, _mm256_slli_epi64(hi, 32));
}

// util/hash.h HashInt64 (MurmurHash3 finalizer), 4 lanes at a time.
PJOIN_AVX2 inline __m256i Murmur64(__m256i k) {
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = Mul64Const(k, 0xff51afd7ed558ccdULL);
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  k = Mul64Const(k, 0xc4ceb9fe1a85ec53ULL);
  k = _mm256_xor_si256(k, _mm256_srli_epi64(k, 33));
  return k;
}

// The blocked Bloom filter's 4-sector bit mask (blocked_bloom.h BitMask),
// lane-wise: OR of 1 << ((h >> s) & 63) for s in {40, 46, 52, 58}.
PJOIN_AVX2 inline __m256i BloomMask4(__m256i h) {
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i six_bits = _mm256_set1_epi64x(63);
  __m256i m = _mm256_sllv_epi64(
      one, _mm256_and_si256(_mm256_srli_epi64(h, 40), six_bits));
  m = _mm256_or_si256(m, _mm256_sllv_epi64(one, _mm256_and_si256(
                                                    _mm256_srli_epi64(h, 46),
                                                    six_bits)));
  m = _mm256_or_si256(m, _mm256_sllv_epi64(one, _mm256_and_si256(
                                                    _mm256_srli_epi64(h, 52),
                                                    six_bits)));
  m = _mm256_or_si256(m, _mm256_sllv_epi64(one, _mm256_and_si256(
                                                    _mm256_srli_epi64(h, 58),
                                                    six_bits)));
  return m;
}

PJOIN_AVX2 void BloomProbeAvx2(const uint64_t* blocks, uint64_t block_mask,
                               const uint64_t* hashes, uint32_t n,
                               uint64_t* pass_bitmap) {
  for (uint32_t w = 0; w < (n + 63) / 64; ++w) pass_bitmap[w] = 0;
  const __m256i bmask =
      _mm256_set1_epi64x(static_cast<long long>(block_mask));
  uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i h =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hashes + i));
    __m256i idx = _mm256_and_si256(h, bmask);
    __m256i block = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(blocks), idx, 8);
    __m256i mask = BloomMask4(h);
    __m256i hit = _mm256_cmpeq_epi64(_mm256_and_si256(block, mask), mask);
    // 4-bit lane mask; i is a multiple of 4, so the nibble never straddles a
    // bitmap word.
    uint64_t lanes = static_cast<uint32_t>(
        _mm256_movemask_pd(_mm256_castsi256_pd(hit)));
    pass_bitmap[i >> 6] |= lanes << (i & 63);
  }
  BloomProbeScalarRange(blocks, block_mask, hashes, i, n, pass_bitmap);
}

PJOIN_AVX2 uint32_t DirTagProbeAvx2(const uint64_t* dir, int dir_shift,
                                    uint64_t dir_mask, const uint64_t* hashes,
                                    uint32_t n, uint32_t* sel,
                                    uint64_t* heads) {
  const __m256i dmask = _mm256_set1_epi64x(static_cast<long long>(dir_mask));
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i tag_sel = _mm256_set1_epi64x(15);
  const __m256i tag_base = _mm256_set1_epi64x(48);
  const __m256i ptr_mask =
      _mm256_set1_epi64x(static_cast<long long>(kChainPointerMask));
  const __m128i shift = _mm_cvtsi32_si128(dir_shift);
  const __m256i zero = _mm256_setzero_si256();
  uint32_t out = 0;
  uint32_t i = 0;
  alignas(32) uint64_t head_lanes[4];
  for (; i + 4 <= n; i += 4) {
    __m256i h =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(hashes + i));
    __m256i idx = _mm256_and_si256(_mm256_srl_epi64(h, shift), dmask);
    __m256i slot = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(dir), idx, 8);
    __m256i tag_shift = _mm256_add_epi64(
        _mm256_and_si256(_mm256_srli_epi64(h, 16), tag_sel), tag_base);
    __m256i tag = _mm256_sllv_epi64(one, tag_shift);
    __m256i miss = _mm256_cmpeq_epi64(_mm256_and_si256(slot, tag), zero);
    uint32_t hits =
        ~static_cast<uint32_t>(_mm256_movemask_pd(_mm256_castsi256_pd(miss))) &
        0xf;
    if (hits == 0) continue;
    _mm256_store_si256(reinterpret_cast<__m256i*>(head_lanes),
                       _mm256_and_si256(slot, ptr_mask));
    while (hits != 0) {
      uint32_t lane = static_cast<uint32_t>(__builtin_ctz(hits));
      sel[out] = i + lane;
      heads[out] = head_lanes[lane];
      ++out;
      hits &= hits - 1;
    }
  }
  return DirTagProbeScalarRange(dir, dir_shift, dir_mask, hashes, i, n, sel,
                                heads, out);
}

PJOIN_AVX2 void HashRowsAvx2(const std::byte* rows, uint32_t stride,
                             uint32_t offset, uint32_t width, uint32_t n,
                             uint64_t* out) {
  uint32_t i = 0;
  if (width == 8 && stride == 8 && offset == 0) {
    // Packed key column: contiguous 64-bit loads. Two independent vectors
    // per iteration — the emulated 64-bit multiply chain in Murmur64 is
    // latency-bound, and interleaving two chains roughly doubles ILP.
    for (; i + 8 <= n; i += 8) {
      __m256i k0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(rows + static_cast<size_t>(i) * 8));
      __m256i k1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
          rows + static_cast<size_t>(i) * 8 + 32));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), Murmur64(k0));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4),
                          Murmur64(k1));
    }
    for (; i + 4 <= n; i += 4) {
      __m256i k = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(rows + static_cast<size_t>(i) * 8));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), Murmur64(k));
    }
  } else {
    // Strided rows: assemble lanes with scalar loads (a gather of `width`
    // bytes could read past the final row), then finalize vector-wise —
    // the multiply chain is where the cycles are.
    const std::byte* base = rows + offset;
    auto lane = [&](uint32_t r) -> long long {
      if (width == 8) {
        uint64_t v;
        std::memcpy(&v, base + static_cast<size_t>(r) * stride, 8);
        return static_cast<long long>(v);
      }
      uint32_t v;
      std::memcpy(&v, base + static_cast<size_t>(r) * stride, 4);
      return static_cast<long long>(static_cast<uint64_t>(v));
    };
    for (; i + 8 <= n; i += 8) {
      __m256i k0 = _mm256_set_epi64x(lane(i + 3), lane(i + 2), lane(i + 1),
                                     lane(i));
      __m256i k1 = _mm256_set_epi64x(lane(i + 7), lane(i + 6), lane(i + 5),
                                     lane(i + 4));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), Murmur64(k0));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4),
                          Murmur64(k1));
    }
    for (; i + 4 <= n; i += 4) {
      __m256i k = _mm256_set_epi64x(lane(i + 3), lane(i + 2), lane(i + 1),
                                    lane(i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), Murmur64(k));
    }
  }
  HashRowsScalarRange(rows, stride, offset, width, i, n, out);
}

}  // namespace

// External linkage: the avx512 tier's table shares this function (see the
// declaration in kernels_internal.h for why 256 bits is the right width).
PJOIN_AVX2 void HistogramAvx2(const std::byte* tuples, uint64_t n,
                              uint32_t stride, int shift, uint64_t mask,
                              uint64_t* hist) {
  const __m256i pmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m128i pshift = _mm_cvtsi32_si128(shift);
  uint64_t i = 0;
  alignas(32) uint64_t part[4];
  for (; i + 4 <= n; i += 4) {
    // Tuple hashes sit `stride` bytes apart; extract the partition index for
    // 4 tuples at once, then bump the counters scalar-wise (counter updates
    // can collide across lanes).
    auto h = [&](uint64_t r) -> long long {
      uint64_t v;
      std::memcpy(&v, tuples + r * stride, 8);
      return static_cast<long long>(v);
    };
    __m256i hv = _mm256_set_epi64x(h(i + 3), h(i + 2), h(i + 1), h(i));
    __m256i idx = _mm256_and_si256(_mm256_srl_epi64(hv, pshift), pmask);
    _mm256_store_si256(reinterpret_cast<__m256i*>(part), idx);
    hist[part[0]] += 1;
    hist[part[1]] += 1;
    hist[part[2]] += 1;
    hist[part[3]] += 1;
  }
  HistogramScalarRange(tuples, i, n, stride, shift, mask, hist);
}

// External linkage: shared with the avx512 table, like HistogramAvx2 —
// widening loads and gathers saturate the load ports at 256 bits already.
PJOIN_AVX2 void UnpackCodesAvx2(const std::byte* codes, uint32_t code_width,
                                uint32_t n, uint32_t* out) {
  uint32_t i = 0;
  if (code_width == 1) {
    for (; i + 8 <= n; i += 8) {
      __m128i b =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(codes + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                          _mm256_cvtepu8_epi32(b));
    }
  } else if (code_width == 2) {
    for (; i + 8 <= n; i += 8) {
      __m128i b = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(codes + static_cast<size_t>(i) * 2));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                          _mm256_cvtepu16_epi32(b));
    }
  } else {
    // 4-byte codes are already the output format.
    std::memcpy(out, codes, static_cast<size_t>(n) * 4);
    return;
  }
  UnpackCodesScalarRange(codes, code_width, i, n, out);
}

PJOIN_AVX2 void DictGatherAvx2(const std::byte* dict, uint32_t value_width,
                               const uint32_t* codes, uint32_t n,
                               std::byte* out) {
  uint32_t i = 0;
  if (value_width == 4) {
    for (; i + 8 <= n; i += 8) {
      __m256i idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + i));
      __m256i v = _mm256_i32gather_epi32(reinterpret_cast<const int*>(dict),
                                         idx, 4);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + static_cast<size_t>(i) * 4), v);
    }
  } else if (value_width == 8) {
    for (; i + 4 <= n; i += 4) {
      __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + i));
      __m256i v = _mm256_i32gather_epi64(
          reinterpret_cast<const long long*>(dict), idx, 8);
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out + static_cast<size_t>(i) * 8), v);
    }
  }
  // Other value widths (wide char dictionaries) copy scalar-wise; the
  // per-value memcpy is already a couple of machine words.
  DictGatherScalarRange(dict, value_width, codes, i, n, out);
}

#undef PJOIN_AVX2

const SimdKernels kAvx2Kernels = {
    BloomProbeAvx2,
    DirTagProbeAvx2,
    HashRowsAvx2,
    HistogramAvx2,
    UnpackCodesAvx2,
    DictGatherAvx2,
};

}  // namespace kernels
}  // namespace pjoin

#endif  // PJOIN_SIMD_X86
