// AVX-512 kernel tier: 8 x 64-bit lanes, mask registers, native 64-bit
// multiply (hence the DQ requirement in cpu_info's has_avx512).
//
// Same compile-everywhere scheme as the AVX2 tier: per-function target
// attributes, scalar range helpers for lane tails.

#include "kernels/kernels_internal.h"

#if PJOIN_SIMD_X86

#include <immintrin.h>

#include <cstring>

namespace pjoin {
namespace kernels {
namespace {

#define PJOIN_AVX512 __attribute__((target("avx512f,avx512dq")))

// util/hash.h HashInt64 (MurmurHash3 finalizer), 8 lanes at a time.
PJOIN_AVX512 inline __m512i Murmur64(__m512i k) {
  k = _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
  k = _mm512_mullo_epi64(k, _mm512_set1_epi64(0xff51afd7ed558ccdULL));
  k = _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
  k = _mm512_mullo_epi64(k, _mm512_set1_epi64(0xc4ceb9fe1a85ec53ULL));
  k = _mm512_xor_si512(k, _mm512_srli_epi64(k, 33));
  return k;
}

// The blocked Bloom filter's 4-sector bit mask, 8 lanes at a time.
PJOIN_AVX512 inline __m512i BloomMask8(__m512i h) {
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i six_bits = _mm512_set1_epi64(63);
  __m512i m = _mm512_sllv_epi64(
      one, _mm512_and_si512(_mm512_srli_epi64(h, 40), six_bits));
  m = _mm512_or_si512(m, _mm512_sllv_epi64(one, _mm512_and_si512(
                                                    _mm512_srli_epi64(h, 46),
                                                    six_bits)));
  m = _mm512_or_si512(m, _mm512_sllv_epi64(one, _mm512_and_si512(
                                                    _mm512_srli_epi64(h, 52),
                                                    six_bits)));
  m = _mm512_or_si512(m, _mm512_sllv_epi64(one, _mm512_and_si512(
                                                    _mm512_srli_epi64(h, 58),
                                                    six_bits)));
  return m;
}

PJOIN_AVX512 void BloomProbeAvx512(const uint64_t* blocks, uint64_t block_mask,
                                   const uint64_t* hashes, uint32_t n,
                                   uint64_t* pass_bitmap) {
  for (uint32_t w = 0; w < (n + 63) / 64; ++w) pass_bitmap[w] = 0;
  const __m512i bmask = _mm512_set1_epi64(static_cast<long long>(block_mask));
  uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i h = _mm512_loadu_si512(hashes + i);
    __m512i idx = _mm512_and_si512(h, bmask);
    __m512i block = _mm512_i64gather_epi64(idx, blocks, 8);
    __m512i mask = BloomMask8(h);
    __mmask8 hit =
        _mm512_cmpeq_epi64_mask(_mm512_and_si512(block, mask), mask);
    // i is a multiple of 8, so the byte never straddles a bitmap word.
    pass_bitmap[i >> 6] |= static_cast<uint64_t>(hit) << (i & 63);
  }
  BloomProbeScalarRange(blocks, block_mask, hashes, i, n, pass_bitmap);
}

PJOIN_AVX512 uint32_t DirTagProbeAvx512(const uint64_t* dir, int dir_shift,
                                        uint64_t dir_mask,
                                        const uint64_t* hashes, uint32_t n,
                                        uint32_t* sel, uint64_t* heads) {
  const __m512i dmask = _mm512_set1_epi64(static_cast<long long>(dir_mask));
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i tag_sel = _mm512_set1_epi64(15);
  const __m512i tag_base = _mm512_set1_epi64(48);
  const __m512i ptr_mask =
      _mm512_set1_epi64(static_cast<long long>(kChainPointerMask));
  const __m128i shift = _mm_cvtsi32_si128(dir_shift);
  uint32_t out = 0;
  uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i h = _mm512_loadu_si512(hashes + i);
    __m512i idx = _mm512_and_si512(_mm512_srl_epi64(h, shift), dmask);
    __m512i slot = _mm512_i64gather_epi64(idx, dir, 8);
    __m512i tag_shift = _mm512_add_epi64(
        _mm512_and_si512(_mm512_srli_epi64(h, 16), tag_sel), tag_base);
    __m512i tag = _mm512_sllv_epi64(one, tag_shift);
    __mmask8 hits = _mm512_test_epi64_mask(slot, tag);
    if (hits == 0) continue;
    // Compress surviving chain heads straight into the output (lane order is
    // preserved, matching the scalar sel order).
    _mm512_mask_compressstoreu_epi64(heads + out, hits,
                                     _mm512_and_si512(slot, ptr_mask));
    uint32_t bits = hits;
    while (bits != 0) {
      sel[out] = i + static_cast<uint32_t>(__builtin_ctz(bits));
      ++out;
      bits &= bits - 1;
    }
  }
  return DirTagProbeScalarRange(dir, dir_shift, dir_mask, hashes, i, n, sel,
                                heads, out);
}

PJOIN_AVX512 void HashRowsAvx512(const std::byte* rows, uint32_t stride,
                                 uint32_t offset, uint32_t width, uint32_t n,
                                 uint64_t* out) {
  uint32_t i = 0;
  if (width == 8 && stride == 8 && offset == 0) {
    for (; i + 8 <= n; i += 8) {
      __m512i k = _mm512_loadu_si512(rows + static_cast<size_t>(i) * 8);
      _mm512_storeu_si512(out + i, Murmur64(k));
    }
  } else {
    const std::byte* base = rows + offset;
    auto lane = [&](uint32_t r) -> long long {
      if (width == 8) {
        uint64_t v;
        std::memcpy(&v, base + static_cast<size_t>(r) * stride, 8);
        return static_cast<long long>(v);
      }
      uint32_t v;
      std::memcpy(&v, base + static_cast<size_t>(r) * stride, 4);
      return static_cast<long long>(static_cast<uint64_t>(v));
    };
    for (; i + 8 <= n; i += 8) {
      __m512i k = _mm512_set_epi64(lane(i + 7), lane(i + 6), lane(i + 5),
                                   lane(i + 4), lane(i + 3), lane(i + 2),
                                   lane(i + 1), lane(i));
      _mm512_storeu_si512(out + i, Murmur64(k));
    }
  }
  HashRowsScalarRange(rows, stride, offset, width, i, n, out);
}

#undef PJOIN_AVX512

}  // namespace

const SimdKernels kAvx512Kernels = {
    BloomProbeAvx512,
    DirTagProbeAvx512,
    HashRowsAvx512,
    // 256-bit on purpose: counter bumps are scalar either way, and 512-bit
    // index extraction measurably loses to frequency licensing.
    HistogramAvx2,
    // Also 256-bit on purpose: widening loads and gathers are load-port
    // bound, so the wider registers buy nothing (see kernels_internal.h).
    UnpackCodesAvx2,
    DictGatherAvx2,
};

}  // namespace kernels
}  // namespace pjoin

#endif  // PJOIN_SIMD_X86
