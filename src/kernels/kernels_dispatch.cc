// Kernel tier dispatch: maps a SimdTier to its function table, falling back
// to scalar whenever the tier is not compiled in or the host cannot run it,
// so a returned table is always safe to call.

#include "kernels/kernels.h"

#include "join/key_spec.h"
#include "kernels/kernels_internal.h"

namespace pjoin {

const SimdKernels& KernelsFor(SimdTier tier) {
#if PJOIN_SIMD_X86
  if (SimdTierAvailable(tier)) {
    switch (tier) {
      case SimdTier::kAVX512:
        return kernels::kAvx512Kernels;
      case SimdTier::kAVX2:
        return kernels::kAvx2Kernels;
      case SimdTier::kScalar:
        break;
    }
  }
#else
  (void)tier;
#endif
  return kernels::kScalarKernels;
}

const SimdKernels& ActiveKernels() {
  static const SimdKernels& table = KernelsFor(ActiveSimdTier());
  return table;
}

void HashRowsBatch(const KeySpec& key, const std::byte* rows, uint32_t stride,
                   uint32_t n, uint64_t* out) {
  uint32_t offset = 0;
  uint32_t width = 0;
  if (key.SingleWordKey(&offset, &width)) {
    ActiveKernels().hash_rows(rows, stride, offset, width, n, out);
    return;
  }
  // Composite or wide char keys: per-row scalar hash (HashCombine chains do
  // not vectorize profitably at these key counts).
  for (uint32_t i = 0; i < n; ++i) {
    out[i] = key.Hash(rows + static_cast<size_t>(i) * stride);
  }
}

}  // namespace pjoin
