// Shared internals of the kernel tiers: per-tier tables and the scalar
// helpers vector variants use for lane tails. Not part of the public API.
#ifndef PJOIN_KERNELS_KERNELS_INTERNAL_H_
#define PJOIN_KERNELS_KERNELS_INTERNAL_H_

#include <cstdint>

#include "filter/blocked_bloom.h"
#include "hash_table/chaining_ht.h"
#include "kernels/kernels.h"

namespace pjoin {
namespace kernels {

// Bit-level formulas shared by all tiers, delegated to the owning classes so
// the kernels cannot drift from the scalar engine.
inline uint64_t BloomBitMask(uint64_t hash) {
  return BlockedBloomFilter::BitMask(hash);
}
inline uint64_t ChainTagBit(uint64_t hash) {
  return ChainingHashTable::TagOf(hash);
}
inline constexpr uint64_t kChainPointerMask = ChainingHashTable::kPointerMask;

// Scalar kernels, used directly as the kScalar tier and by the vector tiers
// to finish batches that are not a multiple of the lane count. Each takes a
// `begin` index so tails reuse the exact oracle code path.
void BloomProbeScalarRange(const uint64_t* blocks, uint64_t block_mask,
                           const uint64_t* hashes, uint32_t begin, uint32_t n,
                           uint64_t* pass_bitmap);
uint32_t DirTagProbeScalarRange(const uint64_t* dir, int dir_shift,
                                uint64_t dir_mask, const uint64_t* hashes,
                                uint32_t begin, uint32_t n, uint32_t* sel,
                                uint64_t* heads, uint32_t out);
void HashRowsScalarRange(const std::byte* rows, uint32_t stride,
                         uint32_t offset, uint32_t width, uint32_t begin,
                         uint32_t n, uint64_t* out);
void HistogramScalarRange(const std::byte* tuples, uint64_t begin, uint64_t n,
                          uint32_t stride, int shift, uint64_t mask,
                          uint64_t* hist);
void UnpackCodesScalarRange(const std::byte* codes, uint32_t code_width,
                            uint32_t begin, uint32_t n, uint32_t* out);
void DictGatherScalarRange(const std::byte* dict, uint32_t value_width,
                           const uint32_t* codes, uint32_t begin, uint32_t n,
                           std::byte* out);

// Per-tier kernel tables. The AVX tables exist only when PJOIN_SIMD_X86.
extern const SimdKernels kScalarKernels;
#if PJOIN_SIMD_X86
extern const SimdKernels kAvx2Kernels;
extern const SimdKernels kAvx512Kernels;

// The 256-bit histogram kernel, shared with the avx512 tier: the counter
// bumps are inherently scalar, so 512-bit index extraction buys nothing and
// measurably loses to frequency licensing (see bench/micro_simd).
void HistogramAvx2(const std::byte* tuples, uint64_t n, uint32_t stride,
                   int shift, uint64_t mask, uint64_t* hist);

// The 256-bit encoding kernels, shared with the avx512 tier: widening loads
// and gathers saturate the load ports at 256 bits already, so the wider
// registers buy nothing here either.
void UnpackCodesAvx2(const std::byte* codes, uint32_t code_width, uint32_t n,
                     uint32_t* out);
void DictGatherAvx2(const std::byte* dict, uint32_t value_width,
                    const uint32_t* codes, uint32_t n, std::byte* out);
#endif

}  // namespace kernels
}  // namespace pjoin

#endif  // PJOIN_KERNELS_KERNELS_INTERNAL_H_
