// Scalar reference kernels: the dispatch fallback and the test oracle.
//
// This translation unit is compiled with -fno-tree-vectorize (src/CMakeLists)
// so the "scalar" tier really is scalar — GCC's -O2 cost model otherwise
// auto-vectorizes these loops, which would silently turn the scalar baseline
// of bench/micro_simd into a vector one.

#include <cstring>

#include "kernels/kernels_internal.h"
#include "util/hash.h"

namespace pjoin {
namespace kernels {

void BloomProbeScalarRange(const uint64_t* blocks, uint64_t block_mask,
                           const uint64_t* hashes, uint32_t begin, uint32_t n,
                           uint64_t* pass_bitmap) {
  for (uint32_t i = begin; i < n; ++i) {
    uint64_t h = hashes[i];
    uint64_t mask = BloomBitMask(h);
    if ((blocks[h & block_mask] & mask) == mask) {
      pass_bitmap[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

uint32_t DirTagProbeScalarRange(const uint64_t* dir, int dir_shift,
                                uint64_t dir_mask, const uint64_t* hashes,
                                uint32_t begin, uint32_t n, uint32_t* sel,
                                uint64_t* heads, uint32_t out) {
  for (uint32_t i = begin; i < n; ++i) {
    uint64_t h = hashes[i];
    uint64_t slot = dir[(h >> dir_shift) & dir_mask];
    if ((slot & ChainTagBit(h)) != 0) {
      sel[out] = i;
      heads[out] = slot & kChainPointerMask;
      ++out;
    }
  }
  return out;
}

void HashRowsScalarRange(const std::byte* rows, uint32_t stride,
                         uint32_t offset, uint32_t width, uint32_t begin,
                         uint32_t n, uint64_t* out) {
  const std::byte* base = rows + offset;
  if (width == 8) {
    for (uint32_t i = begin; i < n; ++i) {
      uint64_t v;
      std::memcpy(&v, base + static_cast<size_t>(i) * stride, 8);
      out[i] = HashInt64(v);
    }
  } else {
    for (uint32_t i = begin; i < n; ++i) {
      uint32_t v;
      std::memcpy(&v, base + static_cast<size_t>(i) * stride, 4);
      out[i] = HashInt64(v);
    }
  }
}

void HistogramScalarRange(const std::byte* tuples, uint64_t begin, uint64_t n,
                          uint32_t stride, int shift, uint64_t mask,
                          uint64_t* hist) {
  for (uint64_t i = begin; i < n; ++i) {
    uint64_t h;
    std::memcpy(&h, tuples + i * stride, 8);
    hist[(h >> shift) & mask] += 1;
  }
}

void UnpackCodesScalarRange(const std::byte* codes, uint32_t code_width,
                            uint32_t begin, uint32_t n, uint32_t* out) {
  for (uint32_t i = begin; i < n; ++i) {
    uint32_t code = 0;
    std::memcpy(&code, codes + static_cast<size_t>(i) * code_width,
                code_width);
    out[i] = code;
  }
}

void DictGatherScalarRange(const std::byte* dict, uint32_t value_width,
                           const uint32_t* codes, uint32_t begin, uint32_t n,
                           std::byte* out) {
  for (uint32_t i = begin; i < n; ++i) {
    std::memcpy(out + static_cast<size_t>(i) * value_width,
                dict + static_cast<size_t>(codes[i]) * value_width,
                value_width);
  }
}

namespace {

void BloomProbeScalar(const uint64_t* blocks, uint64_t block_mask,
                      const uint64_t* hashes, uint32_t n,
                      uint64_t* pass_bitmap) {
  for (uint32_t w = 0; w < (n + 63) / 64; ++w) pass_bitmap[w] = 0;
  BloomProbeScalarRange(blocks, block_mask, hashes, 0, n, pass_bitmap);
}

uint32_t DirTagProbeScalar(const uint64_t* dir, int dir_shift,
                           uint64_t dir_mask, const uint64_t* hashes,
                           uint32_t n, uint32_t* sel, uint64_t* heads) {
  return DirTagProbeScalarRange(dir, dir_shift, dir_mask, hashes, 0, n, sel,
                                heads, 0);
}

void HashRowsScalar(const std::byte* rows, uint32_t stride, uint32_t offset,
                    uint32_t width, uint32_t n, uint64_t* out) {
  HashRowsScalarRange(rows, stride, offset, width, 0, n, out);
}

void HistogramScalar(const std::byte* tuples, uint64_t n, uint32_t stride,
                     int shift, uint64_t mask, uint64_t* hist) {
  HistogramScalarRange(tuples, 0, n, stride, shift, mask, hist);
}

void UnpackCodesScalar(const std::byte* codes, uint32_t code_width, uint32_t n,
                       uint32_t* out) {
  UnpackCodesScalarRange(codes, code_width, 0, n, out);
}

void DictGatherScalar(const std::byte* dict, uint32_t value_width,
                      const uint32_t* codes, uint32_t n, std::byte* out) {
  DictGatherScalarRange(dict, value_width, codes, 0, n, out);
}

}  // namespace

const SimdKernels kScalarKernels = {
    BloomProbeScalar,
    DirTagProbeScalar,
    HashRowsScalar,
    HistogramScalar,
    UnpackCodesScalar,
    DictGatherScalar,
};

}  // namespace kernels
}  // namespace pjoin
