#include "partition/chunked_buffer.h"

#include <algorithm>

#include "spill/memory_governor.h"
#include "util/bitutil.h"
#include "util/check.h"

namespace pjoin {

namespace {
// First page 16 KiB; pages double up to 1 MiB ("whenever a page is full, a
// larger page is prepended and used instead").
constexpr uint64_t kFirstChunkBytes = 16 * 1024;
constexpr uint64_t kMaxChunkBytes = 1024 * 1024;
}  // namespace

std::byte* ChunkedTupleBuffer::AllocBytes(uint32_t bytes) {
  PJOIN_DCHECK(stride_ != 0);
  if (chunks_.empty() || chunks_.back().used + bytes > chunks_.back().capacity) {
    AddChunk(bytes);
  }
  Chunk& chunk = chunks_.back();
  std::byte* dst = chunk.mem.data() + chunk.used;
  chunk.used += bytes;
  total_bytes_ += bytes;
  return dst;
}

void ChunkedTupleBuffer::AddChunk(uint32_t min_bytes) {
  uint64_t cap = chunks_.empty() ? kFirstChunkBytes
                                 : std::min(chunks_.back().capacity * 2,
                                            kMaxChunkBytes);
  // Capacity must hold the request and stay a multiple of the write-combine
  // block size so streamed blocks never straddle chunks.
  while (cap < min_bytes) cap *= 2;
  cap = AlignUp(cap, kSwwcbBytes);
  Chunk chunk;
  chunk.mem.Allocate(cap);
  chunk.capacity = cap;
  chunks_.push_back(std::move(chunk));
  // Governor accounting is per chunk (16 KiB..1 MiB), never per tuple.
  MemoryGovernor::Global().Account(cap);
}

void ChunkedTupleBuffer::Clear() {
  uint64_t held = 0;
  for (const Chunk& c : chunks_) held += c.capacity;
  if (held > 0) MemoryGovernor::Global().Release(held);
  chunks_.clear();
  total_bytes_ = 0;
}

}  // namespace pjoin
