// Worker-local chunked tuple storage for the first partitioning pass.
//
// The radix join consumes a dataflow, so the input cardinality is unknown and
// the first pass cannot use histogram-computed offsets. Each temporary
// partition is therefore a linked list of pages (Section 4.5): whenever a
// page fills up, a larger one is appended. Pages are cache-line aligned and
// their capacity is a multiple of the write-combine block size, so streaming
// flushes never straddle a page boundary.
//
// Keeping these chunks worker-local is also the NUMA-aware design of Schuh
// et al. (Section 3.3 C): every pass-1 write goes to memory owned by the
// writing worker; only pass-2 reads cross workers.
#ifndef PJOIN_PARTITION_CHUNKED_BUFFER_H_
#define PJOIN_PARTITION_CHUNKED_BUFFER_H_

#include <cstdint>
#include <vector>

#include "util/aligned_buffer.h"

namespace pjoin {

// Block size of the software write-combine buffers: four cache lines.
inline constexpr uint32_t kSwwcbBytes = 256;

class ChunkedTupleBuffer {
 public:
  ChunkedTupleBuffer() = default;
  ~ChunkedTupleBuffer() { Clear(); }

  ChunkedTupleBuffer(ChunkedTupleBuffer&&) = default;
  // Custom move-assign: replaced chunks must be un-accounted from the
  // memory governor before they are freed.
  ChunkedTupleBuffer& operator=(ChunkedTupleBuffer&& other) noexcept {
    if (this != &other) {
      Clear();
      stride_ = other.stride_;
      total_bytes_ = other.total_bytes_;
      chunks_ = std::move(other.chunks_);
      other.total_bytes_ = 0;
    }
    return *this;
  }

  void Init(uint32_t tuple_stride) {
    Clear();
    stride_ = tuple_stride;
  }

  // Returns a contiguous, 64-byte-aligned region of `bytes` (either one
  // write-combine block or one tuple). Page capacities are multiples of
  // kSwwcbBytes, and block allocations always precede single-tuple
  // allocations within a pass, so block regions stay 64-byte aligned.
  std::byte* AllocBytes(uint32_t bytes);

  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t num_tuples() const { return stride_ ? total_bytes_ / stride_ : 0; }
  uint32_t stride() const { return stride_; }
  bool empty() const { return total_bytes_ == 0; }

  // Iterates chunks in insertion order: fn(data, used_bytes).
  template <typename Fn>
  void ForEachChunk(Fn&& fn) const {
    for (const Chunk& c : chunks_) {
      if (c.used > 0) fn(c.mem.data(), c.used);
    }
  }

  // Frees all chunks and reports their bytes back to the memory governor.
  void Clear();

 private:
  struct Chunk {
    AlignedBuffer mem;
    uint64_t used = 0;
    uint64_t capacity = 0;
  };

  void AddChunk(uint32_t min_bytes);

  uint32_t stride_ = 0;
  uint64_t total_bytes_ = 0;
  std::vector<Chunk> chunks_;
};

}  // namespace pjoin

#endif  // PJOIN_PARTITION_CHUNKED_BUFFER_H_
