#include "partition/radix_partitioner.h"

#include <algorithm>
#include <cstring>

#include "exec/thread_pool.h"
#include "kernels/kernels.h"
#include "partition/stream_store.h"
#include "spill/memory_governor.h"
#include "util/bitutil.h"
#include "util/check.h"
#include "util/cpu_info.h"
#include "util/stopwatch.h"

namespace pjoin {

namespace {
// Maximum worker count supported without threading the pool through the
// constructor (buffers are lazily small).
constexpr int kMaxBits1 = 8;  // TLB-friendly pass-1 fan-out bound
constexpr int kMaxBits2 = 8;
}  // namespace

RadixBits ChooseRadixBits(uint64_t expected_build_tuples,
                          uint32_t tuple_stride) {
  // Target: the per-partition robin-hood table (16 B/slot at load factor
  // ~2/3) plus the partition tuples fit in half the L2 cache.
  const CpuInfo& cpu = GetCpuInfo();
  uint64_t budget = static_cast<uint64_t>(cpu.l2_bytes) / 2;
  uint64_t per_tuple = tuple_stride + 24;  // tuple + amortized table slot
  uint64_t want_partitions =
      (expected_build_tuples * per_tuple + budget - 1) / budget;
  int total_bits = CeilLog2(want_partitions | 1);
  if (total_bits < 1) total_bits = 1;
  if (total_bits > kMaxBits1 + kMaxBits2) total_bits = kMaxBits1 + kMaxBits2;
  RadixBits bits;
  bits.bits1 = total_bits <= kMaxBits1 ? total_bits : kMaxBits1;
  bits.bits2 = total_bits - bits.bits1;
  return bits;
}

RadixPartitioner::RadixPartitioner(const RadixConfig& config)
    : config_(config),
      fanout1_(1 << config.bits1),
      fanout2_(1 << config.bits2) {
  PJOIN_CHECK(config.bits1 >= 0 && config.bits1 <= kMaxBits1);
  PJOIN_CHECK(config.bits2 >= 0 && config.bits2 <= kMaxBits2);
  PJOIN_CHECK(config.num_threads >= 1);

  uint32_t raw = 8 + config.row_stride;
  if (config_.use_swwcb && NextPow2(raw) <= kCacheLineSize) {
    // Power-of-two padding so that write-combine blocks hold a whole number
    // of tuples; this is the padding trade-off discussed with Figure 10.
    tuple_stride_ = static_cast<uint32_t>(NextPow2(raw));
    tuples_per_block_ = kSwwcbBytes / tuple_stride_;
  } else {
    // Tuples wider than a cache line are written directly (the paper does
    // not use buffers for tuples larger than 64 B).
    tuple_stride_ = static_cast<uint32_t>(AlignUp(raw, 8));
    tuples_per_block_ = 0;
    config_.use_swwcb = false;
  }

  chunks_.resize(config.num_threads);
  swwcb_mem_.resize(config.num_threads);
  swwcb_fill_.resize(config.num_threads);
  hist_.resize(config.num_threads);
  pass1_stats_.resize(config.num_threads);
  for (int t = 0; t < config.num_threads; ++t) {
    chunks_[t].resize(fanout1_);
    for (auto& buf : chunks_[t]) buf.Init(tuple_stride_);
    if (tuples_per_block_ > 0) {
      swwcb_mem_[t].Allocate(static_cast<size_t>(fanout1_) * kSwwcbBytes);
      swwcb_fill_[t].assign(fanout1_, 0);
    }
  }
}

RadixPartitioner::~RadixPartitioner() {
  if (accounted_output_bytes_ > 0) {
    MemoryGovernor::Global().Release(accounted_output_bytes_);
  }
}

void RadixPartitioner::Add(int thread_id, uint64_t hash, const std::byte* row,
                           ByteCounter* bytes) {
  int p1 = static_cast<int>(hash & static_cast<uint64_t>(fanout1_ - 1));
  if (tuples_per_block_ > 0) {
    std::byte* block =
        swwcb_mem_[thread_id].data() + static_cast<size_t>(p1) * kSwwcbBytes;
    uint32_t& fill = swwcb_fill_[thread_id][p1];
    std::byte* slot = block + static_cast<size_t>(fill) * tuple_stride_;
    std::memcpy(slot, &hash, 8);
    std::memcpy(slot + 8, row, config_.row_stride);
    if (++fill == tuples_per_block_) {
      std::byte* dst = chunks_[thread_id][p1].AllocBytes(kSwwcbBytes);
      if (config_.use_streaming) {
        StreamCopyAligned(dst, block, kSwwcbBytes);
        pass1_stats_[thread_id].streamed_bytes += kSwwcbBytes;
      } else {
        std::memcpy(dst, block, kSwwcbBytes);
      }
      pass1_stats_[thread_id].flushes += 1;
      fill = 0;
    }
  } else {
    std::byte* dst = chunks_[thread_id][p1].AllocBytes(tuple_stride_);
    std::memcpy(dst, &hash, 8);
    std::memcpy(dst + 8, row, config_.row_stride);
  }
  if (bytes != nullptr) {
    bytes->AddWrite(JoinPhase::kPartitionPass1, tuple_stride_);
  }
}

void RadixPartitioner::FlushThread(int thread_id, ByteCounter* bytes) {
  if (tuples_per_block_ == 0) return;
  for (int p1 = 0; p1 < fanout1_; ++p1) {
    uint32_t fill = swwcb_fill_[thread_id][p1];
    if (fill == 0) continue;
    const std::byte* block =
        swwcb_mem_[thread_id].data() + static_cast<size_t>(p1) * kSwwcbBytes;
    // Partial buffers are copied tuple-wise after all block flushes, so the
    // chunk stays block-aligned for streamed writes.
    std::byte* dst =
        chunks_[thread_id][p1].AllocBytes(fill * tuple_stride_);
    std::memcpy(dst, block, static_cast<size_t>(fill) * tuple_stride_);
    swwcb_fill_[thread_id][p1] = 0;
    // No byte accounting here: Add() already counted every staged tuple.
    (void)bytes;
  }
  if (config_.use_streaming) StreamFence();
}

uint64_t RadixPartitioner::PendingTuples() const {
  uint64_t total = 0;
  for (const auto& per_thread : chunks_) {
    for (const auto& buf : per_thread) total += buf.num_tuples();
  }
  return total;
}

void RadixPartitioner::Finalize(ThreadPool& pool, PhaseTimer* timer,
                                ByteCounter* per_thread_bytes) {
  PJOIN_CHECK(!finalized_);
  finalized_ = true;
  const int nthreads = config_.num_threads;
  const uint64_t hist_cells =
      static_cast<uint64_t>(fanout1_) * static_cast<uint64_t>(fanout2_);

  // ---- Histogram scan (step 3): each worker scans its own chunks. --------
  Stopwatch watch;
  pool.ParallelRun([&](int pool_tid) {
    ByteCounter* bytes =
        per_thread_bytes != nullptr ? &per_thread_bytes[pool_tid] : nullptr;
    uint64_t read_bytes = 0;
    // Strided assignment covers all worker-local chunk sets even when the
    // finalizing pool has fewer threads than produced pass-1 data.
    for (int tid = pool_tid; tid < nthreads; tid += pool.num_threads()) {
      hist_[tid].assign(hist_cells, 0);
      for (int p1 = 0; p1 < fanout1_; ++p1) {
        uint64_t* row =
            hist_[tid].data() + static_cast<uint64_t>(p1) * fanout2_;
        chunks_[tid][p1].ForEachChunk([&](const std::byte* data,
                                          uint64_t used) {
          // Batched radix-bit extraction: the kernel reads each tuple's
          // leading hash word and bumps row[(hash >> bits1) & (fanout2-1)].
          ActiveKernels().histogram(data, used / tuple_stride_, tuple_stride_,
                                    config_.bits1, fanout2_ - 1, row);
          read_bytes += used;
        });
      }
    }
    if (bytes != nullptr) {
      bytes->AddRead(JoinPhase::kHistogramScan, read_bytes);
    }
  });
  if (timer != nullptr) {
    timer->Add(JoinPhase::kHistogramScan, watch.ElapsedSeconds());
  }

  // ---- Exchange (steps 4-5): prefix sums size the output exactly. --------
  watch.Reset();
  const int num_final = num_partitions();
  partition_offset_.assign(num_final + 1, 0);
  partition_count_.assign(num_final, 0);
  total_tuples_ = 0;
  for (int p1 = 0; p1 < fanout1_; ++p1) {
    for (int p2 = 0; p2 < fanout2_; ++p2) {
      uint64_t count = 0;
      for (int t = 0; t < nthreads; ++t) {
        count += hist_[t][static_cast<uint64_t>(p1) * fanout2_ + p2];
      }
      int f = p1 | (p2 << config_.bits1);
      partition_count_[f] = count;
      total_tuples_ += count;
    }
  }
  uint64_t offset = 0;
  for (int f = 0; f < num_final; ++f) {
    partition_offset_[f] = offset;
    // Partition bases stay cache-line aligned so pass-2 streaming flushes
    // land on aligned addresses.
    offset += AlignUp(partition_count_[f] * tuple_stride_, kCacheLineSize);
  }
  partition_offset_[num_final] = offset;
  output_.Allocate(offset > 0 ? offset : kCacheLineSize);
  accounted_output_bytes_ = offset > 0 ? offset : kCacheLineSize;
  MemoryGovernor::Global().Account(accounted_output_bytes_);

  // ---- Pass 2 (steps 6-8): pre-partitions as work-stealing morsels. ------
  pass2_cursor_.store(0, std::memory_order_relaxed);
  pool.ParallelRun([&](int pool_tid) {
    ByteCounter* bytes =
        per_thread_bytes != nullptr ? &per_thread_bytes[pool_tid] : nullptr;
    // Fresh write-combine buffers per worker for the fan-out of pass 2.
    AlignedBuffer swwcb;
    std::vector<uint32_t> fill;
    if (tuples_per_block_ > 0) {
      swwcb.Allocate(static_cast<size_t>(fanout2_) * kSwwcbBytes);
      fill.assign(fanout2_, 0);
    }
    std::vector<uint64_t> cursor_bytes(fanout2_);
    Pass1Stats local_stats;
    while (true) {
      int p1 = pass2_cursor_.fetch_add(1, std::memory_order_relaxed);
      if (p1 >= fanout1_) break;
      ScatterPrePartition(p1, cursor_bytes, swwcb.data(), fill, bytes,
                          &local_stats);
    }
    if (config_.use_streaming) StreamFence();
    if (local_stats.flushes > 0) {
      pass2_flushes_.fetch_add(local_stats.flushes,
                               std::memory_order_relaxed);
      pass2_streamed_bytes_.fetch_add(local_stats.streamed_bytes,
                                      std::memory_order_relaxed);
    }
  });
  if (timer != nullptr) {
    timer->Add(JoinPhase::kPartitionPass2, watch.ElapsedSeconds());
  }

  // Temporary partitions are no longer needed; release the memory before the
  // join phase starts (this is the peak-memory choke point the paper hits
  // with Q8/Q9/Q21 at SF 100).
  for (auto& per_thread : chunks_) {
    for (auto& buf : per_thread) buf.Clear();
  }
}

void RadixPartitioner::ScatterPrePartition(int p1,
                                           std::vector<uint64_t>& cursor_bytes,
                                           std::byte* swwcb_mem,
                                           std::vector<uint32_t>& fill,
                                           ByteCounter* bytes,
                                           Pass1Stats* local_stats) {
  // Initialize output cursors of this pre-partition's final partitions.
  for (int p2 = 0; p2 < fanout2_; ++p2) {
    int f = p1 | (p2 << config_.bits1);
    cursor_bytes[p2] = partition_offset_[f];
  }
  if (tuples_per_block_ > 0) {
    std::fill(fill.begin(), fill.end(), 0);
  }

  uint64_t read_bytes = 0;
  uint64_t written_bytes = 0;
  // The same worker processes the entire linked list of one pre-partition;
  // every final partition has exactly one writer, so no synchronization.
  for (int t = 0; t < config_.num_threads; ++t) {
    chunks_[t][p1].ForEachChunk([&](const std::byte* data, uint64_t used) {
      read_bytes += used;
      for (uint64_t off = 0; off < used; off += tuple_stride_) {
        const std::byte* tuple = data + off;
        uint64_t hash = TupleHash(tuple);
        int p2 = static_cast<int>((hash >> config_.bits1) &
                                  static_cast<uint64_t>(fanout2_ - 1));
        if (config_.bloom != nullptr) {
          // Disjoint block ranges per pre-partition: unsynchronized insert.
          config_.bloom->InsertUnsynchronized(hash);
        }
        if (tuples_per_block_ > 0) {
          std::byte* block = swwcb_mem + static_cast<size_t>(p2) * kSwwcbBytes;
          std::byte* slot =
              block + static_cast<size_t>(fill[p2]) * tuple_stride_;
          std::memcpy(slot, tuple, tuple_stride_);
          if (++fill[p2] == tuples_per_block_) {
            std::byte* dst = output_.data() + cursor_bytes[p2];
            if (config_.use_streaming) {
              StreamCopyAligned(dst, block, kSwwcbBytes);
              local_stats->streamed_bytes += kSwwcbBytes;
            } else {
              std::memcpy(dst, block, kSwwcbBytes);
            }
            local_stats->flushes += 1;
            cursor_bytes[p2] += kSwwcbBytes;
            fill[p2] = 0;
            written_bytes += kSwwcbBytes;
          }
        } else {
          std::byte* dst = output_.data() + cursor_bytes[p2];
          std::memcpy(dst, tuple, tuple_stride_);
          cursor_bytes[p2] += tuple_stride_;
          written_bytes += tuple_stride_;
        }
      }
    });
  }
  // Drain partial write-combine buffers tuple-wise.
  if (tuples_per_block_ > 0) {
    for (int p2 = 0; p2 < fanout2_; ++p2) {
      if (fill[p2] == 0) continue;
      const std::byte* block = swwcb_mem + static_cast<size_t>(p2) * kSwwcbBytes;
      size_t tail = static_cast<size_t>(fill[p2]) * tuple_stride_;
      std::memcpy(output_.data() + cursor_bytes[p2], block, tail);
      cursor_bytes[p2] += tail;
      written_bytes += tail;
      fill[p2] = 0;
    }
  }
#ifndef NDEBUG
  for (int p2 = 0; p2 < fanout2_; ++p2) {
    int f = p1 | (p2 << config_.bits1);
    PJOIN_DCHECK(cursor_bytes[p2] ==
                 partition_offset_[f] + partition_count_[f] * tuple_stride_);
  }
#endif
  if (bytes != nullptr) {
    bytes->AddRead(JoinPhase::kPartitionPass2, read_bytes);
    bytes->AddWrite(JoinPhase::kPartitionPass2, written_bytes);
  }
}

PartitionerMetrics RadixPartitioner::Metrics() const {
  PartitionerMetrics m;
  m.bits1 = config_.bits1;
  m.bits2 = config_.bits2;
  m.num_partitions = num_partitions();
  m.tuples = total_tuples_;
  m.output_bytes = OutputBytes();
  m.swwcb_flushes = pass2_flushes_.load(std::memory_order_relaxed);
  m.streamed_bytes = pass2_streamed_bytes_.load(std::memory_order_relaxed);
  for (const Pass1Stats& s : pass1_stats_) {
    m.swwcb_flushes += s.flushes;
    m.streamed_bytes += s.streamed_bytes;
  }
  if (!partition_count_.empty()) {
    m.max_partition_tuples = partition_count_[0];
    m.min_partition_tuples = partition_count_[0];
    for (uint64_t count : partition_count_) {
      if (count > m.max_partition_tuples) m.max_partition_tuples = count;
      if (count < m.min_partition_tuples) m.min_partition_tuples = count;
    }
  }
  return m;
}

uint64_t RadixPartitioner::TemporaryBytes() const {
  uint64_t total = 0;
  for (const auto& per_thread : chunks_) {
    for (const auto& buf : per_thread) total += buf.total_bytes();
  }
  return total;
}

}  // namespace pjoin
