// Morsel-driven two-pass radix partitioner (Sections 3 and 4.5 of the paper).
//
// The partitioner consumes a tuple dataflow (hash + row bytes) and produces
// 2^(bits1+bits2) cache-sized partitions in one contiguous output buffer.
//
// Phases, matching Figure 6 of the paper:
//   pass 1    Workers stage incoming tuples into worker-local software
//             write-combine buffers (1); full buffers are streamed with
//             non-temporal stores into worker-local chunked temporary
//             partitions (2). Fan-out 2^bits1 from the LOW hash bits, bounded
//             so parallel writes do not thrash the TLB.
//   scan      Each worker re-scans its own chunks and builds a histogram of
//             the 2^bits2 sub-partitions of the second pass (3).
//   exchange  Prefix sums over all worker histograms size the final output
//             buffer exactly (4); the workers' chunk lists are concatenated
//             into pre-partitions (5).
//   pass 2    Pre-partitions become morsels (6); one worker scatters a whole
//             pre-partition through fresh write-combine buffers to the final
//             offsets (7), with work-stealing between pre-partitions (8).
//             Because every final partition receives tuples from exactly one
//             pre-partition, pass 2 needs no synchronization at all. When
//             requested, the pass also inserts every build tuple into a
//             register-blocked Bloom filter — safe unsynchronized because a
//             pre-partition owns a disjoint block range.
//
// Partition-tuple format: [hash: 8B][row: row_stride][padding]. The stride is
// padded to a power of two (<= 64B) when write-combine buffers are in use;
// the paper's Figure 10 discussion covers exactly this padding trade-off.
// Tuples wider than 64 bytes are written directly without buffers, as in the
// paper.
#ifndef PJOIN_PARTITION_RADIX_PARTITIONER_H_
#define PJOIN_PARTITION_RADIX_PARTITIONER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "exec/query_metrics.h"
#include "filter/blocked_bloom.h"
#include "partition/chunked_buffer.h"
#include "util/aligned_buffer.h"
#include "util/byte_counter.h"

namespace pjoin {

class ThreadPool;
class PhaseTimer;

struct RadixConfig {
  uint32_t row_stride = 8;  // bytes of the row payload (hash excluded)
  int bits1 = 6;            // fan-out of pass 1 (TLB-bounded)
  int bits2 = 4;            // fan-out of pass 2 per pre-partition
  int num_threads = 1;
  bool use_swwcb = true;
  bool use_streaming = true;          // non-temporal flushes (needs use_swwcb)
  BlockedBloomFilter* bloom = nullptr;  // built during pass 2 when non-null
};

// Picks total radix bits so one build partition's hash table fits the L2
// cache, split into two TLB-friendly passes. Returns {bits1, bits2}.
struct RadixBits {
  int bits1 = 0;
  int bits2 = 0;
};
RadixBits ChooseRadixBits(uint64_t expected_build_tuples, uint32_t tuple_stride);

class RadixPartitioner {
 public:
  explicit RadixPartitioner(const RadixConfig& config);
  ~RadixPartitioner();

  uint32_t tuple_stride() const { return tuple_stride_; }
  int num_partitions() const { return 1 << (config_.bits1 + config_.bits2); }

  // ---- Pass 1 (called from pipeline workers) ----------------------------

  // Stages one tuple. `row` must provide row_stride bytes.
  void Add(int thread_id, uint64_t hash, const std::byte* row,
           ByteCounter* bytes);

  // Flushes the worker's write-combine buffers (call from Close).
  void FlushThread(int thread_id, ByteCounter* bytes);

  // ---- Breaker work (called once, after all workers closed) -------------

  // Tuples staged so far (valid after all FlushThread calls); used to size
  // the Bloom filter before pass 2 inserts into it.
  uint64_t PendingTuples() const;

  // Late-binds the Bloom filter built during pass 2 (must be sized already).
  void set_bloom(BlockedBloomFilter* bloom) { config_.bloom = bloom; }

  // Visits every staged tuple as fn(hash, row). Valid in the same window as
  // PendingTuples() — after all FlushThread calls, before Finalize. The
  // kAuto guardrail uses this to re-route an overflowing build side into the
  // non-partitioned join without re-reading the input.
  template <typename Fn>
  void ForEachStagedTuple(Fn&& fn) const {
    for (const auto& worker : chunks_) {
      for (const ChunkedTupleBuffer& buf : worker) {
        buf.ForEachChunk([&](const std::byte* data, uint64_t used) {
          for (uint64_t off = 0; off + tuple_stride_ <= used;
               off += tuple_stride_) {
            const std::byte* tuple = data + off;
            fn(TupleHash(tuple), TupleRow(tuple));
          }
        });
      }
    }
  }

  // ---- Spill hooks (valid in the PendingTuples window) -------------------
  //
  // Pass-1 pre-partitions (LOW bits1 hash bits) are the spill granularity of
  // the hybrid radix join: a spilled pre-partition's chunks are streamed to
  // disk and cleared before Finalize, so the exchange only sizes the
  // resident remainder (the spilled final partitions end up empty).

  // Bytes staged in pre-partition `p1` across all workers.
  uint64_t PrePartitionBytes(int p1) const {
    uint64_t total = 0;
    for (const auto& worker : chunks_) total += worker[p1].total_bytes();
    return total;
  }

  // Visits every staged chunk of pre-partition `p1` as fn(data, used_bytes);
  // chunk data is contiguous tuples in partition-tuple format.
  template <typename Fn>
  void ForEachPrePartitionChunk(int p1, Fn&& fn) const {
    for (const auto& worker : chunks_) {
      worker[p1].ForEachChunk(fn);
    }
  }

  // Frees pre-partition `p1`'s chunks (releasing their governor accounting).
  void ClearPrePartition(int p1) {
    for (auto& worker : chunks_) worker[p1].Clear();
  }

  // Extracts every staged tuple of pre-partition `p1` whose hash satisfies
  // `pred(hash)` — calling sink(hash, row) for each — and compacts the
  // surviving tuples in place, so the exchange and any later spill decision
  // size only what remains. Valid in the PendingTuples window. The skew
  // defense uses this to pull heavy-hitter build tuples out of the
  // partitioning flow.
  template <typename Pred, typename Sink>
  void ExtractFromPrePartition(int p1, Pred&& pred, Sink&& sink) {
    for (auto& worker : chunks_) {
      ChunkedTupleBuffer& buf = worker[p1];
      if (buf.empty()) continue;
      bool any = false;
      buf.ForEachChunk([&](const std::byte* data, uint64_t used) {
        if (any) return;
        for (uint64_t off = 0; off + tuple_stride_ <= used;
             off += tuple_stride_) {
          if (pred(TupleHash(data + off))) {
            any = true;
            return;
          }
        }
      });
      if (!any) continue;
      ChunkedTupleBuffer keep;
      keep.Init(tuple_stride_);
      buf.ForEachChunk([&](const std::byte* data, uint64_t used) {
        for (uint64_t off = 0; off + tuple_stride_ <= used;
             off += tuple_stride_) {
          const std::byte* tuple = data + off;
          const uint64_t hash = TupleHash(tuple);
          if (pred(hash)) {
            sink(hash, TupleRow(tuple));
          } else {
            __builtin_memcpy(keep.AllocBytes(tuple_stride_), tuple,
                             tuple_stride_);
          }
        }
      });
      // Move-assign clears the replaced chunks first, keeping the governor
      // accounting exact.
      buf = std::move(keep);
    }
  }

  // Runs histogram scan, exchange, and pass 2 on `pool`. Phase wall times go
  // to `timer`; byte counts to `per_thread_bytes`, an array indexed by pool
  // thread id (either may be null).
  void Finalize(ThreadPool& pool, PhaseTimer* timer,
                ByteCounter* per_thread_bytes);

  // ---- Results -----------------------------------------------------------

  uint64_t total_tuples() const { return total_tuples_; }
  const std::byte* partition_data(int f) const {
    return output_.data() + partition_offset_[f];
  }
  uint64_t partition_tuples(int f) const { return partition_count_[f]; }

  // Hash and row accessors on partition tuples.
  static uint64_t TupleHash(const std::byte* tuple) {
    uint64_t h;
    __builtin_memcpy(&h, tuple, 8);
    return h;
  }
  static const std::byte* TupleRow(const std::byte* tuple) { return tuple + 8; }

  // Bytes held in temporary + final partition storage (memory footprint).
  uint64_t TemporaryBytes() const;
  uint64_t OutputBytes() const { return output_.size(); }

  const RadixConfig& config() const { return config_; }

  // Snapshot for the observability layer (partition sizes are only
  // meaningful after Finalize; SWWCB counters accumulate from pass 1 on).
  PartitionerMetrics Metrics() const;

 private:
  struct WriteCombineBuffer;

  // Per-worker pass-1 write-combine accounting (padded: bumped on the
  // tuple-staging hot path).
  struct alignas(64) Pass1Stats {
    uint64_t flushes = 0;
    uint64_t streamed_bytes = 0;
  };

  void ScatterPrePartition(int p1, std::vector<uint64_t>& cursor_bytes,
                           std::byte* swwcb_mem, std::vector<uint32_t>& fill,
                           ByteCounter* bytes, Pass1Stats* local_stats);

  RadixConfig config_;
  uint32_t tuple_stride_;       // padded on-disk stride incl. hash
  uint32_t tuples_per_block_;   // tuples per write-combine block (0: unbuffered)
  int fanout1_;
  int fanout2_;

  // chunks_[tid][p1]: worker-local temporary partitions (pass 1 output).
  std::vector<std::vector<ChunkedTupleBuffer>> chunks_;
  // Pass-1 write-combine buffers: swwcb_mem_[tid] holds fanout1 blocks.
  std::vector<AlignedBuffer> swwcb_mem_;
  std::vector<std::vector<uint32_t>> swwcb_fill_;

  // Histograms: hist_[tid][p1 * fanout2 + p2].
  std::vector<std::vector<uint64_t>> hist_;

  // Exchange output.
  std::vector<uint64_t> partition_offset_;  // byte offset per final partition
  std::vector<uint64_t> partition_count_;   // tuples per final partition
  uint64_t total_tuples_ = 0;
  AlignedBuffer output_;

  std::atomic<int> pass2_cursor_{0};
  bool finalized_ = false;
  // Output-buffer bytes reported to the memory governor (chunks account
  // themselves inside ChunkedTupleBuffer).
  uint64_t accounted_output_bytes_ = 0;

  // Observability counters: pass 1 is worker-indexed (contention-free);
  // pass 2 workers accumulate locally and add once at region end.
  std::vector<Pass1Stats> pass1_stats_;
  std::atomic<uint64_t> pass2_flushes_{0};
  std::atomic<uint64_t> pass2_streamed_bytes_{0};
};

}  // namespace pjoin

#endif  // PJOIN_PARTITION_RADIX_PARTITIONER_H_
