// Non-temporal streaming block copies.
//
// Software write-combine buffers are flushed to their destination with
// non-temporal stores that bypass the cache hierarchy (Section 3.3 of the
// paper): the partition output is written once and not read until the next
// pass, so caching it would only evict useful data. Destinations must be
// cache-line aligned; the widest available SIMD store is selected at compile
// time (AVX-512 stores a full cache line per instruction, as the paper notes
// for modern Intel processors).
#ifndef PJOIN_PARTITION_STREAM_STORE_H_
#define PJOIN_PARTITION_STREAM_STORE_H_

#include <cstdint>
#include <cstring>

#if defined(__AVX2__) || defined(__AVX512F__)
#include <immintrin.h>
#endif

#include "util/check.h"

namespace pjoin {

// Copies `bytes` (a multiple of 64) from 64-byte-aligned `src` to
// 64-byte-aligned `dst` with non-temporal stores.
inline void StreamCopyAligned(std::byte* dst, const std::byte* src,
                              size_t bytes) {
  PJOIN_DCHECK(reinterpret_cast<uintptr_t>(dst) % 64 == 0);
  PJOIN_DCHECK(bytes % 64 == 0);
#if defined(__AVX512F__)
  for (size_t i = 0; i < bytes; i += 64) {
    __m512i v = _mm512_load_si512(reinterpret_cast<const void*>(src + i));
    _mm512_stream_si512(reinterpret_cast<__m512i*>(dst + i), v);
  }
#elif defined(__AVX2__)
  for (size_t i = 0; i < bytes; i += 32) {
    __m256i v =
        _mm256_load_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_stream_si256(reinterpret_cast<__m256i*>(dst + i), v);
  }
#else
  std::memcpy(dst, src, bytes);
#endif
}

// Orders all pending non-temporal stores; call once per worker at the end of
// a partitioning pass before other threads read the output.
inline void StreamFence() {
#if defined(__AVX2__) || defined(__AVX512F__)
  _mm_sfence();
#endif
}

}  // namespace pjoin

#endif  // PJOIN_PARTITION_STREAM_STORE_H_
