#include "rewrite/bloom_ops.h"

#include <cstring>

#include "util/check.h"
#include "util/hash.h"

namespace pjoin {

void BloomBuildOp::Prepare(ExecContext& exec) {
  (void)exec;
  for (auto& hook : hooks_) {
    hook.field = layout_->IndexOf(hook.column);
    PJOIN_CHECK(hook.filter != nullptr && hook.filter->initialized());
  }
}

void BloomBuildOp::Consume(Batch& batch, ThreadContext& ctx) {
  MetricsIn(batch, ctx);
  for (const auto& hook : hooks_) {
    for (uint32_t i = 0; i < batch.size; ++i) {
      const int64_t key = layout_->GetNumeric(batch.Row(i), hook.field);
      hook.filter->InsertAtomic(HashInt64(static_cast<uint64_t>(key)));
    }
  }
  PushNext(batch, ctx);
}

void BloomProbeOp::Prepare(ExecContext& exec) {
  workers_.resize(exec.num_threads());
  for (auto& hook : hooks_) {
    hook.field = layout_->IndexOf(hook.column);
    PJOIN_CHECK(hook.filter != nullptr && hook.filter->initialized());
  }
}

void BloomProbeOp::Open(ThreadContext& ctx) {
  Worker& w = workers_[ctx.thread_id];
  w.scratch.Bind(layout_);
  w.batch = w.scratch.Start();
}

void BloomProbeOp::Consume(Batch& batch, ThreadContext& ctx) {
  MetricsIn(batch, ctx);
  Worker& w = workers_[ctx.thread_id];
  const uint32_t stride = layout_->stride();
  for (uint32_t i = 0; i < batch.size; ++i) {
    const std::byte* row = batch.Row(i);
    bool keep = true;
    for (const auto& hook : hooks_) {
      const int64_t key = layout_->GetNumeric(row, hook.field);
      if (!hook.filter->MayContain(HashInt64(static_cast<uint64_t>(key)))) {
        keep = false;
        break;
      }
    }
    if (!keep) {
      w.dropped++;
      continue;
    }
    if (w.scratch.Full(w.batch)) {
      PushNext(w.batch, ctx);
      w.batch = w.scratch.Start();
    }
    std::memcpy(w.scratch.AppendSlot(w.batch), row, stride);
  }
}

void BloomProbeOp::Close(ThreadContext& ctx) {
  Worker& w = workers_[ctx.thread_id];
  if (w.batch.size > 0) {
    PushNext(w.batch, ctx);
    w.batch = w.scratch.Start();
  }
  dropped_.fetch_add(w.dropped, std::memory_order_relaxed);
  w.dropped = 0;
}

std::string BloomProbeOp::MetricsDetail() const {
  std::string detail;
  for (const auto& hook : hooks_) {
    if (!detail.empty()) detail += ",";
    detail += hook.column;
  }
  return detail;
}

}  // namespace pjoin
