// Pipeline operators for rewrite-planted Bloom filters (semi-join pushdown).
//
// The rewrite pass pairs a BloomBuildOp on the planting join's build
// pipeline with a BloomProbeOp on a distant base scan's pipeline. The
// executor makes the pairing safe by completing the build pipeline before
// any pipeline of the planting join's probe subtree, so every filter is
// fully populated before the first probe against it.
#ifndef PJOIN_REWRITE_BLOOM_OPS_H_
#define PJOIN_REWRITE_BLOOM_OPS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "exec/pipeline.h"
#include "filter/blocked_bloom.h"
#include "storage/row_layout.h"

namespace pjoin {

// One (row field -> shared filter) pairing; both operators take a list so a
// single scan or join carrying several plants pays one operator.
struct BloomHook {
  int field = -1;                     // resolved at Prepare from the column
  std::string column;
  BlockedBloomFilter* filter = nullptr;
};

// Pass-through operator on a join's build pipeline: inserts the hash of
// each row's key column into the shared filter, then forwards the batch
// unchanged to the build sink.
class BloomBuildOp : public Operator {
 public:
  BloomBuildOp(const RowLayout* layout, std::vector<BloomHook> hooks,
               int source_join)
      : layout_(layout), hooks_(std::move(hooks)),
        source_join_(source_join) {}

  void Prepare(ExecContext& exec) override;
  void Consume(Batch& batch, ThreadContext& ctx) override;
  const RowLayout* OutputLayout() const override { return layout_; }
  const char* MetricsName() const override { return "bloom_build"; }
  std::string MetricsDetail() const override {
    return "j" + std::to_string(source_join_);
  }

 private:
  const RowLayout* layout_;
  std::vector<BloomHook> hooks_;
  int source_join_;
};

// Compacting operator on a scan pipeline: drops every row whose key hash
// misses any of its filters, long before the intermediate joins run.
class BloomProbeOp : public Operator {
 public:
  BloomProbeOp(const RowLayout* layout, std::vector<BloomHook> hooks)
      : layout_(layout), hooks_(std::move(hooks)) {}

  void Prepare(ExecContext& exec) override;
  void Open(ThreadContext& ctx) override;
  void Consume(Batch& batch, ThreadContext& ctx) override;
  void Close(ThreadContext& ctx) override;
  const RowLayout* OutputLayout() const override { return layout_; }
  const char* MetricsName() const override { return "bloom_probe"; }
  std::string MetricsDetail() const override;

  // Rows dropped across all workers; stable after the pipeline ran.
  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    BatchScratch scratch;
    Batch batch;
    uint64_t dropped = 0;
  };

  const RowLayout* layout_;
  std::vector<BloomHook> hooks_;
  std::vector<Worker> workers_;
  std::atomic<uint64_t> dropped_{0};
};

}  // namespace pjoin

#endif  // PJOIN_REWRITE_BLOOM_OPS_H_
