#include "rewrite/rewrite.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "stats/stats_catalog.h"
#include "util/check.h"
#include "util/env.h"

namespace pjoin {

bool RewriteOptions::Enabled() const {
  return enabled < 0 ? RewriteEnabledEnv() : enabled != 0;
}

int RewriteOptions::DpCap() const {
  if (dp_cap < 0) return RewriteDpCapEnv();
  int v = dp_cap;
  if (v < 2) v = 2;
  if (v > 20) v = 20;
  return v;
}

std::string RewriteInfo::RulesLine() const {
  std::string line;
  for (const auto& rule : rules) {
    if (!line.empty()) line += ",";
    line += rule;
  }
  return line;
}

namespace {

using NodePtr = std::unique_ptr<PlanNode>;

bool IsInnerJoin(const PlanNode& n) {
  return n.kind == PlanNode::Kind::kJoin && n.join_kind == JoinKind::kInner;
}

// True when `n` is an inner join, possibly under a chain of filters. Such
// filters sit *inside* a reorder region and are hoisted out before the
// region is rebuilt.
bool ReachesInnerJoin(const PlanNode& n0) {
  const PlanNode* n = &n0;
  while (n->kind == PlanNode::Kind::kFilter) n = n->child.get();
  return IsInnerJoin(*n);
}

void CollectProvidedNames(const PlanNode& node, std::vector<std::string>* out) {
  for (const auto& col : node.OutputColumns()) out->push_back(col.name);
}

bool ProvidesAll(const PlanNode& node, const std::vector<std::string>& names) {
  std::vector<std::string> have;
  CollectProvidedNames(node, &have);
  for (const auto& name : names) {
    if (std::find(have.begin(), have.end(), name) == have.end()) return false;
  }
  return true;
}

bool ProvidesName(const PlanNode& node, const std::string& name) {
  std::vector<std::string> have;
  CollectProvidedNames(node, &have);
  return std::find(have.begin(), have.end(), name) != have.end();
}

// ---- predicate pushdown -----------------------------------------------------
//
// Legality: a filter may sink below a join only into the side the join
// preserves verbatim. The other side is either null-padded above the join
// (outer and probe-only/build-only kinds), so the filter would read padding
// below but data above, or vice versa.

bool CanSinkToBuild(JoinKind kind) {
  switch (kind) {
    case JoinKind::kInner:
    case JoinKind::kBuildSemi:
    case JoinKind::kBuildAnti:
    case JoinKind::kRightOuter:
      return true;
    default:
      return false;
  }
}

bool CanSinkToProbe(JoinKind kind) {
  switch (kind) {
    case JoinKind::kInner:
    case JoinKind::kProbeSemi:
    case JoinKind::kProbeAnti:
    case JoinKind::kLeftOuter:
    case JoinKind::kMark:
      return true;
    default:
      return false;
  }
}

// Sinks detached filter node `f` into `*dest`, attaching it above the first
// operator it cannot legally pass. Returns the number of join/map hops
// crossed (0 = the filter ends up exactly where it started).
int SinkFilter(NodePtr f, NodePtr* dest) {
  PlanNode& n = **dest;
  switch (n.kind) {
    case PlanNode::Kind::kJoin:
      if (CanSinkToBuild(n.join_kind) &&
          ProvidesAll(*n.build, f->filter.inputs)) {
        return 1 + SinkFilter(std::move(f), &n.build);
      }
      if (CanSinkToProbe(n.join_kind) &&
          ProvidesAll(*n.probe, f->filter.inputs)) {
        return 1 + SinkFilter(std::move(f), &n.probe);
      }
      break;
    case PlanNode::Kind::kMap: {
      bool uses_map_output = false;
      for (const auto& map : n.maps) {
        for (const auto& input : f->filter.inputs) {
          if (map.name == input) uses_map_output = true;
        }
      }
      if (!uses_map_output) return 1 + SinkFilter(std::move(f), &n.child);
      break;
    }
    default:
      break;
  }
  f->child = std::move(*dest);
  *dest = std::move(f);
  return 0;
}

void PushDownFilters(NodePtr* slot, RewriteInfo* info) {
  // Detach the run of consecutive filters at this slot, outermost first.
  std::vector<NodePtr> run;
  while ((*slot)->kind == PlanNode::Kind::kFilter) {
    NodePtr f = std::move(*slot);
    *slot = std::move(f->child);
    run.push_back(std::move(f));
  }
  PlanNode& n = **slot;
  switch (n.kind) {
    case PlanNode::Kind::kMap:
    case PlanNode::Kind::kAgg:
      PushDownFilters(&n.child, info);
      break;
    case PlanNode::Kind::kJoin:
      PushDownFilters(&n.build, info);
      PushDownFilters(&n.probe, info);
      break;
    default:
      break;
  }
  // Re-sink innermost first so filters that land in the same place keep
  // their original relative order.
  for (auto it = run.rbegin(); it != run.rend(); ++it) {
    if (SinkFilter(std::move(*it), slot) > 0) info->filters_pushed++;
  }
}

// ---- join reordering --------------------------------------------------------

// One equi-join key inside a region, resolved to the two relation leaves
// that provide its columns.
struct RegionEdge {
  int a = -1;
  int b = -1;
  std::string col_a;
  std::string col_b;
};

struct Region {
  std::vector<PlanNode*> leaves;  // non-inner-join relation subtrees
  std::vector<std::vector<std::string>> leaf_names;
  std::vector<uint64_t> leaf_est;
  std::vector<PlanNode*> joins;   // the region's inner join nodes
  std::vector<RegionEdge> edges;  // in join/key discovery order
  // Filled by DismantleRegion, consumed by the rebuild.
  std::vector<NodePtr> owned_leaves;
  std::vector<NodePtr> owned_filters;  // interior filters, outermost first
};

void ScanRegion(PlanNode* n, Region* r) {
  if (n->kind == PlanNode::Kind::kFilter && ReachesInnerJoin(*n->child)) {
    ScanRegion(n->child.get(), r);
    return;
  }
  if (IsInnerJoin(*n)) {
    r->joins.push_back(n);
    ScanRegion(n->build.get(), r);
    ScanRegion(n->probe.get(), r);
    return;
  }
  r->leaves.push_back(n);
}

// Detaches every leaf and interior filter of the region rooted at `owned`,
// dropping the join nodes themselves. Leaf order matches ScanRegion.
void DismantleRegion(NodePtr owned, Region* r) {
  if (owned->kind == PlanNode::Kind::kFilter &&
      ReachesInnerJoin(*owned->child)) {
    NodePtr child = std::move(owned->child);
    r->owned_filters.push_back(std::move(owned));
    DismantleRegion(std::move(child), r);
    return;
  }
  if (IsInnerJoin(*owned)) {
    NodePtr build = std::move(owned->build);
    NodePtr probe = std::move(owned->probe);
    DismantleRegion(std::move(build), r);
    DismantleRegion(std::move(probe), r);
    return;
  }
  r->owned_leaves.push_back(std::move(owned));
}

int FindLeafProviding(const Region& r, const std::string& name) {
  for (size_t i = 0; i < r.leaf_names.size(); ++i) {
    const auto& names = r.leaf_names[i];
    if (std::find(names.begin(), names.end(), name) != names.end()) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

// Base-column distinct count of `col` as provided by region leaf `leaf`, or
// 0 when statistics are unavailable or the column is computed.
uint64_t LeafColumnDistinct(const PlanNode& leaf, const std::string& col) {
  int idx = -1;
  const Table* table = ResolveBaseColumn(leaf, col, &idx);
  if (table == nullptr) return 0;
  return ColumnDistinctCount(*table, idx);
}

// Inner-join output estimate, mirroring EstimateJoinOutputRows so the DP's
// internal cost equals EstimateJoinTreeCost of the tree it builds.
uint64_t InnerOutEst(uint64_t build_est, uint64_t probe_est,
                     uint64_t d_build_raw, uint64_t d_probe_raw) {
  if (d_build_raw == 0 || d_probe_raw == 0) {
    return probe_est < 1 ? 1 : probe_est;  // statistics unavailable
  }
  const uint64_t d_build = std::min<uint64_t>(
      std::max<uint64_t>(1, build_est), std::max<uint64_t>(1, d_build_raw));
  const uint64_t d_probe = std::min<uint64_t>(
      std::max<uint64_t>(1, probe_est), std::max<uint64_t>(1, d_probe_raw));
  const double out = static_cast<double>(build_est) *
                     static_cast<double>(probe_est) /
                     static_cast<double>(std::max(d_build, d_probe));
  return out < 1.0 ? 1 : static_cast<uint64_t>(out);
}

// The first region edge connecting `build_mask` and `probe_mask`, oriented
// build-side first. This edge becomes keys[0] of the join the rebuild
// constructs, which is the pair EstimateJoinOutputRows costs with — so the
// DP must cost with it too. Returns false when no edge connects the sets.
bool FirstConnectingEdge(const Region& r, uint32_t build_mask,
                         uint32_t probe_mask, const std::string** build_col,
                         int* build_leaf, const std::string** probe_col,
                         int* probe_leaf) {
  for (const auto& e : r.edges) {
    const uint32_t bit_a = 1u << e.a;
    const uint32_t bit_b = 1u << e.b;
    if ((build_mask & bit_a) && (probe_mask & bit_b)) {
      *build_col = &e.col_a;
      *build_leaf = e.a;
      *probe_col = &e.col_b;
      *probe_leaf = e.b;
      return true;
    }
    if ((build_mask & bit_b) && (probe_mask & bit_a)) {
      *build_col = &e.col_b;
      *build_leaf = e.b;
      *probe_col = &e.col_a;
      *probe_leaf = e.a;
      return true;
    }
  }
  return false;
}

// All edges connecting the two sets, oriented (build column, probe column),
// in discovery order. The rebuilt join carries every connecting key so no
// equi-predicate is lost by reordering.
std::vector<std::pair<std::string, std::string>> ConnectingKeys(
    const Region& r, uint32_t build_mask, uint32_t probe_mask) {
  std::vector<std::pair<std::string, std::string>> keys;
  for (const auto& e : r.edges) {
    const uint32_t bit_a = 1u << e.a;
    const uint32_t bit_b = 1u << e.b;
    if ((build_mask & bit_a) && (probe_mask & bit_b)) {
      keys.emplace_back(e.col_a, e.col_b);
    } else if ((build_mask & bit_b) && (probe_mask & bit_a)) {
      keys.emplace_back(e.col_b, e.col_a);
    }
  }
  return keys;
}

// Combined estimate of joining the subtrees covered by two leaf masks,
// with the build role assigned to the smaller estimated side (ties break
// to the numerically smaller mask, keeping the choice deterministic).
bool CombineMasks(const Region& r, uint32_t m1, uint64_t e1, uint32_t m2,
                  uint64_t e2, uint32_t* build_mask, uint64_t* est) {
  uint32_t bm = m1, pm = m2;
  uint64_t be = e1, pe = e2;
  if (!(e1 < e2 || (e1 == e2 && m1 < m2))) {
    std::swap(bm, pm);
    std::swap(be, pe);
  }
  const std::string* bcol = nullptr;
  const std::string* pcol = nullptr;
  int bleaf = -1, pleaf = -1;
  if (!FirstConnectingEdge(r, bm, pm, &bcol, &bleaf, &pcol, &pleaf)) {
    return false;  // cross product; never enumerated
  }
  const uint64_t d_build = LeafColumnDistinct(*r.leaves[bleaf], *bcol);
  const uint64_t d_probe = LeafColumnDistinct(*r.leaves[pleaf], *pcol);
  *build_mask = bm;
  *est = InnerOutEst(be, pe, d_build, d_probe);
  return true;
}

// A join order over region leaves, produced by DPsize or the greedy
// fallback and consumed by the rebuild.
struct OrderTree {
  int leaf = -1;
  uint32_t mask = 0;
  uint64_t est = 0;
  std::unique_ptr<OrderTree> build;
  std::unique_ptr<OrderTree> probe;
};

struct SubPlan {
  uint64_t est = 0;
  double cost = 0.0;  // C_out over the subtree's joins
  uint32_t build_mask = 0;
  bool valid = false;
};

std::unique_ptr<OrderTree> ExtractDpTree(uint32_t mask,
                                         const std::vector<SubPlan>& dp) {
  auto t = std::make_unique<OrderTree>();
  t->mask = mask;
  t->est = dp[mask].est;
  if (std::popcount(mask) == 1) {
    t->leaf = std::countr_zero(mask);
    return t;
  }
  t->build = ExtractDpTree(dp[mask].build_mask, dp);
  t->probe = ExtractDpTree(mask ^ dp[mask].build_mask, dp);
  return t;
}

// Exact DPsize over connected subgraphs, minimizing C_out. Returns null
// when the join graph is disconnected.
std::unique_ptr<OrderTree> DpOrder(const Region& r, double* cost_out) {
  const int n = static_cast<int>(r.leaves.size());
  const uint32_t full = (n == 32) ? ~0u : ((1u << n) - 1);
  std::vector<SubPlan> dp(full + 1);
  for (int i = 0; i < n; ++i) {
    dp[1u << i] = SubPlan{r.leaf_est[i], 0.0, 0, true};
  }
  for (uint32_t mask = 1; mask <= full; ++mask) {
    if (std::popcount(mask) < 2) continue;
    for (uint32_t sub = (mask - 1) & mask; sub != 0; sub = (sub - 1) & mask) {
      const uint32_t rest = mask ^ sub;
      if (sub < rest) continue;  // each unordered split exactly once
      if (!dp[sub].valid || !dp[rest].valid) continue;
      uint32_t build_mask = 0;
      uint64_t est = 0;
      if (!CombineMasks(r, sub, dp[sub].est, rest, dp[rest].est, &build_mask,
                        &est)) {
        continue;
      }
      const double cost =
          dp[sub].cost + dp[rest].cost + static_cast<double>(est);
      if (!dp[mask].valid || cost < dp[mask].cost) {
        dp[mask] = SubPlan{est, cost, build_mask, true};
      }
    }
  }
  if (!dp[full].valid) return nullptr;
  *cost_out = dp[full].cost;
  return ExtractDpTree(full, dp);
}

// Greedy left-deep fallback above the DP cap: start from the cheapest
// connected pair, then repeatedly absorb the relation that keeps the next
// intermediate result smallest. Returns null on a disconnected graph.
std::unique_ptr<OrderTree> GreedyOrder(const Region& r, double* cost_out) {
  const int n = static_cast<int>(r.leaves.size());
  auto leaf_tree = [&](int i) {
    auto t = std::make_unique<OrderTree>();
    t->leaf = i;
    t->mask = 1u << i;
    t->est = r.leaf_est[i];
    return t;
  };
  auto join_trees = [&](std::unique_ptr<OrderTree> t1,
                        std::unique_ptr<OrderTree> t2, uint32_t build_mask,
                        uint64_t est) {
    auto t = std::make_unique<OrderTree>();
    t->mask = t1->mask | t2->mask;
    t->est = est;
    if (t1->mask == build_mask) {
      t->build = std::move(t1);
      t->probe = std::move(t2);
    } else {
      t->build = std::move(t2);
      t->probe = std::move(t1);
    }
    return t;
  };

  // Seed: cheapest connected leaf pair.
  int best_i = -1, best_j = -1;
  uint64_t best_est = 0;
  uint32_t best_bm = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      uint32_t bm = 0;
      uint64_t est = 0;
      if (!CombineMasks(r, 1u << i, r.leaf_est[i], 1u << j, r.leaf_est[j],
                        &bm, &est)) {
        continue;
      }
      if (best_i < 0 || est < best_est) {
        best_i = i;
        best_j = j;
        best_est = est;
        best_bm = bm;
      }
    }
  }
  if (best_i < 0) return nullptr;
  auto tree = join_trees(leaf_tree(best_i), leaf_tree(best_j), best_bm,
                         best_est);
  double cost = static_cast<double>(best_est);
  uint32_t used = tree->mask;

  while (std::popcount(used) < n) {
    int pick = -1;
    uint64_t pick_est = 0;
    uint32_t pick_bm = 0;
    for (int i = 0; i < n; ++i) {
      if (used & (1u << i)) continue;
      uint32_t bm = 0;
      uint64_t est = 0;
      if (!CombineMasks(r, used, tree->est, 1u << i, r.leaf_est[i], &bm,
                        &est)) {
        continue;
      }
      if (pick < 0 || est < pick_est) {
        pick = i;
        pick_est = est;
        pick_bm = bm;
      }
    }
    if (pick < 0) return nullptr;  // disconnected
    tree = join_trees(std::move(tree), leaf_tree(pick), pick_bm, pick_est);
    cost += static_cast<double>(pick_est);
    used = tree->mask;
  }
  *cost_out = cost;
  return tree;
}

NodePtr BuildFromOrder(const OrderTree& t, Region* r) {
  if (t.leaf >= 0) return std::move(r->owned_leaves[t.leaf]);
  NodePtr build = BuildFromOrder(*t.build, r);
  NodePtr probe = BuildFromOrder(*t.probe, r);
  auto node = std::make_unique<PlanNode>();
  node->kind = PlanNode::Kind::kJoin;
  node->join_kind = JoinKind::kInner;
  node->keys = ConnectingKeys(*r, t.build->mask, t.probe->mask);
  PJOIN_CHECK(!node->keys.empty());
  node->build = std::move(build);
  node->probe = std::move(probe);
  return node;
}

const char* LeafLabel(const PlanNode& n) {
  switch (n.kind) {
    case PlanNode::Kind::kScan:
      return n.table->name().c_str();
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kMap:
      return LeafLabel(*n.child);
    case PlanNode::Kind::kJoin: {
      const char* b = LeafLabel(*n.build);
      return b != nullptr ? b : LeafLabel(*n.probe);
    }
    default:
      return nullptr;
  }
}

std::string RenderOrder(const OrderTree& t, const Region& r) {
  if (t.leaf >= 0) {
    const char* label = LeafLabel(*r.leaves[t.leaf]);
    return label != nullptr ? label : "expr";
  }
  return "(" + RenderOrder(*t.build, r) + "*" + RenderOrder(*t.probe, r) +
         ")";
}

void ProcessRegion(NodePtr* slot, const RewriteOptions& options,
                   RewriteInfo* info, int* largest_region) {
  Region r;
  ScanRegion(slot->get(), &r);
  if (r.joins.size() < 2) return;  // single joins keep their written order
  const int n = static_cast<int>(r.leaves.size());
  if (n > 30) return;  // beyond any plausible plan; keeps masks in 32 bits
  for (PlanNode* leaf : r.leaves) {
    r.leaf_names.emplace_back();
    CollectProvidedNames(*leaf, &r.leaf_names.back());
    r.leaf_est.push_back(leaf->EstimateRows());
  }
  // Name-based key routing is ambiguous when two relations expose the same
  // column (self-joins); rebuilding could silently reroute such a key, so
  // leave those regions as written.
  {
    std::vector<std::string> all;
    for (const auto& names : r.leaf_names) {
      all.insert(all.end(), names.begin(), names.end());
    }
    std::sort(all.begin(), all.end());
    if (std::adjacent_find(all.begin(), all.end()) != all.end()) return;
  }
  for (PlanNode* join : r.joins) {
    for (const auto& key : join->keys) {
      RegionEdge e;
      e.a = FindLeafProviding(r, key.first);
      e.b = FindLeafProviding(r, key.second);
      e.col_a = key.first;
      e.col_b = key.second;
      if (e.a < 0 || e.b < 0 || e.a == e.b) return;  // computed key column
      r.edges.push_back(std::move(e));
    }
  }
  double original_cost = 0.0;
  for (PlanNode* join : r.joins) {
    original_cost += static_cast<double>(join->EstimateRows());
  }
  double best_cost = 0.0;
  std::unique_ptr<OrderTree> best;
  const bool used_dp = n <= options.DpCap();
  best = used_dp ? DpOrder(r, &best_cost) : GreedyOrder(r, &best_cost);
  if (best == nullptr) return;  // disconnected join graph
  // Only a strictly cheaper order justifies touching the plan; ties keep
  // the written order so well-ordered plans stay byte-identical downstream.
  if (!(best_cost < original_cost)) return;
  NodePtr owned = std::move(*slot);
  DismantleRegion(std::move(owned), &r);
  NodePtr rebuilt = BuildFromOrder(*best, &r);
  for (auto it = r.owned_filters.rbegin(); it != r.owned_filters.rend();
       ++it) {
    (*it)->child = std::move(rebuilt);
    rebuilt = std::move(*it);
  }
  *slot = std::move(rebuilt);
  info->joins_reordered += static_cast<int>(r.joins.size());
  if (used_dp) {
    info->dp_regions++;
  } else {
    info->greedy_regions++;
  }
  info->filters_pulled += static_cast<int>(r.owned_filters.size());
  if (n > *largest_region) {
    *largest_region = n;
    info->order = RenderOrder(*best, r);
  }
}

void CollectLeafSlots(NodePtr* slot, std::vector<NodePtr*>* out) {
  PlanNode* n = slot->get();
  if (n->kind == PlanNode::Kind::kFilter && ReachesInnerJoin(*n->child)) {
    CollectLeafSlots(&n->child, out);
    return;
  }
  if (IsInnerJoin(*n)) {
    CollectLeafSlots(&n->build, out);
    CollectLeafSlots(&n->probe, out);
    return;
  }
  out->push_back(slot);
}

void ReorderWalk(NodePtr* slot, const RewriteOptions& options,
                 RewriteInfo* info, int* largest_region) {
  PlanNode* n = slot->get();
  switch (n->kind) {
    case PlanNode::Kind::kScan:
      return;
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kMap:
    case PlanNode::Kind::kAgg:
      ReorderWalk(&n->child, options, info, largest_region);
      return;
    case PlanNode::Kind::kJoin:
      if (n->join_kind == JoinKind::kInner) {
        ProcessRegion(slot, options, info, largest_region);
        // Recurse into the (possibly rebuilt) region's relation subtrees;
        // regions nested below non-inner joins reorder independently.
        std::vector<NodePtr*> leaf_slots;
        CollectLeafSlots(slot, &leaf_slots);
        for (NodePtr* leaf : leaf_slots) {
          ReorderWalk(leaf, options, info, largest_region);
        }
      } else {
        ReorderWalk(&n->build, options, info, largest_region);
        ReorderWalk(&n->probe, options, info, largest_region);
      }
      return;
  }
}

// ---- Bloom pushdown ---------------------------------------------------------

bool IntegerColumn(DataType type) {
  return type == DataType::kInt64 || type == DataType::kInt32 ||
         type == DataType::kDate;
}

// Column type as exposed by `node`, or kChar when the name is unknown.
DataType ExposedColumnType(const PlanNode& node, const std::string& name) {
  for (const auto& col : node.OutputColumns()) {
    if (col.name == name) return col.type;
  }
  return DataType::kChar;
}

// A Bloom filter built at join J may drop a probe-side row only when J
// itself discards unmatched probe rows (otherwise the dropped row was
// output, null-padded or as an anti match).
bool BloomLegalAtJoin(JoinKind kind) {
  switch (kind) {
    case JoinKind::kInner:
    case JoinKind::kProbeSemi:
    case JoinKind::kBuildSemi:
    case JoinKind::kBuildAnti:
    case JoinKind::kRightOuter:
      return true;
    default:
      return false;
  }
}

// An intermediate join K between the planting join and the target scan must
// carry the key column's values verbatim from the scan to the planting
// join, and dropping a carrier row early must not change what K emits for
// other rows. Sides that K null-pads or whose unmatched rows K emits
// (kProbeAnti output IS the unmatched rows) are therefore illegal to plant
// through.
bool BloomLegalUnderBuild(JoinKind kind) {
  switch (kind) {
    case JoinKind::kInner:
    case JoinKind::kRightOuter:
    case JoinKind::kBuildSemi:
    case JoinKind::kBuildAnti:
      return true;
    default:
      return false;
  }
}

bool BloomLegalUnderProbe(JoinKind kind) {
  switch (kind) {
    case JoinKind::kInner:
    case JoinKind::kProbeSemi:
    case JoinKind::kProbeAnti:
    case JoinKind::kLeftOuter:
    case JoinKind::kMark:
      return true;
    default:
      return false;
  }
}

// Walks `n` looking for the base scan that provides `name`, tracking how
// many joins sit on the path and whether every one of them legally lets a
// Bloom filter drop carrier rows below it.
PlanNode* FindBloomTarget(PlanNode* n, const std::string& name, int depth,
                          bool* distant) {
  switch (n->kind) {
    case PlanNode::Kind::kScan:
      if (n->table->schema().Find(name) < 0) return nullptr;
      *distant = depth >= 1;
      return n;
    case PlanNode::Kind::kFilter:
      return FindBloomTarget(n->child.get(), name, depth, distant);
    case PlanNode::Kind::kMap:
      for (const auto& map : n->maps) {
        if (map.name == name) return nullptr;  // computed column
      }
      return FindBloomTarget(n->child.get(), name, depth, distant);
    case PlanNode::Kind::kJoin:
      if (ProvidesName(*n->build, name)) {
        if (!BloomLegalUnderBuild(n->join_kind)) return nullptr;
        return FindBloomTarget(n->build.get(), name, depth + 1, distant);
      }
      if (ProvidesName(*n->probe, name)) {
        if (!BloomLegalUnderProbe(n->join_kind)) return nullptr;
        return FindBloomTarget(n->probe.get(), name, depth + 1, distant);
      }
      return nullptr;  // mark column
    case PlanNode::Kind::kAgg:
      return nullptr;
  }
  return nullptr;
}

struct BloomCtx {
  const RewriteOptions* options;
  RewriteInfo* info;
  int next_join_id = 0;   // post-order, matching lowering and EXPLAIN
  int next_bloom_id = 0;
};

void TryPlantBloom(PlanNode* join, int join_id, BloomCtx* ctx) {
  if (!BloomLegalAtJoin(join->join_kind)) return;
  const std::string& build_col = join->keys[0].first;
  const std::string& probe_col = join->keys[0].second;
  // The filter hashes widened integer values; char keys hash differently
  // per width and float keys do not widen losslessly.
  if (!IntegerColumn(ExposedColumnType(*join->build, build_col))) return;
  bool distant = false;
  PlanNode* target =
      FindBloomTarget(join->probe.get(), probe_col, 0, &distant);
  if (target == nullptr || !distant) {
    // An immediate probe scan is already covered by the radix join's own
    // bloom-accelerated probe; only a distant plant saves intermediate work.
    return;
  }
  const int target_col = target->table->schema().Find(probe_col);
  if (!IntegerColumn(target->table->schema().columns()[target_col].type)) {
    return;
  }
  // Cost gate.
  const uint64_t est_build = join->build->EstimateRows();
  if (est_build > ctx->options->bloom_max_build) return;
  int bc = -1;
  const Table* build_table = ResolveBaseColumn(*join->build, build_col, &bc);
  const uint64_t d_build =
      build_table != nullptr ? ColumnDistinctCount(*build_table, bc) : 0;
  const uint64_t d_probe = ColumnDistinctCount(*target->table, target_col);
  if (d_build > 0 && d_probe > 0) {
    const uint64_t d_build_eff =
        std::min<uint64_t>(std::max<uint64_t>(1, est_build), d_build);
    const double pass = std::min(
        1.0, static_cast<double>(d_build_eff) /
                 static_cast<double>(std::max<uint64_t>(1, d_probe)));
    if (pass > ctx->options->bloom_max_pass) return;
  } else {
    // No statistics: require a clearly lopsided size ratio instead.
    if (est_build * 8 > target->EstimateRows()) return;
  }
  BloomPlant plant;
  plant.id = ctx->next_bloom_id++;
  plant.build_column = build_col;
  plant.probe_column = probe_col;
  plant.source_join = join_id;
  target->bloom_probes.push_back(plant);
  join->bloom_builds.push_back(plant);
  ctx->info->blooms_planted++;
}

void PlantBloomsWalk(PlanNode* n, BloomCtx* ctx) {
  switch (n->kind) {
    case PlanNode::Kind::kScan:
      return;
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kMap:
    case PlanNode::Kind::kAgg:
      PlantBloomsWalk(n->child.get(), ctx);
      return;
    case PlanNode::Kind::kJoin: {
      PlantBloomsWalk(n->build.get(), ctx);
      PlantBloomsWalk(n->probe.get(), ctx);
      const int join_id = ctx->next_join_id++;
      TryPlantBloom(n, join_id, ctx);
      return;
    }
  }
}

void SumJoinCosts(const PlanNode& n, uint64_t* total) {
  switch (n.kind) {
    case PlanNode::Kind::kScan:
      return;
    case PlanNode::Kind::kFilter:
    case PlanNode::Kind::kMap:
    case PlanNode::Kind::kAgg:
      SumJoinCosts(*n.child, total);
      return;
    case PlanNode::Kind::kJoin: {
      SumJoinCosts(*n.build, total);
      SumJoinCosts(*n.probe, total);
      const uint64_t est = n.EstimateRows();
      *total = (*total > std::numeric_limits<uint64_t>::max() - est)
                   ? std::numeric_limits<uint64_t>::max()
                   : *total + est;
      return;
    }
  }
}

}  // namespace

uint64_t EstimateJoinTreeCost(const PlanNode& root) {
  uint64_t total = 0;
  SumJoinCosts(root, &total);
  return total;
}

RewriteResult RewritePlan(const PlanNode& root,
                          const RewriteOptions& options) {
  RewriteResult result;
  if (!options.Enabled()) return result;
  result.info.enabled = true;
  NodePtr plan = root.Clone();
  if (options.join_reorder) {
    int largest_region = 0;
    ReorderWalk(&plan, options, &result.info, &largest_region);
  }
  if (options.predicate_pushdown) PushDownFilters(&plan, &result.info);
  if (options.bloom_pushdown) {
    BloomCtx ctx;
    ctx.options = &options;
    ctx.info = &result.info;
    PlantBloomsWalk(plan.get(), &ctx);
  }
  result.info.changed = !plan->Equals(root);
  if (!result.info.changed) {
    // Nothing fired (or a transformation round-tripped to the identical
    // tree): report a clean no-op so EXPLAIN and metrics stay untouched.
    RewriteInfo clean;
    clean.enabled = true;
    result.info = clean;
    return result;
  }
  if (result.info.filters_pulled > 0) result.info.rules.push_back("pullup");
  if (result.info.dp_regions > 0) result.info.rules.push_back("reorder_dp");
  if (result.info.greedy_regions > 0) {
    result.info.rules.push_back("reorder_greedy");
  }
  if (result.info.filters_pushed > 0) {
    result.info.rules.push_back("pushdown");
  }
  if (result.info.blooms_planted > 0) result.info.rules.push_back("bloom");
  result.plan = std::move(plan);
  return result;
}

}  // namespace pjoin
