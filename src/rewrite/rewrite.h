// Algebraic plan rewriting: the rule pass between plan construction and
// lowering.
//
// Three rule families run, in order, over a clone of the input plan:
//
//   1. Predicate pullup/pushdown. Filters hoisted out of reordered join
//      regions and filters written above a join sink to the lowest operator
//      whose side provides all their inputs, subject to a per-join-kind
//      legality matrix (an outer join's null-padded side must not be
//      filtered below the join, a mark column exists only above its join,
//      and probe-only kinds null-pad the build side, so a build-side
//      predicate above them reads padding, not data).
//
//   2. Join reordering. Maximal regions of >= 2 connected inner joins are
//      re-enumerated with DPsize over connected subgraphs, costed by C_out
//      (the sum of intermediate result cardinalities under the same
//      containment estimate EstimateJoinOutputRows uses). Regions larger
//      than the DP cap fall back to a greedy left-deep order. A region is
//      rebuilt only when the best order is STRICTLY cheaper than the
//      original, so well-ordered plans pass through untouched.
//
//   3. Semi-join (Bloom) pushdown. A join whose build side is small and
//      selective plants a Bloom filter: the build pipeline inserts its key
//      column's hashes, and a *distant* probe-side base scan (at least one
//      intermediate join below) drops non-members before any intermediate
//      join sees them. Immediate probe scans are already covered by the
//      bloom-accelerated radix join, so only distant plants pay off.
//
// The pass is deterministic: the same plan, statistics, and options always
// produce the same rewritten tree, so EXPLAIN and execution agree. With
// PJOIN_REWRITE=0 (or RewriteOptions::enabled = 0) the pass returns the
// input untouched and every downstream byte matches the pre-rewrite engine.
#ifndef PJOIN_REWRITE_REWRITE_H_
#define PJOIN_REWRITE_REWRITE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/plan.h"

namespace pjoin {

struct RewriteOptions {
  // Tri-state: -1 resolves from PJOIN_REWRITE (default on), 0 off, 1 on.
  int enabled = -1;
  // Tri-state: -1 resolves from PJOIN_REWRITE_DP_CAP (default 10).
  int dp_cap = -1;

  // Individual rule toggles (all on by default; tests isolate rules).
  bool predicate_pushdown = true;
  bool join_reorder = true;
  bool bloom_pushdown = true;

  // Bloom cost gate: never plant when the build side is estimated above
  // this many rows, or when the estimated pass rate (d_build / d_probe)
  // exceeds this fraction. Without statistics the gate falls back to
  // requiring the build side to be at least 8x smaller than the target
  // scan.
  uint64_t bloom_max_build = 1ull << 20;
  double bloom_max_pass = 0.75;

  bool Enabled() const;
  int DpCap() const;
};

// What the pass did, for EXPLAIN's `rewrite:` line and the metrics JSON.
struct RewriteInfo {
  bool enabled = false;
  bool changed = false;       // rewritten tree differs from the input
  int filters_pulled = 0;     // filters hoisted out of reordered regions
  int filters_pushed = 0;     // filters sunk past at least one join/map
  int joins_reordered = 0;    // inner joins inside rebuilt regions
  int dp_regions = 0;         // regions ordered by exact DPsize
  int greedy_regions = 0;     // regions ordered by the greedy fallback
  int blooms_planted = 0;     // distant Bloom filters planted
  std::vector<std::string> rules;  // fired rule names, in pass order
  std::string order;          // rendered join order of the largest region

  // "pushdown,reorder_dp,bloom" — empty when nothing fired.
  std::string RulesLine() const;
};

struct RewriteResult {
  // Rewritten plan, or null when the pass is disabled or declined every
  // rule; callers fall back to the input plan in that case. The caller owns
  // the clone and must keep it alive for the lifetime of the execution.
  std::unique_ptr<PlanNode> plan;
  RewriteInfo info;
};

// Runs the rewrite pass over `root` (a kAgg-rooted plan). Never mutates
// `root`; all transformations happen on an internal clone.
RewriteResult RewritePlan(const PlanNode& root,
                          const RewriteOptions& options = {});

// C_out cost of a join tree: the sum over every join node of its estimated
// output cardinality (EstimateJoinOutputRows over estimated inputs). This
// is exactly the objective DPsize minimizes, exposed so tests can check the
// DP order against exhaustive enumeration.
uint64_t EstimateJoinTreeCost(const PlanNode& root);

}  // namespace pjoin

#endif  // PJOIN_REWRITE_REWRITE_H_
