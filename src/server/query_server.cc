#include "server/query_server.h"

#include <exception>

#include "spill/memory_governor.h"
#include "util/check.h"
#include "util/env.h"

namespace pjoin {

const char* QueryStateName(QueryState state) {
  switch (state) {
    case QueryState::kQueued:
      return "queued";
    case QueryState::kAdmitted:
      return "admitted";
    case QueryState::kRunning:
      return "running";
    case QueryState::kDone:
      return "done";
    case QueryState::kFailed:
      return "failed";
    case QueryState::kRejected:
      return "rejected";
  }
  return "unknown";
}

QueryState QueryHandle::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

const QueryResult& QueryHandle::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return state_ == QueryState::kDone || state_ == QueryState::kFailed ||
           state_ == QueryState::kRejected;
  });
  return result_;
}

uint64_t QueryHandle::admission_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admission_seq_;
}

double QueryHandle::queue_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_seconds_;
}

QueryHandlePtr Session::Submit(const PlanNode& plan,
                               const ExecOptions& options) {
  ++submitted_;
  return server_->Submit(id_, plan, options);
}

QueryServer::QueryServer(ServerOptions options)
    : max_concurrent_(options.max_concurrent > 0 ? options.max_concurrent
                                                 : MaxConcurrentQueries()),
      queue_capacity_(options.admit_queue > 0 ? options.admit_queue
                                              : AdmitQueueCapacity()),
      threads_per_query_(options.threads_per_query > 0
                             ? options.threads_per_query
                             : ServerThreadsPerQuery()) {
  PJOIN_CHECK(max_concurrent_ >= 1);
  PJOIN_CHECK(queue_capacity_ >= 1);
  slot_pools_.reserve(max_concurrent_);
  dispatchers_.reserve(max_concurrent_);
  for (int slot = 0; slot < max_concurrent_; ++slot) {
    slot_pools_.push_back(std::make_unique<ThreadPool>(threads_per_query_));
  }
  for (int slot = 0; slot < max_concurrent_; ++slot) {
    dispatchers_.emplace_back([this, slot] { DispatcherLoop(slot); });
  }
}

QueryServer::~QueryServer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    paused_ = false;  // a paused server must still drain on shutdown
  }
  cv_dispatch_.notify_all();
  for (std::thread& t : dispatchers_) t.join();
  PJOIN_CHECK(queue_.empty());
}

Session QueryServer::OpenSession() {
  std::lock_guard<std::mutex> lock(mu_);
  return Session(this, next_session_id_++);
}

QueryHandlePtr QueryServer::Submit(uint64_t session_id, const PlanNode& plan,
                                   const ExecOptions& options) {
  std::unique_lock<std::mutex> lock(mu_);
  PJOIN_CHECK_MSG(!shutdown_, "Submit on a shutting-down server");
  QueryHandlePtr handle(
      new QueryHandle(next_query_id_++, session_id, &plan, options));
  ++submitted_;
  if (queue_.size() >= static_cast<size_t>(queue_capacity_)) {
    ++rejected_;
    lock.unlock();
    std::lock_guard<std::mutex> hl(handle->mu_);
    handle->state_ = QueryState::kRejected;
    handle->cv_.notify_all();
    return handle;
  }
  queue_.push_back(handle);
  lock.unlock();
  cv_dispatch_.notify_one();
  return handle;
}

void QueryServer::DispatcherLoop(int slot) {
  ThreadPool* pool = slot_pools_[slot].get();
  while (true) {
    QueryHandlePtr handle;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_dispatch_.wait(lock, [this] {
        return (!paused_ && !queue_.empty()) || shutdown_;
      });
      if (queue_.empty() || paused_) {
        if (shutdown_) return;  // spurious-wake guard: paused + shutdown
        continue;
      }
      handle = queue_.front();
      queue_.pop_front();
      {
        std::lock_guard<std::mutex> hl(handle->mu_);
        handle->state_ = QueryState::kAdmitted;
        handle->admission_seq_ = next_admission_seq_++;
        handle->queue_seconds_ = handle->submit_watch_.ElapsedSeconds();
      }
    }
    RunQuery(handle, pool);
  }
}

void QueryServer::RunQuery(const QueryHandlePtr& handle, ThreadPool* pool) {
  MemoryGovernor& governor = MemoryGovernor::Global();
  MemoryGovernor::QueryGrant* grant = governor.BeginQuery();

  // Install the grant on every worker of this slot (worker 0 is the
  // dispatcher itself), so the engine's WouldFit/Account/Release calls are
  // charged to this query without any signature change.
  pool->ParallelRun(
      [grant](int) { MemoryGovernor::SetThreadGrant(grant); });

  {
    std::lock_guard<std::mutex> hl(handle->mu_);
    handle->state_ = QueryState::kRunning;
  }

  QueryResult result;
  QueryStats stats;
  bool failed = false;
  try {
    ExecOptions options = handle->options_;
    options.num_threads = pool->num_threads();
    result = ExecuteQuery(*handle->plan_, options, &stats, pool);
  } catch (const std::exception&) {
    failed = true;
  }

  // Snapshot the arbitration outcome before the grant dies, then clear the
  // thread-locals so a stale pointer can never leak into the next query.
  // min_granted is the tightest fair share the query ran under.
  const uint64_t granted = grant->min_granted.load(std::memory_order_relaxed);
  const uint64_t pressure =
      grant->pressure_events.load(std::memory_order_relaxed);
  pool->ParallelRun(
      [](int) { MemoryGovernor::SetThreadGrant(nullptr); });
  governor.EndQuery(grant);

  // Count the completion before publishing the terminal state: a waiter that
  // observes kDone must also observe the bumped queries_done() counter.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++done_;
  }

  std::lock_guard<std::mutex> hl(handle->mu_);
  handle->granted_bytes_ = granted == UINT64_MAX ? 0 : granted;
  handle->spill_pressure_events_ = pressure;
  handle->state_ = failed ? QueryState::kFailed : QueryState::kDone;
  if (!failed) {
    stats.metrics.SetServer(handle->query_id_, handle->session_id_,
                            QueryStateName(handle->state_),
                            handle->granted_bytes_, pressure,
                            handle->queue_seconds_);
    handle->result_ = std::move(result);
    handle->stats_ = std::move(stats);
  }
  handle->cv_.notify_all();
}

uint64_t QueryServer::queries_submitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return submitted_;
}

uint64_t QueryServer::queries_rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

uint64_t QueryServer::queries_done() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_;
}

size_t QueryServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void QueryServer::PauseAdmission() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void QueryServer::ResumeAdmission() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_dispatch_.notify_all();
}

}  // namespace pjoin
