// Multi-query server mode: a long-lived runtime executing many concurrent
// queries over the shared engine.
//
// The paper measures joins inside a real system that serves many queries at
// once; this layer promotes the one-shot ExecuteQuery engine to that shape.
// Three pieces:
//
//   * QueryServer -- owns `max_concurrent` executor slots, each a persistent
//     ThreadPool driven by one dispatcher thread, plus a bounded FIFO
//     admission queue. A submission beyond the queue bound is rejected
//     immediately (kRejected) instead of buffered without bound, so an
//     overloaded server sheds load at admission time rather than thrashing.
//   * Session -- a per-client handle that stamps submissions with a session
//     id. Sessions are cheap and single-threaded by design: open one per
//     client, as a client driver would.
//   * QueryHandle -- the future for one submitted query. It tracks the
//     admission state machine (queued -> admitted -> running -> done, or
//     rejected/failed), and after Wait() exposes the result plus the full
//     QueryStats of the run, including the server section (granted bytes,
//     spill-pressure events, queue wait) in metrics JSON / EXPLAIN ANALYZE.
//
// Isolation: every query executes with its own ExecContext, QueryMetrics and
// executor state on its slot's private pool -- nothing but the tables, the
// admission queue and the MemoryGovernor is shared, so concurrent results
// are bit-identical to serial runs. Memory is arbitrated across queries by
// the governor's fair-share grants (spill/memory_governor.h): the server
// registers a QueryGrant per admitted query and installs it on the slot's
// workers, so an oversubscribed pool pushes the greediest query into its
// spill path instead of failing anyone.
#ifndef PJOIN_SERVER_QUERY_SERVER_H_
#define PJOIN_SERVER_QUERY_SERVER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/executor.h"
#include "engine/plan.h"
#include "exec/thread_pool.h"
#include "util/stopwatch.h"

namespace pjoin {

// Admission state machine. kQueued -> kAdmitted -> kRunning -> kDone is the
// normal path; kRejected is decided at Submit time (queue full); kFailed
// covers a run that threw (the engine's invariant checks abort instead, so
// this is effectively allocation failure).
enum class QueryState {
  kQueued,
  kAdmitted,
  kRunning,
  kDone,
  kFailed,
  kRejected,
};

const char* QueryStateName(QueryState state);

struct ServerOptions {
  int max_concurrent = 0;   // executor slots; 0 = PJOIN_MAX_CONCURRENT
  int admit_queue = 0;      // queue bound; 0 = PJOIN_ADMIT_QUEUE
  int threads_per_query = 0;  // per-slot pool width; 0 = PJOIN_SERVER_THREADS
};

class QueryServer;

// Shared between the submitting client and the executing dispatcher.
class QueryHandle {
 public:
  uint64_t query_id() const { return query_id_; }
  uint64_t session_id() const { return session_id_; }

  QueryState state() const;

  // Blocks until the query reaches a terminal state (kDone, kFailed, or
  // kRejected -- the latter two yield an empty result).
  const QueryResult& Wait();

  // Valid after Wait() returned with state kDone. stats().metrics carries
  // the per-query server section (ToJson "server", EXPLAIN ANALYZE line).
  const QueryStats& stats() const { return stats_; }

  // Position in the server-wide admission order (0-based); valid once the
  // query left the queue. Admission is FIFO over Submit order.
  uint64_t admission_seq() const;

  // Seconds spent waiting in the admission queue.
  double queue_seconds() const;

  // Tightest fair-share grant (bytes; 0 = unlimited) the query ran under,
  // and its spill-pressure denials, recorded at completion; valid after
  // Wait().
  uint64_t granted_bytes() const { return granted_bytes_; }
  uint64_t spill_pressure_events() const { return spill_pressure_events_; }

 private:
  friend class QueryServer;

  QueryHandle(uint64_t query_id, uint64_t session_id, const PlanNode* plan,
              ExecOptions options)
      : query_id_(query_id),
        session_id_(session_id),
        plan_(plan),
        options_(std::move(options)) {}

  const uint64_t query_id_;
  const uint64_t session_id_;
  const PlanNode* const plan_;  // caller keeps the plan alive until Wait()
  const ExecOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  QueryState state_ = QueryState::kQueued;
  uint64_t admission_seq_ = 0;
  double queue_seconds_ = 0;
  uint64_t granted_bytes_ = 0;
  uint64_t spill_pressure_events_ = 0;
  Stopwatch submit_watch_;
  QueryResult result_;
  QueryStats stats_;
};

using QueryHandlePtr = std::shared_ptr<QueryHandle>;

// Per-client handle. Not thread-safe: a session belongs to one client
// thread; concurrency comes from many sessions, not shared ones.
class Session {
 public:
  uint64_t id() const { return id_; }
  uint64_t queries_submitted() const { return submitted_; }

  // Submits `plan` for execution. The caller must keep the plan (and its
  // tables) alive until the returned handle's Wait() has returned.
  QueryHandlePtr Submit(const PlanNode& plan, const ExecOptions& options);

 private:
  friend class QueryServer;
  Session(QueryServer* server, uint64_t id) : server_(server), id_(id) {}

  QueryServer* server_;
  uint64_t id_;
  uint64_t submitted_ = 0;
};

class QueryServer {
 public:
  explicit QueryServer(ServerOptions options = {});

  // Drains: blocks until every admitted *and* queued query has completed,
  // then joins the dispatcher threads.
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  Session OpenSession();

  int max_concurrent() const { return max_concurrent_; }
  int queue_capacity() const { return queue_capacity_; }
  int threads_per_query() const { return threads_per_query_; }

  uint64_t queries_submitted() const;
  uint64_t queries_rejected() const;
  uint64_t queries_done() const;
  size_t queue_depth() const;

  // Test hooks: freeze/unfreeze admission so queue bounds and ordering can
  // be asserted deterministically (queries stay kQueued while paused).
  void PauseAdmission();
  void ResumeAdmission();

 private:
  friend class Session;

  QueryHandlePtr Submit(uint64_t session_id, const PlanNode& plan,
                        const ExecOptions& options);
  void DispatcherLoop(int slot);
  void RunQuery(const QueryHandlePtr& handle, ThreadPool* pool);

  int max_concurrent_;
  int queue_capacity_;
  int threads_per_query_;

  mutable std::mutex mu_;
  std::condition_variable cv_dispatch_;
  std::deque<QueryHandlePtr> queue_;
  bool shutdown_ = false;
  bool paused_ = false;
  uint64_t next_query_id_ = 1;
  uint64_t next_session_id_ = 1;
  uint64_t next_admission_seq_ = 0;
  uint64_t submitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t done_ = 0;

  // One persistent pool per executor slot; slot i is driven only by
  // dispatcher i, so ParallelRun's non-reentrancy is never violated.
  std::vector<std::unique_ptr<ThreadPool>> slot_pools_;
  std::vector<std::thread> dispatchers_;
};

}  // namespace pjoin

#endif  // PJOIN_SERVER_QUERY_SERVER_H_
