#include "spill/memory_governor.h"

#include "util/env.h"

namespace pjoin {

MemoryGovernor& MemoryGovernor::Global() {
  static MemoryGovernor governor(MemoryBudgetBytes());
  return governor;
}

}  // namespace pjoin
