#include "spill/memory_governor.h"

#include <memory>
#include <mutex>
#include <vector>

#include "util/check.h"
#include "util/env.h"

namespace pjoin {

namespace {

// The calling thread's query context. Worker threads belong to exactly one
// query at a time (the server installs the grant on every pool worker before
// running a query and clears it after), so a plain thread-local is enough —
// no lookup, no locking on the accounting hot path.
thread_local MemoryGovernor::QueryGrant* t_grant = nullptr;

}  // namespace

// Cold-path arbiter state: the table of active grants. Queries join and
// leave a few times per second at most; a mutex is fine here.
struct MemoryGovernor::Arbiter {
  std::mutex mu;
  std::vector<std::unique_ptr<QueryGrant>> active;
  uint64_t next_query_id = 1;
};

MemoryGovernor::MemoryGovernor(uint64_t budget)
    : budget_(budget), arbiter_(new Arbiter) {}

MemoryGovernor::~MemoryGovernor() { delete arbiter_; }

MemoryGovernor& MemoryGovernor::Global() {
  static MemoryGovernor governor(MemoryBudgetBytes());
  return governor;
}

void MemoryGovernor::set_budget(uint64_t budget) {
  std::lock_guard<std::mutex> lock(arbiter_->mu);
  budget_.store(budget, std::memory_order_relaxed);
  RecomputeSharesLocked();
}

MemoryGovernor::QueryGrant* MemoryGovernor::BeginQuery() {
  std::lock_guard<std::mutex> lock(arbiter_->mu);
  arbiter_->active.push_back(std::make_unique<QueryGrant>());
  QueryGrant* grant = arbiter_->active.back().get();
  grant->query_id = arbiter_->next_query_id++;
  active_count_.store(static_cast<int>(arbiter_->active.size()),
                      std::memory_order_relaxed);
  RecomputeSharesLocked();
  return grant;
}

void MemoryGovernor::EndQuery(QueryGrant* grant) {
  PJOIN_CHECK(grant != nullptr);
  std::lock_guard<std::mutex> lock(arbiter_->mu);
  for (auto it = arbiter_->active.begin(); it != arbiter_->active.end();
       ++it) {
    if (it->get() != grant) continue;
    // Return anything the query failed to release: a leak in one query must
    // not shrink the pool for everyone that comes after it.
    uint64_t leaked = grant->used.load(std::memory_order_relaxed);
    if (leaked > 0) SubClamped(reserved_, leaked);
    arbiter_->active.erase(it);
    active_count_.store(static_cast<int>(arbiter_->active.size()),
                        std::memory_order_relaxed);
    RecomputeSharesLocked();
    return;
  }
  PJOIN_CHECK_MSG(false, "EndQuery: grant not active");
}

void MemoryGovernor::RecomputeSharesLocked() {
  uint64_t b = budget_.load(std::memory_order_relaxed);
  size_t n = arbiter_->active.size();
  // Unlimited budget: every query is unlimited. Otherwise an equal split,
  // never rounded to zero — a starved grant would deny even the first page
  // and the query could not stage its spill partitions.
  uint64_t share = UINT64_MAX;
  if (b != 0 && n > 0) {
    share = b / static_cast<uint64_t>(n);
    if (share == 0) share = 1;
  }
  for (auto& grant : arbiter_->active) {
    grant->granted.store(share, std::memory_order_relaxed);
    if (share < grant->min_granted.load(std::memory_order_relaxed)) {
      grant->min_granted.store(share, std::memory_order_relaxed);
    }
  }
}

void MemoryGovernor::SetThreadGrant(QueryGrant* grant) { t_grant = grant; }

MemoryGovernor::QueryGrant* MemoryGovernor::ThreadGrant() { return t_grant; }

}  // namespace pjoin
