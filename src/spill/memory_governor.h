// Process-wide memory budget for join state, arbitrated across queries.
//
// The governor is the single decision point that turns the in-memory joins
// into hybrid-hash joins: storage layers *account* the bytes they actually
// allocate (forced, so the number always reflects live memory), while join
// build phases *probe* the governor before committing to a fully resident
// plan. A denied probe does not fail the query -- it flips the operator into
// its spill path (see join/hash_join.cc and join/radix_join.cc).
//
// Server mode (src/server/) turns the single global budget into a
// cross-query arbiter: every admitted query registers a QueryGrant
// (BeginQuery/EndQuery) and receives a fair share of the budget --
// budget / active_queries, recomputed whenever a query joins or leaves.
// The grant is installed as a thread-local on each of the query's worker
// threads, so the existing WouldFit/Account/Release call sites need no
// query parameter. A probe that exceeds the caller's own grant while other
// queries are active is denied as *spill pressure*: the contended query
// goes out-of-core early instead of starving its neighbors, which is the
// "spill earlier when oversubscribed" half of the admission policy (the
// other half -- queueing -- lives in server/query_server). A query running
// alone holds a grant equal to the whole budget, so single-query behavior
// is unchanged.
//
// Accounting is amortized: callers report per-chunk / per-page allocations
// (16 KiB..1 MiB), never per-tuple, so an unlimited budget adds a few
// relaxed atomic adds per page to the hot path and nothing else. All
// counters are safe to drive from any number of concurrently executing
// queries; Release clamps at zero instead of wrapping, so a misbehaving
// caller can never poison the shared pool for everyone else.
#ifndef PJOIN_SPILL_MEMORY_GOVERNOR_H_
#define PJOIN_SPILL_MEMORY_GOVERNOR_H_

#include <atomic>
#include <cstdint>

namespace pjoin {

class MemoryGovernor {
 public:
  // Per-query reservation record. `granted` is this query's fair share of
  // the budget (UINT64_MAX when the budget is unlimited); `used` the bytes
  // the query has accounted and not yet released; `pressure_events` the
  // denials charged to the per-query grant rather than the global budget.
  // Instances are owned by the governor; pointers stay valid from
  // BeginQuery until the matching EndQuery.
  struct QueryGrant {
    uint64_t query_id = 0;
    std::atomic<uint64_t> granted{UINT64_MAX};
    // Tightest share this grant ever held (fair shares shrink while other
    // queries are admitted and grow back as they finish); this is the
    // number the server reports as the query's effective grant.
    std::atomic<uint64_t> min_granted{UINT64_MAX};
    std::atomic<uint64_t> used{0};
    std::atomic<uint64_t> pressure_events{0};
  };

  // budget of 0 means unlimited (track usage, never deny).
  explicit MemoryGovernor(uint64_t budget = 0);
  ~MemoryGovernor();

  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  // The process-wide instance; budget initialized once from
  // PJOIN_MEMORY_BUDGET (size suffixes allowed, see util/env.h).
  static MemoryGovernor& Global();

  uint64_t budget() const { return budget_.load(std::memory_order_relaxed); }

  // Test/bench hook: swap the budget at runtime (counters are untouched).
  // Active query grants are re-split over the new budget.
  void set_budget(uint64_t budget);

  // --- cross-query arbitration --------------------------------------------

  // Registers a query with the arbiter and returns its grant. Every active
  // grant (including the new one) is re-split to budget / active_queries.
  QueryGrant* BeginQuery();

  // Deregisters a query. Any bytes the query failed to release are returned
  // to the pool (the clamp that makes a leaky query survivable), and the
  // remaining queries' shares grow back.
  void EndQuery(QueryGrant* grant);

  int active_queries() const {
    return active_count_.load(std::memory_order_relaxed);
  }

  // Installs `grant` as the calling thread's query context; WouldFit /
  // Account / Release charge this grant until it is reset. The server runs
  // this on every worker of a query's pool before execution and clears it
  // after; standalone ExecuteQuery never sets it and sees the pre-server
  // global-budget behavior unchanged.
  static void SetThreadGrant(QueryGrant* grant);
  static QueryGrant* ThreadGrant();

  // --- probe / account / release ------------------------------------------

  // Probe: would `bytes` more fit in the budget? Counts a denial when not.
  // Does NOT reserve -- callers that proceed account the real allocation.
  // With a thread grant installed, the caller's own share is checked first;
  // a share overrun while other queries are active is counted as spill
  // pressure (the arbiter telling this query to go out-of-core early).
  bool WouldFit(uint64_t bytes) {
    uint64_t b = budget();
    if (b == 0) return true;
    if (QueryGrant* g = ThreadGrant()) {
      if (g->used.load(std::memory_order_relaxed) + bytes >
          g->granted.load(std::memory_order_relaxed)) {
        g->pressure_events.fetch_add(1, std::memory_order_relaxed);
        spill_pressure_.fetch_add(1, std::memory_order_relaxed);
        denials_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    if (reserved_.load(std::memory_order_relaxed) + bytes <= b) return true;
    denials_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // Forced accounting of a committed allocation. Never fails: the bytes are
  // already allocated, the governor just has to know about them.
  void Account(uint64_t bytes) {
    if (QueryGrant* g = ThreadGrant()) {
      g->used.fetch_add(bytes, std::memory_order_relaxed);
    }
    uint64_t now = reserved_.fetch_add(bytes, std::memory_order_relaxed) +
                   bytes;
    uint64_t hw = high_water_.load(std::memory_order_relaxed);
    while (now > hw && !high_water_.compare_exchange_weak(
                           hw, now, std::memory_order_relaxed)) {
    }
  }

  // Releases previously accounted bytes. Clamped at zero: with many owners
  // a double-release must not wrap the shared counter into "budget full
  // forever" (2^64 - n reserved would deny every query in the process).
  void Release(uint64_t bytes) {
    if (QueryGrant* g = ThreadGrant()) {
      SubClamped(g->used, bytes);
    }
    SubClamped(reserved_, bytes);
  }

  uint64_t reserved() const {
    return reserved_.load(std::memory_order_relaxed);
  }
  uint64_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  uint64_t denials() const { return denials_.load(std::memory_order_relaxed); }

  // Denials charged to a per-query grant (subset of denials()): how often
  // the arbiter pushed a contended query toward its spill path.
  uint64_t spill_pressure() const {
    return spill_pressure_.load(std::memory_order_relaxed);
  }

  // Bytes still available under the budget (UINT64_MAX when unlimited).
  uint64_t Available() const {
    uint64_t b = budget();
    if (b == 0) return UINT64_MAX;
    uint64_t r = reserved();
    return r >= b ? 0 : b - r;
  }

  // Test hook: zero the monotonic counters so suites stay independent.
  void ResetCountersForTest() {
    high_water_.store(reserved_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    denials_.store(0, std::memory_order_relaxed);
    spill_pressure_.store(0, std::memory_order_relaxed);
  }

 private:
  static void SubClamped(std::atomic<uint64_t>& counter, uint64_t bytes) {
    uint64_t cur = counter.load(std::memory_order_relaxed);
    while (!counter.compare_exchange_weak(cur,
                                          cur >= bytes ? cur - bytes : 0,
                                          std::memory_order_relaxed)) {
    }
  }

  // Re-splits the budget over the active grants; arbiter_mu_ must be held.
  void RecomputeSharesLocked();

  std::atomic<uint64_t> budget_;
  std::atomic<uint64_t> reserved_{0};
  std::atomic<uint64_t> high_water_{0};
  std::atomic<uint64_t> denials_{0};
  std::atomic<uint64_t> spill_pressure_{0};
  std::atomic<int> active_count_{0};

  // Arbiter table (cold path: queries joining/leaving, budget swaps).
  // Defined in the .cc to keep <mutex>/<vector> out of this hot header.
  struct Arbiter;
  Arbiter* arbiter_;
};

// RAII budget override for tests/benches: sets the global budget on entry,
// restores the previous value (and resets counters) on exit.
class ScopedMemoryBudget {
 public:
  explicit ScopedMemoryBudget(uint64_t budget)
      : previous_(MemoryGovernor::Global().budget()) {
    MemoryGovernor::Global().set_budget(budget);
  }
  ~ScopedMemoryBudget() {
    MemoryGovernor::Global().set_budget(previous_);
    MemoryGovernor::Global().ResetCountersForTest();
  }

  ScopedMemoryBudget(const ScopedMemoryBudget&) = delete;
  ScopedMemoryBudget& operator=(const ScopedMemoryBudget&) = delete;

 private:
  uint64_t previous_;
};

}  // namespace pjoin

#endif  // PJOIN_SPILL_MEMORY_GOVERNOR_H_
