// Process-wide memory budget for join state.
//
// The governor is the single decision point that turns the in-memory joins
// into hybrid-hash joins: storage layers *account* the bytes they actually
// allocate (forced, so the number always reflects live memory), while join
// build phases *probe* the governor before committing to a fully resident
// plan. A denied probe does not fail the query -- it flips the operator into
// its spill path (see join/hash_join.cc and join/radix_join.cc).
//
// Accounting is amortized: callers report per-chunk / per-page allocations
// (16 KiB..1 MiB), never per-tuple, so an unlimited budget adds two relaxed
// atomic adds per page to the hot path and nothing else.
#ifndef PJOIN_SPILL_MEMORY_GOVERNOR_H_
#define PJOIN_SPILL_MEMORY_GOVERNOR_H_

#include <atomic>
#include <cstdint>

namespace pjoin {

class MemoryGovernor {
 public:
  // budget of 0 means unlimited (track usage, never deny).
  explicit MemoryGovernor(uint64_t budget = 0) : budget_(budget) {}

  // The process-wide instance; budget initialized once from
  // PJOIN_MEMORY_BUDGET (size suffixes allowed, see util/env.h).
  static MemoryGovernor& Global();

  uint64_t budget() const { return budget_.load(std::memory_order_relaxed); }

  // Test/bench hook: swap the budget at runtime (counters are untouched).
  void set_budget(uint64_t budget) {
    budget_.store(budget, std::memory_order_relaxed);
  }

  // Probe: would `bytes` more fit in the budget? Counts a denial when not.
  // Does NOT reserve -- callers that proceed account the real allocation.
  bool WouldFit(uint64_t bytes) {
    uint64_t b = budget();
    if (b == 0) return true;
    if (reserved_.load(std::memory_order_relaxed) + bytes <= b) return true;
    denials_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // Forced accounting of a committed allocation. Never fails: the bytes are
  // already allocated, the governor just has to know about them.
  void Account(uint64_t bytes) {
    uint64_t now = reserved_.fetch_add(bytes, std::memory_order_relaxed) +
                   bytes;
    uint64_t hw = high_water_.load(std::memory_order_relaxed);
    while (now > hw && !high_water_.compare_exchange_weak(
                           hw, now, std::memory_order_relaxed)) {
    }
  }

  void Release(uint64_t bytes) {
    reserved_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  uint64_t reserved() const {
    return reserved_.load(std::memory_order_relaxed);
  }
  uint64_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  uint64_t denials() const { return denials_.load(std::memory_order_relaxed); }

  // Bytes still available under the budget (UINT64_MAX when unlimited).
  uint64_t Available() const {
    uint64_t b = budget();
    if (b == 0) return UINT64_MAX;
    uint64_t r = reserved();
    return r >= b ? 0 : b - r;
  }

  // Test hook: zero the monotonic counters so suites stay independent.
  void ResetCountersForTest() {
    high_water_.store(reserved_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    denials_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> budget_;
  std::atomic<uint64_t> reserved_{0};
  std::atomic<uint64_t> high_water_{0};
  std::atomic<uint64_t> denials_{0};
};

// RAII budget override for tests/benches: sets the global budget on entry,
// restores the previous value (and resets counters) on exit.
class ScopedMemoryBudget {
 public:
  explicit ScopedMemoryBudget(uint64_t budget)
      : previous_(MemoryGovernor::Global().budget()) {
    MemoryGovernor::Global().set_budget(budget);
  }
  ~ScopedMemoryBudget() {
    MemoryGovernor::Global().set_budget(previous_);
    MemoryGovernor::Global().ResetCountersForTest();
  }

  ScopedMemoryBudget(const ScopedMemoryBudget&) = delete;
  ScopedMemoryBudget& operator=(const ScopedMemoryBudget&) = delete;

 private:
  uint64_t previous_;
};

}  // namespace pjoin

#endif  // PJOIN_SPILL_MEMORY_GOVERNOR_H_
