#include "spill/spill_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/check.h"

namespace pjoin {

namespace {
constexpr size_t kWriteBufferBytes = 256 * 1024;

ssize_t FullWrite(int fd, const std::byte* data, size_t bytes) {
  size_t done = 0;
  while (done < bytes) {
    ssize_t n = ::write(fd, data + done, bytes - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    done += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(done);
}
}  // namespace

const char* SpillFile::SpillDir() {
  static const std::string dir = [] {
    const char* v = std::getenv("PJOIN_SPILL_DIR");
    if (v != nullptr && *v != '\0') return std::string(v);
    v = std::getenv("TMPDIR");
    if (v != nullptr && *v != '\0') return std::string(v);
    return std::string("/tmp");
  }();
  return dir.c_str();
}

SpillFile::~SpillFile() {
  if (fd_ >= 0) ::close(fd_);
}

void SpillFile::EnsureOpen() {
  if (fd_ >= 0) return;
  std::string path = std::string(SpillDir()) + "/pjoin_spill_XXXXXX";
  fd_ = ::mkstemp(path.data());
  PJOIN_CHECK(fd_ >= 0);
  // Unlink immediately: the fd keeps the data alive, the name does not
  // outlive the process.
  ::unlink(path.c_str());
  buffer_.resize(kWriteBufferBytes);
}

void SpillFile::Append(const void* data, size_t bytes) {
  EnsureOpen();
  const std::byte* src = static_cast<const std::byte*>(data);
  size_ += bytes;
  // Fill the buffer; bypass it entirely for writes that would overflow it.
  while (bytes > 0) {
    if (buffered_ == 0 && bytes >= buffer_.size()) {
      PJOIN_CHECK(FullWrite(fd_, src, bytes) >= 0);
      return;
    }
    size_t take = std::min(bytes, buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, src, take);
    buffered_ += take;
    src += take;
    bytes -= take;
    if (buffered_ == buffer_.size()) {
      PJOIN_CHECK(FullWrite(fd_, buffer_.data(), buffered_) >= 0);
      buffered_ = 0;
    }
  }
}

void SpillFile::FinishWrite() {
  if (buffered_ > 0) {
    PJOIN_CHECK(FullWrite(fd_, buffer_.data(), buffered_) >= 0);
    buffered_ = 0;
  }
  // Drop the buffer: from here on the file is read-only.
  buffer_.clear();
  buffer_.shrink_to_fit();
}

void SpillFile::Read(uint64_t offset, void* dst, size_t bytes) const {
  PJOIN_CHECK(buffered_ == 0);
  PJOIN_CHECK(offset + bytes <= size_);
  std::byte* out = static_cast<std::byte*>(dst);
  size_t done = 0;
  while (done < bytes) {
    ssize_t n = ::pread(fd_, out + done, bytes - done,
                        static_cast<off_t>(offset + done));
    PJOIN_CHECK(n > 0);
    done += static_cast<size_t>(n);
  }
}

}  // namespace pjoin
