// Unlinked temp-file storage for spilled tuple pages.
//
// Spill I/O is strictly sequential-append during the build/probe phases and
// sequential-scan during the join phase, so a single write buffer per file
// (256 KiB) is enough to reach device bandwidth. Files are created with
// mkstemp under PJOIN_SPILL_DIR (default TMPDIR or /tmp) and unlinked
// immediately, so a crashed process leaks no disk space.
#ifndef PJOIN_SPILL_SPILL_FILE_H_
#define PJOIN_SPILL_SPILL_FILE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pjoin {

class SpillFile {
 public:
  SpillFile() = default;
  ~SpillFile();

  SpillFile(const SpillFile&) = delete;
  SpillFile& operator=(const SpillFile&) = delete;

  // Buffered append; not thread-safe (callers serialize, see SpillPartition).
  void Append(const void* data, size_t bytes);

  // Flushes the write buffer. Must be called before Read.
  void FinishWrite();

  // Bytes appended so far (including still-buffered bytes).
  uint64_t size() const { return size_; }

  // Reads `bytes` at `offset`; the range must lie within [0, size()).
  void Read(uint64_t offset, void* dst, size_t bytes) const;

  // Directory used for spill files (PJOIN_SPILL_DIR / TMPDIR / /tmp).
  static const char* SpillDir();

 private:
  void EnsureOpen();

  int fd_ = -1;
  uint64_t size_ = 0;
  std::vector<std::byte> buffer_;
  size_t buffered_ = 0;
};

}  // namespace pjoin

#endif  // PJOIN_SPILL_SPILL_FILE_H_
