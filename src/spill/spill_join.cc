#include "spill/spill_join.h"

#include <algorithm>
#include <memory>

#include "hash_table/robin_hood.h"
#include "spill/spill_page.h"
#include "util/check.h"
#include "util/env.h"

namespace pjoin {

void SpillPartition::Init(uint32_t tuple_stride, SpillStats* stats,
                          bool compressed) {
  PJOIN_CHECK(tuple_stride >= 8);
  stride_ = tuple_stride;
  stats_ = stats;
  compressed_ = compressed;
  scratch_.assign(tuple_stride, std::byte{0});
}

void SpillPartition::AppendLocked(const std::byte* data, size_t bytes) {
  if (!compressed_) {
    file_.Append(data, bytes);
    return;
  }
  // Whole tuples only cross the page boundary, so a page always holds a
  // multiple of stride_ bytes.
  const size_t cap = std::max<size_t>(kSpillPageBytes / stride_, 1) * stride_;
  size_t pos = 0;
  while (pos < bytes) {
    const size_t take = std::min(bytes - pos, cap - page_.size());
    page_.insert(page_.end(), data + pos, data + pos + take);
    pos += take;
    if (page_.size() == cap) FlushPageLocked();
  }
}

void SpillPartition::FlushPageLocked() {
  if (page_.empty()) return;
  std::vector<std::byte> frame(8);
  EncodeSpillPage(page_.data(), page_.size(), stride_, &frame);
  const uint32_t raw = static_cast<uint32_t>(page_.size());
  const uint32_t enc = static_cast<uint32_t>(frame.size() - 8);
  std::memcpy(frame.data(), &raw, 4);
  std::memcpy(frame.data() + 4, &enc, 4);
  file_.Append(frame.data(), frame.size());
  if (stats_ != nullptr) {
    stats_->physical_bytes_written.fetch_add(frame.size(),
                                             std::memory_order_relaxed);
  }
  page_.clear();
}

void SpillPartition::NoteRead(uint64_t logical, uint64_t physical) const {
  if (stats_ == nullptr) return;
  stats_->bytes_read.fetch_add(logical, std::memory_order_relaxed);
  if (compressed_) {
    stats_->physical_bytes_read.fetch_add(physical, std::memory_order_relaxed);
  }
}

void SpillPartition::AppendTuple(const std::byte* tuple) {
  std::lock_guard<std::mutex> lock(mu_);
  AppendLocked(tuple, stride_);
  tuples_.fetch_add(1, std::memory_order_relaxed);
  if (stats_ != nullptr) {
    stats_->bytes_written.fetch_add(stride_, std::memory_order_relaxed);
  }
}

void SpillPartition::AppendHashRow(uint64_t hash, const std::byte* row,
                                   uint32_t row_bytes) {
  PJOIN_DCHECK(8 + row_bytes <= stride_);
  std::lock_guard<std::mutex> lock(mu_);
  std::memcpy(scratch_.data(), &hash, 8);
  std::memcpy(scratch_.data() + 8, row, row_bytes);
  AppendLocked(scratch_.data(), stride_);
  tuples_.fetch_add(1, std::memory_order_relaxed);
  if (stats_ != nullptr) {
    stats_->bytes_written.fetch_add(stride_, std::memory_order_relaxed);
  }
}

void SpillPartition::AppendRaw(const void* data, size_t bytes) {
  PJOIN_DCHECK(bytes % stride_ == 0);
  std::lock_guard<std::mutex> lock(mu_);
  AppendLocked(static_cast<const std::byte*>(data), bytes);
  tuples_.fetch_add(bytes / stride_, std::memory_order_relaxed);
  if (stats_ != nullptr) {
    stats_->bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  }
}

void SpillPartition::FinishWrite() {
  if (compressed_) {
    std::lock_guard<std::mutex> lock(mu_);
    FlushPageLocked();
  }
  file_.FinishWrite();
}

void SpillPartition::ForEachTuple(
    const std::function<void(const std::byte*)>& fn) const {
  // Probe tuples are streamed through a bounded chunk so the probe side
  // never has to fit in memory (1 MiB in plain mode, one page when
  // compressed).
  constexpr size_t kStreamChunkBytes = 1 << 20;
  const uint64_t total = file_.size();
  if (!compressed_) {
    const size_t tuples_per_chunk =
        std::max<size_t>(1, kStreamChunkBytes / stride_);
    std::vector<std::byte> chunk(tuples_per_chunk * stride_);
    uint64_t offset = 0;
    while (offset < total) {
      size_t take = static_cast<size_t>(
          std::min<uint64_t>(chunk.size(), total - offset));
      file_.Read(offset, chunk.data(), take);
      NoteRead(take, take);
      for (size_t p = 0; p < take; p += stride_) fn(chunk.data() + p);
      offset += take;
    }
    return;
  }
  std::vector<std::byte> enc;
  std::vector<std::byte> raw;
  uint64_t offset = 0;
  while (offset < total) {
    uint32_t raw_bytes = 0;
    uint32_t enc_bytes = 0;
    std::byte header[8];
    file_.Read(offset, header, 8);
    std::memcpy(&raw_bytes, header, 4);
    std::memcpy(&enc_bytes, header + 4, 4);
    PJOIN_CHECK(offset + 8 + enc_bytes <= total);
    enc.resize(enc_bytes);
    file_.Read(offset + 8, enc.data(), enc_bytes);
    raw.resize(raw_bytes);
    DecodeSpillPage(enc.data(), enc_bytes, raw_bytes, stride_, raw.data());
    NoteRead(raw_bytes, 8 + static_cast<uint64_t>(enc_bytes));
    for (size_t p = 0; p < raw_bytes; p += stride_) fn(raw.data() + p);
    offset += 8 + enc_bytes;
  }
}

void SpillPartition::ReadAllTuples(std::vector<std::byte>* out) const {
  out->resize(static_cast<size_t>(logical_bytes()));
  if (out->empty()) return;
  if (!compressed_) {
    file_.Read(0, out->data(), out->size());
    NoteRead(out->size(), out->size());
    return;
  }
  size_t pos = 0;
  ForEachTuple([&](const std::byte* tuple) {
    std::memcpy(out->data() + pos, tuple, stride_);
    pos += stride_;
  });
  PJOIN_CHECK(pos == out->size());
}

namespace {

// Sub-partitioning fan-out per recursion level and the depth bound. Six
// levels of 4 bits on top of the initial fan-out split any skew the hash
// function can split; past that the partition is duplicate-heavy and must
// be joined in memory regardless of budget.
constexpr int kRecurseBits = 4;
constexpr int kRecurseFanout = 1 << kRecurseBits;
constexpr int kMaxDepth = 6;

// In-memory join of one pair: build side loaded, probe side streamed.
uint64_t JoinLoadedPair(const SpillJoinSpec& spec, SpillPartition& build,
                        SpillPartition& probe, SpillEmitter& emit) {
  const uint64_t build_bytes = build.logical_bytes();
  const uint64_t bcount = build.tuples();
  const uint32_t bstride = build.stride();

  std::vector<std::byte> bdata;
  build.ReadAllTuples(&bdata);

  RobinHoodTable table;
  table.Reset(bcount);
  const uint64_t resident_bytes =
      build_bytes + table.capacity() * sizeof(RobinHoodTable::Slot);
  if (spec.governor != nullptr) spec.governor->Account(resident_bytes);

  for (uint64_t i = 0; i < bcount; ++i) {
    const std::byte* tuple = bdata.data() + i * bstride;
    table.Insert(SpillTupleHash(tuple), tuple);
  }

  const JoinKind kind = spec.kind;
  const bool track = TracksBuildMatches(kind);
  std::vector<uint8_t> matched_slots;
  if (track) matched_slots.assign(table.capacity(), 0);

  uint64_t matched_tuples = 0;
  probe.ForEachTuple(
      [&](const std::byte* ptuple) {
        const uint64_t hash = SpillTupleHash(ptuple);
        const std::byte* probe_row = SpillTupleRow(ptuple);
        bool matched = false;
        table.ForEachMatch(hash, [&](const std::byte* btuple, uint64_t slot) {
          const std::byte* build_row = SpillTupleRow(btuple);
          if (!KeySpec::Equals(*spec.build_key, build_row, *spec.probe_key,
                               probe_row)) {
            return;
          }
          matched = true;
          switch (kind) {
            case JoinKind::kInner:
            case JoinKind::kLeftOuter:
              emit.Pair(build_row, probe_row);
              break;
            case JoinKind::kRightOuter:
              emit.Pair(build_row, probe_row);
              matched_slots[slot] = 1;
              break;
            case JoinKind::kProbeSemi:
              // Emission handled below to avoid duplicates on multi-match.
              break;
            case JoinKind::kBuildSemi:
            case JoinKind::kBuildAnti:
              matched_slots[slot] = 1;
              break;
            case JoinKind::kProbeAnti:
            case JoinKind::kMark:
              break;
          }
        });
        if (kind == JoinKind::kProbeSemi && matched) {
          emit.ProbeOnly(probe_row);
        } else if (kind == JoinKind::kProbeAnti && !matched) {
          emit.ProbeOnly(probe_row);
        } else if (kind == JoinKind::kLeftOuter && !matched) {
          emit.ProbeOnly(probe_row);
        } else if (kind == JoinKind::kMark) {
          emit.Mark(probe_row, matched);
        }
        matched_tuples += matched ? 1 : 0;
      });

  // This pair's verdicts are final (equal keys share every partitioning
  // level), so build-preserving kinds emit here, like the radix join does.
  if (track) {
    for (uint64_t slot = 0; slot < table.capacity(); ++slot) {
      const RobinHoodTable::Slot& s = table.slot(slot);
      if (s.tuple == nullptr) continue;
      const bool m = matched_slots[slot] != 0;
      if ((kind == JoinKind::kBuildSemi && m) ||
          (kind == JoinKind::kBuildAnti && !m) ||
          (kind == JoinKind::kRightOuter && !m)) {
        emit.BuildOnly(SpillTupleRow(s.tuple));
      }
    }
  }

  if (spec.governor != nullptr) spec.governor->Release(resident_bytes);
  return matched_tuples;
}

}  // namespace

SpillJoinState::SpillJoinState(int fanout, uint32_t build_stride,
                               uint32_t probe_stride)
    : fanout_(fanout),
      build_stride_(build_stride),
      probe_stride_(probe_stride),
      spilled_(fanout, 0),
      build_parts_(fanout),
      probe_parts_(fanout) {
  stats.partitions_total = static_cast<uint32_t>(fanout);
  stats.compressed = EncodingEnabled();
}

void SpillJoinState::MarkSpilled(int p) {
  if (spilled_[p] != 0) return;
  spilled_[p] = 1;
  spilled_list_.push_back(p);
  build_parts_[p] = std::make_unique<SpillPartition>();
  build_parts_[p]->Init(build_stride_, &stats, stats.compressed);
  probe_parts_[p] = std::make_unique<SpillPartition>();
  probe_parts_[p]->Init(probe_stride_, &stats, stats.compressed);
  stats.partitions_spilled = static_cast<uint32_t>(spilled_list_.size());
}

void SpillJoinState::FinishBuildWrite() {
  for (int p : spilled_list_) build_parts_[p]->FinishWrite();
}

void SpillJoinState::FinishProbeWrite() {
  for (int p : spilled_list_) probe_parts_[p]->FinishWrite();
}

void SpillJoinState::AwaitProbeWorkers(int expected) {
  std::unique_lock<std::mutex> lock(barrier_mu_);
  if (++barrier_arrived_ >= expected) {
    FinishProbeWrite();
    barrier_open_ = true;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock, [&] { return barrier_open_; });
}

uint64_t ProcessSpilledPair(const SpillJoinSpec& spec, SpillPartition& build,
                            SpillPartition& probe, SpillEmitter& emit,
                            int depth) {
  if (spec.stats != nullptr) {
    spec.stats->NoteDepth(static_cast<uint64_t>(depth) + 1);
  }
  // Estimated resident footprint: build tuples plus the robin-hood table at
  // its <= 2/3 load factor (~1.5 slots of 16 bytes per tuple, rounded up).
  // Pages are decoded before loading, so the budget is sized on the logical
  // (decoded) bytes either way.
  const uint64_t need =
      build.logical_bytes() + build.tuples() * 2 * sizeof(RobinHoodTable::Slot);
  const int shift = spec.hash_shift + depth * kRecurseBits;
  const bool bits_left = shift + kRecurseBits <= 48;
  const bool fits = spec.governor == nullptr || spec.governor->WouldFit(need);
  if (fits || depth >= kMaxDepth || !bits_left) {
    return JoinLoadedPair(spec, build, probe, emit);
  }

  // Grace recursion: split both sides by the next kRecurseBits hash bits.
  std::vector<std::unique_ptr<SpillPartition>> sub_build(kRecurseFanout);
  std::vector<std::unique_ptr<SpillPartition>> sub_probe(kRecurseFanout);
  for (int f = 0; f < kRecurseFanout; ++f) {
    sub_build[f] = std::make_unique<SpillPartition>();
    sub_build[f]->Init(build.stride(), spec.stats, build.compressed());
    sub_probe[f] = std::make_unique<SpillPartition>();
    sub_probe[f]->Init(probe.stride(), spec.stats, probe.compressed());
  }
  const uint64_t mask = kRecurseFanout - 1;
  build.ForEachTuple([&](const std::byte* tuple) {
    uint64_t f = (SpillTupleHash(tuple) >> shift) & mask;
    sub_build[f]->AppendTuple(tuple);
  });
  probe.ForEachTuple([&](const std::byte* tuple) {
    uint64_t f = (SpillTupleHash(tuple) >> shift) & mask;
    sub_probe[f]->AppendTuple(tuple);
  });
  uint64_t matched = 0;
  for (int f = 0; f < kRecurseFanout; ++f) {
    sub_build[f]->FinishWrite();
    sub_probe[f]->FinishWrite();
    // Even an empty build side must be processed: probe-anti / left-outer /
    // mark kinds emit rows precisely when there is no partner.
    if (sub_build[f]->tuples() == 0 && sub_probe[f]->tuples() == 0) continue;
    matched += ProcessSpilledPair(spec, *sub_build[f], *sub_probe[f], emit,
                                  depth + 1);
  }
  return matched;
}

}  // namespace pjoin
