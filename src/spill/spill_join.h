// Shared hybrid-hash spill machinery for the three join strategies.
//
// Both joins spill in the radix partitioner's tuple format -- [hash:8B][row]
// padded to a fixed stride -- so a spilled partition is just a flat file of
// fixed-size tuples. Each spilled partition pair is joined independently:
// load the build side, build a robin-hood table over it, stream the probe
// side in 1 MiB chunks. When even a single build partition exceeds the
// governor's remaining budget, the pair is re-partitioned 16-way by the next
// unconsumed hash bits and processed recursively (Grace-style recursion,
// bounded so duplicate-heavy keys terminate).
//
// Per-partition match verdicts are final -- all tuples with equal keys land
// in the same partition at every level -- so build-preserving kinds emit
// their build rows during pair processing, exactly like the in-memory radix
// join does.
#ifndef PJOIN_SPILL_SPILL_JOIN_H_
#define PJOIN_SPILL_SPILL_JOIN_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/query_metrics.h"
#include "join/join_types.h"
#include "join/key_spec.h"
#include "spill/memory_governor.h"
#include "spill/spill_file.h"

namespace pjoin {

// Counters for one join's spill activity; atomics because build/probe/join
// phases append from many workers.
struct SpillStats {
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> bytes_read{0};
  // File bytes actually written/read when pages are compressed
  // (spill/spill_page.h); bytes_written/bytes_read stay logical (stride per
  // tuple) so spill accounting is comparable across modes.
  std::atomic<uint64_t> physical_bytes_written{0};
  std::atomic<uint64_t> physical_bytes_read{0};
  bool compressed = false;
  std::atomic<uint64_t> build_tuples_spilled{0};
  std::atomic<uint64_t> probe_tuples_spilled{0};
  std::atomic<uint64_t> max_depth{0};
  uint32_t partitions_spilled = 0;
  uint32_t partitions_total = 0;

  void NoteDepth(uint64_t depth) {
    uint64_t d = max_depth.load(std::memory_order_relaxed);
    while (depth > d && !max_depth.compare_exchange_weak(
                            d, depth, std::memory_order_relaxed)) {
    }
  }
};

// One side of one spilled partition: a flat file of fixed-stride
// [hash][row][pad] tuples with a mutex-serialized append path. The spill
// path is I/O-bound, so the lock is invisible next to the write() calls.
class SpillPartition {
 public:
  // `compressed` switches the file format to [raw][enc][payload] page frames
  // (spill/spill_page.h): tuples buffer into a page and are encoded on
  // flush, decoded on replay. Plain mode keeps the flat-file format (and
  // byte-identical files) of the pre-encoding engine.
  void Init(uint32_t tuple_stride, SpillStats* stats, bool compressed = false);

  uint32_t stride() const { return stride_; }
  bool compressed() const { return compressed_; }
  uint64_t tuples() const { return tuples_.load(std::memory_order_relaxed); }
  uint64_t bytes() const { return file_.size(); }
  // Tuple payload bytes, independent of the on-disk encoding; equals
  // bytes() in plain mode. Budget math sizes the decoded data, so it uses
  // this.
  uint64_t logical_bytes() const { return tuples() * stride_; }
  SpillFile& file() { return file_; }
  const SpillFile& file() const { return file_; }

  // Appends one pre-formatted spill tuple (stride() bytes). Thread-safe.
  void AppendTuple(const std::byte* tuple);

  // Formats and appends [hash][row][zero pad]. Thread-safe.
  void AppendHashRow(uint64_t hash, const std::byte* row, uint32_t row_bytes);

  // Appends a block of pre-formatted tuples (bytes % stride() == 0).
  // Thread-safe.
  void AppendRaw(const void* data, size_t bytes);

  // Flushes the pending page (compressed mode) and the file write buffer.
  void FinishWrite();

  // Streams every spilled tuple through `fn`, decoding pages as needed.
  // Call after FinishWrite; accounts logical bytes into stats bytes_read.
  void ForEachTuple(const std::function<void(const std::byte*)>& fn) const;

  // Reads (and decodes) the whole partition: logical_bytes() bytes.
  void ReadAllTuples(std::vector<std::byte>* out) const;

 private:
  void AppendLocked(const std::byte* data, size_t bytes);
  void FlushPageLocked();
  void NoteRead(uint64_t logical, uint64_t physical) const;

  SpillFile file_;
  std::mutex mu_;
  std::vector<std::byte> scratch_;
  std::vector<std::byte> page_;  // compressed mode: pending raw tuples
  uint32_t stride_ = 0;
  bool compressed_ = false;
  std::atomic<uint64_t> tuples_{0};
  SpillStats* stats_ = nullptr;
};

inline uint64_t SpillTupleHash(const std::byte* tuple) {
  uint64_t h;
  std::memcpy(&h, tuple, 8);
  return h;
}

inline const std::byte* SpillTupleRow(const std::byte* tuple) {
  return tuple + 8;
}

// Join-output callbacks; adapters route these into the strategy's native
// emission path (JoinEmitter for in-pipeline output, holding buffers for the
// BHJ build-scan replay).
class SpillEmitter {
 public:
  virtual ~SpillEmitter() = default;
  virtual void Pair(const std::byte* build_row, const std::byte* probe_row) = 0;
  virtual void ProbeOnly(const std::byte* probe_row) = 0;
  virtual void BuildOnly(const std::byte* build_row) = 0;
  virtual void Mark(const std::byte* probe_row, bool matched) = 0;
};

// Static description of the join a spilled pair belongs to.
struct SpillJoinSpec {
  JoinKind kind = JoinKind::kInner;
  const KeySpec* build_key = nullptr;
  const KeySpec* probe_key = nullptr;
  uint32_t build_stride = 0;  // spill tuple stride incl. 8-byte hash prefix
  uint32_t probe_stride = 0;
  int hash_shift = 0;  // low hash bits already consumed by partitioning
  MemoryGovernor* governor = nullptr;
  SpillStats* stats = nullptr;
};

// Joins one spilled partition pair, recursing when the build side still
// exceeds the budget. Returns the number of matched probe tuples (for the
// join's probe_matched counter). Single-threaded per pair; callers claim
// pairs from a shared cursor to parallelize across pairs.
uint64_t ProcessSpilledPair(const SpillJoinSpec& spec, SpillPartition& build,
                            SpillPartition& probe, SpillEmitter& emit,
                            int depth = 0);

// Runtime state of one hybrid join: which of the `fanout` partitions were
// evicted, their build/probe spill files, a claim cursor for cooperative
// pair processing, and a once-per-join barrier for joins whose spilled
// pairs are processed inside an operator Close (BHJ).
class SpillJoinState {
 public:
  // `build_stride`/`probe_stride`: spill tuple strides incl. hash prefix.
  SpillJoinState(int fanout, uint32_t build_stride, uint32_t probe_stride);

  int fanout() const { return fanout_; }
  uint32_t build_stride() const { return build_stride_; }
  uint32_t probe_stride() const { return probe_stride_; }

  void MarkSpilled(int p);
  bool IsSpilled(int p) const { return spilled_[p] != 0; }
  int num_spilled() const { return static_cast<int>(spilled_list_.size()); }
  int spilled_at(int i) const { return spilled_list_[i]; }

  SpillPartition& build(int p) { return *build_parts_[p]; }
  SpillPartition& probe(int p) { return *probe_parts_[p]; }

  void FinishBuildWrite();
  void FinishProbeWrite();

  // Claims the next spilled partition id, or -1 when all are taken.
  int ClaimPair() {
    int i = cursor_.fetch_add(1, std::memory_order_relaxed);
    return i < num_spilled() ? spilled_list_[i] : -1;
  }

  // Blocks until `expected` workers arrived; the last arrival flushes the
  // probe-side spill writers before releasing everyone.
  void AwaitProbeWorkers(int expected);

  SpillStats stats;

 private:
  int fanout_;
  uint32_t build_stride_;
  uint32_t probe_stride_;
  std::vector<uint8_t> spilled_;
  std::vector<int> spilled_list_;
  std::vector<std::unique_ptr<SpillPartition>> build_parts_;
  std::vector<std::unique_ptr<SpillPartition>> probe_parts_;
  std::atomic<int> cursor_{0};
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  bool barrier_open_ = false;
};

// Observability snapshot; a null state yields the default (not-spilled)
// record, so join CollectMetrics can call this unconditionally.
inline SpillMetrics SnapshotSpill(const SpillJoinState* state) {
  SpillMetrics m;
  if (state == nullptr) return m;
  const SpillStats& s = state->stats;
  m.spilled = true;
  m.partitions_spilled = s.partitions_spilled;
  m.partitions_total = s.partitions_total;
  m.build_tuples_spilled =
      s.build_tuples_spilled.load(std::memory_order_relaxed);
  m.probe_tuples_spilled =
      s.probe_tuples_spilled.load(std::memory_order_relaxed);
  m.bytes_written = s.bytes_written.load(std::memory_order_relaxed);
  m.bytes_read = s.bytes_read.load(std::memory_order_relaxed);
  m.max_recursion_depth = s.max_depth.load(std::memory_order_relaxed);
  m.compressed = s.compressed;
  m.physical_bytes_written =
      s.physical_bytes_written.load(std::memory_order_relaxed);
  m.physical_bytes_read = s.physical_bytes_read.load(std::memory_order_relaxed);
  return m;
}

}  // namespace pjoin

#endif  // PJOIN_SPILL_SPILL_JOIN_H_
