#include "spill/spill_page.h"

#include <cstring>

#include "util/check.h"

namespace pjoin {
namespace {

constexpr std::byte kModeRaw{0};
constexpr std::byte kModePlaneRle{1};

// Plane-RLE encodes `data` into `out` (which already holds the mode byte).
// Returns false (leaving `out` truncated back to just the mode byte) as soon
// as the encoding would reach raw size — no point finishing a losing page.
bool TryEncodePlaneRle(const std::byte* data, size_t bytes, uint32_t stride,
                       std::vector<std::byte>* out) {
  const size_t mode_pos = out->size() - 1;
  const size_t budget = mode_pos + bytes;  // must stay strictly below
  const size_t tuples = bytes / stride;
  for (uint32_t b = 0; b < stride; ++b) {
    size_t i = 0;
    while (i < tuples) {
      const std::byte v = data[i * stride + b];
      size_t run = 1;
      while (run < 255 && i + run < tuples &&
             data[(i + run) * stride + b] == v) {
        ++run;
      }
      if (out->size() + 2 > budget) {
        out->resize(mode_pos + 1);
        return false;
      }
      out->push_back(static_cast<std::byte>(run));
      out->push_back(v);
      i += run;
    }
  }
  return true;
}

}  // namespace

void EncodeSpillPage(const std::byte* data, size_t bytes, uint32_t stride,
                     std::vector<std::byte>* out) {
  PJOIN_DCHECK(bytes % stride == 0);
  out->push_back(kModePlaneRle);
  if (TryEncodePlaneRle(data, bytes, stride, out)) return;
  out->back() = kModeRaw;
  const size_t old = out->size();
  out->resize(old + bytes);
  std::memcpy(out->data() + old, data, bytes);
}

void DecodeSpillPage(const std::byte* src, size_t enc_bytes, size_t raw_bytes,
                     uint32_t stride, std::byte* dst) {
  PJOIN_CHECK(enc_bytes >= 1);
  const std::byte mode = src[0];
  if (mode == kModeRaw) {
    PJOIN_CHECK(enc_bytes == raw_bytes + 1);
    std::memcpy(dst, src + 1, raw_bytes);
    return;
  }
  PJOIN_CHECK(mode == kModePlaneRle);
  const size_t tuples = raw_bytes / stride;
  size_t pos = 1;
  for (uint32_t b = 0; b < stride; ++b) {
    size_t i = 0;
    while (i < tuples) {
      PJOIN_CHECK(pos + 2 <= enc_bytes);
      const size_t run = static_cast<size_t>(src[pos]);
      const std::byte v = src[pos + 1];
      pos += 2;
      PJOIN_CHECK(run >= 1 && i + run <= tuples);
      for (size_t r = 0; r < run; ++r) dst[(i + r) * stride + b] = v;
      i += run;
    }
  }
  PJOIN_CHECK(pos == enc_bytes);
}

}  // namespace pjoin
