// Compressed spill page codec.
//
// A page is a block of fixed-stride spill tuples ([hash:8B][row][pad]).
// Encoding is a byte-plane transpose followed by run-length coding of each
// plane: byte b of every tuple forms one plane, and spill tuples are wide
// rows whose individual byte positions (key bytes, padding, code bytes from
// the encoding layer) repeat heavily down a partition. Planes that do not
// compress leave the page in raw mode, so the encoded size never exceeds
// raw size + 1 — the cheap-bandwidth-win argument of the robust hybrid hash
// join literature, applied to the spill path.
//
// The codec is framing-agnostic: callers (spill/spill_join.cc) store
// [raw_bytes:u32][enc_bytes:u32][payload] frames in the spill file and hand
// the payload here. Payload format: one mode byte (0 = raw, 1 = plane-RLE)
// followed by the data; plane-RLE data is, per plane, a sequence of
// (run_length:u8, value:u8) pairs covering the page's tuple count.
#ifndef PJOIN_SPILL_SPILL_PAGE_H_
#define PJOIN_SPILL_SPILL_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pjoin {

// Logical page capacity used by SpillPartition (bytes of raw tuples).
constexpr size_t kSpillPageBytes = 64 * 1024;

// Appends the encoded payload of one page (`bytes` raw bytes, a multiple of
// `stride`) to `out`. Picks plane-RLE when it is strictly smaller, raw mode
// otherwise.
void EncodeSpillPage(const std::byte* data, size_t bytes, uint32_t stride,
                     std::vector<std::byte>* out);

// Decodes a payload produced by EncodeSpillPage back into `raw_bytes` bytes
// at `dst`.
void DecodeSpillPage(const std::byte* src, size_t enc_bytes, size_t raw_bytes,
                     uint32_t stride, std::byte* dst);

}  // namespace pjoin

#endif  // PJOIN_SPILL_SPILL_PAGE_H_
