#include "stats/distinct_sketch.h"

#include <cmath>
#include <cstring>

#include "util/hash.h"

namespace pjoin {
namespace {

uint64_t HashCell(const Column& col, uint64_t row) {
  switch (col.type()) {
    case DataType::kInt64:
      return HashInt64(static_cast<uint64_t>(col.GetInt64(row)));
    case DataType::kInt32:
    case DataType::kDate:
      return HashInt64(static_cast<uint64_t>(
          static_cast<uint32_t>(col.GetInt32(row))));
    case DataType::kFloat64: {
      uint64_t bits;
      double v = col.GetFloat64(row);
      std::memcpy(&bits, &v, 8);
      return HashInt64(bits);
    }
    default:
      return HashBytes(col.Raw(row), col.width(), /*seed=*/0x5157u);
  }
}

}  // namespace

DistinctSketch::DistinctSketch() : registers_(1u << kPrecision, 0) {}

DistinctSketch DistinctSketch::Build(const Column& col) {
  DistinctSketch s;
  const uint64_t n = col.size();
  for (uint64_t row = 0; row < n; ++row) s.AddHash(HashCell(col, row));
  return s;
}

void DistinctSketch::AddHash(uint64_t hash) {
  const uint64_t m = 1u << kPrecision;
  const uint64_t idx = hash & (m - 1);
  const uint64_t rest = hash >> kPrecision;
  // Rank of the first set bit in the remaining 52 bits, 1-based; an all-zero
  // remainder ranks past the end.
  uint8_t rank = 1;
  uint64_t bits = rest;
  while ((bits & 1) == 0 && rank <= 64 - kPrecision) {
    ++rank;
    bits >>= 1;
  }
  if (rank > registers_[idx]) registers_[idx] = rank;
  if (exact_alive_) {
    exact_.insert(hash);
    if (exact_.size() > kExactCap) {
      exact_.clear();
      exact_alive_ = false;
    }
  }
}

uint64_t DistinctSketch::Estimate() const {
  if (exact_alive_) return exact_.size();
  const double m = static_cast<double>(registers_.size());
  const double alpha = 0.7213 / (1.0 + 1.079 / m);
  double sum = 0;
  uint64_t zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  double est = alpha * m * m / sum;
  if (est <= 2.5 * m && zeros > 0) {
    est = m * std::log(m / static_cast<double>(zeros));
  }
  return static_cast<uint64_t>(std::llround(est));
}

}  // namespace pjoin
