// Distinct-count estimation: exact up to a cap, HyperLogLog beyond it.
//
// Small domains (dimension keys, flag columns, every test fixture) stay in
// an exact hash set, so their reported counts — and everything estimated
// from them — are deterministic integers. Once the set outgrows the cap it
// is dropped and the HyperLogLog registers, maintained from the start, take
// over with ~1.6% standard error (2^12 registers).
#ifndef PJOIN_STATS_DISTINCT_SKETCH_H_
#define PJOIN_STATS_DISTINCT_SKETCH_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "storage/column.h"

namespace pjoin {

class DistinctSketch {
 public:
  DistinctSketch();

  // Builds a sketch over every row of `col` (all types; char columns hash
  // their padded bytes).
  static DistinctSketch Build(const Column& col);

  // Feed one pre-hashed value.
  void AddHash(uint64_t hash);

  // Estimated number of distinct values. Exact while the exact set is alive.
  uint64_t Estimate() const;

  bool exact() const { return exact_alive_; }

 private:
  static constexpr int kPrecision = 12;  // 4096 registers
  static constexpr uint64_t kExactCap = 8192;

  std::vector<uint8_t> registers_;
  std::unordered_set<uint64_t> exact_;
  bool exact_alive_ = true;
};

}  // namespace pjoin

#endif  // PJOIN_STATS_DISTINCT_SKETCH_H_
