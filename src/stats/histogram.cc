#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace pjoin {
namespace {

// Sampling cap shared with the scan-range estimator: full scan below it,
// fixed-stride (deterministic, order-insensitive) sample above it.
constexpr uint64_t kHistogramSampleCap = 65536;

bool NumericValue(const Column& col, uint64_t row, double* out) {
  switch (col.type()) {
    case DataType::kInt64:
      *out = static_cast<double>(col.GetInt64(row));
      return true;
    case DataType::kInt32:
    case DataType::kDate:
      *out = static_cast<double>(col.GetInt32(row));
      return true;
    case DataType::kFloat64:
      *out = col.GetFloat64(row);
      return true;
    default:
      return false;
  }
}

}  // namespace

EqualHeightHistogram EqualHeightHistogram::Build(const Column& col,
                                                int buckets) {
  EqualHeightHistogram h;
  const uint64_t n = col.size();
  if (n == 0 || buckets < 1) return h;

  double probe;
  if (!NumericValue(col, 0, &probe)) return h;
  h.integral_ = col.type() != DataType::kFloat64;

  const uint64_t stride = n <= kHistogramSampleCap ? 1 : n / kHistogramSampleCap;
  std::vector<double> sample;
  sample.reserve(n / stride + 1);
  for (uint64_t row = 0; row < n; row += stride) {
    double v;
    NumericValue(col, row, &v);
    sample.push_back(v);
  }
  std::sort(sample.begin(), sample.end());

  const double scale = static_cast<double>(n) / sample.size();
  const uint64_t target = (sample.size() + buckets - 1) / buckets;

  // Walk runs of equal values; close a bucket once it holds >= target sampled
  // rows. Boundaries always land between runs, so each value lives in exactly
  // one bucket and a heavy value becomes a singleton bucket.
  Bucket cur;
  uint64_t cur_rows = 0;
  size_t i = 0;
  while (i < sample.size()) {
    size_t j = i;
    while (j < sample.size() && sample[j] == sample[i]) ++j;
    const uint64_t run = j - i;
    if (cur_rows == 0) cur.lo = sample[i];
    cur.hi = sample[i];
    cur.distinct += 1;
    cur_rows += run;
    if (cur_rows >= target) {
      cur.rows = cur_rows * scale;
      h.buckets_.push_back(cur);
      cur = Bucket();
      cur_rows = 0;
    }
    i = j;
  }
  if (cur_rows > 0) {
    cur.rows = cur_rows * scale;
    h.buckets_.push_back(cur);
  }

  h.min_ = h.buckets_.front().lo;
  h.max_ = h.buckets_.back().hi;
  for (const Bucket& b : h.buckets_) h.total_rows_ += b.rows;
  return h;
}

double EqualHeightHistogram::EqFraction(double v) const {
  if (!valid() || v < min_ || v > max_ || total_rows_ <= 0) return 0.0;
  for (const Bucket& b : buckets_) {
    if (v < b.lo) return 0.0;  // fell in a gap between buckets
    if (v <= b.hi) {
      const double per_value = b.rows / static_cast<double>(b.distinct);
      return per_value / total_rows_;
    }
  }
  return 0.0;
}

double EqualHeightHistogram::LeFraction(double v) const {
  if (!valid() || total_rows_ <= 0) return 0.0;
  if (v < min_) return 0.0;
  if (v >= max_) return 1.0;
  double rows = 0;
  for (const Bucket& b : buckets_) {
    if (b.hi <= v) {
      rows += b.rows;
      continue;
    }
    if (v >= b.lo) {
      // Straddling bucket: interpolate on the dense value count for integer
      // domains, continuously for floating point.
      double frac;
      if (integral_) {
        frac = (std::floor(v) - b.lo + 1.0) / (b.hi - b.lo + 1.0);
      } else {
        frac = b.hi > b.lo ? (v - b.lo) / (b.hi - b.lo) : 1.0;
      }
      if (frac < 0) frac = 0;
      if (frac > 1) frac = 1;
      rows += b.rows * frac;
    }
    break;
  }
  const double f = rows / total_rows_;
  return f < 0 ? 0 : (f > 1 ? 1 : f);
}

double EqualHeightHistogram::BetweenFraction(double lo, double hi) const {
  if (!valid() || hi < lo) return 0.0;
  const double upper = LeFraction(hi);
  const double lower = integral_ ? LeFraction(lo - 1.0) : LeFraction(lo);
  const double f = upper - lower;
  return f < 0 ? 0 : f;
}

std::string EqualHeightHistogram::DebugString() const {
  std::string out;
  char line[128];
  for (const Bucket& b : buckets_) {
    std::snprintf(line, sizeof(line), "[%.6g,%.6g] rows=%.2f distinct=%llu\n",
                  b.lo, b.hi, b.rows,
                  static_cast<unsigned long long>(b.distinct));
    out += line;
  }
  return out;
}

}  // namespace pjoin
