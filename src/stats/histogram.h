// Equal-height histograms over numeric columns.
//
// The builder sorts a deterministic sample of the column (the full column up
// to a cap, a fixed-stride sample beyond it) and closes a bucket whenever the
// accumulated row count reaches the equal-height target — but only on a
// value boundary, so no value ever spans two buckets. Heavy values therefore
// get singleton buckets automatically (the Hyrise chunk-statistics histograms
// snap boundaries the same way), which is what makes equality estimates on
// Zipf-distributed keys accurate: the hot key's bucket stores its exact
// sampled count instead of averaging it with cold neighbours.
#ifndef PJOIN_STATS_HISTOGRAM_H_
#define PJOIN_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/column.h"

namespace pjoin {

class EqualHeightHistogram {
 public:
  struct Bucket {
    double lo = 0;        // smallest value in the bucket (inclusive)
    double hi = 0;        // largest value in the bucket (inclusive)
    double rows = 0;      // rows covered, scaled to the full column
    uint64_t distinct = 0;  // distinct values seen in the sampled bucket
  };

  // Builds a histogram with at most `buckets` buckets from `col`. Non-numeric
  // columns yield an empty histogram (valid() == false).
  static EqualHeightHistogram Build(const Column& col, int buckets);

  bool valid() const { return !buckets_.empty(); }
  double min() const { return min_; }
  double max() const { return max_; }
  double total_rows() const { return total_rows_; }
  bool integral() const { return integral_; }
  const std::vector<Bucket>& buckets() const { return buckets_; }

  // Estimated fraction of rows with value == v, in [0, 1]. Within a bucket
  // the rows are assumed evenly spread over its distinct values; a singleton
  // bucket answers exactly (up to sampling).
  double EqFraction(double v) const;

  // Estimated fraction of rows with value <= v (inclusive). Integral columns
  // interpolate on the dense value count (hi - lo + 1); floating-point
  // columns interpolate continuously.
  double LeFraction(double v) const;

  // Fraction in [lo, hi], both inclusive.
  double BetweenFraction(double lo, double hi) const;

  // Stable textual form (used by the determinism tests).
  std::string DebugString() const;

 private:
  std::vector<Bucket> buckets_;
  double min_ = 0;
  double max_ = 0;
  double total_rows_ = 0;
  bool integral_ = true;
};

}  // namespace pjoin

#endif  // PJOIN_STATS_HISTOGRAM_H_
