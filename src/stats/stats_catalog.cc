#include "stats/stats_catalog.h"

#include <algorithm>

#include "storage/encoded_segment.h"
#include "util/env.h"
#include "util/hash.h"

namespace pjoin {

StatsCatalog& StatsCatalog::Global() {
  static StatsCatalog* catalog = new StatsCatalog();
  return *catalog;
}

TableStats StatsCatalog::Collect(const Table& table, int buckets) {
  TableStats ts;
  ts.rows = table.num_rows();
  ts.buckets = buckets;
  ts.columns.resize(table.schema().num_columns());
  for (int c = 0; c < table.schema().num_columns(); ++c) {
    const Column& col = table.column(c);
    ColumnStats& cs = ts.columns[c];
    // A dictionary, when the encoding layer built one, is an exact distinct
    // count for free; otherwise fall back to the sketch estimate.
    const EncodedColumn* enc = EncodingCatalog::Global().GetColumn(table, c);
    if (enc != nullptr && enc->kind == EncodedColumn::Kind::kDict) {
      cs.distinct = enc->ndv;
      cs.distinct_exact = true;
    } else {
      DistinctSketch sketch = DistinctSketch::Build(col);
      cs.distinct = sketch.Estimate();
      cs.distinct_exact = sketch.exact();
    }
    cs.histogram = EqualHeightHistogram::Build(col, buckets);
    if (cs.histogram.valid()) {
      cs.numeric = true;
      cs.min = cs.histogram.min();
      cs.max = cs.histogram.max();
    }
  }
  return ts;
}

const TableStats* StatsCatalog::Get(const Table& table) {
  if (!StatsEnabled()) return nullptr;
  if (table.num_rows() == 0) return nullptr;
  const int buckets = StatsBuckets();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(&table);
  if (it != cache_.end()) {
    const Entry& entry = it->second;
    if (entry.stats->rows == table.num_rows() &&
        entry.stats->buckets == buckets &&
        entry.fingerprint == TableFingerprint(table)) {
      return entry.stats.get();
    }
  }
  Entry fresh;
  fresh.stats = std::make_unique<TableStats>(Collect(table, buckets));
  fresh.fingerprint = TableFingerprint(table);
  const TableStats* out = fresh.stats.get();
  cache_[&table] = std::move(fresh);
  return out;
}

void StatsCatalog::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

void StatsCatalog::InvalidateTable(const Table& table) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.erase(&table);
}

uint64_t ColumnDistinctCount(const Table& table, int col) {
  const TableStats* ts = StatsCatalog::Global().Get(table);
  if (ts == nullptr || col < 0 ||
      col >= static_cast<int>(ts->columns.size())) {
    return 0;
  }
  return ts->columns[col].distinct;
}

}  // namespace pjoin
