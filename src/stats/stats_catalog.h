// Process-wide catalog of per-table, per-column statistics.
//
// Statistics are collected lazily, the first time an estimator asks about a
// table, and cached keyed by the Table object. Construction is deterministic
// (sorted full-or-strided samples, fixed hash seeds), so two collections of
// the same table produce identical statistics and EXPLAIN goldens stay
// stable. PJOIN_STATS=0 disables the subsystem: Get() returns nullptr and
// every estimator falls back to its pre-statistics heuristic.
#ifndef PJOIN_STATS_STATS_CATALOG_H_
#define PJOIN_STATS_STATS_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "stats/distinct_sketch.h"
#include "stats/histogram.h"
#include "storage/table.h"

namespace pjoin {

struct ColumnStats {
  bool numeric = false;      // histogram/min/max populated
  double min = 0;
  double max = 0;
  uint64_t null_count = 0;   // storage has no NULLs today; kept for layout
  uint64_t distinct = 0;
  bool distinct_exact = false;
  EqualHeightHistogram histogram;  // valid() only for numeric columns
};

struct TableStats {
  uint64_t rows = 0;
  int buckets = 0;                   // bucket target the stats were built with
  std::vector<ColumnStats> columns;  // parallel to the table schema
};

class StatsCatalog {
 public:
  static StatsCatalog& Global();

  // Statistics for `table`, collecting them on first use. Returns nullptr
  // when PJOIN_STATS=0 (checked per call, so scoped env changes behave) or
  // when the table is empty. Cached entries are re-collected if the table
  // grew since collection or the bucket knob changed.
  const TableStats* Get(const Table& table);

  // Collects fresh statistics for `table` without touching the cache.
  // Exposed for the determinism tests.
  static TableStats Collect(const Table& table, int buckets);

  // Drops every cached entry (tests create short-lived tables; their
  // addresses can be reused).
  void Invalidate();

  // Drops the cached entry for one table. Get() already detects content
  // changes via the fingerprint; this is for callers that mutate a table
  // in place and want the stale entry released immediately.
  void InvalidateTable(const Table& table);

 private:
  // The fingerprint lives beside the stats (not inside a TableStats
  // subclass): TableStats has no virtual destructor, so deleting a derived
  // cache entry through the base pointer would be undefined behaviour.
  struct Entry {
    uint64_t fingerprint = 0;
    std::unique_ptr<TableStats> stats;
  };
  std::mutex mu_;
  std::map<const Table*, Entry> cache_;
};

// Convenience: distinct count of `table.column(col)` or 0 when stats are
// unavailable.
uint64_t ColumnDistinctCount(const Table& table, int col);

}  // namespace pjoin

#endif  // PJOIN_STATS_STATS_CATALOG_H_
