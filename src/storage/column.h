// A single column stored as a contiguous array of fixed-width values.
//
// Umbra stores relations column-wise in main memory (Section 4.2 of the
// paper); table scans read only the columns a query needs and stitch them
// into row-format tuples that flow through the pipeline. Late
// materialization re-fetches columns from here by tuple id after a join.
#ifndef PJOIN_STORAGE_COLUMN_H_
#define PJOIN_STORAGE_COLUMN_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "storage/types.h"
#include "util/check.h"

namespace pjoin {

class Column {
 public:
  Column() = default;
  Column(DataType type, uint32_t char_len = 0)
      : type_(type), width_(TypeWidth(type, char_len)) {}

  DataType type() const { return type_; }
  uint32_t width() const { return width_; }
  uint64_t size() const { return width_ == 0 ? 0 : data_.size() / width_; }

  void Reserve(uint64_t rows) { data_.reserve(rows * width_); }

  void AppendInt64(int64_t v) {
    PJOIN_DCHECK(type_ == DataType::kInt64);
    AppendRaw(&v, 8);
  }
  void AppendInt32(int32_t v) {
    PJOIN_DCHECK(type_ == DataType::kInt32 || type_ == DataType::kDate);
    AppendRaw(&v, 4);
  }
  void AppendFloat64(double v) {
    PJOIN_DCHECK(type_ == DataType::kFloat64);
    AppendRaw(&v, 8);
  }
  // Space-pads or truncates `s` to the column width.
  void AppendString(const std::string& s) {
    PJOIN_DCHECK(type_ == DataType::kChar);
    size_t n = s.size() < width_ ? s.size() : width_;
    size_t old = data_.size();
    data_.resize(old + width_, std::byte{' '});
    std::memcpy(data_.data() + old, s.data(), n);
  }

  int64_t GetInt64(uint64_t row) const {
    int64_t v;
    std::memcpy(&v, Raw(row), 8);
    return v;
  }
  int32_t GetInt32(uint64_t row) const {
    int32_t v;
    std::memcpy(&v, Raw(row), 4);
    return v;
  }
  double GetFloat64(uint64_t row) const {
    double v;
    std::memcpy(&v, Raw(row), 8);
    return v;
  }
  std::string GetString(uint64_t row) const {
    return std::string(reinterpret_cast<const char*>(Raw(row)), width_);
  }

  const std::byte* Raw(uint64_t row) const {
    return data_.data() + row * width_;
  }
  const std::byte* data() const { return data_.data(); }

 private:
  void AppendRaw(const void* src, size_t n) {
    size_t old = data_.size();
    data_.resize(old + n);
    std::memcpy(data_.data() + old, src, n);
  }

  DataType type_ = DataType::kInt64;
  uint32_t width_ = 8;
  std::vector<std::byte> data_;
};

}  // namespace pjoin

#endif  // PJOIN_STORAGE_COLUMN_H_
