#include "storage/encoded_segment.h"

#include <algorithm>
#include <string>

#include "util/env.h"

namespace pjoin {
namespace {

// Dictionaries above this many distinct values stop paying for themselves
// (the dictionary itself becomes the working set) and are abandoned.
constexpr uint64_t kMaxDictEntries = 1ull << 20;

void AppendCode(std::vector<std::byte>* out, uint32_t code,
                uint32_t code_width) {
  size_t old = out->size();
  out->resize(old + code_width);
  std::memcpy(out->data() + old, &code, code_width);
}

uint32_t CodeWidthFor(uint64_t range) {
  if (range < (1ull << 8)) return 1;
  if (range < (1ull << 16)) return 2;
  if (range < (1ull << 32)) return 4;
  return 0;
}

// Dictionary-encodes a kChar column. The dictionary is sorted by raw byte
// order (std::map over the padded fixed-width strings), so equal plain
// values map to equal codes and code order matches memcmp order.
std::unique_ptr<EncodedColumn> EncodeDict(const ColumnDef& def,
                                          const Column& col, uint64_t rows) {
  std::map<std::string, uint32_t> values;
  for (uint64_t r = 0; r < rows; ++r) {
    values.emplace(col.GetString(r), 0);
    if (values.size() > kMaxDictEntries) return nullptr;
  }
  const uint64_t ndv = values.size();
  const uint32_t code_width = CodeWidthFor(ndv == 0 ? 0 : ndv - 1);
  // Codes must be strictly narrower than the values they replace.
  if (code_width == 0 || code_width >= col.width()) return nullptr;

  auto enc = std::make_unique<EncodedColumn>();
  enc->kind = EncodedColumn::Kind::kDict;
  enc->value_width = col.width();
  enc->code_width = code_width;
  enc->rows = rows;
  enc->ndv = ndv;
  enc->dict = std::make_unique<Table>(
      "dict", Schema({{def.name, DataType::kChar, col.width()}}));
  enc->dict->Reserve(ndv);
  uint32_t next = 0;
  for (auto& [value, code] : values) {
    code = next++;
    enc->dict->column(0).AppendString(value);
    enc->dict->FinishRow();
  }
  enc->codes.reserve(rows * code_width);
  for (uint64_t r = 0; r < rows; ++r) {
    AppendCode(&enc->codes, values.find(col.GetString(r))->second, code_width);
  }
  return enc;
}

// Frame-of-reference encodes an integer column: value = min + code.
std::unique_ptr<EncodedColumn> EncodeFor(const Column& col, uint64_t rows) {
  const bool wide = col.width() == 8;
  int64_t min = wide ? col.GetInt64(0) : col.GetInt32(0);
  int64_t max = min;
  for (uint64_t r = 1; r < rows; ++r) {
    const int64_t v = wide ? col.GetInt64(r) : col.GetInt32(r);
    min = std::min(min, v);
    max = std::max(max, v);
  }
  const uint64_t range =
      static_cast<uint64_t>(max) - static_cast<uint64_t>(min);
  const uint32_t code_width = CodeWidthFor(range);
  if (code_width == 0 || code_width >= col.width()) return nullptr;

  auto enc = std::make_unique<EncodedColumn>();
  enc->kind = EncodedColumn::Kind::kFor;
  enc->value_width = col.width();
  enc->code_width = code_width;
  enc->rows = rows;
  enc->ref = min;
  enc->codes.reserve(rows * code_width);
  for (uint64_t r = 0; r < rows; ++r) {
    const int64_t v = wide ? col.GetInt64(r) : col.GetInt32(r);
    AppendCode(&enc->codes,
               static_cast<uint32_t>(static_cast<uint64_t>(v) -
                                     static_cast<uint64_t>(min)),
               code_width);
  }
  return enc;
}

}  // namespace

EncodingCatalog& EncodingCatalog::Global() {
  static EncodingCatalog* catalog = new EncodingCatalog();
  return *catalog;
}

EncodedTable EncodingCatalog::Encode(const Table& table) {
  EncodedTable et;
  et.rows = table.num_rows();
  et.columns.resize(table.schema().num_columns());
  if (et.rows == 0) return et;
  for (int c = 0; c < table.schema().num_columns(); ++c) {
    const ColumnDef& def = table.schema().column(c);
    const Column& col = table.column(c);
    switch (def.type) {
      case DataType::kChar:
        et.columns[c] = EncodeDict(def, col, et.rows);
        break;
      case DataType::kInt64:
      case DataType::kInt32:
      case DataType::kDate:
        et.columns[c] = EncodeFor(col, et.rows);
        break;
      case DataType::kFloat64:
        break;  // doubles stay plain
    }
  }
  return et;
}

const EncodedTable* EncodingCatalog::Get(const Table& table) {
  if (!EncodingEnabled()) return nullptr;
  if (table.num_rows() < EncodingMinRows()) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(&table);
  if (it != cache_.end()) {
    const Entry& entry = it->second;
    if (entry.fingerprint == TableFingerprint(table)) {
      return entry.encoded->any_encoded() ? entry.encoded.get() : nullptr;
    }
  }
  Entry fresh;
  fresh.encoded = std::make_unique<EncodedTable>(Encode(table));
  fresh.fingerprint = TableFingerprint(table);
  const EncodedTable* out =
      fresh.encoded->any_encoded() ? fresh.encoded.get() : nullptr;
  cache_[&table] = std::move(fresh);
  return out;
}

const EncodedColumn* EncodingCatalog::GetColumn(const Table& table, int col) {
  const EncodedTable* et = Get(table);
  return et == nullptr ? nullptr : et->column(col);
}

void EncodingCatalog::Invalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

}  // namespace pjoin
