// Encoded column segments: dictionary and frame-of-reference codes.
//
// The paper's cost model is bytes-moved-per-tuple: a join wins or loses on
// how much payload it hauls through the memory hierarchy. Encoding shrinks
// the haul at the source — scans read fixed-width codes instead of plain
// values, predicates evaluate against the dictionary (once per distinct
// value) or a code interval, and dictionary-encoded join keys probe on dense
// word codes the SIMD kernels already chew through. Plain values are
// materialized only for surviving tuples (late materialization as the
// default path, not a bench trick).
//
// Two encodings cover the engine's types:
//  - kDict (kChar columns): codes index a dictionary sorted by raw byte
//    order. Equal raw values get equal codes, so code equality is exactly
//    KeySpec::Equals on the plain values — the legality basis for
//    join-on-codes.
//  - kFor (kInt64/kInt32/kDate columns): value = ref + code, codes are
//    unsigned deltas narrow enough for 1/2/4 bytes. FOR never changes how a
//    value leaves the scan (deltas are decoded on emission); it only shrinks
//    the scan's read traffic.
//
// Encoding is per-table, lazy, and cached (mirror of StatsCatalog): the
// first scan of a table encodes it, keyed by the table address and
// revalidated by content fingerprint so in-place appends re-encode.
// PJOIN_ENCODING=0 disables the subsystem; tables below
// PJOIN_ENCODING_MIN_ROWS stay plain.
#ifndef PJOIN_STORAGE_ENCODED_SEGMENT_H_
#define PJOIN_STORAGE_ENCODED_SEGMENT_H_

#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/table.h"

namespace pjoin {

struct EncodedColumn {
  enum class Kind : uint8_t { kDict, kFor };
  Kind kind = Kind::kDict;
  uint32_t value_width = 0;  // bytes of one plain value
  uint32_t code_width = 0;   // 1, 2, or 4 bytes per code
  uint64_t rows = 0;

  // rows * code_width bytes, little-endian codes.
  std::vector<std::byte> codes;

  // kDict: dictionary values in raw-byte sort order, stored as a
  // single-column table (same column name/type as the source) so predicate
  // evaluation over the dictionary reuses EvalPredicate bit-identically.
  std::unique_ptr<Table> dict;
  uint64_t ndv = 0;

  // kFor: plain value = ref + code.
  int64_t ref = 0;

  uint32_t CodeAt(uint64_t row) const {
    uint32_t code = 0;
    std::memcpy(&code, codes.data() + row * code_width, code_width);
    return code;
  }

  // kDict only: raw bytes of the dictionary value for `code`.
  const std::byte* DictValue(uint32_t code) const {
    return dict->column(0).Raw(code);
  }

  uint64_t encoded_bytes() const { return rows * code_width; }
  uint64_t plain_bytes() const { return rows * value_width; }
};

struct EncodedTable {
  uint64_t rows = 0;
  // Parallel to the table schema; null where the column stays plain.
  std::vector<std::unique_ptr<EncodedColumn>> columns;

  const EncodedColumn* column(int i) const {
    return i >= 0 && i < static_cast<int>(columns.size()) ? columns[i].get()
                                                          : nullptr;
  }
  bool any_encoded() const {
    for (const auto& c : columns) {
      if (c != nullptr) return true;
    }
    return false;
  }
};

class EncodingCatalog {
 public:
  static EncodingCatalog& Global();

  // Encoded segments for `table`, encoding on first use. Returns nullptr
  // when PJOIN_ENCODING=0 (checked per call, so scoped env changes behave),
  // when the table is below PJOIN_ENCODING_MIN_ROWS, or when no column
  // benefits from encoding. Cached entries are re-encoded when the content
  // fingerprint changes (address reuse or in-place append).
  const EncodedTable* Get(const Table& table);

  // Encoded segments for one column, or nullptr if it stays plain.
  const EncodedColumn* GetColumn(const Table& table, int col);

  // Encodes `table` without touching the cache (determinism tests).
  static EncodedTable Encode(const Table& table);

  // Drops every cached entry.
  void Invalidate();

 private:
  struct Entry {
    uint64_t fingerprint = 0;
    std::unique_ptr<EncodedTable> encoded;
  };
  std::mutex mu_;
  std::map<const Table*, Entry> cache_;
};

}  // namespace pjoin

#endif  // PJOIN_STORAGE_ENCODED_SEGMENT_H_
