#include "storage/row_buffer.h"

#include <cstring>
#include <utility>

#include "spill/memory_governor.h"
#include "util/check.h"

namespace pjoin {

RowBuffer::RowBuffer(uint32_t stride, uint32_t page_rows)
    : stride_(stride), page_rows_(page_rows) {
  PJOIN_CHECK(stride > 0);
  PJOIN_CHECK(page_rows > 0);
}

RowBuffer::~RowBuffer() { ReleaseAccounting(); }

RowBuffer& RowBuffer::operator=(RowBuffer&& other) noexcept {
  if (this != &other) {
    ReleaseAccounting();
    stride_ = other.stride_;
    page_rows_ = other.page_rows_;
    size_ = other.size_;
    pages_ = std::move(other.pages_);
    other.size_ = 0;
  }
  return *this;
}

std::byte* RowBuffer::Append(const std::byte* row) {
  std::byte* dst = AppendSlot();
  std::memcpy(dst, row, stride_);
  return dst;
}

std::byte* RowBuffer::AppendSlot() {
  if (pages_.empty() || pages_.back().count == page_rows_) AddPage();
  Page& page = pages_.back();
  std::byte* dst = page.data.data() + page.count * stride_;
  ++page.count;
  ++size_;
  return dst;
}

void RowBuffer::AddPage() {
  Page page;
  page.data.Allocate(static_cast<size_t>(page_rows_) * stride_);
  pages_.push_back(std::move(page));
  // Governor accounting is per page (dozens of KiB), never per row.
  MemoryGovernor::Global().Account(PageBytes());
}

void RowBuffer::ReleaseAccounting() {
  if (!pages_.empty()) {
    MemoryGovernor::Global().Release(pages_.size() * PageBytes());
  }
}

void RowBuffer::Clear() {
  ReleaseAccounting();
  pages_.clear();
  size_ = 0;
}

}  // namespace pjoin
