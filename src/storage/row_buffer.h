// Paged, append-only storage of fixed-stride rows.
//
// The buffered hash join materializes its build side here (one RowBuffer per
// worker) before the bulk hash-table build; sinks also use it to collect
// final results. Pages are cache-line aligned and never move, so row
// pointers stay valid for the lifetime of the buffer.
#ifndef PJOIN_STORAGE_ROW_BUFFER_H_
#define PJOIN_STORAGE_ROW_BUFFER_H_

#include <cstdint>
#include <vector>

#include "util/aligned_buffer.h"

namespace pjoin {

class RowBuffer {
 public:
  // `stride` is the row width in bytes; `page_rows` rows per page.
  explicit RowBuffer(uint32_t stride, uint32_t page_rows = 8192);
  ~RowBuffer();

  RowBuffer(RowBuffer&&) = default;
  // Custom move-assign: the replaced pages must be un-accounted from the
  // memory governor before they are freed.
  RowBuffer& operator=(RowBuffer&& other) noexcept;

  // Appends one row, returning the destination pointer.
  std::byte* Append(const std::byte* row);

  // Reserves space for one row and returns the pointer (caller fills it).
  std::byte* AppendSlot();

  uint64_t size() const { return size_; }
  uint32_t stride() const { return stride_; }
  uint64_t TotalBytes() const { return size_ * stride_; }

  // Invokes fn(rows, count) for every page; rows are contiguous per page.
  template <typename Fn>
  void ForEachPage(Fn&& fn) const {
    for (const Page& p : pages_) {
      if (p.count > 0) fn(p.data.data(), p.count);
    }
  }

  // Random access by index (row i). O(1): pages have fixed capacity.
  const std::byte* RowAt(uint64_t i) const {
    return pages_[i / page_rows_].data.data() + (i % page_rows_) * stride_;
  }
  std::byte* MutableRowAt(uint64_t i) {
    return pages_[i / page_rows_].data.data() + (i % page_rows_) * stride_;
  }

  void Clear();

 private:
  struct Page {
    AlignedBuffer data;
    uint32_t count = 0;
  };

  void AddPage();
  // Reports all held page bytes back to the memory governor.
  void ReleaseAccounting();
  uint64_t PageBytes() const {
    return static_cast<uint64_t>(page_rows_) * stride_;
  }

  uint32_t stride_;
  uint32_t page_rows_;
  uint64_t size_ = 0;
  std::vector<Page> pages_;
};

}  // namespace pjoin

#endif  // PJOIN_STORAGE_ROW_BUFFER_H_
