#include "storage/row_layout.h"

namespace pjoin {

RowLayout::RowLayout(std::vector<RowField> fields)
    : fields_(std::move(fields)) {
  uint32_t offset = 0;
  for (auto& f : fields_) {
    f.offset = offset;
    offset += f.width;
  }
  stride_ = offset;
}

RowLayout RowLayout::FromSchema(const Schema& schema,
                                const std::vector<std::string>& columns) {
  std::vector<RowField> fields;
  fields.reserve(columns.size());
  for (const auto& name : columns) {
    const ColumnDef& def = schema.column(schema.IndexOf(name));
    fields.push_back(RowField{def.name, def.type, def.width(), 0});
  }
  return RowLayout(std::move(fields));
}

int RowLayout::IndexOf(const std::string& name) const {
  int idx = Find(name);
  PJOIN_CHECK_MSG(idx >= 0, name.c_str());
  return idx;
}

int RowLayout::Find(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace pjoin
