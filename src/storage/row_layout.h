// Row-format layout of tuples flowing through pipelines.
//
// A pipeline batch is an array of fixed-stride rows; RowLayout maps field
// names to byte offsets within a row. All accessors use memcpy, which GCC
// compiles to single loads/stores on x86, so fields need no alignment and
// rows can be tightly packed (tuple width is a first-order performance factor
// in the paper, so we do not waste padding here; the radix partitioner pads
// separately when it needs power-of-two strides for its write-combine
// buffers).
#ifndef PJOIN_STORAGE_ROW_LAYOUT_H_
#define PJOIN_STORAGE_ROW_LAYOUT_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "storage/schema.h"
#include "util/check.h"

namespace pjoin {

struct RowField {
  std::string name;
  DataType type = DataType::kInt64;
  uint32_t width = 8;
  uint32_t offset = 0;
};

class RowLayout {
 public:
  RowLayout() = default;
  explicit RowLayout(std::vector<RowField> fields);

  // Builds a layout from (subset of) schema columns.
  static RowLayout FromSchema(const Schema& schema,
                              const std::vector<std::string>& columns);

  uint32_t stride() const { return stride_; }
  int num_fields() const { return static_cast<int>(fields_.size()); }
  const RowField& field(int i) const { return fields_[i]; }
  const std::vector<RowField>& fields() const { return fields_; }

  int IndexOf(const std::string& name) const;
  int Find(const std::string& name) const;

  // Typed accessors by field index.
  int64_t GetInt64(const std::byte* row, int f) const {
    int64_t v;
    std::memcpy(&v, row + fields_[f].offset, 8);
    return v;
  }
  int32_t GetInt32(const std::byte* row, int f) const {
    int32_t v;
    std::memcpy(&v, row + fields_[f].offset, 4);
    return v;
  }
  double GetFloat64(const std::byte* row, int f) const {
    double v;
    std::memcpy(&v, row + fields_[f].offset, 8);
    return v;
  }
  const char* GetChar(const std::byte* row, int f) const {
    return reinterpret_cast<const char*>(row + fields_[f].offset);
  }
  std::string GetString(const std::byte* row, int f) const {
    return std::string(GetChar(row, f), fields_[f].width);
  }

  // Reads a numeric field widened to int64 (INT64/INT32/DATE).
  int64_t GetNumeric(const std::byte* row, int f) const {
    const RowField& fld = fields_[f];
    if (fld.width == 8) return GetInt64(row, f);
    return GetInt32(row, f);
  }

  void SetInt64(std::byte* row, int f, int64_t v) const {
    std::memcpy(row + fields_[f].offset, &v, 8);
  }
  void SetInt32(std::byte* row, int f, int32_t v) const {
    std::memcpy(row + fields_[f].offset, &v, 4);
  }
  void SetFloat64(std::byte* row, int f, double v) const {
    std::memcpy(row + fields_[f].offset, &v, 8);
  }
  void SetChar(std::byte* row, int f, const void* src) const {
    std::memcpy(row + fields_[f].offset, src, fields_[f].width);
  }

  // Copies field `src_f` of `src_row` (layout `src`) into field `dst_f`.
  void CopyField(std::byte* dst_row, int dst_f, const RowLayout& src,
                 const std::byte* src_row, int src_f) const {
    PJOIN_DCHECK(fields_[dst_f].width == src.fields_[src_f].width);
    std::memcpy(dst_row + fields_[dst_f].offset,
                src_row + src.fields_[src_f].offset, fields_[dst_f].width);
  }

 private:
  std::vector<RowField> fields_;
  uint32_t stride_ = 0;
};

}  // namespace pjoin

#endif  // PJOIN_STORAGE_ROW_LAYOUT_H_
