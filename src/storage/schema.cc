#include "storage/schema.h"

#include "util/check.h"

namespace pjoin {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (size_t j = i + 1; j < columns_.size(); ++j) {
      PJOIN_CHECK_MSG(columns_[i].name != columns_[j].name,
                      "duplicate column name in schema");
    }
  }
}

int Schema::IndexOf(const std::string& name) const {
  int idx = Find(name);
  PJOIN_CHECK_MSG(idx >= 0, name.c_str());
  return idx;
}

int Schema::Find(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace pjoin
