// Table schemas: ordered lists of named, typed columns.
#ifndef PJOIN_STORAGE_SCHEMA_H_
#define PJOIN_STORAGE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/types.h"

namespace pjoin {

struct ColumnDef {
  std::string name;
  DataType type = DataType::kInt64;
  uint32_t char_len = 0;  // only used for kChar

  uint32_t width() const { return TypeWidth(type, char_len); }
};

class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  // Index of column `name`; aborts if absent (schema mistakes are programming
  // errors in this system, not user input).
  int IndexOf(const std::string& name) const;

  // Index of column `name`, or -1 if absent.
  int Find(const std::string& name) const;

  const ColumnDef& column(int i) const { return columns_[i]; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  const std::vector<ColumnDef>& columns() const { return columns_; }

 private:
  std::vector<ColumnDef> columns_;
};

}  // namespace pjoin

#endif  // PJOIN_STORAGE_SCHEMA_H_
