#include "storage/table.h"

#include "util/check.h"

namespace pjoin {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (int i = 0; i < schema_.num_columns(); ++i) {
    const ColumnDef& def = schema_.column(i);
    columns_.emplace_back(def.type, def.char_len);
  }
}

void Table::Reserve(uint64_t rows) {
  for (auto& col : columns_) col.Reserve(rows);
}

void Table::FinishRow() {
  ++num_rows_;
#ifndef NDEBUG
  for (const auto& col : columns_) {
    PJOIN_DCHECK(col.size() == num_rows_);
  }
#endif
}

uint64_t Table::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& col : columns_) total += col.size() * col.width();
  return total;
}

}  // namespace pjoin
