#include "storage/table.h"

#include <algorithm>

#include "util/check.h"
#include "util/hash.h"

namespace pjoin {

Table::Table(std::string name, Schema schema)
    : name_(std::move(name)), schema_(std::move(schema)) {
  columns_.reserve(schema_.num_columns());
  for (int i = 0; i < schema_.num_columns(); ++i) {
    const ColumnDef& def = schema_.column(i);
    columns_.emplace_back(def.type, def.char_len);
  }
}

void Table::Reserve(uint64_t rows) {
  for (auto& col : columns_) col.Reserve(rows);
}

void Table::FinishRow() {
  ++num_rows_;
#ifndef NDEBUG
  for (const auto& col : columns_) {
    PJOIN_DCHECK(col.size() == num_rows_);
  }
#endif
}

uint64_t Table::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& col : columns_) total += col.size() * col.width();
  return total;
}

uint64_t TableFingerprint(const Table& table) {
  uint64_t fp = HashInt64(table.num_rows() * 31 +
                          static_cast<uint64_t>(table.schema().num_columns()));
  for (int c = 0; c < table.schema().num_columns(); ++c) {
    const Column& col = table.column(c);
    const uint64_t bytes = col.size() * col.width();
    const uint64_t slice = std::min<uint64_t>(bytes, 4096);
    if (slice > 0) {
      fp ^= HashBytes(col.data(), slice, /*seed=*/fp);
      fp ^= HashBytes(col.data() + (bytes - slice), slice, /*seed=*/fp);
    }
  }
  return fp;
}

}  // namespace pjoin
