// Columnar base table.
#ifndef PJOIN_STORAGE_TABLE_H_
#define PJOIN_STORAGE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/column.h"
#include "storage/schema.h"

namespace pjoin {

class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema);

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  uint64_t num_rows() const { return num_rows_; }

  Column& column(int i) { return columns_[i]; }
  const Column& column(int i) const { return columns_[i]; }
  const Column& column(const std::string& name) const {
    return columns_[schema_.IndexOf(name)];
  }

  void Reserve(uint64_t rows);

  // Generators append column values for one row via the columns directly and
  // then bump the row count; FinishRow checks all columns stayed in sync.
  void FinishRow();

  // Total bytes stored across all columns (used to report relation sizes in
  // the figures, mirroring the paper's "Build Side Size [Byte]" axes).
  uint64_t TotalBytes() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Column> columns_;
  uint64_t num_rows_ = 0;
};

// Cheap content fingerprint (row count, schema width, a prefix/suffix slice
// of every column). Catalogs keyed by Table address use it to detect both
// address reuse (tests stack-allocate tables) and in-place appends, forcing
// re-collection when the content changes mid-session.
uint64_t TableFingerprint(const Table& table);

}  // namespace pjoin

#endif  // PJOIN_STORAGE_TABLE_H_
