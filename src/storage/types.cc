#include "storage/types.h"

#include <cstdio>

namespace pjoin {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kInt32:
      return "INT32";
    case DataType::kFloat64:
      return "FLOAT64";
    case DataType::kDate:
      return "DATE";
    case DataType::kChar:
      return "CHAR";
  }
  return "?";
}

namespace {
// Howard Hinnant's days_from_civil algorithm.
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097LL + static_cast<int>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, int* m, int* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *m = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *y = static_cast<int>(yy + (*m <= 2));
}
}  // namespace

int32_t MakeDate(int year, int month, int day) {
  return static_cast<int32_t>(DaysFromCivil(year, month, day));
}

int32_t DateYear(int32_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  return y;
}

std::string FormatDate(int32_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

}  // namespace pjoin
