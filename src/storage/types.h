// Column data types supported by the engine.
//
// TPC-H (and the paper's microbenchmarks) only require fixed-width types:
// 64/32-bit integers, doubles, dates, and fixed-width character strings.
#ifndef PJOIN_STORAGE_TYPES_H_
#define PJOIN_STORAGE_TYPES_H_

#include <cstdint>
#include <string>

namespace pjoin {

enum class DataType : uint8_t {
  kInt64,    // 8 bytes
  kInt32,    // 4 bytes (workload B uses 4-byte keys/payloads)
  kFloat64,  // 8 bytes
  kDate,     // 4 bytes, days since 1970-01-01
  kChar,     // fixed width, space padded
};

// Width in bytes of a value of `type`; `char_len` is used for kChar.
inline uint32_t TypeWidth(DataType type, uint32_t char_len = 0) {
  switch (type) {
    case DataType::kInt64:
    case DataType::kFloat64:
      return 8;
    case DataType::kInt32:
    case DataType::kDate:
      return 4;
    case DataType::kChar:
      return char_len;
  }
  return 0;
}

const char* DataTypeName(DataType type);

// Converts a calendar date to days since 1970-01-01 (proleptic Gregorian).
// TPC-H date predicates ("l_shipdate <= date '1998-12-01'") are evaluated on
// this representation.
int32_t MakeDate(int year, int month, int day);

// Formats a kDate value back to YYYY-MM-DD (for result printing).
std::string FormatDate(int32_t days);

// Extracts the calendar year of a kDate value (EXTRACT(year FROM ...)).
int32_t DateYear(int32_t days);

}  // namespace pjoin

#endif  // PJOIN_STORAGE_TYPES_H_
