#include "tpch/gen.h"

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace pjoin {

namespace {

// --- spec vocabularies -------------------------------------------------------

constexpr const char* kRegions[5] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                     "MIDDLE EAST"};

// Nation -> region mapping per the TPC-H specification.
struct NationDef {
  const char* name;
  int region;
};
constexpr NationDef kNations[25] = {
    {"ALGERIA", 0},        {"ARGENTINA", 1},  {"BRAZIL", 1},
    {"CANADA", 1},         {"EGYPT", 4},      {"ETHIOPIA", 0},
    {"FRANCE", 3},         {"GERMANY", 3},    {"INDIA", 2},
    {"INDONESIA", 2},      {"IRAN", 4},       {"IRAQ", 4},
    {"JAPAN", 2},          {"JORDAN", 4},     {"KENYA", 0},
    {"MOROCCO", 0},        {"MOZAMBIQUE", 0}, {"PERU", 1},
    {"CHINA", 2},          {"ROMANIA", 3},    {"SAUDI ARABIA", 4},
    {"VIETNAM", 2},        {"RUSSIA", 3},     {"UNITED KINGDOM", 3},
    {"UNITED STATES", 1}};

constexpr const char* kTypeSyllable1[6] = {"STANDARD", "SMALL",  "MEDIUM",
                                           "LARGE",    "ECONOMY", "PROMO"};
constexpr const char* kTypeSyllable2[5] = {"ANODIZED", "BURNISHED", "PLATED",
                                           "POLISHED", "BRUSHED"};
constexpr const char* kTypeSyllable3[5] = {"TIN", "NICKEL", "BRASS", "STEEL",
                                           "COPPER"};

constexpr const char* kContainerSyllable1[5] = {"SM", "LG", "MED", "JUMBO",
                                                "WRAP"};
constexpr const char* kContainerSyllable2[8] = {"CASE", "BOX", "BAG", "JAR",
                                                "PKG", "PACK", "CAN", "DRUM"};

constexpr const char* kSegments[5] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                                      "MACHINERY", "HOUSEHOLD"};

constexpr const char* kPriorities[5] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                        "4-NOT SPECIFIED", "5-LOW"};

constexpr const char* kShipModes[7] = {"REG AIR", "AIR",  "RAIL", "SHIP",
                                       "TRUCK",   "MAIL", "FOB"};

constexpr const char* kShipInstructs[4] = {"DELIVER IN PERSON", "COLLECT COD",
                                           "NONE", "TAKE BACK RETURN"};

// The spec's 92 p_name color words (subset is fine for selectivity shape;
// we keep the full list so LIKE '%green%' and 'forest%' hit spec rates).
constexpr const char* kColors[92] = {
    "almond",    "antique",   "aquamarine", "azure",     "beige",
    "bisque",    "black",     "blanched",   "blue",      "blush",
    "brown",     "burlywood", "burnished",  "chartreuse", "chiffon",
    "chocolate", "coral",     "cornflower", "cornsilk",  "cream",
    "cyan",      "dark",      "deep",       "dim",       "dodger",
    "drab",      "firebrick", "floral",     "forest",    "frosted",
    "gainsboro", "ghost",     "goldenrod",  "green",     "grey",
    "honeydew",  "hot",       "indian",     "ivory",     "khaki",
    "lace",      "lavender",  "lawn",       "lemon",     "light",
    "lime",      "linen",     "magenta",    "maroon",    "medium",
    "metallic",  "midnight",  "mint",       "misty",     "moccasin",
    "navajo",    "navy",      "olive",      "orange",    "orchid",
    "pale",      "papaya",    "peach",      "peru",      "pink",
    "plum",      "powder",    "puff",       "purple",    "red",
    "rose",      "rosy",      "royal",      "saddle",    "salmon",
    "sandy",     "seashell",  "sienna",     "sky",       "slate",
    "smoke",     "snow",      "spring",     "steel",     "tan",
    "thistle",   "tomato",    "turquoise",  "violet",    "wheat",
    "white",     "yellow"};

std::string RandomWords(Rng& rng, int count) {
  std::string out;
  for (int i = 0; i < count; ++i) {
    if (i > 0) out += ' ';
    out += kColors[rng.Below(92)];
  }
  return out;
}

}  // namespace

int32_t TpchStartDate() { return MakeDate(1992, 1, 1); }
int32_t TpchEndDate() { return MakeDate(1998, 12, 31); }

const Table& TpchDb::ByName(const std::string& name) const {
  if (name == "region") return region;
  if (name == "nation") return nation;
  if (name == "supplier") return supplier;
  if (name == "customer") return customer;
  if (name == "part") return part;
  if (name == "partsupp") return partsupp;
  if (name == "orders") return orders;
  if (name == "lineitem") return lineitem;
  PJOIN_CHECK_MSG(false, name.c_str());
  return region;
}

uint64_t TpchDb::TotalBytes() const {
  return region.TotalBytes() + nation.TotalBytes() + supplier.TotalBytes() +
         customer.TotalBytes() + part.TotalBytes() + partsupp.TotalBytes() +
         orders.TotalBytes() + lineitem.TotalBytes();
}

std::unique_ptr<TpchDb> GenerateTpch(double scale_factor, uint64_t seed,
                                     double fk_skew) {
  PJOIN_CHECK(scale_factor > 0);
  PJOIN_CHECK(fk_skew >= 0.0);
  auto db = std::make_unique<TpchDb>();
  db->scale_factor = scale_factor;
  Rng rng(seed);

  auto scaled = [&](double base) {
    int64_t n = static_cast<int64_t>(base * scale_factor);
    return n < 1 ? int64_t{1} : n;
  };
  const int64_t num_suppliers =
      ((scaled(10'000) + 3) / 4) * 4;  // multiple of 4 for the ps formula
  const int64_t num_customers = scaled(150'000);
  const int64_t num_parts = scaled(200'000);
  const int64_t num_orders = scaled(1'500'000);

  // --- region / nation -----------------------------------------------------
  db->region = Table("region", Schema({{"r_regionkey", DataType::kInt64, 0},
                                       {"r_name", DataType::kChar, 25}}));
  for (int r = 0; r < 5; ++r) {
    db->region.column(0).AppendInt64(r);
    db->region.column(1).AppendString(kRegions[r]);
    db->region.FinishRow();
  }

  db->nation = Table("nation", Schema({{"n_nationkey", DataType::kInt64, 0},
                                       {"n_name", DataType::kChar, 25},
                                       {"n_regionkey", DataType::kInt64, 0}}));
  for (int n = 0; n < 25; ++n) {
    db->nation.column(0).AppendInt64(n);
    db->nation.column(1).AppendString(kNations[n].name);
    db->nation.column(2).AppendInt64(kNations[n].region);
    db->nation.FinishRow();
  }

  // --- supplier --------------------------------------------------------------
  db->supplier =
      Table("supplier", Schema({{"s_suppkey", DataType::kInt64, 0},
                                {"s_name", DataType::kChar, 25},
                                {"s_address", DataType::kChar, 40},
                                {"s_nationkey", DataType::kInt64, 0},
                                {"s_phone", DataType::kChar, 15},
                                {"s_acctbal", DataType::kFloat64, 0},
                                {"s_comment", DataType::kChar, 101}}));
  db->supplier.Reserve(num_suppliers);
  for (int64_t s = 1; s <= num_suppliers; ++s) {
    int64_t nation = rng.Below(25);
    db->supplier.column(0).AppendInt64(s);
    db->supplier.column(1).AppendString("Supplier#" + std::to_string(s));
    db->supplier.column(2).AppendString(RandomWords(rng, 3));
    db->supplier.column(3).AppendInt64(nation);
    db->supplier.column(4).AppendString(std::to_string(10 + nation) + "-" +
                                        std::to_string(100 + rng.Below(900)));
    db->supplier.column(5).AppendFloat64(
        static_cast<double>(rng.Range(-99999, 999999)) / 100.0);
    // The spec plants "Customer ... Complaints" in ~0.05% of comments (Q16)
    // and "Customer ... Recommends" in another sliver; we plant complaints
    // at 1/200 so small scale factors still select a handful.
    std::string comment = RandomWords(rng, 6);
    if (rng.Below(200) == 0) comment = "Customer Complaints " + comment;
    db->supplier.column(6).AppendString(comment);
    db->supplier.FinishRow();
  }

  // --- customer --------------------------------------------------------------
  db->customer =
      Table("customer", Schema({{"c_custkey", DataType::kInt64, 0},
                                {"c_name", DataType::kChar, 25},
                                {"c_nationkey", DataType::kInt64, 0},
                                {"c_phone", DataType::kChar, 15},
                                {"c_acctbal", DataType::kFloat64, 0},
                                {"c_mktsegment", DataType::kChar, 10}}));
  db->customer.Reserve(num_customers);
  for (int64_t c = 1; c <= num_customers; ++c) {
    int64_t nation = rng.Below(25);
    db->customer.column(0).AppendInt64(c);
    db->customer.column(1).AppendString("Customer#" + std::to_string(c));
    db->customer.column(2).AppendInt64(nation);
    db->customer.column(3).AppendString(std::to_string(10 + nation) + "-" +
                                        std::to_string(100 + rng.Below(900)));
    db->customer.column(4).AppendFloat64(
        static_cast<double>(rng.Range(-99999, 999999)) / 100.0);
    db->customer.column(5).AppendString(kSegments[rng.Below(5)]);
    db->customer.FinishRow();
  }

  // --- part --------------------------------------------------------------------
  db->part = Table("part", Schema({{"p_partkey", DataType::kInt64, 0},
                                   {"p_name", DataType::kChar, 55},
                                   {"p_mfgr", DataType::kChar, 25},
                                   {"p_brand", DataType::kChar, 10},
                                   {"p_type", DataType::kChar, 25},
                                   {"p_size", DataType::kInt64, 0},
                                   {"p_container", DataType::kChar, 10},
                                   {"p_retailprice", DataType::kFloat64, 0}}));
  db->part.Reserve(num_parts);
  for (int64_t p = 1; p <= num_parts; ++p) {
    int64_t mfgr = 1 + rng.Below(5);
    int64_t brand = mfgr * 10 + 1 + rng.Below(5);
    std::string type = std::string(kTypeSyllable1[rng.Below(6)]) + " " +
                       kTypeSyllable2[rng.Below(5)] + " " +
                       kTypeSyllable3[rng.Below(5)];
    db->part.column(0).AppendInt64(p);
    db->part.column(1).AppendString(RandomWords(rng, 5));
    db->part.column(2).AppendString("Manufacturer#" + std::to_string(mfgr));
    db->part.column(3).AppendString("Brand#" + std::to_string(brand));
    db->part.column(4).AppendString(type);
    db->part.column(5).AppendInt64(1 + rng.Below(50));
    db->part.column(6).AppendString(std::string(kContainerSyllable1[rng.Below(5)]) +
                                    " " + kContainerSyllable2[rng.Below(8)]);
    db->part.column(7).AppendFloat64(900.0 + (p % 1000) + 100.0 * (p % 10));
    db->part.FinishRow();
  }

  // --- partsupp ---------------------------------------------------------------
  // Exactly four suppliers per part; lineitem picks one of the same four, so
  // lineitem ⋈ partsupp on (partkey, suppkey) always matches (Q9, Q20).
  auto part_supplier = [&](int64_t partkey, int64_t i) {
    return (partkey + i * (num_suppliers / 4)) % num_suppliers + 1;
  };
  db->partsupp =
      Table("partsupp", Schema({{"ps_partkey", DataType::kInt64, 0},
                                {"ps_suppkey", DataType::kInt64, 0},
                                {"ps_availqty", DataType::kInt64, 0},
                                {"ps_supplycost", DataType::kFloat64, 0}}));
  db->partsupp.Reserve(num_parts * 4);
  for (int64_t p = 1; p <= num_parts; ++p) {
    for (int64_t i = 0; i < 4; ++i) {
      db->partsupp.column(0).AppendInt64(p);
      db->partsupp.column(1).AppendInt64(part_supplier(p, i));
      db->partsupp.column(2).AppendInt64(1 + rng.Below(9999));
      db->partsupp.column(3).AppendFloat64(
          static_cast<double>(100 + rng.Below(99900)) / 100.0);
      db->partsupp.FinishRow();
    }
  }

  // --- orders + lineitem -------------------------------------------------------
  db->orders = Table("orders", Schema({{"o_orderkey", DataType::kInt64, 0},
                                       {"o_custkey", DataType::kInt64, 0},
                                       {"o_orderstatus", DataType::kChar, 1},
                                       {"o_totalprice", DataType::kFloat64, 0},
                                       {"o_orderdate", DataType::kDate, 0},
                                       {"o_orderpriority", DataType::kChar, 15}}));
  db->lineitem =
      Table("lineitem", Schema({{"l_orderkey", DataType::kInt64, 0},
                                {"l_partkey", DataType::kInt64, 0},
                                {"l_suppkey", DataType::kInt64, 0},
                                {"l_linenumber", DataType::kInt64, 0},
                                {"l_quantity", DataType::kFloat64, 0},
                                {"l_extendedprice", DataType::kFloat64, 0},
                                {"l_discount", DataType::kFloat64, 0},
                                {"l_tax", DataType::kFloat64, 0},
                                {"l_returnflag", DataType::kChar, 1},
                                {"l_linestatus", DataType::kChar, 1},
                                {"l_shipdate", DataType::kDate, 0},
                                {"l_commitdate", DataType::kDate, 0},
                                {"l_receiptdate", DataType::kDate, 0},
                                {"l_shipinstruct", DataType::kChar, 25},
                                {"l_shipmode", DataType::kChar, 10}}));
  db->orders.Reserve(num_orders);
  db->lineitem.Reserve(num_orders * 4);

  const int32_t order_date_min = TpchStartDate();
  const int32_t order_date_max = MakeDate(1998, 8, 2);
  const int32_t current_date = MakeDate(1995, 6, 17);

  // JCC-H-style foreign-key skew: Zipf over customers/parts when requested.
  std::unique_ptr<ZipfGenerator> cust_zipf, part_zipf;
  if (fk_skew > 0) {
    cust_zipf = std::make_unique<ZipfGenerator>(
        static_cast<uint64_t>(num_customers), fk_skew);
    part_zipf = std::make_unique<ZipfGenerator>(
        static_cast<uint64_t>(num_parts), fk_skew);
  }

  for (int64_t o = 1; o <= num_orders; ++o) {
    // Only two thirds of customers have orders (spec: custkey never
    // congruent 0 mod 3) — the backbone of Q22's anti join selectivity.
    int64_t custkey =
        cust_zipf ? static_cast<int64_t>(cust_zipf->Next(rng))
                  : 1 + rng.Below(static_cast<uint64_t>(num_customers));
    if (custkey % 3 == 0) {
      custkey = custkey > 1 ? custkey - 1 : custkey + 1;
    }
    int32_t orderdate = order_date_min + static_cast<int32_t>(rng.Below(
                            static_cast<uint64_t>(order_date_max -
                                                  order_date_min + 1)));
    int lines = 1 + static_cast<int>(rng.Below(7));
    double totalprice = 0;
    int finished_lines = 0;

    for (int l = 1; l <= lines; ++l) {
      int64_t partkey =
          part_zipf ? static_cast<int64_t>(part_zipf->Next(rng))
                    : 1 + rng.Below(static_cast<uint64_t>(num_parts));
      int64_t suppkey = part_supplier(partkey, rng.Below(4));
      double quantity = static_cast<double>(1 + rng.Below(50));
      double price = quantity * (900.0 + (partkey % 1000) +
                                 100.0 * (partkey % 10)) / 10.0;
      double discount = static_cast<double>(rng.Below(11)) / 100.0;
      double tax = static_cast<double>(rng.Below(9)) / 100.0;
      int32_t shipdate = orderdate + 1 + static_cast<int32_t>(rng.Below(121));
      int32_t commitdate = orderdate + 30 + static_cast<int32_t>(rng.Below(61));
      int32_t receiptdate = shipdate + 1 + static_cast<int32_t>(rng.Below(30));
      const char* returnflag =
          receiptdate <= current_date ? (rng.Below(2) ? "R" : "A") : "N";
      const char* linestatus = shipdate > current_date ? "O" : "F";

      db->lineitem.column(0).AppendInt64(o);
      db->lineitem.column(1).AppendInt64(partkey);
      db->lineitem.column(2).AppendInt64(suppkey);
      db->lineitem.column(3).AppendInt64(l);
      db->lineitem.column(4).AppendFloat64(quantity);
      db->lineitem.column(5).AppendFloat64(price);
      db->lineitem.column(6).AppendFloat64(discount);
      db->lineitem.column(7).AppendFloat64(tax);
      db->lineitem.column(8).AppendString(returnflag);
      db->lineitem.column(9).AppendString(linestatus);
      db->lineitem.column(10).AppendInt32(shipdate);
      db->lineitem.column(11).AppendInt32(commitdate);
      db->lineitem.column(12).AppendInt32(receiptdate);
      db->lineitem.column(13).AppendString(kShipInstructs[rng.Below(4)]);
      db->lineitem.column(14).AppendString(kShipModes[rng.Below(7)]);
      db->lineitem.FinishRow();
      totalprice += price * (1.0 - discount) * (1.0 + tax);
      ++finished_lines;
    }
    (void)finished_lines;

    // Order status follows its lineitems' status.
    int32_t latest_ship = orderdate + 122;
    const char* status = latest_ship <= current_date  ? "F"
                         : orderdate > current_date ? "O"
                                                      : (rng.Below(2) ? "F" : "P");
    db->orders.column(0).AppendInt64(o);
    db->orders.column(1).AppendInt64(custkey);
    db->orders.column(2).AppendString(status);
    db->orders.column(3).AppendFloat64(totalprice);
    db->orders.column(4).AppendInt32(orderdate);
    db->orders.column(5).AppendString(kPriorities[rng.Below(5)]);
    db->orders.FinishRow();
  }

  return db;
}

}  // namespace pjoin
