// Deterministic TPC-H-shaped data generator.
//
// Generates the eight TPC-H tables at an arbitrary scale factor with the
// spec's key structure and cardinalities: dense primary keys, four suppliers
// per part in partsupp (lineitem references one of them), only two thirds of
// customers placing orders, 1-7 lineitems per order, spec value domains for
// dates, priorities, brands, types, containers, ship modes, segments,
// nations and regions. Strings are drawn from the spec vocabularies
// (p_name color words, "Customer ... Complaints" plants for Q16), so every
// predicate in our query plans selects with approximately the spec
// selectivity. Column subset: every column referenced by the 19 join-bearing
// queries, plus representative payload columns so tuple widths match the
// paper's Figure 2 discussion.
#ifndef PJOIN_TPCH_GEN_H_
#define PJOIN_TPCH_GEN_H_

#include <cstdint>
#include <memory>

#include "storage/table.h"

namespace pjoin {

struct TpchDb {
  Table region;
  Table nation;
  Table supplier;
  Table customer;
  Table part;
  Table partsupp;
  Table orders;
  Table lineitem;

  double scale_factor = 0;

  const Table& ByName(const std::string& name) const;
  uint64_t TotalBytes() const;
};

// Generates all eight tables at `scale_factor` (may be fractional; SF 1 is
// the spec's 1 GB). Deterministic for a given (scale_factor, seed).
//
// `fk_skew` > 0 produces a JCC-H-style variant (Boncz et al., TPCTC'17;
// paper footnote 11): the o_custkey and l_partkey foreign keys follow a
// Zipf distribution with that exponent instead of the spec's uniform one.
// The paper notes this "puts even more pressure on the radix join" —
// bench/ext_skewed_tpch measures exactly that.
std::unique_ptr<TpchDb> GenerateTpch(double scale_factor, uint64_t seed = 19,
                                     double fk_skew = 0.0);

// Spec date constants used across queries.
int32_t TpchStartDate();  // 1992-01-01
int32_t TpchEndDate();    // 1998-12-31

}  // namespace pjoin

#endif  // PJOIN_TPCH_GEN_H_
