#include "tpch/queries.h"

#include <algorithm>
#include <cstring>
#include <string_view>

#include "engine/plan.h"
#include "util/check.h"

namespace pjoin {

namespace {

// ---------------------------------------------------------------------------
// Step plumbing: multi-step queries accumulate stats and renumber the
// per-join strategy overrides (post-order across steps, Figure 12).
// ---------------------------------------------------------------------------

void AccumulateStats(QueryStats* total, const QueryStats& step) {
  if (total == nullptr) return;
  total->seconds += step.seconds;
  total->source_tuples += step.source_tuples;
  total->result_rows = step.result_rows;  // final step's output
  for (int p = 0; p < static_cast<int>(JoinPhase::kNumPhases); ++p) {
    total->phase_timer.Add(static_cast<JoinPhase>(p),
                           step.phase_timer.seconds(static_cast<JoinPhase>(p)));
  }
  total->bytes.Merge(step.bytes);
  total->bloom_dropped += step.bloom_dropped;
  total->partition_bytes += step.partition_bytes;
  // Scalars accumulate; the full observability snapshot keeps the final
  // (main) step, which carries the query's principal join tree and any
  // rewrite-pass record. Intermediate subquery steps only contribute their
  // renumbered audits below.
  total->metrics = step.metrics;
}

class StepRunner {
 public:
  StepRunner(const ExecOptions& base, QueryStats* stats, ThreadPool* pool)
      : base_(base), stats_(stats), pool_(pool) {}

  QueryResult Run(const PlanNode& plan) {
    ExecOptions options = base_;
    options.join_overrides.clear();
    const int num_joins = plan.CountJoins();
    for (const auto& [global_id, strategy] : base_.join_overrides) {
      if (global_id >= join_offset_ && global_id < join_offset_ + num_joins) {
        options.join_overrides[global_id - join_offset_] = strategy;
      }
    }
    // Per-join overrides are numbered post-order on the hand-written trees
    // (Figure 12). The rewrite pass may renumber joins by reordering, so a
    // caller supplying overrides pins the written plan shape.
    if (!base_.join_overrides.empty()) options.rewrite.enabled = 0;
    const int offset = join_offset_;
    join_offset_ += num_joins;
    QueryStats step;
    QueryResult result = ExecuteQuery(plan, options, &step, pool_);
    AccumulateStats(stats_, step);
    if (stats_ != nullptr) {
      for (JoinAudit audit : step.join_audits) {
        audit.join_id += offset;  // renumber into the query-global sequence
        stats_->join_audits.push_back(audit);
      }
    }
    return result;
  }

 private:
  const ExecOptions& base_;
  QueryStats* stats_;
  ThreadPool* pool_;
  int join_offset_ = 0;
};

// Materializes a query result into a temporary base table.
Table MaterializeResult(const QueryResult& result, const std::string& name,
                        std::vector<ColumnDef> columns) {
  PJOIN_CHECK(columns.size() == result.column_names.size() ||
              columns.size() <= result.column_names.size());
  Table table(name, Schema(columns));
  for (const auto& row : result.rows) {
    for (size_t c = 0; c < columns.size(); ++c) {
      switch (columns[c].type) {
        case DataType::kInt64:
          table.column(static_cast<int>(c))
              .AppendInt64(std::get<int64_t>(row[c]));
          break;
        case DataType::kInt32:
        case DataType::kDate:
          table.column(static_cast<int>(c))
              .AppendInt32(static_cast<int32_t>(std::get<int64_t>(row[c])));
          break;
        case DataType::kFloat64:
          table.column(static_cast<int>(c))
              .AppendFloat64(std::get<double>(row[c]));
          break;
        case DataType::kChar:
          table.column(static_cast<int>(c))
              .AppendString(std::get<std::string>(row[c]));
          break;
      }
    }
    table.FinishRow();
  }
  return table;
}

// A renamed copy of the nation table (for self-join-free plans when a query
// references nation under two roles, e.g. Q7/Q8).
Table RenamedNation(const Table& nation, const std::string& prefix) {
  Table copy(prefix, Schema({{prefix + "_nationkey", DataType::kInt64, 0},
                             {prefix + "_name", DataType::kChar, 25},
                             {prefix + "_regionkey", DataType::kInt64, 0}}));
  for (uint64_t r = 0; r < nation.num_rows(); ++r) {
    copy.column(0).AppendInt64(nation.column(0).GetInt64(r));
    copy.column(1).AppendString(nation.column(1).GetString(r));
    copy.column(2).AppendInt64(nation.column(2).GetInt64(r));
    copy.FinishRow();
  }
  return copy;
}

// ---------------------------------------------------------------------------
// Expression helpers.
// ---------------------------------------------------------------------------

bool CharFieldEquals(const RowLayout& layout, const std::byte* row, int f,
                     std::string_view want) {
  const char* s = layout.GetChar(row, f);
  const uint32_t width = layout.field(f).width;
  if (want.size() > width) return false;
  if (std::memcmp(s, want.data(), want.size()) != 0) return false;
  for (uint32_t i = static_cast<uint32_t>(want.size()); i < width; ++i) {
    if (s[i] != ' ') return false;
  }
  return true;
}

bool CharFieldPrefix(const RowLayout& layout, const std::byte* row, int f,
                     std::string_view prefix) {
  const char* s = layout.GetChar(row, f);
  return layout.field(f).width >= prefix.size() &&
         std::memcmp(s, prefix.data(), prefix.size()) == 0;
}

// revenue = price * (1 - discount)
MapDef RevenueMap(std::string name, std::string price, std::string discount) {
  MapDef def;
  def.name = std::move(name);
  def.type = DataType::kFloat64;
  def.inputs = {std::move(price), std::move(discount)};
  def.fn = [](const RowLayout& layout, const std::byte* row,
              const int* fields, std::byte* dst) {
    double v = layout.GetFloat64(row, fields[0]) *
               (1.0 - layout.GetFloat64(row, fields[1]));
    std::memcpy(dst, &v, 8);
  };
  return def;
}

// year(date_col) as int64
MapDef YearMap(std::string name, std::string date_col) {
  MapDef def;
  def.name = std::move(name);
  def.type = DataType::kInt64;
  def.inputs = {std::move(date_col)};
  def.fn = [](const RowLayout& layout, const std::byte* row,
              const int* fields, std::byte* dst) {
    int64_t y = DateYear(layout.GetInt32(row, fields[0]));
    std::memcpy(dst, &y, 8);
  };
  return def;
}

// flag (0/1 int64): trimmed CHAR column equals a literal
MapDef CharEqFlagMap(std::string name, std::string col, std::string literal) {
  MapDef def;
  def.name = std::move(name);
  def.type = DataType::kInt64;
  def.inputs = {std::move(col)};
  def.fn = [literal = std::move(literal)](const RowLayout& layout,
                                          const std::byte* row,
                                          const int* fields, std::byte* dst) {
    int64_t flag = CharFieldEquals(layout, row, fields[0], literal) ? 1 : 0;
    std::memcpy(dst, &flag, 8);
  };
  return def;
}

// masked revenue: revenue if flag else 0 (for share-style aggregates)
MapDef MaskedMap(std::string name, std::string value_col,
                 std::string flag_col) {
  MapDef def;
  def.name = std::move(name);
  def.type = DataType::kFloat64;
  def.inputs = {std::move(value_col), std::move(flag_col)};
  def.fn = [](const RowLayout& layout, const std::byte* row,
              const int* fields, std::byte* dst) {
    double v = layout.GetInt64(row, fields[1]) != 0
                   ? layout.GetFloat64(row, fields[0])
                   : 0.0;
    std::memcpy(dst, &v, 8);
  };
  return def;
}

using P = ScanPredicate;

// ---------------------------------------------------------------------------
// Query implementations. Plan shapes follow the Umbra plans the paper
// analyzes (Section 5.3.1); join counts per query sum to 59 across the
// workload, matching the paper.
// ---------------------------------------------------------------------------

// Q2: minimum-cost European supplier per BRASS part of a given size.
QueryResult RunQ2(const TpchDb& db, const ExecOptions& base, QueryStats* stats,
                  ThreadPool* pool) {
  StepRunner steps(base, stats, pool);

  // Step 1: European suppliers (2 joins), materialized with es_ names.
  auto eur = Aggregate(
      Join(Join(ScanTable(&db.region, {P::StrEq("r_name", "EUROPE")}),
                ScanTable(&db.nation), {{"r_regionkey", "n_regionkey"}}),
           ScanTable(&db.supplier), {{"n_nationkey", "s_nationkey"}}),
      {"s_suppkey", "s_name", "s_acctbal", "n_name"},
      {AggDef::CountStar("dummy")});
  Table eur_supp = MaterializeResult(
      steps.Run(*eur), "eur_supp",
      {{"es_suppkey", DataType::kInt64, 0},
       {"es_name", DataType::kChar, 25},
       {"es_acctbal", DataType::kFloat64, 0},
       {"es_nname", DataType::kChar, 25}});

  // Step 2: minimum supply cost per part among European suppliers (1 join).
  auto mincost = Aggregate(
      Join(ScanTable(&eur_supp), ScanTable(&db.partsupp),
           {{"es_suppkey", "ps_suppkey"}}),
      {"ps_partkey"}, {AggDef::Min("ps_supplycost", "min_cost")});
  Table mc = MaterializeResult(steps.Run(*mincost), "mincost",
                               {{"mc_partkey", DataType::kInt64, 0},
                                {"mc_cost", DataType::kFloat64, 0}});

  // Step 3: main query (3 joins): filtered parts at their minimum cost.
  auto main = Aggregate(
      Join(ScanTable(&eur_supp),
           Join(Join(ScanTable(&db.part, {P::EqI("p_size", 15),
                                          P::StrSuffix("p_type", "BRASS")}),
                     ScanTable(&mc), {{"p_partkey", "mc_partkey"}}),
                ScanTable(&db.partsupp),
                {{"p_partkey", "ps_partkey"}, {"mc_cost", "ps_supplycost"}}),
           {{"es_suppkey", "ps_suppkey"}}),
      {"p_partkey", "es_name", "es_nname"}, {AggDef::Max("es_acctbal", "bal")});
  return steps.Run(*main);
}

// Q3: unshipped orders of BUILDING customers.
QueryResult RunQ3(const TpchDb& db, const ExecOptions& base, QueryStats* stats,
                  ThreadPool* pool) {
  StepRunner steps(base, stats, pool);
  const int32_t date = MakeDate(1995, 3, 15);
  auto plan = Aggregate(
      MapColumns(
          Join(Join(ScanTable(&db.customer,
                              {P::StrEq("c_mktsegment", "BUILDING")}),
                    ScanTable(&db.orders, {P::LtI("o_orderdate", date)}),
                    {{"c_custkey", "o_custkey"}}),
               ScanTable(&db.lineitem, {P::GtI("l_shipdate", date)}),
               {{"o_orderkey", "l_orderkey"}}),
          {RevenueMap("revenue", "l_extendedprice", "l_discount")}),
      {"l_orderkey", "o_orderdate"}, {AggDef::Sum("revenue", "rev")});
  return steps.Run(*plan);
}

// Q4: order-priority checking (EXISTS lineitem with late commit).
QueryResult RunQ4(const TpchDb& db, const ExecOptions& base, QueryStats* stats,
                  ThreadPool* pool) {
  StepRunner steps(base, stats, pool);
  auto plan = Aggregate(
      Join(ScanTable(&db.orders,
                     {P::BetweenI("o_orderdate", MakeDate(1993, 7, 1),
                                  MakeDate(1993, 9, 30))}),
           ScanTable(&db.lineitem,
                     {P::ColLt("l_commitdate", "l_receiptdate")}),
           {{"o_orderkey", "l_orderkey"}}, JoinKind::kBuildSemi),
      {"o_orderpriority"}, {AggDef::CountStar("order_count")});
  return steps.Run(*plan);
}

// Q5: local supplier volume in ASIA (the 1:117 join of Section 5.3.2).
QueryResult RunQ5(const TpchDb& db, const ExecOptions& base, QueryStats* stats,
                  ThreadPool* pool) {
  StepRunner steps(base, stats, pool);
  auto rn = Join(ScanTable(&db.region, {P::StrEq("r_name", "ASIA")}),
                 ScanTable(&db.nation), {{"r_regionkey", "n_regionkey"}});
  auto c = Join(std::move(rn), ScanTable(&db.customer),
                {{"n_nationkey", "c_nationkey"}});
  auto o = Join(std::move(c),
                ScanTable(&db.orders,
                          {P::BetweenI("o_orderdate", MakeDate(1994, 1, 1),
                                       MakeDate(1994, 12, 31))}),
                {{"c_custkey", "o_custkey"}});
  auto l = Join(std::move(o), ScanTable(&db.lineitem),
                {{"o_orderkey", "l_orderkey"}});
  auto s = Join(std::move(l), ScanTable(&db.supplier),
                {{"l_suppkey", "s_suppkey"}, {"n_nationkey", "s_nationkey"}});
  auto plan = Aggregate(
      MapColumns(std::move(s),
                 {RevenueMap("revenue", "l_extendedprice", "l_discount")}),
      {"n_name"}, {AggDef::Sum("revenue", "rev")});
  return steps.Run(*plan);
}

// Q7: volume shipped between FRANCE and GERMANY.
QueryResult RunQ7(const TpchDb& db, const ExecOptions& base, QueryStats* stats,
                  ThreadPool* pool) {
  StepRunner steps(base, stats, pool);
  Table n1 = RenamedNation(db.nation, "n1");
  Table n2 = RenamedNation(db.nation, "n2");
  std::vector<std::string> pair = {"FRANCE", "GERMANY"};

  auto sn = Join(Join(ScanTable(&n1, {P::StrIn("n1_name", pair)}),
                      ScanTable(&db.supplier),
                      {{"n1_nationkey", "s_nationkey"}}),
                 ScanTable(&db.lineitem,
                           {P::BetweenI("l_shipdate", MakeDate(1995, 1, 1),
                                        MakeDate(1996, 12, 31))}),
                 {{"s_suppkey", "l_suppkey"}});
  auto on = Join(ScanTable(&db.orders), std::move(sn),
                 {{"o_orderkey", "l_orderkey"}});
  auto cn = Join(Join(ScanTable(&n2, {P::StrIn("n2_name", pair)}),
                      ScanTable(&db.customer),
                      {{"n2_nationkey", "c_nationkey"}}),
                 std::move(on), {{"c_custkey", "o_custkey"}});
  FilterDef different_nations;
  different_nations.inputs = {"n1_name", "n2_name"};
  different_nations.label = "n1 <> n2";
  different_nations.fn = [](const RowLayout& layout, const std::byte* row,
                            const int* fields) {
    return std::memcmp(layout.GetChar(row, fields[0]),
                       layout.GetChar(row, fields[1]), 25) != 0;
  };
  auto plan = Aggregate(
      MapColumns(Filter(std::move(cn), std::move(different_nations)),
                 {RevenueMap("volume", "l_extendedprice", "l_discount"),
                  YearMap("l_year", "l_shipdate")}),
      {"n1_name", "n2_name", "l_year"}, {AggDef::Sum("volume", "rev")});
  return steps.Run(*plan);
}

// Q8: national market share of BRAZIL in AMERICA.
QueryResult RunQ8(const TpchDb& db, const ExecOptions& base, QueryStats* stats,
                  ThreadPool* pool) {
  StepRunner steps(base, stats, pool);
  Table n2 = RenamedNation(db.nation, "n2");

  auto rn = Join(ScanTable(&db.region, {P::StrEq("r_name", "AMERICA")}),
                 ScanTable(&db.nation), {{"r_regionkey", "n_regionkey"}});
  auto c = Join(std::move(rn), ScanTable(&db.customer),
                {{"n_nationkey", "c_nationkey"}});
  auto o = Join(std::move(c),
                ScanTable(&db.orders,
                          {P::BetweenI("o_orderdate", MakeDate(1995, 1, 1),
                                       MakeDate(1996, 12, 31))}),
                {{"c_custkey", "o_custkey"}});
  auto pl =
      Join(ScanTable(&db.part,
                     {P::StrEq("p_type", "ECONOMY ANODIZED STEEL")}),
           ScanTable(&db.lineitem), {{"p_partkey", "l_partkey"}});
  auto ol = Join(std::move(o), std::move(pl), {{"o_orderkey", "l_orderkey"}});
  auto sl = Join(ScanTable(&db.supplier), std::move(ol),
                 {{"s_suppkey", "l_suppkey"}});
  auto nl = Join(ScanTable(&n2), std::move(sl),
                 {{"n2_nationkey", "s_nationkey"}});
  auto plan = Aggregate(
      MapColumns(MapColumns(std::move(nl),
                            {RevenueMap("volume", "l_extendedprice",
                                        "l_discount"),
                             YearMap("o_year", "o_orderdate"),
                             CharEqFlagMap("is_brazil", "n2_name", "BRAZIL")}),
                 {MaskedMap("brazil_volume", "volume", "is_brazil")}),
      {"o_year"},
      {AggDef::Sum("brazil_volume", "nation_volume"),
       AggDef::Sum("volume", "total_volume")});
  return steps.Run(*plan);
}

// Q9: product-type profit measure over 'green' parts.
QueryResult RunQ9(const TpchDb& db, const ExecOptions& base, QueryStats* stats,
                  ThreadPool* pool) {
  StepRunner steps(base, stats, pool);
  auto pl = Join(ScanTable(&db.part, {P::StrContains("p_name", "green")}),
                 ScanTable(&db.lineitem), {{"p_partkey", "l_partkey"}});
  auto spl = Join(ScanTable(&db.supplier), std::move(pl),
                  {{"s_suppkey", "l_suppkey"}});
  auto nspl = Join(ScanTable(&db.nation), std::move(spl),
                   {{"n_nationkey", "s_nationkey"}});
  auto pspl =
      Join(ScanTable(&db.partsupp), std::move(nspl),
           {{"ps_partkey", "l_partkey"}, {"ps_suppkey", "l_suppkey"}});
  auto opl = Join(ScanTable(&db.orders), std::move(pspl),
                  {{"o_orderkey", "l_orderkey"}});

  MapDef amount;
  amount.name = "amount";
  amount.type = DataType::kFloat64;
  amount.inputs = {"l_extendedprice", "l_discount", "ps_supplycost",
                   "l_quantity"};
  amount.fn = [](const RowLayout& layout, const std::byte* row,
                 const int* fields, std::byte* dst) {
    double v = layout.GetFloat64(row, fields[0]) *
                   (1.0 - layout.GetFloat64(row, fields[1])) -
               layout.GetFloat64(row, fields[2]) *
                   layout.GetFloat64(row, fields[3]);
    std::memcpy(dst, &v, 8);
  };
  auto plan = Aggregate(
      MapColumns(std::move(opl),
                 {std::move(amount), YearMap("o_year", "o_orderdate")}),
      {"n_name", "o_year"}, {AggDef::Sum("amount", "sum_profit")});
  return steps.Run(*plan);
}

// Q10: returned-item reporting.
QueryResult RunQ10(const TpchDb& db, const ExecOptions& base,
                   QueryStats* stats, ThreadPool* pool) {
  StepRunner steps(base, stats, pool);
  auto co = Join(ScanTable(&db.customer),
                 ScanTable(&db.orders,
                           {P::BetweenI("o_orderdate", MakeDate(1993, 10, 1),
                                        MakeDate(1993, 12, 31))}),
                 {{"c_custkey", "o_custkey"}});
  auto col = Join(std::move(co),
                  ScanTable(&db.lineitem, {P::StrEq("l_returnflag", "R")}),
                  {{"o_orderkey", "l_orderkey"}});
  auto ncol = Join(ScanTable(&db.nation), std::move(col),
                   {{"n_nationkey", "c_nationkey"}});
  auto plan = Aggregate(
      MapColumns(std::move(ncol),
                 {RevenueMap("revenue", "l_extendedprice", "l_discount")}),
      {"c_custkey", "c_name", "n_name"}, {AggDef::Sum("revenue", "rev")});
  return steps.Run(*plan);
}

// Q11: important stock identification in GERMANY.
QueryResult RunQ11(const TpchDb& db, const ExecOptions& base,
                   QueryStats* stats, ThreadPool* pool) {
  StepRunner steps(base, stats, pool);
  MapDef value;
  value.name = "value";
  value.type = DataType::kFloat64;
  value.inputs = {"ps_supplycost", "ps_availqty"};
  value.fn = [](const RowLayout& layout, const std::byte* row,
                const int* fields, std::byte* dst) {
    double v = layout.GetFloat64(row, fields[0]) *
               static_cast<double>(layout.GetInt64(row, fields[1]));
    std::memcpy(dst, &v, 8);
  };
  auto german_ps = [&](MapDef value_map) {
    return MapColumns(
        Join(Join(ScanTable(&db.nation, {P::StrEq("n_name", "GERMANY")}),
                  ScanTable(&db.supplier), {{"n_nationkey", "s_nationkey"}}),
             ScanTable(&db.partsupp), {{"s_suppkey", "ps_suppkey"}}),
        {std::move(value_map)});
  };

  // Step 1 (2 joins): total German stock value.
  auto total_plan =
      Aggregate(german_ps(value), {}, {AggDef::Sum("value", "total")});
  QueryResult total_result = steps.Run(*total_plan);
  double threshold = std::get<double>(total_result.rows[0][0]) * 0.0001 /
                     std::max(db.scale_factor, 0.01);

  // Step 2 (2 joins): per-part value.
  auto per_part = Aggregate(german_ps(value), {"ps_partkey"},
                            {AggDef::Sum("value", "part_value")});
  Table pv = MaterializeResult(steps.Run(*per_part), "part_value",
                               {{"pv_partkey", DataType::kInt64, 0},
                                {"pv_value", DataType::kFloat64, 0}});

  // Step 3: HAVING — parts above the threshold.
  auto having = Aggregate(ScanTable(&pv, {P::GtD("pv_value", threshold)}),
                          {"pv_partkey"}, {AggDef::Max("pv_value", "value")});
  return steps.Run(*having);
}

// Q12: shipping modes and order priority (lineitem is the build side).
QueryResult RunQ12(const TpchDb& db, const ExecOptions& base,
                   QueryStats* stats, ThreadPool* pool) {
  StepRunner steps(base, stats, pool);
  MapDef high;
  high.name = "high_line";
  high.type = DataType::kInt64;
  high.inputs = {"o_orderpriority"};
  high.fn = [](const RowLayout& layout, const std::byte* row,
               const int* fields, std::byte* dst) {
    int64_t flag = (CharFieldEquals(layout, row, fields[0], "1-URGENT") ||
                    CharFieldEquals(layout, row, fields[0], "2-HIGH"))
                       ? 1
                       : 0;
    std::memcpy(dst, &flag, 8);
  };
  MapDef low;
  low.name = "low_line";
  low.type = DataType::kInt64;
  low.inputs = {"high_line"};
  low.fn = [](const RowLayout& layout, const std::byte* row,
              const int* fields, std::byte* dst) {
    int64_t flag = 1 - layout.GetInt64(row, fields[0]);
    std::memcpy(dst, &flag, 8);
  };
  auto plan = Aggregate(
      MapColumns(
          MapColumns(
              Join(ScanTable(
                       &db.lineitem,
                       {P::StrIn("l_shipmode", {"MAIL", "SHIP"}),
                        P::ColLt("l_commitdate", "l_receiptdate"),
                        P::ColLt("l_shipdate", "l_commitdate"),
                        P::BetweenI("l_receiptdate", MakeDate(1994, 1, 1),
                                    MakeDate(1994, 12, 31))}),
                   ScanTable(&db.orders), {{"l_orderkey", "o_orderkey"}}),
              {std::move(high)}),
          {std::move(low)}),
      {"l_shipmode"},
      {AggDef::Sum("high_line", "high_count"),
       AggDef::Sum("low_line", "low_count")});
  return steps.Run(*plan);
}

// Q14: promotion effect.
QueryResult RunQ14(const TpchDb& db, const ExecOptions& base,
                   QueryStats* stats, ThreadPool* pool) {
  StepRunner steps(base, stats, pool);
  MapDef promo_flag;
  promo_flag.name = "is_promo";
  promo_flag.type = DataType::kInt64;
  promo_flag.inputs = {"p_type"};
  promo_flag.fn = [](const RowLayout& layout, const std::byte* row,
                     const int* fields, std::byte* dst) {
    int64_t flag = CharFieldPrefix(layout, row, fields[0], "PROMO") ? 1 : 0;
    std::memcpy(dst, &flag, 8);
  };
  auto plan = Aggregate(
      MapColumns(
          MapColumns(
              Join(ScanTable(&db.lineitem,
                             {P::BetweenI("l_shipdate", MakeDate(1995, 9, 1),
                                          MakeDate(1995, 9, 30))}),
                   ScanTable(&db.part), {{"l_partkey", "p_partkey"}}),
              {RevenueMap("revenue", "l_extendedprice", "l_discount"),
               std::move(promo_flag)}),
          {MaskedMap("promo_revenue", "revenue", "is_promo")}),
      {},
      {AggDef::Sum("promo_revenue", "promo"), AggDef::Sum("revenue", "total")});
  return steps.Run(*plan);
}

// Q15: top supplier by quarterly revenue.
QueryResult RunQ15(const TpchDb& db, const ExecOptions& base,
                   QueryStats* stats, ThreadPool* pool) {
  StepRunner steps(base, stats, pool);
  // Step 1: the revenue view.
  auto view = Aggregate(
      MapColumns(ScanTable(&db.lineitem,
                           {P::BetweenI("l_shipdate", MakeDate(1996, 1, 1),
                                        MakeDate(1996, 3, 31))}),
                 {RevenueMap("revenue", "l_extendedprice", "l_discount")}),
      {"l_suppkey"}, {AggDef::Sum("revenue", "total_revenue")});
  Table rev = MaterializeResult(steps.Run(*view), "revenue_view",
                                {{"rv_suppkey", DataType::kInt64, 0},
                                 {"rv_total", DataType::kFloat64, 0}});

  // Step 2: the maximum revenue.
  auto max_plan =
      Aggregate(ScanTable(&rev), {}, {AggDef::Max("rv_total", "max_rev")});
  double max_rev = std::get<double>(steps.Run(*max_plan).rows[0][0]);

  // Step 3 (1 join): the supplier(s) achieving it.
  auto main = Aggregate(
      Join(ScanTable(&rev, {P::BetweenD("rv_total", max_rev, max_rev)}),
           ScanTable(&db.supplier), {{"rv_suppkey", "s_suppkey"}}),
      {"s_suppkey", "s_name"}, {AggDef::Max("rv_total", "total_revenue")});
  return steps.Run(*main);
}

// Q16: parts/supplier relationship (anti join against complaint suppliers).
QueryResult RunQ16(const TpchDb& db, const ExecOptions& base,
                   QueryStats* stats, ThreadPool* pool) {
  StepRunner steps(base, stats, pool);
  auto pps = Join(
      ScanTable(&db.part,
                {P::StrNe("p_brand", "Brand#45"),
                 P::StrNotContains("p_type", "MEDIUM POLISHED"),
                 P::InI("p_size", {49, 14, 23, 45, 19, 3, 36, 9})}),
      ScanTable(&db.partsupp), {{"p_partkey", "ps_partkey"}});
  auto anti = Join(
      ScanTable(&db.supplier,
                {P::StrContains("s_comment", "Customer Complaints")}),
      std::move(pps), {{"s_suppkey", "ps_suppkey"}}, JoinKind::kProbeAnti);
  auto plan = Aggregate(std::move(anti), {"p_brand", "p_type", "p_size"},
                        {AggDef::Count("ps_suppkey", "supplier_cnt")});
  return steps.Run(*plan);
}

// Q17: small-quantity-order revenue (avg quantity per part subquery).
QueryResult RunQ17(const TpchDb& db, const ExecOptions& base,
                   QueryStats* stats, ThreadPool* pool) {
  StepRunner steps(base, stats, pool);
  auto avg_plan = Aggregate(ScanTable(&db.lineitem), {"l_partkey"},
                            {AggDef::Avg("l_quantity", "avg_qty")});
  Table aq = MaterializeResult(steps.Run(*avg_plan), "avg_qty",
                               {{"aq_partkey", DataType::kInt64, 0},
                                {"aq_avg", DataType::kFloat64, 0}});

  FilterDef below_avg;
  below_avg.inputs = {"l_quantity", "aq_avg"};
  below_avg.label = "l_quantity < 0.2 * avg";
  below_avg.fn = [](const RowLayout& layout, const std::byte* row,
                    const int* fields) {
    return layout.GetFloat64(row, fields[0]) <
           0.2 * layout.GetFloat64(row, fields[1]);
  };
  auto main = Aggregate(
      Filter(Join(ScanTable(&aq),
                  Join(ScanTable(&db.part, {P::StrEq("p_brand", "Brand#23"),
                                            P::StrEq("p_container", "MED BOX")}),
                       ScanTable(&db.lineitem), {{"p_partkey", "l_partkey"}}),
                  {{"aq_partkey", "l_partkey"}}),
             std::move(below_avg)),
      {}, {AggDef::Sum("l_extendedprice", "total_price")});
  return steps.Run(*main);
}

// Q18: large-volume customers.
QueryResult RunQ18(const TpchDb& db, const ExecOptions& base,
                   QueryStats* stats, ThreadPool* pool) {
  StepRunner steps(base, stats, pool);
  auto qty_plan = Aggregate(ScanTable(&db.lineitem), {"l_orderkey"},
                            {AggDef::Sum("l_quantity", "sum_qty")});
  Table big = MaterializeResult(steps.Run(*qty_plan), "order_qty",
                                {{"bo_orderkey", DataType::kInt64, 0},
                                 {"bo_qty", DataType::kFloat64, 0}});

  // Spec parameter is 300..315; with scaled-down data (max 7 lines x 50 qty
  // per order) 240 keeps Q18's extreme selectivity while yielding non-empty
  // results at fractional scale factors.
  auto bo = Join(ScanTable(&big, {P::GtD("bo_qty", 240.0)}),
                 ScanTable(&db.orders), {{"bo_orderkey", "o_orderkey"}});
  auto cbo = Join(ScanTable(&db.customer), std::move(bo),
                  {{"c_custkey", "o_custkey"}});
  auto lcbo = Join(std::move(cbo), ScanTable(&db.lineitem),
                   {{"o_orderkey", "l_orderkey"}});
  auto plan = Aggregate(std::move(lcbo),
                        {"c_name", "o_orderkey", "o_totalprice", "bo_qty"},
                        {AggDef::Sum("l_quantity", "qty")});
  return steps.Run(*plan);
}

// Q19: discounted revenue (disjunctive brand/container/quantity branches).
QueryResult RunQ19(const TpchDb& db, const ExecOptions& base,
                   QueryStats* stats, ThreadPool* pool) {
  StepRunner steps(base, stats, pool);
  FilterDef branches;
  branches.inputs = {"p_brand", "p_container", "p_size", "l_quantity"};
  branches.label = "Q19 OR-branches";
  branches.fn = [](const RowLayout& layout, const std::byte* row,
                   const int* fields) {
    const int64_t size = layout.GetInt64(row, fields[2]);
    const double qty = layout.GetFloat64(row, fields[3]);
    auto container_in = [&](std::initializer_list<std::string_view> set) {
      for (std::string_view c : set) {
        if (CharFieldEquals(layout, row, fields[1], c)) return true;
      }
      return false;
    };
    if (CharFieldEquals(layout, row, fields[0], "Brand#12") &&
        container_in({"SM CASE", "SM BOX", "SM PACK", "SM PKG"}) &&
        qty >= 1 && qty <= 11 && size >= 1 && size <= 5) {
      return true;
    }
    if (CharFieldEquals(layout, row, fields[0], "Brand#23") &&
        container_in({"MED BAG", "MED BOX", "MED PKG", "MED PACK"}) &&
        qty >= 10 && qty <= 20 && size >= 1 && size <= 10) {
      return true;
    }
    if (CharFieldEquals(layout, row, fields[0], "Brand#34") &&
        container_in({"LG CASE", "LG BOX", "LG PACK", "LG PKG"}) &&
        qty >= 20 && qty <= 30 && size >= 1 && size <= 15) {
      return true;
    }
    return false;
  };
  auto plan = Aggregate(
      MapColumns(
          Filter(Join(ScanTable(&db.part,
                                {P::InI("p_size", {1, 2, 3, 4, 5, 6, 7, 8, 9,
                                                   10, 11, 12, 13, 14, 15})}),
                      ScanTable(&db.lineitem,
                                {P::StrIn("l_shipmode", {"AIR", "REG AIR"}),
                                 P::StrEq("l_shipinstruct",
                                          "DELIVER IN PERSON")}),
                      {{"p_partkey", "l_partkey"}}),
                 std::move(branches)),
          {RevenueMap("revenue", "l_extendedprice", "l_discount")}),
      {}, {AggDef::Sum("revenue", "rev")});
  return steps.Run(*plan);
}

// Q20: potential part promotion (forest parts, CANADA suppliers).
QueryResult RunQ20(const TpchDb& db, const ExecOptions& base,
                   QueryStats* stats, ThreadPool* pool) {
  StepRunner steps(base, stats, pool);
  // Step 1: shipped quantity per (part, supplier) in 1994.
  auto sq_plan = Aggregate(
      ScanTable(&db.lineitem,
                {P::BetweenI("l_shipdate", MakeDate(1994, 1, 1),
                             MakeDate(1994, 12, 31))}),
      {"l_partkey", "l_suppkey"}, {AggDef::Sum("l_quantity", "qty")});
  Table sq = MaterializeResult(steps.Run(*sq_plan), "shipped_qty",
                               {{"sq_partkey", DataType::kInt64, 0},
                                {"sq_suppkey", DataType::kInt64, 0},
                                {"sq_qty", DataType::kFloat64, 0}});

  // Step 2 (4 joins): partsupp of forest parts with surplus stock, reduced
  // to suppliers, restricted to CANADA.
  auto forest_ps =
      Join(ScanTable(&db.part, {P::StrPrefix("p_name", "forest")}),
           ScanTable(&db.partsupp), {{"p_partkey", "ps_partkey"}},
           JoinKind::kProbeSemi);
  auto with_qty = Join(ScanTable(&sq), std::move(forest_ps),
                       {{"sq_partkey", "ps_partkey"},
                        {"sq_suppkey", "ps_suppkey"}});
  FilterDef surplus;
  surplus.inputs = {"ps_availqty", "sq_qty"};
  surplus.label = "availqty > 0.5 * shipped";
  surplus.fn = [](const RowLayout& layout, const std::byte* row,
                  const int* fields) {
    return static_cast<double>(layout.GetInt64(row, fields[0])) >
           0.5 * layout.GetFloat64(row, fields[1]);
  };
  auto suppliers = Join(Filter(std::move(with_qty), std::move(surplus)),
                        ScanTable(&db.supplier),
                        {{"ps_suppkey", "s_suppkey"}}, JoinKind::kProbeSemi);
  auto canada = Join(ScanTable(&db.nation, {P::StrEq("n_name", "CANADA")}),
                     std::move(suppliers), {{"n_nationkey", "s_nationkey"}});
  auto plan =
      Aggregate(std::move(canada), {"s_name"}, {AggDef::CountStar("cnt")});
  return steps.Run(*plan);
}

// Q21: suppliers who kept orders waiting (the left-deep tree of Figure 13).
QueryResult RunQ21(const TpchDb& db, const ExecOptions& base,
                   QueryStats* stats, ThreadPool* pool) {
  StepRunner steps(base, stats, pool);
  // Step 1: supplier span over all lineitems per order. "Another supplier
  // exists" <=> min != max or min != this supplier.
  auto all_span = Aggregate(ScanTable(&db.lineitem), {"l_orderkey"},
                            {AggDef::Min("l_suppkey", "mn"),
                             AggDef::Max("l_suppkey", "mx")});
  Table spans = MaterializeResult(steps.Run(*all_span), "supp_span",
                                  {{"as_orderkey", DataType::kInt64, 0},
                                   {"as_min", DataType::kFloat64, 0},
                                   {"as_max", DataType::kFloat64, 0}});

  // Step 2: supplier span over *late* lineitems per order.
  auto late_span = Aggregate(
      ScanTable(&db.lineitem, {P::ColLt("l_commitdate", "l_receiptdate")}),
      {"l_orderkey"},
      {AggDef::Min("l_suppkey", "mn"), AggDef::Max("l_suppkey", "mx"),
       AggDef::CountStar("cnt")});
  Table late = MaterializeResult(steps.Run(*late_span), "late_span",
                                 {{"ls_orderkey", DataType::kInt64, 0},
                                  {"ls_min", DataType::kFloat64, 0},
                                  {"ls_max", DataType::kFloat64, 0},
                                  {"ls_cnt", DataType::kInt64, 0}});

  // Step 3 (5 joins): the join tree of Figure 13.
  auto sn = Join(ScanTable(&db.nation, {P::StrEq("n_name", "SAUDI ARABIA")}),
                 ScanTable(&db.supplier), {{"n_nationkey", "s_nationkey"}});
  auto l1 = Join(std::move(sn),
                 ScanTable(&db.lineitem,
                           {P::ColLt("l_commitdate", "l_receiptdate")}),
                 {{"s_suppkey", "l_suppkey"}});
  auto o = Join(ScanTable(&db.orders, {P::StrEq("o_orderstatus", "F")}),
                std::move(l1), {{"o_orderkey", "l_orderkey"}});
  auto a = Join(ScanTable(&spans), std::move(o),
                {{"as_orderkey", "l_orderkey"}});
  FilterDef exists_other;
  exists_other.inputs = {"as_min", "as_max", "l_suppkey"};
  exists_other.label = "exists other supplier";
  exists_other.fn = [](const RowLayout& layout, const std::byte* row,
                       const int* fields) {
    double s = static_cast<double>(layout.GetInt64(row, fields[2]));
    return layout.GetFloat64(row, fields[0]) != s ||
           layout.GetFloat64(row, fields[1]) != s;
  };
  auto with_other = Filter(std::move(a), std::move(exists_other));
  auto l3 = Join(ScanTable(&late), std::move(with_other),
                 {{"ls_orderkey", "l_orderkey"}}, JoinKind::kLeftOuter);
  FilterDef no_other_late;
  no_other_late.inputs = {"ls_min", "ls_max", "ls_cnt", "l_suppkey"};
  no_other_late.label = "no other late supplier";
  no_other_late.fn = [](const RowLayout& layout, const std::byte* row,
                        const int* fields) {
    int64_t count = layout.GetInt64(row, fields[2]);
    if (count == 0) return true;  // no late lineitems at all (null padding)
    double s = static_cast<double>(layout.GetInt64(row, fields[3]));
    return layout.GetFloat64(row, fields[0]) == s &&
           layout.GetFloat64(row, fields[1]) == s;
  };
  auto plan = Aggregate(Filter(std::move(l3), std::move(no_other_late)),
                        {"s_name"}, {AggDef::CountStar("numwait")});
  return steps.Run(*plan);
}

// Q22: global sales opportunity (the 30%-faster BRJ join of Section 5.3.2).
QueryResult RunQ22(const TpchDb& db, const ExecOptions& base,
                   QueryStats* stats, ThreadPool* pool) {
  StepRunner steps(base, stats, pool);
  // Country codes 13,31,23,29,30,18,17 <=> nation keys (code - 10).
  std::vector<int64_t> nations = {3, 21, 13, 19, 20, 8, 7};

  // Step 1: average positive account balance of those customers.
  auto avg_plan = Aggregate(
      ScanTable(&db.customer,
                {P::InI("c_nationkey", nations), P::GtD("c_acctbal", 0.0)}),
      {}, {AggDef::Avg("c_acctbal", "avg_bal")});
  double avg_bal = std::get<double>(steps.Run(*avg_plan).rows[0][0]);

  // Step 2 (1 join): rich inactive customers — the anti join reads customer
  // as the build side and the unfiltered orders as the probe side.
  MapDef cntrycode;
  cntrycode.name = "cntrycode";
  cntrycode.type = DataType::kInt64;
  cntrycode.inputs = {"c_nationkey"};
  cntrycode.fn = [](const RowLayout& layout, const std::byte* row,
                    const int* fields, std::byte* dst) {
    int64_t code = 10 + layout.GetInt64(row, fields[0]);
    std::memcpy(dst, &code, 8);
  };
  auto plan = Aggregate(
      MapColumns(Join(ScanTable(&db.customer,
                                {P::InI("c_nationkey", nations),
                                 P::GtD("c_acctbal", avg_bal)}),
                      ScanTable(&db.orders), {{"c_custkey", "o_custkey"}},
                      JoinKind::kBuildAnti),
                 {std::move(cntrycode)}),
      {"cntrycode"},
      {AggDef::CountStar("numcust"), AggDef::Sum("c_acctbal", "totacctbal")});
  return steps.Run(*plan);
}

}  // namespace

const std::vector<TpchQuery>& TpchQueries() {
  static const std::vector<TpchQuery>* queries = new std::vector<TpchQuery>{
      {2, "Q2 minimum cost supplier", 6, RunQ2},
      {3, "Q3 shipping priority", 2, RunQ3},
      {4, "Q4 order priority checking", 1, RunQ4},
      {5, "Q5 local supplier volume", 5, RunQ5},
      {7, "Q7 volume shipping", 5, RunQ7},
      {8, "Q8 national market share", 7, RunQ8},
      {9, "Q9 product type profit", 5, RunQ9},
      {10, "Q10 returned items", 3, RunQ10},
      {11, "Q11 important stock", 4, RunQ11},
      {12, "Q12 shipping modes", 1, RunQ12},
      {14, "Q14 promotion effect", 1, RunQ14},
      {15, "Q15 top supplier", 1, RunQ15},
      {16, "Q16 parts/supplier relationship", 2, RunQ16},
      {17, "Q17 small quantity orders", 2, RunQ17},
      {18, "Q18 large volume customers", 3, RunQ18},
      {19, "Q19 discounted revenue", 1, RunQ19},
      {20, "Q20 potential promotion", 4, RunQ20},
      {21, "Q21 suppliers who kept orders waiting", 5, RunQ21},
      {22, "Q22 global sales opportunity", 1, RunQ22},
  };
  return *queries;
}

const TpchQuery& GetTpchQuery(int id) {
  for (const auto& q : TpchQueries()) {
    if (q.id == id) return q;
  }
  PJOIN_CHECK_MSG(false, "unknown TPC-H query id");
  return TpchQueries().front();
}

int TotalTpchJoins() {
  int total = 0;
  for (const auto& q : TpchQueries()) total += q.num_joins;
  return total;
}

}  // namespace pjoin
