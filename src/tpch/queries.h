// The 19 join-bearing TPC-H queries (Q1, Q6 have no joins; Q13 uses a
// groupjoin in the paper's system and is excluded there too).
//
// Each query is a function building and executing the (hand-optimized) plan
// the paper's system would use, with every equi-join replaced by the join
// strategy under test. Queries with scalar or aggregated subqueries run them
// as separate steps whose intermediate results are materialized into
// temporary tables; stats accumulate across steps, and the per-join
// strategy overrides of Figure 12 are numbered post-order across all steps.
#ifndef PJOIN_TPCH_QUERIES_H_
#define PJOIN_TPCH_QUERIES_H_

#include <functional>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "tpch/gen.h"

namespace pjoin {

struct TpchQuery {
  int id = 0;
  std::string name;
  // Number of equi-joins this query executes (across all steps).
  int num_joins = 0;
  std::function<QueryResult(const TpchDb&, const ExecOptions&, QueryStats*,
                            ThreadPool*)>
      run;
};

// All 19 queries, ordered by id.
const std::vector<TpchQuery>& TpchQueries();

// Lookup by query id; aborts on unknown ids.
const TpchQuery& GetTpchQuery(int id);

// Total number of equi-joins across the benchmark (the paper reports 59 for
// its plans; ours is close — the exact count is printed by the benches).
int TotalTpchJoins();

}  // namespace pjoin

#endif  // PJOIN_TPCH_QUERIES_H_
