#include "util/aligned_buffer.h"

#include <cstdlib>

#include "util/bitutil.h"
#include "util/check.h"

namespace pjoin {

void AlignedBuffer::Allocate(size_t bytes, size_t alignment) {
  Free();
  if (bytes == 0) return;
  PJOIN_CHECK(IsPow2(alignment));
  size_t padded = AlignUp(bytes, alignment);
  void* p = std::aligned_alloc(alignment, padded);
  PJOIN_CHECK_MSG(p != nullptr, "aligned_alloc failed");
  data_ = static_cast<std::byte*>(p);
  size_ = padded;
}

void AlignedBuffer::EnsureCapacity(size_t bytes, size_t alignment) {
  if (bytes <= size_) return;
  Allocate(bytes, alignment);
}

void AlignedBuffer::Free() {
  std::free(data_);
  data_ = nullptr;
  size_ = 0;
}

}  // namespace pjoin
