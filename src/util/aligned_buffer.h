// Cache-line-aligned memory buffer.
//
// The radix partitioner streams full software write-combine buffers to their
// destination with non-temporal stores, which require 64-byte alignment of
// both source and destination; all partition output memory therefore comes
// from AlignedBuffer.
#ifndef PJOIN_UTIL_ALIGNED_BUFFER_H_
#define PJOIN_UTIL_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <utility>

namespace pjoin {

inline constexpr size_t kCacheLineSize = 64;

class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(size_t bytes, size_t alignment = kCacheLineSize) {
    Allocate(bytes, alignment);
  }
  ~AlignedBuffer() { Free(); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  // (Re-)allocates the buffer. Existing contents are discarded.
  void Allocate(size_t bytes, size_t alignment = kCacheLineSize);

  // Grows the buffer if it is smaller than `bytes`; never shrinks. Used by
  // the per-worker reusable hash-table segments (Section 4.6 of the paper).
  void EnsureCapacity(size_t bytes, size_t alignment = kCacheLineSize);

  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  void Free();

  std::byte* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace pjoin

#endif  // PJOIN_UTIL_ALIGNED_BUFFER_H_
