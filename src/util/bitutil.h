// Small bit-manipulation helpers used by hash tables and the partitioner.
#ifndef PJOIN_UTIL_BITUTIL_H_
#define PJOIN_UTIL_BITUTIL_H_

#include <bit>
#include <cstdint>

namespace pjoin {

// Smallest power of two >= v (v must be >= 1).
inline uint64_t NextPow2(uint64_t v) { return std::bit_ceil(v); }

// log2 of a power of two.
inline int Log2Pow2(uint64_t v) { return std::countr_zero(v); }

// Ceiling of log2(v) for v >= 1.
inline int CeilLog2(uint64_t v) { return Log2Pow2(NextPow2(v)); }

inline bool IsPow2(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

// Rounds v up to the next multiple of `align` (align must be a power of two).
inline uint64_t AlignUp(uint64_t v, uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

}  // namespace pjoin

#endif  // PJOIN_UTIL_BITUTIL_H_
