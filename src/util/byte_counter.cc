#include "util/byte_counter.h"

namespace pjoin {

const char* JoinPhaseName(JoinPhase phase) {
  switch (phase) {
    case JoinPhase::kBuildPipeline:
      return "build";
    case JoinPhase::kPartitionPass1:
      return "partition pass 1";
    case JoinPhase::kHistogramScan:
      return "scan";
    case JoinPhase::kPartitionPass2:
      return "partition pass 2";
    case JoinPhase::kJoin:
      return "join";
    case JoinPhase::kProbePipeline:
      return "probe";
    case JoinPhase::kNumPhases:
      break;
  }
  return "unknown";
}

}  // namespace pjoin
