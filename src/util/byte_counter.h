// Software byte accounting, our substitute for Intel PCM in Figure 10.
//
// Each join phase registers the bytes it logically reads and writes. The
// bandwidth benchmark divides these totals by the phase wall time to produce
// the per-phase effective-bandwidth profile the paper measures with hardware
// counters. Counting is per-thread and merged on demand, so the hot paths
// stay contention-free.
#ifndef PJOIN_UTIL_BYTE_COUNTER_H_
#define PJOIN_UTIL_BYTE_COUNTER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace pjoin {

// Execution phases distinguished by Figure 10 of the paper.
enum class JoinPhase : int {
  kBuildPipeline = 0,   // scanning/producing the build input
  kPartitionPass1 = 1,  // first radix pass (chunked, worker-local)
  kHistogramScan = 2,   // re-scan of pass-1 chunks for pass-2 histograms
  kPartitionPass2 = 3,  // second radix pass (scatter to final partitions)
  kJoin = 4,            // hash-table build + probe per partition
  kProbePipeline = 5,   // scanning/producing the probe input
  kNumPhases = 6
};

const char* JoinPhaseName(JoinPhase phase);

struct PhaseBytes {
  uint64_t read = 0;
  uint64_t written = 0;
};

// Per-thread accumulator. Instances are owned by the thread contexts of a
// pipeline execution; no synchronization on the increment path.
class ByteCounter {
 public:
  void AddRead(JoinPhase phase, uint64_t bytes) {
    bytes_[static_cast<int>(phase)].read += bytes;
  }
  void AddWrite(JoinPhase phase, uint64_t bytes) {
    bytes_[static_cast<int>(phase)].written += bytes;
  }

  const PhaseBytes& phase(JoinPhase p) const {
    return bytes_[static_cast<int>(p)];
  }

  void Merge(const ByteCounter& other) {
    for (int i = 0; i < static_cast<int>(JoinPhase::kNumPhases); ++i) {
      bytes_[i].read += other.bytes_[i].read;
      bytes_[i].written += other.bytes_[i].written;
    }
  }

  void Reset() { bytes_ = {}; }

 private:
  std::array<PhaseBytes, static_cast<size_t>(JoinPhase::kNumPhases)> bytes_{};
};

// Wall time per phase, recorded by the phase owner (single writer).
class PhaseTimer {
 public:
  void Add(JoinPhase phase, double seconds) {
    seconds_[static_cast<int>(phase)] += seconds;
  }
  double seconds(JoinPhase p) const { return seconds_[static_cast<int>(p)]; }
  void Reset() { seconds_ = {}; }

 private:
  std::array<double, static_cast<size_t>(JoinPhase::kNumPhases)> seconds_{};
};

}  // namespace pjoin

#endif  // PJOIN_UTIL_BYTE_COUNTER_H_
