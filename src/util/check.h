// Lightweight CHECK macros. PJOIN_CHECK is always active (used on cold paths
// and invariants whose violation would corrupt results); PJOIN_DCHECK compiles
// away outside debug builds and may be used on hot paths.
#ifndef PJOIN_UTIL_CHECK_H_
#define PJOIN_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define PJOIN_CHECK(cond)                                                     \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "PJOIN_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define PJOIN_CHECK_MSG(cond, msg)                                            \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "PJOIN_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                           \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#ifndef NDEBUG
#define PJOIN_DCHECK(cond) PJOIN_CHECK(cond)
#else
#define PJOIN_DCHECK(cond) \
  do {                     \
  } while (0)
#endif

#endif  // PJOIN_UTIL_CHECK_H_
