#include "util/cpu_info.h"

#include <fstream>
#include <sstream>
#include <thread>

namespace pjoin {

namespace {

// Parses strings like "32K", "1024K", "19M" from sysfs cache size files.
int64_t ParseCacheSize(const std::string& text) {
  if (text.empty()) return 0;
  size_t pos = 0;
  long long value = std::stoll(text, &pos);
  if (pos < text.size()) {
    char suffix = text[pos];
    if (suffix == 'K' || suffix == 'k') value *= 1024;
    if (suffix == 'M' || suffix == 'm') value *= 1024 * 1024;
  }
  return value;
}

std::string ReadFirstLine(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in) std::getline(in, line);
  return line;
}

CpuInfo Probe() {
  CpuInfo info;
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw > 0) info.logical_cores = hw;

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  info.has_avx2 = __builtin_cpu_supports("avx2") != 0;
  info.has_avx512 = __builtin_cpu_supports("avx512f") != 0 &&
                    __builtin_cpu_supports("avx512dq") != 0;
#endif

  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    if (line.rfind("model name", 0) == 0) {
      size_t colon = line.find(':');
      if (colon != std::string::npos) {
        info.model_name = line.substr(colon + 2);
      }
      break;
    }
  }

  const std::string base = "/sys/devices/system/cpu/cpu0/cache/";
  for (int idx = 0; idx < 8; ++idx) {
    std::string dir = base + "index" + std::to_string(idx) + "/";
    std::string level = ReadFirstLine(dir + "level");
    if (level.empty()) break;
    std::string type = ReadFirstLine(dir + "type");
    int64_t size = ParseCacheSize(ReadFirstLine(dir + "size"));
    if (size <= 0) continue;
    if (level == "1" && type == "Data") info.l1d_bytes = size;
    if (level == "2") info.l2_bytes = size;
    if (level == "3") info.llc_bytes = size;
  }
  return info;
}

}  // namespace

const CpuInfo& GetCpuInfo() {
  static const CpuInfo* info = new CpuInfo(Probe());
  return *info;
}

}  // namespace pjoin
