// Probes cache sizes and core counts of the host.
//
// The paper's Table 4 expresses the partitioning break-even in terms of the
// last-level cache size; the partitioner also sizes its fan-out so that one
// build partition fits in the L2 cache.
#ifndef PJOIN_UTIL_CPU_INFO_H_
#define PJOIN_UTIL_CPU_INFO_H_

#include <cstdint>
#include <string>

namespace pjoin {

struct CpuInfo {
  std::string model_name;
  int logical_cores = 1;
  int64_t l1d_bytes = 32 * 1024;
  int64_t l2_bytes = 1024 * 1024;
  int64_t llc_bytes = 16 * 1024 * 1024;
  // ISA capabilities consumed by the SIMD kernel dispatch (util/simd):
  // has_avx512 requires both F (foundation) and DQ (64-bit multiply), the
  // two extensions the avx512 kernel tier uses.
  bool has_avx2 = false;
  bool has_avx512 = false;
};

// Cached singleton; reads /sys and /proc on first use, falling back to the
// defaults above when the files are unavailable.
const CpuInfo& GetCpuInfo();

}  // namespace pjoin

#endif  // PJOIN_UTIL_CPU_INFO_H_
