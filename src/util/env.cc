#include "util/env.h"

#include <cstdlib>
#include <thread>

namespace pjoin {

int64_t GetEnvInt64(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return def;
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v) return def;
  return parsed;
}

std::string GetEnvString(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::string(v);
}

int DefaultThreads() {
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw <= 0) hw = 1;
  return static_cast<int>(GetEnvInt64("PJOIN_THREADS", hw));
}

int64_t WorkloadScaleDivisor() { return GetEnvInt64("PJOIN_SCALE", 64); }

double BenchScaleFactor() { return GetEnvDouble("PJOIN_SF", 0.1); }

int BenchRepetitions() {
  return static_cast<int>(GetEnvInt64("PJOIN_REPS", 3));
}

}  // namespace pjoin
