#include "util/env.h"

#include <cctype>
#include <cstdlib>
#include <thread>

namespace pjoin {

int64_t GetEnvInt64(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return def;
  // A partially numeric value ("12abc") is a configuration mistake, not a
  // number; surface it as unparsable instead of truncating.
  while (*end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) return def;
    ++end;
  }
  return static_cast<int64_t>(parsed);
}

double GetEnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  double parsed = std::strtod(v, &end);
  if (end == v) return def;
  while (*end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) return def;
    ++end;
  }
  return parsed;
}

std::string GetEnvString(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::string(v);
}

bool ParseByteSize(const std::string& text, uint64_t* out) {
  const char* v = text.c_str();
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v || parsed < 0) return false;
  uint64_t value = static_cast<uint64_t>(parsed);
  uint64_t multiplier = 1;
  if (*end != '\0') {
    switch (std::tolower(static_cast<unsigned char>(*end))) {
      case 'k':
        multiplier = 1024ull;
        break;
      case 'm':
        multiplier = 1024ull * 1024;
        break;
      case 'g':
        multiplier = 1024ull * 1024 * 1024;
        break;
      case 't':
        multiplier = 1024ull * 1024 * 1024 * 1024;
        break;
      case 'b':
        multiplier = 1;
        break;
      default:
        return false;
    }
    ++end;
    // Accept the long forms "kb"/"kib" etc. after a size letter.
    if (multiplier > 1 && (*end == 'i' || *end == 'I')) ++end;
    if (multiplier > 1 && (*end == 'b' || *end == 'B')) ++end;
  }
  while (*end != '\0') {
    if (!std::isspace(static_cast<unsigned char>(*end))) return false;
    ++end;
  }
  *out = value * multiplier;
  return true;
}

uint64_t GetEnvBytes(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  uint64_t parsed = 0;
  if (!ParseByteSize(v, &parsed)) return def;
  return parsed;
}

uint64_t MemoryBudgetBytes() { return GetEnvBytes("PJOIN_MEMORY_BUDGET", 0); }

int DefaultThreads() {
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw <= 0) hw = 1;
  int threads = static_cast<int>(GetEnvInt64("PJOIN_THREADS", hw));
  // A zero or negative thread count would deadlock the pool; clamp instead.
  return threads < 1 ? 1 : threads;
}

int MaxConcurrentQueries() {
  int64_t v = GetEnvInt64("PJOIN_MAX_CONCURRENT", 4);
  return v < 1 ? 1 : static_cast<int>(v);
}

int AdmitQueueCapacity() {
  int64_t v = GetEnvInt64("PJOIN_ADMIT_QUEUE", 32);
  return v < 1 ? 1 : static_cast<int>(v);
}

int ServerThreadsPerQuery() {
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw <= 0) hw = 1;
  int def = hw / MaxConcurrentQueries();
  if (def < 1) def = 1;
  int64_t v = GetEnvInt64("PJOIN_SERVER_THREADS", def);
  return v < 1 ? 1 : static_cast<int>(v);
}

int64_t WorkloadScaleDivisor() { return GetEnvInt64("PJOIN_SCALE", 64); }

double BenchScaleFactor() { return GetEnvDouble("PJOIN_SF", 0.1); }

int BenchRepetitions() {
  return static_cast<int>(GetEnvInt64("PJOIN_REPS", 3));
}

uint64_t SkewSampleSize() {
  int64_t v = GetEnvInt64("PJOIN_SKEW_SAMPLE", 1024);
  return v < 0 ? 0 : static_cast<uint64_t>(v);
}

bool StatsEnabled() { return GetEnvInt64("PJOIN_STATS", 1) != 0; }

int StatsBuckets() {
  int64_t v = GetEnvInt64("PJOIN_STATS_BUCKETS", 64);
  if (v < 2) v = 2;
  if (v > 4096) v = 4096;
  return static_cast<int>(v);
}

bool EncodingEnabled() { return GetEnvInt64("PJOIN_ENCODING", 1) != 0; }

uint64_t EncodingMinRows() {
  int64_t v = GetEnvInt64("PJOIN_ENCODING_MIN_ROWS", 256);
  return v < 1 ? 1 : static_cast<uint64_t>(v);
}

double ReplanQErrorThreshold() {
  double v = GetEnvDouble("PJOIN_REPLAN_QERROR", 0.0);
  return v < 0.0 ? 0.0 : v;
}

double EstimateScale() {
  double v = GetEnvDouble("PJOIN_EST_SCALE", 1.0);
  return v <= 0.0 ? 1.0 : v;
}

bool RewriteEnabledEnv() { return GetEnvInt64("PJOIN_REWRITE", 1) != 0; }

int RewriteDpCapEnv() {
  int64_t v = GetEnvInt64("PJOIN_REWRITE_DP_CAP", 10);
  if (v < 2) v = 2;
  if (v > 20) v = 20;
  return static_cast<int>(v);
}

SimdTier RequestedSimdTier(SimdTier def) {
  const char* v = std::getenv("PJOIN_SIMD");
  if (v == nullptr || *v == '\0') return def;
  SimdTier parsed = def;
  if (!ParseSimdTier(v, &parsed)) return def;
  return parsed;
}

}  // namespace pjoin
