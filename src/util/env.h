// Environment-variable knobs shared by benchmarks and examples.
#ifndef PJOIN_UTIL_ENV_H_
#define PJOIN_UTIL_ENV_H_

#include <cstdint>
#include <string>

#include "util/simd.h"

namespace pjoin {

// Returns the integer value of environment variable `name`, or `def` if the
// variable is unset or unparsable. Trailing non-numeric characters make the
// value unparsable ("12abc" -> def), so typos never silently truncate.
int64_t GetEnvInt64(const char* name, int64_t def);

// Returns the floating-point value of environment variable `name`, or `def`.
double GetEnvDouble(const char* name, double def);

// Returns the string value of environment variable `name`, or `def`.
std::string GetEnvString(const char* name, const std::string& def);

// Parses a byte size with an optional binary suffix: "1048576", "512k",
// "64m", "2g" (case-insensitive, optional trailing "b" or "ib" as in
// "64MiB"). Returns false on empty/garbage/negative input.
bool ParseByteSize(const std::string& text, uint64_t* out);

// Returns the byte size of environment variable `name` parsed with
// ParseByteSize, or `def` if unset or unparsable.
uint64_t GetEnvBytes(const char* name, uint64_t def);

// Process-wide memory budget for join state (PJOIN_MEMORY_BUDGET, size
// suffixes allowed). 0 means unlimited.
uint64_t MemoryBudgetBytes();

// Number of worker threads to use: PJOIN_THREADS, defaulting to the hardware
// concurrency of this machine. Always >= 1, whatever the variable says.
int DefaultThreads();

// Server mode: maximum queries executing at once (PJOIN_MAX_CONCURRENT,
// default 4, clamped >= 1). Each concurrent query gets its own worker set,
// so total thread demand is roughly this times ServerThreadsPerQuery().
int MaxConcurrentQueries();

// Server mode: bounded admission-queue capacity (PJOIN_ADMIT_QUEUE, default
// 32, clamped >= 1). Submissions beyond max-concurrent running plus this
// many queued are rejected instead of buffered without bound.
int AdmitQueueCapacity();

// Server mode: worker threads per admitted query (PJOIN_SERVER_THREADS,
// default: hardware concurrency / PJOIN_MAX_CONCURRENT, clamped >= 1), so
// a fully loaded server oversubscribes no cores by default.
int ServerThreadsPerQuery();

// Scale divisor applied to the prior-work microbenchmark workloads
// (PJOIN_SCALE, default 64). The paper's workload A is 256 MiB x 4096 MiB,
// which does not fit a laptop-scale benchmarking budget; the divisor keeps
// all size *ratios* intact.
int64_t WorkloadScaleDivisor();

// TPC-H scale factor for benchmark runs (PJOIN_SF, default 0.1).
double BenchScaleFactor();

// Median-of-N repetitions for throughput measurements (PJOIN_REPS, default 3).
int BenchRepetitions();

// Build-side reservoir sample size for the advisor's skew estimate
// (PJOIN_SKEW_SAMPLE, default 1024). 0 disables the sampling pass and every
// skew-aware cost term.
uint64_t SkewSampleSize();

// Requested SIMD dispatch tier (PJOIN_SIMD=scalar|avx2|avx512), or `def` when
// the variable is unset or not a valid tier name — strict, like
// PJOIN_MEMORY_BUDGET, so a typo never silently changes the dispatch.
SimdTier RequestedSimdTier(SimdTier def);

// Table-statistics subsystem master switch (PJOIN_STATS, default 1).
// 0 disables collection and lookups: estimation falls back to the
// pre-statistics heuristics and the EXPLAIN/JSON output is byte-identical
// to a build without the stats subsystem.
bool StatsEnabled();

// Equal-height histogram bucket target (PJOIN_STATS_BUCKETS, default 64,
// clamped to [2, 4096]).
int StatsBuckets();

// Encoded-segment layer master switch (PJOIN_ENCODING, default 1).
// 0 disables dictionary/FOR encoding, join-on-codes, and compressed spill
// pages: scans read plain columns and the EXPLAIN/JSON output is
// byte-identical to a build without the encoding layer.
bool EncodingEnabled();

// Minimum table row count before a table is considered for encoding
// (PJOIN_ENCODING_MIN_ROWS, default 256, clamped >= 1). Tiny tables gain
// nothing from codes and keep their plain-path goldens.
uint64_t EncodingMinRows();

// Mid-query re-planning trigger (PJOIN_REPLAN_QERROR, default 0 = off).
// When > 0, joins advised by the kAuto strategy defer their engine choice
// to the probe phase and re-cost the strategy whenever the observed
// build/probe cardinality q-error meets or exceeds this threshold.
double ReplanQErrorThreshold();

// Algebraic rewrite pass master switch (PJOIN_REWRITE, default 1).
// 0 disables predicate pushdown, Bloom pushdown, and join reordering:
// every plan lowers exactly as written and the EXPLAIN/JSON output is
// byte-identical to the pre-rewrite engine.
bool RewriteEnabledEnv();

// Relation-count cap for exact DPsize join reordering
// (PJOIN_REWRITE_DP_CAP, default 10, clamped to [2, 20]). Regions with more
// relations fall back to the left-deep greedy order.
int RewriteDpCapEnv();

// Plan-time estimate corruption factor (PJOIN_EST_SCALE, default 1.0).
// Multiplies every join's build-side cardinality estimate inside the
// advisor walk — a fault-injection knob for testing and benchmarking the
// re-planner; values <= 0 are treated as 1.0.
double EstimateScale();

}  // namespace pjoin

#endif  // PJOIN_UTIL_ENV_H_
