// Environment-variable knobs shared by benchmarks and examples.
#ifndef PJOIN_UTIL_ENV_H_
#define PJOIN_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace pjoin {

// Returns the integer value of environment variable `name`, or `def` if the
// variable is unset or unparsable.
int64_t GetEnvInt64(const char* name, int64_t def);

// Returns the floating-point value of environment variable `name`, or `def`.
double GetEnvDouble(const char* name, double def);

// Returns the string value of environment variable `name`, or `def`.
std::string GetEnvString(const char* name, const std::string& def);

// Number of worker threads to use: PJOIN_THREADS, defaulting to the hardware
// concurrency of this machine.
int DefaultThreads();

// Scale divisor applied to the prior-work microbenchmark workloads
// (PJOIN_SCALE, default 64). The paper's workload A is 256 MiB x 4096 MiB,
// which does not fit a laptop-scale benchmarking budget; the divisor keeps
// all size *ratios* intact.
int64_t WorkloadScaleDivisor();

// TPC-H scale factor for benchmark runs (PJOIN_SF, default 0.1).
double BenchScaleFactor();

// Median-of-N repetitions for throughput measurements (PJOIN_REPS, default 3).
int BenchRepetitions();

}  // namespace pjoin

#endif  // PJOIN_UTIL_ENV_H_
