// Hash functions used across the join implementations.
//
// Like the system described in the paper, every tuple that flows into a join
// carries a precomputed 64-bit hash of its join key. The radix partitioner
// consumes the *low* bits of this hash pass-by-pass, the hash tables consume
// the high bits, and the Bloom filter derives its block index and tag from
// disjoint regions, so all consumers see independent bit ranges.
#ifndef PJOIN_UTIL_HASH_H_
#define PJOIN_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>

namespace pjoin {

// 64-bit finalizer from MurmurHash3 applied to an 8-byte key. This is the
// standard integer mixer used by main-memory join studies; it is invertible
// and distributes all input bits over all output bits.
inline uint64_t HashInt64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

// MurmurHash64A for arbitrary byte strings (seeded); used for CHAR columns.
uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0x8445d61a4e774912ULL);

// Combines two hashes (for composite join keys).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  // 64-bit variant of boost::hash_combine with a Murmur-style remix.
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4);
  return HashInt64(a);
}

}  // namespace pjoin

#endif  // PJOIN_UTIL_HASH_H_
