// Shared software-prefetch helper for staged probe loops.
//
// Every batched probe in the repo (chaining-HT directory walk, NPJ baseline
// probe, Bloom pre-filter) follows the same pattern: compute the hash for
// tuple i + kPrefetchDistance, prefetch the cache line it will touch, then
// process tuple i whose line was requested kPrefetchDistance iterations ago.
// The distance must cover main-memory latency (~80-100ns) divided by the
// per-tuple work (~5-6ns of hashing and bookkeeping); 16 works across the
// machines in the paper's hardware table and is deliberately NOT tuned
// per-host — the staged loops are latency-bound, so anything in 8..32
// performs within a few percent.
#ifndef PJOIN_UTIL_PREFETCH_H_
#define PJOIN_UTIL_PREFETCH_H_

#include <cstdint>

namespace pjoin {

// How far ahead staged probe loops issue their prefetch.
inline constexpr uint64_t kPrefetchDistance = 16;

// Read prefetch with low temporal locality (the line is used once and should
// not displace hot state from L1).
inline void PrefetchForRead(const void* p) { __builtin_prefetch(p, 0, 1); }

}  // namespace pjoin

#endif  // PJOIN_UTIL_PREFETCH_H_
