// Deterministic PRNG (xoshiro256**). All data generators in this repository
// are seeded explicitly so every experiment is reproducible bit-for-bit.
#ifndef PJOIN_UTIL_RNG_H_
#define PJOIN_UTIL_RNG_H_

#include <cstdint>

namespace pjoin {

class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Bound must be > 0.
  uint64_t Below(uint64_t bound) {
    // Lemire's multiply-shift rejection-free mapping (tiny bias is irrelevant
    // for benchmarking data).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace pjoin

#endif  // PJOIN_UTIL_RNG_H_
