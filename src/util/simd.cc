#include "util/simd.h"

#include <cctype>

#include "util/cpu_info.h"
#include "util/env.h"

namespace pjoin {

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kAVX2: return "avx2";
    case SimdTier::kAVX512: return "avx512";
  }
  return "unknown";
}

bool ParseSimdTier(const std::string& text, SimdTier* out) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  std::string word;
  word.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) {
    word.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(text[i]))));
  }
  if (word == "scalar") {
    *out = SimdTier::kScalar;
    return true;
  }
  if (word == "avx2") {
    *out = SimdTier::kAVX2;
    return true;
  }
  if (word == "avx512") {
    *out = SimdTier::kAVX512;
    return true;
  }
  return false;
}

SimdTier DetectSimdTier() {
#if PJOIN_SIMD_X86
  const CpuInfo& cpu = GetCpuInfo();
  if (cpu.has_avx512) return SimdTier::kAVX512;
  if (cpu.has_avx2) return SimdTier::kAVX2;
#endif
  return SimdTier::kScalar;
}

bool SimdTierAvailable(SimdTier tier) {
  return static_cast<int>(tier) <= static_cast<int>(DetectSimdTier());
}

SimdTier ActiveSimdTier() {
  static const SimdTier tier = [] {
    SimdTier detected = DetectSimdTier();
    SimdTier requested = RequestedSimdTier(detected);
    // The override only lowers: an unsupported request clamps to detected.
    return static_cast<int>(requested) < static_cast<int>(detected) ? requested
                                                                    : detected;
  }();
  return tier;
}

}  // namespace pjoin
