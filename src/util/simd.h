// SIMD dispatch tiers for the batched kernels in src/kernels/.
//
// The hot loops of every join phase (Bloom probe, directory tag check, key
// hashing, partition histogram) have scalar, AVX2, and AVX-512 variants. The
// tier is selected ONCE at startup from the host's capabilities probed by
// util/cpu_info, overridable with PJOIN_SIMD=scalar|avx2|avx512 (the override
// can only lower the tier: requesting a tier the host lacks clamps to the
// detected maximum, so a forced "avx512" never executes illegal
// instructions). The vector variants are compiled with per-function target
// attributes, so even a portable build (-DPJOIN_NATIVE=OFF) carries all tiers
// and dispatches at runtime — the scheme GCC/Clang function multi-versioning
// uses, done by hand so tests can call every tier explicitly.
#ifndef PJOIN_UTIL_SIMD_H_
#define PJOIN_UTIL_SIMD_H_

#include <string>

namespace pjoin {

// Vector tiers can be compiled with per-function target attributes only on
// x86-64 GCC/Clang; everywhere else the scalar tier is the only one.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PJOIN_SIMD_X86 1
#endif

enum class SimdTier {
  kScalar = 0,
  kAVX2 = 1,    // 4 x 64-bit lanes, gathers, variable shifts
  kAVX512 = 2,  // 8 x 64-bit lanes, mask registers, native 64-bit multiply
};

// Stable lower-case names used by PJOIN_SIMD, EXPLAIN ANALYZE, and the
// metrics JSON: "scalar" | "avx2" | "avx512".
const char* SimdTierName(SimdTier tier);

// Strict parse of a tier name (case-insensitive, surrounding whitespace
// allowed). Returns false on anything else — "avx", "sse", "512" are
// configuration mistakes, not tiers.
bool ParseSimdTier(const std::string& text, SimdTier* out);

// Highest tier this binary can run on this host: ISA support probed via
// util/cpu_info intersected with what the compiler could build.
SimdTier DetectSimdTier();

// True when `tier`'s kernels were compiled in AND the host can execute them.
bool SimdTierAvailable(SimdTier tier);

// The dispatch decision: DetectSimdTier() clamped down by the PJOIN_SIMD
// override (util/env). Computed once and cached; every batched kernel call
// goes through the table this selects.
SimdTier ActiveSimdTier();

}  // namespace pjoin

#endif  // PJOIN_UTIL_SIMD_H_
