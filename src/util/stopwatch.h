// Wall-clock stopwatch for benchmark harnesses and phase timing.
#ifndef PJOIN_UTIL_STOPWATCH_H_
#define PJOIN_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace pjoin {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pjoin

#endif  // PJOIN_UTIL_STOPWATCH_H_
