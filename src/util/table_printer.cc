#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.h"

namespace pjoin {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  PJOIN_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << " ";
    for (size_t i = 0; i < row.size(); ++i) {
      out << " " << row[i];
      out << std::string(widths[i] - row[i].size() + 1, ' ');
    }
    out << "\n";
  };
  emit_row(headers_);
  out << " ";
  for (size_t w : widths) out << " " << std::string(w + 1, '-');
  out << "\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const {
  std::string text = ToString();
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::fflush(stdout);
}

std::string TablePrinter::Mib(double bytes) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f MiB", bytes / (1024.0 * 1024.0));
  return buf;
}

std::string TablePrinter::Bytes(double bytes) {
  char buf[64];
  if (bytes >= 1024.0 * 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f GiB", bytes / (1024.0 * 1024.0 * 1024.0));
  } else if (bytes >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f MiB", bytes / (1024.0 * 1024.0));
  } else if (bytes >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.1f KiB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

std::string TablePrinter::TuplesPerSec(double tps) {
  char buf[64];
  if (tps >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f G T/s", tps / 1e9);
  } else if (tps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1f M T/s", tps / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f T/s", tps);
  }
  return buf;
}

std::string TablePrinter::Percent(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", fraction * 100.0);
  return buf;
}

std::string TablePrinter::Double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace pjoin
