// Minimal fixed-width table formatter for benchmark output.
#ifndef PJOIN_UTIL_TABLE_PRINTER_H_
#define PJOIN_UTIL_TABLE_PRINTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pjoin {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Renders the table with aligned columns; every row is prefixed by two
  // spaces so the output is easy to grep out of benchmark logs.
  std::string ToString() const;

  // Convenience: render and write to stdout.
  void Print() const;

  // Formats helpers used by the benches.
  static std::string Mib(double bytes);
  // Auto-selects B / KiB / MiB / GiB.
  static std::string Bytes(double bytes);
  static std::string TuplesPerSec(double tps);
  static std::string Percent(double fraction);
  static std::string Double(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pjoin

#endif  // PJOIN_UTIL_TABLE_PRINTER_H_
