#include "util/zipf.h"

#include <cmath>

#include "util/check.h"

namespace pjoin {

namespace {
// Helper for the rejection-inversion method: generalized harmonic integrand.
double HIntegral(double x, double theta) {
  const double log_x = std::log(x);
  if (std::abs(1.0 - theta) < 1e-12) return log_x;
  // (x^(1-theta) - 1) / (1 - theta), computed stably via expm1.
  return std::expm1((1.0 - theta) * log_x) / (1.0 - theta);
}
}  // namespace

ZipfGenerator::ZipfGenerator(uint64_t n, double theta) : n_(n), theta_(theta) {
  PJOIN_CHECK(n >= 1);
  PJOIN_CHECK(theta >= 0.0);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -theta));
}

double ZipfGenerator::H(double x) const {
  if (std::abs(1.0 - theta_) < 1e-12) return std::log(x);
  return HIntegral(x, theta_);
}

double ZipfGenerator::HInverse(double x) const {
  if (std::abs(1.0 - theta_) < 1e-12) return std::exp(x);
  return std::pow(std::max(0.0, x * (1.0 - theta_) + 1.0),
                  1.0 / (1.0 - theta_));
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  if (theta_ == 0.0) return 1 + rng.Below(n_);
  // Hormann & Derflinger rejection-inversion.
  while (true) {
    const double u = h_n_ + rng.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ ||
        u >= H(kd + 0.5) - std::exp(-theta_ * std::log(kd))) {
      return k;
    }
  }
}

}  // namespace pjoin
