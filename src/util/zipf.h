// Zipf-distributed integer generator.
//
// Section 5.4.5 of the paper populates the probe-side foreign keys with Zipf
// data for z in [0, 2]. We use Hormann's rejection-inversion sampler, which is
// O(1) per sample for any universe size and exact for all z >= 0.
#ifndef PJOIN_UTIL_ZIPF_H_
#define PJOIN_UTIL_ZIPF_H_

#include <cstdint>

#include "util/rng.h"

namespace pjoin {

class ZipfGenerator {
 public:
  // Generates values in [1, n] with P(k) proportional to 1 / k^theta.
  // theta == 0 degenerates to the uniform distribution.
  ZipfGenerator(uint64_t n, double theta);

  uint64_t Next(Rng& rng);

  uint64_t universe() const { return n_; }
  double theta() const { return theta_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  double h_x1_;
  double h_n_;
  double s_;
};

}  // namespace pjoin

#endif  // PJOIN_UTIL_ZIPF_H_
