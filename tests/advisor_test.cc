// Tests for the cost-based join-strategy advisor (JoinStrategy::kAuto).
//
// Three layers, matching the paper's claim structure:
//   * Decision surfaces: JoinAdvisor::Decide reproduces the Section 5 rules
//     (never partition a build that fits L2, the "when in doubt, do not
//     partition" margin, Bloom filters only where applicable).
//   * Property testing: ~100 seeded workloads (the differential-test sweep
//     of selectivity, duplicates, payload width, skew, ratio) where kAuto —
//     under default and adversarially tiny cost-model caches — must produce
//     results identical to every manual strategy.
//   * Runtime guardrail: when the cardinality estimate is badly wrong, an
//     advisor-chosen radix join must fall back to BHJ mid-build and still
//     return correct results, recording the fallback in the metrics.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/advisor.h"
#include "engine/executor.h"
#include "engine/plan.h"
#include "exec/thread_pool.h"
#include "tests/test_util.h"
#include "util/env.h"
#include "tpch/gen.h"
#include "tpch/queries.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace pjoin {
namespace {

// ---- Seeded workload sweep (mirrors join_differential_test.cc) -----------

struct DataConfig {
  const char* name;
  uint64_t build_rows;
  uint64_t probe_rows;
  uint64_t dup_factor;
  uint64_t universe_mult;
  double theta;
  int build_cols;
  int probe_cols;
};

const DataConfig kConfigs[] = {
    {"base", 1000, 4000, 2, 2, 0.0, 2, 2},
    {"sel_all", 1000, 4000, 2, 1, 0.0, 2, 2},
    {"sel_quarter", 1000, 4000, 2, 4, 0.0, 2, 2},
    {"sel_tenth", 1000, 4000, 2, 10, 0.0, 2, 2},
    {"sel_rare", 1000, 4000, 2, 50, 0.0, 2, 2},
    {"dup_unique", 1000, 4000, 1, 2, 0.0, 2, 2},
    {"dup_4", 1000, 4000, 4, 2, 0.0, 2, 2},
    {"dup_16", 1000, 4000, 16, 2, 0.0, 2, 2},
    {"pay_narrow", 1000, 4000, 2, 2, 0.0, 1, 1},
    {"pay_build_wide", 1000, 4000, 2, 2, 0.0, 3, 2},
    {"pay_probe_wide", 1000, 4000, 2, 2, 0.0, 2, 4},
    {"zipf_mild", 1000, 4000, 2, 2, 0.5, 2, 2},
    {"zipf_medium", 1000, 4000, 2, 2, 0.8, 2, 2},
    {"zipf_heavy", 1000, 4000, 2, 2, 1.2, 2, 2},
    {"ratio_1_1", 2000, 2000, 2, 2, 0.0, 2, 2},
    {"ratio_1_8", 500, 4000, 2, 2, 0.0, 2, 2},
    {"ratio_1_32", 250, 8000, 2, 2, 0.0, 2, 2},
};

const JoinKind kKinds[] = {
    JoinKind::kInner,      JoinKind::kProbeSemi, JoinKind::kProbeAnti,
    JoinKind::kBuildSemi,  JoinKind::kBuildAnti, JoinKind::kLeftOuter,
    JoinKind::kRightOuter, JoinKind::kMark,
};

// The issue's floor: at least 100 distinct seeded workloads.
static_assert(sizeof(kConfigs) / sizeof(kConfigs[0]) *
                      sizeof(kKinds) / sizeof(kKinds[0]) >=
                  100,
              "advisor property sweep must cover at least 100 workloads");

IntRows MakeBuildRows(const DataConfig& cfg, uint64_t seed) {
  const uint64_t universe =
      std::max<uint64_t>(1, cfg.build_rows / cfg.dup_factor);
  Rng rng(seed);
  IntRows out;
  out.reserve(cfg.build_rows);
  for (uint64_t i = 0; i < cfg.build_rows; ++i) {
    std::vector<int64_t> row(cfg.build_cols);
    row[0] = static_cast<int64_t>(rng.Below(universe));
    for (int c = 1; c < cfg.build_cols; ++c) {
      row[c] = static_cast<int64_t>(rng.Next() & 0xFFFF);
    }
    out.push_back(std::move(row));
  }
  return out;
}

IntRows MakeProbeRows(const DataConfig& cfg, uint64_t seed) {
  const uint64_t build_universe =
      std::max<uint64_t>(1, cfg.build_rows / cfg.dup_factor);
  const uint64_t universe = build_universe * cfg.universe_mult;
  Rng rng(seed);
  ZipfGenerator zipf(universe, cfg.theta);
  IntRows out;
  out.reserve(cfg.probe_rows);
  for (uint64_t i = 0; i < cfg.probe_rows; ++i) {
    std::vector<int64_t> row(cfg.probe_cols);
    row[0] = cfg.theta > 0 ? static_cast<int64_t>(zipf.Next(rng) - 1)
                           : static_cast<int64_t>(rng.Below(universe));
    for (int c = 1; c < cfg.probe_cols; ++c) {
      row[c] = static_cast<int64_t>(rng.Next() & 0xFFFF);
    }
    out.push_back(std::move(row));
  }
  return out;
}

Table MakeTable(const std::string& name, const std::string& prefix,
                const IntRows& rows, int cols) {
  std::vector<ColumnDef> defs;
  for (int c = 0; c < cols; ++c) {
    defs.push_back({prefix + std::to_string(c), DataType::kInt64, 0});
  }
  Table t(name, Schema(std::move(defs)));
  t.Reserve(rows.size());
  for (const auto& row : rows) {
    for (int c = 0; c < cols; ++c) t.column(c).AppendInt64(row[c]);
    t.FinishRow();
  }
  return t;
}

// Count-per-distinct-output-row plan: grouping by every join output column
// with COUNT(*) preserves the full output multiset, so two strategies
// producing equal results here produce byte-identical join output.
std::unique_ptr<PlanNode> CountPlan(const Table* build, const Table* probe,
                                    JoinKind kind,
                                    std::vector<ScanPredicate> build_preds = {},
                                    const std::string& build_key = "b0",
                                    const std::string& probe_key = "p0") {
  auto join = Join(ScanTable(build, std::move(build_preds)), ScanTable(probe),
                   {{build_key, probe_key}}, kind,
                   kind == JoinKind::kMark ? "mark" : "");
  std::vector<std::string> group_by;
  for (const auto& col : join->OutputColumns()) group_by.push_back(col.name);
  return Aggregate(std::move(join), std::move(group_by),
                   {AggDef::CountStar("n")});
}

// ---- Decision surfaces ---------------------------------------------------

AdvisorOptions PinnedCaches() {
  AdvisorOptions opt;
  opt.l2_bytes = 1ull << 20;
  opt.llc_bytes = 16ull << 20;
  return opt;
}

TEST(AdvisorDecide, NeverPartitionsWhenBuildFitsL2) {
  const AdvisorOptions opt = PinnedCaches();
  for (uint64_t build : {100ull, 1000ull, 10000ull, 20000ull}) {
    for (uint32_t width : {8u, 16u, 32u, 64u}) {
      for (uint64_t probe : {1000ull, 100000ull, 10000000ull}) {
        JoinDecision d = JoinAdvisor::Decide(JoinKind::kInner, build, build,
                                             probe, width, 8, 0, opt);
        if (d.est_ht_bytes <= opt.l2_bytes) {
          EXPECT_EQ(d.choice, JoinStrategy::kBHJ)
              << "build=" << build << " width=" << width << " probe=" << probe;
        }
      }
    }
  }
  JoinDecision d = JoinAdvisor::Decide(JoinKind::kInner, 1000, 1000, 1000000,
                                       8, 8, 0, opt);
  EXPECT_EQ(d.choice, JoinStrategy::kBHJ);
  EXPECT_STREQ(d.reason, "build fits L2");
}

TEST(AdvisorDecide, HugeNarrowBuildPartitions) {
  const AdvisorOptions opt = PinnedCaches();
  // 10M narrow build tuples against a 100M probe: the global table is
  // DRAM-resident, partitioning traffic amortizes — the paper's RJ window.
  JoinDecision d = JoinAdvisor::Decide(JoinKind::kInner, 10000000, 10000000,
                                       100000000, 8, 8, 0, opt);
  EXPECT_EQ(d.choice, JoinStrategy::kRJ);
  EXPECT_GT(d.est_ht_bytes, opt.llc_bytes);
  EXPECT_LT(d.cost_rj, d.cost_bhj);
}

TEST(AdvisorDecide, SelectiveBuildPrefersBloomRadix) {
  const AdvisorOptions opt = PinnedCaches();
  // The build scan keeps 1% of its base table: under FK containment most
  // probe tuples cannot join, so the Bloom filter prunes them before the
  // probe side is partitioned (the BRJ case of Section 4.4).
  JoinDecision d = JoinAdvisor::Decide(JoinKind::kInner, 100000, 10000000,
                                       100000000, 8, 8, 0, opt);
  EXPECT_EQ(d.choice, JoinStrategy::kBRJ);
  EXPECT_LT(d.est_pass_rate, 0.8);
  EXPECT_LT(d.cost_brj, d.cost_rj);
}

TEST(AdvisorDecide, UncertainFilterBenefitGoesAdaptive) {
  const AdvisorOptions opt = PinnedCaches();
  // Nearly-unfiltered build: the modeled pass rate is high, so the filter
  // may not pay for itself — the adaptive BRJ hedges by sampling at runtime.
  JoinDecision d = JoinAdvisor::Decide(JoinKind::kInner, 8000000, 10000000,
                                       100000000, 8, 8, 0, opt);
  EXPECT_EQ(d.choice, JoinStrategy::kBRJAdaptive);
  EXPECT_GE(d.est_pass_rate, 0.8);
}

TEST(AdvisorDecide, AntiJoinsNeverChooseBloom) {
  const AdvisorOptions opt = PinnedCaches();
  // kProbeAnti cannot use the filter (a false positive would drop a result
  // row): with the BRJ off the table, the same shapes resolve to RJ or BHJ.
  JoinDecision selective = JoinAdvisor::Decide(
      JoinKind::kProbeAnti, 100000, 10000000, 100000000, 8, 8, 0, opt);
  EXPECT_NE(selective.choice, JoinStrategy::kBRJ);
  EXPECT_NE(selective.choice, JoinStrategy::kBRJAdaptive);
  EXPECT_EQ(selective.cost_brj, selective.cost_rj);
  JoinDecision huge = JoinAdvisor::Decide(JoinKind::kProbeAnti, 10000000,
                                          10000000, 100000000, 8, 8, 0, opt);
  EXPECT_EQ(huge.choice, JoinStrategy::kRJ);
}

TEST(AdvisorDecide, MarginKeepsBHJWhenPartitioningWinsNarrowly) {
  const AdvisorOptions opt = PinnedCaches();
  // At this shape RJ is modeled slightly cheaper than BHJ, but not by the
  // required margin: "when in doubt, do not partition".
  JoinDecision d = JoinAdvisor::Decide(JoinKind::kInner, 1000000, 1000000,
                                       3500000, 8, 8, 0, opt);
  EXPECT_LT(d.cost_rj, d.cost_bhj);
  EXPECT_GE(d.cost_rj, opt.partition_margin * d.cost_bhj);
  EXPECT_EQ(d.choice, JoinStrategy::kBHJ);
  EXPECT_STREQ(d.reason, "partitioning not worth the bandwidth");
}

TEST(AdvisorDecide, PipelineDepthPenalizesPartitioning) {
  const AdvisorOptions opt = PinnedCaches();
  // Deeper probe pipelines re-materialize wider tuples per radix join
  // (Section 5.2.3's pipeline-depth sweep): the same shape that partitions
  // at depth 0 stays non-partitioned deep in a join tree.
  JoinDecision shallow = JoinAdvisor::Decide(JoinKind::kInner, 10000000,
                                             10000000, 100000000, 8, 8, 0, opt);
  JoinDecision deep = JoinAdvisor::Decide(JoinKind::kInner, 10000000, 10000000,
                                          100000000, 8, 8, 7, opt);
  EXPECT_GT(deep.cost_rj, shallow.cost_rj);
  EXPECT_EQ(shallow.choice, JoinStrategy::kRJ);
}

// ---- AdvisePlan: per-join decisions with executor numbering --------------

TEST(AdvisorPlan, WalksPlanWithPostOrderIdsAndWidths) {
  Table dim1 = MakeTable("ad_dim1", "d1_", MakeBuildRows({"", 100, 0, 1, 1, 0.0, 1, 0}, 3), 1);
  Table dim2 = MakeTable("ad_dim2", "d2_", MakeBuildRows({"", 200, 0, 1, 1, 0.0, 1, 0}, 4), 1);
  IntRows fact_rows;
  Rng rng(7);
  for (int64_t i = 0; i < 20000; ++i) {
    fact_rows.push_back({static_cast<int64_t>(rng.Below(200)),
                         static_cast<int64_t>(rng.Below(400))});
  }
  Table fact = MakeTable("ad_fact", "f_", fact_rows, 2);

  auto inner = Join(ScanTable(&dim2), ScanTable(&fact), {{"d2_0", "f_1"}});
  auto outer = Join(ScanTable(&dim1), std::move(inner), {{"d1_0", "f_0"}});
  auto plan = Aggregate(std::move(outer), {}, {AggDef::CountStar("n")});

  auto advice = JoinAdvisor::AdvisePlan(*plan, PinnedCaches());
  ASSERT_EQ(advice.size(), 2u);
  // Post-order: the inner join (build = dim2) is #0, the outer #1.
  EXPECT_EQ(advice.at(0).est_build_rows, 200u);
  EXPECT_EQ(advice.at(0).est_probe_rows, 20000u);
  EXPECT_EQ(advice.at(0).build_width, 8u);   // d2_0
  EXPECT_EQ(advice.at(0).probe_width, 16u);  // f_0 (outer key) + f_1
  EXPECT_EQ(advice.at(0).probe_depth, 0);
  EXPECT_EQ(advice.at(1).est_build_rows, 100u);
  // With statistics the outer join's probe estimate is the inner join's
  // output estimate (200 * 20000 / ~400 distinct f_1 keys = 10000); the
  // pre-stats heuristic echoes the probe input.
  EXPECT_EQ(advice.at(1).est_probe_rows, StatsEnabled() ? 10000u : 20000u);
  EXPECT_EQ(advice.at(1).probe_depth, 1);  // the inner join feeds its probe
  // Everything fits L2 here.
  EXPECT_EQ(advice.at(0).choice, JoinStrategy::kBHJ);
  EXPECT_EQ(advice.at(1).choice, JoinStrategy::kBHJ);
}

// ---- Property tests: kAuto result-equivalent to every manual strategy ----

class AdvisorPropertyTest : public ::testing::TestWithParam<JoinKind> {};

TEST_P(AdvisorPropertyTest, AutoMatchesEveryManualStrategy) {
  const JoinKind kind = GetParam();
  const uint64_t seed = 9000 + static_cast<uint64_t>(kind) * 131;
  std::vector<std::unique_ptr<ThreadPool>> pools;
  for (int t = 1; t <= 3; ++t) pools.push_back(std::make_unique<ThreadPool>(t));

  size_t idx = 0;
  for (const DataConfig& cfg : kConfigs) {
    SCOPED_TRACE(std::string("config=") + cfg.name);
    Table build = MakeTable(std::string("apb_") + cfg.name, "b",
                            MakeBuildRows(cfg, seed + idx * 2), cfg.build_cols);
    Table probe = MakeTable(std::string("app_") + cfg.name, "p",
                            MakeProbeRows(cfg, seed + idx * 2 + 1),
                            cfg.probe_cols);
    auto plan = CountPlan(&build, &probe, kind);
    ThreadPool* pool = pools[idx % pools.size()].get();

    auto run = [&](ExecOptions options, QueryStats* stats = nullptr) {
      options.num_threads = pool->num_threads();
      return ExecuteQuery(*plan, options, stats, pool);
    };

    ExecOptions manual;
    manual.join_strategy = JoinStrategy::kBHJ;
    QueryResult reference = run(manual);
    for (JoinStrategy s :
         {JoinStrategy::kRJ, JoinStrategy::kBRJ, JoinStrategy::kBRJAdaptive}) {
      SCOPED_TRACE(JoinStrategyName(s));
      manual.join_strategy = s;
      EXPECT_TRUE(run(manual).ApproxEquals(reference));
    }

    // kAuto with the real cost model: whatever it picks must match.
    ExecOptions auto_default;
    auto_default.join_strategy = JoinStrategy::kAuto;
    EXPECT_TRUE(run(auto_default).ApproxEquals(reference)) << "kAuto default";

    // kAuto with absurdly small modeled caches and no margin: every join is
    // forced onto the guarded radix path, exercising AutoJoinRuntime across
    // the whole sweep (estimates are exact here, so no fallback triggers).
    ExecOptions auto_forced;
    auto_forced.join_strategy = JoinStrategy::kAuto;
    auto_forced.advisor.l2_bytes = 64;
    auto_forced.advisor.llc_bytes = 128;
    auto_forced.advisor.partition_margin = 1000.0;
    QueryStats forced_stats;
    EXPECT_TRUE(run(auto_forced, &forced_stats).ApproxEquals(reference))
        << "kAuto forced-partitioned";
    const JoinMetrics* jm = forced_stats.metrics.FindJoin(0);
    ASSERT_NE(jm, nullptr);
    ASSERT_TRUE(jm->advisor.present);
    EXPECT_NE(jm->advisor.choice, JoinStrategy::kBHJ);
    EXPECT_FALSE(jm->advisor.fell_back);
    ++idx;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, AdvisorPropertyTest, ::testing::ValuesIn(kKinds),
    [](const ::testing::TestParamInfo<JoinKind>& info) {
      std::string name = JoinKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---- Runtime guardrail: estimate overflow falls back to BHJ --------------

// Build-side payload column whose range makes the selectivity estimator
// badly underestimate: all rows hold small values except one huge outlier,
// so `pay <= 10000` passes everything but is estimated at ~1%.
IntRows OutlierBuildRows(uint64_t rows, uint64_t key_universe) {
  IntRows out;
  for (uint64_t i = 0; i < rows; ++i) {
    out.push_back({static_cast<int64_t>(i % key_universe),
                   i == 0 ? int64_t{1000000} : int64_t{1}});
  }
  return out;
}

ExecOptions TinyCacheAutoOptions() {
  ExecOptions options;
  options.join_strategy = JoinStrategy::kAuto;
  // Tiny modeled caches make the (underestimated) build look DRAM-resident
  // enough that the advisor picks a partitioned strategy.
  options.advisor.l2_bytes = 512;
  options.advisor.llc_bytes = 2048;
  options.num_threads = 2;
  return options;
}

TEST(AdvisorGuardrail, FallsBackToBHJWhenBuildOverflowsEstimate) {
  Table build = MakeTable("gb", "b", OutlierBuildRows(20000, 500), 2);
  IntRows probe_rows;
  for (int64_t i = 0; i < 40000; ++i) probe_rows.push_back({i % 1000});
  Table probe = MakeTable("gp", "p", probe_rows, 1);

  auto plan = CountPlan(&build, &probe, JoinKind::kInner);

  // Reference: the same plan under manual BHJ.
  ExecOptions bhj;
  bhj.join_strategy = JoinStrategy::kBHJ;
  bhj.num_threads = 2;
  QueryResult reference = ExecuteQuery(*plan, bhj);

  // The est_scale fault knob undersells the build side 100x (histograms
  // estimate unpredicated scans exactly, so corruption must be injected):
  // kAuto sees est_build = 200, picks a partitioned strategy, then stages
  // 20000 tuples — past the 4x overflow limit — and must fall back.
  ExecOptions auto_options = TinyCacheAutoOptions();
  auto_options.advisor.est_scale = 0.01;
  QueryStats stats;
  QueryResult result = ExecuteQuery(*plan, auto_options, &stats);
  EXPECT_TRUE(result.ApproxEquals(reference));

  const JoinMetrics* jm = stats.metrics.FindJoin(0);
  ASSERT_NE(jm, nullptr);
  ASSERT_TRUE(jm->advisor.present);
  EXPECT_NE(jm->advisor.choice, JoinStrategy::kBHJ);  // what it planned
  EXPECT_TRUE(jm->advisor.fell_back);                 // what happened
  EXPECT_LT(jm->advisor.est_build_tuples, 1000u);
  EXPECT_TRUE(jm->has_hash_table);     // the BHJ actually ran
  EXPECT_FALSE(jm->has_partitions);    // the radix join never finalized
  EXPECT_EQ(jm->build_tuples, 20000u);
  // Audits and accounting follow the engine that ran.
  ASSERT_EQ(stats.join_audits.size(), 1u);
  EXPECT_EQ(stats.join_audits[0].strategy, JoinStrategy::kBHJ);
  EXPECT_EQ(stats.partition_bytes, 0u);
}

TEST(AdvisorGuardrail, AccurateEstimateStaysOnRadixPath) {
  // Control: same tables, no predicate — the estimate is exact, the staged
  // build is within budget, and the guarded join finalizes as planned.
  Table build = MakeTable("gb2", "b", OutlierBuildRows(20000, 500), 2);
  IntRows probe_rows;
  for (int64_t i = 0; i < 40000; ++i) probe_rows.push_back({i % 1000});
  Table probe = MakeTable("gp2", "p", probe_rows, 1);
  auto plan = CountPlan(&build, &probe, JoinKind::kInner);

  ExecOptions bhj;
  bhj.join_strategy = JoinStrategy::kBHJ;
  bhj.num_threads = 2;
  QueryResult reference = ExecuteQuery(*plan, bhj);

  // Without the margin override the model (correctly) keeps BHJ for this
  // 1:2 build:probe ratio; force the partitioned pick to test the guardrail
  // arm that does NOT trigger.
  ExecOptions auto_options = TinyCacheAutoOptions();
  auto_options.advisor.partition_margin = 1000.0;
  QueryStats stats;
  QueryResult result = ExecuteQuery(*plan, auto_options, &stats);
  EXPECT_TRUE(result.ApproxEquals(reference));

  const JoinMetrics* jm = stats.metrics.FindJoin(0);
  ASSERT_NE(jm, nullptr);
  ASSERT_TRUE(jm->advisor.present);
  EXPECT_NE(jm->advisor.choice, JoinStrategy::kBHJ);
  EXPECT_FALSE(jm->advisor.fell_back);
  EXPECT_TRUE(jm->has_partitions);
  EXPECT_GT(stats.partition_bytes, 0u);
}

TEST(AdvisorGuardrail, FallbackCorrectForEveryJoinKind) {
  // The fallback path re-routes staged tuples into the chaining table and
  // replays spilled probe output (plus the hash-table scan for
  // build-preserving kinds) — every join kind must survive it unchanged.
  Table build = MakeTable("gk_b", "b", OutlierBuildRows(4000, 250), 2);
  IntRows probe_rows;
  Rng rng(23);
  for (int64_t i = 0; i < 8000; ++i) {
    probe_rows.push_back({static_cast<int64_t>(rng.Below(500))});
  }
  Table probe = MakeTable("gk_p", "p", probe_rows, 1);

  for (JoinKind kind : kKinds) {
    SCOPED_TRACE(JoinKindName(kind));
    auto make_plan = [&] { return CountPlan(&build, &probe, kind); };
    ExecOptions bhj;
    bhj.join_strategy = JoinStrategy::kBHJ;
    bhj.num_threads = 2;
    QueryResult reference = ExecuteQuery(*make_plan(), bhj);

    // Kinds without Bloom support model a pricier radix join and would stay
    // on BHJ here; drop the margin so every kind takes the guarded path, and
    // undersell the build 100x via est_scale so the guardrail trips.
    ExecOptions auto_options = TinyCacheAutoOptions();
    auto_options.advisor.partition_margin = 1000.0;
    auto_options.advisor.est_scale = 0.01;
    QueryStats stats;
    QueryResult result = ExecuteQuery(*make_plan(), auto_options, &stats);
    EXPECT_TRUE(result.ApproxEquals(reference));
    const JoinMetrics* jm = stats.metrics.FindJoin(0);
    ASSERT_NE(jm, nullptr);
    ASSERT_TRUE(jm->advisor.present);
    EXPECT_TRUE(jm->advisor.fell_back);
  }
}

// ---- Oracle accuracy on the TPC-H join map -------------------------------

TEST(AdvisorOracle, TpchOverwhelminglyNonPartitioned) {
  // The paper's headline (Figure 1): across the TPC-H join map, partitioning
  // wins in almost no join. The advisor must reach the same conclusion —
  // with pinned cache sizes so the decision is machine-independent.
  auto db = GenerateTpch(0.01);
  ThreadPool pool(2);
  ExecOptions options;
  options.join_strategy = JoinStrategy::kAuto;
  options.num_threads = 2;
  options.advisor = PinnedCaches();

  int total = 0;
  int non_partitioned = 0;
  for (const TpchQuery& q : TpchQueries()) {
    SCOPED_TRACE(q.name);
    QueryStats stats;
    q.run(*db, options, &stats, &pool);
    // Multi-step queries renumber audits into one post-order sequence; the
    // audit's strategy is what actually ran (post-fallback).
    ASSERT_EQ(static_cast<int>(stats.join_audits.size()), q.num_joins);
    for (const JoinAudit& audit : stats.join_audits) {
      ++total;
      if (audit.strategy == JoinStrategy::kBHJ) ++non_partitioned;
    }
  }
  EXPECT_EQ(total, TotalTpchJoins());
  // "kAuto picks the non-partitioned join on >= 90% of the TPC-H joins."
  EXPECT_GE(non_partitioned * 10, total * 9)
      << non_partitioned << " of " << total << " joins chose BHJ";
}

TEST(AdvisorOracle, TpchAutoResultsMatchManualStrategies) {
  // Result equivalence on real query shapes, not just synthetic sweeps:
  // every TPC-H query must return identical rows under kAuto and manuals.
  auto db = GenerateTpch(0.005);
  ThreadPool pool(2);
  for (const TpchQuery& q : TpchQueries()) {
    SCOPED_TRACE(q.name);
    ExecOptions options;
    options.num_threads = 2;
    options.join_strategy = JoinStrategy::kBHJ;
    QueryResult reference = q.run(*db, options, nullptr, &pool);
    options.join_strategy = JoinStrategy::kAuto;
    EXPECT_TRUE(q.run(*db, options, nullptr, &pool).ApproxEquals(reference));
  }
}

}  // namespace
}  // namespace pjoin
