// Tests for the stand-alone Balkesen et al. baseline joins (NPJ and PRJ).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "baseline/balkesen.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace pjoin {
namespace {

template <typename Tuple>
uint64_t ReferenceCount(const std::vector<Tuple>& build,
                        const std::vector<Tuple>& probe) {
  std::map<int64_t, uint64_t> counts;
  for (const auto& b : build) counts[b.key]++;
  uint64_t total = 0;
  for (const auto& p : probe) {
    auto it = counts.find(p.key);
    if (it != counts.end()) total += it->second;
  }
  return total;
}

std::vector<Tuple8> DenseRelation8(uint64_t n, uint64_t seed) {
  // Dense shuffled keys 1..n, the prior-work setup (Table 1).
  std::vector<Tuple8> rel(n);
  for (uint64_t i = 0; i < n; ++i) {
    rel[i] = Tuple8{static_cast<int64_t>(i + 1), static_cast<int64_t>(i)};
  }
  Rng rng(seed);
  for (uint64_t i = n; i > 1; --i) {
    std::swap(rel[i - 1], rel[rng.Below(i)]);
  }
  return rel;
}

std::vector<Tuple8> FkRelation8(uint64_t n, uint64_t key_universe,
                                uint64_t seed) {
  std::vector<Tuple8> rel(n);
  Rng rng(seed);
  for (uint64_t i = 0; i < n; ++i) {
    rel[i] = Tuple8{static_cast<int64_t>(1 + rng.Below(key_universe)),
                    static_cast<int64_t>(i)};
  }
  return rel;
}

TEST(BalkesenNPJ, ExactCountOnFkJoin) {
  auto build = DenseRelation8(10000, 1);
  auto probe = FkRelation8(80000, 10000, 2);
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_EQ(BalkesenNPJ(build, probe, pool), probe.size());
  }
}

TEST(BalkesenNPJ, CountWithMissingKeys) {
  auto build = DenseRelation8(5000, 3);
  auto probe = FkRelation8(40000, 10000, 4);  // ~half the keys miss
  ThreadPool pool(2);
  EXPECT_EQ(BalkesenNPJ(build, probe, pool), ReferenceCount(build, probe));
}

TEST(BalkesenNPJ, DuplicateBuildKeys) {
  auto build = FkRelation8(5000, 500, 5);  // duplicates
  auto probe = FkRelation8(20000, 1000, 6);
  ThreadPool pool(3);
  EXPECT_EQ(BalkesenNPJ(build, probe, pool), ReferenceCount(build, probe));
}

TEST(BalkesenNPJ, EmptyInputs) {
  std::vector<Tuple8> empty;
  auto rel = DenseRelation8(100, 7);
  ThreadPool pool(2);
  EXPECT_EQ(BalkesenNPJ(empty, rel, pool), 0u);
  EXPECT_EQ(BalkesenNPJ(rel, empty, pool), 0u);
}

TEST(BalkesenPRJ, ExactCountOnFkJoin) {
  auto build = DenseRelation8(10000, 8);
  auto probe = FkRelation8(80000, 10000, 9);
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_EQ(BalkesenPRJ(build, probe, pool), probe.size());
  }
}

TEST(BalkesenPRJ, MatchesNPJOnRandomData) {
  auto build = FkRelation8(20000, 3000, 10);
  auto probe = FkRelation8(100000, 5000, 11);
  ThreadPool pool(4);
  uint64_t expected = ReferenceCount(build, probe);
  EXPECT_EQ(BalkesenPRJ(build, probe, pool), expected);
  EXPECT_EQ(BalkesenNPJ(build, probe, pool), expected);
}

TEST(BalkesenPRJ, VariousRadixBits) {
  auto build = DenseRelation8(4096, 12);
  auto probe = FkRelation8(30000, 4096, 13);
  ThreadPool pool(2);
  for (PrjConfig config : {PrjConfig{4, 4}, PrjConfig{7, 7}, PrjConfig{2, 0},
                           PrjConfig{0, 5}}) {
    EXPECT_EQ(BalkesenPRJ(build, probe, pool, config), probe.size())
        << config.bits1 << "/" << config.bits2;
  }
}

TEST(BalkesenPRJ, SkewedProbeStillExact) {
  auto build = DenseRelation8(10000, 14);
  std::vector<Tuple8> probe(60000);
  Rng rng(15);
  ZipfGenerator zipf(10000, 1.25);
  for (auto& t : probe) {
    t = Tuple8{static_cast<int64_t>(zipf.Next(rng)), 0};
  }
  ThreadPool pool(4);
  EXPECT_EQ(BalkesenPRJ(build, probe, pool), probe.size());
  EXPECT_EQ(BalkesenNPJ(build, probe, pool), probe.size());
}

TEST(BalkesenJoins, Tuple4Workloads) {
  // Workload B shape: equal sizes, 4-byte keys.
  std::vector<Tuple4> build(5000), probe(5000);
  for (int i = 0; i < 5000; ++i) {
    build[i] = Tuple4{i + 1, i};
    probe[i] = Tuple4{(i * 7) % 5000 + 1, i};
  }
  ThreadPool pool(2);
  EXPECT_EQ(BalkesenNPJ(build, probe, pool), 5000u);
  EXPECT_EQ(BalkesenPRJ(build, probe, pool), 5000u);
}

}  // namespace
}  // namespace pjoin
