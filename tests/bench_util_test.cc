// Tests for the microbenchmark workload generators and the harness.
#include <gtest/gtest.h>

#include "bench_util/harness.h"
#include "bench_util/workloads.h"

namespace pjoin {
namespace {

constexpr int64_t kDiv = 4096;  // tiny workloads for unit testing

TEST(Workloads, WorkloadARatioPreserved) {
  MicroWorkload w = MakeWorkloadA(kDiv);
  EXPECT_EQ(w.probe_tuples, w.build_tuples * 16);  // 256 MiB : 4096 MiB
  EXPECT_EQ(w.build.num_rows(), w.build_tuples);
  EXPECT_EQ(w.probe.num_rows(), w.probe_tuples);
  // 8 B key + 8 B payload per side.
  EXPECT_EQ(w.build.TotalBytes(), w.build_tuples * 16);
}

TEST(Workloads, WorkloadBEqualSides4Byte) {
  MicroWorkload w = MakeWorkloadB(kDiv * 8);
  EXPECT_EQ(w.build_tuples, w.probe_tuples);
  EXPECT_EQ(w.build.schema().column(0).width(), 4u);
  EXPECT_EQ(w.probe.TotalBytes(), w.probe_tuples * 8);
}

TEST(Workloads, BuildKeysAreDensePermutation) {
  MicroWorkload w = MakeWorkloadA(kDiv);
  std::vector<char> seen(w.build_tuples + 1, 0);
  for (uint64_t r = 0; r < w.build.num_rows(); ++r) {
    int64_t k = w.build.column(0).GetInt64(r);
    ASSERT_GE(k, 1);
    ASSERT_LE(k, static_cast<int64_t>(w.build_tuples));
    ASSERT_EQ(seen[k], 0);
    seen[k] = 1;
  }
}

TEST(Workloads, SelectivityControlsMatches) {
  for (double sel : {0.0, 0.25, 1.0}) {
    MicroWorkload w = MakeSelectivityWorkload(kDiv, sel);
    uint64_t matching = 0;
    for (uint64_t r = 0; r < w.probe.num_rows(); ++r) {
      if (w.probe.column(0).GetInt64(r) <=
          static_cast<int64_t>(w.build_tuples)) {
        ++matching;
      }
    }
    double fraction = static_cast<double>(matching) / w.probe_tuples;
    EXPECT_NEAR(fraction, sel, 0.02) << sel;
  }
}

TEST(Workloads, PayloadColumnsWidenProbe) {
  MicroWorkload w0 = MakePayloadWorkload(kDiv, 0);
  MicroWorkload w8 = MakePayloadWorkload(kDiv, 8);
  EXPECT_EQ(w0.probe.TotalBytes(), w0.probe_tuples * 8);
  EXPECT_EQ(w8.probe.TotalBytes(), w8.probe_tuples * 72);
}

TEST(Workloads, SkewWorkloadConcentrates) {
  MicroWorkload uniform = MakeSkewWorkload(kDiv, 0.0);
  MicroWorkload skewed = MakeSkewWorkload(kDiv, 1.5);
  auto top_key_share = [](const MicroWorkload& w) {
    uint64_t hot = 0;
    for (uint64_t r = 0; r < w.probe.num_rows(); ++r) {
      if (w.probe.column(0).GetInt64(r) == 1) ++hot;
    }
    return static_cast<double>(hot) / w.probe_tuples;
  };
  EXPECT_GT(top_key_share(skewed), top_key_share(uniform) * 100);
}

TEST(Workloads, StarSchemaShape) {
  MicroWorkload w = MakeStarWorkload(kDiv, 3);
  EXPECT_EQ(w.dims.size(), 3u);
  EXPECT_EQ(w.probe.schema().num_columns(), 3);
  EXPECT_EQ(w.dims[0]->num_rows(), w.build_tuples);
}

TEST(Workloads, QueriesRunAndAgree) {
  MicroWorkload w = MakeWorkloadA(kDiv);
  auto plan = CountJoinPlan(w);
  ExecOptions bhj, rj;
  bhj.join_strategy = JoinStrategy::kBHJ;
  rj.join_strategy = JoinStrategy::kRJ;
  QueryResult a = ExecuteQuery(*plan, bhj);
  QueryResult b = ExecuteQuery(*plan, rj);
  EXPECT_TRUE(a.ApproxEquals(b));
  // 100% FK selectivity: every probe tuple matches exactly once.
  EXPECT_EQ(std::get<int64_t>(a.rows[0][0]),
            static_cast<int64_t>(w.probe_tuples));
}

TEST(Workloads, StarPlanDepthMatches) {
  MicroWorkload w = MakeStarWorkload(kDiv, 4);
  auto plan = StarJoinPlan(w);
  EXPECT_EQ(plan->CountJoins(), 4);
  QueryResult r1 = ExecuteQuery(*plan, ExecOptions{});
  ExecOptions rj;
  rj.join_strategy = JoinStrategy::kRJ;
  QueryResult r2 = ExecuteQuery(*plan, rj);
  EXPECT_TRUE(r1.ApproxEquals(r2));
}

TEST(Harness, MedianOfRuns) {
  MicroWorkload w = MakeWorkloadA(kDiv);
  auto plan = CountJoinPlan(w);
  ThreadPool pool(2);
  QueryStats stats = MeasurePlan(*plan, ExecOptions{}, 3, &pool);
  EXPECT_GT(stats.seconds, 0.0);
  EXPECT_EQ(stats.source_tuples, w.build_tuples + w.probe_tuples);
}

}  // namespace
}  // namespace pjoin
