// ChunkedTupleBuffer edge cases: empty partitions, single-tuple pages,
// tuples that would straddle a page boundary (a fresh page must be opened;
// a tuple is never split), and governor accounting symmetry on Clear.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "partition/chunked_buffer.h"
#include "spill/memory_governor.h"

namespace pjoin {
namespace {

// Fills `bytes` with a per-tuple pattern so reads can verify identity.
void WriteTuple(std::byte* dst, uint32_t stride, uint8_t tag) {
  std::memset(dst, tag, stride);
}

uint64_t SumChunkBytes(const ChunkedTupleBuffer& buf) {
  uint64_t total = 0;
  buf.ForEachChunk(
      [&](const std::byte* data, uint64_t used) { (void)data; total += used; });
  return total;
}

TEST(ChunkedBuffer, EmptyBufferHasNoChunks) {
  ChunkedTupleBuffer buf;
  buf.Init(16);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.total_bytes(), 0u);
  EXPECT_EQ(buf.num_tuples(), 0u);
  int chunks = 0;
  buf.ForEachChunk([&](const std::byte*, uint64_t) { ++chunks; });
  EXPECT_EQ(chunks, 0);
}

TEST(ChunkedBuffer, SingleTuple) {
  ChunkedTupleBuffer buf;
  buf.Init(24);
  std::byte* dst = buf.AllocBytes(24);
  WriteTuple(dst, 24, 0xAB);
  EXPECT_EQ(buf.total_bytes(), 24u);
  EXPECT_EQ(buf.num_tuples(), 1u);
  int chunks = 0;
  buf.ForEachChunk([&](const std::byte* data, uint64_t used) {
    ++chunks;
    ASSERT_EQ(used, 24u);
    for (uint64_t i = 0; i < used; ++i) {
      ASSERT_EQ(static_cast<uint8_t>(data[i]), 0xAB);
    }
  });
  EXPECT_EQ(chunks, 1);
}

TEST(ChunkedBuffer, PageBoundaryNeverSplitsATuple) {
  // First page is 16 KiB; a stride that does not divide it forces the last
  // allocation before the boundary onto a fresh page.
  constexpr uint32_t kStride = 48;  // 16384 % 48 != 0
  ChunkedTupleBuffer buf;
  buf.Init(kStride);
  const uint64_t tuples = (16 * 1024 / kStride) + 8;  // cross the first page
  for (uint64_t i = 0; i < tuples; ++i) {
    std::byte* dst = buf.AllocBytes(kStride);
    WriteTuple(dst, kStride, static_cast<uint8_t>(i & 0xFF));
  }
  EXPECT_EQ(buf.num_tuples(), tuples);
  EXPECT_EQ(buf.total_bytes(), tuples * kStride);
  EXPECT_EQ(SumChunkBytes(buf), tuples * kStride);
  // Every chunk must hold whole tuples only: a straddling tuple would leave
  // a remainder in some chunk.
  uint64_t seen = 0;
  buf.ForEachChunk([&](const std::byte* data, uint64_t used) {
    ASSERT_EQ(used % kStride, 0u) << "tuple split across a page boundary";
    for (uint64_t off = 0; off < used; off += kStride) {
      const uint8_t tag = static_cast<uint8_t>(seen & 0xFF);
      for (uint32_t b = 0; b < kStride; ++b) {
        ASSERT_EQ(static_cast<uint8_t>(data[off + b]), tag);
      }
      ++seen;
    }
  });
  EXPECT_EQ(seen, tuples);
}

TEST(ChunkedBuffer, GrowsThroughMultiplePages) {
  ChunkedTupleBuffer buf;
  buf.Init(64);
  const uint64_t tuples = (64 * 1024) / 64;  // 64 KiB of tuples: >= 3 pages
  for (uint64_t i = 0; i < tuples; ++i) {
    WriteTuple(buf.AllocBytes(64), 64, static_cast<uint8_t>(i));
  }
  int chunks = 0;
  buf.ForEachChunk([&](const std::byte*, uint64_t) { ++chunks; });
  EXPECT_GE(chunks, 3);  // 16K + 32K + ... doubling pages
  EXPECT_EQ(buf.num_tuples(), tuples);
}

TEST(ChunkedBuffer, InitResetsPreviousContents) {
  ChunkedTupleBuffer buf;
  buf.Init(16);
  buf.AllocBytes(16);
  ASSERT_EQ(buf.num_tuples(), 1u);
  buf.Init(32);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.stride(), 32u);
  EXPECT_EQ(buf.num_tuples(), 0u);
}

TEST(ChunkedBuffer, ClearReleasesGovernorAccounting) {
  MemoryGovernor& gov = MemoryGovernor::Global();
  const uint64_t before = gov.reserved();
  {
    ChunkedTupleBuffer buf;
    buf.Init(16);
    for (int i = 0; i < 4096; ++i) buf.AllocBytes(16);
    EXPECT_GT(gov.reserved(), before);
  }  // destructor Clears
  EXPECT_EQ(gov.reserved(), before);
}

TEST(ChunkedBuffer, MoveAssignReleasesReplacedChunks) {
  MemoryGovernor& gov = MemoryGovernor::Global();
  const uint64_t before = gov.reserved();
  {
    ChunkedTupleBuffer a;
    a.Init(16);
    a.AllocBytes(16);
    ChunkedTupleBuffer b;
    b.Init(16);
    b.AllocBytes(16);
    a = std::move(b);  // a's original chunks must be released here
    EXPECT_EQ(a.num_tuples(), 1u);
  }
  EXPECT_EQ(gov.reserved(), before);
}

}  // namespace
}  // namespace pjoin
