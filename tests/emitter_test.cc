// Tests for the join emitter: projection mapping, null padding, mark
// columns, and batch flushing behavior.
#include <gtest/gtest.h>

#include <vector>

#include "join/emitter.h"

namespace pjoin {
namespace {

class RecordingSink : public Operator {
 public:
  explicit RecordingSink(const RowLayout* layout) : layout_(layout) {}
  void Consume(Batch& batch, ThreadContext&) override {
    ++batches_;
    for (uint32_t i = 0; i < batch.size; ++i) {
      std::vector<int64_t> row;
      for (int f = 0; f < layout_->num_fields(); ++f) {
        row.push_back(layout_->GetInt64(batch.Row(i), f));
      }
      rows_.push_back(std::move(row));
    }
  }
  const RowLayout* OutputLayout() const override { return layout_; }

  int batches_ = 0;
  std::vector<std::vector<int64_t>> rows_;

 private:
  const RowLayout* layout_;
};

class EmitterTest : public ::testing::Test {
 protected:
  EmitterTest()
      : build_({{"b0", DataType::kInt64, 8, 0}, {"b1", DataType::kInt64, 8, 0}}),
        probe_({{"p0", DataType::kInt64, 8, 0}}),
        out_({{"b1", DataType::kInt64, 8, 0},
              {"p0", DataType::kInt64, 8, 0},
              {"m", DataType::kInt64, 8, 0}}) {
    projection_.output = &out_;
    projection_.build = &build_;
    projection_.probe = &probe_;
    projection_.from_build = {{0, 1}};  // out.b1 <- build.b1
    projection_.from_probe = {{1, 0}};  // out.p0 <- probe.p0
    projection_.mark_field = 2;
    sink_ = std::make_unique<RecordingSink>(&out_);
    emitter_.Bind(&projection_, sink_.get());
    ctx_.thread_id = 0;
    bytes_ = std::make_unique<ByteCounter>();
    ctx_.bytes = bytes_.get();
  }

  std::vector<std::byte> BuildRow(int64_t b0, int64_t b1) {
    std::vector<std::byte> row(build_.stride());
    build_.SetInt64(row.data(), 0, b0);
    build_.SetInt64(row.data(), 1, b1);
    return row;
  }
  std::vector<std::byte> ProbeRow(int64_t p0) {
    std::vector<std::byte> row(probe_.stride());
    probe_.SetInt64(row.data(), 0, p0);
    return row;
  }

  RowLayout build_, probe_, out_;
  JoinProjection projection_;
  std::unique_ptr<RecordingSink> sink_;
  std::unique_ptr<ByteCounter> bytes_;
  JoinEmitter emitter_;
  ThreadContext ctx_;
};

TEST_F(EmitterTest, PairProjectsSelectedFields) {
  auto b = BuildRow(7, 42);
  auto p = ProbeRow(99);
  emitter_.EmitPair(b.data(), p.data(), ctx_);
  emitter_.Flush(ctx_);
  ASSERT_EQ(sink_->rows_.size(), 1u);
  EXPECT_EQ(sink_->rows_[0][0], 42);  // b1, not b0
  EXPECT_EQ(sink_->rows_[0][1], 99);
}

TEST_F(EmitterTest, ProbeOnlyZeroesBuildSide) {
  auto p = ProbeRow(5);
  emitter_.EmitProbeOnly(p.data(), ctx_);
  emitter_.Flush(ctx_);
  EXPECT_EQ(sink_->rows_[0][0], 0);
  EXPECT_EQ(sink_->rows_[0][1], 5);
}

TEST_F(EmitterTest, BuildOnlyZeroesProbeSide) {
  auto b = BuildRow(1, 2);
  emitter_.EmitBuildOnly(b.data(), ctx_);
  emitter_.Flush(ctx_);
  EXPECT_EQ(sink_->rows_[0][0], 2);
  EXPECT_EQ(sink_->rows_[0][1], 0);
}

TEST_F(EmitterTest, MarkColumnSet) {
  auto p = ProbeRow(5);
  emitter_.EmitMark(p.data(), true, ctx_);
  emitter_.EmitMark(p.data(), false, ctx_);
  emitter_.Flush(ctx_);
  ASSERT_EQ(sink_->rows_.size(), 2u);
  EXPECT_EQ(sink_->rows_[0][2], 1);
  EXPECT_EQ(sink_->rows_[1][2], 0);
}

TEST_F(EmitterTest, FlushesFullBatchesAutomatically) {
  auto b = BuildRow(1, 2);
  auto p = ProbeRow(3);
  for (uint32_t i = 0; i < kBatchCapacity + 10; ++i) {
    emitter_.EmitPair(b.data(), p.data(), ctx_);
  }
  EXPECT_EQ(sink_->batches_, 1);  // one full batch pushed eagerly
  emitter_.Flush(ctx_);
  EXPECT_EQ(sink_->batches_, 2);
  EXPECT_EQ(sink_->rows_.size(), kBatchCapacity + 10);
  EXPECT_EQ(emitter_.rows_emitted(), kBatchCapacity + 10);
}

TEST_F(EmitterTest, FlushOnEmptyIsNoop) {
  emitter_.Flush(ctx_);
  EXPECT_EQ(sink_->batches_, 0);
}

}  // namespace
}  // namespace pjoin
