// Encoding differential slice: encoded segments, join-on-codes, the spill
// page codec, and the unpack/gather kernels, all checked against plain-mode
// runs and nested-loop oracles. Runs under `ctest -L encoding`.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "engine/coded_keys.h"
#include "engine/executor.h"
#include "engine/plan.h"
#include "kernels/kernels.h"
#include "spill/memory_governor.h"
#include "spill/spill_page.h"
#include "storage/encoded_segment.h"
#include "storage/table.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "util/simd.h"

namespace pjoin {
namespace {

class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

std::string MakeKey(int64_t id) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%05lld", static_cast<long long>(id));
  return buf;
}

// ---- Encoded segments ----------------------------------------------------

TEST(EncodedSegment, DictEncodesCharColumn) {
  Table t("chars", Schema({{"c_key", DataType::kChar, 8}}));
  for (int64_t i = 0; i < 1000; ++i) {
    t.column(0).AppendString(MakeKey((i * 7) % 37));
    t.FinishRow();
  }
  EncodedTable et = EncodingCatalog::Encode(t);
  const EncodedColumn* c = et.column(0);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, EncodedColumn::Kind::kDict);
  EXPECT_EQ(c->ndv, 37u);
  EXPECT_EQ(c->code_width, 1u);
  EXPECT_EQ(c->value_width, 8u);
  EXPECT_EQ(c->rows, 1000u);
  EXPECT_LT(c->encoded_bytes(), c->plain_bytes());
  // Dictionary is sorted by raw byte order (code order == memcmp order).
  for (uint32_t code = 1; code < c->ndv; ++code) {
    EXPECT_LT(std::memcmp(c->DictValue(code - 1), c->DictValue(code), 8), 0);
  }
  // Codes round-trip to the original raw bytes.
  for (uint64_t r = 0; r < c->rows; ++r) {
    ASSERT_EQ(
        std::memcmp(c->DictValue(c->CodeAt(r)), t.column(0).Raw(r), 8), 0);
  }
}

TEST(EncodedSegment, DictCodeWidthFollowsCardinality) {
  Table t("chars", Schema({{"c_key", DataType::kChar, 16}}));
  for (int64_t i = 0; i < 2000; ++i) {
    t.column(0).AppendString("value" + std::to_string(i % 1000));
    t.FinishRow();
  }
  EncodedTable et = EncodingCatalog::Encode(t);
  const EncodedColumn* c = et.column(0);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->ndv, 1000u);
  EXPECT_EQ(c->code_width, 2u);
}

TEST(EncodedSegment, ForEncodesIntColumn) {
  Table t("ints", Schema({{"i_val", DataType::kInt64, 0}}));
  for (int64_t i = 0; i < 500; ++i) {
    t.column(0).AppendInt64(1000000 + (i * 97) % 50000);
    t.FinishRow();
  }
  EncodedTable et = EncodingCatalog::Encode(t);
  const EncodedColumn* c = et.column(0);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->kind, EncodedColumn::Kind::kFor);
  EXPECT_EQ(c->code_width, 2u);  // range < 2^16
  for (uint64_t r = 0; r < c->rows; ++r) {
    ASSERT_EQ(c->ref + static_cast<int64_t>(c->CodeAt(r)),
              t.column(0).GetInt64(r));
  }
}

TEST(EncodedSegment, WideRangeIntStaysNarrowerThanPlain) {
  Table t("ints", Schema({{"i_val", DataType::kInt64, 0}}));
  for (int64_t i = 0; i < 300; ++i) {
    t.column(0).AppendInt64(i * 1000003);  // range needs 4-byte codes
    t.FinishRow();
  }
  EncodedTable et = EncodingCatalog::Encode(t);
  const EncodedColumn* c = et.column(0);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->code_width, 4u);
  EXPECT_LT(c->encoded_bytes(), c->plain_bytes());
}

TEST(EncodingCatalog, SmallTablesStayPlain) {
  ScopedEnv enable("PJOIN_ENCODING", "1");  // robust to an env-off suite run
  EncodingCatalog::Global().Invalidate();
  Table t("tiny", Schema({{"c_key", DataType::kChar, 8}}));
  for (int64_t i = 0; i < 50; ++i) {
    t.column(0).AppendString(MakeKey(i % 5));
    t.FinishRow();
  }
  EXPECT_EQ(EncodingCatalog::Global().Get(t), nullptr);
  {
    ScopedEnv min_rows("PJOIN_ENCODING_MIN_ROWS", "10");
    EXPECT_NE(EncodingCatalog::Global().Get(t), nullptr);
  }
  EncodingCatalog::Global().Invalidate();
}

TEST(EncodingCatalog, DisabledByEnv) {
  ScopedEnv enable("PJOIN_ENCODING", "1");
  EncodingCatalog::Global().Invalidate();
  Table t("chars", Schema({{"c_key", DataType::kChar, 8}}));
  for (int64_t i = 0; i < 500; ++i) {
    t.column(0).AppendString(MakeKey(i % 20));
    t.FinishRow();
  }
  {
    ScopedEnv off("PJOIN_ENCODING", "0");
    EXPECT_EQ(EncodingCatalog::Global().Get(t), nullptr);
  }
  EXPECT_NE(EncodingCatalog::Global().Get(t), nullptr);
  EncodingCatalog::Global().Invalidate();
}

TEST(EncodingCatalog, AppendReencodes) {
  ScopedEnv enable("PJOIN_ENCODING", "1");
  EncodingCatalog::Global().Invalidate();
  Table t("chars", Schema({{"c_key", DataType::kChar, 8}}));
  for (int64_t i = 0; i < 400; ++i) {
    t.column(0).AppendString(MakeKey(i % 10));
    t.FinishRow();
  }
  const EncodedTable* before = EncodingCatalog::Global().Get(t);
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->column(0)->ndv, 10u);
  // In-place append: the fingerprint changes and Get re-encodes.
  for (int64_t i = 0; i < 100; ++i) {
    t.column(0).AppendString(MakeKey(100 + i));
    t.FinishRow();
  }
  const EncodedTable* after = EncodingCatalog::Global().Get(t);
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->rows, 500u);
  EXPECT_EQ(after->column(0)->ndv, 110u);
  EncodingCatalog::Global().Invalidate();
}

TEST(CodedKeys, RemapMergesDictionaries) {
  Table build("b", Schema({{"b_key", DataType::kChar, 8}}));
  Table probe("p", Schema({{"p_key", DataType::kChar, 8}}));
  // Build holds even ids 0..98; probe holds all ids 0..79. Odd probe ids
  // and even ids >= 80 behave differently: odd ids are absent from the
  // build dictionary, even ids < 80 are present.
  for (int64_t i = 0; i < 300; ++i) {
    build.column(0).AppendString(MakeKey((i % 50) * 2));
    build.FinishRow();
  }
  for (int64_t i = 0; i < 300; ++i) {
    probe.column(0).AppendString(MakeKey(i % 80));
    probe.FinishRow();
  }
  EncodedTable eb = EncodingCatalog::Encode(build);
  EncodedTable ep = EncodingCatalog::Encode(probe);
  ASSERT_NE(eb.column(0), nullptr);
  ASSERT_NE(ep.column(0), nullptr);
  std::vector<uint32_t> remap = BuildCodeRemap(*ep.column(0), *eb.column(0));
  ASSERT_EQ(remap.size(), ep.column(0)->ndv);
  for (uint32_t code = 0; code < ep.column(0)->ndv; ++code) {
    const std::byte* raw = ep.column(0)->DictValue(code);
    // Probe dict is sorted over MakeKey(0..79); recover the id from raw.
    const std::string value(reinterpret_cast<const char*>(raw), 8);
    const int64_t id = std::strtoll(value.c_str() + 1, nullptr, 10);
    if (id % 2 == 0 && id < 100) {
      ASSERT_NE(remap[code], kNoCode);
      EXPECT_EQ(std::memcmp(eb.column(0)->DictValue(remap[code]), raw, 8), 0);
    } else {
      EXPECT_EQ(remap[code], kNoCode);
    }
  }
}

// ---- Spill page codec ----------------------------------------------------

TEST(SpillPageCodec, RoundTripsRepetitivePages) {
  const uint32_t stride = 24;
  std::vector<std::byte> page(stride * 1000);
  for (size_t i = 0; i < page.size(); ++i) {
    // Bytes repeat heavily down each plane: plane value depends mostly on
    // the byte position, with a slow-changing low component.
    page[i] = static_cast<std::byte>((i % stride) + (i / (stride * 100)));
  }
  std::vector<std::byte> enc;
  EncodeSpillPage(page.data(), page.size(), stride, &enc);
  ASSERT_FALSE(enc.empty());
  EXPECT_EQ(static_cast<uint8_t>(enc[0]), 1u);  // plane-RLE mode
  EXPECT_LT(enc.size(), page.size());
  std::vector<std::byte> dec(page.size());
  DecodeSpillPage(enc.data(), enc.size(), page.size(), stride, dec.data());
  EXPECT_EQ(std::memcmp(dec.data(), page.data(), page.size()), 0);
}

TEST(SpillPageCodec, RandomPagesFallBackToRaw) {
  const uint32_t stride = 32;
  std::vector<std::byte> page(stride * 500);
  Rng rng(42);
  for (auto& b : page) b = static_cast<std::byte>(rng.Next() & 0xFF);
  std::vector<std::byte> enc;
  EncodeSpillPage(page.data(), page.size(), stride, &enc);
  ASSERT_FALSE(enc.empty());
  EXPECT_LE(enc.size(), page.size() + 1);  // never worse than raw + mode byte
  std::vector<std::byte> dec(page.size());
  DecodeSpillPage(enc.data(), enc.size(), page.size(), stride, dec.data());
  EXPECT_EQ(std::memcmp(dec.data(), page.data(), page.size()), 0);
}

TEST(SpillPageCodec, RoundTripsAcrossStrides) {
  Rng rng(7);
  for (uint32_t stride : {8u, 16u, 24u, 40u, 64u}) {
    for (size_t tuples : {1u, 7u, 255u, 256u, 1000u}) {
      std::vector<std::byte> page(stride * tuples);
      for (size_t i = 0; i < page.size(); ++i) {
        // Mix of constant planes and low-entropy planes.
        page[i] = (i % stride < stride / 2)
                      ? std::byte{0x5A}
                      : static_cast<std::byte>(rng.Below(4));
      }
      std::vector<std::byte> enc;
      EncodeSpillPage(page.data(), page.size(), stride, &enc);
      std::vector<std::byte> dec(page.size());
      DecodeSpillPage(enc.data(), enc.size(), page.size(), stride, dec.data());
      ASSERT_EQ(std::memcmp(dec.data(), page.data(), page.size()), 0)
          << "stride=" << stride << " tuples=" << tuples;
    }
  }
}

// ---- Kernels -------------------------------------------------------------

TEST(EncodingKernels, UnpackCodesMatchesOracleAcrossTiers) {
  Rng rng(11);
  for (uint32_t code_width : {1u, 2u, 4u}) {
    for (uint32_t n : {1u, 7u, 64u, 1000u, 1023u}) {
      std::vector<std::byte> codes(n * code_width);
      for (auto& b : codes) b = static_cast<std::byte>(rng.Next() & 0xFF);
      std::vector<uint32_t> expected(n);
      for (uint32_t i = 0; i < n; ++i) {
        uint32_t v = 0;
        std::memcpy(&v, codes.data() + i * code_width, code_width);
        expected[i] = v;
      }
      for (SimdTier tier :
           {SimdTier::kScalar, SimdTier::kAVX2, SimdTier::kAVX512}) {
        std::vector<uint32_t> out(n, 0xDEADBEEF);
        KernelsFor(tier).unpack_codes(codes.data(), code_width, n, out.data());
        ASSERT_EQ(out, expected)
            << "tier=" << static_cast<int>(tier) << " width=" << code_width
            << " n=" << n;
      }
    }
  }
}

TEST(EncodingKernels, DictGatherMatchesOracleAcrossTiers) {
  Rng rng(13);
  for (uint32_t value_width : {4u, 8u, 16u}) {
    const uint32_t dict_entries = 100;
    std::vector<std::byte> dict(dict_entries * value_width);
    for (auto& b : dict) b = static_cast<std::byte>(rng.Next() & 0xFF);
    for (uint32_t n : {1u, 33u, 1000u}) {
      std::vector<uint32_t> codes(n);
      for (auto& c : codes) c = static_cast<uint32_t>(rng.Below(dict_entries));
      std::vector<std::byte> expected(n * value_width);
      for (uint32_t i = 0; i < n; ++i) {
        std::memcpy(expected.data() + i * value_width,
                    dict.data() + codes[i] * value_width, value_width);
      }
      for (SimdTier tier :
           {SimdTier::kScalar, SimdTier::kAVX2, SimdTier::kAVX512}) {
        std::vector<std::byte> out(n * value_width);
        KernelsFor(tier).dict_gather(dict.data(), value_width, codes.data(), n,
                                     out.data());
        ASSERT_EQ(std::memcmp(out.data(), expected.data(), out.size()), 0)
            << "tier=" << static_cast<int>(tier) << " vw=" << value_width
            << " n=" << n;
      }
    }
  }
}

// ---- Engine differential -------------------------------------------------

// A dimension/fact pair on CHAR(8) keys, plus int-ified mirrors for the
// nested-loop oracle. Build ids cover 0..149 (ids 130..149 never appear in
// the fact side, so build-anti rows are guaranteed); probe ids cover
// {0..129} u {150..219}, so a third of probe values miss the build
// dictionary and the kNoCode path runs on every kind.
struct DiffData {
  std::unique_ptr<Table> dim;
  std::unique_ptr<Table> fact;
  IntRows build;  // [key_id, d_val]
  IntRows probe;  // [key_id, f_grp, f_val]
};

DiffData MakeDiffData(uint64_t seed, int64_t dim_rows = 400,
                      int64_t fact_rows = 3000) {
  DiffData d;
  d.dim = std::make_unique<Table>(
      "dim", Schema({{"d_key", DataType::kChar, 8},
                     {"d_val", DataType::kInt64, 0}}));
  d.fact = std::make_unique<Table>(
      "fact", Schema({{"f_key", DataType::kChar, 8},
                      {"f_grp", DataType::kInt64, 0},
                      {"f_val", DataType::kInt64, 0}}));
  Rng rng(seed);
  for (int64_t i = 0; i < dim_rows; ++i) {
    const int64_t id =
        i < 150 ? i : static_cast<int64_t>(rng.Below(150));  // all ids present
    const int64_t val = static_cast<int64_t>(rng.Below(1000));
    d.dim->column(0).AppendString(MakeKey(id));
    d.dim->column(1).AppendInt64(val);
    d.dim->FinishRow();
    d.build.push_back({id, val});
  }
  for (int64_t i = 0; i < fact_rows; ++i) {
    const int64_t u = static_cast<int64_t>(rng.Below(200));
    const int64_t id = u < 130 ? u : u + 20;  // skips build ids 130..149
    const int64_t grp = static_cast<int64_t>(rng.Below(7));
    const int64_t val = static_cast<int64_t>(rng.Below(1000));
    d.fact->column(0).AppendString(MakeKey(id));
    d.fact->column(1).AppendInt64(grp);
    d.fact->column(2).AppendInt64(val);
    d.fact->FinishRow();
    d.probe.push_back({id, grp, val});
  }
  return d;
}

std::unique_ptr<PlanNode> MakeDiffPlan(const DiffData& d, JoinKind kind) {
  std::vector<AggDef> aggs = {AggDef::CountStar("cnt"),
                              AggDef::Sum("d_val", "sd"),
                              AggDef::Sum("f_val", "sf")};
  if (kind == JoinKind::kMark) aggs.push_back(AggDef::Sum("has_dim", "sm"));
  return Aggregate(
      Join(ScanTable(d.dim.get()), ScanTable(d.fact.get()),
           {{"d_key", "f_key"}}, kind,
           kind == JoinKind::kMark ? "has_dim" : ""),
      {"f_grp"}, std::move(aggs));
}

// Aggregates a ReferenceJoin output ([key, d_val, key, f_grp, f_val(, mark)])
// the way the engine plan above does: group by f_grp, count, sum d_val and
// f_val (and the mark for kMark). Absent-side zeros match the engine's null
// padding, so the sums agree exactly.
IntRows ExpectedAgg(const IntRows& joined, bool mark) {
  std::map<int64_t, std::vector<int64_t>> acc;
  for (const auto& row : joined) {
    auto [it, inserted] =
        acc.emplace(row[3], std::vector<int64_t>(mark ? 4 : 3, 0));
    it->second[0] += 1;
    it->second[1] += row[1];
    it->second[2] += row[4];
    if (mark) it->second[3] += row[5];
  }
  IntRows out;
  for (const auto& [grp, sums] : acc) {
    std::vector<int64_t> row = {grp};
    row.insert(row.end(), sums.begin(), sums.end());
    out.push_back(std::move(row));
  }
  return out;  // std::map iteration is already sorted by group
}

IntRows ResultToIntRows(const QueryResult& r) {
  IntRows out;
  for (const auto& row : r.rows) {
    std::vector<int64_t> ints;
    for (const auto& v : row) ints.push_back(std::get<int64_t>(v));
    out.push_back(std::move(ints));
  }
  std::sort(out.begin(), out.end());
  return out;
}

class EncodingDifferentialTest : public ::testing::TestWithParam<JoinKind> {
 protected:
  void SetUp() override { EncodingCatalog::Global().Invalidate(); }
  void TearDown() override { EncodingCatalog::Global().Invalidate(); }
  // The on-leg must mean "on" even when the suite runs under
  // PJOIN_ENCODING=0 (the CI goldens job): pin the knob per test.
  ScopedEnv enable_{"PJOIN_ENCODING", "1"};
};

TEST_P(EncodingDifferentialTest, MatchesPlainModeAndOracle) {
  const JoinKind kind = GetParam();
  DiffData d = MakeDiffData(1000 + static_cast<uint64_t>(kind) * 31);
  auto plan = MakeDiffPlan(d, kind);

  for (JoinStrategy strategy :
       {JoinStrategy::kBHJ, JoinStrategy::kRJ, JoinStrategy::kAuto}) {
    SCOPED_TRACE(JoinStrategyName(strategy));
    ExecOptions opts;
    opts.join_strategy = strategy;
    opts.num_threads = 2;

    QueryStats on_stats;
    QueryResult on = ExecuteQuery(*plan, opts, &on_stats);
    QueryResult off;
    {
      ScopedEnv env_off("PJOIN_ENCODING", "0");
      off = ExecuteQuery(*plan, opts);
    }
    // Bit-identical across modes: same schema, same exact values.
    ASSERT_EQ(on.column_names, off.column_names);
    ASSERT_EQ(on.rows, off.rows);

    // Both match the nested-loop oracle on the int-ified mirror.
    IntRows joined = ReferenceJoin(d.build, d.probe, 0, kind, 2, 3);
    IntRows expected = ExpectedAgg(joined, kind == JoinKind::kMark);
    ASSERT_EQ(ResultToIntRows(on), expected);

    // The CHAR key pair actually joined on codes.
    ASSERT_EQ(on_stats.metrics.joins().size(), 1u);
    EXPECT_EQ(on_stats.metrics.joins()[0].coded_key_pairs, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, EncodingDifferentialTest,
    ::testing::Values(JoinKind::kInner, JoinKind::kProbeSemi,
                      JoinKind::kProbeAnti, JoinKind::kBuildSemi,
                      JoinKind::kBuildAnti, JoinKind::kLeftOuter,
                      JoinKind::kRightOuter, JoinKind::kMark),
    [](const ::testing::TestParamInfo<JoinKind>& info) {
      std::string name = JoinKindName(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(EncodingDifferential, MultiColumnCharKeys) {
  ScopedEnv enable("PJOIN_ENCODING", "1");
  EncodingCatalog::Global().Invalidate();
  auto dim = std::make_unique<Table>(
      "mdim", Schema({{"d_k1", DataType::kChar, 8},
                      {"d_k2", DataType::kChar, 8},
                      {"d_val", DataType::kInt64, 0}}));
  auto fact = std::make_unique<Table>(
      "mfact", Schema({{"f_k1", DataType::kChar, 8},
                       {"f_k2", DataType::kChar, 8},
                       {"f_grp", DataType::kInt64, 0},
                       {"f_val", DataType::kInt64, 0}}));
  IntRows build, probe;  // composite key = k1 * 100 + k2
  Rng rng(99);
  for (int64_t i = 0; i < 400; ++i) {
    const int64_t k1 = static_cast<int64_t>(rng.Below(20));
    const int64_t k2 = static_cast<int64_t>(rng.Below(20));
    const int64_t val = static_cast<int64_t>(rng.Below(1000));
    dim->column(0).AppendString(MakeKey(k1));
    dim->column(1).AppendString(MakeKey(k2));
    dim->column(2).AppendInt64(val);
    dim->FinishRow();
    build.push_back({k1 * 100 + k2, val});
  }
  for (int64_t i = 0; i < 2000; ++i) {
    const int64_t k1 = static_cast<int64_t>(rng.Below(25));
    const int64_t k2 = static_cast<int64_t>(rng.Below(25));
    const int64_t grp = static_cast<int64_t>(rng.Below(5));
    const int64_t val = static_cast<int64_t>(rng.Below(1000));
    fact->column(0).AppendString(MakeKey(k1));
    fact->column(1).AppendString(MakeKey(k2));
    fact->column(2).AppendInt64(grp);
    fact->column(3).AppendInt64(val);
    fact->FinishRow();
    probe.push_back({k1 * 100 + k2, grp, val});
  }
  for (JoinKind kind : {JoinKind::kInner, JoinKind::kLeftOuter}) {
    SCOPED_TRACE(JoinKindName(kind));
    auto plan = Aggregate(
        Join(ScanTable(dim.get()), ScanTable(fact.get()),
             {{"d_k1", "f_k1"}, {"d_k2", "f_k2"}}, kind),
        {"f_grp"},
        {AggDef::CountStar("cnt"), AggDef::Sum("d_val", "sd"),
         AggDef::Sum("f_val", "sf")});
    ExecOptions opts;
    QueryStats stats;
    QueryResult on = ExecuteQuery(*plan, opts, &stats);
    QueryResult off;
    {
      ScopedEnv env_off("PJOIN_ENCODING", "0");
      off = ExecuteQuery(*plan, opts);
    }
    ASSERT_EQ(on.rows, off.rows);
    IntRows joined = ReferenceJoin(build, probe, 0, kind, 2, 3);
    ASSERT_EQ(ResultToIntRows(on), ExpectedAgg(joined, false));
    ASSERT_EQ(stats.metrics.joins().size(), 1u);
    EXPECT_EQ(stats.metrics.joins()[0].coded_key_pairs, 2u);
  }
  EncodingCatalog::Global().Invalidate();
}

TEST(EncodingDifferential, ComposesWithMemoryBudget) {
  ScopedEnv enable("PJOIN_ENCODING", "1");
  EncodingCatalog::Global().Invalidate();
  // Large enough to blow a 16 KiB budget on the build side; repetitive
  // payloads so the compressed spill pages actually shrink the file.
  DiffData d = MakeDiffData(555, /*dim_rows=*/4000, /*fact_rows=*/8000);
  auto plan = MakeDiffPlan(d, JoinKind::kInner);
  ExecOptions opts;
  opts.join_strategy = JoinStrategy::kRJ;
  opts.num_threads = 2;

  QueryResult unbudgeted = ExecuteQuery(*plan, opts);
  QueryStats budgeted_stats;
  QueryResult budgeted;
  {
    ScopedMemoryBudget scoped(16 * 1024);
    budgeted = ExecuteQuery(*plan, opts, &budgeted_stats);
  }
  ASSERT_EQ(budgeted.rows, unbudgeted.rows);
  IntRows joined = ReferenceJoin(d.build, d.probe, 0, JoinKind::kInner, 2, 3);
  ASSERT_EQ(ResultToIntRows(budgeted), ExpectedAgg(joined, false));

  ASSERT_EQ(budgeted_stats.metrics.joins().size(), 1u);
  const SpillMetrics& sp = budgeted_stats.metrics.joins()[0].spill;
  ASSERT_TRUE(sp.spilled) << "tiny budget must force a spill";
  EXPECT_TRUE(sp.compressed);
  EXPECT_GT(sp.physical_bytes_written, 0u);
  EXPECT_GT(sp.physical_bytes_read, 0u);
  // Compressed pages beat the logical tuple bytes on this data.
  EXPECT_LT(sp.physical_bytes_written, sp.bytes_written);

  // Same rows again with the budget AND encoding both off.
  {
    ScopedMemoryBudget scoped(16 * 1024);
    ScopedEnv env_off("PJOIN_ENCODING", "0");
    QueryResult plain = ExecuteQuery(*plan, opts);
    ASSERT_EQ(plain.rows, unbudgeted.rows);
  }
  EncodingCatalog::Global().Invalidate();
}

TEST(EncodingExec, ObservabilitySurfacesEncodedScans) {
  ScopedEnv enable("PJOIN_ENCODING", "1");
  EncodingCatalog::Global().Invalidate();
  DiffData d = MakeDiffData(321);
  auto plan = MakeDiffPlan(d, JoinKind::kInner);
  ExecOptions opts;
  QueryStats stats;
  ExecuteQuery(*plan, opts, &stats);
  // Both scans read codes narrower than the plain rows.
  int encoded_scans = 0;
  for (const ScanMetrics& s : stats.metrics.scans()) {
    if (!s.encoded) continue;
    ++encoded_scans;
    EXPECT_GT(s.enc_read_width, 0u);
    EXPECT_LT(s.enc_read_width, s.plain_read_width);
  }
  EXPECT_EQ(encoded_scans, 2);
  // The JSON carries the query-level encoding section with the same story.
  const std::string json = stats.metrics.ToJson();
  EXPECT_NE(json.find("\"encoding\""), std::string::npos);
  EXPECT_NE(json.find("\"coded_join_pairs\":1"), std::string::npos);
  {
    ScopedEnv env_off("PJOIN_ENCODING", "0");
    QueryStats off_stats;
    ExecuteQuery(*plan, opts, &off_stats);
    EXPECT_EQ(off_stats.metrics.ToJson().find("\"encoding\""),
              std::string::npos);
  }
  EncodingCatalog::Global().Invalidate();
}

}  // namespace
}  // namespace pjoin
