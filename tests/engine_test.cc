// End-to-end engine tests: plans lowered to pipelines under every join
// strategy and materialization strategy must agree with each other and with
// hand-computed results.
#include <gtest/gtest.h>

#include <memory>

#include "engine/executor.h"
#include "engine/plan.h"
#include "util/rng.h"

namespace pjoin {
namespace {

// Tiny star schema: dim(d_key, d_cat, d_name), fact(f_key, f_val, f_price).
struct TestDb {
  Table dim{"dim", Schema({{"d_key", DataType::kInt64, 0},
                           {"d_cat", DataType::kInt64, 0},
                           {"d_name", DataType::kChar, 8}})};
  Table fact{"fact", Schema({{"f_key", DataType::kInt64, 0},
                             {"f_val", DataType::kInt64, 0},
                             {"f_price", DataType::kFloat64, 0},
                             {"f_date", DataType::kDate, 0}})};

  TestDb(uint64_t dim_rows = 200, uint64_t fact_rows = 5000) {
    Rng rng(42);
    for (uint64_t i = 0; i < dim_rows; ++i) {
      dim.column(0).AppendInt64(static_cast<int64_t>(i));
      dim.column(1).AppendInt64(static_cast<int64_t>(i % 10));
      dim.column(2).AppendString("n" + std::to_string(i % 37));
      dim.FinishRow();
    }
    for (uint64_t i = 0; i < fact_rows; ++i) {
      // ~75% of fact rows reference an existing dim key.
      int64_t key = static_cast<int64_t>(rng.Below(dim_rows * 4 / 3));
      fact.column(0).AppendInt64(key);
      fact.column(1).AppendInt64(static_cast<int64_t>(rng.Below(100)));
      fact.column(2).AppendFloat64(static_cast<double>(rng.Below(1000)) / 10);
      fact.column(3).AppendInt32(MakeDate(1995, 1, 1) +
                                 static_cast<int32_t>(rng.Below(1000)));
      fact.FinishRow();
    }
  }
};

const std::vector<JoinStrategy> kAllStrategies = {
    JoinStrategy::kBHJ, JoinStrategy::kRJ, JoinStrategy::kBRJ,
    JoinStrategy::kBRJAdaptive};

std::unique_ptr<PlanNode> SimpleJoinPlan(const TestDb& db) {
  return Aggregate(
      Join(ScanTable(&db.dim), ScanTable(&db.fact), {{"d_key", "f_key"}}),
      {}, {AggDef::CountStar("n"), AggDef::Sum("f_val", "sv")});
}

TEST(Engine, ScanCountAll) {
  TestDb db;
  auto plan = Aggregate(ScanTable(&db.fact), {}, {AggDef::CountStar("n")});
  QueryResult result = ExecuteQuery(*plan, ExecOptions{});
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(std::get<int64_t>(result.rows[0][0]),
            static_cast<int64_t>(db.fact.num_rows()));
}

TEST(Engine, ScanWithPredicates) {
  TestDb db;
  auto plan = Aggregate(
      ScanTable(&db.fact, {ScanPredicate::GeI("f_val", 50)}), {},
      {AggDef::CountStar("n"), AggDef::Min("f_val", "mn")});
  QueryResult result = ExecuteQuery(*plan, ExecOptions{});
  int64_t expected = 0;
  for (uint64_t r = 0; r < db.fact.num_rows(); ++r) {
    if (db.fact.column(1).GetInt64(r) >= 50) ++expected;
  }
  EXPECT_EQ(std::get<int64_t>(result.rows[0][0]), expected);
  EXPECT_GE(std::get<double>(result.rows[0][1]), 50.0);
}

TEST(Engine, JoinCountAllStrategiesAgree) {
  TestDb db;
  // Reference: count fact rows whose key < dim_rows (dense dim keys).
  int64_t expected = 0;
  for (uint64_t r = 0; r < db.fact.num_rows(); ++r) {
    if (db.fact.column(0).GetInt64(r) <
        static_cast<int64_t>(db.dim.num_rows())) {
      ++expected;
    }
  }
  for (JoinStrategy s : kAllStrategies) {
    auto plan = SimpleJoinPlan(db);
    ExecOptions options;
    options.join_strategy = s;
    options.num_threads = 2;
    QueryResult result = ExecuteQuery(*plan, options);
    EXPECT_EQ(std::get<int64_t>(result.rows[0][0]), expected)
        << JoinStrategyName(s);
  }
}

TEST(Engine, GroupByWithJoin) {
  TestDb db;
  auto make_plan = [&] {
    return Aggregate(
        Join(ScanTable(&db.dim), ScanTable(&db.fact), {{"d_key", "f_key"}}),
        {"d_cat"}, {AggDef::CountStar("n"), AggDef::Sum("f_price", "rev")});
  };
  QueryResult reference;
  for (size_t i = 0; i < kAllStrategies.size(); ++i) {
    ExecOptions options;
    options.join_strategy = kAllStrategies[i];
    QueryResult result = ExecuteQuery(*make_plan(), options);
    EXPECT_EQ(result.num_rows(), 10u);
    if (i == 0) {
      reference = result;
    } else {
      EXPECT_TRUE(result.ApproxEquals(reference))
          << JoinStrategyName(kAllStrategies[i]);
    }
  }
}

TEST(Engine, GroupByCharColumn) {
  TestDb db;
  auto plan = Aggregate(ScanTable(&db.dim), {"d_name"},
                        {AggDef::CountStar("n")});
  QueryResult result = ExecuteQuery(*plan, ExecOptions{});
  EXPECT_EQ(result.num_rows(), 37u);
  int64_t total = 0;
  for (const auto& row : result.rows) total += std::get<int64_t>(row[1]);
  EXPECT_EQ(total, static_cast<int64_t>(db.dim.num_rows()));
}

TEST(Engine, MapComputedColumn) {
  TestDb db;
  MapDef def;
  def.name = "double_val";
  def.type = DataType::kInt64;
  def.inputs = {"f_val"};
  def.fn = [](const RowLayout& layout, const std::byte* row,
              const int* fields, std::byte* dst) {
    int64_t v = layout.GetInt64(row, fields[0]);
    int64_t out = v * 2;
    std::memcpy(dst, &out, 8);
  };
  auto plan =
      Aggregate(MapColumns(ScanTable(&db.fact), {std::move(def)}), {},
                {AggDef::Sum("double_val", "s2"), AggDef::Sum("f_val", "s1")});
  QueryResult result = ExecuteQuery(*plan, ExecOptions{});
  EXPECT_EQ(std::get<int64_t>(result.rows[0][0]),
            2 * std::get<int64_t>(result.rows[0][1]));
}

TEST(Engine, FilterOpAfterJoin) {
  TestDb db;
  for (JoinStrategy s : kAllStrategies) {
    FilterDef filter;
    filter.inputs = {"d_cat", "f_val"};
    filter.fn = [](const RowLayout& layout, const std::byte* row,
                   const int* fields) {
      return layout.GetInt64(row, fields[0]) ==
             layout.GetInt64(row, fields[1]) % 10;
    };
    auto plan = Aggregate(
        Filter(Join(ScanTable(&db.dim), ScanTable(&db.fact),
                    {{"d_key", "f_key"}}),
               std::move(filter)),
        {}, {AggDef::CountStar("n")});
    ExecOptions options;
    options.join_strategy = s;
    QueryResult result = ExecuteQuery(*plan, options);
    // Reference computation.
    int64_t expected = 0;
    for (uint64_t r = 0; r < db.fact.num_rows(); ++r) {
      int64_t key = db.fact.column(0).GetInt64(r);
      if (key >= static_cast<int64_t>(db.dim.num_rows())) continue;
      int64_t cat = db.dim.column(1).GetInt64(key);  // d_key == row index
      if (cat == db.fact.column(1).GetInt64(r) % 10) ++expected;
    }
    EXPECT_EQ(std::get<int64_t>(result.rows[0][0]), expected)
        << JoinStrategyName(s);
  }
}

TEST(Engine, SemiAndAntiJoins) {
  TestDb db;
  for (JoinStrategy s : kAllStrategies) {
    ExecOptions options;
    options.join_strategy = s;
    // EXISTS: fact rows with a dim partner.
    auto semi = Aggregate(
        Join(ScanTable(&db.dim), ScanTable(&db.fact), {{"d_key", "f_key"}},
             JoinKind::kProbeSemi),
        {}, {AggDef::CountStar("n")});
    // NOT EXISTS: fact rows without a dim partner.
    auto anti = Aggregate(
        Join(ScanTable(&db.dim), ScanTable(&db.fact), {{"d_key", "f_key"}},
             JoinKind::kProbeAnti),
        {}, {AggDef::CountStar("n")});
    int64_t semi_n = std::get<int64_t>(
        ExecuteQuery(*semi, options).rows[0][0]);
    int64_t anti_n = std::get<int64_t>(
        ExecuteQuery(*anti, options).rows[0][0]);
    EXPECT_EQ(semi_n + anti_n, static_cast<int64_t>(db.fact.num_rows()))
        << JoinStrategyName(s);
  }
}

TEST(Engine, BuildAntiJoin) {
  // Dim rows with no fact reference (the Q21/Q22 NOT EXISTS pattern with the
  // big relation on the probe side).
  TestDb db;
  std::set<int64_t> referenced;
  for (uint64_t r = 0; r < db.fact.num_rows(); ++r) {
    referenced.insert(db.fact.column(0).GetInt64(r));
  }
  int64_t expected = 0;
  for (uint64_t r = 0; r < db.dim.num_rows(); ++r) {
    if (!referenced.count(db.dim.column(0).GetInt64(r))) ++expected;
  }
  for (JoinStrategy s : kAllStrategies) {
    ExecOptions options;
    options.join_strategy = s;
    auto plan = Aggregate(
        Join(ScanTable(&db.dim), ScanTable(&db.fact), {{"d_key", "f_key"}},
             JoinKind::kBuildAnti),
        {}, {AggDef::CountStar("n")});
    EXPECT_EQ(std::get<int64_t>(ExecuteQuery(*plan, options).rows[0][0]),
              expected)
        << JoinStrategyName(s);
  }
}

TEST(Engine, MarkJoinFeedsFilter) {
  TestDb db;
  for (JoinStrategy s : kAllStrategies) {
    FilterDef keep_unmatched;
    keep_unmatched.inputs = {"has_dim"};
    keep_unmatched.fn = [](const RowLayout& layout, const std::byte* row,
                           const int* fields) {
      return layout.GetInt64(row, fields[0]) == 0;
    };
    auto plan = Aggregate(
        Filter(Join(ScanTable(&db.dim), ScanTable(&db.fact),
                    {{"d_key", "f_key"}}, JoinKind::kMark, "has_dim"),
               std::move(keep_unmatched)),
        {}, {AggDef::CountStar("n")});
    ExecOptions options;
    options.join_strategy = s;
    int64_t unmatched =
        std::get<int64_t>(ExecuteQuery(*plan, options).rows[0][0]);
    int64_t expected = 0;
    for (uint64_t r = 0; r < db.fact.num_rows(); ++r) {
      if (db.fact.column(0).GetInt64(r) >=
          static_cast<int64_t>(db.dim.num_rows())) {
        ++expected;
      }
    }
    EXPECT_EQ(unmatched, expected) << JoinStrategyName(s);
  }
}

TEST(Engine, TwoJoinPipeline) {
  // dim ⋈ (dim2 ⋈ fact): chained joins through one probe pipeline (BHJ) or
  // repeated pipeline breaking (RJ).
  TestDb db;
  Table dim2{"dim2", Schema({{"e_key", DataType::kInt64, 0},
                             {"e_weight", DataType::kInt64, 0}})};
  for (int64_t i = 0; i < 100; ++i) {
    dim2.column(0).AppendInt64(i);
    dim2.column(1).AppendInt64(i * 3);
    dim2.FinishRow();
  }
  QueryResult reference;
  bool first = true;
  for (JoinStrategy s : kAllStrategies) {
    auto inner = Join(ScanTable(&dim2), ScanTable(&db.fact),
                      {{"e_key", "f_val"}});
    auto outer = Join(ScanTable(&db.dim), std::move(inner),
                      {{"d_key", "f_key"}});
    auto plan = Aggregate(std::move(outer), {"d_cat"},
                          {AggDef::Sum("e_weight", "w")});
    ExecOptions options;
    options.join_strategy = s;
    options.num_threads = 2;
    QueryResult result = ExecuteQuery(*plan, options);
    if (first) {
      reference = result;
      first = false;
      EXPECT_GT(result.num_rows(), 0u);
    } else {
      EXPECT_TRUE(result.ApproxEquals(reference)) << JoinStrategyName(s);
    }
  }
}

TEST(Engine, LateMaterializationMatchesEarly) {
  TestDb db;
  for (JoinStrategy s : kAllStrategies) {
    auto make_plan = [&] {
      return Aggregate(
          Join(ScanTable(&db.dim), ScanTable(&db.fact), {{"d_key", "f_key"}}),
          {"d_cat"}, {AggDef::Sum("f_price", "rev")});
    };
    ExecOptions early;
    early.join_strategy = s;
    ExecOptions late = early;
    late.late_materialization = true;
    QueryResult r_early = ExecuteQuery(*make_plan(), early);
    QueryResult r_late = ExecuteQuery(*make_plan(), late);
    EXPECT_TRUE(r_early.ApproxEquals(r_late)) << JoinStrategyName(s);
  }
}

TEST(Engine, LateColumnsAnalysis) {
  TestDb db;
  auto plan = Aggregate(
      Join(ScanTable(&db.dim), ScanTable(&db.fact), {{"d_key", "f_key"}}),
      {"d_cat"}, {AggDef::Sum("f_price", "rev")});
  std::set<std::string> late = internal::ComputeLateColumns(*plan);
  // f_price and d_cat are only used at the root: both can be deferred.
  EXPECT_TRUE(late.count("f_price"));
  EXPECT_TRUE(late.count("d_cat"));
  // Join keys cannot be late.
  EXPECT_FALSE(late.count("d_key"));
  EXPECT_FALSE(late.count("f_key"));
}

TEST(Engine, PerJoinStrategyOverride) {
  TestDb db;
  Table dim2{"dim2", Schema({{"e_key", DataType::kInt64, 0},
                             {"e_weight", DataType::kInt64, 0}})};
  for (int64_t i = 0; i < 100; ++i) {
    dim2.column(0).AppendInt64(i);
    dim2.column(1).AppendInt64(i);
    dim2.FinishRow();
  }
  auto make_plan = [&] {
    auto inner =
        Join(ScanTable(&dim2), ScanTable(&db.fact), {{"e_key", "f_val"}});
    auto outer =
        Join(ScanTable(&db.dim), std::move(inner), {{"d_key", "f_key"}});
    return Aggregate(std::move(outer), {}, {AggDef::CountStar("n")});
  };
  ExecOptions base;
  base.join_strategy = JoinStrategy::kBHJ;
  QueryResult reference = ExecuteQuery(*make_plan(), base);
  // Flip only join #0 (the inner join, postorder) to BRJ.
  ExecOptions mixed = base;
  mixed.join_overrides[0] = JoinStrategy::kBRJ;
  QueryResult result = ExecuteQuery(*make_plan(), mixed);
  EXPECT_TRUE(result.ApproxEquals(reference));
}

TEST(Engine, StatsPopulated) {
  TestDb db;
  auto plan = SimpleJoinPlan(db);
  ExecOptions options;
  options.join_strategy = JoinStrategy::kBRJ;
  QueryStats stats;
  ExecuteQuery(*plan, options, &stats);
  EXPECT_GT(stats.seconds, 0.0);
  EXPECT_EQ(stats.source_tuples, db.dim.num_rows() + db.fact.num_rows());
  EXPECT_EQ(stats.result_rows, 1u);
  EXPECT_GT(stats.Throughput(), 0.0);
  EXPECT_GT(stats.partition_bytes, 0u);
  EXPECT_GT(stats.bloom_dropped, 0u);  // ~25% of fact keys have no partner
}

TEST(Engine, EmptyResultQuery) {
  TestDb db;
  auto plan = Aggregate(
      ScanTable(&db.fact, {ScanPredicate::GtI("f_val", 1'000'000)}), {},
      {AggDef::CountStar("n")});
  QueryResult result = ExecuteQuery(*plan, ExecOptions{});
  ASSERT_EQ(result.num_rows(), 1u);
  EXPECT_EQ(std::get<int64_t>(result.rows[0][0]), 0);
}

}  // namespace
}  // namespace pjoin
