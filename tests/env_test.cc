// Environment-knob parsing: strict integer parsing (trailing garbage means
// "unset", never a silent truncation), thread-count clamping, and the byte
// size suffixes PJOIN_MEMORY_BUDGET accepts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "util/env.h"

namespace pjoin {
namespace {

// RAII environment variable override.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  bool had_old_ = false;
  std::string old_;
};

constexpr const char* kVar = "PJOIN_ENV_TEST_VAR";

TEST(EnvInt, ParsesPlainInteger) {
  ScopedEnv env(kVar, "42");
  EXPECT_EQ(GetEnvInt64(kVar, -1), 42);
}

TEST(EnvInt, UnsetReturnsDefault) {
  ScopedEnv env(kVar, nullptr);
  EXPECT_EQ(GetEnvInt64(kVar, 7), 7);
}

TEST(EnvInt, TrailingGarbageReturnsDefault) {
  ScopedEnv env(kVar, "12abc");
  EXPECT_EQ(GetEnvInt64(kVar, -1), -1);
}

TEST(EnvInt, TrailingWhitespaceAccepted) {
  ScopedEnv env(kVar, "12 ");
  EXPECT_EQ(GetEnvInt64(kVar, -1), 12);
}

TEST(EnvInt, PureGarbageReturnsDefault) {
  ScopedEnv env(kVar, "abc");
  EXPECT_EQ(GetEnvInt64(kVar, 5), 5);
}

TEST(EnvInt, NegativeParses) {
  ScopedEnv env(kVar, "-3");
  EXPECT_EQ(GetEnvInt64(kVar, 0), -3);
}

TEST(EnvDouble, TrailingGarbageReturnsDefault) {
  ScopedEnv env(kVar, "1.5x");
  EXPECT_EQ(GetEnvDouble(kVar, 2.5), 2.5);
}

TEST(EnvDouble, ParsesPlainDouble) {
  ScopedEnv env(kVar, "0.25");
  EXPECT_DOUBLE_EQ(GetEnvDouble(kVar, 0), 0.25);
}

TEST(EnvThreads, ClampsToAtLeastOne) {
  {
    ScopedEnv env("PJOIN_THREADS", "0");
    EXPECT_GE(DefaultThreads(), 1);
  }
  {
    ScopedEnv env("PJOIN_THREADS", "-4");
    EXPECT_GE(DefaultThreads(), 1);
  }
  {
    ScopedEnv env("PJOIN_THREADS", "3");
    EXPECT_EQ(DefaultThreads(), 3);
  }
}

TEST(ParseByteSize, PlainBytes) {
  uint64_t v = 0;
  ASSERT_TRUE(ParseByteSize("1048576", &v));
  EXPECT_EQ(v, 1048576u);
}

TEST(ParseByteSize, Suffixes) {
  uint64_t v = 0;
  ASSERT_TRUE(ParseByteSize("512k", &v));
  EXPECT_EQ(v, 512u * 1024);
  ASSERT_TRUE(ParseByteSize("64m", &v));
  EXPECT_EQ(v, 64u * 1024 * 1024);
  ASSERT_TRUE(ParseByteSize("2g", &v));
  EXPECT_EQ(v, 2ull * 1024 * 1024 * 1024);
  ASSERT_TRUE(ParseByteSize("1t", &v));
  EXPECT_EQ(v, 1ull << 40);
}

TEST(ParseByteSize, CaseAndIecForms) {
  uint64_t v = 0;
  ASSERT_TRUE(ParseByteSize("64M", &v));
  EXPECT_EQ(v, 64u * 1024 * 1024);
  ASSERT_TRUE(ParseByteSize("64MB", &v));
  EXPECT_EQ(v, 64u * 1024 * 1024);
  ASSERT_TRUE(ParseByteSize("64MiB", &v));
  EXPECT_EQ(v, 64u * 1024 * 1024);
  ASSERT_TRUE(ParseByteSize("100b", &v));
  EXPECT_EQ(v, 100u);
}

TEST(ParseByteSize, RejectsGarbage) {
  uint64_t v = 0;
  EXPECT_FALSE(ParseByteSize("", &v));
  EXPECT_FALSE(ParseByteSize("abc", &v));
  EXPECT_FALSE(ParseByteSize("12x", &v));
  EXPECT_FALSE(ParseByteSize("64mq", &v));
  EXPECT_FALSE(ParseByteSize("-5", &v));
  EXPECT_FALSE(ParseByteSize("-5m", &v));
}

TEST(ParseByteSize, TrailingWhitespaceAccepted) {
  uint64_t v = 0;
  ASSERT_TRUE(ParseByteSize("64m ", &v));
  EXPECT_EQ(v, 64u * 1024 * 1024);
}

TEST(EnvBytes, ReadsSuffixedBudget) {
  ScopedEnv env(kVar, "16m");
  EXPECT_EQ(GetEnvBytes(kVar, 0), 16u * 1024 * 1024);
}

TEST(EnvBytes, GarbageFallsBackToDefault) {
  ScopedEnv env(kVar, "lots");
  EXPECT_EQ(GetEnvBytes(kVar, 123), 123u);
}

}  // namespace
}  // namespace pjoin
