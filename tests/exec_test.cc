// Unit tests for src/exec: thread pool, morsel queue, batches, pipelines.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "exec/batch.h"
#include "exec/morsel.h"
#include "exec/pipeline.h"
#include "exec/thread_pool.h"

namespace pjoin {
namespace {

TEST(ThreadPool, RunsAllThreadIds) {
  for (int n : {1, 2, 4}) {
    ThreadPool pool(n);
    std::vector<std::atomic<int>> hits(n);
    pool.ParallelRun([&](int tid) { hits[tid].fetch_add(1); });
    for (int i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossRuns) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.ParallelRun([&](int) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 150);
}

TEST(MorselQueue, CoversRangeExactlyOnce) {
  MorselQueue queue(100000, 1024);
  std::vector<char> seen(100000, 0);
  ThreadPool pool(4);
  pool.ParallelRun([&](int) {
    while (true) {
      Morsel m = queue.Next();
      if (m.empty()) break;
      for (uint64_t i = m.begin; i < m.end; ++i) seen[i]++;
    }
  });
  for (char c : seen) EXPECT_EQ(c, 1);
}

TEST(MorselQueue, EmptyInput) {
  MorselQueue queue(0);
  EXPECT_TRUE(queue.Next().empty());
}

TEST(MorselQueue, LastMorselClamped) {
  MorselQueue queue(100, 64);
  Morsel a = queue.Next();
  Morsel b = queue.Next();
  EXPECT_EQ(a.size(), 64u);
  EXPECT_EQ(b.begin, 64u);
  EXPECT_EQ(b.end, 100u);
  EXPECT_TRUE(queue.Next().empty());
}

TEST(BatchScratch, AppendAndReuse) {
  RowLayout layout({{"v", DataType::kInt64, 8, 0}});
  BatchScratch scratch;
  scratch.Bind(&layout);
  Batch batch = scratch.Start();
  for (int64_t i = 0; i < 10; ++i) {
    std::byte* slot = scratch.AppendSlot(batch);
    layout.SetInt64(slot, 0, i);
  }
  EXPECT_EQ(batch.size, 10u);
  EXPECT_EQ(layout.GetInt64(batch.Row(7), 0), 7);
  EXPECT_FALSE(scratch.Full(batch));
  Batch second = scratch.Start();
  EXPECT_EQ(second.size, 0u);
}

// A trivial source: emits values [0, n) in batches.
class IotaSource : public Source {
 public:
  IotaSource(const RowLayout* layout, uint64_t n) : layout_(layout), queue_(n) {}

  bool ProduceMorsel(Operator& consumer, ThreadContext& ctx) override {
    Morsel m = queue_.Next();
    if (m.empty()) return false;
    BatchScratch scratch;
    scratch.Bind(layout_);
    Batch batch = scratch.Start();
    for (uint64_t i = m.begin; i < m.end; ++i) {
      layout_->SetInt64(scratch.AppendSlot(batch), 0, static_cast<int64_t>(i));
      if (scratch.Full(batch)) {
        consumer.Consume(batch, ctx);
        batch = scratch.Start();
      }
    }
    if (batch.size > 0) consumer.Consume(batch, ctx);
    return true;
  }
  const RowLayout* OutputLayout() const override { return layout_; }

 private:
  const RowLayout* layout_;
  MorselQueue queue_;
};

// A summing sink operator.
class SumSink : public Operator {
 public:
  explicit SumSink(const RowLayout* layout) : layout_(layout) {}
  void Consume(Batch& batch, ThreadContext&) override {
    int64_t local = 0;
    for (uint32_t i = 0; i < batch.size; ++i) {
      local += layout_->GetInt64(batch.Row(i), 0);
    }
    sum_.fetch_add(local, std::memory_order_relaxed);
  }
  const RowLayout* OutputLayout() const override { return layout_; }
  int64_t sum() const { return sum_.load(); }

 private:
  const RowLayout* layout_;
  std::atomic<int64_t> sum_{0};
};

TEST(Pipeline, SourceToSink) {
  RowLayout layout({{"v", DataType::kInt64, 8, 0}});
  const uint64_t n = 200000;
  IotaSource source(&layout, n);
  SumSink sink(&layout);
  ThreadPool pool(4);
  ExecContext exec(&pool);
  Pipeline pipeline;
  pipeline.set_source(&source);
  pipeline.AddOperator(&sink);
  pipeline.Run(exec);
  EXPECT_EQ(sink.sum(), static_cast<int64_t>(n * (n - 1) / 2));
}

TEST(Pipeline, TimerRecordsPhase) {
  RowLayout layout({{"v", DataType::kInt64, 8, 0}});
  IotaSource source(&layout, 1000);
  SumSink sink(&layout);
  ThreadPool pool(1);
  ExecContext exec(&pool);
  Pipeline pipeline;
  pipeline.set_source(&source);
  pipeline.AddOperator(&sink);
  pipeline.timing_phase = JoinPhase::kBuildPipeline;
  pipeline.Run(exec);
  EXPECT_GT(exec.timer().seconds(JoinPhase::kBuildPipeline), 0.0);
  EXPECT_EQ(exec.timer().seconds(JoinPhase::kJoin), 0.0);
}

TEST(ExecContext, SourceTupleAccounting) {
  ThreadPool pool(2);
  ExecContext exec(&pool);
  pool.ParallelRun([&](int) { exec.AddSourceTuples(10); });
  EXPECT_EQ(exec.source_tuples(), 20u);
}

}  // namespace
}  // namespace pjoin
