// Tests for the plan explainer.
#include <gtest/gtest.h>

#include "engine/explain.h"
#include "engine/plan.h"

namespace pjoin {
namespace {

TEST(Explain, RendersTreeWithJoinIdsAndStrategies) {
  Table a("ta", Schema({{"a_k", DataType::kInt64, 0}}));
  Table b("tb", Schema({{"b_k", DataType::kInt64, 0}}));
  Table c("tc", Schema({{"c_k", DataType::kInt64, 0}}));
  a.column(0).AppendInt64(1);
  a.FinishRow();
  b.column(0).AppendInt64(1);
  b.FinishRow();
  c.column(0).AppendInt64(1);
  c.FinishRow();

  auto inner = Join(ScanTable(&a, {ScanPredicate::GtI("a_k", 0)}),
                    ScanTable(&b), {{"a_k", "b_k"}});
  auto outer = Join(std::move(inner), ScanTable(&c), {{"a_k", "c_k"}},
                    JoinKind::kProbeSemi);
  auto plan = Aggregate(std::move(outer), {}, {AggDef::CountStar("n")});

  ExecOptions options;
  options.join_strategy = JoinStrategy::kBHJ;
  options.join_overrides[1] = JoinStrategy::kBRJ;
  std::string text = ExplainPlan(*plan, options);

  EXPECT_NE(text.find("aggregate"), std::string::npos);
  // Post-order: the inner join is #0 (default BHJ), the semi join is #1
  // (overridden to BRJ).
  EXPECT_NE(text.find("join #0 [inner, BHJ]"), std::string::npos);
  EXPECT_NE(text.find("join #1 [probe-semi, BRJ]"), std::string::npos);
  EXPECT_NE(text.find("scan ta [1 rows, a_k >]"), std::string::npos);
  EXPECT_NE(text.find("scan tc"), std::string::npos);
}

TEST(Explain, RendersFilterAndMapLabels) {
  Table t("tt", Schema({{"x", DataType::kInt64, 0}}));
  t.column(0).AppendInt64(1);
  t.FinishRow();
  FilterDef filter;
  filter.label = "x is even";
  filter.inputs = {"x"};
  filter.fn = [](const RowLayout& l, const std::byte* r, const int* f) {
    return l.GetInt64(r, f[0]) % 2 == 0;
  };
  MapDef map;
  map.name = "x2";
  map.type = DataType::kInt64;
  map.inputs = {"x"};
  map.fn = [](const RowLayout& l, const std::byte* r, const int* f,
              std::byte* dst) {
    int64_t v = l.GetInt64(r, f[0]) * 2;
    std::memcpy(dst, &v, 8);
  };
  auto plan =
      Aggregate(MapColumns(Filter(ScanTable(&t), std::move(filter)),
                           {std::move(map)}),
                {}, {AggDef::Sum("x2", "s")});
  std::string text = ExplainPlan(*plan, ExecOptions{});
  EXPECT_NE(text.find("filter [x is even]"), std::string::npos);
  EXPECT_NE(text.find("map [x2]"), std::string::npos);
}

}  // namespace
}  // namespace pjoin
