// Tests for the plan explainer.
#include <gtest/gtest.h>

#include "engine/explain.h"
#include "engine/plan.h"

namespace pjoin {
namespace {

TEST(Explain, RendersTreeWithJoinIdsAndStrategies) {
  Table a("ta", Schema({{"a_k", DataType::kInt64, 0}}));
  Table b("tb", Schema({{"b_k", DataType::kInt64, 0}}));
  Table c("tc", Schema({{"c_k", DataType::kInt64, 0}}));
  a.column(0).AppendInt64(1);
  a.FinishRow();
  b.column(0).AppendInt64(1);
  b.FinishRow();
  c.column(0).AppendInt64(1);
  c.FinishRow();

  auto inner = Join(ScanTable(&a, {ScanPredicate::GtI("a_k", 0)}),
                    ScanTable(&b), {{"a_k", "b_k"}});
  auto outer = Join(std::move(inner), ScanTable(&c), {{"a_k", "c_k"}},
                    JoinKind::kProbeSemi);
  auto plan = Aggregate(std::move(outer), {}, {AggDef::CountStar("n")});

  ExecOptions options;
  options.join_strategy = JoinStrategy::kBHJ;
  options.join_overrides[1] = JoinStrategy::kBRJ;
  std::string text = ExplainPlan(*plan, options);

  EXPECT_NE(text.find("aggregate"), std::string::npos);
  // Post-order: the inner join is #0 (default BHJ), the semi join is #1
  // (overridden to BRJ).
  EXPECT_NE(text.find("join #0 [inner, BHJ]"), std::string::npos);
  EXPECT_NE(text.find("join #1 [probe-semi, BRJ]"), std::string::npos);
  EXPECT_NE(text.find("scan ta [1 rows, a_k >]"), std::string::npos);
  EXPECT_NE(text.find("scan tc"), std::string::npos);
}

TEST(Explain, AutoStrategyShowsAdvisorDecision) {
  // kAuto joins render as "auto:<pick>" plus an advisor sub-line with the
  // cost breakdown. Cache sizes are pinned so the output is
  // machine-independent, and two renders must be byte-identical (the costs
  // are deterministic functions of the plan).
  Table dim("xd", Schema({{"xd_k", DataType::kInt64, 0}}));
  Table fact("xf", Schema({{"xf_k", DataType::kInt64, 0}}));
  for (int64_t k = 0; k < 100; ++k) {
    dim.column(0).AppendInt64(k);
    dim.FinishRow();
  }
  for (int64_t i = 0; i < 5000; ++i) {
    fact.column(0).AppendInt64(i % 200);
    fact.FinishRow();
  }
  auto plan =
      Aggregate(Join(ScanTable(&dim), ScanTable(&fact), {{"xd_k", "xf_k"}}),
                {}, {AggDef::CountStar("n")});

  ExecOptions options;
  options.join_strategy = JoinStrategy::kAuto;
  options.advisor.l2_bytes = 1 << 20;
  options.advisor.llc_bytes = 16 << 20;
  const std::string text = ExplainPlan(*plan, options);
  EXPECT_EQ(text, ExplainPlan(*plan, options));

  // A 100-row build fits any L2: the advisor picks BHJ and says why.
  EXPECT_NE(text.find("join #0 [inner, auto:BHJ]"), std::string::npos);
  EXPECT_NE(text.find("advisor: est_build=100 est_probe=5000"),
            std::string::npos);
  EXPECT_NE(text.find("cost[bhj="), std::string::npos);
  EXPECT_NE(text.find("-- build fits L2"), std::string::npos);

  // Manual strategies render without the advisor line.
  ExecOptions manual;
  manual.join_strategy = JoinStrategy::kBHJ;
  const std::string plain = ExplainPlan(*plan, manual);
  EXPECT_EQ(plain.find("advisor:"), std::string::npos);
  EXPECT_NE(plain.find("join #0 [inner, BHJ]"), std::string::npos);
}

TEST(Explain, RendersFilterAndMapLabels) {
  Table t("tt", Schema({{"x", DataType::kInt64, 0}}));
  t.column(0).AppendInt64(1);
  t.FinishRow();
  FilterDef filter;
  filter.label = "x is even";
  filter.inputs = {"x"};
  filter.fn = [](const RowLayout& l, const std::byte* r, const int* f) {
    return l.GetInt64(r, f[0]) % 2 == 0;
  };
  MapDef map;
  map.name = "x2";
  map.type = DataType::kInt64;
  map.inputs = {"x"};
  map.fn = [](const RowLayout& l, const std::byte* r, const int* f,
              std::byte* dst) {
    int64_t v = l.GetInt64(r, f[0]) * 2;
    std::memcpy(dst, &v, 8);
  };
  auto plan =
      Aggregate(MapColumns(Filter(ScanTable(&t), std::move(filter)),
                           {std::move(map)}),
                {}, {AggDef::Sum("x2", "s")});
  std::string text = ExplainPlan(*plan, ExecOptions{});
  EXPECT_NE(text.find("filter [x is even]"), std::string::npos);
  EXPECT_NE(text.find("map [x2]"), std::string::npos);
}

}  // namespace
}  // namespace pjoin
